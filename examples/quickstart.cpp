// Quickstart: bring up a one-provider MDV deployment, subscribe an LMR
// to interesting cycle providers, register metadata, and query the local
// cache. Mirrors the paper's running example (Figure 1 + Example 1).

#include <cstdlib>
#include <iostream>

#include "mdv/system.h"
#include "rdf/parser.h"
#include "rdf/schema.h"

namespace {

// The paper's Figure 1 document as RDF/XML.
constexpr char kFigure1Xml[] = R"(<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:og="http://mdv/schema#">
  <og:CycleProvider rdf:ID="host">
    <og:serverHost>pirates.uni-passau.de</og:serverHost>
    <og:serverPort>5874</og:serverPort>
    <og:serverInformation>
      <og:ServerInformation rdf:ID="info">
        <og:memory>92</og:memory>
        <og:cpu>600</og:cpu>
      </og:ServerInformation>
    </og:serverInformation>
  </og:CycleProvider>
</rdf:RDF>)";

void Check(const mdv::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. Bring up a deployment: one backbone MDP, one LMR near the client.
  mdv::MdvSystem system(mdv::rdf::MakeObjectGlobeSchema());
  mdv::MetadataProvider* provider = system.AddProvider();
  mdv::LocalMetadataRepository* lmr = system.AddRepository(provider);

  // 2. Subscribe: Example 1 of the paper — cycle providers in the
  //    'uni-passau.de' domain with more than 64 MB of memory.
  mdv::Result<mdv::pubsub::SubscriptionId> subscription = lmr->Subscribe(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de' "
      "and c.serverInformation.memory > 64");
  Check(subscription.ok() ? mdv::Status::OK() : subscription.status(),
        "subscribe");
  std::cout << "subscribed rule, id=" << *subscription << "\n";

  // 3. Register the Figure 1 document at the MDP. The filter matches it
  //    against the subscription and pushes it (with the strongly
  //    referenced ServerInformation) into the LMR cache.
  Check(provider->RegisterDocumentXml(kFigure1Xml, "doc.rdf"),
        "register document");
  std::cout << "registered doc.rdf; LMR cache now holds "
            << lmr->CacheSize() << " resources\n";

  // 4. Query locally — no round trip to the provider.
  mdv::Result<std::vector<mdv::QueryMatch>> result = lmr->Query(
      "search CycleProvider c register c where c.serverPort = 5874");
  Check(result.ok() ? mdv::Status::OK() : result.status(), "query");
  for (const mdv::QueryMatch& match : *result) {
    std::cout << "query hit: " << match.uri_reference << " (serverHost="
              << match.resource->FindProperty("serverHost")->text()
              << ")\n";
  }

  // 5. An update that invalidates the match is propagated automatically:
  //    re-register the document with only 32 MB of memory.
  mdv::Result<mdv::rdf::RdfDocument> updated = mdv::rdf::ParseRdfXml(
      R"(<rdf:RDF>
        <og:CycleProvider rdf:ID="host">
          <og:serverHost>pirates.uni-passau.de</og:serverHost>
          <og:serverPort>5874</og:serverPort>
          <og:serverInformation rdf:resource="#info"/>
        </og:CycleProvider>
        <og:ServerInformation rdf:ID="info">
          <og:memory>32</og:memory>
          <og:cpu>600</og:cpu>
        </og:ServerInformation>
      </rdf:RDF>)",
      "doc.rdf");
  Check(updated.ok() ? mdv::Status::OK() : updated.status(), "parse update");
  Check(provider->UpdateDocument(*updated), "update document");
  std::cout << "after memory drop to 32MB the cache holds "
            << lmr->CacheSize() << " resources (GC evicted "
            << lmr->gc_evictions() << ")\n";
  return 0;
}
