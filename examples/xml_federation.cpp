// XML federation: the direction the paper's conclusion sets out (§6) —
// "the utilization of XML as data format". Providers publish *plain XML*
// service descriptions (no RDF markup); MDV imports them into the RDF
// data model, infers the schema, and the same publish & subscribe filter
// machinery keeps subscriber caches consistent.

#include <cstdlib>
#include <iostream>
#include <string>

#include "mdv/system.h"
#include "rdf/xml_import.h"

namespace {

// Plain XML, as a service provider might publish it.
constexpr char kFastPay[] = R"(<service id="svc" category="payment-gateway">
  <price>5</price>
  <uptimePercent>99</uptimePercent>
  <endpoint id="ep">
    <url>https://fast.pay</url>
    <protocol>SOAP</protocol>
  </endpoint>
</service>)";

constexpr char kGeo[] = R"(<service id="svc" category="geocoding">
  <price>2</price>
  <uptimePercent>97</uptimePercent>
  <endpoint id="ep">
    <url>https://geo.example</url>
    <protocol>REST</protocol>
  </endpoint>
</service>)";

constexpr char kCheapPay[] = R"(<service id="svc" category="payment-wallet">
  <price>1</price>
  <uptimePercent>93</uptimePercent>
  <endpoint id="ep">
    <url>https://cheap.pay</url>
    <protocol>REST</protocol>
  </endpoint>
</service>)";

void Check(const mdv::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. Infer the federation schema from sample documents — no hand-written
  //    RDF Schema needed for plain-XML publishers.
  mdv::rdf::RdfSchema schema;
  for (const char* xml : {kFastPay, kGeo, kCheapPay}) {
    mdv::Result<mdv::rdf::RdfDocument> sample =
        mdv::rdf::ImportGenericXml(xml, "sample.xml");
    Check(sample.ok() ? mdv::Status::OK() : sample.status(), "import sample");
    Check(mdv::rdf::ExtendSchemaForDocument(*sample, &schema),
          "infer schema");
  }
  std::cout << "inferred classes:";
  for (const std::string& name : schema.ClassNames()) {
    std::cout << " " << name;
  }
  std::cout << "\n";

  // Inferred references default to weak (§2.4 leaves the choice to the
  // schema designer); endpoints should travel with their services, so
  // promote service.endpoint to a strong reference.
  {
    mdv::rdf::ClassDef service = *schema.FindClass("service");
    service.properties["endpoint"].strength = mdv::rdf::RefStrength::kStrong;
    Check(schema.ReplaceClass(std::move(service)), "promote endpoint ref");
  }

  // 2. Bring up the federation on the inferred schema.
  mdv::MdvSystem system(std::move(schema));
  mdv::MetadataProvider* registry = system.AddProvider();
  mdv::LocalMetadataRepository* composer = system.AddRepository(registry);

  // 3. Subscribe with the ordinary rule language over the XML vocabulary.
  auto subscription = composer->Subscribe(
      "search service s register s "
      "where s.category contains 'payment' and s.uptimePercent >= 95");
  if (!subscription.ok()) {
    std::cerr << "subscribe failed: " << subscription.status() << "\n";
    return 1;
  }

  // 4. Publish the XML documents through the import path.
  struct Doc {
    const char* xml;
    const char* uri;
  };
  for (const Doc& doc : {Doc{kFastPay, "fast.xml"}, Doc{kGeo, "geo.xml"},
                         Doc{kCheapPay, "cheap.xml"}}) {
    mdv::Result<mdv::rdf::RdfDocument> imported =
        mdv::rdf::ImportGenericXml(doc.xml, doc.uri);
    Check(imported.ok() ? mdv::Status::OK() : imported.status(), "import");
    Check(registry->RegisterDocument(*imported), "register");
  }
  std::cout << "composer cache after publication: " << composer->CacheSize()
            << " resources\n";

  // 5. Query the cache — endpoints travel along via the reference.
  auto picks = composer->Query(
      "search service s register s where s.price <= 10");
  if (!picks.ok()) {
    std::cerr << "query failed: " << picks.status() << "\n";
    return 1;
  }
  for (const mdv::QueryMatch& match : *picks) {
    const mdv::CacheEntry* endpoint =
        composer->Find(match.resource->FindProperty("endpoint")->text());
    std::cout << "candidate " << match.uri_reference << " via "
              << (endpoint != nullptr
                      ? endpoint->resource.FindProperty("url")->text()
                      : std::string("<endpoint not cached>"))
              << "\n";
  }

  // 6. An SLA update flows through the same consistency machinery.
  mdv::Result<mdv::rdf::RdfDocument> degraded = mdv::rdf::ImportGenericXml(
      R"(<service id="svc" category="payment-gateway">
        <price>5</price>
        <uptimePercent>90</uptimePercent>
        <endpoint id="ep"><url>https://fast.pay</url>
        <protocol>SOAP</protocol></endpoint>
      </service>)",
      "fast.xml");
  Check(degraded.ok() ? mdv::Status::OK() : degraded.status(),
        "import degraded");
  Check(registry->UpdateDocument(*degraded), "degrade fast.pay");
  std::cout << "after fast.pay drops to 90% uptime the cache holds "
            << composer->CacheSize() << " resources\n";
  return 0;
}
