// Web-service discovery: the direction the paper's conclusion points at
// (§6) — services described by metadata, discovered through subscription
// rules, including named rules used as extensions of further rules
// (§2.3) and local (private) metadata at the LMR (§2.2).

#include <cstdlib>
#include <iostream>

#include "mdv/system.h"
#include "rdf/schema.h"

namespace {

using mdv::rdf::ClassBuilder;
using mdv::rdf::PropertyValue;
using mdv::rdf::RdfDocument;
using mdv::rdf::RdfSchema;
using mdv::rdf::Resource;

RdfSchema MakeServiceSchema() {
  RdfSchema schema;
  mdv::Status st = schema.AddClass(ClassBuilder("Endpoint")
                                       .Literal("url")
                                       .Literal("protocol")
                                       .Build());
  st = schema.AddClass(ClassBuilder("WebService")
                           .Literal("category")
                           .Literal("price")
                           .Literal("uptimePercent")
                           .StrongRef("endpoint", "Endpoint")
                           .Build());
  (void)st;
  return schema;
}

RdfDocument ServiceDoc(const std::string& uri, const std::string& category,
                       int price, int uptime, const std::string& url) {
  RdfDocument doc(uri);
  Resource endpoint("ep", "Endpoint");
  endpoint.AddProperty("url", PropertyValue::Literal(url));
  endpoint.AddProperty("protocol", PropertyValue::Literal("SOAP"));
  Resource service("svc", "WebService");
  service.AddProperty("category", PropertyValue::Literal(category));
  service.AddProperty("price", PropertyValue::Literal(std::to_string(price)));
  service.AddProperty("uptimePercent",
                      PropertyValue::Literal(std::to_string(uptime)));
  service.AddProperty("endpoint", PropertyValue::ResourceRef(uri + "#ep"));
  mdv::Status st = doc.AddResource(std::move(endpoint));
  st = doc.AddResource(std::move(service));
  (void)st;
  return doc;
}

void Check(const mdv::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  mdv::MdvSystem system(MakeServiceSchema());
  mdv::MetadataProvider* registry = system.AddProvider();
  mdv::LocalMetadataRepository* composer = system.AddRepository(registry);

  // A named base rule: all payment services. Further rules narrow it by
  // using the name as an extension (§2.3).
  auto payment_rule = composer->Subscribe(
      "search WebService w register w where w.category contains 'payment'",
      "PaymentServices");
  if (!payment_rule.ok()) {
    std::cerr << "subscribe failed: " << payment_rule.status() << "\n";
    return 1;
  }
  auto reliable_rule = composer->Subscribe(
      "search PaymentServices p register p where p.uptimePercent >= 99");
  if (!reliable_rule.ok()) {
    std::cerr << "subscribe failed: " << reliable_rule.status() << "\n";
    return 1;
  }

  // Providers publish service descriptions.
  Check(registry->RegisterDocument(ServiceDoc(
            "pay-fast.rdf", "payment-gateway", 5, 99, "https://fast.pay")),
        "register pay-fast");
  Check(registry->RegisterDocument(ServiceDoc(
            "pay-cheap.rdf", "payment-gateway", 1, 95, "https://cheap.pay")),
        "register pay-cheap");
  Check(registry->RegisterDocument(ServiceDoc(
            "geo.rdf", "geocoding", 2, 99, "https://geo.example")),
        "register geo");

  std::cout << "composer cache: " << composer->CacheSize()
            << " resources\n";

  // Compose: pick a reliable payment service under a price cap, using
  // only the local cache.
  auto picks = composer->Query(
      "search WebService w register w "
      "where w.uptimePercent >= 99 and w.price <= 10 "
      "and w.category contains 'payment'");
  if (!picks.ok()) {
    std::cerr << "query failed: " << picks.status() << "\n";
    return 1;
  }
  for (const mdv::QueryMatch& match : *picks) {
    const mdv::CacheEntry* endpoint = composer->Find(
        match.resource->FindProperty("endpoint")->text());
    std::cout << "composed with " << match.uri_reference << " via "
              << (endpoint != nullptr
                      ? endpoint->resource.FindProperty("url")->text()
                      : std::string("<missing endpoint>"))
              << "\n";
  }

  // Private, unpublished candidate services stay local to the composer.
  Check(composer->RegisterLocalDocument(ServiceDoc(
            "internal.rdf", "payment-internal", 0, 90, "https://lan.pay")),
        "register local");
  auto all_payment = composer->Query(
      "search WebService w register w where w.category contains 'payment'");
  std::cout << "locally visible payment services: "
            << (all_payment.ok() ? all_payment->size() : 0) << "\n";
  std::cout << "registry knows " << registry->documents().size()
            << " public documents\n";

  // An SLA degradation is published once; the composer's cache reacts.
  Check(registry->UpdateDocument(ServiceDoc(
            "pay-fast.rdf", "payment-gateway", 5, 97, "https://fast.pay")),
        "degrade pay-fast");
  const mdv::CacheEntry* fast = composer->Find("pay-fast.rdf#svc");
  std::cout << "after SLA degradation pay-fast matches "
            << (fast == nullptr ? 0 : fast->matched_subscriptions.size())
            << " subscription(s)\n";
  return 0;
}
