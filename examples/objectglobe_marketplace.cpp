// ObjectGlobe marketplace: the paper's motivating client (§1). An open
// marketplace of cycle providers, data providers and function providers
// publishes metadata into MDV; two query-processing sites subscribe to
// the slices they need for query optimization and discover candidate
// providers from their local caches.

#include <cstdlib>
#include <iostream>
#include <string>

#include "mdv/system.h"
#include "rdf/schema.h"

namespace {

using mdv::rdf::ClassBuilder;
using mdv::rdf::PropertyValue;
using mdv::rdf::RdfDocument;
using mdv::rdf::RdfSchema;
using mdv::rdf::Resource;

/// ObjectGlobe's three supplier kinds (§1) plus server descriptions.
RdfSchema MakeMarketplaceSchema() {
  RdfSchema schema;
  mdv::Status st = schema.AddClass(ClassBuilder("ServerInformation")
                                       .Literal("memory")
                                       .Literal("cpu")
                                       .Build());
  st = schema.AddClass(ClassBuilder("CycleProvider")
                           .Literal("serverHost")
                           .Literal("serverPort")
                           .StrongRef("serverInformation", "ServerInformation")
                           .Build());
  st = schema.AddClass(ClassBuilder("DataProvider")
                           .Literal("serverHost")
                           .Literal("collection")
                           .Literal("sizeMB")
                           .Build());
  st = schema.AddClass(ClassBuilder("FunctionProvider")
                           .Literal("serverHost")
                           .Literal("operatorName")
                           .Literal("licenseFee")
                           .Build());
  (void)st;
  return schema;
}

RdfDocument CycleProviderDoc(const std::string& uri, const std::string& host,
                             int memory, int cpu) {
  RdfDocument doc(uri);
  Resource info("info", "ServerInformation");
  info.AddProperty("memory", PropertyValue::Literal(std::to_string(memory)));
  info.AddProperty("cpu", PropertyValue::Literal(std::to_string(cpu)));
  Resource provider("cp", "CycleProvider");
  provider.AddProperty("serverHost", PropertyValue::Literal(host));
  provider.AddProperty("serverPort", PropertyValue::Literal("5874"));
  provider.AddProperty("serverInformation",
                       PropertyValue::ResourceRef(uri + "#info"));
  mdv::Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(provider));
  (void)st;
  return doc;
}

RdfDocument DataProviderDoc(const std::string& uri, const std::string& host,
                            const std::string& collection, int size_mb) {
  RdfDocument doc(uri);
  Resource provider("dp", "DataProvider");
  provider.AddProperty("serverHost", PropertyValue::Literal(host));
  provider.AddProperty("collection", PropertyValue::Literal(collection));
  provider.AddProperty("sizeMB",
                       PropertyValue::Literal(std::to_string(size_mb)));
  mdv::Status st = doc.AddResource(std::move(provider));
  (void)st;
  return doc;
}

RdfDocument FunctionProviderDoc(const std::string& uri,
                                const std::string& host,
                                const std::string& op, int fee) {
  RdfDocument doc(uri);
  Resource provider("fp", "FunctionProvider");
  provider.AddProperty("serverHost", PropertyValue::Literal(host));
  provider.AddProperty("operatorName", PropertyValue::Literal(op));
  provider.AddProperty("licenseFee",
                       PropertyValue::Literal(std::to_string(fee)));
  mdv::Status st = doc.AddResource(std::move(provider));
  (void)st;
  return doc;
}

void Check(const mdv::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Must(mdv::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  mdv::MdvSystem system(MakeMarketplaceSchema());
  mdv::MetadataProvider* backbone = system.AddProvider();

  // Site A optimizes compute-heavy queries: it wants beefy cycle
  // providers and the join operators it may ship to them.
  mdv::LocalMetadataRepository* site_a = system.AddRepository(backbone);
  Must(site_a->Subscribe("search CycleProvider c register c "
                         "where c.serverInformation.memory > 256 "
                         "and c.serverInformation.cpu >= 1000"),
       "site A cycle subscription");
  Must(site_a->Subscribe("search FunctionProvider f register f "
                         "where f.operatorName contains 'join'"),
       "site A function subscription");

  // Site B integrates astronomy data: data providers of that collection
  // and any cycle provider in its own domain.
  mdv::LocalMetadataRepository* site_b = system.AddRepository(backbone);
  Must(site_b->Subscribe("search DataProvider d register d "
                         "where d.collection contains 'astro'"),
       "site B data subscription");
  Must(site_b->Subscribe("search CycleProvider c register c "
                         "where c.serverHost contains 'uni-passau.de'"),
       "site B domain subscription");

  // Suppliers publish their metadata at the backbone.
  Check(backbone->RegisterDocument(
            CycleProviderDoc("cp1.rdf", "big.cluster.example", 512, 2000)),
        "register cp1");
  Check(backbone->RegisterDocument(
            CycleProviderDoc("cp2.rdf", "pirates.uni-passau.de", 128, 600)),
        "register cp2");
  Check(backbone->RegisterDocument(
            CycleProviderDoc("cp3.rdf", "small.box.example", 64, 400)),
        "register cp3");
  Check(backbone->RegisterDocument(DataProviderDoc(
            "dp1.rdf", "archive.example", "astro-survey-2001", 1500)),
        "register dp1");
  Check(backbone->RegisterDocument(
            DataProviderDoc("dp2.rdf", "med.example", "genome-bank", 800)),
        "register dp2");
  Check(backbone->RegisterDocument(FunctionProviderDoc(
            "fp1.rdf", "ops.example", "hash-join-v2", 10)),
        "register fp1");
  Check(backbone->RegisterDocument(FunctionProviderDoc(
            "fp2.rdf", "ops.example", "wavelet-compress", 25)),
        "register fp2");

  std::cout << "site A cache: " << site_a->CacheSize() << " resources\n";
  std::cout << "site B cache: " << site_b->CacheSize() << " resources\n";

  // Site A plans a query: find a provider with ≥ 1 GHz to run hash-join.
  auto candidates = Must(
      site_a->Query("search CycleProvider c register c "
                    "where c.serverInformation.cpu >= 1000"),
      "site A candidate query");
  for (const mdv::QueryMatch& match : candidates) {
    std::cout << "site A would contract "
              << match.resource->FindProperty("serverHost")->text() << "\n";
  }

  // Site B looks for astro data sources larger than 1 GB.
  auto sources = Must(site_b->Query("search DataProvider d register d "
                                    "where d.sizeMB > 1000"),
                      "site B source query");
  for (const mdv::QueryMatch& match : sources) {
    std::cout << "site B reads collection "
              << match.resource->FindProperty("collection")->text()
              << " from "
              << match.resource->FindProperty("serverHost")->text() << "\n";
  }

  // A supplier upgrade is published once and reaches every interested
  // cache: cp3 triples its memory and becomes relevant for site A.
  Check(backbone->UpdateDocument(
            CycleProviderDoc("cp3.rdf", "small.box.example", 512, 1200)),
        "upgrade cp3");
  std::cout << "after cp3 upgrade, site A cache: " << site_a->CacheSize()
            << " resources\n";

  std::cout << "network shipped " << system.network().stats().messages
            << " notifications ("
            << system.network().stats().resources_shipped << " resources)\n";
  return 0;
}
