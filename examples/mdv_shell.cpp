// Interactive MDV shell: drive a one-provider deployment from the
// command line. Reads commands from stdin (one per line), so it also
// works in pipelines:
//
//   echo 'help' | ./mdv_shell
//
// Commands:
//   subscribe <rule>          register a subscription for the local LMR
//   unsubscribe <id>          drop a subscription
//   register <uri> <xml...>   register an RDF/XML document (single line)
//   update <uri> <xml...>     re-register a document
//   delete <uri>              delete a document
//   query <rule>              query the LMR cache
//   browse <rule>             evaluate a rule at the MDP (no subscription)
//   sql <statement>           run SQL against the MDP's filter database
//   cache                     list the LMR cache contents
//   docs                      list registered documents
//   stats                     network/filter statistics
//   help / quit

#include <iostream>
#include <sstream>
#include <string>

#include "mdv/system.h"
#include "rdbms/sql.h"
#include "rdf/parser.h"
#include "rdf/schema.h"
#include "rdf/writer.h"

namespace {

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  subscribe <rule>\n"
      "  unsubscribe <id>\n"
      "  register <uri> <rdf-xml on one line>\n"
      "  update <uri> <rdf-xml on one line>\n"
      "  delete <uri>\n"
      "  query <rule>\n"
      "  browse <rule>\n"
      "  sql <statement>\n"
      "  cache | docs | stats | help | quit\n";
}

}  // namespace

int main() {
  mdv::MdvSystem system(mdv::rdf::MakeObjectGlobeSchema());
  mdv::MetadataProvider* provider = system.AddProvider();
  mdv::LocalMetadataRepository* lmr = system.AddRepository(provider);

  std::cout << "MDV shell — ObjectGlobe schema loaded (CycleProvider, "
               "ServerInformation). Type 'help'.\n";

  std::string line;
  while (std::cout << "mdv> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string command;
    ss >> command;
    std::string rest;
    std::getline(ss, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());

    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
    } else if (command == "subscribe") {
      mdv::Result<mdv::pubsub::SubscriptionId> id = lmr->Subscribe(rest);
      if (id.ok()) {
        std::cout << "subscription " << *id << " registered; cache now "
                  << lmr->CacheSize() << " resources\n";
      } else {
        std::cout << "error: " << id.status() << "\n";
      }
    } else if (command == "unsubscribe") {
      std::istringstream arg(rest);
      int64_t id = 0;
      if (!(arg >> id)) {
        std::cout << "usage: unsubscribe <id>\n";
        continue;
      }
      mdv::Status st = lmr->Unsubscribe(id);
      std::cout << (st.ok() ? "ok\n" : st.ToString() + "\n");
    } else if (command == "register" || command == "update") {
      std::istringstream arg(rest);
      std::string uri;
      arg >> uri;
      std::string xml;
      std::getline(arg, xml);
      mdv::Status st = command == "register"
                           ? provider->RegisterDocumentXml(xml, uri)
                           : [&] {
                               mdv::Result<mdv::rdf::RdfDocument> doc =
                                   mdv::rdf::ParseRdfXml(xml, uri);
                               if (!doc.ok()) return doc.status();
                               return provider->UpdateDocument(*doc);
                             }();
      std::cout << (st.ok() ? "ok; cache now " +
                                  std::to_string(lmr->CacheSize()) +
                                  " resources\n"
                            : st.ToString() + "\n");
    } else if (command == "delete") {
      mdv::Status st = provider->DeleteDocument(rest);
      std::cout << (st.ok() ? "ok\n" : st.ToString() + "\n");
    } else if (command == "query") {
      mdv::Result<std::vector<mdv::QueryMatch>> result = lmr->Query(rest);
      if (!result.ok()) {
        std::cout << "error: " << result.status() << "\n";
        continue;
      }
      for (const mdv::QueryMatch& match : *result) {
        std::cout << "  " << match.uri_reference << "\n";
      }
      std::cout << result->size() << " match(es)\n";
    } else if (command == "browse") {
      mdv::Result<std::vector<std::string>> result = provider->Browse(rest);
      if (!result.ok()) {
        std::cout << "error: " << result.status() << "\n";
        continue;
      }
      for (const std::string& uri : *result) {
        std::cout << "  " << uri << "\n";
      }
      std::cout << result->size() << " match(es)\n";
    } else if (command == "sql") {
      mdv::Result<mdv::rdbms::SqlResult> result =
          mdv::rdbms::ExecuteSql(provider->mutable_database(), rest);
      if (!result.ok()) {
        std::cout << "error: " << result.status() << "\n";
      } else if (result->is_query) {
        std::cout << mdv::rdbms::FormatRowSet(result->rows);
        std::cout << result->rows.NumRows() << " row(s)\n";
      } else {
        std::cout << result->affected_rows << " row(s) affected\n";
      }
    } else if (command == "cache") {
      for (const std::string& uri : lmr->CachedUris()) {
        const mdv::CacheEntry* entry = lmr->Find(uri);
        std::cout << "  " << uri << " [" << entry->resource.class_name()
                  << "] matches=" << entry->matched_subscriptions.size()
                  << " strong_refs=" << entry->strong_referrers
                  << (entry->local ? " local" : "") << "\n";
      }
      std::cout << lmr->CacheSize() << " resource(s) cached\n";
    } else if (command == "docs") {
      for (const std::string& uri : provider->documents().DocumentUris()) {
        std::cout << "  " << uri << " ("
                  << provider->documents().Find(uri)->NumResources()
                  << " resources)\n";
      }
    } else if (command == "stats") {
      const mdv::NetworkStats& net = system.network().stats();
      std::cout << "network: " << net.messages << " messages, "
                << net.resources_shipped << " resources shipped\n"
                << "rule base: " << provider->rule_store().NumAtomicRules()
                << " atomic rules, " << provider->rule_store().NumGroups()
                << " groups\n"
                << "database rows: " << provider->database().TotalRows()
                << "\n";
    } else {
      std::cout << "unknown command '" << command << "' (try 'help')\n";
    }
  }
  return 0;
}
