// Cache consistency walkthrough: demonstrates the three update
// situations of §3.5 — a resource gaining a match, losing a match (with
// and without other matching rules), and referenced-resource updates —
// plus the garbage collection of strongly referenced companions (§2.4).

#include <cstdlib>
#include <iostream>

#include "mdv/system.h"
#include "rdf/schema.h"

namespace {

using mdv::rdf::PropertyValue;
using mdv::rdf::RdfDocument;
using mdv::rdf::Resource;

RdfDocument ProviderDoc(const std::string& uri, const std::string& host,
                        int memory) {
  RdfDocument doc(uri);
  Resource info("info", "ServerInformation");
  info.AddProperty("memory", PropertyValue::Literal(std::to_string(memory)));
  info.AddProperty("cpu", PropertyValue::Literal("600"));
  Resource provider("host", "CycleProvider");
  provider.AddProperty("serverHost", PropertyValue::Literal(host));
  provider.AddProperty("serverInformation",
                       PropertyValue::ResourceRef(uri + "#info"));
  mdv::Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(provider));
  (void)st;
  return doc;
}

void Check(const mdv::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

void Report(const mdv::LocalMetadataRepository& lmr, const char* stage) {
  std::cout << stage << ": cache=" << lmr.CacheSize()
            << " gc_evictions=" << lmr.gc_evictions();
  const mdv::CacheEntry* host = lmr.Find("d.rdf#host");
  if (host != nullptr) {
    std::cout << " host_matches=" << host->matched_subscriptions.size();
    const mdv::CacheEntry* info = lmr.Find("d.rdf#info");
    if (info != nullptr) {
      std::cout << " info_memory="
                << info->resource.FindProperty("memory")->text()
                << " info_strong_refs=" << info->strong_referrers;
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  mdv::MdvSystem system(mdv::rdf::MakeObjectGlobeSchema());
  mdv::MetadataProvider* provider = system.AddProvider();
  mdv::LocalMetadataRepository* lmr = system.AddRepository(provider);

  // Two overlapping subscriptions, as in §3.5's discussion: losing one
  // match must not evict a resource the other rule still selects.
  auto memory_rule = lmr->Subscribe(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  auto domain_rule = lmr->Subscribe(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de'");
  if (!memory_rule.ok() || !domain_rule.ok()) {
    std::cerr << "subscription failed\n";
    return 1;
  }

  // Situation 0: initially the provider matches neither rule.
  Check(provider->RegisterDocument(ProviderDoc("d.rdf", "elsewhere.org", 32)),
        "register");
  Report(*lmr, "registered (no match)        ");

  // Situation 1 (§3.5): "the resource is matched by a rule it previously
  // was not" — memory grows to 128, the memory rule now matches, and the
  // resource plus its strong closure appear in the cache.
  Check(provider->UpdateDocument(ProviderDoc("d.rdf", "elsewhere.org", 128)),
        "update to 128MB");
  Report(*lmr, "memory 32 -> 128 (gain match) ");

  // Situation 2: "the resource still matches" — the cached copies must
  // be refreshed in place (here memory changes 128 → 256).
  Check(provider->UpdateDocument(ProviderDoc("d.rdf", "elsewhere.org", 256)),
        "update to 256MB");
  Report(*lmr, "memory 128 -> 256 (keep match)");

  // Situation 3a: the resource stops matching the memory rule but gains
  // the domain rule — it must stay cached ("wrong candidate").
  Check(provider->UpdateDocument(
            ProviderDoc("d.rdf", "pirates.uni-passau.de", 16)),
        "move into domain, shrink memory");
  Report(*lmr, "lost memory, gained domain    ");

  // Situation 3b: it stops matching every rule — the true candidate is
  // removed, and the garbage collector also evicts the strongly
  // referenced ServerInformation (§2.4).
  Check(provider->UpdateDocument(ProviderDoc("d.rdf", "elsewhere.org", 16)),
        "lose all matches");
  Report(*lmr, "lost all matches (GC)         ");

  // Finally: whole-document deletion behaves like losing every match.
  Check(provider->UpdateDocument(
            ProviderDoc("d.rdf", "pirates.uni-passau.de", 512)),
        "re-match");
  Report(*lmr, "re-registered (both rules)    ");
  Check(provider->DeleteDocument("d.rdf"), "delete document");
  Report(*lmr, "document deleted              ");
  return 0;
}
