// mdv_fsck: offline integrity checker for MDV durability images.
//
// Points at one or more WAL directories (as written by
// MetadataProvider::EnableDurability and LocalMetadataRepository::
// OpenDurable), loads each recovered image read-only — nothing is
// truncated, pruned or rewritten — and runs the invariant auditors
// over the result:
//
//   wal.chain            manifest/snapshot/segment chain integrity:
//                        no mid-chain corruption, no torn tail
//   recovery.load        snapshot + log suffix replay to a live image
//   rdbms.invariants     Table/index parity (Database::CheckInvariants)
//   filter.consistency   rule graph vs tables vs PredicateIndex
//                        (RuleStore::CheckConsistency)
//   subscriptions.rules  every subscription's end rule exists in the
//                        rule store                          [mdp only]
//   lmr.cache            cache reference counts and GC invariants
//                        (AuditCacheInvariants)              [lmr only]
//   lmr.flows            persisted dedup flows are monotonic: held-back
//                        sequences lie above applied_through [lmr only]
//   lmr.versions         the persisted version vector covers every
//                        persisted cache entry's stamp — a regressed
//                        vector would make delta catchup skip content
//                        the replica does not have          [lmr only]
//   mdp.peers            journaled peer-mesh records decode  [mdp only]
//
// Usage: mdv_fsck [--json] [--mdp DIR]... [--lmr DIR]... [DIR]...
//
// Bare DIR arguments are dispatched by the kind recorded in their
// MANIFEST. With --json, stdout carries one machine-readable object:
//   {"images": [{"path": ..., "kind": ..., "checks":
//       [{"name": ..., "ok": true|false, "detail": ...}, ...]}, ...],
//    "ok": true|false}
//
// Exit status: 0 = all checks passed, 1 = at least one check failed,
// 2 = usage/IO problems (unreadable directory, unknown manifest kind).

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "mdv/lmr.h"
#include "mdv/metadata_provider.h"
#include "mdv/network.h"
#include "mdv/wal_records.h"
#include "rdf/schema_io.h"
#include "wal/log.h"
#include "wal/record.h"

namespace {

struct Check {
  std::string name;
  bool ok = false;
  std::string detail;
};

struct ImageReport {
  std::string path;
  std::string kind;
  std::vector<Check> checks;

  void Add(const std::string& name, const mdv::Status& status) {
    checks.push_back(Check{name, status.ok(),
                           status.ok() ? "" : status.ToString()});
  }
  void Add(const std::string& name, bool ok, const std::string& detail) {
    checks.push_back(Check{name, ok, detail});
  }
  bool AllOk() const {
    for (const Check& check : checks) {
      if (!check.ok) return false;
    }
    return true;
  }
};

/// Chain-integrity verdict shared by both image kinds: Open() already
/// walked MANIFEST → snapshot → segments; anything it had to skip or
/// flag shows up in the RecoveryInfo.
void CheckWalChain(const mdv::wal::RecoveryInfo& rec, ImageReport* report) {
  std::string detail;
  bool ok = true;
  for (const std::string& error : rec.segment_errors) {
    ok = false;
    if (!detail.empty()) detail += "; ";
    detail += error;
  }
  if (!rec.tail_error.empty()) {
    ok = false;
    if (!detail.empty()) detail += "; ";
    detail += "torn tail (" + rec.tail_error + ", " +
              std::to_string(rec.truncated_tail_bytes) + " bytes)";
  }
  report->Add("wal.chain", ok, detail);
}

mdv::Status CheckMdpImage(const std::string& dir,
                          const mdv::wal::Manifest& manifest,
                          ImageReport* report) {
  MDV_ASSIGN_OR_RETURN(mdv::rdf::RdfSchema schema,
                       mdv::rdf::ParseSchemaText(manifest.schema_text));
  mdv::Network network;  // Synchronous, no LMRs attached: replay
                         // deliveries fall into the void by design.
  mdv::filter::RuleStoreOptions rule_options;
  rule_options.num_shards = static_cast<int>(manifest.num_shards);
  mdv::MetadataProvider provider(&schema, &network, rule_options);

  mdv::wal::WalOptions options;
  options.dir = dir;
  options.read_only = true;
  const mdv::Status loaded = provider.EnableDurability(options);
  report->Add("recovery.load", loaded);
  if (!loaded.ok()) return mdv::Status::OK();  // Reported as a failed check.
  CheckWalChain(provider.recovery_info(), report);

  report->Add("rdbms.invariants", provider.database().CheckInvariants());
  report->Add("filter.consistency", provider.rule_store().CheckConsistency());

  mdv::Status subs = mdv::Status::OK();
  for (const mdv::pubsub::Subscription* sub :
       provider.subscriptions().All()) {
    mdv::Result<std::string> type =
        provider.rule_store().RuleTypeOf(sub->end_rule_id);
    if (!type.ok()) {
      subs = mdv::Status::Internal(
          "subscription " + std::to_string(sub->id) + " end rule " +
          std::to_string(sub->end_rule_id) + ": " + type.status().ToString());
      break;
    }
  }
  report->Add("subscriptions.rules", subs);

  // Replication-mesh journal records (kWalMdpAddPeer) must decode; the
  // recovered names are what deployment code re-wires the mesh from.
  mdv::Status peers = mdv::Status::OK();
  for (const mdv::wal::WalRecord& record :
       provider.recovery_info().records) {
    if (record.type != mdv::kWalMdpAddPeer) continue;
    mdv::wal::PayloadReader reader(record.payload);
    const std::string name = reader.ReadString().value_or("");
    if (reader.failed() || !reader.Done() || name.empty()) {
      peers = mdv::Status::Internal("malformed peer-mesh record");
      break;
    }
  }
  std::string peer_detail;
  for (const std::string& name : provider.recovered_peer_names()) {
    if (!peer_detail.empty()) peer_detail += ", ";
    peer_detail += name;
  }
  if (peers.ok()) {
    report->Add("mdp.peers", true, peer_detail);
  } else {
    report->Add("mdp.peers", peers);
  }
  return mdv::Status::OK();
}

/// Walks the snapshot's persisted flow records: every held-back
/// sequence must lie strictly above the flow's applied_through (a
/// violation means dedup state that would re-apply or drop frames).
mdv::Status CheckLmrFlows(const mdv::wal::RecoveryInfo& rec) {
  const mdv::wal::WalScan scan = mdv::wal::ScanWalBuffer(rec.snapshot);
  if (scan.torn) {
    return mdv::Status::Internal("corrupt snapshot: " + scan.tail_error);
  }
  for (const mdv::wal::WalRecord& record : scan.records) {
    if (record.type != mdv::kWalLmrSnapFlow) continue;
    mdv::wal::PayloadReader reader(record.payload);
    const uint64_t sender = reader.ReadU64().value_or(0);
    const uint64_t applied_through = reader.ReadU64().value_or(0);
    const uint32_t held = reader.ReadU32().value_or(0);
    for (uint32_t i = 0; i < held && !reader.failed(); ++i) {
      const uint64_t sequence = reader.ReadU64().value_or(0);
      (void)reader.ReadString();
      if (sequence <= applied_through) {
        return mdv::Status::Internal(
            "flow from sender " + std::to_string(sender) +
            ": held-back sequence " + std::to_string(sequence) +
            " not above applied_through " + std::to_string(applied_through));
      }
    }
    if (reader.failed()) {
      return mdv::Status::Internal("malformed flow record from sender " +
                                   std::to_string(sender));
    }
  }
  return mdv::Status::OK();
}

/// Checks the persisted version vector against the persisted cache
/// entries, on the RAW snapshot records. The live image cannot be used
/// for this: recovery max-merges every loaded stamp back into the
/// vector, silently repairing exactly the regression this check exists
/// to catch.
mdv::Status CheckLmrVersions(const mdv::wal::RecoveryInfo& rec) {
  const mdv::wal::WalScan scan = mdv::wal::ScanWalBuffer(rec.snapshot);
  if (scan.torn) {
    return mdv::Status::Internal("corrupt snapshot: " + scan.tail_error);
  }
  std::map<uint64_t, uint64_t> vector;
  // (uri, origin, seq) of every versioned persisted entry.
  std::vector<std::tuple<std::string, uint64_t, uint64_t>> stamps;
  for (const mdv::wal::WalRecord& record : scan.records) {
    mdv::wal::PayloadReader reader(record.payload);
    if (record.type == mdv::kWalLmrSnapVersionVector) {
      const uint32_t count = reader.ReadU32().value_or(0);
      for (uint32_t i = 0; i < count && !reader.failed(); ++i) {
        const uint64_t origin = reader.ReadU64().value_or(0);
        vector[origin] = reader.ReadU64().value_or(0);
      }
      if (reader.failed()) {
        return mdv::Status::Internal("malformed version-vector record");
      }
    } else if (record.type == mdv::kWalLmrSnapCacheEntry) {
      const std::string uri = reader.ReadString().value_or("");
      (void)reader.ReadU8();  // local flag
      const uint32_t nsubs = reader.ReadU32().value_or(0);
      for (uint32_t i = 0; i < nsubs && !reader.failed(); ++i) {
        (void)reader.ReadI64();
      }
      const uint64_t origin = reader.ReadU64().value_or(0);
      const uint64_t seq = reader.ReadU64().value_or(0);
      if (reader.failed()) {
        return mdv::Status::Internal("malformed cache entry record");
      }
      if (origin != 0 || seq != 0) stamps.emplace_back(uri, origin, seq);
    }
  }
  for (const auto& [uri, origin, seq] : stamps) {
    const auto it = vector.find(origin);
    if (it == vector.end() || it->second < seq) {
      return mdv::Status::Internal(
          "persisted version vector regresses against cache entry " + uri +
          " (origin " + std::to_string(origin) + " seq " +
          std::to_string(seq) + ", vector has " +
          (it == vector.end() ? std::string("nothing")
                              : std::to_string(it->second)) +
          ")");
    }
  }
  return mdv::Status::OK();
}

mdv::Status CheckLmrImage(const std::string& dir,
                          const mdv::wal::Manifest& manifest,
                          ImageReport* report) {
  MDV_ASSIGN_OR_RETURN(mdv::rdf::RdfSchema schema,
                       mdv::rdf::ParseSchemaText(manifest.schema_text));
  mdv::Network network;  // Local stand-in; the LMR never talks to it.
  mdv::wal::WalOptions options;
  options.dir = dir;
  options.read_only = true;
  mdv::Result<std::unique_ptr<mdv::LocalMetadataRepository>> lmr =
      mdv::LocalMetadataRepository::OpenDurable(/*id=*/1, &schema,
                                                /*provider=*/nullptr,
                                                &network, options);
  report->Add("recovery.load", lmr.ok()
                                   ? mdv::Status::OK()
                                   : lmr.status());
  if (!lmr.ok()) return mdv::Status::OK();
  const mdv::wal::RecoveryInfo rec = (*lmr)->recovery_info();
  CheckWalChain(rec, report);
  report->Add("lmr.cache", (*lmr)->AuditCacheInvariants());
  report->Add("lmr.flows", CheckLmrFlows(rec));
  report->Add("lmr.versions", CheckLmrVersions(rec));
  return mdv::Status::OK();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintJson(const std::vector<ImageReport>& reports, bool all_ok) {
  std::cout << "{\"images\": [";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ImageReport& report = reports[i];
    if (i > 0) std::cout << ", ";
    std::cout << "{\"path\": \"" << JsonEscape(report.path) << "\", \"kind\": \""
              << JsonEscape(report.kind) << "\", \"checks\": [";
    for (size_t j = 0; j < report.checks.size(); ++j) {
      const Check& check = report.checks[j];
      if (j > 0) std::cout << ", ";
      std::cout << "{\"name\": \"" << JsonEscape(check.name)
                << "\", \"ok\": " << (check.ok ? "true" : "false")
                << ", \"detail\": \"" << JsonEscape(check.detail) << "\"}";
    }
    std::cout << "]}";
  }
  std::cout << "], \"ok\": " << (all_ok ? "true" : "false") << "}\n";
}

void PrintText(const std::vector<ImageReport>& reports) {
  for (const ImageReport& report : reports) {
    std::cout << report.path << " (" << report.kind << ")\n";
    for (const Check& check : report.checks) {
      std::cout << "  " << check.name << ": "
                << (check.ok ? "OK" : "FAIL");
      if (!check.detail.empty()) std::cout << " — " << check.detail;
      std::cout << "\n";
    }
  }
}

int Usage() {
  std::cerr << "usage: mdv_fsck [--json] [--mdp DIR]... [--lmr DIR]... "
               "[DIR]...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  // (path, forced kind): "" = dispatch by manifest.
  std::vector<std::pair<std::string, std::string>> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--mdp" || arg == "--lmr") {
      if (i + 1 >= argc) return Usage();
      targets.emplace_back(argv[++i], arg.substr(2));
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      targets.emplace_back(arg, "");
    }
  }
  if (targets.empty()) return Usage();

  std::vector<ImageReport> reports;
  for (const auto& [dir, forced_kind] : targets) {
    ImageReport report;
    report.path = dir;
    mdv::Result<mdv::wal::Manifest> manifest = mdv::wal::LoadManifest(dir);
    if (!manifest.ok()) {
      std::cerr << "mdv_fsck: " << dir << ": "
                << manifest.status().ToString() << "\n";
      return 2;
    }
    report.kind = manifest->kind;
    if (!forced_kind.empty() && manifest->kind != forced_kind) {
      std::cerr << "mdv_fsck: " << dir << ": manifest kind is '"
                << manifest->kind << "', not '" << forced_kind << "'\n";
      return 2;
    }
    mdv::Status checked;
    if (manifest->kind == "mdp") {
      checked = CheckMdpImage(dir, *manifest, &report);
    } else if (manifest->kind == "lmr") {
      checked = CheckLmrImage(dir, *manifest, &report);
    } else {
      std::cerr << "mdv_fsck: " << dir << ": unknown manifest kind '"
                << manifest->kind << "'\n";
      return 2;
    }
    if (!checked.ok()) {
      std::cerr << "mdv_fsck: " << dir << ": " << checked.ToString() << "\n";
      return 2;
    }
    reports.push_back(std::move(report));
  }

  bool all_ok = true;
  for (const ImageReport& report : reports) {
    if (!report.AllOk()) all_ok = false;
  }
  if (json) {
    PrintJson(reports, all_ok);
  } else {
    PrintText(reports);
    std::cout << (all_ok ? "clean" : "CORRUPT") << "\n";
  }
  return all_ok ? 0 : 1;
}
