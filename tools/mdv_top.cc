// mdv_top: renders an MDV metrics snapshot as a terminal table — the
// `top` of a bench or scenario run. Reads either a raw
// obs::SnapshotJson() document or a bench output file (BENCH_*.json,
// whose "metrics" member holds that snapshot; scenario files also carry
// an "slo" member, rendered as a stage table with the critical path).
//
// Usage: mdv_top [--watch SECONDS] FILE
//
// With --watch the file is re-read and the screen redrawn every
// SECONDS, so a long bench can be observed live from a second terminal
// (benches rewrite their JSON atomically, so a reader never sees a
// torn file). Exit status: 0 on a rendered snapshot, 2 on IO/parse
// problems (under --watch a missing file is retried, not fatal).
//
// Parsing is a ~100-line recursive-descent JSON reader over a value
// tree; the tool links only the standard library, so it stays usable
// on hosts where nothing else of MDV is deployable.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

// ---- Minimal JSON value tree -------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered object members (display follows file order).
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    bool ok = Value(out);
    SkipSpace();
    if (ok && pos_ != text_.size()) ok = false;
    if (!ok) {
      *error = "parse error near offset " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':  // Keep \uXXXX escapes verbatim; names are ASCII.
            if (pos_ + 4 > text_.size()) return false;
            out->append("\\u").append(text_, pos_, 4);
            pos_ += 4;
            continue;
          default: c = e; break;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }

  bool Value(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      out->kind = JsonValue::Kind::kObject;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
      while (true) {
        SkipSpace();
        std::string key;
        if (!String(&key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        JsonValue member;
        if (!Value(&member)) return false;
        out->object.emplace_back(std::move(key), std::move(member));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { ++pos_; continue; }
        if (text_[pos_] == '}') return ++pos_, true;
        return false;
      }
    }
    if (c == '[') {
      out->kind = JsonValue::Kind::kArray;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
      while (true) {
        JsonValue element;
        if (!Value(&element)) return false;
        out->array.push_back(std::move(element));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { ++pos_; continue; }
        if (text_[pos_] == ']') return ++pos_, true;
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->string);
    }
    if (c == 't') { out->kind = JsonValue::Kind::kBool; out->boolean = true; return Literal("true"); }
    if (c == 'f') { out->kind = JsonValue::Kind::kBool; return Literal("false"); }
    if (c == 'n') { return Literal("null"); }
    // Number.
    size_t end = pos_;
    while (end < text_.size() &&
           (std::string("+-.eE0123456789").find(text_[end]) !=
            std::string::npos)) {
      ++end;
    }
    if (end == pos_) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(pos_, end - pos_).c_str(), nullptr);
    pos_ = end;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---- Rendering ---------------------------------------------------------

double Num(const JsonValue* v, const char* key) {
  if (v == nullptr) return 0;
  const JsonValue* m = v->Find(key);
  return m != nullptr ? m->number : 0;
}

std::string FormatCount(double v) {
  char buf[32];
  if (v >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (v >= 100'000) {
    std::snprintf(buf, sizeof(buf), "%.0fk", v / 1e3);
  } else if (v == static_cast<long long>(v)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

void RenderSlo(const JsonValue& slo) {
  std::printf("SLO  samples %s  traces %s (%s incomplete)  coverage %.1f%%\n",
              FormatCount(Num(&slo, "end_to_end_samples")).c_str(),
              FormatCount(Num(&slo, "traces")).c_str(),
              FormatCount(Num(&slo, "incomplete_traces")).c_str(),
              100 * Num(&slo, "stage_coverage"));
  const JsonValue* e2e = slo.Find("end_to_end_us");
  if (e2e != nullptr) {
    std::printf("     end-to-end p50 %9.1fus   p95 %9.1fus   p99 %9.1fus\n",
                Num(e2e, "p50"), Num(e2e, "p95"), Num(e2e, "p99"));
  }
  const JsonValue* stages = slo.Find("stages");
  if (stages != nullptr && !stages->object.empty()) {
    std::printf("\n  %-12s %10s %12s %7s %12s %12s\n", "STAGE", "COUNT",
                "TOTAL_US", "FRAC", "P50_US", "P99_US");
    for (const auto& [name, stage] : stages->object) {
      std::printf("  %-12s %10s %12s %6.1f%% %12.1f %12.1f\n", name.c_str(),
                  FormatCount(Num(&stage, "count")).c_str(),
                  FormatCount(Num(&stage, "total_us")).c_str(),
                  100 * Num(&stage, "fraction"), Num(&stage, "p50"),
                  Num(&stage, "p99"));
    }
  }
  const JsonValue* path = slo.Find("critical_path");
  if (path != nullptr && !path->array.empty()) {
    std::printf("\n  critical path:");
    for (const JsonValue& entry : path->array) {
      const JsonValue* stage = entry.Find("stage");
      std::printf(" %s %.1f%%", stage != nullptr ? stage->string.c_str() : "?",
                  100 * Num(&entry, "fraction"));
    }
    std::printf("\n");
  }
}

void RenderMetrics(const JsonValue& metrics) {
  const JsonValue* counters = metrics.Find("counters");
  const JsonValue* gauges = metrics.Find("gauges");
  const JsonValue* histograms = metrics.Find("histograms");
  if (gauges != nullptr && !gauges->object.empty()) {
    std::printf("\n  %-44s %12s\n", "GAUGE", "VALUE");
    for (const auto& [name, v] : gauges->object) {
      std::printf("  %-44s %12s\n", name.c_str(),
                  FormatCount(v.number).c_str());
    }
  }
  if (counters != nullptr && !counters->object.empty()) {
    std::printf("\n  %-44s %12s\n", "COUNTER", "VALUE");
    for (const auto& [name, v] : counters->object) {
      std::printf("  %-44s %12s\n", name.c_str(),
                  FormatCount(v.number).c_str());
    }
  }
  if (histograms != nullptr && !histograms->object.empty()) {
    std::printf("\n  %-44s %10s %12s %12s\n", "HISTOGRAM", "COUNT", "P50",
                "P99");
    for (const auto& [name, h] : histograms->object) {
      std::printf("  %-44s %10s %12.1f %12.1f\n", name.c_str(),
                  FormatCount(Num(&h, "count")).c_str(), Num(&h, "p50"),
                  Num(&h, "p99"));
    }
  }
}

int RenderFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "mdv_top: cannot read %s\n", path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  JsonValue root;
  std::string error;
  if (!JsonParser(text).Parse(&root, &error)) {
    std::fprintf(stderr, "mdv_top: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  std::printf("mdv_top — %s\n\n", path.c_str());
  // A bench file nests the snapshot under "metrics"; a raw
  // SnapshotJson() document has "counters"/... at top level.
  const JsonValue* slo = root.Find("slo");
  if (slo != nullptr) RenderSlo(*slo);
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr && root.Find("counters") != nullptr) metrics = &root;
  if (metrics != nullptr) RenderMetrics(*metrics);
  if (slo == nullptr && metrics == nullptr) {
    std::fprintf(stderr,
                 "mdv_top: %s has neither \"metrics\" nor \"counters\"\n",
                 path.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int watch_seconds = 0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--watch" && i + 1 < argc) {
      watch_seconds = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: mdv_top [--watch SECONDS] FILE\n");
      return 0;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: mdv_top [--watch SECONDS] FILE\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: mdv_top [--watch SECONDS] FILE\n");
    return 2;
  }
  if (watch_seconds <= 0) return RenderFile(path);
  while (true) {
    std::printf("\x1b[2J\x1b[H");  // Clear screen, home cursor.
    RenderFile(path);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(watch_seconds));
  }
}
