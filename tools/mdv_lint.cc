// mdv_lint: standalone front-end for the rule-base static analyzer.
//
// Reads a rule file, runs every rule through the normal compile
// pipeline front-end (tokenize → parse → type-check against the
// schema), then lints the resulting rule base: satisfiability of each
// rule's constant constraints, duplicate/subsumed pairs, and dead
// extension chains. Diagnostics go to stdout in the
// `error: rule 'name': ...` format of FormatLintDiagnostic.
//
// Usage: mdv_lint [--schema FILE] [--werror] [--json] RULEFILE
//
// With --json, stdout carries machine-readable JSON Lines instead: one
// object per diagnostic (FormatLintDiagnosticJson; compile errors use
// code "compile-error"), then one summary object
// {"file": ..., "rules": N, "errors": N, "warnings": N}. Exit status is
// unchanged, so CI can both parse the findings and gate on the result.
//
// Rule file format: one rule per block, blocks separated by blank
// lines; `#` starts a comment line. A block may open with `name:` on
// its own line to name the rule (otherwise rules are named rule1,
// rule2, ... in file order). Rule text may span multiple lines.
//
// Schema file format (when the default ObjectGlobe schema does not
// fit), one directive per line:
//   class NAME
//   literal PROP            — literal property of the latest class
//   literal* PROP           — set-valued literal
//   ref PROP CLASS          — weak reference to CLASS
//   ref* PROP CLASS         — set-valued weak reference
//
// Exit status: 0 = clean or warnings only, 1 = lint errors (or
// compile errors in the rule file), 2 = usage/IO problems.

#include <cctype>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "rdf/schema.h"
#include "rules/analyzer.h"
#include "rules/lint.h"
#include "rules/parser.h"

namespace {

struct RuleBlock {
  std::string name;
  std::string text;
};

/// True for `identifier:` (with optional surrounding blanks) — the
/// optional name line opening a rule block. `search ... where p:q` never
/// matches because the line must hold nothing but the identifier.
bool IsNameLine(const std::string& line, std::string* name) {
  size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string::npos) return false;
  size_t colon = line.find(':', begin);
  if (colon == std::string::npos) return false;
  if (line.find_first_not_of(" \t", colon + 1) != std::string::npos) {
    return false;
  }
  std::string candidate = line.substr(begin, colon - begin);
  while (!candidate.empty() && (candidate.back() == ' ' ||
                                candidate.back() == '\t')) {
    candidate.pop_back();
  }
  if (candidate.empty()) return false;
  for (char c : candidate) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      return false;
    }
  }
  *name = candidate;
  return true;
}

std::vector<RuleBlock> SplitRuleFile(const std::string& content) {
  std::vector<RuleBlock> blocks;
  RuleBlock current;
  auto flush = [&] {
    if (current.text.find_first_not_of(" \t\n") != std::string::npos) {
      if (current.name.empty()) {
        current.name = "rule" + std::to_string(blocks.size() + 1);
      }
      blocks.push_back(current);
    }
    current = RuleBlock{};
  };
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    size_t text_begin = line.find_first_not_of(" \t");
    if (text_begin == std::string::npos) {  // Blank: block separator.
      flush();
      continue;
    }
    if (line[text_begin] == '#') continue;
    std::string name;
    if (current.text.empty() && IsNameLine(line, &name)) {
      current.name = name;
      continue;
    }
    current.text += line;
    current.text += '\n';
  }
  flush();
  return blocks;
}

std::optional<mdv::rdf::RdfSchema> LoadSchema(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "mdv_lint: cannot open schema file " << path << "\n";
    return std::nullopt;
  }
  mdv::rdf::RdfSchema schema;
  std::optional<mdv::rdf::ClassDef> open_class;
  auto flush = [&]() -> bool {
    if (!open_class.has_value()) return true;
    mdv::Status status = schema.AddClass(std::move(*open_class));
    open_class.reset();
    if (!status.ok()) {
      std::cerr << "mdv_lint: " << path << ": " << status.message() << "\n";
      return false;
    }
    return true;
  };
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive) || directive[0] == '#') continue;
    auto fail = [&](const std::string& why) {
      std::cerr << "mdv_lint: " << path << ":" << line_no << ": " << why
                << "\n";
      return std::nullopt;
    };
    if (directive == "class") {
      std::string name;
      if (!(fields >> name)) return fail("class needs a name");
      if (!flush()) return std::nullopt;
      open_class = mdv::rdf::ClassDef{};
      open_class->name = name;
      continue;
    }
    const bool set_valued = directive.back() == '*';
    if (set_valued) directive.pop_back();
    if (directive != "literal" && directive != "ref") {
      return fail("unknown directive '" + directive + "'");
    }
    if (!open_class.has_value()) {
      return fail("property outside a class block");
    }
    mdv::rdf::PropertyDef property;
    property.set_valued = set_valued;
    if (!(fields >> property.name)) return fail("property needs a name");
    if (directive == "ref") {
      property.kind = mdv::rdf::PropertyKind::kReference;
      if (!(fields >> property.referenced_class)) {
        return fail("ref needs a target class");
      }
    }
    open_class->properties[property.name] = property;
  }
  if (!flush()) return std::nullopt;
  return schema;
}

int Usage() {
  std::cerr << "usage: mdv_lint [--schema FILE] [--werror] [--json]"
               " RULEFILE\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path;
  std::string rule_path;
  bool werror = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--schema") {
      if (++i == argc) return Usage();
      schema_path = argv[i];
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!rule_path.empty()) {
      return Usage();
    } else {
      rule_path = arg;
    }
  }
  if (rule_path.empty()) return Usage();

  mdv::rdf::RdfSchema schema = mdv::rdf::MakeObjectGlobeSchema();
  if (!schema_path.empty()) {
    std::optional<mdv::rdf::RdfSchema> loaded = LoadSchema(schema_path);
    if (!loaded.has_value()) return 2;
    schema = std::move(*loaded);
  }

  std::ifstream in(rule_path);
  if (!in) {
    std::cerr << "mdv_lint: cannot open " << rule_path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::vector<RuleBlock> blocks = SplitRuleFile(buffer.str());
  if (blocks.empty()) {
    std::cerr << "mdv_lint: " << rule_path << ": no rules found\n";
    return 2;
  }

  // Compile front-end. Earlier rules of the file are visible as
  // extensions to later ones (the rule file models one MDP's rule base,
  // where extensions resolve against registered subscriptions).
  std::vector<mdv::rules::AnalyzedRule> analyzed;
  std::vector<std::string> names;
  bool compile_errors = false;
  auto resolver =
      [&](const std::string& ext) -> std::optional<std::string> {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == ext) {
        return analyzed[i].variable_class.at(
            analyzed[i].ast.register_variable);
      }
    }
    return std::nullopt;
  };
  analyzed.reserve(blocks.size());
  // Compile errors share the diagnostic pipeline: in JSON mode they
  // come out as objects with the (lint-external) code "compile-error".
  auto report_compile_error = [&](const std::string& rule,
                                  const std::string& message) {
    compile_errors = true;
    if (json) {
      std::cout << "{\"severity\": \"error\", \"code\": \"compile-error\", "
                << "\"rule\": \"" << rule << "\", \"related\": \"\", "
                << "\"detail\": \"" << message << "\"}\n";
      return;
    }
    std::cout << "error: rule '" << rule << "': " << message << "\n";
  };
  for (const RuleBlock& block : blocks) {
    mdv::Result<mdv::rules::RuleAst> ast = mdv::rules::ParseRule(block.text);
    if (!ast.ok()) {
      report_compile_error(block.name, ast.status().message());
      continue;
    }
    mdv::Result<mdv::rules::AnalyzedRule> rule =
        mdv::rules::AnalyzeRule(*ast, schema, resolver);
    if (!rule.ok()) {
      report_compile_error(block.name, rule.status().message());
      continue;
    }
    analyzed.push_back(std::move(*rule));
    names.push_back(block.name);
  }

  std::vector<mdv::rules::LintRuleBaseEntry> entries;
  entries.reserve(analyzed.size());
  for (size_t i = 0; i < analyzed.size(); ++i) {
    entries.push_back({names[i], &analyzed[i]});
  }
  std::vector<mdv::rules::LintDiagnostic> diagnostics =
      mdv::rules::LintRuleBase(entries, schema);

  int errors = compile_errors ? 1 : 0;
  int warnings = 0;
  for (const mdv::rules::LintDiagnostic& diagnostic : diagnostics) {
    std::cout << (json ? mdv::rules::FormatLintDiagnosticJson(diagnostic)
                       : mdv::rules::FormatLintDiagnostic(diagnostic))
              << "\n";
    if (diagnostic.severity == mdv::rules::LintSeverity::kError) {
      ++errors;
    } else {
      ++warnings;
    }
  }
  if (json) {
    std::cout << "{\"file\": \"" << rule_path << "\", \"rules\": "
              << entries.size() << ", \"errors\": " << errors
              << ", \"warnings\": " << warnings << "}\n";
  } else {
    std::cout << rule_path << ": " << entries.size() << " rule"
              << (entries.size() == 1 ? "" : "s") << ", " << errors
              << " error" << (errors == 1 ? "" : "s") << ", " << warnings
              << " warning" << (warnings == 1 ? "" : "s") << "\n";
  }
  if (errors > 0) return 1;
  if (werror && warnings > 0) return 1;
  return 0;
}
