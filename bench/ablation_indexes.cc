// Ablation (§3.3.4): the physical design claim — the filter tables are
// "used as indexes to all triggering rules" and "created with indexes
// supporting an efficient access on the database level". With indexes
// disabled every probe degenerates to a full scan. OID rules show the
// starkest difference (point lookup vs. scan of the whole rule base).

#include "bench_common.h"

int main() {
  using namespace mdv::bench;
  using mdv::bench_support::BenchRuleType;
  using mdv::bench_support::FilterFixture;
  using mdv::bench_support::WorkloadGenerator;

  // Index-less scans are quadratic in practice; keep the base small.
  const size_t rule_base = FullScale() ? 5000 : 1000;
  std::printf("# ablation_indexes: OID rules, %zu rules\n", rule_base);
  std::printf("# columns: bench,series,batch_size,avg_registration_ms\n");

  for (bool indexes : {true, false}) {
    mdv::filter::TableOptions table_options;
    table_options.create_indexes = indexes;
    WorkloadGenerator generator({BenchRuleType::kOid, rule_base, 0.1});
    FilterFixture fixture(mdv::filter::RuleStoreOptions{}, table_options);
    RegisterRuleBase(&fixture, generator, rule_base);
    WarmUp(&fixture, generator);
    size_t next_doc = 0;
    RunBatchSweep("ablation_indexes", indexes ? "indexes_on" : "indexes_off",
                  &fixture, generator, &next_doc);
  }
  return 0;
}
