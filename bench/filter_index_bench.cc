// Initial-iteration access paths, fig12-15 style: N COMP rules on one
// property (`c.synthValue > INT`, the worst case of Figures 13/15 — every
// delta atom probes the whole per-property rule list in the seed scan
// path), matched against a fixed document batch via
//  - the predicate index (FilterOptions::use_predicate_index = true), and
//  - the seed FilterRules table scan (use_predicate_index = false).
//
// COMP rules have no join rules, so FilterEngine::Run in probe mode
// (update_materialized = false) measures exactly the initial iteration
// plus the (identical in both modes) ResultObjects write. Results go to
// stdout as CSV and to BENCH_filter.json (override with MDV_BENCH_JSON)
// as the start of the perf trajectory.

#include "bench_common.h"

#include <cinttypes>

#include "filter/data_store.h"

int main() {
  using namespace mdv::bench;
  using mdv::bench_support::BenchRuleType;
  using mdv::bench_support::FilterFixture;
  using mdv::bench_support::WorkloadGenerator;
  using mdv::filter::FilterOptions;
  using mdv::filter::FilterRunResult;

  std::printf("# filter_index: initial iteration, index vs table scan\n");
  std::printf("# columns: figure,series,batch_size,ms_per_run\n");

  const size_t kDocs = 10;
  std::vector<size_t> rule_bases = FullScale()
                                       ? std::vector<size_t>{1000, 10000,
                                                             100000}
                                       : std::vector<size_t>{1000, 10000};
  for (size_t rule_base : rule_bases) {
    WorkloadGenerator generator({BenchRuleType::kComp, rule_base, 0.1});
    FilterFixture fixture;
    RegisterRuleBase(&fixture, generator, rule_base);

    // Insert the delta atoms once; the probe runs re-match them without
    // touching MaterializedResults, so every repetition sees the same
    // state.
    mdv::rdf::Statements delta;
    for (const mdv::rdf::RdfDocument& doc :
         generator.MakeDocumentBatch(0, kDocs)) {
      mdv::rdf::Statements atoms = doc.ToStatements();
      delta.insert(delta.end(), atoms.begin(), atoms.end());
    }
    BenchCheck(mdv::filter::InsertAtoms(&fixture.db(), delta),
               "insert atoms");

    auto measure = [&](bool use_index, FilterRunResult* last) {
      FilterOptions options;
      options.update_materialized = false;
      options.use_predicate_index = use_index;
      // Warm up once, then repeat until the sample is long enough to
      // trust (or 50 reps).
      *last = BenchMust(fixture.engine().Run(delta, options), "warmup run");
      double total_ms = 0.0;
      int reps = 0;
      while (reps < 50 && (reps < 3 || total_ms < 300.0)) {
        total_ms += TimeMs([&] {
          *last = BenchMust(fixture.engine().Run(delta, options), "run");
        });
        ++reps;
      }
      return total_ms / reps;
    };

    FilterRunResult indexed_result, scan_result;
    double indexed_ms = measure(true, &indexed_result);
    double scan_ms = measure(false, &scan_result);
    double speedup = indexed_ms > 0.0 ? scan_ms / indexed_ms : 0.0;

    std::string series = std::to_string(rule_base) + "_rules";
    std::printf("filter_index,%s_indexed,%zu,%.4f\n", series.c_str(), kDocs,
                indexed_ms);
    std::printf("filter_index,%s_scan,%zu,%.4f\n", series.c_str(), kDocs,
                scan_ms);
    std::printf("filter_index,%s_speedup,%zu,%.2f\n", series.c_str(), kDocs,
                speedup);
    std::fflush(stdout);

    char extra[256];
    std::snprintf(extra, sizeof(extra),
                  "\"rule_base\": %zu, \"index_probes\": %" PRId64
                  ", \"index_hits\": %" PRId64,
                  rule_base, indexed_result.stats.index_probes,
                  indexed_result.stats.index_hits);
    BenchRecords().push_back(BenchRecord{"filter_index", series + "_indexed",
                                         kDocs, indexed_ms, "ms_per_run",
                                         extra});
    std::snprintf(extra, sizeof(extra),
                  "\"rule_base\": %zu, \"scan_fallbacks\": %" PRId64,
                  rule_base, scan_result.stats.scan_fallbacks);
    BenchRecords().push_back(BenchRecord{"filter_index", series + "_scan",
                                         kDocs, scan_ms, "ms_per_run",
                                         extra});
    std::snprintf(extra, sizeof(extra), "\"rule_base\": %zu", rule_base);
    BenchRecords().push_back(BenchRecord{"filter_index", series + "_speedup",
                                         kDocs, speedup, "scan_over_indexed",
                                         extra});
  }

  WriteBenchJson("BENCH_filter.json");
  return 0;
}
