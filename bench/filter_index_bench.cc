// Filter-engine microbenchmarks, three figures in one binary:
//
//  - filter_index (fig12-15 style): initial-iteration access paths — N
//    COMP rules on one property matched via the predicate index vs the
//    seed FilterRules table scan.
//  - filter_path_join: grouped join evaluation on the PATH workload
//    (`c.serverInformation.memory = INT` decomposes into a join), the
//    series that exercises the groups_evaluated/members_evaluated
//    counters end to end.
//  - filter_shard: worker scaling of the sharded publish fan-out — the
//    PATH workload partitioned into --shards rule-base shards, one probe
//    run per measurement, swept over --threads worker-pool sizes. The
//    `<rules>_rules_speedup_wK` records report the K-worker speedup over
//    the single-worker run of the same sharded layout.
//
// Flags: --only=<figure-prefix> runs a subset (index|path|shard),
// --shards=<N> and --threads=<W1,W2,...> parameterize the shard figure.
// Results go to stdout as CSV and to BENCH_filter.json (override with
// MDV_BENCH_JSON).

#include "bench_common.h"

#include <cinttypes>
#include <cstring>
#include <thread>

#include "filter/data_store.h"

namespace {

using namespace mdv::bench;
using mdv::bench_support::BenchRuleType;
using mdv::bench_support::FilterFixture;
using mdv::bench_support::WorkloadGenerator;
using mdv::filter::EngineOptions;
using mdv::filter::FilterOptions;
using mdv::filter::FilterRunResult;
using mdv::filter::RuleStoreOptions;

struct Flags {
  std::string only;                        // Empty = all figures.
  int shards = 8;                          // Shard figure: regular shards.
  std::vector<int> threads = {1, 2, 4, 8}; // Shard figure: pool sizes.
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--only=", 7) == 0) {
      flags.only = arg + 7;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      flags.shards = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      flags.threads.clear();
      for (const char* p = arg + 10; *p != '\0';) {
        flags.threads.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --only=index|path|shard, "
                   "--shards=N, --threads=W1,W2,...)\n",
                   arg);
      std::exit(2);
    }
  }
  if (flags.shards < 1 || flags.threads.empty()) {
    std::fprintf(stderr, "--shards must be >= 1, --threads non-empty\n");
    std::exit(2);
  }
  return flags;
}

bool RunFigure(const Flags& flags, const char* name) {
  return flags.only.empty() || flags.only == name;
}

/// Repeats probe runs of `delta` until the sample is long enough to
/// trust (or 50 reps); returns ms per run, last result in `last`.
double MeasureProbeRuns(FilterFixture* fixture, const mdv::rdf::Statements& delta,
                       bool use_index, FilterRunResult* last) {
  FilterOptions options;
  options.update_materialized = false;
  options.use_predicate_index = use_index;
  *last = BenchMust(fixture->engine().Run(delta, options), "warmup run");
  double total_ms = 0.0;
  int reps = 0;
  while (reps < 50 && (reps < 3 || total_ms < 300.0)) {
    total_ms += TimeMs([&] {
      *last = BenchMust(fixture->engine().Run(delta, options), "run");
    });
    ++reps;
  }
  return total_ms / reps;
}

mdv::rdf::Statements MakeDelta(const WorkloadGenerator& generator,
                               size_t first, size_t count) {
  mdv::rdf::Statements delta;
  for (const mdv::rdf::RdfDocument& doc :
       generator.MakeDocumentBatch(first, count)) {
    mdv::rdf::Statements atoms = doc.ToStatements();
    delta.insert(delta.end(), atoms.begin(), atoms.end());
  }
  return delta;
}

// ---- filter_index: index vs scan on the COMP workload. -----------------

void RunIndexFigure() {
  const size_t kDocs = 10;
  std::vector<size_t> rule_bases = FullScale()
                                       ? std::vector<size_t>{1000, 10000,
                                                             100000}
                                       : std::vector<size_t>{1000, 10000};
  for (size_t rule_base : rule_bases) {
    WorkloadGenerator generator({BenchRuleType::kComp, rule_base, 0.1});
    FilterFixture fixture;
    RegisterRuleBase(&fixture, generator, rule_base);

    // Insert the delta atoms once; the probe runs re-match them without
    // touching MaterializedResults, so every repetition sees the same
    // state.
    mdv::rdf::Statements delta = MakeDelta(generator, 0, kDocs);
    BenchCheck(mdv::filter::InsertAtoms(&fixture.db(), delta),
               "insert atoms");

    FilterRunResult indexed_result, scan_result;
    double indexed_ms = MeasureProbeRuns(&fixture, delta, true,
                                         &indexed_result);
    double scan_ms = MeasureProbeRuns(&fixture, delta, false, &scan_result);
    double speedup = indexed_ms > 0.0 ? scan_ms / indexed_ms : 0.0;

    std::string series = std::to_string(rule_base) + "_rules";
    std::printf("filter_index,%s_indexed,%zu,%.4f\n", series.c_str(), kDocs,
                indexed_ms);
    std::printf("filter_index,%s_scan,%zu,%.4f\n", series.c_str(), kDocs,
                scan_ms);
    std::printf("filter_index,%s_speedup,%zu,%.2f\n", series.c_str(), kDocs,
                speedup);
    std::fflush(stdout);

    char extra[256];
    std::snprintf(extra, sizeof(extra),
                  "\"rule_base\": %zu, \"index_probes\": %" PRId64
                  ", \"index_hits\": %" PRId64,
                  rule_base, indexed_result.stats.index_probes,
                  indexed_result.stats.index_hits);
    BenchRecords().push_back(BenchRecord{"filter_index", series + "_indexed",
                                         kDocs, indexed_ms, "ms_per_run",
                                         extra});
    std::snprintf(extra, sizeof(extra),
                  "\"rule_base\": %zu, \"scan_fallbacks\": %" PRId64,
                  rule_base, scan_result.stats.scan_fallbacks);
    BenchRecords().push_back(BenchRecord{"filter_index", series + "_scan",
                                         kDocs, scan_ms, "ms_per_run",
                                         extra});
    std::snprintf(extra, sizeof(extra), "\"rule_base\": %zu", rule_base);
    BenchRecords().push_back(BenchRecord{"filter_index", series + "_speedup",
                                         kDocs, speedup, "scan_over_indexed",
                                         extra});
  }
}

// ---- filter_path_join: grouped join evaluation on PATH rules. ----------

void RunPathJoinFigure() {
  const size_t kRules = FullScale() ? 10000 : 1000;
  const size_t kDocs = 100;
  WorkloadGenerator generator({BenchRuleType::kPath, kRules, 0.1});
  FilterFixture fixture;
  RegisterRuleBase(&fixture, generator, kRules);
  mdv::rdf::Statements delta = MakeDelta(generator, 0, kDocs);
  BenchCheck(mdv::filter::InsertAtoms(&fixture.db(), delta), "insert atoms");

  FilterRunResult result;
  double ms = MeasureProbeRuns(&fixture, delta, true, &result);

  std::string series = std::to_string(kRules) + "_rules";
  std::printf("filter_path_join,%s,%zu,%.4f\n", series.c_str(), kDocs, ms);
  std::fflush(stdout);
  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "\"rule_base\": %zu, \"groups_evaluated\": %" PRId64
                ", \"members_evaluated\": %" PRId64
                ", \"join_matches\": %" PRId64,
                kRules, result.stats.groups_evaluated,
                result.stats.members_evaluated, result.stats.join_matches);
  BenchRecords().push_back(BenchRecord{"filter_path_join", series, kDocs, ms,
                                       "ms_per_run", extra});
  if (result.stats.groups_evaluated <= 0 ||
      result.stats.members_evaluated <= 0) {
    std::fprintf(stderr,
                 "filter_path_join did not exercise grouped join "
                 "evaluation (groups=%" PRId64 ", members=%" PRId64 ")\n",
                 result.stats.groups_evaluated,
                 result.stats.members_evaluated);
    std::exit(1);
  }
}

// ---- filter_shard: worker scaling of the sharded fan-out. --------------

void RunShardFigure(const Flags& flags) {
  const size_t kDocs = 256;
  // Worker scaling is bounded by the machine: on a 1-CPU host every
  // pool size time-slices one core and speedup_wK stays ~1.0, so the
  // records carry the cpu count for interpretation (EXPERIMENTS.md).
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::vector<size_t> rule_bases = FullScale()
                                       ? std::vector<size_t>{10000, 100000}
                                       : std::vector<size_t>{10000};
  for (size_t rule_base : rule_bases) {
    WorkloadGenerator generator({BenchRuleType::kPath, rule_base, 0.1});
    std::string series_base = std::to_string(rule_base) + "_rules";
    double one_worker_ms = 0.0;
    for (int workers : flags.threads) {
      RuleStoreOptions rule_options;
      rule_options.num_shards = flags.shards;
      EngineOptions engine_options;
      engine_options.num_workers = workers;
      FilterFixture fixture(rule_options, mdv::filter::TableOptions{},
                            engine_options);
      RegisterRuleBase(&fixture, generator, rule_base);
      mdv::rdf::Statements delta = MakeDelta(generator, 0, kDocs);
      BenchCheck(mdv::filter::InsertAtoms(&fixture.db(), delta),
                 "insert atoms");

      FilterRunResult result;
      double ms = MeasureProbeRuns(&fixture, delta, true, &result);
      if (workers == 1 || one_worker_ms == 0.0) one_worker_ms = ms;

      std::string series = series_base + "_w" + std::to_string(workers);
      std::printf("filter_shard,%s,%zu,%.4f\n", series.c_str(), kDocs, ms);
      std::fflush(stdout);
      char extra[256];
      std::snprintf(extra, sizeof(extra),
                    "\"rule_base\": %zu, \"shards\": %d, \"workers\": %d, "
                    "\"host_cpus\": %u",
                    rule_base, flags.shards, workers, host_cpus);
      BenchRecords().push_back(BenchRecord{"filter_shard", series, kDocs, ms,
                                           "ms_per_run", extra});
      if (workers != 1) {
        double speedup = ms > 0.0 ? one_worker_ms / ms : 0.0;
        std::string speedup_series =
            series_base + "_speedup_w" + std::to_string(workers);
        std::printf("filter_shard,%s,%zu,%.2f\n", speedup_series.c_str(),
                    kDocs, speedup);
        std::fflush(stdout);
        BenchRecords().push_back(BenchRecord{"filter_shard", speedup_series,
                                             kDocs, speedup,
                                             "speedup_over_w1", extra});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  std::printf("# filter_index: initial iteration, index vs table scan\n");
  std::printf("# filter_path_join: grouped join evaluation (PATH rules)\n");
  std::printf("# filter_shard: worker scaling, %d shards\n", flags.shards);
  std::printf("# columns: figure,series,batch_size,value\n");

  if (RunFigure(flags, "index")) RunIndexFigure();
  if (RunFigure(flags, "path")) RunPathJoinFigure();
  if (RunFigure(flags, "shard")) RunShardFigure(flags);

  WriteBenchJson("BENCH_filter.json");
  return 0;
}
