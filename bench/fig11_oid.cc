// Figure 11: OID rules — average registration cost per document as a
// function of the batch size, for rule bases of 10,000 and 100,000
// rules. Expected shape: cost drops with batch size then flattens, and
// the two curves nearly coincide (the rule base size does not matter for
// OID rules, which resolve with one point lookup on the value index).

#include "bench_common.h"

int main() {
  using namespace mdv::bench;
  using mdv::bench_support::BenchRuleType;
  using mdv::bench_support::FilterFixture;
  using mdv::bench_support::WorkloadGenerator;

  PrintHeader("fig11", "OID rules, varying rule base size");
  std::vector<size_t> rule_bases =
      FullScale() ? std::vector<size_t>{10000, 100000}
                  : std::vector<size_t>{2000, 20000};
  for (size_t rule_base : rule_bases) {
    WorkloadGenerator generator({BenchRuleType::kOid, rule_base, 0.1});
    FilterFixture fixture;
    RegisterRuleBase(&fixture, generator, rule_base);
    WarmUp(&fixture, generator);
    size_t next_doc = 0;
    std::string series = std::to_string(rule_base) + "_rules";
    RunBatchSweep("fig11", series.c_str(), &fixture, generator, &next_doc);
  }
  return 0;
}
