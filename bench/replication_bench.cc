// Replica-lifecycle measurement for the versioned LMR tier (src/mdv/lmr),
// plus the crash harness behind the CI replication smoke.
//
// Default mode emits BENCH_replication.json:
//   - full-join latency as a function of cache size: a replica that is
//     already subscribed issues JoinReplica(delta=false) against an MDP
//     holding {64, 256, 1024} matching documents and we time the
//     request -> chunked snapshot -> finalize round trip over the
//     asynchronous transport, plus the bytes it moved;
//   - delta catchup vs full snapshot: the same replica is made stale on
//     1/8 of the documents (updates published while it sits in
//     kTimeToLive mode, which drops pushes), then rejoins with
//     delta=true. The MDP's per-resource version cursor skips
//     everything the replica already holds, so catchup bytes must be
//     strictly below the full-snapshot bytes at every size.
//
// Crash harness (used by .github/workflows/ci.yml):
//   replication_bench --crash-dir D --serve
//     builds a durable MDP (D/mdp) + durable sync LMR (D/lmr) with
//     fsync-per-append, prints SERVING, then registers documents
//     (with an update every tenth document so version stamps advance
//     past 1) until killed -9 mid-storm.
//   replication_bench --crash-dir D --recover
//     recovers both images onto an asynchronous network, audits the
//     cache, delta-joins the revived replica, full-joins a fresh
//     replica, and requires (a) delta bytes strictly below the fresh
//     replica's full-snapshot bytes (measured from transport stats) and
//     (b) the two caches byte-identical. Exit 0 on success, 1 on any
//     violation.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mdv/lmr.h"
#include "mdv/metadata_provider.h"
#include "mdv/network.h"
#include "rdf/schema.h"
#include "wal/log.h"

namespace mdv::bench {
namespace {

namespace fs = std::filesystem;

constexpr const char* kReplRule =
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64";

std::string ScratchDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("mdv_replication_" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// A two-resource document whose host strongly references its info.
/// `memory` > 64 keeps every document inside kReplRule's match set so
/// the cache size equals the document count.
rdf::RdfDocument MakeReplDoc(size_t i, int memory) {
  const std::string uri = "repl/doc" + std::to_string(i) + ".rdf";
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(memory)));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", rdf::PropertyValue::Literal("repl.host"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  BenchCheck(doc.AddResource(std::move(info)), "AddResource info");
  BenchCheck(doc.AddResource(std::move(host)), "AddResource host");
  return doc;
}

/// Canonical text form of a replica's cache: uri, entry version, sorted
/// resource content and match/closure markers. Two converged replicas
/// must produce byte-identical dumps.
std::string DumpCache(const LocalMetadataRepository& lmr) {
  std::vector<std::string> lines;
  for (const std::string& uri : lmr.CachedUris()) {
    const CacheEntry* entry = lmr.Find(uri);
    std::string line = uri + "|" + entry->resource.class_name() + "|v" +
                       std::to_string(entry->version.origin) + "." +
                       std::to_string(entry->version.seq);
    std::vector<std::string> props;
    for (const rdf::Property& prop : entry->resource.properties()) {
      props.push_back(prop.name + "=" +
                      (prop.value.is_literal() ? "lit:" : "ref:") +
                      prop.value.text());
    }
    std::sort(props.begin(), props.end());
    for (const std::string& prop : props) line += "|" + prop;
    line += "|nsubs=" + std::to_string(entry->matched_subscriptions.size()) +
            "|sr=" + std::to_string(entry->strong_referrers);
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string dump;
  for (const std::string& line : lines) dump += line + "\n";
  return dump;
}

// ---- default mode: BENCH_replication.json ----------------------------

/// Quiet asynchronous network: real wire codec, queues and ack protocol
/// (so transport_stats().bytes_sent means something) without injected
/// faults or latency, keeping the timing signal about the protocol.
NetworkOptions QuietAsyncOptions() {
  NetworkOptions options;
  options.asynchronous = true;
  return options;
}

int RunDefault() {
  std::vector<size_t> sizes = {64, 256, 1024};
  if (FullScale()) sizes.push_back(4096);

  std::printf("# replication_bench: full join vs delta catchup\n");
  std::printf("# columns: figure,series,cache_size,value\n");

  for (const size_t docs : sizes) {
    rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
    Network network(QuietAsyncOptions());
    MetadataProvider provider(&schema, &network);
    LocalMetadataRepository replica(1, &schema, &provider, &network);
    BenchMust(replica.Subscribe(kReplRule), "subscribe");
    for (size_t i = 0; i < docs; ++i) {
      BenchCheck(provider.RegisterDocument(MakeReplDoc(i, 128)), "register");
    }
    if (!network.WaitQuiescent()) {
      std::fprintf(stderr, "network did not quiesce after publish\n");
      return 1;
    }

    // Full join: re-ship the entire match set (what a brand-new replica
    // pays), timed end to end over the async transport.
    JoinOptions full;
    full.delta = false;
    const int64_t full_before = network.transport_stats().bytes_sent;
    const double full_ms =
        TimeMs([&] { BenchCheck(replica.JoinReplica(full), "full join"); });
    const int64_t full_bytes =
        network.transport_stats().bytes_sent - full_before;
    std::printf("replication,join_full,%zu,join_ms=%.2f,bytes=%lld\n", docs,
                full_ms, static_cast<long long>(full_bytes));
    BenchRecords().push_back(
        BenchRecord{"replication", "join_full", docs, full_ms, "join_ms",
                    "\"bytes\": " + std::to_string(full_bytes)});

    // Make 1/8 of the documents stale: kTimeToLive drops pushes, so the
    // updates below never reach the replica and its version cursor
    // falls behind on exactly those entries.
    replica.set_consistency_mode(ConsistencyMode::kTimeToLive);
    const size_t stale = docs / 8;
    for (size_t i = 0; i < stale; ++i) {
      BenchCheck(provider.UpdateDocument(MakeReplDoc(i, 130)), "update");
    }
    if (!network.WaitQuiescent()) {
      std::fprintf(stderr, "network did not quiesce after updates\n");
      return 1;
    }
    replica.set_consistency_mode(ConsistencyMode::kNotifications);

    // Delta catchup: the join request carries the per-entry cursor and
    // the MDP ships only the resources whose stamp moved past it.
    const int64_t delta_before = network.transport_stats().bytes_sent;
    const double delta_ms =
        TimeMs([&] { BenchCheck(replica.JoinReplica(), "delta join"); });
    const int64_t delta_bytes =
        network.transport_stats().bytes_sent - delta_before;
    std::printf(
        "replication,catchup_delta,%zu,join_ms=%.2f,bytes=%lld,stale=%zu\n",
        docs, delta_ms, static_cast<long long>(delta_bytes), stale);
    BenchRecords().push_back(
        BenchRecord{"replication", "catchup_delta", docs, delta_ms, "join_ms",
                    "\"bytes\": " + std::to_string(delta_bytes) +
                        ", \"stale_docs\": " + std::to_string(stale)});
    std::fflush(stdout);

    if (delta_bytes >= full_bytes) {
      std::fprintf(stderr,
                   "delta catchup (%lld bytes) not below full snapshot "
                   "(%lld bytes) at %zu documents\n",
                   static_cast<long long>(delta_bytes),
                   static_cast<long long>(full_bytes), docs);
      return 1;
    }
    BenchCheck(replica.AuditCacheInvariants(), "audit");
  }

  WriteBenchJson("BENCH_replication.json");
  return 0;
}

// ---- crash harness ---------------------------------------------------

int RunServe(const std::string& crash_dir) {
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  MetadataProvider provider(&schema, &network);
  wal::WalOptions mdp_options;
  mdp_options.dir = crash_dir + "/mdp";
  BenchCheck(provider.EnableDurability(mdp_options), "EnableDurability");

  wal::WalOptions lmr_options;
  lmr_options.dir = crash_dir + "/lmr";
  std::unique_ptr<LocalMetadataRepository> lmr =
      BenchMust(LocalMetadataRepository::OpenDurable(1, &schema, &provider,
                                                     &network, lmr_options),
                "OpenDurable");
  BenchMust(lmr->Subscribe(kReplRule), "subscribe");

  std::printf("SERVING\n");
  std::fflush(stdout);
  // Register until killed; every tenth document is also updated so the
  // image the recovery phase inherits carries per-resource stamps past
  // seq 1 (the interesting case for the delta cursor). fsync-per-append
  // (the WalOptions default) means everything acknowledged below is on
  // disk when SIGKILL lands.
  for (size_t i = 0; i < 1000000; ++i) {
    BenchCheck(provider.RegisterDocument(MakeReplDoc(i, 128)), "register");
    if (i % 10 == 5) {
      BenchCheck(provider.UpdateDocument(MakeReplDoc(i - 3, 132)), "update");
    }
    if ((i + 1) % 25 == 0) {
      std::printf("registered %zu\n", i + 1);
      std::fflush(stdout);
    }
  }
  return 0;
}

int RunRecover(const std::string& crash_dir) {
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  // Recovery runs on an asynchronous network: the byte accounting for
  // the delta-vs-full assertion needs real transport frames. The serve
  // phase was synchronous, so the recovered journal holds only
  // self-journaled (sender 0) frames and no stale flow state.
  Network network(QuietAsyncOptions());
  MetadataProvider provider(&schema, &network);
  wal::WalOptions mdp_options;
  mdp_options.dir = crash_dir + "/mdp";
  BenchCheck(provider.EnableDurability(mdp_options), "recover mdp");

  wal::WalOptions lmr_options;
  lmr_options.dir = crash_dir + "/lmr";
  std::unique_ptr<LocalMetadataRepository> revived =
      BenchMust(LocalMetadataRepository::OpenDurable(1, &schema, &provider,
                                                     &network, lmr_options),
                "recover lmr");
  BenchCheck(revived->AuditCacheInvariants(), "audit recovered lmr");
  const size_t replayed = revived->CacheSize();

  // Journal-before-send: the crashed replica may lag the provider but
  // can never have applied something the provider does not know about.
  const std::vector<std::string> truth =
      BenchMust(provider.Browse(kReplRule), "browse");
  std::set<std::string> truth_set(truth.begin(), truth.end());
  for (const std::string& uri : revived->CachedUris()) {
    const CacheEntry* entry = revived->Find(uri);
    if (entry->matched_subscriptions.empty()) continue;  // Strong closure.
    if (truth_set.count(uri) == 0) {
      std::fprintf(stderr, "phantom cache entry after recovery: %s\n",
                   uri.c_str());
      return 1;
    }
  }

  // Delta catchup closes the crash gap; the cursor built from the
  // replayed cache keeps already-held content off the wire.
  const int64_t delta_before = network.transport_stats().bytes_sent;
  BenchCheck(revived->JoinReplica(), "delta catchup");
  const int64_t delta_bytes =
      network.transport_stats().bytes_sent - delta_before;
  BenchCheck(revived->AuditCacheInvariants(), "audit after catchup");

  // A fresh replica joining from nothing pays the full snapshot.
  LocalMetadataRepository fresh(2, &schema, &provider, &network);
  BenchMust(fresh.Subscribe(kReplRule), "subscribe fresh");
  JoinOptions full;
  full.delta = false;
  const int64_t full_before = network.transport_stats().bytes_sent;
  BenchCheck(fresh.JoinReplica(full), "full join fresh");
  const int64_t full_bytes =
      network.transport_stats().bytes_sent - full_before;

  std::printf("recovered: mdp_documents=%zu truth_matches=%zu "
              "replayed_entries=%zu delta_bytes=%lld full_bytes=%lld\n",
              provider.documents().size(), truth_set.size(), replayed,
              static_cast<long long>(delta_bytes),
              static_cast<long long>(full_bytes));

  if (delta_bytes >= full_bytes) {
    std::fprintf(stderr,
                 "delta catchup (%lld bytes) not below a fresh full join "
                 "(%lld bytes)\n",
                 static_cast<long long>(delta_bytes),
                 static_cast<long long>(full_bytes));
    return 1;
  }

  // The revived replica must end byte-identical to the fresh one.
  const std::string revived_dump = DumpCache(*revived);
  const std::string fresh_dump = DumpCache(fresh);
  if (revived_dump != fresh_dump) {
    std::fprintf(stderr,
                 "caches diverged after catchup\n-- revived --\n%s"
                 "-- fresh --\n%s",
                 revived_dump.c_str(), fresh_dump.c_str());
    return 1;
  }
  std::printf("converged: entries=%zu\n", revived->CacheSize());
  return 0;
}

}  // namespace
}  // namespace mdv::bench

int main(int argc, char** argv) {
  std::string crash_dir;
  bool serve = false;
  bool recover = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--crash-dir") == 0 && i + 1 < argc) {
      crash_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else {
      std::fprintf(
          stderr,
          "usage: replication_bench [--crash-dir DIR --serve|--recover]\n");
      return 2;
    }
  }
  if (serve || recover) {
    if (crash_dir.empty() || (serve && recover)) {
      std::fprintf(stderr, "--serve/--recover need --crash-dir DIR\n");
      return 2;
    }
    return serve ? mdv::bench::RunServe(crash_dir)
                 : mdv::bench::RunRecover(crash_dir);
  }
  (void)mdv::bench::ScratchDir;  // Reserved for future journal sweeps.
  return mdv::bench::RunDefault();
}
