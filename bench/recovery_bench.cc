// Durability cost and recovery-speed measurement for the WAL subsystem
// (src/wal), plus the crash harness behind the CI crash-recovery smoke.
//
// Default mode emits BENCH_recovery.json:
//   - publish-path append overhead: per-document registration time on a
//     PATH rule base (10k rules under MDV_BENCH_FULL=1) with the WAL
//     off vs on under each fsync policy, and the derived overhead_pct
//     per policy (acceptance: group-commit overhead <= 10%);
//   - replay throughput and time-to-recover as a function of log
//     length, measured by recovering copies of the journal taken at
//     increasing log lengths;
//   - time-to-recover after a checkpoint (snapshot + empty suffix) for
//     the same final state, the payoff of compaction.
//
// Crash harness (used by .github/workflows/ci.yml):
//   recovery_bench --crash-dir D --serve
//     builds a durable MDP (D/mdp) + durable sync LMR (D/lmr) with
//     fsync-per-append, prints SERVING, then registers documents until
//     killed (kill -9 mid-batch is the point).
//   recovery_bench --crash-dir D --recover
//     recovers both images, audits them, proves the LMR cache is a
//     subset of the provider's truth (journal-before-send means the
//     LMR can only be behind, never ahead), refreshes, and requires
//     exact convergence. Exit 0 on success, 1 on any violation.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mdv/lmr.h"
#include "mdv/metadata_provider.h"
#include "mdv/network.h"
#include "rdf/schema.h"
#include "wal/log.h"

namespace mdv::bench {
namespace {

namespace fs = std::filesystem;

constexpr const char* kCrashRule =
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64";

std::string ScratchDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("mdv_recovery_" + name);
  fs::remove_all(dir);
  return dir.string();
}

rdf::RdfDocument MakeCrashDoc(size_t i) {
  const std::string uri = "crash/doc" + std::to_string(i) + ".rdf";
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory", rdf::PropertyValue::Literal(
                                 i % 2 == 0 ? "128" : "32"));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", rdf::PropertyValue::Literal("crash.host"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  BenchCheck(doc.AddResource(std::move(info)), "AddResource info");
  BenchCheck(doc.AddResource(std::move(host)), "AddResource host");
  return doc;
}

// ---- default mode: BENCH_recovery.json -------------------------------

struct PublishSeries {
  const char* name;
  bool wal = false;
  wal::FsyncPolicy fsync = wal::FsyncPolicy::kNone;
};

/// Registers the rule base and times per-document registration. Returns
/// avg ms/doc; leaves the journal directory (if any) populated.
double RunPublishSeries(const PublishSeries& series,
                        const bench_support::WorkloadGenerator& generator,
                        size_t rules, size_t docs, const std::string& dir) {
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  filter::RuleStoreOptions rule_options;
  rule_options.num_shards = 4;
  MetadataProvider provider(&schema, &network, rule_options);
  if (series.wal) {
    wal::WalOptions options;
    options.dir = dir;
    options.fsync = series.fsync;
    BenchCheck(provider.EnableDurability(options), "EnableDurability");
  }
  for (size_t i = 0; i < rules; ++i) {
    BenchMust(provider.Subscribe(1, generator.RuleText(i)), "subscribe");
  }
  const double ms = TimeMs([&] {
    for (size_t j = 0; j < docs; ++j) {
      BenchCheck(provider.RegisterDocument(generator.MakeDocument(j)),
                 "register");
    }
  });
  return ms / static_cast<double>(docs);
}

/// Times a fresh recovery of the journal in `dir` and returns (ms,
/// records replayed).
std::pair<double, size_t> TimeRecovery(const std::string& dir) {
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  filter::RuleStoreOptions rule_options;
  rule_options.num_shards = 4;
  MetadataProvider provider(&schema, &network, rule_options);
  wal::WalOptions options;
  options.dir = dir;
  const double ms = TimeMs(
      [&] { BenchCheck(provider.EnableDurability(options), "recover"); });
  return {ms, provider.recovery_info().records.size()};
}

int RunDefault() {
  const size_t kRules = FullScale() ? 10000 : 1000;
  const size_t kDocs = FullScale() ? 300 : 100;
  bench_support::WorkloadGenerator generator(
      {bench_support::BenchRuleType::kPath, kRules, 0.1});

  std::printf("# recovery_bench: %zu PATH rules, %zu documents\n", kRules,
              kDocs);
  std::printf("# columns: figure,series,rules,avg_registration_ms\n");

  const PublishSeries kSeries[] = {
      {"publish_wal_off", false, wal::FsyncPolicy::kNone},
      {"publish_wal_fsync_none", true, wal::FsyncPolicy::kNone},
      {"publish_wal_fsync_batch", true, wal::FsyncPolicy::kBatch},
      {"publish_wal_fsync_always", true, wal::FsyncPolicy::kAlways},
  };
  double baseline_ms = 0;
  std::string replay_dir;
  for (const PublishSeries& series : kSeries) {
    const std::string dir = ScratchDir(series.name);
    const double avg_ms =
        RunPublishSeries(series, generator, kRules, kDocs, dir);
    std::printf("recovery,%s,%zu,%.4f\n", series.name, kRules, avg_ms);
    std::fflush(stdout);
    BenchRecords().push_back(BenchRecord{"recovery", series.name, kRules,
                                         avg_ms, "avg_registration_ms", ""});
    if (!series.wal) {
      baseline_ms = avg_ms;
    } else {
      const double overhead =
          baseline_ms > 0 ? (avg_ms / baseline_ms - 1.0) * 100.0 : 0.0;
      std::printf("recovery,%s,%zu,overhead_pct=%.2f\n", series.name, kRules,
                  overhead);
      BenchRecords().push_back(BenchRecord{"recovery", series.name, kRules,
                                           overhead, "overhead_pct", ""});
      if (series.fsync == wal::FsyncPolicy::kBatch) {
        replay_dir = dir;  // Group-commit journal feeds the replay sweep.
      }
    }
  }

  // Time-to-recover vs log length: recover journal copies of
  // increasing length. The full journal holds kRules subscribe records
  // plus kDocs register records; shorter logs are produced by rerunning
  // the publish phase with fewer documents (same rule base).
  for (const double fraction : {0.25, 0.5, 1.0}) {
    const size_t docs = static_cast<size_t>(kDocs * fraction);
    const std::string dir =
        ScratchDir("replay_" + std::to_string(docs) + "docs");
    RunPublishSeries({"replay_fill", true, wal::FsyncPolicy::kNone},
                     generator, kRules, docs, dir);
    const auto [ms, records] = TimeRecovery(dir);
    const double throughput = records / (ms / 1000.0);
    std::printf("recovery,replay,%zu,records=%zu,replay_ms=%.2f,"
                "records_per_sec=%.0f\n",
                kRules, records, ms, throughput);
    std::fflush(stdout);
    BenchRecords().push_back(BenchRecord{
        "recovery", "replay", records, ms, "replay_ms",
        "\"records_per_sec\": " + std::to_string(throughput)});
    fs::remove_all(dir);
  }

  // The payoff of compaction: checkpoint the full image, then recover
  // from the snapshot + empty suffix.
  {
    rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
    Network network;
    filter::RuleStoreOptions rule_options;
    rule_options.num_shards = 4;
    MetadataProvider provider(&schema, &network, rule_options);
    wal::WalOptions options;
    options.dir = replay_dir;
    options.fsync = wal::FsyncPolicy::kNone;
    BenchCheck(provider.EnableDurability(options), "recover for checkpoint");
    BenchCheck(provider.Checkpoint(), "checkpoint");
  }
  const auto [ck_ms, ck_records] = TimeRecovery(replay_dir);
  std::printf("recovery,recovery_after_checkpoint,%zu,replay_ms=%.2f\n",
              kRules, ck_ms);
  BenchRecords().push_back(BenchRecord{"recovery", "recovery_after_checkpoint",
                                       ck_records, ck_ms, "replay_ms", ""});
  fs::remove_all(replay_dir);
  for (const PublishSeries& series : kSeries) {
    fs::remove_all(ScratchDir(series.name));
  }

  WriteBenchJson("BENCH_recovery.json");
  return 0;
}

// ---- crash harness ---------------------------------------------------

int RunServe(const std::string& crash_dir) {
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  MetadataProvider provider(&schema, &network);
  wal::WalOptions mdp_options;
  mdp_options.dir = crash_dir + "/mdp";
  BenchCheck(provider.EnableDurability(mdp_options), "EnableDurability");

  wal::WalOptions lmr_options;
  lmr_options.dir = crash_dir + "/lmr";
  std::unique_ptr<LocalMetadataRepository> lmr =
      BenchMust(LocalMetadataRepository::OpenDurable(1, &schema, &provider,
                                                     &network, lmr_options),
                "OpenDurable");
  BenchMust(lmr->Subscribe(kCrashRule), "subscribe");

  std::printf("SERVING\n");
  std::fflush(stdout);
  // Register until killed. fsync-per-append (the WalOptions default)
  // means everything acknowledged below is on disk when SIGKILL lands.
  for (size_t i = 0; i < 1000000; ++i) {
    BenchCheck(provider.RegisterDocument(MakeCrashDoc(i)), "register");
    if ((i + 1) % 25 == 0) {
      std::printf("registered %zu\n", i + 1);
      std::fflush(stdout);
    }
  }
  return 0;
}

int RunRecover(const std::string& crash_dir) {
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  MetadataProvider provider(&schema, &network);
  wal::WalOptions mdp_options;
  mdp_options.dir = crash_dir + "/mdp";
  BenchCheck(provider.EnableDurability(mdp_options), "recover mdp");

  wal::WalOptions lmr_options;
  lmr_options.dir = crash_dir + "/lmr";
  std::unique_ptr<LocalMetadataRepository> lmr =
      BenchMust(LocalMetadataRepository::OpenDurable(1, &schema, &provider,
                                                     &network, lmr_options),
                "recover lmr");
  BenchCheck(lmr->AuditCacheInvariants(), "audit lmr");

  const std::vector<std::string> truth =
      BenchMust(provider.Browse(kCrashRule), "browse");
  std::set<std::string> truth_set(truth.begin(), truth.end());

  // Journal-before-send: the crashed LMR may lag the provider but can
  // never have applied something the provider does not know about.
  size_t cached_matches = 0;
  for (const std::string& uri : lmr->CachedUris()) {
    const CacheEntry* entry = lmr->Find(uri);
    if (entry->matched_subscriptions.empty()) continue;  // Strong closure.
    ++cached_matches;
    if (truth_set.count(uri) == 0) {
      std::fprintf(stderr, "phantom cache entry after recovery: %s\n",
                   uri.c_str());
      return 1;
    }
  }
  std::printf("recovered: mdp_documents=%zu truth_matches=%zu "
              "lmr_cached_matches=%zu\n",
              provider.documents().size(), truth_set.size(), cached_matches);

  // Refresh closes the crash gap; after it the cache must be exact.
  BenchCheck(lmr->Refresh(), "refresh");
  size_t refreshed_matches = 0;
  for (const std::string& uri : lmr->CachedUris()) {
    const CacheEntry* entry = lmr->Find(uri);
    if (!entry->matched_subscriptions.empty()) ++refreshed_matches;
  }
  if (refreshed_matches != truth_set.size()) {
    std::fprintf(stderr,
                 "cache did not converge: %zu matches cached, %zu expected\n",
                 refreshed_matches, truth_set.size());
    return 1;
  }
  std::printf("converged: matches=%zu\n", refreshed_matches);
  return 0;
}

}  // namespace
}  // namespace mdv::bench

int main(int argc, char** argv) {
  std::string crash_dir;
  bool serve = false;
  bool recover = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--crash-dir") == 0 && i + 1 < argc) {
      crash_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else {
      std::fprintf(stderr,
                   "usage: recovery_bench [--crash-dir DIR --serve|--recover]\n");
      return 2;
    }
  }
  if (serve || recover) {
    if (crash_dir.empty() || (serve && recover)) {
      std::fprintf(stderr, "--serve/--recover need --crash-dir DIR\n");
      return 2;
    }
    return serve ? mdv::bench::RunServe(crash_dir)
                 : mdv::bench::RunRecover(crash_dir);
  }
  return mdv::bench::RunDefault();
}
