// Open-loop scenario driver for trace-derived SLO measurement: a
// production-shaped MDV deployment — two meshed MDPs with a sharded,
// parallel filter engine, four LMRs, the asynchronous transport with
// injected loss — driven by a Poisson arrival process with periodic
// bursts over a Zipf-skewed rule base. Arrivals follow a precomputed
// schedule (open loop: the driver never waits for downstream completion,
// so queueing delay is *measured*, not masked). After the network
// quiesces, the retained trace ring is aggregated into end-to-end and
// per-stage latency distributions and written to BENCH_scenario.json,
// alongside the full metrics snapshot.
//
// Scale knobs: MDV_BENCH_FULL=1 for the big configuration; defaults keep
// the run under a few seconds for CI smokes. Set MDV_SCENARIO_ARTIFACTS
// to a directory to also dump the raw trace export and the flight
// recorder ring (the artifacts CI uploads when the smoke fails).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "mdv/system.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_aggregate.h"
#include "rdf/schema.h"

namespace mdv::bench {
namespace {

struct ScenarioConfig {
  size_t rule_base_size = 48;
  size_t zipf_thresholds = 12;  ///< Distinct selectivity classes.
  double zipf_s = 1.1;          ///< Zipf exponent over those classes.
  size_t poisson_arrivals = 120;
  int64_t mean_interarrival_us = 400;
  size_t bursts = 3;
  size_t burst_size = 12;  ///< Back-to-back arrivals per burst.
  int num_shards = 4;
  int num_workers = 2;
  double loss = 0.01;
  int64_t latency_us = 150;
  int64_t jitter_us = 100;
};

ScenarioConfig MakeConfig() {
  ScenarioConfig config;
  if (FullScale()) {
    config.rule_base_size = 512;
    config.poisson_arrivals = 1000;
    config.bursts = 10;
    config.burst_size = 50;
    config.num_workers = 4;
  }
  return config;
}

/// Zipf-distributed rank in [0, n): rank k with probability ∝ 1/(k+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s, std::mt19937_64* rng) : rng_(rng) {
    double sum = 0;
    for (size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_.push_back(sum);
    }
    for (double& v : cdf_) v /= sum;
  }

  size_t Next() {
    const double u =
        std::uniform_real_distribution<double>(0.0, 1.0)(*rng_);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  std::mt19937_64* rng_;
};

rdf::RdfDocument MakeDoc(size_t j, int memory) {
  const std::string uri = "scenario/doc" + std::to_string(j) + ".rdf";
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(memory)));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", rdf::PropertyValue::Literal(
                                     "node" + std::to_string(j) + ".edu"));
  host.AddProperty("serverPort", rdf::PropertyValue::Literal("5874"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  BenchCheck(doc.AddResource(std::move(info)), "AddResource info");
  BenchCheck(doc.AddResource(std::move(host)), "AddResource host");
  return doc;
}

}  // namespace

int Run() {
  const ScenarioConfig config = MakeConfig();
  std::mt19937_64 rng(42);

  // Retain every span of the run: the aggregator flags evicted traces
  // as incomplete, and a smoke with mostly-incomplete traces is useless.
  obs::DefaultTracer().SetCapacity(1 << 18);
  obs::DefaultTracer().Clear();

  filter::RuleStoreOptions rule_options;
  rule_options.num_shards = config.num_shards;
  filter::EngineOptions engine_options;
  engine_options.num_workers = config.num_workers;
  NetworkOptions network_options;
  network_options.asynchronous = true;
  network_options.transport.latency_us = config.latency_us;
  network_options.transport.jitter_us = config.jitter_us;
  network_options.transport.faults.drop_probability = config.loss;
  network_options.transport.queue_capacity = 1 << 14;
  MdvSystem system(rdf::MakeObjectGlobeSchema(), rule_options,
                   network_options, engine_options);
  MetadataProvider* mdp_a = system.AddProvider();
  MetadataProvider* mdp_b = system.AddProvider();
  std::vector<LocalMetadataRepository*> lmrs = {
      system.AddRepository(mdp_a), system.AddRepository(mdp_a),
      system.AddRepository(mdp_b), system.AddRepository(mdp_b)};

  // Zipf rule base: thresholds come in `zipf_thresholds` selectivity
  // classes; a rule's class is Zipf-distributed, so a few hot
  // predicates dominate — the filter's rule-group sharing sees the
  // skew real deployments have. Rules spread round-robin across LMRs.
  ZipfSampler zipf(config.zipf_thresholds, config.zipf_s, &rng);
  for (size_t i = 0; i < config.rule_base_size; ++i) {
    const size_t rank = zipf.Next();
    const int threshold =
        static_cast<int>(8 * (rank + 1));  // 8, 16, ... — selective tail.
    const std::string rule =
        "search CycleProvider c register c "
        "where c.serverInformation.memory > " +
        std::to_string(threshold);
    BenchMust(lmrs[i % lmrs.size()]->Subscribe(rule), "Subscribe");
  }

  // Open-loop arrival schedule: Poisson process with `bursts` clusters
  // of back-to-back arrivals splice in (flash-crowd registrations).
  std::exponential_distribution<double> interarrival(
      1.0 / static_cast<double>(config.mean_interarrival_us));
  std::vector<int64_t> schedule_us;
  int64_t t = 0;
  for (size_t i = 0; i < config.poisson_arrivals; ++i) {
    t += static_cast<int64_t>(interarrival(rng));
    schedule_us.push_back(t);
  }
  const int64_t horizon = schedule_us.empty() ? 1 : schedule_us.back();
  for (size_t b = 1; b <= config.bursts; ++b) {
    const int64_t burst_at = horizon * static_cast<int64_t>(b) /
                             static_cast<int64_t>(config.bursts + 1);
    for (size_t i = 0; i < config.burst_size; ++i) {
      schedule_us.push_back(burst_at);
    }
  }
  std::sort(schedule_us.begin(), schedule_us.end());

  std::uniform_int_distribution<int> memory_dist(1, 128);
  const auto start = std::chrono::steady_clock::now();
  double drive_ms = 0;
  {
    std::vector<MetadataProvider*> mdps = {mdp_a, mdp_b};
    size_t j = 0;
    drive_ms = TimeMs([&] {
      for (const int64_t at_us : schedule_us) {
        std::this_thread::sleep_until(start +
                                      std::chrono::microseconds(at_us));
        BenchCheck(mdps[j % mdps.size()]->RegisterDocument(
                       MakeDoc(j, memory_dist(rng))),
                   "RegisterDocument");
        ++j;
      }
    });
  }
  if (!system.network().WaitQuiescent()) {
    std::fprintf(stderr, "network did not quiesce\n");
    return 1;
  }

  obs::TraceAggregator aggregator;
  aggregator.IngestTracer(obs::DefaultTracer());

  const char* artifacts = std::getenv("MDV_SCENARIO_ARTIFACTS");
  if (artifacts != nullptr) {
    const std::string dir = artifacts;
    for (const auto& [name, json] :
         {std::pair<std::string, std::string>{"scenario_trace.json",
                                              obs::DefaultTracer().ExportJson()},
          {"scenario_flight.json",
           obs::FlightRecorder::Default().DumpJson()}}) {
      const std::string path = dir + "/" + name;
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f != nullptr) {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
        std::printf("# wrote %s\n", path.c_str());
      }
    }
  }

  const char* env = std::getenv("MDV_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_scenario.json";
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n\"scenario\": {\"rule_base_size\": %zu, \"arrivals\": %zu, "
      "\"poisson_arrivals\": %zu, \"bursts\": %zu, \"burst_size\": %zu, "
      "\"mean_interarrival_us\": %lld, \"mdps\": 2, \"lmrs\": %zu, "
      "\"num_shards\": %d, \"num_workers\": %d, \"loss\": %.3f, "
      "\"latency_us\": %lld, \"jitter_us\": %lld, \"drive_ms\": %.1f},\n",
      config.rule_base_size, schedule_us.size(), config.poisson_arrivals,
      config.bursts, config.burst_size,
      static_cast<long long>(config.mean_interarrival_us), lmrs.size(),
      config.num_shards, config.num_workers, config.loss,
      static_cast<long long>(config.latency_us),
      static_cast<long long>(config.jitter_us), drive_ms);
  std::fprintf(f, "\"slo\": %s,\n", aggregator.SummaryJson().c_str());
  std::fprintf(f, "\"metrics\": %s\n}\n", obs::SnapshotJson().c_str());
  if (std::fclose(f) != 0 || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "cannot finalize %s\n", path.c_str());
    std::remove(tmp.c_str());
    return 1;
  }
  std::printf(
      "# wrote %s (%lld samples over %lld traces, %zu stages, "
      "coverage %.3f, e2e p50 %.0fus p99 %.0fus)\n",
      path.c_str(), static_cast<long long>(aggregator.samples()),
      static_cast<long long>(aggregator.traces()),
      aggregator.StageNames().size(), aggregator.StageCoverage(),
      aggregator.EndToEnd().Percentile(50),
      aggregator.EndToEnd().Percentile(99));
  return 0;
}

}  // namespace mdv::bench

int main() { return mdv::bench::Run(); }
