// Figure 14: JOIN rules (contains + cpu + memory predicates, three
// triggering rules and two join rules per subscription). Expected shape:
// like PATH but more expensive per document; cost depends on the rule
// base size.

#include "bench_common.h"

int main() {
  using namespace mdv::bench;
  using mdv::bench_support::BenchRuleType;
  using mdv::bench_support::FilterFixture;
  using mdv::bench_support::WorkloadGenerator;

  PrintHeader("fig14", "JOIN rules, varying rule base size");
  std::vector<size_t> rule_bases = FullScale()
                                       ? std::vector<size_t>{1000, 10000}
                                       : std::vector<size_t>{1000, 5000};
  for (size_t rule_base : rule_bases) {
    WorkloadGenerator generator({BenchRuleType::kJoin, rule_base, 0.1});
    FilterFixture fixture;
    RegisterRuleBase(&fixture, generator, rule_base);
    WarmUp(&fixture, generator);
    size_t next_doc = 0;
    std::string series = std::to_string(rule_base) + "_rules";
    RunBatchSweep("fig14", series.c_str(), &fixture, generator, &next_doc);
  }
  WriteBenchJson();  // MDV_BENCH_JSON=path for machine-readable output.
  return 0;
}
