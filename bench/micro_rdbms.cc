// Microbenchmarks of the embedded relational substrate, on
// google-benchmark: insert throughput, indexed vs. scanned selection,
// and hash-join probes. These calibrate the building blocks the filter
// algorithm's costs are made of.

#include <benchmark/benchmark.h>

#include "rdbms/database.h"
#include "rdbms/query.h"
#include "rdbms/table.h"

namespace {

using mdv::rdbms::ColumnDef;
using mdv::rdbms::ColumnType;
using mdv::rdbms::CompareOp;
using mdv::rdbms::IndexKind;
using mdv::rdbms::Row;
using mdv::rdbms::RowSet;
using mdv::rdbms::ScanCondition;
using mdv::rdbms::Table;
using mdv::rdbms::TableSchema;
using mdv::rdbms::Value;

TableSchema AtomsSchema() {
  return TableSchema("atoms", {ColumnDef{"uri", ColumnType::kString},
                               ColumnDef{"property", ColumnType::kString},
                               ColumnDef{"value", ColumnType::kString}});
}

Row MakeAtom(int64_t i) {
  return Row{Value("doc" + std::to_string(i) + "#host"),
             Value(i % 2 == 0 ? "memory" : "cpu"),
             Value(std::to_string(i % 1000))};
}

void BM_TableInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Table table(AtomsSchema());
    if (state.range(0) != 0) {
      mdv::Status st = table.CreateIndex("value", IndexKind::kHash);
      benchmark::DoNotOptimize(&st);
    }
    state.ResumeTiming();
    for (int64_t i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(table.Insert(MakeAtom(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TableInsert)->Arg(0)->Arg(1);

void BM_PointLookup(benchmark::State& state) {
  Table table(AtomsSchema());
  const bool indexed = state.range(0) != 0;
  if (indexed) {
    mdv::Status st = table.CreateIndex("value", IndexKind::kHash);
    benchmark::DoNotOptimize(&st);
  }
  for (int64_t i = 0; i < 10000; ++i) {
    benchmark::DoNotOptimize(table.Insert(MakeAtom(i)));
  }
  int64_t probe = 0;
  for (auto _ : state) {
    std::vector<mdv::rdbms::RowId> hits = table.SelectRowIds(
        {ScanCondition{2, CompareOp::kEq,
                       Value(std::to_string(probe++ % 1000))}});
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_PointLookup)->Arg(0)->Arg(1);

void BM_HashJoin(benchmark::State& state) {
  const int64_t n = state.range(0);
  RowSet left, right;
  left.columns = {"k", "payload"};
  right.columns = {"k", "payload"};
  for (int64_t i = 0; i < n; ++i) {
    left.rows.push_back(Row{Value(i), Value("l")});
    right.rows.push_back(Row{Value(i % (n / 2 + 1)), Value("r")});
  }
  for (auto _ : state) {
    RowSet joined = HashJoin(left, 0, right, 0);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000);

void BM_BTreeRange(benchmark::State& state) {
  Table table(TableSchema(
      "t", {ColumnDef{"v", ColumnType::kInt64}}));
  mdv::Status st = table.CreateIndex("v", IndexKind::kBTree);
  benchmark::DoNotOptimize(&st);
  for (int64_t i = 0; i < 10000; ++i) {
    benchmark::DoNotOptimize(table.Insert(Row{Value(i)}));
  }
  for (auto _ : state) {
    std::vector<mdv::rdbms::RowId> hits = table.SelectRowIds(
        {ScanCondition{0, CompareOp::kGt, Value(int64_t{9900})}});
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_BTreeRange);

}  // namespace

BENCHMARK_MAIN();
