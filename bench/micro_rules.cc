// Microbenchmarks of the rule front-end on google-benchmark: parsing,
// full compilation (parse → analyze → normalize → decompose) and
// dependency-graph merging for the four §4 rule types.

#include <benchmark/benchmark.h>

#include "bench_support/workload.h"
#include "rules/compiler.h"

namespace {

using mdv::bench_support::BenchRuleType;
using mdv::bench_support::FilterFixture;
using mdv::bench_support::WorkloadGenerator;

const char* RuleTextFor(BenchRuleType type) {
  static WorkloadGenerator oid({BenchRuleType::kOid, 1000, 0.1});
  static WorkloadGenerator comp({BenchRuleType::kComp, 1000, 0.1});
  static WorkloadGenerator path({BenchRuleType::kPath, 1000, 0.1});
  static WorkloadGenerator join({BenchRuleType::kJoin, 1000, 0.1});
  static std::string oid_text = oid.RuleText(1);
  static std::string comp_text = comp.RuleText(1);
  static std::string path_text = path.RuleText(1);
  static std::string join_text = join.RuleText(1);
  switch (type) {
    case BenchRuleType::kOid:
      return oid_text.c_str();
    case BenchRuleType::kComp:
      return comp_text.c_str();
    case BenchRuleType::kPath:
      return path_text.c_str();
    case BenchRuleType::kJoin:
      return join_text.c_str();
  }
  return "";
}

void BM_ParseRule(benchmark::State& state) {
  const char* text = RuleTextFor(static_cast<BenchRuleType>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdv::rules::ParseRule(text));
  }
}
BENCHMARK(BM_ParseRule)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_CompileRule(benchmark::State& state) {
  const mdv::rdf::RdfSchema schema = mdv::rdf::MakeObjectGlobeSchema();
  const char* text = RuleTextFor(static_cast<BenchRuleType>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdv::rules::CompileRule(text, schema));
  }
}
BENCHMARK(BM_CompileRule)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_RegisterRuleIntoStore(benchmark::State& state) {
  // Registration includes duplicate detection against a growing store.
  WorkloadGenerator generator(
      {static_cast<BenchRuleType>(state.range(0)), 100000, 0.1});
  FilterFixture fixture;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.RegisterRule(generator.RuleText(i++)));
  }
}
BENCHMARK(BM_RegisterRuleIntoStore)->Arg(0)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
