// Figure 13: COMP rules (c.synthValue > INT), 10% of the rule base
// matching every document. Expected shape: per-document cost rises with
// the rule base size; unlike OID/PATH/JOIN, registering few documents
// per batch is preferable because every document triggers thousands of
// rules.

#include "bench_common.h"

int main() {
  using namespace mdv::bench;
  using mdv::bench_support::BenchRuleType;
  using mdv::bench_support::FilterFixture;
  using mdv::bench_support::WorkloadGenerator;

  PrintHeader("fig13", "COMP rules (10% of rule base matches)");
  std::vector<size_t> rule_bases =
      FullScale() ? std::vector<size_t>{1000, 10000, 50000}
                  : std::vector<size_t>{500, 2000};
  for (size_t rule_base : rule_bases) {
    WorkloadGenerator generator({BenchRuleType::kComp, rule_base, 0.10});
    FilterFixture fixture;
    RegisterRuleBase(&fixture, generator, rule_base);
    WarmUp(&fixture, generator);
    size_t next_doc = 0;
    std::string series = std::to_string(rule_base) + "_rules";
    RunBatchSweep("fig13", series.c_str(), &fixture, generator, &next_doc);
  }
  WriteBenchJson();  // MDV_BENCH_JSON=path for machine-readable output.
  return 0;
}
