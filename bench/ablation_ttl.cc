// Consistency-mechanism comparison (§3.5 discusses alternatives to the
// three-pass filter protocol): push notifications vs. TTL-based periodic
// refresh. Reports the network traffic (resources shipped) and the
// staleness window for a fixed update workload. Expected shape: push
// traffic scales with the number of *relevant* changes; TTL traffic
// scales with cache size × refresh frequency and is stale in between.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "mdv/system.h"

namespace {

using mdv::bench_support::FilterFixture;

mdv::rdf::RdfDocument MakeDoc(const std::string& uri, int memory) {
  mdv::rdf::RdfDocument doc(uri);
  mdv::rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   mdv::rdf::PropertyValue::Literal(std::to_string(memory)));
  mdv::rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost",
                   mdv::rdf::PropertyValue::Literal("x.uni-passau.de"));
  host.AddProperty("serverInformation",
                   mdv::rdf::PropertyValue::ResourceRef(uri + "#info"));
  mdv::Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

}  // namespace

int main() {
  using mdv::bench::BenchCheck;
  const size_t kDocs = mdv::bench::FullScale() ? 500 : 100;
  const size_t kUpdates = kDocs * 2 + 3;  // Not a refresh multiple: ends stale.

  std::printf("# ablation_ttl: %zu docs, %zu updates, 1 subscription\n",
              kDocs, kUpdates);
  std::printf("# columns: bench,mode,resources_shipped,stale_after_all_ops\n");

  for (int refresh_every : {0 /* push */, 10, 50}) {
    mdv::MdvSystem system(mdv::rdf::MakeObjectGlobeSchema());
    mdv::MetadataProvider* provider = system.AddProvider();
    mdv::LocalMetadataRepository* lmr = system.AddRepository(provider);
    mdv::Result<mdv::pubsub::SubscriptionId> sub =
        lmr->Subscribe("search CycleProvider c register c "
                       "where c.serverInformation.memory > 64");
    if (!sub.ok()) return 1;

    int64_t pulled_resources = 0;
    if (refresh_every > 0) {
      lmr->set_consistency_mode(mdv::ConsistencyMode::kTimeToLive);
    }

    // Registration phase: half the docs match (memory alternates).
    for (size_t i = 0; i < kDocs; ++i) {
      BenchCheck(provider->RegisterDocument(
                     MakeDoc("d" + std::to_string(i) + ".rdf",
                             i % 2 == 0 ? 128 : 32)),
                 "register");
    }
    // Update phase: flip memory values, occasionally refreshing in TTL
    // mode. The snapshot traffic counts as shipped resources.
    for (size_t u = 0; u < kUpdates; ++u) {
      size_t target = u % kDocs;
      int memory = (u / kDocs + target) % 2 == 0 ? 32 : 128;
      BenchCheck(provider->UpdateDocument(
                     MakeDoc("d" + std::to_string(target) + ".rdf", memory)),
                 "update");
      if (refresh_every > 0 && (u + 1) % refresh_every == 0) {
        size_t before = lmr->CacheSize();
        BenchCheck(lmr->Refresh(), "refresh");
        (void)before;
        pulled_resources += static_cast<int64_t>(lmr->CacheSize());
      }
    }

    // Staleness after the last operation: resources whose cached copy
    // differs from the provider's current version, plus matches the
    // cache is missing entirely.
    int64_t stale = 0;
    {
      mdv::Result<std::vector<std::string>> current = provider->Browse(
          "search CycleProvider c register c "
          "where c.serverInformation.memory > 64");
      BenchCheck(current.ok() ? mdv::Status::OK() : current.status(),
                 "browse");
      for (const std::string& uri : *current) {
        const mdv::CacheEntry* entry = lmr->Find(uri);
        if (entry == nullptr) {
          ++stale;
          continue;
        }
        const mdv::rdf::Resource* live =
            provider->documents().FindResource(uri);
        if (live == nullptr || !entry->resource.ContentEquals(*live)) {
          ++stale;
        }
      }
      // Cached matches that should be gone.
      for (const std::string& uri : lmr->CachedUris()) {
        const mdv::CacheEntry* entry = lmr->Find(uri);
        if (entry->matched_subscriptions.empty()) continue;
        bool still = false;
        for (const std::string& m : *current) {
          if (m == uri) still = true;
        }
        if (!still) ++stale;
      }
    }

    int64_t shipped =
        system.network().stats().resources_shipped + pulled_resources;
    std::printf("ablation_ttl,%s,%lld,%lld\n",
                refresh_every == 0
                    ? "push"
                    : ("ttl_every_" + std::to_string(refresh_every)).c_str(),
                static_cast<long long>(shipped),
                static_cast<long long>(stale));
    std::fflush(stdout);
  }
  return 0;
}
