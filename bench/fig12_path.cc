// Figure 12: PATH rules (c.serverInformation.memory = INT) — decomposed
// into a shared class rule, a per-rule memory trigger and a join rule.
// Expected shape: cost drops with batch size then flattens; larger rule
// bases cost more (the memory triggers share one property, so every atom
// probes the whole per-property rule list, and the shared class rule
// feeds a join-rule group whose membership grows with the rule base).

#include "bench_common.h"

int main() {
  using namespace mdv::bench;
  using mdv::bench_support::BenchRuleType;
  using mdv::bench_support::FilterFixture;
  using mdv::bench_support::WorkloadGenerator;

  PrintHeader("fig12", "PATH rules, varying rule base size");
  std::vector<size_t> rule_bases = FullScale()
                                       ? std::vector<size_t>{1000, 10000, 50000}
                                       : std::vector<size_t>{1000, 5000};
  for (size_t rule_base : rule_bases) {
    WorkloadGenerator generator({BenchRuleType::kPath, rule_base, 0.1});
    FilterFixture fixture;
    RegisterRuleBase(&fixture, generator, rule_base);
    WarmUp(&fixture, generator);
    size_t next_doc = 0;
    std::string series = std::to_string(rule_base) + "_rules";
    RunBatchSweep("fig12", series.c_str(), &fixture, generator, &next_doc);
  }
  WriteBenchJson();  // MDV_BENCH_JSON=path for machine-readable output.
  return 0;
}
