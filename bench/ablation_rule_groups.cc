// Ablation (§3.3.3): rule groups on vs. off. PATH rules all share one
// join spec; with groups the join layer is organized as one group, while
// without groups every join rule forms its own singleton group. Reports
// the filter cost per document and the number of groups.

#include "bench_common.h"

int main() {
  using namespace mdv::bench;
  using mdv::bench_support::BenchRuleType;
  using mdv::bench_support::FilterFixture;
  using mdv::bench_support::WorkloadGenerator;

  const size_t rule_base = FullScale() ? 10000 : 2000;
  std::printf("# ablation_rule_groups: PATH rules, %zu rules\n", rule_base);
  std::printf(
      "# columns: bench,series,batch_size,avg_registration_ms\n");

  for (bool use_groups : {true, false}) {
    mdv::filter::RuleStoreOptions options;
    options.use_rule_groups = use_groups;
    WorkloadGenerator generator({BenchRuleType::kPath, rule_base, 0.1});
    FilterFixture fixture(options);
    RegisterRuleBase(&fixture, generator, rule_base);
    WarmUp(&fixture, generator);
    std::printf("# groups in store: %zu\n", fixture.store().NumGroups());
    size_t next_doc = 0;
    RunBatchSweep("ablation_rule_groups",
                  use_groups ? "groups_on" : "groups_off", &fixture,
                  generator, &next_doc);
  }
  return 0;
}
