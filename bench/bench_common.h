#ifndef MDV_BENCH_BENCH_COMMON_H_
#define MDV_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support/workload.h"
#include "obs/metrics.h"

namespace mdv::bench {

/// Wall-clock milliseconds of `fn`.
template <typename Fn>
double TimeMs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// True when MDV_BENCH_FULL=1: run the paper-scale configurations
/// (rule bases up to 100,000). Default is a scaled-down sweep that keeps
/// `for b in build/bench/*; do $b; done` fast while preserving the curve
/// shapes.
inline bool FullScale() {
  const char* env = std::getenv("MDV_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// The batch sizes swept on the x axis of Figures 11-14.
inline std::vector<size_t> BatchSizes() {
  return {1, 2, 5, 10, 20, 50, 100, 200};
}

/// One machine-readable benchmark data point. `extra` is a preformatted
/// JSON fragment of additional fields (may be empty).
struct BenchRecord {
  std::string figure;
  std::string series;
  size_t batch_size = 0;
  double value = 0.0;
  std::string metric = "avg_registration_ms";
  std::string extra;
};

/// Records collected by RunBatchSweep (and by custom harnesses) for the
/// machine-readable output.
inline std::vector<BenchRecord>& BenchRecords() {
  static std::vector<BenchRecord>& records = *new std::vector<BenchRecord>();
  return records;
}

/// Minimal JSON string escaping (quotes and backslashes; the recorded
/// names are ASCII identifiers).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Writes every recorded data point plus the process metrics snapshot as
/// `{"records": [...], "metrics": {...}}`. The metrics object is
/// obs::SnapshotJson(): accumulated counters and per-stage latency
/// histograms (p50/p95/p99) of everything the run executed, so a bench
/// file carries its own stage breakdown. Figure binaries call this at
/// exit with no default path, so output is produced only when
/// MDV_BENCH_JSON names a file; dedicated harnesses pass a default
/// (e.g. BENCH_filter.json) to always emit their trajectory file.
///
/// The file is written atomically (temp file in the same directory, then
/// std::rename) so a crash or a concurrent reader never observes a
/// truncated JSON document.
inline void WriteBenchJson(const char* default_path = nullptr) {
  const char* env = std::getenv("MDV_BENCH_JSON");
  std::string path = env != nullptr ? env : (default_path ? default_path : "");
  if (path.empty()) return;
  const std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", tmp_path.c_str());
    return;
  }
  std::fprintf(f, "{\n\"records\": [\n");
  const std::vector<BenchRecord>& records = BenchRecords();
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"figure\": \"%s\", \"series\": \"%s\", "
                 "\"batch_size\": %zu, \"metric\": \"%s\", \"value\": %.6f%s%s}%s\n",
                 JsonEscape(r.figure).c_str(), JsonEscape(r.series).c_str(),
                 r.batch_size, JsonEscape(r.metric).c_str(), r.value,
                 r.extra.empty() ? "" : ", ", r.extra.c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "],\n\"metrics\": %s\n}\n", obs::SnapshotJson().c_str());
  if (std::fclose(f) != 0 || std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "cannot finalize %s\n", path.c_str());
    std::remove(tmp_path.c_str());
    return;
  }
  std::printf("# wrote %s (%zu records)\n", path.c_str(), records.size());
}

/// Aborts with a message on error statuses inside benchmarks.
inline void BenchCheck(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T BenchMust(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Registers `count` rules of the generator's type into `fixture`.
inline void RegisterRuleBase(
    bench_support::FilterFixture* fixture,
    const bench_support::WorkloadGenerator& generator, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    BenchMust(fixture->RegisterRule(generator.RuleText(i)), "register rule");
  }
}

/// Registers one out-of-range document before timing starts so cold
/// allocator/cache effects do not pollute the first (batch = 1) point.
inline void WarmUp(bench_support::FilterFixture* fixture,
                   const bench_support::WorkloadGenerator& generator) {
  std::vector<rdf::RdfDocument> docs =
      generator.MakeDocumentBatch(10000000, 1);
  BenchMust(fixture->RegisterDocumentBatch(docs), "warmup");
}

/// One figure-style sweep: for each batch size, registers a fresh range
/// of documents in one filter run and reports the average registration
/// time per document (the paper's y axis). Documents are drawn from
/// consecutive ranges so each doc still pairs 1:1 with its rule.
inline void RunBatchSweep(const char* figure, const char* series,
                          bench_support::FilterFixture* fixture,
                          const bench_support::WorkloadGenerator& generator,
                          size_t* next_doc) {
  for (size_t batch : BatchSizes()) {
    if (*next_doc + batch > generator.options().rule_base_size &&
        generator.options().rule_type != bench_support::BenchRuleType::kComp) {
      break;  // Out of 1:1 rule/document pairs.
    }
    std::vector<rdf::RdfDocument> docs =
        generator.MakeDocumentBatch(*next_doc, batch);
    *next_doc += batch;
    double ms = TimeMs([&] {
      BenchMust(fixture->RegisterDocumentBatch(docs), "register batch");
    });
    double avg_ms = ms / static_cast<double>(batch);
    std::printf("%s,%s,%zu,%.4f\n", figure, series, batch, avg_ms);
    std::fflush(stdout);
    BenchRecords().push_back(
        BenchRecord{figure, series, batch, avg_ms, "avg_registration_ms", ""});
  }
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("# %s: %s\n", figure, description);
  std::printf("# columns: figure,series,batch_size,avg_registration_ms\n");
}

}  // namespace mdv::bench

#endif  // MDV_BENCH_BENCH_COMMON_H_
