// Ablation (§3.3.2): dependency-graph merging on vs. off. PATH rules
// share the predicate-less CycleProvider class rule; with merging it is
// stored (and evaluated) once, without merging every subscription owns a
// private copy, so every registered document triggers thousands of
// class-rule copies. Reports atomic-rule counts and filter cost.

#include "bench_common.h"

int main() {
  using namespace mdv::bench;
  using mdv::bench_support::BenchRuleType;
  using mdv::bench_support::FilterFixture;
  using mdv::bench_support::WorkloadGenerator;

  // Merging off multiplies work per document; keep the rule base modest.
  const size_t rule_base = FullScale() ? 2000 : 500;
  std::printf("# ablation_graph_merge: PATH rules, %zu rules\n", rule_base);
  std::printf("# columns: bench,series,batch_size,avg_registration_ms\n");

  for (bool merge : {true, false}) {
    mdv::filter::RuleStoreOptions options;
    options.merge_shared_atoms = merge;
    WorkloadGenerator generator({BenchRuleType::kPath, rule_base, 0.1});
    FilterFixture fixture(options);
    RegisterRuleBase(&fixture, generator, rule_base);
    WarmUp(&fixture, generator);
    std::printf("# atomic rules in store: %zu\n",
                fixture.store().NumAtomicRules());
    size_t next_doc = 0;
    RunBatchSweep("ablation_graph_merge", merge ? "merge_on" : "merge_off",
                  &fixture, generator, &next_doc);
  }
  return 0;
}
