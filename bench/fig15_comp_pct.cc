// Figure 15: 10,000 COMP rules with a varying fraction of the rule base
// matching each document (the "triggered rule base percentage"), for
// several batch sizes. Expected shape: higher match percentage ⇒ higher
// average registration cost at every batch size.

#include "bench_common.h"

int main() {
  using namespace mdv::bench;
  using mdv::bench_support::BenchRuleType;
  using mdv::bench_support::FilterFixture;
  using mdv::bench_support::WorkloadGenerator;

  const size_t rule_base = FullScale() ? 10000 : 2000;
  std::printf("# fig15: %zu COMP rules, varying batch size and match %%\n",
              rule_base);
  std::printf("# columns: figure,series,batch_size,avg_registration_ms\n");

  for (double pct : {0.01, 0.05, 0.10, 0.20, 0.50}) {
    WorkloadGenerator generator({BenchRuleType::kComp, rule_base, pct});
    FilterFixture fixture;
    RegisterRuleBase(&fixture, generator, rule_base);
    WarmUp(&fixture, generator);
    size_t next_doc = 0;
    char series[32];
    std::snprintf(series, sizeof(series), "%.0f%%", pct * 100.0);
    for (size_t batch : {size_t{1}, size_t{10}, size_t{50}, size_t{100}}) {
      std::vector<mdv::rdf::RdfDocument> docs =
          generator.MakeDocumentBatch(next_doc, batch);
      next_doc += batch;
      double ms = TimeMs([&] {
        BenchMust(fixture.RegisterDocumentBatch(docs), "register batch");
      });
      double avg_ms = ms / static_cast<double>(batch);
      std::printf("fig15,%s,%zu,%.4f\n", series, batch, avg_ms);
      std::fflush(stdout);
      BenchRecords().push_back(BenchRecord{"fig15", series, batch, avg_ms,
                                           "avg_registration_ms", ""});
    }
  }
  WriteBenchJson();  // MDV_BENCH_JSON=path for machine-readable output.
  return 0;
}
