// Throughput and delivery-latency sweep of the asynchronous
// notification transport (wire codec + bounded queues + at-least-once
// redelivery) under 0%, 1% and 10% injected frame loss. Loss applies to
// acks too, so the lossy points show the retransmission tail: the p99
// delivery latency degrades to the retransmit timeout while throughput
// stays near the lossless rate (redeliveries pipeline with fresh
// sends). Writes BENCH_net.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/reliable.h"
#include "net/transport.h"
#include "pubsub/notification.h"
#include "rdf/document.h"
#include "rdf/term.h"

namespace mdv::bench {
namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A representative notification: one matched resource with a handful
/// of properties, the send timestamp riding along as a literal.
pubsub::Notification MakeNote(int tag) {
  pubsub::Notification note;
  note.kind = pubsub::NotificationKind::kInsert;
  note.lmr = 1;
  note.subscription = 1;
  rdf::Resource res("r" + std::to_string(tag), "CycleProvider");
  res.AddProperty("serverHost",
                  rdf::PropertyValue::Literal("host" + std::to_string(tag) +
                                              ".example.edu"));
  res.AddProperty("serverPort", rdf::PropertyValue::Literal("5874"));
  res.AddProperty("sent_us",
                  rdf::PropertyValue::Literal(std::to_string(NowUs())));
  note.resources.push_back(
      {"bench.rdf#r" + std::to_string(tag), std::move(res), false});
  return note;
}

double Percentile(std::vector<double>* values, double pct) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t index = static_cast<size_t>(pct * (values->size() - 1));
  return (*values)[index];
}

void RunConfig(const std::string& series, double loss, size_t count) {
  net::TransportOptions transport_options;
  transport_options.queue_capacity = count * 2;
  transport_options.faults.drop_probability = loss;
  transport_options.faults.seed = 0xBE7C4;
  net::InProcessTransport transport(transport_options);
  net::ReliableOptions reliability;
  reliability.retransmit_timeout_us = 5000;
  net::ReliableLink link(&transport, reliability);

  std::mutex mu;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(count);
  BenchCheck(link.BindReceiver(1,
                               [&](const pubsub::Notification& note) {
                                 const int64_t sent = std::stoll(
                                     note.resources.at(0)
                                         .resource.FindProperty("sent_us")
                                         ->text());
                                 const double ms = (NowUs() - sent) / 1000.0;
                                 std::lock_guard<std::mutex> lock(mu);
                                 latencies_ms.push_back(ms);
                               }),
             "bind receiver");
  const uint64_t sender = link.RegisterSender();

  const int64_t start_us = NowUs();
  for (size_t i = 0; i < count; ++i) {
    BenchCheck(link.Publish(sender, MakeNote(static_cast<int>(i))),
               "publish");
  }
  if (!link.WaitSettled(120'000'000)) {
    std::fprintf(stderr, "transport failed to settle\n");
    std::exit(1);
  }
  const double elapsed_s = (NowUs() - start_us) / 1e6;

  std::lock_guard<std::mutex> lock(mu);
  if (latencies_ms.size() != count) {
    std::fprintf(stderr, "delivered %zu of %zu notifications\n",
                 latencies_ms.size(), count);
    std::exit(1);
  }
  const double throughput = static_cast<double>(count) / elapsed_s;
  const double p50 = Percentile(&latencies_ms, 0.50);
  const double p99 = Percentile(&latencies_ms, 0.99);
  net::LinkStats stats = link.stats();
  std::printf("net_transport,%s,%zu,throughput_notes_per_sec,%.1f\n",
              series.c_str(), count, throughput);
  std::printf("net_transport,%s,%zu,p50_delivery_ms,%.4f\n", series.c_str(),
              count, p50);
  std::printf("net_transport,%s,%zu,p99_delivery_ms,%.4f\n", series.c_str(),
              count, p99);
  std::fflush(stdout);
  const std::string extra = "\"redelivered\": " +
                            std::to_string(stats.redelivered) +
                            ", \"dedup_suppressed\": " +
                            std::to_string(stats.dedup_suppressed);
  BenchRecords().push_back(BenchRecord{"net_transport", series, count,
                                       throughput, "throughput_notes_per_sec",
                                       extra});
  BenchRecords().push_back(BenchRecord{"net_transport", series, count, p50,
                                       "p50_delivery_ms", ""});
  BenchRecords().push_back(BenchRecord{"net_transport", series, count, p99,
                                       "p99_delivery_ms", ""});
}

}  // namespace
}  // namespace mdv::bench

int main() {
  using namespace mdv::bench;
  const size_t count = FullScale() ? 20000 : 2000;
  std::printf("# net_transport: async notification transport under loss\n");
  std::printf("# columns: figure,series,notifications,metric,value\n");
  RunConfig("loss_0pct", 0.0, count);
  RunConfig("loss_1pct", 0.01, count);
  RunConfig("loss_10pct", 0.10, count);
  WriteBenchJson("BENCH_net.json");
  return 0;
}
