// Concurrency regression tests for the components documented as
// thread-safe: the simulated Network, the obs metrics registry, the
// tracer, and logging. Run under the tsan preset these catch the data
// races the single-threaded suites cannot (handlers_/stats_ of Network
// used to be unguarded); under the normal presets they still verify
// that concurrent counting loses no updates.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "mdv/network.h"
#include "mdv/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/document.h"
#include "rdf/schema.h"

namespace mdv {
namespace {

constexpr int kThreads = 4;
constexpr int kIterations = 200;

pubsub::Notification MakeNote(pubsub::LmrId lmr, size_t resources) {
  pubsub::Notification note;
  note.kind = pubsub::NotificationKind::kInsert;
  note.lmr = lmr;
  note.subscription = 1;
  for (size_t i = 0; i < resources; ++i) {
    note.resources.push_back(pubsub::TransmittedResource{
        "d.rdf#r" + std::to_string(i), rdf::Resource(), false});
  }
  return note;
}

TEST(MdvConcurrencyTest, ConcurrentDeliverCountsEveryMessage) {
  Network network;
  std::atomic<int64_t> handled{0};
  for (int lmr = 0; lmr < kThreads; ++lmr) {
    network.Attach(lmr, [&handled](const pubsub::Notification&) {
      handled.fetch_add(1, std::memory_order_relaxed);
    });
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&network, t] {
      for (int i = 0; i < kIterations; ++i) {
        network.Deliver(MakeNote(t, 2));
        // Reads race the writers by design — stats() must stay a
        // consistent snapshot throughout.
        NetworkStats snapshot = network.stats();
        EXPECT_GE(snapshot.messages, 0);
        EXPECT_GE(snapshot.resources_shipped, 0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  NetworkStats stats = network.stats();
  EXPECT_EQ(stats.messages, kThreads * kIterations);
  EXPECT_EQ(stats.resources_shipped, kThreads * kIterations * 2);
  EXPECT_EQ(stats.undeliverable, 0);
  EXPECT_EQ(handled.load(), kThreads * kIterations);
}

TEST(MdvConcurrencyTest, ConcurrentAttachDetachDeliver) {
  Network network;
  // One stable endpoint plus threads that churn their own endpoints
  // while everyone delivers: exercises the handlers_ map under
  // concurrent mutation. Counts are not asserted exactly (a delivery
  // legitimately races a detach) — the invariant is no crash/race and
  // messages = deliveries.
  std::atomic<int64_t> stable_handled{0};
  network.Attach(1000, [&stable_handled](const pubsub::Notification&) {
    stable_handled.fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&network, t] {
      for (int i = 0; i < kIterations; ++i) {
        network.Attach(t, [](const pubsub::Notification&) {});
        network.Deliver(MakeNote(t, 1));
        network.Deliver(MakeNote(1000, 1));
        network.Detach(t);
        network.Deliver(MakeNote(t, 1));  // May be undeliverable: fine.
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  NetworkStats stats = network.stats();
  EXPECT_EQ(stats.messages, kThreads * kIterations * 3);
  EXPECT_EQ(stable_handled.load(), kThreads * kIterations);
}

TEST(MdvConcurrencyTest, DetachLinearizesAgainstInFlightDelivery) {
  // Regression test for the documented race: a handler could still be
  // running (or about to run, holding a copied handler) after Detach
  // returned, so state the handler touches could not be safely torn
  // down. Detach must now wait out in-flight deliveries by other
  // threads.
  for (int round = 0; round < 50; ++round) {
    Network network;
    std::atomic<bool> in_handler{false};
    std::atomic<bool> release{false};
    std::atomic<bool> handler_alive{true};
    network.Attach(1, [&](const pubsub::Notification&) {
      in_handler.store(true);
      while (!release.load()) std::this_thread::yield();
      // If Detach returned while we are still here, the test below
      // observes handler_alive == true after Detach.
      EXPECT_TRUE(handler_alive.load());
      in_handler.store(false);
    });

    std::thread deliverer([&] { network.Deliver(MakeNote(1, 1)); });
    while (!in_handler.load()) std::this_thread::yield();

    std::thread detacher([&] {
      network.Detach(1);
      // Everything the handler relies on may be destroyed now.
      handler_alive.store(false);
    });
    // Detach must block while the handler is inside the callback.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(in_handler.load());
    release.store(true);
    detacher.join();
    EXPECT_FALSE(in_handler.load());  // Linearized: handler finished first.
    deliverer.join();
  }
}

TEST(MdvConcurrencyTest, HandlerMayDetachItselfWithoutDeadlock) {
  Network network;
  int calls = 0;
  Network* net = &network;
  network.Attach(1, [&calls, net](const pubsub::Notification&) {
    ++calls;
    net->Detach(1);  // Re-entrant self-detach must not deadlock.
  });
  network.Deliver(MakeNote(1, 1));
  network.Deliver(MakeNote(1, 1));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(network.stats().undeliverable, 1);
}

TEST(MdvConcurrencyTest, DetachedHandlerNeverRunsAgainUnderChurn) {
  // Hammer the original interleaving: one thread delivers in a loop,
  // another attaches/detaches the same endpoint. After every Detach
  // return, a delivery must never reach the detached generation's
  // handler.
  Network network;
  std::atomic<bool> stop{false};
  std::thread deliverer([&] {
    while (!stop.load()) network.Deliver(MakeNote(7, 1));
  });
  for (int gen = 0; gen < 300; ++gen) {
    auto alive = std::make_shared<std::atomic<bool>>(true);
    network.Attach(7, [alive](const pubsub::Notification&) {
      EXPECT_TRUE(alive->load()) << "handler ran after Detach returned";
    });
    std::this_thread::yield();
    network.Detach(7);
    alive->store(false);  // From here on the handler must be dead.
  }
  stop.store(true);
  deliverer.join();
}

TEST(MdvConcurrencyTest, SharedMetricsAndTracerAcrossThreads) {
  obs::Counter& counter =
      obs::DefaultMetrics().GetCounter("mdv.test.concurrency_total");
  const int64_t before = counter.value();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIterations; ++i) {
        // Registration (name lookup) and recording from many threads.
        obs::DefaultMetrics().GetCounter("mdv.test.concurrency_total")
            .Increment();
        obs::DefaultMetrics()
            .GetHistogram("mdv.test.concurrency_us")
            .Record(i);
        obs::ScopedSpan span("test.concurrent_span");
        span.AddAttribute("thread", static_cast<int64_t>(t));
        MDV_LOG(Debug) << "concurrency test thread " << t << " iter " << i;
        if (i % 32 == 0) {
          (void)obs::DefaultMetrics().Snapshot();  // Reader racing writers.
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter.value() - before, kThreads * kIterations);
}

TEST(MdvConcurrencyTest, SystemsPublishingOverSharedObservability) {
  // MDPs themselves are documented single-threaded, so each thread owns
  // a full MdvSystem; what is shared — and what this test races — is
  // the process-wide metrics registry, tracer, and logging every system
  // records into.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      MdvSystem system(rdf::MakeObjectGlobeSchema());
      MetadataProvider* mdp = system.AddProvider();
      LocalMetadataRepository* lmr = system.AddRepository();
      auto subscribed = lmr->Subscribe(
          "search CycleProvider c register c where c.serverPort = 5874");
      if (!subscribed.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 20; ++i) {
        rdf::RdfDocument doc("thread" + std::to_string(t) + "_" +
                             std::to_string(i) + ".rdf");
        rdf::Resource host("host", "CycleProvider");
        host.AddProperty("serverHost",
                         rdf::PropertyValue::Literal("h" + std::to_string(i)));
        host.AddProperty("serverPort", rdf::PropertyValue::Literal("5874"));
        if (!doc.AddResource(std::move(host)).ok() ||
            !mdp->RegisterDocument(std::move(doc)).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mdv
