#include "rules/decomposer.h"

#include <gtest/gtest.h>

#include "rdf/document.h"
#include "rules/compiler.h"

namespace mdv::rules {
namespace {

class DecomposerTest : public ::testing::Test {
 protected:
  DecomposerTest() : schema_(rdf::MakeObjectGlobeSchema()) {}

  Result<DecomposedRule> Decompose(
      const std::string& text,
      const RuleExtensionResolver& resolver = nullptr) {
    Result<CompiledRule> compiled =
        CompileRule(text, schema_, nullptr, resolver);
    if (!compiled.ok()) return compiled.status();
    return compiled->decomposed;
  }

  static size_t CountKind(const DecomposedRule& rule, AtomicRuleKind kind) {
    size_t n = 0;
    for (const AtomicRuleNode& node : rule.atoms) {
      if (node.kind == kind && !node.is_external) ++n;
    }
    return n;
  }

  rdf::RdfSchema schema_;
};

TEST_F(DecomposerTest, SingleTriggeringRule) {
  Result<DecomposedRule> rule = Decompose(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de'");
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_EQ(rule->atoms.size(), 1u);
  const AtomicRuleNode& node = rule->root_node();
  EXPECT_EQ(node.kind, AtomicRuleKind::kTriggering);
  EXPECT_EQ(node.type, "CycleProvider");
  ASSERT_TRUE(node.trigger.predicate.has_value());
  EXPECT_EQ(node.trigger.predicate->property, "serverHost");
  EXPECT_EQ(node.trigger.predicate->op, rdbms::CompareOp::kContains);
  EXPECT_EQ(node.trigger.predicate->constant, "uni-passau.de");
  EXPECT_FALSE(node.trigger.predicate->constant_is_number);
}

TEST_F(DecomposerTest, OidRuleUsesRdfSubject) {
  Result<DecomposedRule> rule = Decompose(
      "search CycleProvider c register c where c = 'doc.rdf#host'");
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_EQ(rule->atoms.size(), 1u);
  EXPECT_EQ(rule->root_node().trigger.predicate->property,
            rdf::kRdfSubjectProperty);
  EXPECT_EQ(rule->root_node().trigger.predicate->constant, "doc.rdf#host");
}

TEST_F(DecomposerTest, ClassOnlyRuleHasNoPredicate) {
  Result<DecomposedRule> rule =
      Decompose("search CycleProvider c register c");
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->atoms.size(), 1u);
  EXPECT_FALSE(rule->root_node().trigger.predicate.has_value());
}

TEST_F(DecomposerTest, PaperExampleSection331) {
  // The §3.3.1 rule decomposes into RuleA, RuleB, RuleC (triggering) and
  // RuleE, RuleF (join), with the dependency tree of Figure 5.
  Result<DecomposedRule> rule = Decompose(
      "search CycleProvider c, ServerInformation s register c "
      "where c.serverHost contains 'uni-passau.de' "
      "and c.serverInformation = s "
      "and s.memory > 64 and s.cpu > 500");
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(CountKind(*rule, AtomicRuleKind::kTriggering), 3u);
  EXPECT_EQ(CountKind(*rule, AtomicRuleKind::kJoin), 2u);

  // Root (the end rule, "RuleF") registers CycleProviders and joins
  // through serverInformation.
  const AtomicRuleNode& root = rule->root_node();
  EXPECT_EQ(root.kind, AtomicRuleKind::kJoin);
  EXPECT_EQ(root.type, "CycleProvider");
  const bool left_registers = root.join.register_side == 0;
  const JoinSideSpec& reg = left_registers ? root.join.lhs : root.join.rhs;
  const JoinSideSpec& other = left_registers ? root.join.rhs : root.join.lhs;
  EXPECT_EQ(reg.property, "serverInformation");
  EXPECT_EQ(other.property, "");

  // The inner join ("RuleE") intersects the two ServerInformation
  // triggering rules via a bare equality.
  int inner = left_registers ? root.right_child : root.left_child;
  const AtomicRuleNode& rule_e = rule->atoms[inner];
  EXPECT_EQ(rule_e.kind, AtomicRuleKind::kJoin);
  EXPECT_EQ(rule_e.type, "ServerInformation");
  EXPECT_EQ(rule_e.join.lhs.property, "");
  EXPECT_EQ(rule_e.join.rhs.property, "");
  EXPECT_EQ(rule_e.join.op, rdbms::CompareOp::kEq);
  EXPECT_EQ(rule->atoms[rule_e.left_child].kind,
            AtomicRuleKind::kTriggering);
  EXPECT_EQ(rule->atoms[rule_e.right_child].kind,
            AtomicRuleKind::kTriggering);
}

TEST_F(DecomposerTest, PathRuleDecomposesIntoClassRulePlusJoin) {
  // §3.3.3: `c.serverInformation.memory > 64` yields a predicate-less
  // CycleProvider triggering rule, a memory triggering rule, and a join.
  Result<DecomposedRule> rule = Decompose(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(CountKind(*rule, AtomicRuleKind::kTriggering), 2u);
  EXPECT_EQ(CountKind(*rule, AtomicRuleKind::kJoin), 1u);
  bool found_class_rule = false;
  for (const AtomicRuleNode& node : rule->atoms) {
    if (node.kind == AtomicRuleKind::kTriggering &&
        !node.trigger.predicate.has_value()) {
      EXPECT_EQ(node.trigger.class_name, "CycleProvider");
      found_class_rule = true;
    }
  }
  EXPECT_TRUE(found_class_rule);
}

TEST_F(DecomposerTest, NumericConstantsFlagged) {
  Result<DecomposedRule> rule = Decompose(
      "search ServerInformation s register s where s.memory > 64");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->root_node().trigger.predicate->constant_is_number);
  EXPECT_EQ(rule->root_node().trigger.predicate->constant, "64");
}

TEST_F(DecomposerTest, GroupKeyIgnoresInputsButKeepsSpec) {
  JoinSpec a;
  a.left_class = "CycleProvider";
  a.right_class = "ServerInformation";
  a.lhs.property = "serverInformation";
  a.op = rdbms::CompareOp::kEq;
  a.register_side = 0;
  JoinSpec b = a;
  EXPECT_EQ(a.GroupKey(), b.GroupKey());
  b.register_side = 1;
  EXPECT_NE(a.GroupKey(), b.GroupKey());
  b = a;
  b.rhs.property = "x";
  EXPECT_NE(a.GroupKey(), b.GroupKey());
}

TEST_F(DecomposerTest, CanonicalTextsDistinguishRules) {
  TriggeringSpec t1{"ServerInformation",
                    TriggeringPredicate{"memory", rdbms::CompareOp::kGt,
                                        "64", true}};
  TriggeringSpec t2 = t1;
  EXPECT_EQ(TriggeringRuleText(t1), TriggeringRuleText(t2));
  t2.predicate->constant = "65";
  EXPECT_NE(TriggeringRuleText(t1), TriggeringRuleText(t2));
  TriggeringSpec bare{"ServerInformation", std::nullopt};
  EXPECT_NE(TriggeringRuleText(t1), TriggeringRuleText(bare));
}

TEST_F(DecomposerTest, ExternalRuleExtension) {
  auto resolver =
      [](const std::string& name) -> std::optional<ExternalExtension> {
    if (name == "PassauProviders") {
      return ExternalExtension{"CycleProvider", 42};
    }
    return std::nullopt;
  };
  auto ext_resolver = [](const std::string& name) -> std::optional<std::string> {
    if (name == "PassauProviders") return "CycleProvider";
    return std::nullopt;
  };
  Result<CompiledRule> compiled = CompileRule(
      "search PassauProviders p register p where p.serverPort > 5000",
      schema_, ext_resolver, resolver);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const DecomposedRule& rule = compiled->decomposed;
  bool found_external = false;
  for (const AtomicRuleNode& node : rule.atoms) {
    if (node.is_external) {
      EXPECT_EQ(node.external_rule_id, 42);
      EXPECT_EQ(node.type, "CycleProvider");
      found_external = true;
    }
  }
  EXPECT_TRUE(found_external);
  // Root joins the external input with the serverPort triggering rule.
  EXPECT_EQ(rule.root_node().kind, AtomicRuleKind::kJoin);
}

TEST_F(DecomposerTest, CartesianProductRejected) {
  EXPECT_EQ(Decompose("search CycleProvider a, CycleProvider b register a")
                .status()
                .code(),
            StatusCode::kUnsupported);
}

TEST_F(DecomposerTest, SelfJoinOnSameVariableAllowed) {
  rdf::RdfSchema schema;
  ASSERT_TRUE(schema
                  .AddClass(rdf::ClassBuilder("C")
                                .Literal("a")
                                .Literal("b")
                                .Build())
                  .ok());
  Result<CompiledRule> compiled =
      CompileRule("search C c register c where c.a = c.b", schema);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const AtomicRuleNode& root = compiled->decomposed.root_node();
  EXPECT_EQ(root.kind, AtomicRuleKind::kJoin);
  EXPECT_EQ(root.left_child, root.right_child);
}

}  // namespace
}  // namespace mdv::rules
