// Tests of the span tracer: implicit parent/child nesting via the
// thread-local span stack, explicit message-carried parent contexts,
// ring-buffer retention, and the JSON export.

#include <gtest/gtest.h>

#include <string>

#include "obs/trace.h"

namespace mdv::obs {
namespace {

// Each test uses a private Tracer so the process-wide DefaultTracer()
// (fed by any code under test elsewhere in the binary) cannot interfere.

TEST(ScopedSpanTest, RootSpanStartsItsOwnTrace) {
  Tracer tracer;
  { ScopedSpan span(&tracer, "root"); }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].trace_id, spans[0].span_id);
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
}

TEST(ScopedSpanTest, NestedSpansLinkToTheEnclosingSpan) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan inner(&tracer, "inner");
      { ScopedSpan innermost(&tracer, "innermost"); }
    }
    { ScopedSpan sibling(&tracer, "sibling"); }
  }
  // Completion order: innermost, inner, sibling, outer.
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord& innermost = spans[0];
  const SpanRecord& inner = spans[1];
  const SpanRecord& sibling = spans[2];
  const SpanRecord& outer = spans[3];
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_EQ(innermost.parent_id, inner.span_id);
  EXPECT_EQ(sibling.parent_id, outer.span_id);
  // One trace, rooted at the outer span.
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, outer.span_id);
  }
  EXPECT_EQ(tracer.TraceSpans(outer.trace_id).size(), 4u);
}

TEST(ScopedSpanTest, ExplicitParentContextJoinsTheRemoteTrace) {
  Tracer tracer;
  SpanContext carried;
  {
    ScopedSpan origin(&tracer, "origin");
    carried = origin.context();  // As stamped on a bus message.
  }
  // A new "delivery" on an empty stack joins the origin's trace.
  { ScopedSpan deliver(&tracer, "deliver", carried, /*use_parent=*/true); }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].trace_id, carried.trace_id);
  EXPECT_EQ(spans[1].parent_id, carried.span_id);
}

TEST(ScopedSpanTest, InvalidParentContextFallsBackToThreadStack) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    ScopedSpan child(&tracer, "child", SpanContext{}, /*use_parent=*/true);
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "child");
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
}

TEST(ScopedSpanTest, AttributesAreRetained) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "attr");
    span.AddAttribute("uri", "doc.rdf");
    span.AddAttribute("count", static_cast<int64_t>(7));
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attributes.size(), 2u);
  EXPECT_EQ(spans[0].attributes[0],
            (std::pair<std::string, std::string>{"uri", "doc.rdf"}));
  EXPECT_EQ(spans[0].attributes[1],
            (std::pair<std::string, std::string>{"count", "7"}));
}

TEST(ScopedSpanTest, DisabledTracerRecordsNothingButFeedsHistogram) {
  Tracer tracer;
  tracer.set_enabled(false);
  Histogram latency({1000000});
  {
    ScopedSpan span(&tracer, "ignored", SpanContext{}, false, &latency);
    EXPECT_FALSE(span.recording());
    span.AddAttribute("dropped", "yes");  // Must not crash.
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(latency.GetSnapshot().count, 1);
}

TEST(ScopedSpanTest, SpanDurationFeedsLatencyHistogram) {
  Tracer tracer;
  Histogram latency({1000000});
  { ScopedSpan span(&tracer, "timed", SpanContext{}, false, &latency); }
  EXPECT_EQ(latency.GetSnapshot().count, 1);
  ASSERT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(TracerTest, RingBufferKeepsTheMostRecentSpans) {
  Tracer tracer(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span(&tracer, "span" + std::to_string(i));
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Oldest first: span2, span3, span4 survive.
  EXPECT_EQ(spans[0].name, "span2");
  EXPECT_EQ(spans[1].name, "span3");
  EXPECT_EQ(spans[2].name, "span4");
}

TEST(TracerTest, ClearDropsSpansButIdsKeepIncreasing) {
  Tracer tracer;
  uint64_t first_id;
  {
    ScopedSpan span(&tracer, "before");
    first_id = span.context().span_id;
  }
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  { ScopedSpan span(&tracer, "after"); }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GT(spans[0].span_id, first_id);
}

TEST(TracerTest, ExportJsonShape) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "exported");
    span.AddAttribute("key", "value");
  }
  std::string json = tracer.ExportJson();
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"spans\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"exported\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": "), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"key\": \"value\""), std::string::npos);
  Tracer empty;
  EXPECT_EQ(empty.ExportJson(), "{\"dropped\": 0, \"spans\": []}");
}

TEST(TracerTest, CountsDroppedSpansOnRingOverflow) {
  Tracer tracer;
  tracer.SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span(&tracer, "overflow");
  }
  // 10 spans through a 4-slot ring: 6 evicted.
  EXPECT_EQ(tracer.dropped(), 6);
  EXPECT_EQ(tracer.Snapshot().size(), 4u);
  std::string json = tracer.ExportJson();
  EXPECT_NE(json.find("\"dropped\": 6"), std::string::npos);
  tracer.Clear();
  EXPECT_EQ(tracer.dropped(), 0);
}

}  // namespace
}  // namespace mdv::obs
