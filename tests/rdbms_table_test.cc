#include "rdbms/table.h"

#include <gtest/gtest.h>

#include "rdbms/database.h"

namespace mdv::rdbms {
namespace {

TableSchema PeopleSchema() {
  return TableSchema("people", {ColumnDef{"name", ColumnType::kString},
                                ColumnDef{"age", ColumnType::kInt64}});
}

Row MakePerson(const std::string& name, int64_t age) {
  return Row{Value(name), Value(age)};
}

TEST(TableTest, InsertGetDelete) {
  Table table(PeopleSchema());
  Result<RowId> id = table.Insert(MakePerson("ada", 36));
  ASSERT_TRUE(id.ok());
  ASSERT_NE(table.Get(*id), nullptr);
  EXPECT_EQ((*table.Get(*id))[0].as_string(), "ada");
  EXPECT_EQ(table.NumRows(), 1u);
  EXPECT_TRUE(table.Delete(*id).ok());
  EXPECT_EQ(table.Get(*id), nullptr);
  EXPECT_FALSE(table.Delete(*id).ok());
}

TEST(TableTest, InsertValidatesArityAndTypes) {
  Table table(PeopleSchema());
  EXPECT_FALSE(table.Insert(Row{Value("ada")}).ok());
  EXPECT_FALSE(table.Insert(Row{Value("ada"), Value("not a number")}).ok());
  EXPECT_TRUE(table.Insert(Row{Value("ada"), Value()}).ok());  // NULL ok.
}

TEST(TableTest, UpdateKeepsIndexesInSync) {
  Table table(PeopleSchema());
  ASSERT_TRUE(table.CreateIndex("age", IndexKind::kBTree).ok());
  RowId id = *table.Insert(MakePerson("ada", 36));
  ASSERT_TRUE(table.Update(id, MakePerson("ada", 37)).ok());
  EXPECT_TRUE(table
                  .SelectRowIds({ScanCondition{1, CompareOp::kEq,
                                               Value(int64_t{36})}})
                  .empty());
  EXPECT_EQ(table
                .SelectRowIds(
                    {ScanCondition{1, CompareOp::kEq, Value(int64_t{37})}})
                .size(),
            1u);
}

TEST(TableTest, IndexBackfillsExistingRows) {
  Table table(PeopleSchema());
  RowId ada = *table.Insert(MakePerson("ada", 36));
  RowId bob = *table.Insert(MakePerson("bob", 25));
  ASSERT_TRUE(table.CreateIndex("name", IndexKind::kHash).ok());
  std::vector<RowId> hits =
      table.SelectRowIds({ScanCondition{0, CompareOp::kEq, Value("bob")}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], bob);
  (void)ada;
  EXPECT_EQ(table.stats().index_lookups, 1);
  EXPECT_EQ(table.stats().full_scans, 0);
}

TEST(TableTest, DuplicateIndexRejected) {
  Table table(PeopleSchema());
  ASSERT_TRUE(table.CreateIndex("name", IndexKind::kHash).ok());
  EXPECT_EQ(table.CreateIndex("name", IndexKind::kBTree).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(table.CreateIndex("nope", IndexKind::kHash).code(),
            StatusCode::kNotFound);
}

TEST(TableTest, BTreeRangeScan) {
  Table table(PeopleSchema());
  ASSERT_TRUE(table.CreateIndex("age", IndexKind::kBTree).ok());
  for (int64_t age = 10; age <= 50; age += 10) {
    ASSERT_TRUE(table.Insert(MakePerson("p" + std::to_string(age), age)).ok());
  }
  EXPECT_EQ(table
                .SelectRowIds(
                    {ScanCondition{1, CompareOp::kGt, Value(int64_t{20})}})
                .size(),
            3u);
  EXPECT_EQ(table
                .SelectRowIds(
                    {ScanCondition{1, CompareOp::kGe, Value(int64_t{20})}})
                .size(),
            4u);
  EXPECT_EQ(table
                .SelectRowIds(
                    {ScanCondition{1, CompareOp::kLe, Value(int64_t{20})}})
                .size(),
            2u);
  EXPECT_EQ(table.stats().full_scans, 0);
}

TEST(TableTest, FullScanFallbackWithoutIndex) {
  Table table(PeopleSchema());
  ASSERT_TRUE(table.Insert(MakePerson("ada", 36)).ok());
  ASSERT_TRUE(table.Insert(MakePerson("bob", 25)).ok());
  std::vector<RowId> hits =
      table.SelectRowIds({ScanCondition{0, CompareOp::kEq, Value("ada")}});
  EXPECT_EQ(hits.size(), 1u);
  EXPECT_EQ(table.stats().full_scans, 1);
}

TEST(TableTest, MultiConditionUsesOneIndexAndFilters) {
  Table table(PeopleSchema());
  ASSERT_TRUE(table.CreateIndex("age", IndexKind::kBTree).ok());
  ASSERT_TRUE(table.Insert(MakePerson("ada", 36)).ok());
  ASSERT_TRUE(table.Insert(MakePerson("bob", 36)).ok());
  std::vector<RowId> hits = table.SelectRowIds(
      {ScanCondition{1, CompareOp::kEq, Value(int64_t{36})},
       ScanCondition{0, CompareOp::kEq, Value("bob")}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ((*table.Get(hits[0]))[0].as_string(), "bob");
}

TEST(TableTest, DeleteWhereRemovesMatching) {
  Table table(PeopleSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        table.Insert(MakePerson("p" + std::to_string(i), i % 2)).ok());
  }
  EXPECT_EQ(table.DeleteWhere(
                {ScanCondition{1, CompareOp::kEq, Value(int64_t{1})}}),
            5u);
  EXPECT_EQ(table.NumRows(), 5u);
}

TEST(TableTest, TruncateKeepsIndexDefinitions) {
  Table table(PeopleSchema());
  ASSERT_TRUE(table.CreateIndex("age", IndexKind::kBTree).ok());
  ASSERT_TRUE(table.Insert(MakePerson("ada", 36)).ok());
  table.Truncate();
  EXPECT_EQ(table.NumRows(), 0u);
  ASSERT_TRUE(table.Insert(MakePerson("bob", 25)).ok());
  EXPECT_EQ(table
                .SelectRowIds(
                    {ScanCondition{1, CompareOp::kEq, Value(int64_t{25})}})
                .size(),
            1u);
  EXPECT_TRUE(table.HasIndex(1));
}

TEST(TableTest, InsertRowsAppendsAll) {
  Table table(PeopleSchema());
  ASSERT_TRUE(table.CreateIndex("age", IndexKind::kBTree).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 5; ++i) rows.push_back(MakePerson("p", i));
  ASSERT_TRUE(table.InsertRows(std::move(rows)).ok());
  EXPECT_EQ(table.NumRows(), 5u);
  EXPECT_EQ(table
                .SelectRowIds(
                    {ScanCondition{1, CompareOp::kEq, Value(int64_t{3})}})
                .size(),
            1u);
}

TEST(TableTest, InsertRowsIsAllOrNothing) {
  Table table(PeopleSchema());
  std::vector<Row> rows{MakePerson("ok", 1),
                        Row{Value("bad"), Value("not a number")}};
  EXPECT_FALSE(table.InsertRows(std::move(rows)).ok());
  EXPECT_EQ(table.NumRows(), 0u);  // The valid row was not inserted either.
}

TEST(TableTest, CombinedRangeBoundsUseOneIndexProbe) {
  Table table(PeopleSchema());
  ASSERT_TRUE(table.CreateIndex("age", IndexKind::kBTree).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table.Insert(MakePerson("p" + std::to_string(i), i)).ok());
  }
  int64_t lookups_before = table.stats().index_lookups;
  // 5 <= age < 9, both bounds on the same B-tree column: one range probe.
  std::vector<RowId> hits = table.SelectRowIds(
      {ScanCondition{1, CompareOp::kGe, Value(int64_t{5})},
       ScanCondition{1, CompareOp::kLt, Value(int64_t{9})}});
  EXPECT_EQ(hits.size(), 4u);
  EXPECT_EQ(table.stats().index_lookups, lookups_before + 1);
  // Contradictory bounds short-circuit to an empty result.
  EXPECT_TRUE(table
                  .SelectRowIds(
                      {ScanCondition{1, CompareOp::kGt, Value(int64_t{9})},
                       ScanCondition{1, CompareOp::kLt, Value(int64_t{5})}})
                  .empty());
}

TEST(DatabaseTest, CatalogLifecycle) {
  Database db;
  Result<Table*> created = db.CreateTable(PeopleSchema());
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(db.HasTable("people"));
  EXPECT_EQ(db.CreateTable(PeopleSchema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.GetTable("people"), *created);
  EXPECT_EQ(db.GetTable("nope"), nullptr);
  EXPECT_TRUE(db.DropTable("people").ok());
  EXPECT_FALSE(db.DropTable("people").ok());
}

TEST(DatabaseTest, TotalRowsAndNames) {
  Database db;
  Table* people = *db.CreateTable(PeopleSchema());
  ASSERT_TRUE(people->Insert(MakePerson("ada", 1)).ok());
  ASSERT_TRUE(
      db.CreateTable(TableSchema("empty", {ColumnDef{"x"}})).ok());
  EXPECT_EQ(db.TotalRows(), 1u);
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"empty", "people"}));
}

// ---- Invariant auditor. ---------------------------------------------------

TEST(TableInvariantsTest, HoldAfterMutationWorkout) {
  Table table(PeopleSchema());
  ASSERT_TRUE(table.CreateIndex("name", IndexKind::kHash).ok());
  ASSERT_TRUE(table.CreateIndex("age", IndexKind::kBTree).ok());
  EXPECT_TRUE(table.CheckInvariants().ok());

  std::vector<RowId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(*table.Insert(MakePerson("p" + std::to_string(i % 7),
                                           100 - i)));
  }
  EXPECT_TRUE(table.CheckInvariants().ok());
  for (size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(table.Delete(ids[i]).ok());
  }
  for (size_t i = 1; i < ids.size(); i += 3) {
    ASSERT_TRUE(table.Update(ids[i], MakePerson("updated", 1000 + i)).ok());
  }
  Status st = table.CheckInvariants();
  EXPECT_TRUE(st.ok()) << st.ToString();

  // Index created after the fact is back-filled consistently.
  ASSERT_TRUE(table.DropIndex("age").ok());
  ASSERT_TRUE(table.CreateIndex("age", IndexKind::kHash).ok());
  EXPECT_TRUE(table.CheckInvariants().ok());
  table.Truncate();
  EXPECT_TRUE(table.CheckInvariants().ok());
}

TEST(TableInvariantsTest, HoldAcrossTransactionRollback) {
  Database db;
  Table* people = *db.CreateTable(PeopleSchema());
  ASSERT_TRUE(people->CreateIndex("age", IndexKind::kBTree).ok());
  RowId keep = *people->Insert(MakePerson("ada", 36));
  ASSERT_TRUE(db.BeginTransaction().ok());
  ASSERT_TRUE(people->Insert(MakePerson("grace", 45)).ok());
  ASSERT_TRUE(people->Delete(keep).ok());
  ASSERT_TRUE(db.RollbackTransaction().ok());
  Status st = db.CheckInvariants();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(people->NumRows(), 1u);
}

TEST(TableInvariantsTest, BTreeForEachEntryVisitsInKeyOrder) {
  // The auditor's ordering check leans on this visit order.
  BTreeIndex index(0);
  index.Insert(Value(int64_t{5}), 1);
  index.Insert(Value(int64_t{1}), 2);
  index.Insert(Value(int64_t{3}), 3);
  std::vector<int64_t> keys;
  index.ForEachEntry(
      [&](const Value& key, RowId) { keys.push_back(key.as_int()); });
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3, 5}));
}

}  // namespace
}  // namespace mdv::rdbms
