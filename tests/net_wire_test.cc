#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pubsub/notification.h"
#include "rdf/document.h"
#include "rdf/term.h"

namespace mdv::net {
namespace {

using pubsub::Notification;
using pubsub::NotificationKind;
using pubsub::TransmittedResource;

rdf::Resource MakeResource(const std::string& id, const std::string& cls) {
  return rdf::Resource(id, cls);
}

NotifyFrame MakeNotifyFrame() {
  NotifyFrame frame;
  frame.sender = 7;
  frame.sequence = 42;
  Notification& note = frame.notification;
  note.kind = NotificationKind::kInsert;
  note.lmr = 3;
  note.subscription = 11;
  note.trace.trace_id = 0xABCDEF;
  note.trace.span_id = 0x123456;
  rdf::Resource movie = MakeResource("m1", "Movie");
  movie.AddProperty("title", rdf::PropertyValue::Literal("Metropolis"));
  movie.AddProperty("year", rdf::PropertyValue::Literal("1927"));
  movie.AddProperty("director",
                    rdf::PropertyValue::ResourceRef("http://p.example#d1"));
  note.resources.push_back(
      {"http://docs.example/a#m1", std::move(movie), false});
  rdf::Resource person = MakeResource("d1", "Person");
  person.AddProperty("name", rdf::PropertyValue::Literal("Fritz Lang"));
  note.resources.push_back({"http://p.example#d1", std::move(person), true});
  return frame;
}

void ExpectNotificationsEqual(const Notification& a, const Notification& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.lmr, b.lmr);
  EXPECT_EQ(a.subscription, b.subscription);
  EXPECT_EQ(a.trace.trace_id, b.trace.trace_id);
  EXPECT_EQ(a.trace.span_id, b.trace.span_id);
  ASSERT_EQ(a.resources.size(), b.resources.size());
  for (size_t i = 0; i < a.resources.size(); ++i) {
    EXPECT_EQ(a.resources[i].uri_reference, b.resources[i].uri_reference);
    EXPECT_EQ(a.resources[i].via_strong_reference,
              b.resources[i].via_strong_reference);
    EXPECT_TRUE(
        a.resources[i].resource.ContentEquals(b.resources[i].resource));
    EXPECT_EQ(a.resources[i].resource.local_id(),
              b.resources[i].resource.local_id());
  }
}

// ---- Round trips. -------------------------------------------------------

TEST(WireCodecTest, NotifyFrameRoundTrips) {
  NotifyFrame frame = MakeNotifyFrame();
  std::string encoded = EncodeNotifyFrame(frame);
  Result<DecodedFrame> decoded = DecodeFrame(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, FrameType::kNotify);
  EXPECT_EQ(decoded.value().notify.sender, 7u);
  EXPECT_EQ(decoded.value().notify.sequence, 42u);
  ExpectNotificationsEqual(frame.notification,
                           decoded.value().notify.notification);
}

TEST(WireCodecTest, AllNotificationKindsRoundTrip) {
  for (NotificationKind kind :
       {NotificationKind::kInsert, NotificationKind::kUpdate,
        NotificationKind::kRemove}) {
    NotifyFrame frame = MakeNotifyFrame();
    frame.notification.kind = kind;
    Result<DecodedFrame> decoded = DecodeFrame(EncodeNotifyFrame(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().notify.notification.kind, kind);
  }
}

TEST(WireCodecTest, EmptyNotificationRoundTrips) {
  NotifyFrame frame;
  frame.sender = 1;
  frame.sequence = 1;
  frame.notification.kind = NotificationKind::kRemove;
  frame.notification.lmr = 0;
  frame.notification.subscription = -1;
  Result<DecodedFrame> decoded = DecodeFrame(EncodeNotifyFrame(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().notify.notification.subscription, -1);
  EXPECT_TRUE(decoded.value().notify.notification.resources.empty());
}

TEST(WireCodecTest, EmptyAndUnicodeLiteralsRoundTrip) {
  NotifyFrame frame;
  frame.sender = 2;
  frame.sequence = 9;
  frame.notification.lmr = 5;
  rdf::Resource res = MakeResource("r", "Füße");
  res.AddProperty("empty", rdf::PropertyValue::Literal(""));
  res.AddProperty("umlaut", rdf::PropertyValue::Literal("Grüße, Wörld"));
  res.AddProperty("cjk", rdf::PropertyValue::Literal("メタデータ管理"));
  res.AddProperty("emoji", rdf::PropertyValue::Literal("🎬📽️"));
  res.AddProperty("nul", rdf::PropertyValue::Literal(std::string("a\0b", 3)));
  frame.notification.resources.push_back({"", res, false});
  Result<DecodedFrame> decoded = DecodeFrame(EncodeNotifyFrame(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectNotificationsEqual(frame.notification,
                           decoded.value().notify.notification);
  const rdf::Resource& back =
      decoded.value().notify.notification.resources[0].resource;
  EXPECT_EQ(back.FindProperty("nul")->text(), std::string("a\0b", 3));
}

TEST(WireCodecTest, ManyResourcesManyPropertiesRoundTrip) {
  NotifyFrame frame;
  frame.sender = 3;
  frame.sequence = 100;
  frame.notification.lmr = 1;
  for (int i = 0; i < 50; ++i) {
    rdf::Resource res = MakeResource("r" + std::to_string(i), "Movie");
    for (int p = 0; p < 20; ++p) {
      res.AddProperty("prop" + std::to_string(p),
                      p % 2 == 0 ? rdf::PropertyValue::Literal(
                                       "value-" + std::to_string(p))
                                 : rdf::PropertyValue::ResourceRef(
                                       "http://x#" + std::to_string(p)));
    }
    frame.notification.resources.push_back(
        {"http://docs#" + std::to_string(i), std::move(res), i % 3 == 0});
  }
  Result<DecodedFrame> decoded = DecodeFrame(EncodeNotifyFrame(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectNotificationsEqual(frame.notification,
                           decoded.value().notify.notification);
}

TEST(WireCodecTest, AckFrameRoundTrips) {
  AckFrame ack;
  ack.sender = 12;
  ack.sequence = 345;
  ack.lmr = 6;
  Result<DecodedFrame> decoded = DecodeFrame(EncodeAckFrame(ack));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, FrameType::kAck);
  EXPECT_EQ(decoded.value().ack.sender, 12u);
  EXPECT_EQ(decoded.value().ack.sequence, 345u);
  EXPECT_EQ(decoded.value().ack.lmr, 6);
}

// ---- Rejection. ---------------------------------------------------------

TEST(WireCodecTest, RejectsEveryTruncationPrefix) {
  std::string encoded = EncodeNotifyFrame(MakeNotifyFrame());
  for (size_t len = 0; len < encoded.size(); ++len) {
    Result<DecodedFrame> decoded =
        DecodeFrame(std::string_view(encoded).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireCodecTest, RejectsTrailingBytes) {
  std::string encoded = EncodeNotifyFrame(MakeNotifyFrame());
  encoded.push_back('\0');
  EXPECT_FALSE(DecodeFrame(encoded).ok());
}

TEST(WireCodecTest, RejectsEveryBitFlip) {
  // Flip each bit of a complete frame; decode must fail (the flip
  // changes magic/version/type/reserved/length/checksum in the header
  // or breaks the payload checksum) or — when the flipped bit is
  // inside the checksum-covered payload — never succeed silently.
  NotifyFrame small;
  small.sender = 1;
  small.sequence = 2;
  small.notification.lmr = 3;
  rdf::Resource res = MakeResource("x", "Movie");
  res.AddProperty("t", rdf::PropertyValue::Literal("v"));
  small.notification.resources.push_back({"http://d#x", res, false});
  const std::string encoded = EncodeNotifyFrame(small);
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = encoded;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_FALSE(DecodeFrame(corrupt).ok())
          << "bit " << bit << " of byte " << byte << " undetected";
    }
  }
}

TEST(WireCodecTest, RejectsOversizedPayloadLength) {
  std::string encoded = EncodeAckFrame(AckFrame{1, 2, 3});
  // Patch the length field (offset 8, little-endian u32) to an absurd
  // value and extend the buffer to match, so only the limit check can
  // reject it.
  const uint32_t huge = (64u << 20) + 1;
  for (int i = 0; i < 4; ++i) {
    encoded[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  Result<DecodedFrame> decoded = DecodeFrame(encoded);
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("exceeds limit"),
            std::string::npos);
}

TEST(WireCodecTest, RejectsWrongVersionAndType) {
  std::string encoded = EncodeAckFrame(AckFrame{1, 2, 3});
  std::string bad_version = encoded;
  bad_version[4] = static_cast<char>(kWireVersion + 1);
  EXPECT_FALSE(DecodeFrame(bad_version).ok());
  std::string bad_type = encoded;
  bad_type[5] = 99;
  EXPECT_FALSE(DecodeFrame(bad_type).ok());
  std::string bad_reserved = encoded;
  bad_reserved[6] = 1;
  EXPECT_FALSE(DecodeFrame(bad_reserved).ok());
}

TEST(WireCodecTest, RejectsImplausibleElementCounts) {
  // A frame whose payload claims 2^31 resources but carries none. The
  // checksum is recomputed so only the count plausibility check can
  // reject it.
  NotifyFrame frame;
  frame.sender = 1;
  frame.sequence = 1;
  frame.notification.lmr = 1;
  std::string encoded = EncodeNotifyFrame(frame);
  const size_t count_offset = encoded.size() - 4;  // Trailing resource count.
  const uint32_t absurd = 0x80000000u;
  for (int i = 0; i < 4; ++i) {
    encoded[count_offset + i] = static_cast<char>((absurd >> (8 * i)) & 0xFF);
  }
  // Recompute the checksum over the patched payload.
  std::string payload = encoded.substr(kWireHeaderBytes);
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : payload) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  for (int i = 0; i < 8; ++i) {
    encoded[12 + i] = static_cast<char>((h >> (8 * i)) & 0xFF);
  }
  Result<DecodedFrame> decoded = DecodeFrame(encoded);
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("implausible"), std::string::npos);
}

// ---- Stream framing. ----------------------------------------------------

TEST(FrameBufferTest, ReassemblesFramesFromArbitraryChunks) {
  std::vector<std::string> frames;
  frames.push_back(EncodeNotifyFrame(MakeNotifyFrame()));
  frames.push_back(EncodeAckFrame(AckFrame{7, 42, 3}));
  frames.push_back(EncodeNotifyFrame(MakeNotifyFrame()));
  std::string stream;
  for (const std::string& f : frames) stream += f;

  for (size_t chunk : {1u, 3u, 7u, 64u, 1000u}) {
    FrameBuffer buffer;
    std::vector<std::string> out;
    for (size_t pos = 0; pos < stream.size(); pos += chunk) {
      buffer.Append(std::string_view(stream).substr(
          pos, std::min(chunk, stream.size() - pos)));
      while (true) {
        Result<std::optional<std::string>> next = buffer.Next();
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        if (!next.value().has_value()) break;
        out.push_back(std::move(*next.value()));
      }
    }
    ASSERT_EQ(out.size(), frames.size()) << "chunk size " << chunk;
    for (size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(out[i], frames[i]);
      EXPECT_TRUE(DecodeFrame(out[i]).ok());
    }
    EXPECT_EQ(buffer.buffered_bytes(), 0u);
  }
}

TEST(FrameBufferTest, NeedsMoreInputWithoutFullHeader) {
  FrameBuffer buffer;
  buffer.Append("\x4E\x56");  // First magic bytes only.
  Result<std::optional<std::string>> next = buffer.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value().has_value());
}

TEST(FrameBufferTest, CorruptHeaderPoisonsTheStream) {
  std::string frame = EncodeAckFrame(AckFrame{1, 1, 1});
  frame[0] = 'X';  // Break the magic.
  FrameBuffer buffer;
  buffer.Append(frame);
  EXPECT_FALSE(buffer.Next().ok());
  // And stays broken: resynchronization is impossible.
  EXPECT_FALSE(buffer.Next().ok());
}

}  // namespace
}  // namespace mdv::net
