#include "rules/normalizer.h"

#include <gtest/gtest.h>

#include "rules/parser.h"

namespace mdv::rules {
namespace {

class NormalizerTest : public ::testing::Test {
 protected:
  NormalizerTest() : schema_(rdf::MakeObjectGlobeSchema()) {}

  Result<AnalyzedRule> Normalize(const std::string& text) {
    Result<RuleAst> ast = ParseRule(text);
    if (!ast.ok()) return ast.status();
    Result<AnalyzedRule> analyzed = AnalyzeRule(*ast, schema_);
    if (!analyzed.ok()) return analyzed.status();
    return NormalizeRule(*analyzed, schema_);
  }

  rdf::RdfSchema schema_;
};

size_t MaxPathLength(const AnalyzedRule& rule) {
  size_t max_len = 0;
  for (const PredicateExpr& pred : rule.ast.where) {
    if (pred.lhs.is_path()) {
      max_len = std::max(max_len, pred.lhs.path.steps.size());
    }
    if (pred.rhs.is_path()) {
      max_len = std::max(max_len, pred.rhs.path.steps.size());
    }
  }
  return max_len;
}

TEST_F(NormalizerTest, SplitsPathExpressions) {
  // §3.3's example: the Example 1 rule normalizes to a two-variable rule
  // with a reference join.
  Result<AnalyzedRule> rule = Normalize(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de' "
      "and c.serverInformation.memory > 64");
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_EQ(rule->ast.search.size(), 2u);
  EXPECT_EQ(rule->ast.search[1].extension, "ServerInformation");
  EXPECT_LE(MaxPathLength(*rule), 1u);

  // One of the predicates must be the introduced reference join.
  bool found_join = false;
  for (const PredicateExpr& pred : rule->ast.where) {
    if (pred.lhs.is_path() && pred.rhs.is_path() &&
        pred.rhs.path.IsBareVariable() &&
        !pred.lhs.path.IsBareVariable() &&
        pred.lhs.path.steps[0].property == "serverInformation") {
      found_join = true;
    }
  }
  EXPECT_TRUE(found_join);
}

TEST_F(NormalizerTest, SharedPrefixUsesOneAuxiliaryVariable) {
  // §3.3.1: memory and cpu under the same reference bind to the same s.
  Result<AnalyzedRule> rule = Normalize(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64 "
      "and c.serverInformation.cpu > 500");
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->ast.search.size(), 2u);  // c plus one auxiliary.
  // Exactly one introduced join predicate.
  int joins = 0;
  for (const PredicateExpr& pred : rule->ast.where) {
    if (pred.lhs.is_path() && pred.rhs.is_path()) ++joins;
  }
  EXPECT_EQ(joins, 1);
  EXPECT_EQ(rule->ast.where.size(), 3u);
}

TEST_F(NormalizerTest, AlreadyNormalizedRuleUnchanged) {
  const std::string text =
      "search CycleProvider c, ServerInformation s register c "
      "where c.serverInformation = s and s.memory > 64";
  Result<AnalyzedRule> rule = Normalize(text);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->ast.search.size(), 2u);
  EXPECT_EQ(rule->ast.where.size(), 2u);
}

TEST_F(NormalizerTest, ConstantsMoveToTheRight) {
  Result<AnalyzedRule> rule =
      Normalize("search CycleProvider c register c where 64 < c.serverPort");
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_EQ(rule->ast.where.size(), 1u);
  EXPECT_TRUE(rule->ast.where[0].lhs.is_path());
  EXPECT_TRUE(rule->ast.where[0].rhs.is_constant());
  EXPECT_EQ(rule->ast.where[0].op, rdbms::CompareOp::kGt);  // Flipped.
}

TEST_F(NormalizerTest, AuxiliaryVariableNamesAvoidCollisions) {
  Result<AnalyzedRule> rule = Normalize(
      "search CycleProvider _v1 register _v1 "
      "where _v1.serverInformation.memory > 64");
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_EQ(rule->ast.search.size(), 2u);
  EXPECT_NE(rule->ast.search[1].variable, "_v1");
}

TEST_F(NormalizerTest, BothSidesSplit) {
  rdf::RdfSchema schema;
  ASSERT_TRUE(schema
                  .AddClass(rdf::ClassBuilder("Info")
                                .Literal("value")
                                .Build())
                  .ok());
  ASSERT_TRUE(schema
                  .AddClass(rdf::ClassBuilder("Node")
                                .WeakRef("info", "Info")
                                .Build())
                  .ok());
  Result<RuleAst> ast = ParseRule(
      "search Node a, Node b register a where a.info.value = b.info.value");
  ASSERT_TRUE(ast.ok());
  Result<AnalyzedRule> analyzed = AnalyzeRule(*ast, schema);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  Result<AnalyzedRule> rule = NormalizeRule(*analyzed, schema);
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->ast.search.size(), 4u);  // a, b plus two auxiliaries.
  EXPECT_LE(MaxPathLength(*rule), 1u);
}

}  // namespace
}  // namespace mdv::rules
