# Golden test for `mdv_lint --json` (satellite of the concurrency-
# verification PR): runs the linter in JSON-lines mode over the checked-in
# unsat.rules fixture and diffs stdout against unsat.rules.json byte for
# byte. Guards the machine-readable diagnostic format consumed by CI —
# key order, escaping, the compile-error passthrough and the trailing
# summary object are all part of the contract.
#
# Invoked as:
#   cmake -DMDV_LINT=<path-to-mdv_lint> -DTESTDATA=<tools/testdata>
#         -P lint_json_golden.cmake
#
# Runs with TESTDATA as the working directory so the `file` field of the
# summary object holds the stable relative path `unsat.rules`.

if(NOT MDV_LINT OR NOT TESTDATA)
  message(FATAL_ERROR "usage: cmake -DMDV_LINT=... -DTESTDATA=... -P lint_json_golden.cmake")
endif()

execute_process(
  COMMAND "${MDV_LINT}" --json unsat.rules
  WORKING_DIRECTORY "${TESTDATA}"
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE stderr_out
  RESULT_VARIABLE exit_code)

# unsat.rules holds a provable contradiction: the linter must fail.
if(NOT exit_code EQUAL 1)
  message(FATAL_ERROR
    "mdv_lint --json unsat.rules exited ${exit_code}, want 1\n"
    "stderr: ${stderr_out}")
endif()

file(READ "${TESTDATA}/unsat.rules.json" expected)

if(NOT actual STREQUAL expected)
  message(FATAL_ERROR
    "mdv_lint --json output drifted from the golden file.\n"
    "--- expected (tools/testdata/unsat.rules.json) ---\n${expected}"
    "--- actual ---\n${actual}"
    "If the change is intentional, regenerate the golden:\n"
    "  (cd tools/testdata && ../../build/tools/mdv_lint --json unsat.rules > unsat.rules.json)")
endif()
