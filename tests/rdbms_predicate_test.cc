#include "rdbms/predicate.h"

#include <gtest/gtest.h>

namespace mdv::rdbms {
namespace {

Row MakeRow(int64_t a, const std::string& b) {
  return Row{Value(a), Value(b)};
}

TEST(PredicateTest, ColumnCompare) {
  PredicatePtr p = ColumnCompare(0, CompareOp::kGt, Value(int64_t{10}));
  EXPECT_TRUE(p->Evaluate(MakeRow(11, "x")));
  EXPECT_FALSE(p->Evaluate(MakeRow(10, "x")));
  EXPECT_NE(p->ToString().find(">"), std::string::npos);
}

TEST(PredicateTest, ColumnColumnCompare) {
  PredicatePtr p = ColumnColumnCompare(0, CompareOp::kEq, 1);
  EXPECT_TRUE(p->Evaluate(Row{Value(int64_t{5}), Value(int64_t{5})}));
  EXPECT_FALSE(p->Evaluate(Row{Value(int64_t{5}), Value(int64_t{6})}));
}

TEST(PredicateTest, AndSemantics) {
  PredicatePtr both = And({ColumnCompare(0, CompareOp::kGt, Value(int64_t{0})),
                           ColumnCompare(1, CompareOp::kContains,
                                         Value("uni"))});
  EXPECT_TRUE(both->Evaluate(MakeRow(1, "uni-passau")));
  EXPECT_FALSE(both->Evaluate(MakeRow(1, "tum")));
  EXPECT_FALSE(both->Evaluate(MakeRow(-1, "uni-passau")));
  // Empty conjunction is TRUE.
  EXPECT_TRUE(And({})->Evaluate(MakeRow(0, "")));
  EXPECT_EQ(And({})->ToString(), "TRUE");
}

TEST(PredicateTest, OrSemantics) {
  PredicatePtr either = Or({ColumnCompare(0, CompareOp::kLt, Value(int64_t{0})),
                            ColumnCompare(1, CompareOp::kEq, Value("x"))});
  EXPECT_TRUE(either->Evaluate(MakeRow(-1, "y")));
  EXPECT_TRUE(either->Evaluate(MakeRow(1, "x")));
  EXPECT_FALSE(either->Evaluate(MakeRow(1, "y")));
  // Empty disjunction is FALSE.
  EXPECT_FALSE(Or({})->Evaluate(MakeRow(0, "")));
  EXPECT_EQ(Or({})->ToString(), "FALSE");
}

TEST(PredicateTest, NotAndTrue) {
  PredicatePtr p = Not(ColumnCompare(0, CompareOp::kEq, Value(int64_t{1})));
  EXPECT_FALSE(p->Evaluate(MakeRow(1, "")));
  EXPECT_TRUE(p->Evaluate(MakeRow(2, "")));
  EXPECT_TRUE(True()->Evaluate(MakeRow(0, "")));
}

TEST(PredicateTest, NestedComposition) {
  // (a > 0 AND b contains 'uni') OR NOT (a = 7)
  PredicatePtr p = Or(
      {And({ColumnCompare(0, CompareOp::kGt, Value(int64_t{0})),
            ColumnCompare(1, CompareOp::kContains, Value("uni"))}),
       Not(ColumnCompare(0, CompareOp::kEq, Value(int64_t{7})))});
  EXPECT_TRUE(p->Evaluate(MakeRow(1, "tum")));    // NOT(1=7).
  EXPECT_TRUE(p->Evaluate(MakeRow(7, "uni")));    // First branch.
  EXPECT_FALSE(p->Evaluate(MakeRow(7, "tum")));   // Neither.
}

TEST(PredicateTest, ToStringIsReadable) {
  PredicatePtr p = And({ColumnCompare(0, CompareOp::kGe, Value(int64_t{5})),
                        Not(ColumnColumnCompare(0, CompareOp::kNe, 1))});
  std::string text = p->ToString();
  EXPECT_NE(text.find("AND"), std::string::npos);
  EXPECT_NE(text.find("NOT"), std::string::npos);
  EXPECT_NE(text.find("$0"), std::string::npos);
}

TEST(PredicateTest, NullRowsNeverMatchComparisons) {
  PredicatePtr p = ColumnCompare(0, CompareOp::kEq, Value(int64_t{1}));
  EXPECT_FALSE(p->Evaluate(Row{Value(), Value("x")}));
  PredicatePtr ne = ColumnCompare(0, CompareOp::kNe, Value(int64_t{1}));
  EXPECT_FALSE(ne->Evaluate(Row{Value(), Value("x")}));
}

}  // namespace
}  // namespace mdv::rdbms
