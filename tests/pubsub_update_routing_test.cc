// Publisher routing for update outcomes (§3.5): inserts for new matches,
// update broadcasts for changed resources, removals only for true
// candidates, each addressed to the right LMRs and subscriptions.

#include <gtest/gtest.h>

#include "pubsub/publisher.h"

namespace mdv::pubsub {
namespace {

class UpdateRoutingTest : public ::testing::Test {
 protected:
  UpdateRoutingTest() : schema_(rdf::MakeObjectGlobeSchema()) {
    rdf::Resource host("host", "CycleProvider");
    host.AddProperty("serverHost", rdf::PropertyValue::Literal("x"));
    resources_["d.rdf#host"] = host;
    rdf::Resource info("info", "ServerInformation");
    info.AddProperty("memory", rdf::PropertyValue::Literal("92"));
    resources_["d.rdf#info"] = info;

    publisher_ = std::make_unique<Publisher>(
        &schema_, &registry_, [this](const std::string& uri) {
          auto it = resources_.find(uri);
          return it == resources_.end() ? nullptr : &it->second;
        });
    sub_a_ = registry_.Add(/*lmr=*/1, "ruleA", "", /*end_rule=*/10, "T");
    sub_b_ = registry_.Add(/*lmr=*/2, "ruleB", "", /*end_rule=*/20, "T");
  }

  std::vector<Notification> Publish(const filter::UpdateOutcome& outcome) {
    Result<std::vector<Notification>> notes =
        publisher_->PublishUpdateOutcome(outcome);
    EXPECT_TRUE(notes.ok()) << notes.status();
    return notes.ok() ? *notes : std::vector<Notification>{};
  }

  static size_t CountKind(const std::vector<Notification>& notes,
                          NotificationKind kind) {
    size_t n = 0;
    for (const Notification& note : notes) {
      if (note.kind == kind) ++n;
    }
    return n;
  }

  rdf::RdfSchema schema_;
  SubscriptionRegistry registry_;
  std::map<std::string, rdf::Resource> resources_;
  std::unique_ptr<Publisher> publisher_;
  SubscriptionId sub_a_ = -1;
  SubscriptionId sub_b_ = -1;
};

TEST_F(UpdateRoutingTest, NewMatchBecomesInsertForOwningSubscription) {
  filter::UpdateOutcome outcome;
  outcome.new_matches.matches[10] = {"d.rdf#host"};
  std::vector<Notification> notes = Publish(outcome);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].kind, NotificationKind::kInsert);
  EXPECT_EQ(notes[0].lmr, 1);
  EXPECT_EQ(notes[0].subscription, sub_a_);
}

TEST_F(UpdateRoutingTest, UpdatedResourcesBroadcastToAllSubscribedLmrs) {
  filter::UpdateOutcome outcome;
  outcome.updated_uris = {"d.rdf#info"};
  std::vector<Notification> notes = Publish(outcome);
  // One kUpdate per LMR (1 and 2), no inserts/removals.
  EXPECT_EQ(CountKind(notes, NotificationKind::kUpdate), 2u);
  EXPECT_EQ(CountKind(notes, NotificationKind::kInsert), 0u);
  EXPECT_EQ(CountKind(notes, NotificationKind::kRemove), 0u);
  for (const Notification& note : notes) {
    EXPECT_EQ(note.subscription, -1);
    ASSERT_EQ(note.resources.size(), 1u);
    EXPECT_EQ(note.resources[0].uri_reference, "d.rdf#info");
  }
}

TEST_F(UpdateRoutingTest, TrueCandidateBecomesRemoval) {
  filter::UpdateOutcome outcome;
  outcome.candidates.matches[10] = {"d.rdf#host"};
  // No still_matching entry → true candidate.
  std::vector<Notification> notes = Publish(outcome);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].kind, NotificationKind::kRemove);
  EXPECT_EQ(notes[0].lmr, 1);
  EXPECT_EQ(notes[0].subscription, sub_a_);
  ASSERT_EQ(notes[0].resources.size(), 1u);
  EXPECT_EQ(notes[0].resources[0].uri_reference, "d.rdf#host");
}

TEST_F(UpdateRoutingTest, WrongCandidateIsNotRemoved) {
  filter::UpdateOutcome outcome;
  outcome.candidates.matches[10] = {"d.rdf#host"};
  outcome.still_matching.matches[10] = {"d.rdf#host"};
  std::vector<Notification> notes = Publish(outcome);
  EXPECT_EQ(CountKind(notes, NotificationKind::kRemove), 0u);
}

TEST_F(UpdateRoutingTest, MatchesOfNonEndRulesIgnored) {
  filter::UpdateOutcome outcome;
  outcome.new_matches.matches[999] = {"d.rdf#host"};   // Inner rule.
  outcome.candidates.matches[999] = {"d.rdf#info"};
  EXPECT_TRUE(Publish(outcome).empty());
}

TEST_F(UpdateRoutingTest, MixedOutcomeRoutesEverything) {
  filter::UpdateOutcome outcome;
  outcome.new_matches.matches[20] = {"d.rdf#host"};    // Insert for B.
  outcome.updated_uris = {"d.rdf#info"};               // Broadcast.
  outcome.candidates.matches[10] = {"d.rdf#host"};     // Removal for A.
  std::vector<Notification> notes = Publish(outcome);
  EXPECT_EQ(CountKind(notes, NotificationKind::kInsert), 1u);
  EXPECT_EQ(CountKind(notes, NotificationKind::kUpdate), 2u);
  EXPECT_EQ(CountKind(notes, NotificationKind::kRemove), 1u);
}

}  // namespace
}  // namespace mdv::pubsub
