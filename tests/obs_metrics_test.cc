// Tests of the metrics registry: bucket boundary ("le") semantics,
// percentile interpolation, handle stability across Reset, and the JSON
// and Prometheus serializations.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace mdv::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, MovesBothWays) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(HistogramTest, BucketBoundsAreInclusiveUpperBounds) {
  // Prometheus "le" semantics: a value equal to a bound lands in that
  // bound's bucket.
  Histogram h({10, 100, 1000});
  h.Record(10);    // bucket 0 (le=10).
  h.Record(11);    // bucket 1 (le=100).
  h.Record(100);   // bucket 1.
  h.Record(1000);  // bucket 2 (le=1000).
  h.Record(1001);  // overflow bucket.
  HistogramSnapshot snap = h.GetSnapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 1);
  EXPECT_EQ(snap.bucket_counts[1], 2);
  EXPECT_EQ(snap.bucket_counts[2], 1);
  EXPECT_EQ(snap.bucket_counts[3], 1);
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.sum, 10 + 11 + 100 + 1000 + 1001);
}

TEST(HistogramTest, UnsortedDuplicateBoundsAreNormalized) {
  Histogram h({100, 10, 100});
  EXPECT_EQ(h.bounds(), (std::vector<double>{10, 100}));
}

TEST(HistogramTest, EmptyBoundsFallBackToDefaultLatencyLadder) {
  Histogram h({});
  EXPECT_EQ(h.bounds(), DefaultLatencyBoundsUs());
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  // 100 values uniformly in the (0, 100] bucket: the snapshot only knows
  // the bucket, so percentiles interpolate linearly across [0, 100].
  Histogram h({100, 200});
  for (int i = 1; i <= 100; ++i) h.Record(i);
  HistogramSnapshot snap = h.GetSnapshot();
  EXPECT_NEAR(snap.Percentile(50), 50.0, 1.0);
  EXPECT_NEAR(snap.Percentile(95), 95.0, 1.0);
  EXPECT_NEAR(snap.Percentile(100), 100.0, 1e-9);
}

TEST(HistogramTest, PercentileSpansBuckets) {
  Histogram h({10, 100, 1000});
  for (int i = 0; i < 90; ++i) h.Record(5);     // le=10.
  for (int i = 0; i < 10; ++i) h.Record(500);   // le=1000.
  HistogramSnapshot snap = h.GetSnapshot();
  EXPECT_LE(snap.Percentile(50), 10.0);
  // p95 falls in the (100, 1000] bucket.
  double p95 = snap.Percentile(95);
  EXPECT_GT(p95, 100.0);
  EXPECT_LE(p95, 1000.0);
}

TEST(HistogramTest, OverflowValuesReportLargestFiniteBound) {
  Histogram h({10, 100});
  for (int i = 0; i < 10; ++i) h.Record(100000);
  EXPECT_DOUBLE_EQ(h.GetSnapshot().Percentile(99), 100.0);
}

TEST(HistogramTest, EmptyHistogramPercentileIsZero) {
  Histogram h({10});
  EXPECT_DOUBLE_EQ(h.GetSnapshot().Percentile(50), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x_total");
  Counter& b = registry.GetCounter("x_total");
  EXPECT_EQ(&a, &b);
  Histogram& ha = registry.GetHistogram("y_us", {10, 20});
  // Bounds of a later lookup are ignored; the existing instance wins.
  Histogram& hb = registry.GetHistogram("y_us", {1, 2, 3});
  EXPECT_EQ(&ha, &hb);
  EXPECT_EQ(ha.bounds(), (std::vector<double>{10, 20}));
}

TEST(MetricsRegistryTest, HandlesStayValidAcrossReset) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c_total");
  Histogram& h = registry.GetHistogram("h_us", {10});
  c.Add(5);
  h.Record(3);
  registry.Reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.GetSnapshot().count, 0);
  // The handles still work after Reset — values were zeroed in place.
  c.Increment();
  h.Record(7);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c_total"), 1);
  EXPECT_EQ(snap.histograms.at("h_us").count, 1);
}

TEST(MetricsRegistryTest, SnapshotJsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("runs_total").Add(3);
  registry.GetGauge("depth").Set(-2);
  registry.GetHistogram("lat_us", {10, 100}).Record(50);
  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"runs_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusTextHasCumulativeBuckets) {
  MetricsRegistry registry;
  registry.GetCounter("runs_total").Add(2);
  Histogram& h = registry.GetHistogram("lat_us", {10, 100});
  h.Record(5);
  h.Record(50);
  h.Record(5000);
  std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("runs_total 2"), std::string::npos);
  // Cumulative counts: le=10 → 1, le=100 → 2, le=+Inf → 3.
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 3"), std::string::npos);
}

TEST(HistogramTest, ExponentialBucketsSpanRangeInGrowthSteps) {
  std::vector<double> b = Histogram::ExponentialBuckets(1, 1e7, 2.0);
  ASSERT_GE(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  // Each bound is exactly growth× the previous, and the ladder covers
  // the upper edge (last bound >= upper).
  for (size_t i = 1; i < b.size(); ++i) EXPECT_DOUBLE_EQ(b[i], 2.0 * b[i - 1]);
  EXPECT_GE(b.back(), 1e7);
  EXPECT_LT(b[b.size() - 2], 1e7);
  // Degenerate parameters yield no bounds (callers fall back to the
  // default ladder).
  EXPECT_TRUE(Histogram::ExponentialBuckets(0, 100).empty());
  EXPECT_TRUE(Histogram::ExponentialBuckets(1, 100, 1.0).empty());
}

TEST(HistogramTest, DefaultLatencyLadderIsOneMicroToTenSeconds) {
  const std::vector<double>& bounds = DefaultLatencyBoundsUs();
  EXPECT_EQ(bounds, Histogram::ExponentialBuckets(1, 1e7, 2.0));
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);   // 1us.
  EXPECT_GE(bounds.back(), 1e7);           // >= 10s.
}

// ---- Strict Prometheus text-format checks ------------------------------

namespace prom {

/// Minimal strict parser for the Prometheus text exposition format:
/// every line must be a `# TYPE <name> <kind>` comment or a sample
/// `name{labels} value`. Returns false (with a diagnostic) on any
/// malformed line, bad metric-name character, or unescaped label value.
struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
};

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

bool ParseExposition(const std::string& text,
                     std::map<std::string, std::string>* types,
                     std::vector<Sample>* samples, std::string* error) {
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      *error = "missing trailing newline";
      return false;
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    auto fail = [&](const std::string& why) {
      *error = "line " + std::to_string(line_no) + ": " + why + ": " + line;
      return false;
    };
    if (line.rfind("# TYPE ", 0) == 0) {
      size_t sp = line.rfind(' ');
      std::string name = line.substr(7, sp - 7);
      std::string kind = line.substr(sp + 1);
      if (!ValidName(name)) return fail("bad metric name in TYPE");
      if (kind != "counter" && kind != "gauge" && kind != "histogram") {
        return fail("unknown metric kind");
      }
      (*types)[name] = kind;
      continue;
    }
    Sample sample;
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    sample.name = line.substr(0, i);
    if (!ValidName(sample.name)) return fail("bad metric name");
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        size_t eq = line.find('=', i);
        if (eq == std::string::npos || line[eq + 1] != '"') {
          return fail("malformed label");
        }
        std::string key = line.substr(i, eq - i);
        if (!ValidName(key)) return fail("bad label name");
        // Unescape the quoted value; reject raw quotes/newlines.
        std::string value;
        size_t j = eq + 2;
        for (; j < line.size() && line[j] != '"'; ++j) {
          if (line[j] == '\\') {
            if (j + 1 >= line.size()) return fail("dangling escape");
            const char e = line[++j];
            if (e == 'n') value += '\n';
            else if (e == '\\') value += '\\';
            else if (e == '"') value += '"';
            else return fail("unknown escape");
          } else {
            value += line[j];
          }
        }
        if (j >= line.size()) return fail("unterminated label value");
        sample.labels.emplace_back(key, value);
        i = j + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) return fail("unterminated label set");
      ++i;  // '}'.
    }
    if (i >= line.size() || line[i] != ' ') return fail("missing value");
    const std::string value_text = line.substr(i + 1);
    if (value_text == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else {
      size_t consumed = 0;
      sample.value = std::stod(value_text, &consumed);
      if (consumed != value_text.size()) return fail("trailing junk");
    }
    samples->push_back(sample);
  }
  return true;
}

}  // namespace prom

TEST(PrometheusExpositionTest, DottedNamesAndHistogramSeriesParseStrictly) {
  MetricsRegistry registry;
  registry.GetCounter("mdv.obs.trace.dropped_spans_total").Add(7);
  registry.GetGauge("mdv.net.unacked_depth").Set(-3);
  Histogram& h = registry.GetHistogram("mdv.slo.end_to_end_us", {10, 100});
  h.Record(5);
  h.Record(5000);

  std::map<std::string, std::string> types;
  std::vector<prom::Sample> samples;
  std::string error;
  ASSERT_TRUE(prom::ParseExposition(registry.Snapshot().ToPrometheusText(),
                                    &types, &samples, &error))
      << error;

  // Dots were sanitized to underscores, with a TYPE line per metric.
  EXPECT_EQ(types.at("mdv_obs_trace_dropped_spans_total"), "counter");
  EXPECT_EQ(types.at("mdv_net_unacked_depth"), "gauge");
  EXPECT_EQ(types.at("mdv_slo_end_to_end_us"), "histogram");

  auto find = [&](const std::string& name,
                  const std::string& le = "") -> const prom::Sample* {
    for (const prom::Sample& s : samples) {
      if (s.name != name) continue;
      if (le.empty() && s.labels.empty()) return &s;
      for (const auto& [k, v] : s.labels) {
        if (k == "le" && v == le) return &s;
      }
    }
    return nullptr;
  };
  ASSERT_NE(find("mdv_obs_trace_dropped_spans_total"), nullptr);
  EXPECT_EQ(find("mdv_obs_trace_dropped_spans_total")->value, 7);
  ASSERT_NE(find("mdv_net_unacked_depth"), nullptr);
  EXPECT_EQ(find("mdv_net_unacked_depth")->value, -3);
  // The full _bucket/_sum/_count family, with cumulative buckets.
  ASSERT_NE(find("mdv_slo_end_to_end_us_bucket", "10"), nullptr);
  EXPECT_EQ(find("mdv_slo_end_to_end_us_bucket", "10")->value, 1);
  ASSERT_NE(find("mdv_slo_end_to_end_us_bucket", "100"), nullptr);
  EXPECT_EQ(find("mdv_slo_end_to_end_us_bucket", "100")->value, 1);
  ASSERT_NE(find("mdv_slo_end_to_end_us_bucket", "+Inf"), nullptr);
  EXPECT_EQ(find("mdv_slo_end_to_end_us_bucket", "+Inf")->value, 2);
  ASSERT_NE(find("mdv_slo_end_to_end_us_sum"), nullptr);
  EXPECT_EQ(find("mdv_slo_end_to_end_us_sum")->value, 5005);
  ASSERT_NE(find("mdv_slo_end_to_end_us_count"), nullptr);
  EXPECT_EQ(find("mdv_slo_end_to_end_us_count")->value, 2);
}

TEST(PrometheusExpositionTest, HostileNamesAreSanitizedNotEmittedRaw) {
  MetricsRegistry registry;
  // Leading digit, dots, dashes, spaces, quotes — all must be coerced
  // into the legal name alphabet before exposition.
  registry.GetCounter("9lives.of-a \"metric\"_total").Add(1);
  std::map<std::string, std::string> types;
  std::vector<prom::Sample> samples;
  std::string error;
  ASSERT_TRUE(prom::ParseExposition(registry.Snapshot().ToPrometheusText(),
                                    &types, &samples, &error))
      << error;
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "_lives_of_a__metric__total");
  EXPECT_TRUE(prom::ValidName(samples[0].name));
}

TEST(PrometheusExpositionTest, WholeDefaultRegistryParses) {
  // After a test binary has exercised the whole pipeline the default
  // registry holds every mdv.* metric; all of it must survive the
  // strict parser (guards regressions in any newly added metric name).
  std::map<std::string, std::string> types;
  std::vector<prom::Sample> samples;
  std::string error;
  ASSERT_TRUE(prom::ParseExposition(
      DefaultMetrics().Snapshot().ToPrometheusText(), &types, &samples,
      &error))
      << error;
}

TEST(DefaultMetricsTest, IsAProcessWideSingleton) {
  Counter& a = DefaultMetrics().GetCounter("obs_test.singleton_total");
  Counter& b = DefaultMetrics().GetCounter("obs_test.singleton_total");
  EXPECT_EQ(&a, &b);
}

TEST(ScopedLatencyTest, RecordsOnDestruction) {
  Histogram h({1000000});
  { ScopedLatency timer(&h); }
  EXPECT_EQ(h.GetSnapshot().count, 1);
  { ScopedLatency disabled(nullptr); }  // Must not crash.
}

}  // namespace
}  // namespace mdv::obs
