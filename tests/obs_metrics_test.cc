// Tests of the metrics registry: bucket boundary ("le") semantics,
// percentile interpolation, handle stability across Reset, and the JSON
// and Prometheus serializations.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mdv::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, MovesBothWays) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(HistogramTest, BucketBoundsAreInclusiveUpperBounds) {
  // Prometheus "le" semantics: a value equal to a bound lands in that
  // bound's bucket.
  Histogram h({10, 100, 1000});
  h.Record(10);    // bucket 0 (le=10).
  h.Record(11);    // bucket 1 (le=100).
  h.Record(100);   // bucket 1.
  h.Record(1000);  // bucket 2 (le=1000).
  h.Record(1001);  // overflow bucket.
  HistogramSnapshot snap = h.GetSnapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 1);
  EXPECT_EQ(snap.bucket_counts[1], 2);
  EXPECT_EQ(snap.bucket_counts[2], 1);
  EXPECT_EQ(snap.bucket_counts[3], 1);
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.sum, 10 + 11 + 100 + 1000 + 1001);
}

TEST(HistogramTest, UnsortedDuplicateBoundsAreNormalized) {
  Histogram h({100, 10, 100});
  EXPECT_EQ(h.bounds(), (std::vector<double>{10, 100}));
}

TEST(HistogramTest, EmptyBoundsFallBackToDefaultLatencyLadder) {
  Histogram h({});
  EXPECT_EQ(h.bounds(), DefaultLatencyBoundsUs());
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  // 100 values uniformly in the (0, 100] bucket: the snapshot only knows
  // the bucket, so percentiles interpolate linearly across [0, 100].
  Histogram h({100, 200});
  for (int i = 1; i <= 100; ++i) h.Record(i);
  HistogramSnapshot snap = h.GetSnapshot();
  EXPECT_NEAR(snap.Percentile(50), 50.0, 1.0);
  EXPECT_NEAR(snap.Percentile(95), 95.0, 1.0);
  EXPECT_NEAR(snap.Percentile(100), 100.0, 1e-9);
}

TEST(HistogramTest, PercentileSpansBuckets) {
  Histogram h({10, 100, 1000});
  for (int i = 0; i < 90; ++i) h.Record(5);     // le=10.
  for (int i = 0; i < 10; ++i) h.Record(500);   // le=1000.
  HistogramSnapshot snap = h.GetSnapshot();
  EXPECT_LE(snap.Percentile(50), 10.0);
  // p95 falls in the (100, 1000] bucket.
  double p95 = snap.Percentile(95);
  EXPECT_GT(p95, 100.0);
  EXPECT_LE(p95, 1000.0);
}

TEST(HistogramTest, OverflowValuesReportLargestFiniteBound) {
  Histogram h({10, 100});
  for (int i = 0; i < 10; ++i) h.Record(100000);
  EXPECT_DOUBLE_EQ(h.GetSnapshot().Percentile(99), 100.0);
}

TEST(HistogramTest, EmptyHistogramPercentileIsZero) {
  Histogram h({10});
  EXPECT_DOUBLE_EQ(h.GetSnapshot().Percentile(50), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x_total");
  Counter& b = registry.GetCounter("x_total");
  EXPECT_EQ(&a, &b);
  Histogram& ha = registry.GetHistogram("y_us", {10, 20});
  // Bounds of a later lookup are ignored; the existing instance wins.
  Histogram& hb = registry.GetHistogram("y_us", {1, 2, 3});
  EXPECT_EQ(&ha, &hb);
  EXPECT_EQ(ha.bounds(), (std::vector<double>{10, 20}));
}

TEST(MetricsRegistryTest, HandlesStayValidAcrossReset) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c_total");
  Histogram& h = registry.GetHistogram("h_us", {10});
  c.Add(5);
  h.Record(3);
  registry.Reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.GetSnapshot().count, 0);
  // The handles still work after Reset — values were zeroed in place.
  c.Increment();
  h.Record(7);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c_total"), 1);
  EXPECT_EQ(snap.histograms.at("h_us").count, 1);
}

TEST(MetricsRegistryTest, SnapshotJsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("runs_total").Add(3);
  registry.GetGauge("depth").Set(-2);
  registry.GetHistogram("lat_us", {10, 100}).Record(50);
  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"runs_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusTextHasCumulativeBuckets) {
  MetricsRegistry registry;
  registry.GetCounter("runs_total").Add(2);
  Histogram& h = registry.GetHistogram("lat_us", {10, 100});
  h.Record(5);
  h.Record(50);
  h.Record(5000);
  std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("runs_total 2"), std::string::npos);
  // Cumulative counts: le=10 → 1, le=100 → 2, le=+Inf → 3.
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 3"), std::string::npos);
}

TEST(DefaultMetricsTest, IsAProcessWideSingleton) {
  Counter& a = DefaultMetrics().GetCounter("obs_test.singleton_total");
  Counter& b = DefaultMetrics().GetCounter("obs_test.singleton_total");
  EXPECT_EQ(&a, &b);
}

TEST(ScopedLatencyTest, RecordsOnDestruction) {
  Histogram h({1000000});
  { ScopedLatency timer(&h); }
  EXPECT_EQ(h.GetSnapshot().count, 1);
  { ScopedLatency disabled(nullptr); }  // Must not crash.
}

}  // namespace
}  // namespace mdv::obs
