// Sharing across subscriptions and LMRs: thanks to dependency-graph
// merging (§3.3.2), identical rules registered by different LMRs map to
// the same end rule; the publisher must still route matches, updates and
// removals per subscription, and unregistration must not disturb the
// other subscribers.

#include <gtest/gtest.h>

#include "mdv/system.h"

namespace mdv {
namespace {

rdf::RdfDocument MakeDoc(const std::string& uri, int memory) {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(memory)));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", rdf::PropertyValue::Literal("x.example"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

constexpr char kRule[] =
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64";

class SharingTest : public ::testing::Test {
 protected:
  SharingTest() : system_(rdf::MakeObjectGlobeSchema()) {
    provider_ = system_.AddProvider();
    lmr_a_ = system_.AddRepository(provider_);
    lmr_b_ = system_.AddRepository(provider_);
  }

  MdvSystem system_;
  MetadataProvider* provider_;
  LocalMetadataRepository* lmr_a_;
  LocalMetadataRepository* lmr_b_;
};

TEST_F(SharingTest, IdenticalRulesShareOneEndRule) {
  Result<pubsub::SubscriptionId> sub_a = lmr_a_->Subscribe(kRule);
  Result<pubsub::SubscriptionId> sub_b = lmr_b_->Subscribe(kRule);
  ASSERT_TRUE(sub_a.ok());
  ASSERT_TRUE(sub_b.ok());
  // One shared decomposition: class rule + memory trigger + join.
  EXPECT_EQ(provider_->rule_store().NumAtomicRules(), 3u);
  EXPECT_EQ(provider_->subscriptions().Find(*sub_a)->end_rule_id,
            provider_->subscriptions().Find(*sub_b)->end_rule_id);
}

TEST_F(SharingTest, MatchRoutedToEverySubscriber) {
  ASSERT_TRUE(lmr_a_->Subscribe(kRule).ok());
  ASSERT_TRUE(lmr_b_->Subscribe(kRule).ok());
  ASSERT_TRUE(provider_->RegisterDocument(MakeDoc("d.rdf", 92)).ok());
  EXPECT_EQ(lmr_a_->CacheSize(), 2u);
  EXPECT_EQ(lmr_b_->CacheSize(), 2u);
}

TEST_F(SharingTest, UnsubscribingOneKeepsTheOtherAlive) {
  Result<pubsub::SubscriptionId> sub_a = lmr_a_->Subscribe(kRule);
  ASSERT_TRUE(sub_a.ok());
  ASSERT_TRUE(lmr_b_->Subscribe(kRule).ok());
  ASSERT_TRUE(provider_->RegisterDocument(MakeDoc("d.rdf", 92)).ok());

  ASSERT_TRUE(lmr_a_->Unsubscribe(*sub_a).ok());
  // A's cache is collected; B keeps its copy and the rules survive.
  EXPECT_EQ(lmr_a_->CacheSize(), 0u);
  EXPECT_EQ(lmr_b_->CacheSize(), 2u);
  EXPECT_EQ(provider_->rule_store().NumAtomicRules(), 3u);

  // New registrations still reach B.
  ASSERT_TRUE(provider_->RegisterDocument(MakeDoc("e.rdf", 128)).ok());
  EXPECT_EQ(lmr_a_->CacheSize(), 0u);
  EXPECT_EQ(lmr_b_->CacheSize(), 4u);
}

TEST_F(SharingTest, RemovalRoutedPerSubscription) {
  ASSERT_TRUE(lmr_a_->Subscribe(kRule).ok());
  // B has an additional rule the resource keeps matching.
  ASSERT_TRUE(lmr_b_->Subscribe(kRule).ok());
  ASSERT_TRUE(lmr_b_->Subscribe("search CycleProvider c register c "
                                "where c.serverHost contains 'example'")
                  .ok());
  ASSERT_TRUE(provider_->RegisterDocument(MakeDoc("d.rdf", 92)).ok());
  ASSERT_EQ(lmr_a_->CacheSize(), 2u);
  ASSERT_EQ(lmr_b_->CacheSize(), 2u);

  // Memory drops: both lose the shared rule, but B's host rule still
  // matches — only A's cache empties.
  ASSERT_TRUE(provider_->UpdateDocument(MakeDoc("d.rdf", 16)).ok());
  EXPECT_EQ(lmr_a_->CacheSize(), 0u);
  EXPECT_EQ(lmr_b_->CacheSize(), 2u);
  const CacheEntry* host = lmr_b_->Find("d.rdf#host");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->matched_subscriptions.size(), 1u);
}

TEST_F(SharingTest, OverlappingButDifferentRulesShareTriggeringLayer) {
  ASSERT_TRUE(lmr_a_->Subscribe(kRule).ok());
  size_t after_first = provider_->rule_store().NumAtomicRules();
  ASSERT_TRUE(lmr_b_->Subscribe("search CycleProvider c register c "
                                "where c.serverInformation.memory > 64 "
                                "and c.serverHost contains 'example'")
                  .ok());
  // The second rule reuses the shared memory trigger; it adds its own
  // host trigger (which replaces the predicate-less class rule as the
  // CycleProvider input) and one join rule.
  EXPECT_EQ(provider_->rule_store().NumAtomicRules(), after_first + 2);
}

}  // namespace
}  // namespace mdv
