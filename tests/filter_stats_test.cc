// Tests of the filter run statistics (FilterRunStats): they document the
// algorithm's behaviour — how many triggering matches the initial
// iteration found, how many rule groups and members the join phase
// evaluated — and anchor the complexity claims of the ablation benches.

#include <gtest/gtest.h>

#include <string>

#include "bench_support/workload.h"
#include "filter/engine.h"
#include "obs/metrics.h"
#include "rdf/parser.h"

namespace mdv::filter {
namespace {

using bench_support::BenchRuleType;
using bench_support::FilterFixture;
using bench_support::WorkloadGenerator;

TEST(FilterStatsTest, TriggeringOnlyRunHasNoJoinWork) {
  WorkloadGenerator generator({BenchRuleType::kOid, 100, 0.1});
  FilterFixture fixture;
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(fixture.RegisterRule(generator.RuleText(i)).ok());
  }
  Result<FilterRunResult> result =
      fixture.RegisterDocumentBatch(generator.MakeDocumentBatch(0, 10));
  ASSERT_TRUE(result.ok());
  // 10 docs × (2 subject atoms + 4 CycleProvider + 2 ServerInformation
  // property atoms) = 80 atoms.
  EXPECT_EQ(result->stats.delta_atoms, 80);
  EXPECT_EQ(result->stats.triggering_matches, 10);  // One OID rule per doc.
  EXPECT_EQ(result->stats.groups_evaluated, 0);
  EXPECT_EQ(result->stats.members_evaluated, 0);
  EXPECT_EQ(result->stats.join_matches, 0);
  EXPECT_EQ(result->iterations, 0);
}

TEST(FilterStatsTest, PathRulesShareOneGroupEvaluation) {
  const size_t kRules = 50;
  WorkloadGenerator generator({BenchRuleType::kPath, kRules, 0.1});
  FilterFixture fixture;
  for (size_t i = 0; i < kRules; ++i) {
    ASSERT_TRUE(fixture.RegisterRule(generator.RuleText(i)).ok());
  }
  Result<FilterRunResult> result =
      fixture.RegisterDocumentBatch(generator.MakeDocumentBatch(0, 5));
  ASSERT_TRUE(result.ok());
  // Initial iteration: per doc, the shared class rule plus the one
  // memory rule match → 2 × 5 pairs.
  EXPECT_EQ(result->stats.triggering_matches, 10);
  // One iteration evaluates the single shared group; every member join
  // rule is on the agenda (the shared class rule feeds all of them), but
  // only 5 produce matches.
  EXPECT_EQ(result->iterations, 1);
  EXPECT_EQ(result->stats.groups_evaluated, 1);
  EXPECT_EQ(result->stats.members_evaluated,
            static_cast<int64_t>(kRules));
  EXPECT_EQ(result->stats.join_matches, 5);
}

TEST(FilterStatsTest, GroupsOffMultipliesGroupEvaluations) {
  const size_t kRules = 50;
  WorkloadGenerator generator({BenchRuleType::kPath, kRules, 0.1});
  RuleStoreOptions options;
  options.use_rule_groups = false;
  FilterFixture fixture(options);
  for (size_t i = 0; i < kRules; ++i) {
    ASSERT_TRUE(fixture.RegisterRule(generator.RuleText(i)).ok());
  }
  Result<FilterRunResult> result =
      fixture.RegisterDocumentBatch(generator.MakeDocumentBatch(0, 5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.groups_evaluated, static_cast<int64_t>(kRules));
  EXPECT_EQ(result->stats.join_matches, 5);  // Same semantics.
}

TEST(FilterStatsTest, Figure9RunCounters) {
  FilterFixture fixture;
  ASSERT_TRUE(fixture
                  .RegisterRule(
                      "search CycleProvider c, ServerInformation s "
                      "register c "
                      "where c.serverHost contains 'uni-passau.de' "
                      "and c.serverInformation = s "
                      "and s.memory > 64 and s.cpu > 500")
                  .ok());
  Result<rdf::RdfDocument> doc = rdf::ParseRdfXml(
      R"(<rdf:RDF>
        <og:CycleProvider rdf:ID="host">
          <og:serverHost>pirates.uni-passau.de</og:serverHost>
          <og:serverPort>5874</og:serverPort>
          <og:serverInformation>
            <og:ServerInformation rdf:ID="info">
              <og:memory>92</og:memory>
              <og:cpu>600</og:cpu>
            </og:ServerInformation>
          </og:serverInformation>
        </og:CycleProvider>
      </rdf:RDF>)",
      "doc.rdf");
  ASSERT_TRUE(doc.ok());
  Result<FilterRunResult> result = fixture.RegisterDocumentBatch({*doc});
  ASSERT_TRUE(result.ok());
  // Figure 9: initial iteration matches rules 1, 2 (info) and 3 (host);
  // iteration 1 derives info via the bare-equality group (RuleE);
  // iteration 2 derives host via the serverInformation group (RuleF).
  EXPECT_EQ(result->stats.triggering_matches, 3);
  EXPECT_EQ(result->iterations, 2);
  EXPECT_EQ(result->stats.groups_evaluated, 3);  // RuleE's, then RuleF's
                                                 // (agenda holds RuleF's
                                                 // group twice: once per
                                                 // input side iteration).
  EXPECT_EQ(result->stats.join_matches, 2);  // info (RuleE), host (RuleF).
}

// FilterRunStats documents itself as mirrored 1:1 into the
// `mdv.filter.*_total` registry counters at the end of every run; this
// asserts the struct and the snapshot cannot drift apart.
TEST(FilterStatsTest, RegistryCountersMirrorTheRunStats) {
  WorkloadGenerator generator({BenchRuleType::kPath, 30, 0.1});
  FilterFixture fixture;
  for (size_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(fixture.RegisterRule(generator.RuleText(i)).ok());
  }
  obs::MetricsSnapshot before = obs::DefaultMetrics().Snapshot();
  Result<FilterRunResult> result =
      fixture.RegisterDocumentBatch(generator.MakeDocumentBatch(0, 5));
  ASSERT_TRUE(result.ok());

  obs::MetricsSnapshot after = obs::DefaultMetrics().Snapshot();
  auto delta = [&](const std::string& name) {
    auto it = before.counters.find(name);
    int64_t prev = it == before.counters.end() ? 0 : it->second;
    return after.counters.at(name) - prev;
  };
  const FilterRunStats& stats = result->stats;
  EXPECT_EQ(delta("mdv.filter.runs_total"), 1);
  EXPECT_EQ(delta("mdv.filter.delta_atoms_total"), stats.delta_atoms);
  EXPECT_EQ(delta("mdv.filter.triggering_matches_total"),
            stats.triggering_matches);
  EXPECT_EQ(delta("mdv.filter.groups_evaluated_total"),
            stats.groups_evaluated);
  EXPECT_EQ(delta("mdv.filter.members_evaluated_total"),
            stats.members_evaluated);
  EXPECT_EQ(delta("mdv.filter.join_matches_total"), stats.join_matches);
  EXPECT_EQ(delta("mdv.filter.index_probes_total"), stats.index_probes);
  EXPECT_EQ(delta("mdv.filter.index_hits_total"), stats.index_hits);
  EXPECT_EQ(delta("mdv.filter.scan_fallbacks_total"), stats.scan_fallbacks);
  // Sanity: the run did real work, so the mirror is not vacuous.
  EXPECT_GT(stats.delta_atoms, 0);
  EXPECT_GT(stats.triggering_matches, 0);
  // The run's latency histogram observed this run.
  auto hist_before = before.histograms.find("mdv.filter.run_us");
  int64_t prev_count =
      hist_before == before.histograms.end() ? 0 : hist_before->second.count;
  EXPECT_GE(after.histograms.at("mdv.filter.run_us").count - prev_count, 1);
}

}  // namespace
}  // namespace mdv::filter
