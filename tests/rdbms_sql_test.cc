#include "rdbms/sql.h"

#include <gtest/gtest.h>

namespace mdv::rdbms {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  SqlResult Exec(const std::string& sql) {
    Result<SqlResult> result = ExecuteSql(&db_, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? *result : SqlResult{};
  }

  Status ExecStatus(const std::string& sql) {
    return ExecuteSql(&db_, sql).ok()
               ? Status::OK()
               : ExecuteSql(&db_, sql).status();
  }

  void SeedProviders() {
    Exec("CREATE TABLE providers (host STRING, port INT, memory INT)");
    Exec("INSERT INTO providers VALUES ('pirates.uni-passau.de', 5874, 92)");
    Exec("INSERT INTO providers VALUES ('tum.de', 80, 32), "
         "('big.example', 9999, 512)");
  }

  Database db_;
};

TEST_F(SqlTest, CreateInsertSelect) {
  SeedProviders();
  SqlResult all = Exec("SELECT * FROM providers");
  EXPECT_TRUE(all.is_query);
  EXPECT_EQ(all.rows.NumRows(), 3u);
  EXPECT_EQ(all.rows.columns.size(), 3u);
}

TEST_F(SqlTest, WhereWithComparisons) {
  SeedProviders();
  EXPECT_EQ(Exec("SELECT host FROM providers WHERE memory > 64").rows
                .NumRows(),
            2u);
  EXPECT_EQ(Exec("SELECT host FROM providers WHERE memory > 64 "
                 "AND port < 6000")
                .rows.NumRows(),
            1u);
  EXPECT_EQ(Exec("SELECT host FROM providers WHERE memory <> 92").rows
                .NumRows(),
            2u);
  EXPECT_EQ(
      Exec("SELECT host FROM providers WHERE host CONTAINS 'uni-passau'")
          .rows.NumRows(),
      1u);
  // Constant on the left flips the operator.
  EXPECT_EQ(Exec("SELECT host FROM providers WHERE 64 < memory").rows
                .NumRows(),
            2u);
}

TEST_F(SqlTest, ProjectionPicksColumns) {
  SeedProviders();
  SqlResult result = Exec("SELECT port, host FROM providers WHERE memory = 92");
  ASSERT_EQ(result.rows.NumRows(), 1u);
  ASSERT_EQ(result.rows.columns.size(), 2u);
  EXPECT_EQ(result.rows.rows[0][0].as_int(), 5874);
  EXPECT_EQ(result.rows.rows[0][1].as_string(), "pirates.uni-passau.de");
}

TEST_F(SqlTest, JoinTwoTables) {
  SeedProviders();
  Exec("CREATE TABLE locations (host STRING, country STRING)");
  Exec("INSERT INTO locations VALUES ('pirates.uni-passau.de', 'DE'), "
       "('big.example', 'US')");
  SqlResult joined = Exec(
      "SELECT p.host, l.country FROM providers p, locations l "
      "WHERE p.host = l.host AND p.memory > 64");
  ASSERT_EQ(joined.rows.NumRows(), 2u);
}

TEST_F(SqlTest, ThreeWayJoinWithResidual) {
  Exec("CREATE TABLE a (k INT, v STRING)");
  Exec("CREATE TABLE b (k INT, w INT)");
  Exec("CREATE TABLE c (w INT, name STRING)");
  Exec("INSERT INTO a VALUES (1, 'x'), (2, 'y')");
  Exec("INSERT INTO b VALUES (1, 10), (2, 20)");
  Exec("INSERT INTO c VALUES (10, 'ten'), (20, 'twenty')");
  SqlResult joined = Exec(
      "SELECT a.v, c.name FROM a, b, c "
      "WHERE a.k = b.k AND b.w = c.w AND a.v != 'y'");
  ASSERT_EQ(joined.rows.NumRows(), 1u);
  EXPECT_EQ(joined.rows.rows[0][1].as_string(), "ten");
}

TEST_F(SqlTest, CartesianProductWithoutJoinCondition) {
  Exec("CREATE TABLE a (x INT)");
  Exec("CREATE TABLE b (y INT)");
  Exec("INSERT INTO a VALUES (1), (2)");
  Exec("INSERT INTO b VALUES (3), (4), (5)");
  EXPECT_EQ(Exec("SELECT * FROM a, b").rows.NumRows(), 6u);
}

TEST_F(SqlTest, IndexCreationAndUse) {
  SeedProviders();
  Exec("CREATE HASH INDEX ON providers (host)");
  Table* table = db_.GetTable("providers");
  table->ResetStats();
  EXPECT_EQ(Exec("SELECT * FROM providers WHERE host = 'tum.de'").rows
                .NumRows(),
            1u);
  EXPECT_EQ(table->stats().index_lookups, 1);
  EXPECT_EQ(table->stats().full_scans, 0);
  Exec("CREATE BTREE INDEX ON providers (memory)");
  EXPECT_EQ(Exec("SELECT * FROM providers WHERE memory >= 92").rows
                .NumRows(),
            2u);
}

TEST_F(SqlTest, DeleteAndUpdate) {
  SeedProviders();
  EXPECT_EQ(Exec("DELETE FROM providers WHERE memory < 64").affected_rows,
            1u);
  EXPECT_EQ(Exec("SELECT * FROM providers").rows.NumRows(), 2u);
  EXPECT_EQ(
      Exec("UPDATE providers SET memory = 1024 WHERE port = 9999")
          .affected_rows,
      1u);
  EXPECT_EQ(Exec("SELECT host FROM providers WHERE memory = 1024").rows
                .NumRows(),
            1u);
  EXPECT_EQ(Exec("DELETE FROM providers").affected_rows, 2u);
}

TEST_F(SqlTest, UpdateSetsNull) {
  SeedProviders();
  Exec("UPDATE providers SET memory = NULL WHERE port = 80");
  EXPECT_EQ(Exec("SELECT host FROM providers WHERE memory > 0").rows
                .NumRows(),
            2u);  // NULL never matches.
}

TEST_F(SqlTest, InsertNullAndStringsWithEscapes) {
  Exec("CREATE TABLE t (a STRING, b INT)");
  Exec("INSERT INTO t VALUES ('it''s', NULL)");
  SqlResult result = Exec("SELECT * FROM t");
  ASSERT_EQ(result.rows.NumRows(), 1u);
  EXPECT_EQ(result.rows.rows[0][0].as_string(), "it's");
  EXPECT_TRUE(result.rows.rows[0][1].is_null());
}

TEST_F(SqlTest, DropTable) {
  SeedProviders();
  Exec("DROP TABLE providers");
  EXPECT_FALSE(db_.HasTable("providers"));
  EXPECT_EQ(ExecuteSql(&db_, "SELECT * FROM providers").status().code(),
            StatusCode::kNotFound);
}

TEST_F(SqlTest, ErrorsAreDiagnosed) {
  SeedProviders();
  EXPECT_EQ(ExecuteSql(&db_, "SELEKT * FROM providers").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ExecuteSql(&db_, "SELECT nope FROM providers").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ExecuteSql(&db_, "SELECT * FROM providers WHERE").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      ExecuteSql(&db_, "CREATE TABLE t (x BOGUS)").status().code(),
      StatusCode::kParseError);
  EXPECT_EQ(ExecuteSql(&db_, "INSERT INTO nope VALUES (1)").status().code(),
            StatusCode::kNotFound);
  // Ambiguous column across two tables.
  Result<SqlResult> created =
      ExecuteSql(&db_, "CREATE TABLE locations (host STRING)");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(ExecuteSql(&db_,
                       "SELECT host FROM providers, locations "
                       "WHERE port = 80")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlTest, AliasesWithAsKeyword) {
  SeedProviders();
  SqlResult result = Exec(
      "SELECT p.host FROM providers AS p WHERE p.memory > 64");
  EXPECT_EQ(result.rows.NumRows(), 2u);
}

TEST_F(SqlTest, FormatRowSetRendersTable) {
  SeedProviders();
  std::string text =
      FormatRowSet(Exec("SELECT host, port FROM providers "
                        "WHERE memory = 92")
                       .rows);
  EXPECT_NE(text.find("host"), std::string::npos);
  EXPECT_NE(text.find("pirates.uni-passau.de"), std::string::npos);
  EXPECT_NE(text.find("5874"), std::string::npos);
}

// The paper translates rule-language search requests into SQL join
// queries (§2.2); this mirrors the FilterData/FilterRules join of the
// initial filter iteration as plain SQL.
TEST_F(SqlTest, FilterStyleJoinOverAtomTables) {
  Exec("CREATE TABLE FilterDataDemo (uri STRING, property STRING, "
       "value STRING)");
  Exec("CREATE TABLE FilterRulesDemo (rule_id INT, property STRING, "
       "value STRING)");
  Exec("INSERT INTO FilterDataDemo VALUES "
       "('doc.rdf#host', 'serverHost', 'pirates.uni-passau.de'), "
       "('doc.rdf#info', 'memory', '92')");
  Exec("INSERT INTO FilterRulesDemo VALUES (1, 'memory', '92')");
  SqlResult result = Exec(
      "SELECT d.uri, r.rule_id FROM FilterDataDemo d, FilterRulesDemo r "
      "WHERE d.property = r.property AND d.value = r.value");
  ASSERT_EQ(result.rows.NumRows(), 1u);
  EXPECT_EQ(result.rows.rows[0][0].as_string(), "doc.rdf#info");
}


TEST_F(SqlTest, OrderByAndLimit) {
  SeedProviders();
  SqlResult asc = Exec("SELECT host FROM providers ORDER BY memory");
  ASSERT_EQ(asc.rows.NumRows(), 3u);
  EXPECT_EQ(asc.rows.rows[0][0].as_string(), "tum.de");
  EXPECT_EQ(asc.rows.rows[2][0].as_string(), "big.example");

  SqlResult desc =
      Exec("SELECT host FROM providers ORDER BY memory DESC LIMIT 2");
  ASSERT_EQ(desc.rows.NumRows(), 2u);
  EXPECT_EQ(desc.rows.rows[0][0].as_string(), "big.example");
  EXPECT_EQ(desc.rows.rows[1][0].as_string(),
            "pirates.uni-passau.de");

  EXPECT_EQ(Exec("SELECT * FROM providers LIMIT 0").rows.NumRows(), 0u);
  EXPECT_EQ(Exec("SELECT * FROM providers LIMIT 99").rows.NumRows(), 3u);
}

TEST_F(SqlTest, OrderByMultipleKeys) {
  Exec("CREATE TABLE t (a INT, b INT)");
  Exec("INSERT INTO t VALUES (1, 2), (1, 1), (0, 9)");
  SqlResult result = Exec("SELECT a, b FROM t ORDER BY a, b DESC");
  ASSERT_EQ(result.rows.NumRows(), 3u);
  EXPECT_EQ(result.rows.rows[0][0].as_int(), 0);
  EXPECT_EQ(result.rows.rows[1][1].as_int(), 2);
  EXPECT_EQ(result.rows.rows[2][1].as_int(), 1);
}

TEST_F(SqlTest, CountStar) {
  SeedProviders();
  SqlResult count = Exec("SELECT COUNT(*) FROM providers WHERE memory > 64");
  ASSERT_TRUE(count.is_query);
  ASSERT_EQ(count.rows.NumRows(), 1u);
  EXPECT_EQ(count.rows.rows[0][0].as_int(), 2);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM providers").rows.rows[0][0].as_int(),
            3);
}

TEST_F(SqlTest, OrderBySyntaxErrors) {
  SeedProviders();
  EXPECT_FALSE(ExecuteSql(&db_, "SELECT * FROM providers ORDER memory").ok());
  EXPECT_FALSE(
      ExecuteSql(&db_, "SELECT * FROM providers ORDER BY 'x'").ok());
  EXPECT_FALSE(ExecuteSql(&db_, "SELECT * FROM providers LIMIT x").ok());
}

}  // namespace
}  // namespace mdv::rdbms
