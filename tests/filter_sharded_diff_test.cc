// Differential property tests of the sharded filter engine: for any
// shard count N and worker count W, a publish (and a late subscription
// seeded through EvaluateNewRules) must produce exactly the matches of
// the unsharded engine. Rule ids are NOT comparable across shard
// configurations (sharding duplicates atoms that the monolithic store
// deduplicates), so runs are compared through the registered rule texts:
// every text maps to its end rule in each configuration, and the uri
// sets accumulated per text must be byte-identical.
//
// Run statistics are deliberately not compared — the per-shard atom
// duplication legitimately changes triggering_matches across configs;
// only the match/notification sets are invariant.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_support/workload.h"
#include "filter/engine.h"
#include "filter/tables.h"
#include "rdbms/table.h"
#include "rules/compiler.h"

namespace mdv::filter {
namespace {

using bench_support::BenchRuleType;
using bench_support::FilterFixture;
using bench_support::WorkloadGenerator;

constexpr size_t kDocs = 48;
constexpr size_t kRules = 40;

/// Pseudo-random rule base mixing the four §4 families over a small
/// parameter range, so trees overlap: JOIN and PATH rules with the same
/// index share their memory atom, COMP rules share the class atom —
/// exactly the sharing the monolithic store deduplicates and the
/// sharded store duplicates per shard.
std::vector<std::string> MakeRuleTexts(uint32_t seed) {
  std::vector<WorkloadGenerator> gens;
  for (BenchRuleType type : {BenchRuleType::kOid, BenchRuleType::kComp,
                             BenchRuleType::kPath, BenchRuleType::kJoin}) {
    WorkloadGenerator::Options options;
    options.rule_type = type;
    options.rule_base_size = kDocs;
    gens.emplace_back(options);
  }
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> type_dist(0, gens.size() - 1);
  std::uniform_int_distribution<size_t> index_dist(0, kDocs - 1);
  std::vector<std::string> texts;
  texts.reserve(kRules);
  for (size_t i = 0; i < kRules; ++i) {
    texts.push_back(gens[type_dist(rng)].RuleText(index_dist(rng)));
  }
  return texts;
}

/// Everything one configuration produced: per rule text, the union of
/// uris it matched across seeding and publishing.
using TextMatches = std::map<std::string, std::set<std::string>>;

class Harness {
 public:
  Harness(int num_shards, int num_workers) {
    RuleStoreOptions rule_options;
    rule_options.num_shards = num_shards;
    EngineOptions engine_options;
    engine_options.num_workers = num_workers;
    fixture_ = std::make_unique<FilterFixture>(
        rule_options, TableOptions{}, engine_options);
  }

  /// Registers `text` the way MetadataProvider::Subscribe does: merge
  /// the tree, then evaluate the created rules (plus the end rule)
  /// against the existing data. Seeded matches count toward the text.
  void Register(const std::string& text) {
    auto compiled = rules::CompileRule(text, fixture_->schema());
    ASSERT_TRUE(compiled.ok()) << compiled.status().message();
    std::vector<int64_t> created;
    auto end = fixture_->store().RegisterTree(compiled->decomposed, &created);
    ASSERT_TRUE(end.ok()) << end.status().message();
    end_of_[*end].insert(text);
    std::vector<int64_t> to_evaluate = created;
    if (std::find(to_evaluate.begin(), to_evaluate.end(), *end) ==
        to_evaluate.end()) {
      to_evaluate.push_back(*end);
    }
    auto seeded = fixture_->engine().EvaluateNewRules(to_evaluate);
    ASSERT_TRUE(seeded.ok()) << seeded.status().message();
    Accumulate(*seeded);
  }

  void Publish(size_t first, size_t count) {
    WorkloadGenerator::Options options;
    options.rule_base_size = kDocs;
    WorkloadGenerator gen(options);
    auto result =
        fixture_->RegisterDocumentBatch(gen.MakeDocumentBatch(first, count));
    ASSERT_TRUE(result.ok()) << result.status().message();
    Accumulate(*result);
    last_run_ = std::move(*result);
  }

  const TextMatches& matches() const { return matches_; }

  /// Multi-shard runs rewrite the legacy ResultObjects table with the
  /// merged match set in (rule_id, uri) order — the deterministic
  /// physical artifact downstream consumers read.
  void VerifyMergedResultObjects() const {
    std::vector<std::pair<int64_t, std::string>> rows;
    fixture_->db().GetTable(kResultObjects)->Scan(
        [&rows](rdbms::RowId, const rdbms::Row& row) {
          rows.emplace_back(row[ResultCols::kRuleId].as_int(),
                            row[ResultCols::kUri].as_string());
        });
    std::vector<std::pair<int64_t, std::string>> expected;
    for (const auto& [rule_id, uris] : last_run_.matches) {
      for (const std::string& uri : uris) expected.emplace_back(rule_id, uri);
    }
    EXPECT_EQ(rows, expected);
  }

  void VerifyInvariants() const {
    Status db_ok = fixture_->db().CheckInvariants();
    EXPECT_TRUE(db_ok.ok()) << db_ok.message();
    Status store_ok = fixture_->store().CheckConsistency();
    EXPECT_TRUE(store_ok.ok()) << store_ok.message();
  }

 private:
  void Accumulate(const FilterRunResult& result) {
    for (const auto& [rule_id, uris] : result.matches) {
      auto it = end_of_.find(rule_id);
      if (it == end_of_.end()) continue;  // Internal atomic rule.
      for (const std::string& text : it->second) {
        matches_[text].insert(uris.begin(), uris.end());
      }
    }
  }

  std::unique_ptr<FilterFixture> fixture_;
  /// end rule id → texts registered to it (duplicate texts and texts
  /// whose end rule is shared via dedup collapse onto one id).
  std::map<int64_t, std::set<std::string>> end_of_;
  TextMatches matches_;
  FilterRunResult last_run_;
};

/// Drives one configuration through the scenario: half the rule base,
/// one publish, the remaining rules (seeded against live data — the
/// sharded EvaluateNewRules path), a second publish.
TextMatches RunScenario(int num_shards, int num_workers, uint32_t seed,
                        bool verify_merged) {
  Harness harness(num_shards, num_workers);
  std::vector<std::string> texts = MakeRuleTexts(seed);
  for (size_t i = 0; i < texts.size() / 2; ++i) harness.Register(texts[i]);
  harness.Publish(0, kDocs / 2);
  for (size_t i = texts.size() / 2; i < texts.size(); ++i) {
    harness.Register(texts[i]);
  }
  harness.Publish(kDocs / 2, kDocs - kDocs / 2);
  harness.VerifyInvariants();
  if (verify_merged) harness.VerifyMergedResultObjects();
  return harness.matches();
}

class ShardedDiffTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShardedDiffTest, ShardConfigurationsMatchUnshardedEngine) {
  const uint32_t seed = GetParam();
  TextMatches baseline = RunScenario(1, 1, seed, /*verify_merged=*/false);
  ASSERT_FALSE(baseline.empty());
  // At least one text must have matched something, else the comparison
  // is vacuous.
  size_t matched = 0;
  for (const auto& [text, uris] : baseline) matched += uris.size();
  ASSERT_GT(matched, 0u);

  struct Config {
    int shards;
    int workers;
  };
  for (const Config& config :
       {Config{2, 1}, Config{2, 2}, Config{4, 4}, Config{7, 3}}) {
    TextMatches sharded = RunScenario(config.shards, config.workers, seed,
                                      /*verify_merged=*/true);
    EXPECT_EQ(sharded, baseline)
        << "divergence with " << config.shards << " shards, "
        << config.workers << " workers";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedRuleBases, ShardedDiffTest,
                         ::testing::Values(7u, 23u, 1973u));

}  // namespace
}  // namespace mdv::filter
