#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mdv {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status err = Status::NotFound("table foo");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NotFound: table foo");
  EXPECT_EQ(Status(StatusCode::kParseError, "").ToString(), "ParseError");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kSchemaViolation, StatusCode::kInternal,
        StatusCode::kUnsupported}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    MDV_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(0), 42);

  Result<int> err = Status::NotFound("x");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> moved = std::move(result).value();
  EXPECT_EQ(*moved, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<std::string> {
    if (fail) return Status::InvalidArgument("nope");
    return std::string("value");
  };
  auto wrapper = [&](bool fail) -> Result<size_t> {
    MDV_ASSIGN_OR_RETURN(std::string s, make(fail));
    return s.size();
  };
  Result<size_t> ok = wrapper(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5u);
  EXPECT_EQ(wrapper(true).status().code(), StatusCode::kInvalidArgument);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  a b  "), "a b");
  EXPECT_EQ(TrimWhitespace("\t\n"), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, PrefixSuffixContains) {
  EXPECT_TRUE(StartsWith("doc.rdf#host", "doc.rdf"));
  EXPECT_FALSE(StartsWith("doc", "doc.rdf"));
  EXPECT_TRUE(EndsWith("doc.rdf", ".rdf"));
  EXPECT_FALSE(EndsWith("rdf", ".rdf"));
  EXPECT_TRUE(Contains("pirates.uni-passau.de", "uni-passau"));
  EXPECT_FALSE(Contains("tum.de", "uni-passau"));
  EXPECT_TRUE(Contains("abc", ""));
}

TEST(StringUtilTest, LowerAndJoin) {
  EXPECT_EQ(ToLowerAscii("SeArCh"), "search");
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(LoggingTest, LevelGate) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Streams below the threshold must not be evaluated.
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return "msg";
  };
  MDV_LOG(Debug) << count();
  MDV_LOG(Info) << count();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kDebug);
  MDV_LOG(Debug) << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(old_level);
}

TEST(LoggingTest, SinkReceivesFormattedLines) {
  std::vector<std::pair<LogLevel, std::string>> lines;
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  SetLogSink([&](LogLevel level, const std::string& message) {
    lines.emplace_back(level, message);
  });
  MDV_LOG(Warning) << "routed " << 42;
  SetLogSink({});  // Restore stderr.
  SetLogLevel(old_level);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].first, LogLevel::kWarning);
  EXPECT_NE(lines[0].second.find("routed 42"), std::string::npos);
  EXPECT_NE(lines[0].second.find("[WARN "), std::string::npos);
  // No trailing newline: the sink owns framing.
  EXPECT_EQ(lines[0].second.find('\n'), std::string::npos);
}

TEST(LoggingTest, ScopedLogCaptureCollectsAndRestores) {
  LogLevel old_level = GetLogLevel();
  {
    ScopedLogCapture capture(LogLevel::kDebug);
    MDV_LOG(Debug) << "inner detail";
    MDV_LOG(Error) << "boom";
    EXPECT_EQ(capture.messages().size(), 2u);
    EXPECT_TRUE(capture.Contains("inner detail"));
    EXPECT_TRUE(capture.Contains("boom"));
    EXPECT_FALSE(capture.Contains("absent"));
  }
  EXPECT_EQ(GetLogLevel(), old_level);
}

TEST(LoggingTest, ScopedLogCapturesNest) {
  ScopedLogCapture outer;
  {
    ScopedLogCapture inner;
    MDV_LOG(Error) << "to inner";
    EXPECT_TRUE(inner.Contains("to inner"));
  }
  // The inner capture restored the outer sink, not stderr.
  MDV_LOG(Error) << "to outer";
  EXPECT_TRUE(outer.Contains("to outer"));
  EXPECT_FALSE(outer.Contains("to inner"));
}

// Reference digests from the published FNV-1a 64 test vectors
// (Fowler/Noll/Vo, http://www.isthe.com/chongo/tech/comp/fnv/).
TEST(ChecksumTest, Fnv1aKnownVectors) {
  EXPECT_EQ(Fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(ChecksumTest, Fnv1aExtendChainsChunks) {
  const std::string data = "the quick brown fox";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint64_t chained = Fnv1aExtend(Fnv1a(data.substr(0, split)),
                                   data.substr(split));
    EXPECT_EQ(chained, Fnv1a(data)) << "split at " << split;
  }
}

TEST(ChecksumTest, Fnv1aSingleByteFlipChangesDigest) {
  std::string data = "payload bytes under test";
  const uint64_t clean = Fnv1a(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string flipped = data;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x40);
    EXPECT_NE(Fnv1a(flipped), clean) << "flip at " << i;
  }
}

TEST(ChecksumTest, Fnv1aEmbeddedNulBytesCount) {
  EXPECT_NE(Fnv1a(std::string_view("\0\0", 2)),
            Fnv1a(std::string_view("\0", 1)));
}

}  // namespace
}  // namespace mdv
