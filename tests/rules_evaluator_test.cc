#include "rules/evaluator.h"

#include <gtest/gtest.h>

namespace mdv::rules {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : schema_(rdf::MakeObjectGlobeSchema()) {
    AddProvider("a.rdf", "pirates.uni-passau.de", 92, 600);
    AddProvider("b.rdf", "tum.de", 32, 2000);
    AddProvider("c.rdf", "big.uni-passau.de", 512, 1200);
  }

  void AddProvider(const std::string& uri, const std::string& host,
                   int memory, int cpu) {
    rdf::Resource info("info", "ServerInformation");
    info.AddProperty("memory",
                     rdf::PropertyValue::Literal(std::to_string(memory)));
    info.AddProperty("cpu", rdf::PropertyValue::Literal(std::to_string(cpu)));
    rdf::Resource provider("host", "CycleProvider");
    provider.AddProperty("serverHost", rdf::PropertyValue::Literal(host));
    provider.AddProperty("serverInformation",
                         rdf::PropertyValue::ResourceRef(uri + "#info"));
    owned_.push_back(std::make_unique<rdf::Resource>(std::move(info)));
    resources_[uri + "#info"] = owned_.back().get();
    owned_.push_back(std::make_unique<rdf::Resource>(std::move(provider)));
    resources_[uri + "#host"] = owned_.back().get();
  }

  std::vector<std::string> Eval(const std::string& text) {
    Result<std::vector<std::string>> result =
        EvaluateRuleText(text, schema_, resources_);
    EXPECT_TRUE(result.ok()) << text << " -> " << result.status();
    return result.ok() ? *result : std::vector<std::string>{};
  }

  rdf::RdfSchema schema_;
  std::vector<std::unique_ptr<rdf::Resource>> owned_;
  ResourceMap resources_;
};

TEST_F(EvaluatorTest, ClassOnlyRule) {
  EXPECT_EQ(Eval("search CycleProvider c register c").size(), 3u);
  EXPECT_EQ(Eval("search ServerInformation s register s").size(), 3u);
}

TEST_F(EvaluatorTest, TriggeringStylePredicates) {
  EXPECT_EQ(Eval("search CycleProvider c register c "
                 "where c.serverHost contains 'uni-passau.de'"),
            (std::vector<std::string>{"a.rdf#host", "c.rdf#host"}));
  EXPECT_EQ(Eval("search ServerInformation s register s where s.memory > 64"),
            (std::vector<std::string>{"a.rdf#info", "c.rdf#info"}));
  EXPECT_EQ(Eval("search CycleProvider c register c "
                 "where c = 'b.rdf#host'"),
            (std::vector<std::string>{"b.rdf#host"}));
}

TEST_F(EvaluatorTest, PathPredicateJoinsThroughReference) {
  EXPECT_EQ(Eval("search CycleProvider c register c "
                 "where c.serverInformation.memory > 64"),
            (std::vector<std::string>{"a.rdf#host", "c.rdf#host"}));
  EXPECT_EQ(Eval("search CycleProvider c register c "
                 "where c.serverInformation.memory > 64 "
                 "and c.serverInformation.cpu > 1000"),
            (std::vector<std::string>{"c.rdf#host"}));
}

TEST_F(EvaluatorTest, ExplicitJoinVariables) {
  EXPECT_EQ(Eval("search CycleProvider c, ServerInformation s register s "
                 "where c.serverInformation = s "
                 "and c.serverHost contains 'tum'"),
            (std::vector<std::string>{"b.rdf#info"}));
}

TEST_F(EvaluatorTest, EmptyResultIsEmpty) {
  EXPECT_TRUE(Eval("search CycleProvider c register c "
                   "where c.serverInformation.memory > 100000")
                  .empty());
}

TEST_F(EvaluatorTest, DuplicateBindingsDeduplicate) {
  // Two different s bindings can register the same c; dedup must apply.
  EXPECT_EQ(Eval("search CycleProvider c, ServerInformation s register c "
                 "where s.memory > 0")
                .size(),
            3u);
}

TEST_F(EvaluatorTest, RuleExtensionsRejected) {
  AnalyzedRule fake;
  fake.ast.search.push_back(SearchEntry{"X", "x"});
  fake.ast.register_variable = "x";
  fake.variable_class["x"] = "CycleProvider";
  fake.variable_is_rule_extension["x"] = true;
  EXPECT_EQ(EvaluateRule(fake, resources_).status().code(),
            StatusCode::kUnsupported);
}

TEST(CompareValueTextsTest, NumericReconversion) {
  EXPECT_TRUE(CompareValueTexts("92", rdbms::CompareOp::kGt, "64"));
  EXPECT_FALSE(CompareValueTexts("100", rdbms::CompareOp::kLt, "64"));
  // Both non-numeric: lexicographic.
  EXPECT_TRUE(CompareValueTexts("abc", rdbms::CompareOp::kLt, "abd"));
  // Mixed: falls back to the engine's canonical ordering.
  EXPECT_TRUE(CompareValueTexts("x", rdbms::CompareOp::kNe, "92"));
  EXPECT_TRUE(
      CompareValueTexts("a.uni.de", rdbms::CompareOp::kContains, "uni"));
}

}  // namespace
}  // namespace mdv::rules
