#include "rdf/xml_import.h"

#include <gtest/gtest.h>

#include "rules/evaluator.h"

namespace mdv::rdf {
namespace {

constexpr char kServiceXml[] = R"(<?xml version="1.0"?>
<service id="pay" category="payment">
  <name>FastPay</name>
  <price>5</price>
  <endpoint id="ep1">
    <url>https://fast.pay</url>
    <protocol>SOAP</protocol>
  </endpoint>
  <tag>fintech</tag>
  <tag>gateway</tag>
</service>)";

TEST(XmlImportTest, ImportsElementsAsResources) {
  Result<RdfDocument> doc = ImportGenericXml(kServiceXml, "svc.xml");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->NumResources(), 2u);

  const Resource* service = doc->FindResource("pay");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->class_name(), "service");
  EXPECT_EQ(service->FindProperty("category")->text(), "payment");
  EXPECT_EQ(service->FindProperty("name")->text(), "FastPay");
  EXPECT_EQ(service->FindProperty("price")->text(), "5");
  EXPECT_EQ(service->FindProperties("tag").size(), 2u);

  const PropertyValue* ref = service->FindProperty("endpoint");
  ASSERT_NE(ref, nullptr);
  EXPECT_TRUE(ref->is_resource_ref());
  EXPECT_EQ(ref->text(), "svc.xml#ep1");
  const Resource* endpoint = doc->FindResource("ep1");
  ASSERT_NE(endpoint, nullptr);
  EXPECT_EQ(endpoint->FindProperty("url")->text(), "https://fast.pay");
}

TEST(XmlImportTest, SynthesizesIdsInDocumentOrder) {
  constexpr char xml[] = R"(<list>
    <item><v>1</v></item>
    <item><v>2</v></item>
  </list>)";
  Result<RdfDocument> doc = ImportGenericXml(xml, "l.xml");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->NumResources(), 3u);
  EXPECT_NE(doc->FindResource("list_1"), nullptr);
  EXPECT_NE(doc->FindResource("item_1"), nullptr);
  EXPECT_NE(doc->FindResource("item_2"), nullptr);
  EXPECT_EQ(doc->FindResource("list_1")->FindProperties("item").size(), 2u);
}

TEST(XmlImportTest, MixedContentBecomesTextProperty) {
  constexpr char xml[] = R"(<note id="n">hello <b>world</b></note>)";
  Result<RdfDocument> doc = ImportGenericXml(xml, "n.xml");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const Resource* note = doc->FindResource("n");
  ASSERT_NE(note, nullptr);
  EXPECT_EQ(note->FindProperty("text")->text(), "hello");
  ASSERT_NE(note->FindProperty("b"), nullptr);
}

TEST(XmlImportTest, RejectsMalformedXml) {
  EXPECT_FALSE(ImportGenericXml("<a><b></a>", "x.xml").ok());
  EXPECT_FALSE(ImportGenericXml("<a/><b/>", "x.xml").ok());  // Two roots.
  EXPECT_FALSE(ImportGenericXml("just text", "x.xml").ok());
  EXPECT_FALSE(ImportGenericXml("<a/>", "").ok());
}

TEST(XmlImportTest, ExtendSchemaMakesDocumentValid) {
  Result<RdfDocument> doc = ImportGenericXml(kServiceXml, "svc.xml");
  ASSERT_TRUE(doc.ok());
  RdfSchema schema;
  EXPECT_FALSE(schema.ValidateDocument(*doc).ok());
  ASSERT_TRUE(ExtendSchemaForDocument(*doc, &schema).ok());
  EXPECT_TRUE(schema.ValidateDocument(*doc).ok()) << "after extension";

  const PropertyDef* endpoint = schema.FindProperty("service", "endpoint");
  ASSERT_NE(endpoint, nullptr);
  EXPECT_EQ(endpoint->kind, PropertyKind::kReference);
  EXPECT_EQ(endpoint->referenced_class, "endpoint");
  const PropertyDef* tag = schema.FindProperty("service", "tag");
  ASSERT_NE(tag, nullptr);
  EXPECT_TRUE(tag->set_valued);
}

TEST(XmlImportTest, ExtensionIsIdempotentAndAdditive) {
  Result<RdfDocument> doc = ImportGenericXml(kServiceXml, "svc.xml");
  ASSERT_TRUE(doc.ok());
  RdfSchema schema;
  ASSERT_TRUE(ExtendSchemaForDocument(*doc, &schema).ok());
  ASSERT_TRUE(ExtendSchemaForDocument(*doc, &schema).ok());
  EXPECT_TRUE(schema.ValidateDocument(*doc).ok());
}

TEST(XmlImportTest, ConflictingPropertyKindsRejected) {
  RdfSchema schema;
  ASSERT_TRUE(
      schema.AddClass(ClassBuilder("service").Literal("endpoint").Build())
          .ok());
  Result<RdfDocument> doc = ImportGenericXml(kServiceXml, "svc.xml");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(ExtendSchemaForDocument(*doc, &schema).code(),
            StatusCode::kSchemaViolation);
}

// Imported XML flows through the rule machinery like native RDF (§6).
TEST(XmlImportTest, ImportedDocumentIsQueryable) {
  Result<RdfDocument> doc = ImportGenericXml(kServiceXml, "svc.xml");
  ASSERT_TRUE(doc.ok());
  RdfSchema schema;
  ASSERT_TRUE(ExtendSchemaForDocument(*doc, &schema).ok());

  rules::ResourceMap resources;
  for (const Resource* res : doc->resources()) {
    resources.emplace(doc->UriReferenceOf(res->local_id()), res);
  }
  Result<std::vector<std::string>> matches = rules::EvaluateRuleText(
      "search service s register s "
      "where s.category contains 'payment' and s.endpoint.url contains "
      "'fast'",
      schema, resources);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(*matches, std::vector<std::string>{"svc.xml#pay"});
}

}  // namespace
}  // namespace mdv::rdf
