// Concurrency regression tests of the sharded MDP: subscriptions and
// unsubscriptions racing parallel publish fan-outs through the public
// MetadataProvider API. The provider serializes local work on one
// mutex, so these tests assert two things — no data race (run under the
// tsan CI preset) and no lost state: after the churn, every surviving
// subscription's rule base passes the cross-shard consistency auditors
// and a fresh browse still answers from consistent filter tables.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "mdv/metadata_provider.h"
#include "mdv/network.h"
#include "rdf/document.h"
#include "rdf/schema.h"

namespace mdv {
namespace {

constexpr int kShards = 4;
constexpr int kWorkers = 4;
constexpr int kPublishers = 2;
constexpr int kDocsPerPublisher = 24;

rdf::RdfDocument MakeDoc(const std::string& uri, int64_t memory) {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory", rdf::PropertyValue::Literal(
                                 std::to_string(memory)));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost",
                   rdf::PropertyValue::Literal("srv.uni-passau.de"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

std::string MemoryRule(int64_t memory) {
  return "search CycleProvider c register c "
         "where c.serverInformation.memory = " +
         std::to_string(memory);
}

TEST(FilterShardedConcurrencyTest, SubscribeUnsubscribeDuringParallelRuns) {
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  filter::RuleStoreOptions rule_options;
  rule_options.num_shards = kShards;
  filter::EngineOptions engine_options;
  engine_options.num_workers = kWorkers;
  MetadataProvider mdp(&schema, &network, rule_options, engine_options);

  std::atomic<int64_t> delivered{0};
  network.Attach(1, [&delivered](const pubsub::Notification&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });

  // A durable rule base that stays subscribed throughout, so every
  // publish exercises all shards while the churn threads run.
  for (int i = 0; i < 16; ++i) {
    auto id = mdp.Subscribe(1, MemoryRule(1000 + i));
    ASSERT_TRUE(id.ok()) << id.status().message();
  }

  std::atomic<bool> publishing{true};
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};

  for (int p = 0; p < kPublishers; ++p) {
    threads.emplace_back([&mdp, &failures, p] {
      for (int i = 0; i < kDocsPerPublisher; ++i) {
        std::string uri = "doc_p" + std::to_string(p) + "_" +
                          std::to_string(i) + ".rdf";
        Status st = mdp.RegisterDocument(MakeDoc(uri, 1000 + (i % 16)));
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }

  // Subscription churn racing the publishers: subscribe a transient
  // rule, occasionally browse, then unsubscribe it again.
  threads.emplace_back([&mdp, &publishing, &failures] {
    int64_t memory = 5000;
    while (publishing.load(std::memory_order_relaxed)) {
      auto id = mdp.Subscribe(1, MemoryRule(memory++));
      if (!id.ok()) {
        failures.fetch_add(1);
        continue;
      }
      auto browsed = mdp.Browse(MemoryRule(1001));
      if (!browsed.ok()) failures.fetch_add(1);
      Status st = mdp.Unsubscribe(*id);
      if (!st.ok()) failures.fetch_add(1);
    }
  });

  for (int p = 0; p < kPublishers; ++p) threads[static_cast<size_t>(p)].join();
  publishing.store(false, std::memory_order_relaxed);
  threads.back().join();

  EXPECT_EQ(failures.load(), 0);
  // Every document matches exactly one durable rule; each match is one
  // insert notification to LMR 1 (plus initial subscribe snapshots,
  // hence GE).
  EXPECT_GE(delivered.load(), kPublishers * kDocsPerPublisher);

  // The churn must leave the sharded rule base consistent: placement
  // map, per-shard predicate indexes and rdbms indexes all agree.
  Status store_ok = mdp.rule_store().CheckConsistency();
  EXPECT_TRUE(store_ok.ok()) << store_ok.message();
  Status db_ok = mdp.database().CheckInvariants();
  EXPECT_TRUE(db_ok.ok()) << db_ok.message();

  // And still answer queries: all published docs with memory 1003 match.
  size_t expected = 0;
  for (int i = 0; i < kDocsPerPublisher; ++i) {
    if (i % 16 == 3) expected += kPublishers;
  }
  auto browsed = mdp.Browse(MemoryRule(1003));
  ASSERT_TRUE(browsed.ok()) << browsed.status().message();
  EXPECT_EQ(browsed->size(), expected);
}

TEST(FilterShardedConcurrencyTest, ConcurrentPublishersLoseNoMatches) {
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  filter::RuleStoreOptions rule_options;
  rule_options.num_shards = kShards;
  filter::EngineOptions engine_options;
  engine_options.num_workers = kWorkers;
  MetadataProvider mdp(&schema, &network, rule_options, engine_options);

  std::atomic<int64_t> delivered{0};
  network.Attach(1, [&delivered](const pubsub::Notification&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  auto sub = mdp.Subscribe(1, MemoryRule(777));
  ASSERT_TRUE(sub.ok()) << sub.status().message();

  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&mdp, p] {
      for (int i = 0; i < 8; ++i) {
        std::string uri = "m" + std::to_string(p) + "_" +
                          std::to_string(i) + ".rdf";
        Status st = mdp.RegisterDocument(MakeDoc(uri, 777));
        EXPECT_TRUE(st.ok()) << st.message();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(delivered.load(), 4 * 8);
  auto browsed = mdp.Browse(MemoryRule(777));
  ASSERT_TRUE(browsed.ok()) << browsed.status().message();
  EXPECT_EQ(browsed->size(), static_cast<size_t>(4 * 8));
}

}  // namespace
}  // namespace mdv
