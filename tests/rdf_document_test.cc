#include "rdf/document.h"

#include <gtest/gtest.h>

#include "rdf/diff.h"
#include "rdf/term.h"

namespace mdv::rdf {
namespace {

Resource MakeHost(const std::string& host_name) {
  Resource r("host", "CycleProvider");
  r.AddProperty("serverHost", PropertyValue::Literal(host_name));
  r.AddProperty("serverInformation",
                PropertyValue::ResourceRef("doc.rdf#info"));
  return r;
}

TEST(TermTest, UriReferenceRoundTrip) {
  EXPECT_EQ(MakeUriReference("doc.rdf", "host"), "doc.rdf#host");
  auto [doc, local] = SplitUriReference("doc.rdf#host");
  EXPECT_EQ(doc, "doc.rdf");
  EXPECT_EQ(local, "host");
  auto [doc2, local2] = SplitUriReference("no-hash");
  EXPECT_EQ(doc2, "no-hash");
  EXPECT_EQ(local2, "");
}

TEST(ResourceTest, PropertyAccessors) {
  Resource r = MakeHost("a.example");
  EXPECT_NE(r.FindProperty("serverHost"), nullptr);
  EXPECT_EQ(r.FindProperty("nope"), nullptr);
  r.AddProperty("serverHost", PropertyValue::Literal("b.example"));
  EXPECT_EQ(r.FindProperties("serverHost").size(), 2u);
  r.SetProperty("serverHost", PropertyValue::Literal("c.example"));
  EXPECT_EQ(r.FindProperty("serverHost")->text(), "c.example");
  EXPECT_EQ(r.RemoveProperties("serverHost"), 2u);
  EXPECT_EQ(r.FindProperty("serverHost"), nullptr);
}

TEST(ResourceTest, ContentEqualsIsOrderInsensitive) {
  Resource a("x", "C");
  a.AddProperty("p", PropertyValue::Literal("1"));
  a.AddProperty("q", PropertyValue::Literal("2"));
  Resource b("y", "C");  // Local id does not matter for content.
  b.AddProperty("q", PropertyValue::Literal("2"));
  b.AddProperty("p", PropertyValue::Literal("1"));
  EXPECT_TRUE(a.ContentEquals(b));

  Resource c = b;
  c.AddProperty("p", PropertyValue::Literal("1"));
  EXPECT_FALSE(a.ContentEquals(c));  // Different multiset size.

  Resource d("z", "D");
  d.AddProperty("p", PropertyValue::Literal("1"));
  d.AddProperty("q", PropertyValue::Literal("2"));
  EXPECT_FALSE(a.ContentEquals(d));  // Different class.

  // Literal vs reference with the same text differ.
  Resource e("x", "C");
  e.AddProperty("p", PropertyValue::ResourceRef("1"));
  e.AddProperty("q", PropertyValue::Literal("2"));
  EXPECT_FALSE(a.ContentEquals(e));
}

TEST(DocumentTest, AddFindRemove) {
  RdfDocument doc("doc.rdf");
  ASSERT_TRUE(doc.AddResource(MakeHost("a")).ok());
  EXPECT_EQ(doc.AddResource(MakeHost("a")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_NE(doc.FindResource("host"), nullptr);
  EXPECT_EQ(doc.UriReferenceOf("host"), "doc.rdf#host");
  EXPECT_TRUE(doc.RemoveResource("host").ok());
  EXPECT_EQ(doc.RemoveResource("host").code(), StatusCode::kNotFound);
}

TEST(DocumentTest, EmptyLocalIdRejected) {
  RdfDocument doc("doc.rdf");
  EXPECT_EQ(doc.AddResource(Resource("", "C")).code(),
            StatusCode::kInvalidArgument);
}

TEST(DocumentTest, ToStatementsEmitsSubjectAtomPerResource) {
  // Mirrors Figure 4: each property yields an atom plus one rdf#subject
  // atom per resource.
  RdfDocument doc("doc.rdf");
  Resource info("info", "ServerInformation");
  info.AddProperty("memory", PropertyValue::Literal("92"));
  info.AddProperty("cpu", PropertyValue::Literal("600"));
  ASSERT_TRUE(doc.AddResource(std::move(info)).ok());
  ASSERT_TRUE(doc.AddResource(MakeHost("pirates.uni-passau.de")).ok());

  Statements atoms = doc.ToStatements();
  // host: subject + 2 properties; info: subject + 2 properties.
  EXPECT_EQ(atoms.size(), 6u);

  int subject_atoms = 0;
  for (const Statement& atom : atoms) {
    if (atom.predicate == kRdfSubjectProperty) {
      ++subject_atoms;
      EXPECT_EQ(atom.object.text(), atom.subject);
      EXPECT_TRUE(atom.object.is_resource_ref());
    }
  }
  EXPECT_EQ(subject_atoms, 2);
}

TEST(DiffTest, DetectsInsertUpdateDelete) {
  RdfDocument before("d.rdf");
  ASSERT_TRUE(before.AddResource(MakeHost("a")).ok());
  Resource info("info", "ServerInformation");
  info.AddProperty("memory", PropertyValue::Literal("32"));
  ASSERT_TRUE(before.AddResource(info).ok());

  RdfDocument after("d.rdf");
  Resource info2("info", "ServerInformation");
  info2.AddProperty("memory", PropertyValue::Literal("128"));  // Updated.
  ASSERT_TRUE(after.AddResource(std::move(info2)).ok());
  Resource extra("extra", "ServerInformation");  // Inserted.
  extra.AddProperty("memory", PropertyValue::Literal("64"));
  ASSERT_TRUE(after.AddResource(std::move(extra)).ok());
  // "host" deleted.

  DocumentDiff diff = DiffDocuments(before, after);
  EXPECT_EQ(diff.updated, std::vector<std::string>{"info"});
  EXPECT_EQ(diff.inserted, std::vector<std::string>{"extra"});
  EXPECT_EQ(diff.deleted, std::vector<std::string>{"host"});
  EXPECT_TRUE(diff.unchanged.empty());
  EXPECT_FALSE(diff.Empty());
}

TEST(DiffTest, IdenticalDocumentsAreUnchanged) {
  RdfDocument a("d.rdf");
  ASSERT_TRUE(a.AddResource(MakeHost("x")).ok());
  RdfDocument b("d.rdf");
  ASSERT_TRUE(b.AddResource(MakeHost("x")).ok());
  DocumentDiff diff = DiffDocuments(a, b);
  EXPECT_TRUE(diff.Empty());
  EXPECT_EQ(diff.unchanged, std::vector<std::string>{"host"});
}

TEST(DiffTest, WholeDocumentDeletion) {
  RdfDocument a("d.rdf");
  ASSERT_TRUE(a.AddResource(MakeHost("x")).ok());
  DocumentDiff diff = DiffDocuments(a, RdfDocument("d.rdf"));
  EXPECT_EQ(diff.deleted, std::vector<std::string>{"host"});
}

}  // namespace
}  // namespace mdv::rdf
