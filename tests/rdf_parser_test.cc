#include "rdf/parser.h"

#include <gtest/gtest.h>

#include "rdf/writer.h"

namespace mdv::rdf {
namespace {

// The paper's Figure 1 document, in the RDF/XML subset MDV uses.
constexpr char kFigure1[] = R"(<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:og="http://mdv/schema#">
  <og:CycleProvider rdf:ID="host">
    <og:serverHost>pirates.uni-passau.de</og:serverHost>
    <og:serverPort>5874</og:serverPort>
    <og:serverInformation>
      <og:ServerInformation rdf:ID="info">
        <og:memory>92</og:memory>
        <og:cpu>600</og:cpu>
      </og:ServerInformation>
    </og:serverInformation>
  </og:CycleProvider>
</rdf:RDF>)";

TEST(RdfParserTest, ParsesFigure1Document) {
  Result<RdfDocument> doc = ParseRdfXml(kFigure1, "doc.rdf");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->NumResources(), 2u);

  const Resource* host = doc->FindResource("host");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->class_name(), "CycleProvider");
  ASSERT_NE(host->FindProperty("serverHost"), nullptr);
  EXPECT_EQ(host->FindProperty("serverHost")->text(),
            "pirates.uni-passau.de");
  EXPECT_EQ(host->FindProperty("serverPort")->text(), "5874");

  // The nested resource was hoisted and referenced by URI reference.
  const PropertyValue* ref = host->FindProperty("serverInformation");
  ASSERT_NE(ref, nullptr);
  EXPECT_TRUE(ref->is_resource_ref());
  EXPECT_EQ(ref->text(), "doc.rdf#info");

  const Resource* info = doc->FindResource("info");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->class_name(), "ServerInformation");
  EXPECT_EQ(info->FindProperty("memory")->text(), "92");
  EXPECT_EQ(info->FindProperty("memory")->AsNumber(), 92.0);
}

TEST(RdfParserTest, RdfResourceAttributeResolvesRelative) {
  constexpr char xml[] = R"(<rdf:RDF>
    <og:CycleProvider rdf:ID="host">
      <og:serverInformation rdf:resource="#info"/>
    </og:CycleProvider>
    <og:ServerInformation rdf:ID="info">
      <og:memory>92</og:memory>
    </og:ServerInformation>
  </rdf:RDF>)";
  Result<RdfDocument> doc = ParseRdfXml(xml, "d.rdf");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->FindResource("host")
                ->FindProperty("serverInformation")
                ->text(),
            "d.rdf#info");
}

TEST(RdfParserTest, AbsoluteReferenceToOtherDocumentKept) {
  constexpr char xml[] = R"(<rdf:RDF>
    <og:CycleProvider rdf:ID="host">
      <og:serverInformation rdf:resource="other.rdf#info"/>
    </og:CycleProvider>
  </rdf:RDF>)";
  Result<RdfDocument> doc = ParseRdfXml(xml, "d.rdf");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->FindResource("host")
                ->FindProperty("serverInformation")
                ->text(),
            "other.rdf#info");
}

TEST(RdfParserTest, EntitiesDecoded) {
  constexpr char xml[] = R"(<rdf:RDF>
    <og:CycleProvider rdf:ID="h">
      <og:serverHost>a &lt;&amp;&gt; b</og:serverHost>
    </og:CycleProvider>
  </rdf:RDF>)";
  Result<RdfDocument> doc = ParseRdfXml(xml, "d.rdf");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->FindResource("h")->FindProperty("serverHost")->text(),
            "a <&> b");
}

TEST(RdfParserTest, CommentsIgnored) {
  constexpr char xml[] = R"(<rdf:RDF>
    <!-- a comment -->
    <og:CycleProvider rdf:ID="h">
      <!-- inside -->
      <og:serverPort>1</og:serverPort>
    </og:CycleProvider>
  </rdf:RDF>)";
  EXPECT_TRUE(ParseRdfXml(xml, "d.rdf").ok());
}

TEST(RdfParserTest, SetValuedPropertiesRepeat) {
  constexpr char xml[] = R"(<rdf:RDF>
    <og:CycleProvider rdf:ID="h">
      <og:serverHost>a</og:serverHost>
      <og:serverHost>b</og:serverHost>
    </og:CycleProvider>
  </rdf:RDF>)";
  Result<RdfDocument> doc = ParseRdfXml(xml, "d.rdf");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->FindResource("h")->FindProperties("serverHost").size(), 2u);
}

TEST(RdfParserTest, ErrorsAreReported) {
  EXPECT_EQ(ParseRdfXml("<notRDF/>", "d.rdf").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseRdfXml("<rdf:RDF><og:X rdf:ID='a'>", "d.rdf").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseRdfXml("<rdf:RDF><og:X/></rdf:RDF>", "d.rdf")
                .status()
                .code(),
            StatusCode::kParseError);  // Resource without rdf:ID.
  EXPECT_EQ(
      ParseRdfXml("<rdf:RDF></rdf:RDF>trailing", "d.rdf").status().code(),
      StatusCode::kParseError);
  EXPECT_EQ(ParseRdfXml(kFigure1, "").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RdfParserTest, DuplicateLocalIdRejected) {
  constexpr char xml[] = R"(<rdf:RDF>
    <og:A rdf:ID="x"><og:p>1</og:p></og:A>
    <og:B rdf:ID="x"><og:p>2</og:p></og:B>
  </rdf:RDF>)";
  EXPECT_EQ(ParseRdfXml(xml, "d.rdf").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(RdfWriterTest, RoundTripsThroughParser) {
  Result<RdfDocument> doc = ParseRdfXml(kFigure1, "doc.rdf");
  ASSERT_TRUE(doc.ok());
  std::string xml = WriteRdfXml(*doc);
  Result<RdfDocument> reparsed = ParseRdfXml(xml, "doc.rdf");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  ASSERT_EQ(reparsed->NumResources(), doc->NumResources());
  for (const Resource* res : doc->resources()) {
    const Resource* other = reparsed->FindResource(res->local_id());
    ASSERT_NE(other, nullptr);
    EXPECT_TRUE(res->ContentEquals(*other)) << res->local_id();
  }
}

TEST(RdfWriterTest, EscapesSpecialCharacters) {
  RdfDocument doc("d.rdf");
  Resource r("x", "CycleProvider");
  r.AddProperty("serverHost", PropertyValue::Literal("<a> & 'b' \"c\""));
  ASSERT_TRUE(doc.AddResource(std::move(r)).ok());
  Result<RdfDocument> reparsed = ParseRdfXml(WriteRdfXml(doc), "d.rdf");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->FindResource("x")->FindProperty("serverHost")->text(),
            "<a> & 'b' \"c\"");
}

}  // namespace
}  // namespace mdv::rdf
