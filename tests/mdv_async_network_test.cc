// Acceptance tests of the asynchronous notification transport: the MDV
// layer running over the wire codec + bounded queues + at-least-once
// redelivery must behave observably like the synchronous bus — every
// LMR cache converges to byte-identical contents under injected frame
// loss, duplication and reordering — and one publish must remain one
// connected trace across the async boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "mdv/system.h"
#include "obs/trace.h"
#include "rdf/parser.h"

namespace mdv {
namespace {

rdf::RdfDocument MakeProviderDoc(const std::string& uri,
                                 const std::string& host_name, int memory) {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(memory)));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", rdf::PropertyValue::Literal(host_name));
  host.AddProperty("serverPort", rdf::PropertyValue::Literal("5874"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

/// Canonical textual dump of an LMR cache: every entry with its full
/// content and bookkeeping, deterministically ordered, so two caches
/// are equal iff the dumps are byte-identical.
std::string DumpCache(const LocalMetadataRepository& lmr) {
  std::ostringstream out;
  for (const std::string& uri : lmr.CachedUris()) {
    const CacheEntry* entry = lmr.Find(uri);
    out << uri << "|" << entry->resource.class_name() << "|"
        << entry->resource.local_id() << "\n";
    std::vector<std::string> props;
    for (const rdf::Property& prop : entry->resource.properties()) {
      props.push_back(prop.name + "=" +
                      (prop.value.is_literal() ? "lit:" : "ref:") +
                      prop.value.text());
    }
    std::sort(props.begin(), props.end());
    for (const std::string& prop : props) out << "  p " << prop << "\n";
    out << "  subs";
    for (pubsub::SubscriptionId sub : entry->matched_subscriptions) {
      out << " " << sub;
    }
    out << "\n  strong_referrers " << entry->strong_referrers << " local "
        << entry->local << "\n";
    std::vector<std::string> targets = entry->strong_targets;
    std::sort(targets.begin(), targets.end());
    for (const std::string& target : targets) out << "  t " << target << "\n";
  }
  return out.str();
}

/// Runs the identical publish workload against `system` and returns the
/// canonical dump of each LMR cache. WaitQuiescent is a no-op on the
/// synchronous bus, so the same script drives both fidelity levels.
std::vector<std::string> RunWorkload(MdvSystem* system) {
  MetadataProvider* provider = system->AddProvider();
  LocalMetadataRepository* lmr1 = system->AddRepository(provider);
  LocalMetadataRepository* lmr2 = system->AddRepository(provider);

  EXPECT_TRUE(lmr1->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  EXPECT_TRUE(lmr2->Subscribe("search CycleProvider c, ServerInformation s "
                              "register c "
                              "where c.serverInformation = s "
                              "and s.memory > 32 and s.cpu > 500")
                  .ok());
  EXPECT_TRUE(lmr2->Subscribe("search CycleProvider c register c "
                              "where c.serverHost contains 'uni-passau.de'")
                  .ok());
  EXPECT_TRUE(system->network().WaitQuiescent());

  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(provider
                    ->RegisterDocument(MakeProviderDoc(
                        "d" + std::to_string(i) + ".rdf",
                        i % 2 == 0 ? "pirates.uni-passau.de" : "cs.example.edu",
                        24 + 16 * i))
                    .ok());
  }
  // Updates that add, keep and drop matches.
  EXPECT_TRUE(
      provider->UpdateDocument(MakeProviderDoc("d0.rdf", "other.example", 512))
          .ok());
  EXPECT_TRUE(
      provider
          ->UpdateDocument(MakeProviderDoc("d3.rdf", "pirates.uni-passau.de", 8))
          .ok());
  EXPECT_TRUE(provider->DeleteDocument("d5.rdf").ok());
  EXPECT_TRUE(provider->DeleteDocument("d12.rdf").ok());
  EXPECT_TRUE(system->network().WaitQuiescent());

  std::vector<std::string> dumps;
  dumps.push_back(DumpCache(*lmr1));
  dumps.push_back(DumpCache(*lmr2));
  EXPECT_FALSE(dumps[0].empty());
  EXPECT_FALSE(dumps[1].empty());
  return dumps;
}

TEST(MdvAsyncNetworkTest, FaultyAsyncTransportConvergesToSyncCaches) {
  MdvSystem sync_system(rdf::MakeObjectGlobeSchema());
  std::vector<std::string> sync_dumps = RunWorkload(&sync_system);

  NetworkOptions options;
  options.asynchronous = true;
  options.transport.latency_us = 100;
  options.transport.jitter_us = 200;
  options.transport.faults.drop_probability = 0.10;
  options.transport.faults.duplicate_probability = 0.05;
  options.transport.faults.reorder_probability = 0.10;
  options.transport.faults.seed = 20020611;  // Fixed: reproducible faults.
  options.reliability.retransmit_timeout_us = 2000;
  MdvSystem async_system(rdf::MakeObjectGlobeSchema(), {}, options);
  std::vector<std::string> async_dumps = RunWorkload(&async_system);

  ASSERT_EQ(sync_dumps.size(), async_dumps.size());
  for (size_t i = 0; i < sync_dumps.size(); ++i) {
    EXPECT_EQ(sync_dumps[i], async_dumps[i]) << "LMR " << i;
  }

  // The faults actually happened and the protocol worked around them.
  net::LinkStats link = async_system.network().link_stats();
  EXPECT_GT(link.published, 0);
  EXPECT_EQ(link.delivered, link.published);
  EXPECT_GT(link.redelivered, 0);
  EXPECT_GT(link.dedup_suppressed, 0);
  EXPECT_EQ(link.dead_lettered, 0);
  net::TransportStats transport = async_system.network().transport_stats();
  EXPECT_GT(transport.dropped_faults, 0);
}

TEST(MdvAsyncNetworkTest, LossyDeterministicScheduleStillConverges) {
  // Every third notify frame vanishes (deterministically), including
  // redeliveries; convergence must come purely from retransmission.
  MdvSystem sync_system(rdf::MakeObjectGlobeSchema());
  std::vector<std::string> sync_dumps = RunWorkload(&sync_system);

  NetworkOptions options;
  options.asynchronous = true;
  options.reliability.retransmit_timeout_us = 1000;
  options.reliability.scan_interval_us = 500;
  MdvSystem async_system(rdf::MakeObjectGlobeSchema(), {}, options);
  async_system.network().set_fault_schedule(
      [](uint64_t index) -> std::optional<net::FaultDecision> {
        net::FaultDecision decision;
        decision.drop = index % 3 == 2;
        return decision;
      });
  std::vector<std::string> async_dumps = RunWorkload(&async_system);

  ASSERT_EQ(sync_dumps.size(), async_dumps.size());
  for (size_t i = 0; i < sync_dumps.size(); ++i) {
    EXPECT_EQ(sync_dumps[i], async_dumps[i]) << "LMR " << i;
  }
}

TEST(MdvAsyncNetworkTest, OnePublishIsOneConnectedTraceAcrossAsyncBoundary) {
  NetworkOptions options;
  options.asynchronous = true;
  MdvSystem system(rdf::MakeObjectGlobeSchema(), {}, options);
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* lmr = system.AddRepository(provider);
  ASSERT_TRUE(lmr->Subscribe("search CycleProvider c register c "
                             "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(system.network().WaitQuiescent());

  obs::DefaultTracer().Clear();
  ASSERT_TRUE(
      provider
          ->RegisterDocument(MakeProviderDoc("d.rdf", "pirates.uni-passau.de",
                                             92))
          .ok());
  ASSERT_TRUE(system.network().WaitQuiescent());
  EXPECT_EQ(lmr->CacheSize(), 2u);

  std::vector<obs::SpanRecord> spans = obs::DefaultTracer().Snapshot();
  ASSERT_FALSE(spans.empty());

  // Exactly one root: the MDP publish. Every other span — including the
  // ones created on transport worker threads after the publish call
  // already returned — joins its trace through the wire-carried context.
  std::vector<obs::SpanRecord> roots;
  for (const obs::SpanRecord& span : spans) {
    if (span.parent_id == 0) roots.push_back(span);
  }
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "mdp.publish");
  const uint64_t trace_id = roots[0].trace_id;

  std::set<uint64_t> span_ids;
  for (const obs::SpanRecord& span : spans) span_ids.insert(span.span_id);
  for (const obs::SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, trace_id) << span.name;
    if (span.parent_id != 0) {
      EXPECT_EQ(span_ids.count(span.parent_id), 1u) << span.name;
    }
  }

  // The async hops are all present in the one trace.
  for (const char* name :
       {"net.enqueue", "net.deliver", "net.ack", "lmr.apply_notification"}) {
    EXPECT_TRUE(std::any_of(
        spans.begin(), spans.end(),
        [&](const obs::SpanRecord& span) { return span.name == name; }))
        << name;
  }
}

TEST(MdvAsyncNetworkTest, AsyncStatsAndUndeliverableMirrorSyncSemantics) {
  NetworkOptions options;
  options.asynchronous = true;
  MdvSystem system(rdf::MakeObjectGlobeSchema(), {}, options);
  ASSERT_TRUE(system.network().asynchronous());

  // No LMR attached: the publish is counted undeliverable, like the
  // synchronous bus does.
  pubsub::Notification note;
  note.kind = pubsub::NotificationKind::kInsert;
  note.lmr = 42;
  system.network().Deliver(note, system.network().RegisterSender());
  ASSERT_TRUE(system.network().WaitQuiescent());
  EXPECT_EQ(system.network().stats().messages, 1);
  EXPECT_EQ(system.network().stats().undeliverable, 1);
}

}  // namespace
}  // namespace mdv
