#include "filter/rule_store.h"

#include <gtest/gtest.h>

#include "bench_support/workload.h"
#include "filter/tables.h"
#include "obs/metrics.h"
#include "rules/compiler.h"

namespace mdv::filter {
namespace {

using bench_support::FilterFixture;

class RuleStoreTest : public ::testing::Test {
 protected:
  RuleStoreTest() : schema_(rdf::MakeObjectGlobeSchema()) {
    Status st = CreateFilterTables(&db_);
    EXPECT_TRUE(st.ok());
    store_ = std::make_unique<RuleStore>(&db_);
  }

  Result<int64_t> Register(const std::string& text,
                           std::vector<int64_t>* created = nullptr) {
    Result<rules::CompiledRule> compiled =
        rules::CompileRule(text, schema_);
    if (!compiled.ok()) return compiled.status();
    return store_->RegisterTree(compiled->decomposed, created);
  }

  rdf::RdfSchema schema_;
  rdbms::Database db_;
  std::unique_ptr<RuleStore> store_;
};

TEST_F(RuleStoreTest, RegisterSimpleRuleCreatesOneAtomicRule) {
  std::vector<int64_t> created;
  Result<int64_t> end = Register(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de'",
      &created);
  ASSERT_TRUE(end.ok()) << end.status();
  EXPECT_EQ(created.size(), 1u);
  EXPECT_EQ(created[0], *end);
  EXPECT_EQ(store_->NumAtomicRules(), 1u);
  EXPECT_EQ(db_.GetTable(kFilterRulesCON)->NumRows(), 1u);
}

TEST_F(RuleStoreTest, DuplicateRulesShareAtomicRules) {
  // §3.3.2: merging takes advantage of rule redundancy; equivalent rules
  // map to the same atomic rules.
  const std::string text =
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64";
  Result<int64_t> first = Register(text);
  ASSERT_TRUE(first.ok());
  size_t rules_after_first = store_->NumAtomicRules();
  std::vector<int64_t> created;
  Result<int64_t> second = Register(text, &created);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_TRUE(created.empty());
  EXPECT_EQ(store_->NumAtomicRules(), rules_after_first);
}

TEST_F(RuleStoreTest, SharedTriggeringRulesAcrossRules) {
  // §3.3.3's example: the memory rule and the cpu rule share the
  // predicate-less CycleProvider class rule ("RuleA").
  ASSERT_TRUE(Register("search CycleProvider c register c "
                       "where c.serverInformation.memory > 64")
                  .ok());
  size_t after_first = store_->NumAtomicRules();  // Class + memory + join.
  EXPECT_EQ(after_first, 3u);
  ASSERT_TRUE(Register("search CycleProvider c register c "
                       "where c.serverInformation.cpu > 500")
                  .ok());
  // Shares the class rule: adds only cpu trigger + join.
  EXPECT_EQ(store_->NumAtomicRules(), 5u);
}

TEST_F(RuleStoreTest, RuleGroupsShareJoinSpecs) {
  ASSERT_TRUE(Register("search CycleProvider c register c "
                       "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(Register("search CycleProvider c register c "
                       "where c.serverInformation.cpu > 500")
                  .ok());
  // Both join rules have the same group (Figure 6).
  EXPECT_EQ(store_->NumGroups(), 1u);
  const rdbms::Table* groups = db_.GetTable(kRuleGroups);
  bool checked = false;
  groups->Scan([&](rdbms::RowId, const rdbms::Row& row) {
    EXPECT_EQ(row[RuleGroupsCols::kMemberCount].as_int(), 2);
    checked = true;
  });
  EXPECT_TRUE(checked);
}

TEST_F(RuleStoreTest, GroupingDisabledGivesSingletonGroups) {
  RuleStoreOptions options;
  options.use_rule_groups = false;
  rdbms::Database db;
  ASSERT_TRUE(CreateFilterTables(&db).ok());
  RuleStore store(&db, options);
  for (const char* text :
       {"search CycleProvider c register c "
        "where c.serverInformation.memory > 64",
        "search CycleProvider c register c "
        "where c.serverInformation.cpu > 500"}) {
    Result<rules::CompiledRule> compiled = rules::CompileRule(text, schema_);
    ASSERT_TRUE(compiled.ok());
    ASSERT_TRUE(store.RegisterTree(compiled->decomposed).ok());
  }
  EXPECT_EQ(store.NumGroups(), 2u);
}

TEST_F(RuleStoreTest, MergingDisabledDuplicatesAtoms) {
  RuleStoreOptions options;
  options.merge_shared_atoms = false;
  rdbms::Database db;
  ASSERT_TRUE(CreateFilterTables(&db).ok());
  RuleStore store(&db, options);
  const std::string text =
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64";
  for (int i = 0; i < 2; ++i) {
    Result<rules::CompiledRule> compiled = rules::CompileRule(text, schema_);
    ASSERT_TRUE(compiled.ok());
    ASSERT_TRUE(store.RegisterTree(compiled->decomposed).ok());
  }
  EXPECT_EQ(store.NumAtomicRules(), 6u);  // 3 per registration.
}

TEST_F(RuleStoreTest, DependencyEdgesAndInputs) {
  std::vector<int64_t> created;
  Result<int64_t> end = Register(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64",
      &created);
  ASSERT_TRUE(end.ok());
  ASSERT_EQ(created.size(), 3u);

  Result<RuleStore::JoinInputs> inputs = store_->InputsOf(*end);
  ASSERT_TRUE(inputs.ok()) << inputs.status();
  EXPECT_NE(inputs->left, inputs->right);

  std::vector<RuleStore::Dependent> deps =
      store_->DependentsOf(inputs->left);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].target, *end);
  EXPECT_TRUE(store_->HasDependents(inputs->left));
  EXPECT_FALSE(store_->HasDependents(*end));

  Result<std::string> type = store_->RuleTypeOf(*end);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, "CycleProvider");
}

TEST_F(RuleStoreTest, GroupSpecRoundTrips) {
  Result<int64_t> end = Register(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(end.ok());
  std::vector<RuleStore::Dependent> deps;
  Result<RuleStore::JoinInputs> inputs = store_->InputsOf(*end);
  ASSERT_TRUE(inputs.ok());
  deps = store_->DependentsOf(inputs->left);
  ASSERT_FALSE(deps.empty());
  Result<RuleStore::GroupSpec> spec = store_->GroupSpecOf(deps[0].group_id);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->op, rdbms::CompareOp::kEq);
  const std::string& reg_prop =
      spec->register_side == 0 ? spec->lhs_property : spec->rhs_property;
  EXPECT_EQ(reg_prop, "serverInformation");
}

TEST_F(RuleStoreTest, UnregisterCascadesToOrphans) {
  Result<int64_t> end = Register(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(store_->NumAtomicRules(), 3u);
  ASSERT_TRUE(store_->Unregister(*end).ok());
  EXPECT_EQ(store_->NumAtomicRules(), 0u);
  EXPECT_EQ(store_->NumGroups(), 0u);
  EXPECT_EQ(db_.GetTable(kRuleDependencies)->NumRows(), 0u);
  EXPECT_EQ(db_.GetTable(kFilterRulesGT)->NumRows(), 0u);
  EXPECT_EQ(db_.GetTable(kFilterRulesCLS)->NumRows(), 0u);
}

TEST_F(RuleStoreTest, UnregisterKeepsSharedSubtrees) {
  Result<int64_t> memory_rule = Register(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  Result<int64_t> cpu_rule = Register(
      "search CycleProvider c register c "
      "where c.serverInformation.cpu > 500");
  ASSERT_TRUE(memory_rule.ok());
  ASSERT_TRUE(cpu_rule.ok());
  EXPECT_EQ(store_->NumAtomicRules(), 5u);

  ASSERT_TRUE(store_->Unregister(*memory_rule).ok());
  // The shared class rule survives; memory trigger + its join are gone.
  EXPECT_EQ(store_->NumAtomicRules(), 3u);
  EXPECT_EQ(store_->NumGroups(), 1u);

  ASSERT_TRUE(store_->Unregister(*cpu_rule).ok());
  EXPECT_EQ(store_->NumAtomicRules(), 0u);
}

TEST_F(RuleStoreTest, UnregisterSharedEndRuleKeepsItUntilLastRelease) {
  const std::string text =
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64";
  Result<int64_t> first = Register(text);
  Result<int64_t> second = Register(text);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(*first, *second);
  ASSERT_TRUE(store_->Unregister(*first).ok());
  EXPECT_EQ(store_->NumAtomicRules(), 3u);  // Second subscription holds on.
  ASSERT_TRUE(store_->Unregister(*second).ok());
  EXPECT_EQ(store_->NumAtomicRules(), 0u);
}

TEST_F(RuleStoreTest, AddRuleRejectsUnsatisfiableRules) {
  obs::Counter& rejected =
      obs::DefaultMetrics().GetCounter("mdv.lint.rejected_total");
  const int64_t before = rejected.value();
  Result<rules::CompiledRule> compiled = rules::CompileRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 100 and "
      "c.serverInformation.memory < 50",
      schema_);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  Result<RuleStore::AddRuleOutcome> outcome =
      store_->AddRule(*compiled, schema_, "impossible");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  // The diagnostic names the rule and the conflicting constraint.
  EXPECT_NE(outcome.status().message().find("impossible"), std::string::npos)
      << outcome.status().message();
  EXPECT_NE(outcome.status().message().find("memory"), std::string::npos)
      << outcome.status().message();
  EXPECT_EQ(rejected.value(), before + 1);
  EXPECT_EQ(store_->NumAtomicRules(), 0u);  // Nothing was registered.
}

TEST_F(RuleStoreTest, AddRuleWarnsOnSubsumedPair) {
  obs::Counter& subsumed =
      obs::DefaultMetrics().GetCounter("mdv.lint.subsumed_total");
  const int64_t before = subsumed.value();
  Result<rules::CompiledRule> wide = rules::CompileRule(
      "search CycleProvider c register c "
      "where c.serverInformation.cpu > 100",
      schema_);
  ASSERT_TRUE(wide.ok());
  Result<RuleStore::AddRuleOutcome> first =
      store_->AddRule(*wide, schema_, "wide");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->warnings.empty());

  Result<rules::CompiledRule> narrow = rules::CompileRule(
      "search CycleProvider c register c "
      "where c.serverInformation.cpu > 200",
      schema_);
  ASSERT_TRUE(narrow.ok());
  Result<RuleStore::AddRuleOutcome> second =
      store_->AddRule(*narrow, schema_, "narrow");
  ASSERT_TRUE(second.ok()) << second.status();  // Warn, don't refuse.
  ASSERT_FALSE(second->warnings.empty());
  EXPECT_EQ(second->warnings[0].code, rules::LintCode::kSubsumedRule);
  EXPECT_EQ(subsumed.value(), before + 1);

  // Unregistering the pair clears the lint registry too: re-adding the
  // narrow rule alone is then warning-free.
  ASSERT_TRUE(store_->Unregister(first->end_rule_id).ok());
  ASSERT_TRUE(store_->Unregister(second->end_rule_id).ok());
  Result<RuleStore::AddRuleOutcome> again =
      store_->AddRule(*narrow, schema_, "narrow");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->warnings.empty());
}

TEST_F(RuleStoreTest, AddRuleFlagsExactDuplicates) {
  Result<rules::CompiledRule> compiled = rules::CompileRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64",
      schema_);
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE(store_->AddRule(*compiled, schema_, "a").ok());
  Result<RuleStore::AddRuleOutcome> duplicate =
      store_->AddRule(*compiled, schema_, "b");
  ASSERT_TRUE(duplicate.ok());
  ASSERT_FALSE(duplicate->warnings.empty());
  EXPECT_EQ(duplicate->warnings[0].code, rules::LintCode::kDuplicateRule);
}

TEST_F(RuleStoreTest, IdCountersResumeFromExistingRows) {
  Result<int64_t> end = Register(
      "search CycleProvider c register c where c.serverPort > 5000");
  ASSERT_TRUE(end.ok());
  RuleStore reopened(&db_);
  Result<rules::CompiledRule> compiled = rules::CompileRule(
      "search ServerInformation s register s where s.memory > 1", schema_);
  ASSERT_TRUE(compiled.ok());
  Result<int64_t> next = reopened.RegisterTree(compiled->decomposed);
  ASSERT_TRUE(next.ok());
  EXPECT_GT(*next, *end);
}

}  // namespace
}  // namespace mdv::filter
