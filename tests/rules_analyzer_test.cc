#include "rules/analyzer.h"

#include <gtest/gtest.h>

#include "rules/parser.h"

namespace mdv::rules {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() : schema_(rdf::MakeObjectGlobeSchema()) {}

  Result<AnalyzedRule> Analyze(const std::string& text,
                               const ExtensionResolver& resolver = nullptr) {
    Result<RuleAst> ast = ParseRule(text);
    if (!ast.ok()) return ast.status();
    return AnalyzeRule(*ast, schema_, resolver);
  }

  rdf::RdfSchema schema_;
};

TEST_F(AnalyzerTest, BindsVariablesToClasses) {
  Result<AnalyzedRule> rule = Analyze(
      "search CycleProvider c, ServerInformation s register c "
      "where c.serverInformation = s and s.memory > 64");
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->variable_class.at("c"), "CycleProvider");
  EXPECT_EQ(rule->variable_class.at("s"), "ServerInformation");
  EXPECT_FALSE(rule->variable_is_rule_extension.at("c"));
}

TEST_F(AnalyzerTest, PathExpressionsResolvedThroughSchema) {
  EXPECT_TRUE(Analyze("search CycleProvider c register c "
                      "where c.serverInformation.memory > 64")
                  .ok());
  EXPECT_EQ(Analyze("search CycleProvider c register c "
                    "where c.serverHost.memory > 64")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Analyze("search CycleProvider c register c where c.nope = 1")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, UnknownClassAndVariableErrors) {
  EXPECT_EQ(Analyze("search Nope n register n").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Analyze("search CycleProvider c register x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Analyze("search CycleProvider c, CycleProvider c register c")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      Analyze("search CycleProvider c register c where x.serverPort = 1")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, ConstantOnlyPredicateRejected) {
  EXPECT_EQ(Analyze("search CycleProvider c register c where 1 = 2")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, OrderedComparisonNeedsNumericConstant) {
  // Paper §3.3.4: < <= > >= only on numerical constants.
  EXPECT_EQ(Analyze("search CycleProvider c register c "
                    "where c.serverHost > 'abc'")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(Analyze("search CycleProvider c register c "
                      "where c.serverPort > 1000")
                  .ok());
  // Ordered comparison on a resource reference is meaningless.
  EXPECT_EQ(Analyze("search CycleProvider c register c "
                    "where c.serverInformation > 5")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, ContainsRestrictions) {
  EXPECT_TRUE(Analyze("search CycleProvider c register c "
                      "where c.serverHost contains 'uni'")
                  .ok());
  EXPECT_EQ(Analyze("search CycleProvider c register c "
                    "where c.serverHost contains 64")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Analyze("search CycleProvider c register c "
                    "where 'uni' contains c.serverHost")
                .status()
                .code(),
            StatusCode::kUnsupported);
}

TEST_F(AnalyzerTest, ResourceVersusNumberRejected) {
  EXPECT_EQ(Analyze("search CycleProvider c register c where c = 5")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // OID form: resource against a string URI is fine.
  EXPECT_TRUE(
      Analyze("search CycleProvider c register c where c = 'doc.rdf#host'")
          .ok());
}

TEST_F(AnalyzerTest, AnyOperatorRequiresSetValuedProperty) {
  EXPECT_EQ(Analyze("search CycleProvider c register c "
                    "where c.serverHost? = 'x'")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  rdf::RdfSchema schema;
  ASSERT_TRUE(
      schema.AddClass(rdf::ClassBuilder("C").Literal("tags", true).Build())
          .ok());
  Result<RuleAst> ast =
      ParseRule("search C c register c where c.tags? = 'x'");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(AnalyzeRule(*ast, schema).ok());
}

TEST_F(AnalyzerTest, RuleExtensionsResolveThroughResolver) {
  auto resolver = [](const std::string& name) -> std::optional<std::string> {
    if (name == "MyProviders") return "CycleProvider";
    return std::nullopt;
  };
  Result<AnalyzedRule> rule = Analyze(
      "search MyProviders m register m where m.serverPort > 5000", resolver);
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->variable_class.at("m"), "CycleProvider");
  EXPECT_TRUE(rule->variable_is_rule_extension.at("m"));
  EXPECT_EQ(Analyze("search Unknown u register u", resolver).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mdv::rules
