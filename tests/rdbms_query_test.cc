#include "rdbms/query.h"

#include <gtest/gtest.h>

namespace mdv::rdbms {
namespace {

RowSet MakeSet(std::vector<std::string> columns, std::vector<Row> rows) {
  RowSet out;
  out.columns = std::move(columns);
  out.rows = std::move(rows);
  return out;
}

TEST(QueryTest, FromTableProjectsAllColumnsWithPrefix) {
  Table table(TableSchema("t", {ColumnDef{"a"}, ColumnDef{"b"}}));
  ASSERT_TRUE(table.Insert(Row{Value("x"), Value("y")}).ok());
  RowSet rs = FromTable(table, {}, "t1");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"t1.a", "t1.b"}));
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.ColumnIndex("t1.b"), 1);
  EXPECT_EQ(rs.ColumnIndex("nope"), -1);
}

TEST(QueryTest, SelectFiltersByPredicate) {
  RowSet rs = MakeSet({"v"}, {Row{Value(int64_t{1})}, Row{Value(int64_t{5})},
                              Row{Value(int64_t{9})}});
  RowSet filtered =
      Select(rs, *ColumnCompare(0, CompareOp::kGt, Value(int64_t{3})));
  EXPECT_EQ(filtered.NumRows(), 2u);
}

TEST(QueryTest, HashJoinMatchesEqualKeys) {
  RowSet left = MakeSet({"id", "name"}, {Row{Value(int64_t{1}), Value("a")},
                                         Row{Value(int64_t{2}), Value("b")}});
  RowSet right = MakeSet({"ref", "val"}, {Row{Value(int64_t{2}), Value("x")},
                                          Row{Value(int64_t{2}), Value("y")},
                                          Row{Value(int64_t{3}), Value("z")}});
  RowSet joined = HashJoin(left, 0, right, 0);
  EXPECT_EQ(joined.columns.size(), 4u);
  ASSERT_EQ(joined.NumRows(), 2u);  // id=2 joins twice.
  for (const Row& row : joined.rows) {
    EXPECT_EQ(row[0], row[2]);
    EXPECT_EQ(row[1].as_string(), "b");
  }
}

TEST(QueryTest, HashJoinSkipsNullKeys) {
  RowSet left = MakeSet({"k"}, {Row{Value()}, Row{Value(int64_t{1})}});
  RowSet right = MakeSet({"k"}, {Row{Value()}, Row{Value(int64_t{1})}});
  EXPECT_EQ(HashJoin(left, 0, right, 0).NumRows(), 1u);
}

TEST(QueryTest, NestedLoopJoinNonEquality) {
  RowSet left = MakeSet({"a"}, {Row{Value(int64_t{1})}, Row{Value(int64_t{5})}});
  RowSet right =
      MakeSet({"b"}, {Row{Value(int64_t{2})}, Row{Value(int64_t{6})}});
  RowSet lt = NestedLoopJoin(left, 0, CompareOp::kLt, right, 0);
  EXPECT_EQ(lt.NumRows(), 3u);  // 1<2, 1<6, 5<6.
}

TEST(QueryTest, NestedLoopJoinDelegatesEqToHash) {
  RowSet left = MakeSet({"a"}, {Row{Value(int64_t{7})}});
  RowSet right = MakeSet({"b"}, {Row{Value(int64_t{7})}});
  EXPECT_EQ(NestedLoopJoin(left, 0, CompareOp::kEq, right, 0).NumRows(), 1u);
}

TEST(QueryTest, ProjectAndDistinct) {
  RowSet rs = MakeSet({"a", "b"}, {Row{Value("x"), Value(int64_t{1})},
                                   Row{Value("x"), Value(int64_t{2})}});
  RowSet projected = Project(rs, {0});
  EXPECT_EQ(projected.columns, (std::vector<std::string>{"a"}));
  EXPECT_EQ(projected.NumRows(), 2u);
  EXPECT_EQ(Distinct(projected).NumRows(), 1u);
}

TEST(QueryTest, DistinctTreatsNullsAsEqual) {
  RowSet rs = MakeSet({"a"}, {Row{Value()}, Row{Value()}});
  EXPECT_EQ(Distinct(rs).NumRows(), 1u);
}

TEST(QueryTest, UnionChecksArity) {
  RowSet a = MakeSet({"x"}, {Row{Value(int64_t{1})}});
  RowSet b = MakeSet({"y"}, {Row{Value(int64_t{2})}});
  Result<RowSet> u = Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->NumRows(), 2u);
  RowSet c = MakeSet({"y", "z"}, {});
  EXPECT_FALSE(Union(a, c).ok());
}

}  // namespace
}  // namespace mdv::rdbms
