// Edge cases of the filter algorithm beyond the paper's two-class
// running example: three-level reference chains (deeper dependency
// graphs and more filter iterations), set-valued reference properties,
// rules with several variables of the same class, and the remaining
// comparison operators.

#include <gtest/gtest.h>

#include "filter/data_store.h"
#include "filter/engine.h"
#include "filter/tables.h"
#include "rules/compiler.h"

namespace mdv::filter {
namespace {

/// Cluster → (set-valued, strong) nodes → CycleProvider →
/// ServerInformation: a three-level reference chain.
rdf::RdfSchema MakeDeepSchema() {
  rdf::RdfSchema schema;
  Status st = schema.AddClass(rdf::ClassBuilder("ServerInformation")
                                  .Literal("memory")
                                  .Literal("cpu")
                                  .Build());
  st = schema.AddClass(rdf::ClassBuilder("CycleProvider")
                           .Literal("serverHost")
                           .StrongRef("serverInformation",
                                      "ServerInformation")
                           .Build());
  st = schema.AddClass(rdf::ClassBuilder("Cluster")
                           .Literal("region")
                           .StrongRef("node", "CycleProvider",
                                      /*set_valued=*/true)
                           .Build());
  (void)st;
  return schema;
}

class DeepFilterTest : public ::testing::Test {
 protected:
  DeepFilterTest() : schema_(MakeDeepSchema()) {
    Status st = CreateFilterTables(&db_);
    EXPECT_TRUE(st.ok());
    store_ = std::make_unique<RuleStore>(&db_);
    engine_ = std::make_unique<FilterEngine>(&db_, store_.get());
  }

  int64_t MustRegisterRule(const std::string& text) {
    Result<rules::CompiledRule> compiled = rules::CompileRule(text, schema_);
    EXPECT_TRUE(compiled.ok()) << text << " -> " << compiled.status();
    Result<int64_t> end = store_->RegisterTree(compiled->decomposed);
    EXPECT_TRUE(end.ok()) << end.status();
    return *end;
  }

  Result<FilterRunResult> RegisterDoc(const rdf::RdfDocument& doc) {
    rdf::Statements delta = doc.ToStatements();
    Status st = InsertAtoms(&db_, delta);
    EXPECT_TRUE(st.ok());
    return engine_->Run(delta);
  }

  /// A cluster with two nodes; node memories given by the arguments.
  rdf::RdfDocument MakeClusterDoc(const std::string& uri,
                                  const std::string& region, int mem_a,
                                  int mem_b) {
    rdf::RdfDocument doc(uri);
    auto add_node = [&](const std::string& suffix, int memory) {
      rdf::Resource info("info" + suffix, "ServerInformation");
      info.AddProperty("memory",
                       rdf::PropertyValue::Literal(std::to_string(memory)));
      info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
      rdf::Resource node("node" + suffix, "CycleProvider");
      node.AddProperty("serverHost",
                       rdf::PropertyValue::Literal(suffix + ".example"));
      node.AddProperty("serverInformation", rdf::PropertyValue::ResourceRef(
                                                uri + "#info" + suffix));
      Status st = doc.AddResource(std::move(info));
      st = doc.AddResource(std::move(node));
      (void)st;
    };
    add_node("A", mem_a);
    add_node("B", mem_b);
    rdf::Resource cluster("cluster", "Cluster");
    cluster.AddProperty("region", rdf::PropertyValue::Literal(region));
    cluster.AddProperty("node",
                        rdf::PropertyValue::ResourceRef(uri + "#nodeA"));
    cluster.AddProperty("node",
                        rdf::PropertyValue::ResourceRef(uri + "#nodeB"));
    Status st = doc.AddResource(std::move(cluster));
    (void)st;
    return doc;
  }

  rdf::RdfSchema schema_;
  rdbms::Database db_;
  std::unique_ptr<RuleStore> store_;
  std::unique_ptr<FilterEngine> engine_;
};

TEST_F(DeepFilterTest, TwoHopPathNeedsThreeIterations) {
  // Cluster whose (some) node runs on >64MB: two reference hops, so the
  // dependency graph has depth 3 and the filter iterates three times.
  int64_t rule = MustRegisterRule(
      "search Cluster k register k "
      "where k.node?.serverInformation.memory > 64");
  Result<FilterRunResult> result =
      RegisterDoc(MakeClusterDoc("c.rdf", "eu", 92, 16));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->MatchesFor(rule), nullptr);
  EXPECT_EQ(*result->MatchesFor(rule),
            std::vector<std::string>{"c.rdf#cluster"});
  EXPECT_GE(result->iterations, 2);
}

TEST_F(DeepFilterTest, SetValuedReferenceMatchesExistentially) {
  int64_t rule = MustRegisterRule(
      "search Cluster k register k "
      "where k.node?.serverInformation.memory > 64");
  // Neither node qualifies.
  Result<FilterRunResult> result =
      RegisterDoc(MakeClusterDoc("c.rdf", "eu", 16, 32));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->MatchesFor(rule), nullptr);
  // One of two nodes qualifies in another cluster.
  result = RegisterDoc(MakeClusterDoc("d.rdf", "us", 16, 128));
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->MatchesFor(rule), nullptr);
  EXPECT_EQ(*result->MatchesFor(rule),
            std::vector<std::string>{"d.rdf#cluster"});
}

TEST_F(DeepFilterTest, ConjunctionAcrossLevels) {
  int64_t rule = MustRegisterRule(
      "search Cluster k register k "
      "where k.region contains 'eu' "
      "and k.node?.serverInformation.memory > 64");
  ASSERT_TRUE(RegisterDoc(MakeClusterDoc("eu1.rdf", "eu-west", 92, 16)).ok());
  ASSERT_TRUE(RegisterDoc(MakeClusterDoc("us1.rdf", "us-east", 92, 92)).ok());
  Result<FilterRunResult> result =
      RegisterDoc(MakeClusterDoc("eu2.rdf", "eu-north", 8, 8));
  ASSERT_TRUE(result.ok());
  // Only eu1 matched over the whole history; eu2 fails on memory, us1 on
  // region. eu1's match was reported in its own run:
  rdf::Statements eu1_atoms =
      AtomsOfResources(db_, {"eu1.rdf#cluster"});
  EXPECT_FALSE(eu1_atoms.empty());
  EXPECT_EQ(result->MatchesFor(rule), nullptr);  // Nothing new in eu2 run.
}

TEST_F(DeepFilterTest, MiddleLevelRuleRegistersProviders) {
  int64_t rule = MustRegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory >= 92");
  Result<FilterRunResult> result =
      RegisterDoc(MakeClusterDoc("c.rdf", "eu", 92, 128));
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->MatchesFor(rule), nullptr);
  EXPECT_EQ(*result->MatchesFor(rule),
            (std::vector<std::string>{"c.rdf#nodeA", "c.rdf#nodeB"}));
}

TEST_F(DeepFilterTest, TwoVariablesSameClass) {
  // Pairs of providers with equal memory values: a literal-equality join
  // between two variables of the same class.
  int64_t rule = MustRegisterRule(
      "search CycleProvider a, CycleProvider b register a "
      "where a.serverInformation.memory = b.serverInformation.memory "
      "and b.serverHost contains 'B.example'");
  Result<FilterRunResult> result =
      RegisterDoc(MakeClusterDoc("c.rdf", "eu", 92, 92));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->MatchesFor(rule), nullptr);
  // Both nodes share memory 92, and nodeB satisfies the host predicate,
  // so both qualify as `a` (a pairs with b=nodeB, including itself).
  EXPECT_EQ(*result->MatchesFor(rule),
            (std::vector<std::string>{"c.rdf#nodeA", "c.rdf#nodeB"}));
}

TEST_F(DeepFilterTest, RemainingComparisonOperators) {
  int64_t le_rule = MustRegisterRule(
      "search ServerInformation s register s where s.memory <= 16");
  int64_t ge_rule = MustRegisterRule(
      "search ServerInformation s register s where s.memory >= 128");
  int64_t ne_rule = MustRegisterRule(
      "search ServerInformation s register s where s.cpu != 600");
  int64_t eq_rule = MustRegisterRule(
      "search ServerInformation s register s where s.memory = 92");
  Result<FilterRunResult> result =
      RegisterDoc(MakeClusterDoc("c.rdf", "eu", 16, 92));
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->MatchesFor(le_rule), nullptr);
  EXPECT_EQ(*result->MatchesFor(le_rule),
            std::vector<std::string>{"c.rdf#infoA"});
  EXPECT_EQ(result->MatchesFor(ge_rule), nullptr);
  EXPECT_EQ(result->MatchesFor(ne_rule), nullptr);  // All cpus are 600.
  ASSERT_NE(result->MatchesFor(eq_rule), nullptr);
  EXPECT_EQ(*result->MatchesFor(eq_rule),
            std::vector<std::string>{"c.rdf#infoB"});
}

TEST_F(DeepFilterTest, NonEqualityJoinBetweenVariables) {
  // a strictly bigger than b: a non-equality join predicate, evaluated
  // by the per-member fallback path.
  int64_t rule = MustRegisterRule(
      "search ServerInformation a, ServerInformation b register a "
      "where a.memory > b.memory and b.cpu >= 600");
  Result<FilterRunResult> result =
      RegisterDoc(MakeClusterDoc("c.rdf", "eu", 92, 16));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->MatchesFor(rule), nullptr);
  EXPECT_EQ(*result->MatchesFor(rule),
            std::vector<std::string>{"c.rdf#infoA"});
}

TEST_F(DeepFilterTest, IncrementalAcrossDocumentsDeepChain) {
  // Register the cluster first, the node documents later: the deep join
  // must complete incrementally when the missing pieces arrive.
  int64_t rule = MustRegisterRule(
      "search Cluster k register k "
      "where k.node?.serverInformation.memory > 64");

  rdf::RdfDocument cluster_doc("k.rdf");
  rdf::Resource cluster("cluster", "Cluster");
  cluster.AddProperty("region", rdf::PropertyValue::Literal("eu"));
  cluster.AddProperty("node",
                      rdf::PropertyValue::ResourceRef("n.rdf#node"));
  ASSERT_TRUE(cluster_doc.AddResource(std::move(cluster)).ok());
  Result<FilterRunResult> first = RegisterDoc(cluster_doc);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->MatchesFor(rule), nullptr);

  rdf::RdfDocument node_doc("n.rdf");
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory", rdf::PropertyValue::Literal("128"));
  rdf::Resource node("node", "CycleProvider");
  node.AddProperty("serverHost", rdf::PropertyValue::Literal("n.example"));
  node.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef("n.rdf#info"));
  ASSERT_TRUE(node_doc.AddResource(std::move(info)).ok());
  ASSERT_TRUE(node_doc.AddResource(std::move(node)).ok());
  Result<FilterRunResult> second = RegisterDoc(node_doc);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_NE(second->MatchesFor(rule), nullptr);
  EXPECT_EQ(*second->MatchesFor(rule),
            std::vector<std::string>{"k.rdf#cluster"});
}

}  // namespace
}  // namespace mdv::filter
