#include "rdbms/transaction.h"

#include <gtest/gtest.h>

#include "rdbms/database.h"
#include "rdbms/sql.h"
#include "rdbms/table.h"

namespace mdv::rdbms {
namespace {

TableSchema PeopleSchema() {
  return TableSchema("people", {ColumnDef{"name", ColumnType::kString},
                                ColumnDef{"age", ColumnType::kInt64}});
}

class TransactionTest : public ::testing::Test {
 protected:
  TransactionTest() {
    table_ = *db_.CreateTable(PeopleSchema());
    Status st = table_->CreateIndex("age", IndexKind::kBTree);
    EXPECT_TRUE(st.ok());
    ada_ = *table_->Insert(Row{Value("ada"), Value(int64_t{36})});
    bob_ = *table_->Insert(Row{Value("bob"), Value(int64_t{25})});
  }

  size_t CountByAge(int64_t age) {
    return table_
        ->SelectRowIds({ScanCondition{1, CompareOp::kEq, Value(age)}})
        .size();
  }

  Database db_;
  Table* table_ = nullptr;
  RowId ada_ = kInvalidRowId;
  RowId bob_ = kInvalidRowId;
};

TEST_F(TransactionTest, CommitKeepsChanges) {
  ASSERT_TRUE(db_.BeginTransaction().ok());
  ASSERT_TRUE(table_->Insert(Row{Value("carol"), Value(int64_t{30})}).ok());
  ASSERT_TRUE(table_->Delete(bob_).ok());
  ASSERT_TRUE(db_.CommitTransaction().ok());
  EXPECT_EQ(table_->NumRows(), 2u);
  EXPECT_EQ(table_->Get(bob_), nullptr);
  EXPECT_EQ(CountByAge(30), 1u);
}

TEST_F(TransactionTest, RollbackRestoresRowsAndIndexes) {
  ASSERT_TRUE(db_.BeginTransaction().ok());
  ASSERT_TRUE(table_->Insert(Row{Value("carol"), Value(int64_t{30})}).ok());
  ASSERT_TRUE(table_->Delete(bob_).ok());
  ASSERT_TRUE(table_->Update(ada_, Row{Value("ada"), Value(int64_t{37})})
                  .ok());
  ASSERT_TRUE(db_.RollbackTransaction().ok());

  EXPECT_EQ(table_->NumRows(), 2u);
  // Bob is back under his original id with his original content.
  ASSERT_NE(table_->Get(bob_), nullptr);
  EXPECT_EQ((*table_->Get(bob_))[0].as_string(), "bob");
  // Ada's update was undone — also in the index.
  EXPECT_EQ(CountByAge(36), 1u);
  EXPECT_EQ(CountByAge(37), 0u);
  EXPECT_EQ(CountByAge(30), 0u);
}

TEST_F(TransactionTest, RollbackUndoesTruncate) {
  ASSERT_TRUE(db_.BeginTransaction().ok());
  table_->Truncate();
  EXPECT_EQ(table_->NumRows(), 0u);
  ASSERT_TRUE(db_.RollbackTransaction().ok());
  EXPECT_EQ(table_->NumRows(), 2u);
  EXPECT_EQ(CountByAge(36), 1u);
}

TEST_F(TransactionTest, RollbackDropsTablesCreatedInTransaction) {
  ASSERT_TRUE(db_.BeginTransaction().ok());
  Result<Table*> created =
      db_.CreateTable(TableSchema("scratch", {ColumnDef{"x"}}));
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE((*created)->Insert(Row{Value("a")}).ok());
  ASSERT_TRUE(db_.RollbackTransaction().ok());
  EXPECT_FALSE(db_.HasTable("scratch"));
}

TEST_F(TransactionTest, CommitKeepsTablesCreatedInTransaction) {
  ASSERT_TRUE(db_.BeginTransaction().ok());
  ASSERT_TRUE(db_.CreateTable(TableSchema("scratch", {ColumnDef{"x"}})).ok());
  ASSERT_TRUE(db_.CommitTransaction().ok());
  EXPECT_TRUE(db_.HasTable("scratch"));
}

TEST_F(TransactionTest, DropTableRejectedInsideTransaction) {
  ASSERT_TRUE(db_.BeginTransaction().ok());
  EXPECT_EQ(db_.DropTable("people").code(), StatusCode::kUnsupported);
  ASSERT_TRUE(db_.RollbackTransaction().ok());
  EXPECT_TRUE(db_.DropTable("people").ok());
}

TEST_F(TransactionTest, StateMachineGuards) {
  EXPECT_FALSE(db_.InTransaction());
  EXPECT_EQ(db_.CommitTransaction().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db_.RollbackTransaction().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(db_.BeginTransaction().ok());
  EXPECT_TRUE(db_.InTransaction());
  EXPECT_EQ(db_.BeginTransaction().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(db_.CommitTransaction().ok());
  EXPECT_FALSE(db_.InTransaction());
  // Reusable after commit.
  ASSERT_TRUE(db_.BeginTransaction().ok());
  ASSERT_TRUE(db_.RollbackTransaction().ok());
}

TEST_F(TransactionTest, EmptyTransactionIsANoop) {
  ASSERT_TRUE(db_.BeginTransaction().ok());
  ASSERT_TRUE(db_.RollbackTransaction().ok());
  EXPECT_EQ(table_->NumRows(), 2u);
}

TEST_F(TransactionTest, SqlDmlParticipates) {
  ASSERT_TRUE(db_.BeginTransaction().ok());
  ASSERT_TRUE(ExecuteSql(&db_, "DELETE FROM people WHERE age < 30").ok());
  ASSERT_TRUE(
      ExecuteSql(&db_, "UPDATE people SET age = 40 WHERE name = 'ada'").ok());
  EXPECT_EQ(table_->NumRows(), 1u);
  ASSERT_TRUE(db_.RollbackTransaction().ok());
  EXPECT_EQ(table_->NumRows(), 2u);
  EXPECT_EQ(CountByAge(36), 1u);
  EXPECT_EQ(CountByAge(25), 1u);
}

TEST_F(TransactionTest, SequentialTransactionsIndependent) {
  ASSERT_TRUE(db_.BeginTransaction().ok());
  ASSERT_TRUE(table_->Delete(ada_).ok());
  ASSERT_TRUE(db_.CommitTransaction().ok());
  ASSERT_TRUE(db_.BeginTransaction().ok());
  ASSERT_TRUE(table_->Delete(bob_).ok());
  ASSERT_TRUE(db_.RollbackTransaction().ok());
  // First transaction committed (ada gone), second rolled back (bob back).
  EXPECT_EQ(table_->Get(ada_), nullptr);
  EXPECT_NE(table_->Get(bob_), nullptr);
}

}  // namespace
}  // namespace mdv::rdbms
