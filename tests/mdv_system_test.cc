#include "mdv/system.h"

#include <gtest/gtest.h>

#include "rdf/parser.h"
#include "rdf/writer.h"

namespace mdv {
namespace {

rdf::RdfDocument MakeProviderDoc(const std::string& uri,
                                 const std::string& host_name, int memory) {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(memory)));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", rdf::PropertyValue::Literal(host_name));
  host.AddProperty("serverPort", rdf::PropertyValue::Literal("5874"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

class MdvSystemTest : public ::testing::Test {
 protected:
  MdvSystemTest() : system_(rdf::MakeObjectGlobeSchema()) {
    provider_ = system_.AddProvider();
    lmr_ = system_.AddRepository(provider_);
  }

  MdvSystem system_;
  MetadataProvider* provider_;
  LocalMetadataRepository* lmr_;
};

TEST_F(MdvSystemTest, SubscribeThenRegisterReplicatesMatch) {
  Result<pubsub::SubscriptionId> sub = lmr_->Subscribe(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de' "
      "and c.serverInformation.memory > 64");
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(lmr_->CacheSize(), 0u);

  ASSERT_TRUE(provider_
                  ->RegisterDocument(
                      MakeProviderDoc("d.rdf", "pirates.uni-passau.de", 92))
                  .ok());
  // The match and its strong closure arrive.
  EXPECT_EQ(lmr_->CacheSize(), 2u);
  const CacheEntry* host = lmr_->Find("d.rdf#host");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->matched_subscriptions.count(*sub), 1u);
  const CacheEntry* info = lmr_->Find("d.rdf#info");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->matched_subscriptions.empty());
  EXPECT_EQ(info->strong_referrers, 1);
}

TEST_F(MdvSystemTest, RegisterThenSubscribeSeedsCache) {
  ASSERT_TRUE(provider_
                  ->RegisterDocument(
                      MakeProviderDoc("d.rdf", "pirates.uni-passau.de", 92))
                  .ok());
  Result<pubsub::SubscriptionId> sub = lmr_->Subscribe(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(lmr_->CacheSize(), 2u);
  EXPECT_NE(lmr_->Find("d.rdf#host"), nullptr);
}

TEST_F(MdvSystemTest, NonMatchingMetadataStaysOut) {
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(
      provider_->RegisterDocument(MakeProviderDoc("d.rdf", "x", 32)).ok());
  EXPECT_EQ(lmr_->CacheSize(), 0u);
}

TEST_F(MdvSystemTest, UpdatePropagatesNewVersionToCache) {
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(
      provider_->RegisterDocument(MakeProviderDoc("d.rdf", "x", 92)).ok());
  ASSERT_EQ(lmr_->CacheSize(), 2u);

  // The info resource's memory changes but the match stays: the cached
  // copy must be refreshed.
  ASSERT_TRUE(
      provider_->UpdateDocument(MakeProviderDoc("d.rdf", "x", 128)).ok());
  const CacheEntry* info = lmr_->Find("d.rdf#info");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->resource.FindProperty("memory")->text(), "128");
}

TEST_F(MdvSystemTest, UpdateRemovingMatchEvictsViaGc) {
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(
      provider_->RegisterDocument(MakeProviderDoc("d.rdf", "x", 92)).ok());
  ASSERT_EQ(lmr_->CacheSize(), 2u);

  ASSERT_TRUE(
      provider_->UpdateDocument(MakeProviderDoc("d.rdf", "x", 32)).ok());
  // Host no longer matches; the GC also collects the strongly
  // referenced info resource.
  EXPECT_EQ(lmr_->CacheSize(), 0u);
  EXPECT_GE(lmr_->gc_evictions(), 2);
}

TEST_F(MdvSystemTest, ResourceStaysWhileAnotherRuleMatches) {
  Result<pubsub::SubscriptionId> memory_sub =
      lmr_->Subscribe("search CycleProvider c register c "
                      "where c.serverInformation.memory > 64");
  Result<pubsub::SubscriptionId> host_sub =
      lmr_->Subscribe("search CycleProvider c register c "
                      "where c.serverHost contains 'uni-passau.de'");
  ASSERT_TRUE(memory_sub.ok());
  ASSERT_TRUE(host_sub.ok());
  ASSERT_TRUE(provider_
                  ->RegisterDocument(
                      MakeProviderDoc("d.rdf", "pirates.uni-passau.de", 92))
                  .ok());
  const CacheEntry* host = lmr_->Find("d.rdf#host");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->matched_subscriptions.size(), 2u);

  // Lose only the memory match.
  ASSERT_TRUE(
      provider_
          ->UpdateDocument(MakeProviderDoc("d.rdf", "pirates.uni-passau.de", 32))
          .ok());
  host = lmr_->Find("d.rdf#host");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->matched_subscriptions.size(), 1u);
  EXPECT_EQ(host->matched_subscriptions.count(*host_sub), 1u);
}

TEST_F(MdvSystemTest, DocumentDeletionEvictsFromCache) {
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(
      provider_->RegisterDocument(MakeProviderDoc("d.rdf", "x", 92)).ok());
  ASSERT_EQ(lmr_->CacheSize(), 2u);
  ASSERT_TRUE(provider_->DeleteDocument("d.rdf").ok());
  EXPECT_EQ(lmr_->CacheSize(), 0u);
}

TEST_F(MdvSystemTest, UnsubscribeDropsCacheViaGc) {
  Result<pubsub::SubscriptionId> sub =
      lmr_->Subscribe("search CycleProvider c register c "
                      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(
      provider_->RegisterDocument(MakeProviderDoc("d.rdf", "x", 92)).ok());
  ASSERT_EQ(lmr_->CacheSize(), 2u);
  ASSERT_TRUE(lmr_->Unsubscribe(*sub).ok());
  EXPECT_EQ(lmr_->CacheSize(), 0u);
}

TEST_F(MdvSystemTest, QueriesRunAgainstLocalCacheOnly) {
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(provider_
                  ->RegisterDocument(
                      MakeProviderDoc("match.rdf", "a.uni-passau.de", 92))
                  .ok());
  ASSERT_TRUE(
      provider_->RegisterDocument(MakeProviderDoc("other.rdf", "b", 16))
          .ok());

  // Cached: only match.rdf. The query sees only the cache.
  Result<std::vector<QueryMatch>> result = lmr_->Query(
      "search CycleProvider c register c where c.serverPort = 5874");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].uri_reference, "match.rdf#host");
}

TEST_F(MdvSystemTest, QueryWithJoinOverCache) {
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c").ok());
  ASSERT_TRUE(provider_
                  ->RegisterDocument(
                      MakeProviderDoc("d.rdf", "pirates.uni-passau.de", 92))
                  .ok());
  Result<std::vector<QueryMatch>> result = lmr_->Query(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64 "
      "and c.serverHost contains 'passau'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
}

TEST_F(MdvSystemTest, LocalMetadataQueryableButNotPublished) {
  rdf::RdfDocument local = MakeProviderDoc("local.rdf", "private.lan", 92);
  ASSERT_TRUE(lmr_->RegisterLocalDocument(local).ok());
  EXPECT_EQ(lmr_->CacheSize(), 2u);
  EXPECT_TRUE(lmr_->Find("local.rdf#host")->local);
  // Not at the MDP:
  EXPECT_EQ(provider_->documents().size(), 0u);
  Result<std::vector<QueryMatch>> result = lmr_->Query(
      "search CycleProvider c register c "
      "where c.serverHost contains 'private'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST_F(MdvSystemTest, BackboneReplicationReachesAllProviders) {
  MetadataProvider* second = system_.AddProvider();
  LocalMetadataRepository* remote_lmr = system_.AddRepository(second);
  ASSERT_TRUE(remote_lmr
                  ->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  // Registration at the *first* provider reaches the second's LMR.
  ASSERT_TRUE(
      provider_->RegisterDocument(MakeProviderDoc("d.rdf", "x", 92)).ok());
  EXPECT_EQ(second->documents().size(), 1u);
  EXPECT_EQ(remote_lmr->CacheSize(), 2u);
}

TEST_F(MdvSystemTest, BrowseEvaluatesWithoutSubscription) {
  ASSERT_TRUE(
      provider_->RegisterDocument(MakeProviderDoc("d.rdf", "x", 92)).ok());
  Result<std::vector<std::string>> matches = provider_->Browse(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(*matches, std::vector<std::string>{"d.rdf#host"});
  // Browsing is transient: no rules stay registered.
  EXPECT_EQ(provider_->rule_store().NumAtomicRules(), 0u);
}

TEST_F(MdvSystemTest, NamedSubscriptionUsableAsExtension) {
  ASSERT_TRUE(lmr_->Subscribe(
                      "search CycleProvider c register c "
                      "where c.serverHost contains 'uni-passau.de'",
                      "PassauProviders")
                  .ok());
  Result<pubsub::SubscriptionId> narrowed = lmr_->Subscribe(
      "search PassauProviders p register p "
      "where p.serverInformation.memory > 64");
  ASSERT_TRUE(narrowed.ok()) << narrowed.status();
  ASSERT_TRUE(provider_
                  ->RegisterDocument(
                      MakeProviderDoc("d.rdf", "pirates.uni-passau.de", 92))
                  .ok());
  const CacheEntry* host = lmr_->Find("d.rdf#host");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->matched_subscriptions.size(), 2u);
}

TEST_F(MdvSystemTest, XmlRegistrationPath) {
  constexpr char xml[] = R"(<rdf:RDF>
    <og:CycleProvider rdf:ID="host">
      <og:serverHost>pirates.uni-passau.de</og:serverHost>
      <og:serverInformation>
        <og:ServerInformation rdf:ID="info">
          <og:memory>92</og:memory>
        </og:ServerInformation>
      </og:serverInformation>
    </og:CycleProvider>
  </rdf:RDF>)";
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(provider_->RegisterDocumentXml(xml, "doc.rdf").ok());
  EXPECT_NE(lmr_->Find("doc.rdf#host"), nullptr);
}

TEST_F(MdvSystemTest, SchemaViolationRejected) {
  rdf::RdfDocument doc("d.rdf");
  ASSERT_TRUE(doc.AddResource(rdf::Resource("x", "Bogus")).ok());
  EXPECT_EQ(provider_->RegisterDocument(doc).code(),
            StatusCode::kSchemaViolation);
}

}  // namespace
}  // namespace mdv
