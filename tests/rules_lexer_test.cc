#include "rules/lexer.h"

#include <gtest/gtest.h>

namespace mdv::rules {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, TokenizesExampleRule) {
  Result<std::vector<Token>> tokens = Tokenize(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de' "
      "and c.serverInformation.memory > 64");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kKeywordSearch, TokenKind::kIdentifier,
                TokenKind::kIdentifier, TokenKind::kKeywordRegister,
                TokenKind::kIdentifier, TokenKind::kKeywordWhere,
                TokenKind::kIdentifier, TokenKind::kDot,
                TokenKind::kIdentifier, TokenKind::kKeywordContains,
                TokenKind::kString, TokenKind::kKeywordAnd,
                TokenKind::kIdentifier, TokenKind::kDot,
                TokenKind::kIdentifier, TokenKind::kDot,
                TokenKind::kIdentifier, TokenKind::kGt, TokenKind::kNumber,
                TokenKind::kEnd}));
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  Result<std::vector<Token>> tokens = Tokenize("SEARCH X x REGISTER x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeywordSearch);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kKeywordRegister);
}

TEST(LexerTest, AllComparisonOperators) {
  Result<std::vector<Token>> tokens = Tokenize("= != < <= > >= ? . ,");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kEq, TokenKind::kNe, TokenKind::kLt,
                TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kQuestion, TokenKind::kDot, TokenKind::kComma,
                TokenKind::kEnd}));
}

TEST(LexerTest, NumbersIncludingNegativeAndDecimal) {
  Result<std::vector<Token>> tokens = Tokenize("64 -2 3.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].number, 64.0);
  EXPECT_EQ((*tokens)[1].number, -2.0);
  EXPECT_EQ((*tokens)[2].number, 3.5);
}

TEST(LexerTest, StringEscapes) {
  Result<std::vector<Token>> tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_EQ(Tokenize("'oops").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, BangWithoutEqualsFails) {
  EXPECT_EQ(Tokenize("a ! b").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_EQ(Tokenize("a $ b").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, IdentifiersMayCarryUriCharacters) {
  // URI-ish identifiers (with # and /) stay one token.
  Result<std::vector<Token>> tokens = Tokenize("rdf#subject a/b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "rdf#subject");
  EXPECT_EQ((*tokens)[1].text, "a/b");
}

// ---- Numeric-constant boundaries (from_chars semantics, no locale). -------

TEST(LexerTest, Int64BoundaryConstantsLex) {
  Result<std::vector<Token>> tokens =
      Tokenize("9223372036854775807 -9223372036854775808");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  ASSERT_EQ(tokens->size(), 3u);  // Two numbers plus the kEnd sentinel.
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[0].text, "9223372036854775807");
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 9223372036854775807.0);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, -9223372036854775808.0);
}

TEST(LexerTest, LeadingZerosAreDecimalNotOctal) {
  Result<std::vector<Token>> tokens = Tokenize("007 010");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 7.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 10.0);
}

TEST(LexerTest, NegativeDecimalsLexAsOneToken) {
  Result<std::vector<Token>> tokens = Tokenize("-0.5 -92.25");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // Two numbers plus the kEnd sentinel.
  EXPECT_DOUBLE_EQ((*tokens)[0].number, -0.5);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, -92.25);
}

TEST(LexerTest, OverflowingConstantIsAParseErrorNotGarbage) {
  // ~1e400 does not fit a double; from_chars reports out-of-range and
  // the lexer must surface that instead of clamping silently.
  std::string huge(400, '9');
  EXPECT_EQ(Tokenize(huge).status().code(), StatusCode::kParseError);
}

TEST(LexerTest, MultipleDotsAreMalformed) {
  EXPECT_EQ(Tokenize("1.2.3").status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace mdv::rules
