#include "rules/lexer.h"

#include <gtest/gtest.h>

namespace mdv::rules {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, TokenizesExampleRule) {
  Result<std::vector<Token>> tokens = Tokenize(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de' "
      "and c.serverInformation.memory > 64");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kKeywordSearch, TokenKind::kIdentifier,
                TokenKind::kIdentifier, TokenKind::kKeywordRegister,
                TokenKind::kIdentifier, TokenKind::kKeywordWhere,
                TokenKind::kIdentifier, TokenKind::kDot,
                TokenKind::kIdentifier, TokenKind::kKeywordContains,
                TokenKind::kString, TokenKind::kKeywordAnd,
                TokenKind::kIdentifier, TokenKind::kDot,
                TokenKind::kIdentifier, TokenKind::kDot,
                TokenKind::kIdentifier, TokenKind::kGt, TokenKind::kNumber,
                TokenKind::kEnd}));
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  Result<std::vector<Token>> tokens = Tokenize("SEARCH X x REGISTER x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeywordSearch);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kKeywordRegister);
}

TEST(LexerTest, AllComparisonOperators) {
  Result<std::vector<Token>> tokens = Tokenize("= != < <= > >= ? . ,");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kEq, TokenKind::kNe, TokenKind::kLt,
                TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kQuestion, TokenKind::kDot, TokenKind::kComma,
                TokenKind::kEnd}));
}

TEST(LexerTest, NumbersIncludingNegativeAndDecimal) {
  Result<std::vector<Token>> tokens = Tokenize("64 -2 3.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].number, 64.0);
  EXPECT_EQ((*tokens)[1].number, -2.0);
  EXPECT_EQ((*tokens)[2].number, 3.5);
}

TEST(LexerTest, StringEscapes) {
  Result<std::vector<Token>> tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_EQ(Tokenize("'oops").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, BangWithoutEqualsFails) {
  EXPECT_EQ(Tokenize("a ! b").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_EQ(Tokenize("a $ b").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, IdentifiersMayCarryUriCharacters) {
  // URI-ish identifiers (with # and /) stay one token.
  Result<std::vector<Token>> tokens = Tokenize("rdf#subject a/b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "rdf#subject");
  EXPECT_EQ((*tokens)[1].text, "a/b");
}

}  // namespace
}  // namespace mdv::rules
