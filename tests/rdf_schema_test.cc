#include "rdf/schema.h"

#include <gtest/gtest.h>

namespace mdv::rdf {
namespace {

TEST(SchemaTest, ObjectGlobeSchemaShape) {
  RdfSchema schema = MakeObjectGlobeSchema();
  EXPECT_TRUE(schema.HasClass("CycleProvider"));
  EXPECT_TRUE(schema.HasClass("ServerInformation"));
  const PropertyDef* ref =
      schema.FindProperty("CycleProvider", "serverInformation");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->kind, PropertyKind::kReference);
  EXPECT_EQ(ref->referenced_class, "ServerInformation");
  EXPECT_EQ(ref->strength, RefStrength::kStrong);
  const PropertyDef* mem = schema.FindProperty("ServerInformation", "memory");
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->kind, PropertyKind::kLiteral);
}

TEST(SchemaTest, DuplicateClassRejected) {
  RdfSchema schema;
  ASSERT_TRUE(schema.AddClass(ClassBuilder("A").Literal("p").Build()).ok());
  EXPECT_EQ(schema.AddClass(ClassBuilder("A").Build()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.AddClass(ClassBuilder("").Build()).code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ResolvePathWalksReferences) {
  RdfSchema schema = MakeObjectGlobeSchema();
  Result<ResolvedPath> path =
      schema.ResolvePath("CycleProvider", {"serverInformation", "memory"});
  ASSERT_TRUE(path.ok()) << path.status();
  EXPECT_EQ(path->classes,
            (std::vector<std::string>{"CycleProvider", "ServerInformation"}));
  EXPECT_EQ(path->final_property().name, "memory");
}

TEST(SchemaTest, ResolvePathRejectsLiteralMidway) {
  RdfSchema schema = MakeObjectGlobeSchema();
  EXPECT_EQ(
      schema.ResolvePath("CycleProvider", {"serverHost", "memory"})
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.ResolvePath("CycleProvider", {"nope"}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(schema.ResolvePath("Nope", {"x"}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(schema.ResolvePath("CycleProvider", {}).status().code(),
            StatusCode::kInvalidArgument);
}

RdfDocument ValidDocument() {
  RdfDocument doc("d.rdf");
  Resource info("info", "ServerInformation");
  info.AddProperty("memory", PropertyValue::Literal("92"));
  Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", PropertyValue::Literal("x"));
  host.AddProperty("serverInformation",
                   PropertyValue::ResourceRef("d.rdf#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

TEST(SchemaValidationTest, AcceptsValidDocument) {
  RdfSchema schema = MakeObjectGlobeSchema();
  EXPECT_TRUE(schema.ValidateDocument(ValidDocument()).ok());
}

TEST(SchemaValidationTest, RejectsUnknownClass) {
  RdfSchema schema = MakeObjectGlobeSchema();
  RdfDocument doc("d.rdf");
  ASSERT_TRUE(doc.AddResource(Resource("x", "Mystery")).ok());
  EXPECT_EQ(schema.ValidateDocument(doc).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaValidationTest, RejectsUndeclaredProperty) {
  RdfSchema schema = MakeObjectGlobeSchema();
  RdfDocument doc("d.rdf");
  Resource r("x", "CycleProvider");
  r.AddProperty("bogus", PropertyValue::Literal("1"));
  ASSERT_TRUE(doc.AddResource(std::move(r)).ok());
  EXPECT_EQ(schema.ValidateDocument(doc).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaValidationTest, RejectsRepeatedSingleValuedProperty) {
  RdfSchema schema = MakeObjectGlobeSchema();
  RdfDocument doc("d.rdf");
  Resource r("x", "CycleProvider");
  r.AddProperty("serverHost", PropertyValue::Literal("a"));
  r.AddProperty("serverHost", PropertyValue::Literal("b"));
  ASSERT_TRUE(doc.AddResource(std::move(r)).ok());
  EXPECT_EQ(schema.ValidateDocument(doc).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaValidationTest, SetValuedPropertyMayRepeat) {
  RdfSchema schema;
  ASSERT_TRUE(
      schema.AddClass(ClassBuilder("C").Literal("tags", true).Build()).ok());
  RdfDocument doc("d.rdf");
  Resource r("x", "C");
  r.AddProperty("tags", PropertyValue::Literal("a"));
  r.AddProperty("tags", PropertyValue::Literal("b"));
  ASSERT_TRUE(doc.AddResource(std::move(r)).ok());
  EXPECT_TRUE(schema.ValidateDocument(doc).ok());
}

TEST(SchemaValidationTest, RejectsKindMismatch) {
  RdfSchema schema = MakeObjectGlobeSchema();
  {
    RdfDocument doc("d.rdf");
    Resource r("x", "CycleProvider");
    r.AddProperty("serverInformation", PropertyValue::Literal("not a ref"));
    ASSERT_TRUE(doc.AddResource(std::move(r)).ok());
    EXPECT_EQ(schema.ValidateDocument(doc).code(),
              StatusCode::kSchemaViolation);
  }
  {
    RdfDocument doc("d.rdf");
    Resource r("x", "CycleProvider");
    r.AddProperty("serverHost", PropertyValue::ResourceRef("d.rdf#y"));
    ASSERT_TRUE(doc.AddResource(std::move(r)).ok());
    EXPECT_EQ(schema.ValidateDocument(doc).code(),
              StatusCode::kSchemaViolation);
  }
}

}  // namespace
}  // namespace mdv::rdf
