// MDP snapshot persistence: a provider saved and restored must keep its
// documents, rule base, materialized filter state and subscriptions, and
// continue filtering/publishing seamlessly.

#include <gtest/gtest.h>

#include <sstream>

#include "mdv/system.h"

namespace mdv {
namespace {

rdf::RdfDocument MakeDoc(const std::string& uri, int memory) {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(memory)));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost",
                   rdf::PropertyValue::Literal("x.uni-passau.de"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

TEST(SnapshotTest, RoundTripsDocumentsRulesAndSubscriptions) {
  MdvSystem system(rdf::MakeObjectGlobeSchema());
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* lmr = system.AddRepository(provider);
  Result<pubsub::SubscriptionId> sub =
      lmr->Subscribe("search CycleProvider c register c "
                     "where c.serverInformation.memory > 64",
                     "BigProviders");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(provider->RegisterDocument(MakeDoc("a.rdf", 92)).ok());
  ASSERT_TRUE(provider->RegisterDocument(MakeDoc("b.rdf", 16)).ok());

  std::stringstream snapshot;
  ASSERT_TRUE(provider->SaveSnapshot(snapshot).ok());

  // Restore into a *fresh* provider on the same network.
  MetadataProvider* restored = system.AddProvider();
  ASSERT_TRUE(restored->LoadSnapshot(snapshot).ok());

  EXPECT_EQ(restored->documents().size(), 2u);
  EXPECT_EQ(restored->rule_store().NumAtomicRules(),
            provider->rule_store().NumAtomicRules());
  EXPECT_EQ(restored->subscriptions().size(), 1u);
  const pubsub::Subscription* restored_sub =
      restored->subscriptions().Find(*sub);
  ASSERT_NE(restored_sub, nullptr);
  EXPECT_EQ(restored_sub->lmr, lmr->id());
  EXPECT_EQ(restored_sub->name, "BigProviders");
  EXPECT_EQ(restored_sub->type, "CycleProvider");

  // The restored provider keeps filtering: a new matching document is
  // published to the (still attached) LMR.
  size_t before = lmr->CacheSize();
  ASSERT_TRUE(restored->RegisterDocument(MakeDoc("c.rdf", 128)).ok());
  EXPECT_EQ(lmr->CacheSize(), before + 2);

  // Materialized state survived: re-registering the original document at
  // the restored provider is rejected (it is already known).
  EXPECT_EQ(restored->RegisterDocument(MakeDoc("a.rdf", 92)).code(),
            StatusCode::kAlreadyExists);
}

TEST(SnapshotTest, RestoredProviderServesSnapshots) {
  MdvSystem system(rdf::MakeObjectGlobeSchema());
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* lmr = system.AddRepository(provider);
  Result<pubsub::SubscriptionId> sub =
      lmr->Subscribe("search CycleProvider c register c "
                     "where c.serverInformation.memory > 64");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(provider->RegisterDocument(MakeDoc("a.rdf", 92)).ok());

  std::stringstream snapshot;
  ASSERT_TRUE(provider->SaveSnapshot(snapshot).ok());
  MetadataProvider* restored = system.AddProvider();
  ASSERT_TRUE(restored->LoadSnapshot(snapshot).ok());

  // The TTL pull path works against the restored state.
  Result<pubsub::Notification> pulled =
      restored->SnapshotSubscription(*sub);
  ASSERT_TRUE(pulled.ok()) << pulled.status();
  ASSERT_EQ(pulled->resources.size(), 2u);
  EXPECT_EQ(pulled->resources[0].uri_reference, "a.rdf#host");
}

TEST(SnapshotTest, LoadErrors) {
  MdvSystem system(rdf::MakeObjectGlobeSchema());
  MetadataProvider* provider = system.AddProvider();
  {
    std::stringstream empty;
    EXPECT_EQ(provider->LoadSnapshot(empty).code(), StatusCode::kParseError);
  }
  {
    std::stringstream bad("MDVSNAP1\nDATABASE\nGARBAGE\n");
    EXPECT_EQ(provider->LoadSnapshot(bad).code(), StatusCode::kParseError);
  }
  {
    std::stringstream truncated(
        "MDVSNAP1\nDATABASE\nMDVDB1\nEND\nDOCUMENTS 1\nDOC a.rdf 10\nshort");
    EXPECT_EQ(provider->LoadSnapshot(truncated).code(),
              StatusCode::kParseError);
  }
}

TEST(SnapshotTest, EmptyProviderRoundTrips) {
  MdvSystem system(rdf::MakeObjectGlobeSchema());
  MetadataProvider* provider = system.AddProvider();
  std::stringstream snapshot;
  ASSERT_TRUE(provider->SaveSnapshot(snapshot).ok());
  MetadataProvider* restored = system.AddProvider();
  ASSERT_TRUE(restored->LoadSnapshot(snapshot).ok());
  EXPECT_EQ(restored->documents().size(), 0u);
  EXPECT_EQ(restored->subscriptions().size(), 0u);
}

}  // namespace
}  // namespace mdv
