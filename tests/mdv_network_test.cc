#include "mdv/network.h"

#include <gtest/gtest.h>

#include "mdv/document_store.h"

namespace mdv {
namespace {

pubsub::Notification MakeNote(pubsub::LmrId lmr, size_t resources) {
  pubsub::Notification note;
  note.kind = pubsub::NotificationKind::kInsert;
  note.lmr = lmr;
  note.subscription = 1;
  for (size_t i = 0; i < resources; ++i) {
    note.resources.push_back(pubsub::TransmittedResource{
        "d.rdf#r" + std::to_string(i), rdf::Resource(), false});
  }
  return note;
}

TEST(NetworkTest, DeliversToAttachedHandler) {
  Network network;
  int delivered = 0;
  network.Attach(7, [&](const pubsub::Notification& note) {
    ++delivered;
    EXPECT_EQ(note.lmr, 7);
  });
  network.Deliver(MakeNote(7, 3));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(network.stats().messages, 1);
  EXPECT_EQ(network.stats().resources_shipped, 3);
  EXPECT_EQ(network.stats().undeliverable, 0);
}

TEST(NetworkTest, CountsUndeliverable) {
  Network network;
  network.Deliver(MakeNote(99, 1));
  EXPECT_EQ(network.stats().messages, 1);
  EXPECT_EQ(network.stats().undeliverable, 1);
}

TEST(NetworkTest, DetachStopsDelivery) {
  Network network;
  int delivered = 0;
  network.Attach(1, [&](const pubsub::Notification&) { ++delivered; });
  network.Deliver(MakeNote(1, 1));
  network.Detach(1);
  network.Deliver(MakeNote(1, 1));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(network.stats().undeliverable, 1);
}

TEST(NetworkTest, DeliverAllAndReset) {
  Network network;
  int delivered = 0;
  network.Attach(1, [&](const pubsub::Notification&) { ++delivered; });
  network.Attach(2, [&](const pubsub::Notification&) { ++delivered; });
  network.DeliverAll({MakeNote(1, 2), MakeNote(2, 5)});
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(network.stats().resources_shipped, 7);
  network.ResetStats();
  EXPECT_EQ(network.stats().messages, 0);
}

TEST(DocumentStoreTest, AddReplaceRemove) {
  DocumentStore store;
  rdf::RdfDocument doc("a.rdf");
  rdf::Resource r("x", "C");
  r.AddProperty("p", rdf::PropertyValue::Literal("1"));
  ASSERT_TRUE(doc.AddResource(std::move(r)).ok());

  ASSERT_TRUE(store.Add(doc).ok());
  EXPECT_EQ(store.Add(doc).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.Find("a.rdf"), nullptr);
  EXPECT_EQ(store.Find("nope"), nullptr);

  const rdf::Resource* res = store.FindResource("a.rdf#x");
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(res->FindProperty("p")->text(), "1");
  EXPECT_EQ(store.FindResource("a.rdf#nope"), nullptr);
  EXPECT_EQ(store.FindResource("nope#x"), nullptr);

  rdf::RdfDocument replacement("a.rdf");
  ASSERT_TRUE(store.Replace(replacement).ok());
  EXPECT_EQ(store.FindResource("a.rdf#x"), nullptr);
  EXPECT_EQ(store.Replace(rdf::RdfDocument("b.rdf")).code(),
            StatusCode::kNotFound);

  EXPECT_EQ(store.DocumentUris(), std::vector<std::string>{"a.rdf"});
  ASSERT_TRUE(store.Remove("a.rdf").ok());
  EXPECT_EQ(store.Remove("a.rdf").code(), StatusCode::kNotFound);
  EXPECT_EQ(store.size(), 0u);
}

TEST(DocumentStoreTest, RejectsEmptyUri) {
  DocumentStore store;
  EXPECT_EQ(store.Add(rdf::RdfDocument()).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mdv
