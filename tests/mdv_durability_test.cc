// Crash recovery of the durability subsystem: a killed-and-restarted
// MDP or LMR must replay its WAL (snapshot + log suffix) back to an
// identical state, and a restarted LMR must neither lose nor re-apply
// notifications (the ReliableLink dedup state is part of its journal).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mdv/lmr.h"
#include "mdv/metadata_provider.h"
#include "mdv/network.h"
#include "mdv/system.h"
#include "mdv/wal_records.h"
#include "net/wire.h"
#include "rdf/parser.h"
#include "wal/log.h"
#include "wal/record.h"

namespace mdv {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("mdv_durability_" + name);
  fs::remove_all(dir);
  return dir.string();
}

rdf::RdfDocument MakeDoc(const std::string& uri, int memory) {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(memory)));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", rdf::PropertyValue::Literal("x.example"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

constexpr const char* kBigRule =
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64";

/// Canonical cache dump without subscription ids, so caches fed by
/// *different* subscriptions to the same rule compare equal.
std::string DumpCacheContents(const LocalMetadataRepository& lmr) {
  std::ostringstream out;
  for (const std::string& uri : lmr.CachedUris()) {
    const CacheEntry* entry = lmr.Find(uri);
    out << uri << "|" << entry->resource.class_name();
    std::vector<std::string> props;
    for (const rdf::Property& prop : entry->resource.properties()) {
      props.push_back(prop.name + "=" + prop.value.text());
    }
    std::sort(props.begin(), props.end());
    for (const std::string& prop : props) out << "|" << prop;
    out << "|sr=" << entry->strong_referrers << "|local=" << entry->local
        << "\n";
  }
  return out.str();
}

// ---- MDP recovery ----------------------------------------------------

TEST(MdpDurabilityTest, RecoversIdenticalStateFromLogReplay) {
  const std::string dir = TestDir("mdp_replay");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  wal::WalOptions options;
  options.dir = dir;

  Result<pubsub::SubscriptionId> sub = Status::Internal("not yet run");
  {
    MetadataProvider provider(&schema, &network);
    ASSERT_TRUE(provider.EnableDurability(options).ok());
    EXPECT_TRUE(provider.durable());
    sub = provider.Subscribe(7, kBigRule, "BigProviders");
    ASSERT_TRUE(sub.ok()) << sub.status();
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("a.rdf", 92)).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("b.rdf", 16)).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("c.rdf", 128)).ok());
    ASSERT_TRUE(provider.UpdateDocument(MakeDoc("b.rdf", 80)).ok());
    ASSERT_TRUE(provider.DeleteDocument("c.rdf").ok());
  }  // "Crash": destroyed without checkpoint; only the log survives.

  MetadataProvider revived(&schema, &network);
  ASSERT_TRUE(revived.EnableDurability(options).ok());
  EXPECT_FALSE(revived.recovery_info().fresh);
  EXPECT_EQ(revived.documents().size(), 2u);
  EXPECT_EQ(revived.subscriptions().size(), 1u);
  const pubsub::Subscription* restored = revived.subscriptions().Find(*sub);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->lmr, 7);
  EXPECT_EQ(restored->name, "BigProviders");
  // Materialized matches replayed: a and (updated) b both match now.
  Result<std::vector<std::string>> matches = revived.Browse(kBigRule);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(matches->size(), 2u);
  // Replayed state keeps rejecting duplicates and keeps filtering.
  EXPECT_EQ(revived.RegisterDocument(MakeDoc("a.rdf", 92)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(revived.RegisterDocument(MakeDoc("d.rdf", 256)).ok());
  matches = revived.Browse(kBigRule);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 3u);
}

TEST(MdpDurabilityTest, CheckpointCompactsAndRecovers) {
  const std::string dir = TestDir("mdp_checkpoint");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  wal::WalOptions options;
  options.dir = dir;
  {
    MetadataProvider provider(&schema, &network);
    ASSERT_TRUE(provider.EnableDurability(options).ok());
    ASSERT_TRUE(provider.Subscribe(7, kBigRule).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("a.rdf", 92)).ok());
    ASSERT_TRUE(provider.Checkpoint().ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("b.rdf", 70)).ok());
  }
  MetadataProvider revived(&schema, &network);
  ASSERT_TRUE(revived.EnableDurability(options).ok());
  const wal::RecoveryInfo rec = revived.recovery_info();
  EXPECT_FALSE(rec.snapshot.empty());
  EXPECT_EQ(rec.records.size(), 1u);  // Only the post-checkpoint register.
  EXPECT_EQ(revived.documents().size(), 2u);
  Result<std::vector<std::string>> matches = revived.Browse(kBigRule);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);
}

TEST(MdpDurabilityTest, AutoCheckpointEveryNAppends) {
  const std::string dir = TestDir("mdp_autock");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  wal::WalOptions options;
  options.dir = dir;
  options.checkpoint_every = 3;
  {
    MetadataProvider provider(&schema, &network);
    ASSERT_TRUE(provider.EnableDurability(options).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          provider.RegisterDocument(MakeDoc("d" + std::to_string(i), 92))
              .ok());
    }
  }
  MetadataProvider revived(&schema, &network);
  ASSERT_TRUE(revived.EnableDurability(options).ok());
  const wal::RecoveryInfo rec = revived.recovery_info();
  EXPECT_FALSE(rec.snapshot.empty());
  EXPECT_LT(rec.records.size(), 5u);
  EXPECT_EQ(revived.documents().size(), 5u);
}

TEST(MdpDurabilityTest, TornTailRecordIsDroppedCleanly) {
  const std::string dir = TestDir("mdp_torn");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  wal::WalOptions options;
  options.dir = dir;
  {
    MetadataProvider provider(&schema, &network);
    ASSERT_TRUE(provider.EnableDurability(options).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("a.rdf", 92)).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("b.rdf", 70)).ok());
  }
  // Tear the final record, as a crash mid-append would.
  const std::string seg = dir + "/" + wal::SegmentFileName(1);
  std::ifstream in(seg, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(seg, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() - 7);

  MetadataProvider revived(&schema, &network);
  ASSERT_TRUE(revived.EnableDurability(options).ok());
  EXPECT_GT(revived.recovery_info().truncated_tail_bytes, 0u);
  // The torn register of b.rdf is gone; a.rdf survived; and the journal
  // accepts new appends at the repaired boundary.
  EXPECT_EQ(revived.documents().size(), 1u);
  ASSERT_TRUE(revived.RegisterDocument(MakeDoc("b.rdf", 70)).ok());
  EXPECT_EQ(revived.documents().size(), 2u);
}

TEST(MdpDurabilityTest, CorruptSnapshotFailsCleanly) {
  const std::string dir = TestDir("mdp_badsnap");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  wal::WalOptions options;
  options.dir = dir;
  {
    MetadataProvider provider(&schema, &network);
    ASSERT_TRUE(provider.EnableDurability(options).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("a.rdf", 92)).ok());
    ASSERT_TRUE(provider.Checkpoint().ok());
  }
  // Chop the referenced snapshot mid-structure (disk corruption; the
  // checkpoint itself installs atomically): recovery must come back as
  // a Status via the hardened load path, never a crash.
  const std::string snap = dir + "/" + wal::SnapshotFileName(1);
  std::ifstream in(snap, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 20u);
  std::ofstream(snap, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);

  MetadataProvider revived(&schema, &network);
  EXPECT_FALSE(revived.EnableDurability(options).ok());
  EXPECT_FALSE(revived.durable());
}

TEST(MdpDurabilityTest, ManifestPinsShardCount) {
  const std::string dir = TestDir("mdp_shards");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  wal::WalOptions options;
  options.dir = dir;
  {
    MetadataProvider provider(&schema, &network);
    ASSERT_TRUE(provider.EnableDurability(options).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("a.rdf", 92)).ok());
  }
  filter::RuleStoreOptions sharded;
  sharded.num_shards = 4;
  MetadataProvider mismatched(&schema, &network, sharded);
  EXPECT_EQ(mismatched.EnableDurability(options).code(),
            StatusCode::kInvalidArgument);
}

TEST(MdpDurabilityTest, CrashBeforeDeliverConvergesViaRefresh) {
  // The documented durability gap: the MDP journals before it sends, so
  // a crash between the two loses the send. The journal still has the
  // op — after restart the MDP state includes it and a Refresh() pulls
  // the LMR level again.
  const std::string dir = TestDir("mdp_undelivered");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  wal::WalOptions options;
  options.dir = dir;
  {
    // No LMR attached: every notification of this incarnation is
    // undeliverable — observably the same as a crash pre-send.
    MetadataProvider provider(&schema, &network);
    ASSERT_TRUE(provider.EnableDurability(options).ok());
    ASSERT_TRUE(provider.Subscribe(1, kBigRule).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("a.rdf", 92)).ok());
  }
  MetadataProvider revived(&schema, &network);
  ASSERT_TRUE(revived.EnableDurability(options).ok());
  LocalMetadataRepository lmr(1, &schema, &revived, &network);
  EXPECT_EQ(lmr.CacheSize(), 0u);  // The insert never arrived.
  // Adopt the recovered subscription, then repair by pulling.
  Result<std::vector<QueryMatch>> rows = lmr.Query(kBigRule);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  ASSERT_TRUE(revived.SnapshotSubscription(1).ok());
  // Refresh needs the LMR to know its subscription id; replaying the
  // MDP registry told us it is subscription 1 of LMR 1.
  // (An LMR with its own journal recovers the id itself — see the LMR
  // tests below; this one is volatile.)
  pubsub::Notification snapshot = *revived.SnapshotSubscription(1);
  lmr.ApplyNotification(snapshot);
  EXPECT_EQ(lmr.CacheSize(), 2u);
}

// ---- LMR recovery (synchronous network) ------------------------------

TEST(LmrDurabilityTest, SyncModeRoundTripsCacheAndSubscriptions) {
  const std::string dir = TestDir("lmr_sync");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  MetadataProvider provider(&schema, &network);
  wal::WalOptions options;
  options.dir = dir;

  std::string before;
  {
    Result<std::unique_ptr<LocalMetadataRepository>> lmr =
        LocalMetadataRepository::OpenDurable(7, &schema, &provider, &network,
                                             options);
    ASSERT_TRUE(lmr.ok()) << lmr.status();
    EXPECT_TRUE((*lmr)->durable());
    ASSERT_TRUE((*lmr)->Subscribe(kBigRule).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("a.rdf", 92)).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("b.rdf", 16)).ok());
    rdf::RdfDocument local("local.rdf");
    rdf::Resource note("note", "ServerInformation");
    note.AddProperty("memory", rdf::PropertyValue::Literal("1"));
    ASSERT_TRUE(local.AddResource(std::move(note)).ok());
    ASSERT_TRUE((*lmr)->RegisterLocalDocument(local).ok());
    EXPECT_GT((*lmr)->CacheSize(), 0u);
    before = DumpCacheContents(**lmr);
  }  // Crash: no checkpoint, pure log replay.

  Result<std::unique_ptr<LocalMetadataRepository>> revived =
      LocalMetadataRepository::OpenDurable(7, &schema, &provider, &network,
                                           options);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ(DumpCacheContents(**revived), before);
  ASSERT_TRUE((*revived)->AuditCacheInvariants().ok());
  // The revived LMR keeps receiving pushes (and journaling them).
  ASSERT_TRUE(provider.RegisterDocument(MakeDoc("c.rdf", 128)).ok());
  EXPECT_NE(DumpCacheContents(**revived), before);
}

TEST(LmrDurabilityTest, SyncModeCheckpointCompactsLog) {
  const std::string dir = TestDir("lmr_ck");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  MetadataProvider provider(&schema, &network);
  wal::WalOptions options;
  options.dir = dir;
  std::string before;
  {
    Result<std::unique_ptr<LocalMetadataRepository>> lmr =
        LocalMetadataRepository::OpenDurable(7, &schema, &provider, &network,
                                             options);
    ASSERT_TRUE(lmr.ok());
    ASSERT_TRUE((*lmr)->Subscribe(kBigRule).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("a.rdf", 92)).ok());
    ASSERT_TRUE((*lmr)->Checkpoint().ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("b.rdf", 70)).ok());
    before = DumpCacheContents(**lmr);
  }
  Result<std::unique_ptr<LocalMetadataRepository>> revived =
      LocalMetadataRepository::OpenDurable(7, &schema, &provider, &network,
                                           options);
  ASSERT_TRUE(revived.ok()) << revived.status();
  const wal::RecoveryInfo rec = (*revived)->recovery_info();
  EXPECT_FALSE(rec.snapshot.empty());
  EXPECT_EQ(rec.records.size(), 1u);  // One post-checkpoint apply.
  EXPECT_EQ(DumpCacheContents(**revived), before);
  ASSERT_TRUE((*revived)->AuditCacheInvariants().ok());
}

TEST(LmrDurabilityTest, UnsubscribeSurvivesRestart) {
  const std::string dir = TestDir("lmr_unsub");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network;
  MetadataProvider provider(&schema, &network);
  wal::WalOptions options;
  options.dir = dir;
  {
    Result<std::unique_ptr<LocalMetadataRepository>> lmr =
        LocalMetadataRepository::OpenDurable(7, &schema, &provider, &network,
                                             options);
    ASSERT_TRUE(lmr.ok());
    Result<pubsub::SubscriptionId> sub = (*lmr)->Subscribe(kBigRule);
    ASSERT_TRUE(sub.ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("a.rdf", 92)).ok());
    ASSERT_TRUE((*lmr)->Unsubscribe(*sub).ok());
    EXPECT_EQ((*lmr)->CacheSize(), 0u);  // GC evicted the matches.
  }
  Result<std::unique_ptr<LocalMetadataRepository>> revived =
      LocalMetadataRepository::OpenDurable(7, &schema, &provider, &network,
                                           options);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ((*revived)->CacheSize(), 0u);
  ASSERT_TRUE((*revived)->AuditCacheInvariants().ok());
}

// ---- LMR recovery (asynchronous network): the acceptance criterion ---

TEST(LmrDurabilityTest, AsyncKillRestartLosesAndDuplicatesNothing) {
  const std::string dir = TestDir("lmr_async");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  NetworkOptions net_options;
  net_options.asynchronous = true;
  Network network(net_options);
  MetadataProvider provider(&schema, &network);
  wal::WalOptions options;
  options.dir = dir;

  // Reference: a volatile LMR that never crashes, subscribed to the
  // same rule. Its converged cache is the ground truth.
  LocalMetadataRepository reference(8, &schema, &provider, &network);
  ASSERT_TRUE(reference.Subscribe(kBigRule).ok());

  {
    Result<std::unique_ptr<LocalMetadataRepository>> lmr =
        LocalMetadataRepository::OpenDurable(7, &schema, &provider, &network,
                                             options);
    ASSERT_TRUE(lmr.ok()) << lmr.status();
    ASSERT_TRUE((*lmr)->Subscribe(kBigRule).ok());
    ASSERT_TRUE(network.WaitQuiescent());
    // Publish a burst and kill the LMR mid-flight — no WaitQuiescent, so
    // unacked frames are still in retransmit when the LMR dies.
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          provider
              .RegisterDocument(MakeDoc("doc" + std::to_string(i), 70 + i))
              .ok());
    }
  }  // kill -9: destructor detaches; acked-but-unapplied cannot exist
     // (journal-before-ack), unacked frames keep retransmitting.

  Result<std::unique_ptr<LocalMetadataRepository>> revived =
      LocalMetadataRepository::OpenDurable(7, &schema, &provider, &network,
                                           options);
  ASSERT_TRUE(revived.ok()) << revived.status();
  ASSERT_TRUE(network.WaitQuiescent());

  // No loss: the revived cache equals the never-crashed reference.
  EXPECT_EQ(DumpCacheContents(**revived), DumpCacheContents(reference));
  EXPECT_EQ((*revived)->CacheSize(), 24u);  // 12 hosts + 12 strong infos.
  ASSERT_TRUE((*revived)->AuditCacheInvariants().ok());

  // No duplicates: every journaled (sender, sequence) pair is unique —
  // a frame that was journaled (hence possibly acked) is never
  // journaled or applied again after the restart.
  (*revived).reset();  // Close the journal before reading it.
  wal::WalOptions ro = options;
  ro.read_only = true;
  wal::Manifest meta;
  meta.kind = "lmr";
  Result<std::unique_ptr<wal::Journal>> journal = wal::Journal::Open(ro, meta);
  ASSERT_TRUE(journal.ok()) << journal.status();
  std::set<std::pair<uint64_t, uint64_t>> seen;
  size_t applies = 0;
  for (const wal::WalRecord& record : (*journal)->recovery().records) {
    if (record.type != kWalLmrApply) continue;
    ++applies;
    Result<net::DecodedFrame> frame = net::DecodeFrame(record.payload);
    ASSERT_TRUE(frame.ok());
    EXPECT_TRUE(
        seen.emplace(frame->notify.sender, frame->notify.sequence).second)
        << "duplicate journaled apply: sender " << frame->notify.sender
        << " seq " << frame->notify.sequence;
  }
  EXPECT_EQ(applies, seen.size());
  EXPECT_GE(applies, 12u);  // Initial match + one per matching register.
}

TEST(LmrDurabilityTest, AsyncFlowStateRoundTripsThroughCheckpoint) {
  const std::string dir = TestDir("lmr_flow");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  NetworkOptions net_options;
  net_options.asynchronous = true;
  Network network(net_options);
  MetadataProvider provider(&schema, &network);
  wal::WalOptions options;
  options.dir = dir;

  std::vector<net::FlowRestore> before;
  {
    Result<std::unique_ptr<LocalMetadataRepository>> lmr =
        LocalMetadataRepository::OpenDurable(7, &schema, &provider, &network,
                                             options);
    ASSERT_TRUE(lmr.ok());
    ASSERT_TRUE((*lmr)->Subscribe(kBigRule).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("a.rdf", 92)).ok());
    ASSERT_TRUE(provider.RegisterDocument(MakeDoc("b.rdf", 80)).ok());
    ASSERT_TRUE(network.WaitQuiescent());
    before = network.ReceiverFlowState(7);
    ASSERT_TRUE((*lmr)->Checkpoint().ok());
  }
  Result<std::unique_ptr<LocalMetadataRepository>> revived =
      LocalMetadataRepository::OpenDurable(7, &schema, &provider, &network,
                                           options);
  ASSERT_TRUE(revived.ok()) << revived.status();
  ASSERT_TRUE(network.WaitQuiescent());
  std::vector<net::FlowRestore> after = network.ReceiverFlowState(7);
  ASSERT_EQ(after.size(), before.size());
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0].sender, before[0].sender);
  EXPECT_EQ(after[0].applied_through, before[0].applied_through);
  EXPECT_TRUE(after[0].holdback.empty());
  // The restored watermark dedups retransmits but admits new sequences:
  // a fresh publish still lands.
  const std::string dump_before = DumpCacheContents(**revived);
  ASSERT_TRUE(provider.RegisterDocument(MakeDoc("c.rdf", 128)).ok());
  ASSERT_TRUE(network.WaitQuiescent());
  EXPECT_NE(DumpCacheContents(**revived), dump_before);
}

// ---- MdvSystem plumbing ----------------------------------------------

TEST(MdvSystemDurabilityTest, DurableProviderAndRepositoryRecover) {
  const std::string mdp_dir = TestDir("system_mdp");
  const std::string lmr_dir = TestDir("system_lmr");
  wal::WalOptions mdp_options;
  mdp_options.dir = mdp_dir;
  wal::WalOptions lmr_options;
  lmr_options.dir = lmr_dir;

  std::string before;
  {
    MdvSystem system(rdf::MakeObjectGlobeSchema());
    Result<MetadataProvider*> provider =
        system.AddDurableProvider(mdp_options);
    ASSERT_TRUE(provider.ok()) << provider.status();
    Result<LocalMetadataRepository*> lmr =
        system.AddDurableRepository(lmr_options, *provider);
    ASSERT_TRUE(lmr.ok()) << lmr.status();
    ASSERT_TRUE((*lmr)->Subscribe(kBigRule).ok());
    ASSERT_TRUE((*provider)->RegisterDocument(MakeDoc("a.rdf", 92)).ok());
    before = DumpCacheContents(**lmr);
    ASSERT_FALSE(before.empty());
  }
  // Same wiring order on restart reproduces the same lmr id.
  MdvSystem system(rdf::MakeObjectGlobeSchema());
  Result<MetadataProvider*> provider = system.AddDurableProvider(mdp_options);
  ASSERT_TRUE(provider.ok()) << provider.status();
  Result<LocalMetadataRepository*> lmr =
      system.AddDurableRepository(lmr_options, *provider);
  ASSERT_TRUE(lmr.ok()) << lmr.status();
  EXPECT_EQ(DumpCacheContents(**lmr), before);
  EXPECT_EQ((*provider)->documents().size(), 1u);
  EXPECT_EQ((*provider)->subscriptions().size(), 1u);
  ASSERT_TRUE((*lmr)->AuditCacheInvariants().ok());
  // The recovered pair keeps working end to end.
  ASSERT_TRUE((*provider)->RegisterDocument(MakeDoc("b.rdf", 128)).ok());
  EXPECT_NE(DumpCacheContents(**lmr), before);
}

}  // namespace
}  // namespace mdv
