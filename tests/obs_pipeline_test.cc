// End-to-end observability test: one MDP publish must produce a single
// connected trace covering the whole pipeline — mdp.publish → filter.run
// (with initial-iteration / delta-join / materialization children) →
// publish.new_matches → network.deliver → lmr.apply_notification — and
// the registry counters must reflect the run.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "mdv/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/parser.h"

namespace mdv {
namespace {

rdf::RdfDocument MakeProviderDoc(const std::string& uri) {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory", rdf::PropertyValue::Literal("92"));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost",
                   rdf::PropertyValue::Literal("pirates.uni-passau.de"));
  host.AddProperty("serverPort", rdf::PropertyValue::Literal("5874"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

std::vector<obs::SpanRecord> SpansNamed(
    const std::vector<obs::SpanRecord>& spans, const std::string& name) {
  std::vector<obs::SpanRecord> out;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == name) out.push_back(span);
  }
  return out;
}

TEST(ObsPipelineTest, OnePublishIsOneConnectedTrace) {
  MdvSystem system(rdf::MakeObjectGlobeSchema());
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* lmr = system.AddRepository(provider);
  // A join rule, so the run needs delta-join iterations (Figure 9).
  ASSERT_TRUE(lmr->Subscribe("search CycleProvider c, ServerInformation s "
                             "register c "
                             "where c.serverInformation = s "
                             "and s.memory > 64 and s.cpu > 500")
                  .ok());

  // Only the publish under test should be retained.
  obs::DefaultTracer().Clear();
  obs::MetricsSnapshot before = obs::DefaultMetrics().Snapshot();

  ASSERT_TRUE(provider->RegisterDocument(MakeProviderDoc("d.rdf")).ok());
  ASSERT_EQ(lmr->CacheSize(), 2u);  // host + strong closure (info).

  std::vector<obs::SpanRecord> spans = obs::DefaultTracer().Snapshot();
  ASSERT_FALSE(spans.empty());

  // Exactly one root, and it is the MDP publish.
  std::vector<obs::SpanRecord> roots;
  for (const obs::SpanRecord& span : spans) {
    if (span.parent_id == 0) roots.push_back(span);
  }
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "mdp.publish");
  const uint64_t trace_id = roots[0].trace_id;
  EXPECT_EQ(trace_id, roots[0].span_id);

  // Every retained span belongs to that trace, and every parent link
  // resolves to another span of the trace.
  std::set<uint64_t> span_ids;
  for (const obs::SpanRecord& span : spans) span_ids.insert(span.span_id);
  for (const obs::SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, trace_id) << span.name;
    if (span.parent_id != 0) {
      EXPECT_EQ(span_ids.count(span.parent_id), 1u) << span.name;
    }
  }

  // The trace covers the whole pipeline.
  for (const char* name :
       {"mdp.publish", "filter.run", "filter.initial_iteration",
        "filter.delta_join", "filter.materialize", "publish.new_matches",
        "network.deliver", "lmr.apply_notification"}) {
    EXPECT_FALSE(SpansNamed(spans, name).empty()) << name;
  }

  // The filter stages nest under the filter run; the LMR application is
  // reachable from the publish (its parent is the stamped mdp.publish
  // context).
  const obs::SpanRecord run = SpansNamed(spans, "filter.run")[0];
  EXPECT_EQ(run.parent_id, roots[0].span_id);
  for (const char* stage : {"filter.initial_iteration", "filter.delta_join",
                            "filter.materialize"}) {
    for (const obs::SpanRecord& span : SpansNamed(spans, stage)) {
      EXPECT_EQ(span.parent_id, run.span_id) << stage;
    }
  }
  EXPECT_EQ(SpansNamed(spans, "lmr.apply_notification")[0].parent_id,
            roots[0].span_id);

  // Registry counters moved with the publish.
  obs::MetricsSnapshot after = obs::DefaultMetrics().Snapshot();
  auto delta = [&](const std::string& name) {
    auto it = before.counters.find(name);
    int64_t prev = it == before.counters.end() ? 0 : it->second;
    return after.counters.at(name) - prev;
  };
  EXPECT_EQ(delta("mdv.mdp.documents_registered_total"), 1);
  EXPECT_EQ(delta("mdv.filter.runs_total"), 1);
  EXPECT_EQ(delta("mdv.publish.notifications_total"), 1);
  EXPECT_EQ(delta("mdv.network.messages_total"), 1);
  EXPECT_EQ(delta("mdv.lmr.notifications_applied_total"), 1);
  // The delivered notification shipped the match and its strong closure.
  EXPECT_EQ(delta("mdv.network.resources_shipped_total"), 2);
}

TEST(ObsPipelineTest, ShardRunSpansParentUnderFilterRunAcrossWorkers) {
  // The sharded engine fans RunShard out to pool workers whose
  // thread-local span stacks are empty; the run's SpanContext must be
  // passed explicitly or the shard spans would start orphan traces.
  filter::RuleStoreOptions rule_options;
  rule_options.num_shards = 4;
  filter::EngineOptions engine_options;
  engine_options.num_workers = 2;
  MdvSystem system(rdf::MakeObjectGlobeSchema(), rule_options, {},
                   engine_options);
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* lmr = system.AddRepository(provider);
  ASSERT_TRUE(lmr->Subscribe("search CycleProvider c register c "
                             "where c.serverInformation.memory > 64")
                  .ok());
  obs::DefaultTracer().Clear();
  ASSERT_TRUE(provider->RegisterDocument(MakeProviderDoc("d.rdf")).ok());

  std::vector<obs::SpanRecord> spans = obs::DefaultTracer().Snapshot();
  std::vector<obs::SpanRecord> runs = SpansNamed(spans, "filter.run");
  ASSERT_EQ(runs.size(), 1u);
  std::vector<obs::SpanRecord> shard_runs =
      SpansNamed(spans, "filter.shard_run");
  ASSERT_EQ(shard_runs.size(), 4u);  // One per shard.
  for (const obs::SpanRecord& shard : shard_runs) {
    EXPECT_EQ(shard.trace_id, runs[0].trace_id);
    EXPECT_EQ(shard.parent_id, runs[0].span_id);
  }
  // The pool actually ran the batch (2 workers were live for it).
  obs::MetricsSnapshot snap = obs::DefaultMetrics().Snapshot();
  EXPECT_GE(snap.gauges.at("mdv.filter.pool.workers"), 2);
  EXPECT_GE(snap.counters.at("mdv.filter.pool.tasks_total"), 4);
}

TEST(ObsPipelineTest, TraceCarriedOnNotificationSurvivesRefresh) {
  MdvSystem system(rdf::MakeObjectGlobeSchema());
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* lmr = system.AddRepository(provider);
  lmr->set_consistency_mode(ConsistencyMode::kTimeToLive);
  ASSERT_TRUE(lmr->Subscribe("search CycleProvider c register c "
                             "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(provider->RegisterDocument(MakeProviderDoc("d.rdf")).ok());
  EXPECT_EQ(lmr->CacheSize(), 0u);  // TTL mode ignores pushes.

  obs::DefaultTracer().Clear();
  ASSERT_TRUE(lmr->Refresh().ok());
  EXPECT_EQ(lmr->CacheSize(), 2u);

  // Refresh (now a full replica join) merges the staged snapshot
  // outside any delivery call chain; the finalize span still joins the
  // serve's trace via the context carried on the SnapshotDone
  // notification instead of starting a parentless trace.
  std::vector<obs::SpanRecord> spans = obs::DefaultTracer().Snapshot();
  std::vector<obs::SpanRecord> applies =
      SpansNamed(spans, "lmr.finalize_join");
  ASSERT_FALSE(applies.empty());
  std::vector<obs::SpanRecord> snapshots =
      SpansNamed(spans, "mdp.serve_snapshot");
  ASSERT_FALSE(snapshots.empty());
  EXPECT_EQ(applies[0].trace_id, snapshots[0].trace_id);
  EXPECT_EQ(applies[0].parent_id, snapshots[0].span_id);
}

}  // namespace
}  // namespace mdv
