#include "net/transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/fault.h"
#include "net/reliable.h"
#include "net/wire.h"
#include "pubsub/notification.h"
#include "rdf/document.h"

namespace mdv::net {
namespace {

using pubsub::Notification;
using pubsub::NotificationKind;

// ---- InProcessTransport. ------------------------------------------------

TEST(TransportTest, DeliversFramesAsynchronouslyInOrder) {
  InProcessTransport transport;
  std::mutex mu;
  std::vector<std::string> received;
  ASSERT_TRUE(transport.Bind(1, [&](std::string frame) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(std::move(frame));
  }).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(transport.Send(1, "frame-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(transport.WaitIdle(5'000'000));
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(received[i], "frame-" + std::to_string(i));
  }
}

TEST(TransportTest, SendToUnboundEndpointIsNotFound) {
  InProcessTransport transport;
  Status st = transport.Send(99, "frame");
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(transport.stats().dropped_unbound, 1);
}

TEST(TransportTest, BindTwiceIsAlreadyExists) {
  InProcessTransport transport;
  ASSERT_TRUE(transport.Bind(1, [](std::string) {}).ok());
  EXPECT_EQ(transport.Bind(1, [](std::string) {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(TransportTest, BoundedQueueRejectsOverflow) {
  TransportOptions options;
  options.queue_capacity = 4;
  // Big latency so nothing drains while we overfill.
  options.latency_us = 2'000'000;
  InProcessTransport transport(options);
  ASSERT_TRUE(transport.Bind(1, [](std::string) {}).ok());
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 10; ++i) {
    Status st = transport.Send(1, "x");
    if (st.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rejected, 6);
  EXPECT_EQ(transport.stats().dropped_overflow, 6);
  EXPECT_EQ(transport.QueueDepth(), 4);
  transport.Unbind(1);  // Discard the delayed frames instead of waiting.
}

TEST(TransportTest, SyntheticLatencyDelaysDelivery) {
  TransportOptions options;
  options.latency_us = 50'000;
  InProcessTransport transport(options);
  std::atomic<int64_t> delivered_at{0};
  ASSERT_TRUE(transport.Bind(1, [&](std::string) {
    delivered_at.store(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
  }).ok());
  const int64_t sent_at =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  ASSERT_TRUE(transport.Send(1, "frame").ok());
  ASSERT_TRUE(transport.WaitIdle(5'000'000));
  EXPECT_GE(delivered_at.load() - sent_at, 45'000);
}

TEST(TransportTest, FaultInjectionDropsAreInvisibleToSender) {
  TransportOptions options;
  options.faults.drop_probability = 1.0;
  InProcessTransport transport(options);
  std::atomic<int> received{0};
  ASSERT_TRUE(transport.Bind(1, [&](std::string) { ++received; }).ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(transport.Send(1, "x").ok());  // Loss looks like success.
  }
  ASSERT_TRUE(transport.WaitIdle(5'000'000));
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(transport.stats().dropped_faults, 20);
  EXPECT_EQ(transport.fault_stats().dropped, 20);
}

TEST(TransportTest, FaultSequenceIsDeterministicForFixedSeed) {
  auto run = [](uint64_t seed) {
    TransportOptions options;
    options.faults.drop_probability = 0.3;
    options.faults.duplicate_probability = 0.2;
    options.faults.seed = seed;
    InProcessTransport transport(options);
    std::mutex mu;
    std::vector<std::string> received;
    EXPECT_TRUE(transport.Bind(1, [&](std::string frame) {
      std::lock_guard<std::mutex> lock(mu);
      received.push_back(std::move(frame));
    }).ok());
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(transport.Send(1, std::to_string(i)).ok());
    }
    EXPECT_TRUE(transport.WaitIdle(5'000'000));
    std::lock_guard<std::mutex> lock(mu);
    return received;
  };
  std::vector<std::string> first = run(1234);
  std::vector<std::string> second = run(1234);
  std::vector<std::string> other = run(99);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);  // Overwhelmingly likely for 200 frames.
}

TEST(TransportTest, DeterministicScheduleOverridesProbabilities) {
  TransportOptions options;
  options.faults.drop_probability = 1.0;  // Would drop everything...
  InProcessTransport transport(options);
  // ...but the schedule forces frame 0 through and duplicates frame 1.
  transport.set_fault_schedule([](uint64_t index) -> std::optional<FaultDecision> {
    FaultDecision decision;
    if (index == 0) return decision;
    if (index == 1) {
      decision.copies = 2;
      return decision;
    }
    return std::nullopt;  // Fall back to probabilities (drop).
  });
  std::mutex mu;
  std::vector<std::string> received;
  ASSERT_TRUE(transport.Bind(1, [&](std::string frame) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(std::move(frame));
  }).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(transport.Send(1, std::to_string(i)).ok());
  }
  ASSERT_TRUE(transport.WaitIdle(5'000'000));
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0], "0");
  EXPECT_EQ(received[1], "1");
  EXPECT_EQ(received[2], "1");
}

TEST(TransportTest, UnbindLinearizesAgainstInFlightDelivery) {
  InProcessTransport transport;
  std::atomic<bool> in_handler{false};
  std::atomic<bool> release{false};
  std::atomic<int> delivered{0};
  ASSERT_TRUE(transport.Bind(1, [&](std::string) {
    in_handler.store(true);
    while (!release.load()) std::this_thread::yield();
    ++delivered;
    in_handler.store(false);
  }).ok());
  ASSERT_TRUE(transport.Send(1, "x").ok());
  while (!in_handler.load()) std::this_thread::yield();
  std::thread unbinder([&] { transport.Unbind(1); });
  // Unbind must not return while the handler runs; give it a moment to
  // (wrongly) do so.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(in_handler.load());
  release.store(true);
  unbinder.join();
  // Once Unbind returned the handler finished and can never run again.
  EXPECT_FALSE(in_handler.load());
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(transport.Send(1, "y").code(), StatusCode::kNotFound);
}

TEST(TransportTest, HandlerMayUnbindItself) {
  InProcessTransport transport;
  std::atomic<int> calls{0};
  InProcessTransport* t = &transport;
  ASSERT_TRUE(transport.Bind(1, [&, t](std::string) {
    ++calls;
    t->Unbind(1);  // Re-entrant self-unbind must not deadlock.
  }).ok());
  ASSERT_TRUE(transport.Send(1, "x").ok());
  ASSERT_TRUE(transport.WaitIdle(5'000'000));
  EXPECT_EQ(calls.load(), 1);
  EXPECT_FALSE(transport.IsBound(1));
}

// ---- ReliableLink. ------------------------------------------------------

Notification MakeNote(pubsub::LmrId lmr, int tag) {
  Notification note;
  note.kind = NotificationKind::kInsert;
  note.lmr = lmr;
  note.subscription = 1;
  rdf::Resource res("r" + std::to_string(tag), "Movie");
  res.AddProperty("tag", rdf::PropertyValue::Literal(std::to_string(tag)));
  note.resources.push_back({"http://d#" + std::to_string(tag), res, false});
  return note;
}

int TagOf(const Notification& note) {
  return std::stoi(note.resources.at(0).resource.FindProperty("tag")->text());
}

TEST(ReliableLinkTest, DeliversExactlyOnceInOrderUnderHeavyFaults) {
  TransportOptions options;
  options.faults.drop_probability = 0.10;
  options.faults.duplicate_probability = 0.05;
  options.faults.reorder_probability = 0.10;
  options.faults.reorder_delay_us = 3000;
  options.faults.seed = 42;
  InProcessTransport transport(options);
  ReliableOptions reliability;
  reliability.retransmit_timeout_us = 2000;
  ReliableLink link(&transport, reliability);

  std::mutex mu;
  std::vector<int> received;
  ASSERT_TRUE(link.BindReceiver(1, [&](const Notification& note) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(TagOf(note));
  }).ok());

  const uint64_t sender = link.RegisterSender();
  const int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(link.Publish(sender, MakeNote(1, i)).ok());
  }
  ASSERT_TRUE(link.WaitSettled(30'000'000));

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(received[i], i);  // Exactly once, in publish order.
  }
  LinkStats stats = link.stats();
  EXPECT_EQ(stats.published, kCount);
  EXPECT_EQ(stats.delivered, kCount);
  EXPECT_EQ(stats.dead_lettered, 0);
  EXPECT_GT(stats.redelivered, 0);        // 10% loss forces retries.
  EXPECT_GT(stats.dedup_suppressed, 0);   // Dups + redeliveries collide.
}

TEST(ReliableLinkTest, IndependentFlowsDoNotBlockEachOther) {
  InProcessTransport transport;
  ReliableLink link(&transport);
  std::mutex mu;
  std::map<pubsub::LmrId, std::vector<int>> received;
  for (pubsub::LmrId lmr : {1, 2, 3}) {
    ASSERT_TRUE(link.BindReceiver(lmr, [&, lmr](const Notification& note) {
      std::lock_guard<std::mutex> lock(mu);
      received[lmr].push_back(TagOf(note));
    }).ok());
  }
  const uint64_t a = link.RegisterSender();
  const uint64_t b = link.RegisterSender();
  for (int i = 0; i < 20; ++i) {
    for (pubsub::LmrId lmr : {1, 2, 3}) {
      ASSERT_TRUE(link.Publish(i % 2 == 0 ? a : b, MakeNote(lmr, i)).ok());
    }
  }
  ASSERT_TRUE(link.WaitSettled(30'000'000));
  std::lock_guard<std::mutex> lock(mu);
  for (pubsub::LmrId lmr : {1, 2, 3}) {
    ASSERT_EQ(received[lmr].size(), 20u);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(received[lmr][i], i);
  }
}

TEST(ReliableLinkTest, PublishToUnboundLmrIsNotFound) {
  InProcessTransport transport;
  ReliableLink link(&transport);
  const uint64_t sender = link.RegisterSender();
  EXPECT_EQ(link.Publish(sender, MakeNote(9, 0)).code(),
            StatusCode::kNotFound);
}

TEST(ReliableLinkTest, NegativeLmrIdsAreRejected) {
  InProcessTransport transport;
  ReliableLink link(&transport);
  EXPECT_FALSE(link.BindReceiver(-5, [](const Notification&) {}).ok());
}

TEST(ReliableLinkTest, DeadLettersAfterRetryCapWhenReceiverNeverAcks) {
  TransportOptions options;
  // Drop every notify frame; acks never even get generated.
  InProcessTransport transport(options);
  transport.set_fault_schedule(
      [](uint64_t) -> std::optional<FaultDecision> {
        FaultDecision decision;
        decision.drop = true;
        return decision;
      });
  ReliableOptions reliability;
  reliability.retransmit_timeout_us = 500;
  reliability.max_backoff_us = 1000;
  reliability.max_attempts = 3;
  reliability.scan_interval_us = 200;
  ReliableLink link(&transport, reliability);
  std::atomic<int> received{0};
  ASSERT_TRUE(
      link.BindReceiver(1, [&](const Notification&) { ++received; }).ok());
  const uint64_t sender = link.RegisterSender();
  ASSERT_TRUE(link.Publish(sender, MakeNote(1, 0)).ok());
  ASSERT_TRUE(link.WaitSettled(30'000'000));  // Settles via dead-letter.
  EXPECT_EQ(received.load(), 0);
  LinkStats stats = link.stats();
  EXPECT_EQ(stats.dead_lettered, 1);
  EXPECT_EQ(stats.redelivered, 2);  // Attempts 2 and 3 of max_attempts=3.
  EXPECT_EQ(link.PendingCount(), 0u);
}

TEST(ReliableLinkTest, RetransmissionSurvivesTotalLossWindow) {
  // Drop the first 3 sends (original + 2 retries), then let everything
  // through: the frame must still arrive exactly once.
  InProcessTransport transport;
  transport.set_fault_schedule(
      [](uint64_t index) -> std::optional<FaultDecision> {
        FaultDecision decision;
        decision.drop = index < 3;
        return decision;
      });
  ReliableOptions reliability;
  reliability.retransmit_timeout_us = 500;
  reliability.max_backoff_us = 2000;
  reliability.scan_interval_us = 200;
  ReliableLink link(&transport, reliability);
  std::atomic<int> received{0};
  ASSERT_TRUE(
      link.BindReceiver(1, [&](const Notification&) { ++received; }).ok());
  const uint64_t sender = link.RegisterSender();
  ASSERT_TRUE(link.Publish(sender, MakeNote(1, 7)).ok());
  ASSERT_TRUE(link.WaitSettled(30'000'000));
  EXPECT_EQ(received.load(), 1);
  LinkStats stats = link.stats();
  EXPECT_EQ(stats.delivered, 1);
  EXPECT_GE(stats.redelivered, 3);
  EXPECT_EQ(stats.dead_lettered, 0);
}

TEST(ReliableLinkTest, DuplicatedFramesAreSuppressedByDedup) {
  TransportOptions options;
  options.faults.duplicate_probability = 1.0;  // Every frame twice.
  InProcessTransport transport(options);
  ReliableLink link(&transport);
  std::mutex mu;
  std::vector<int> received;
  ASSERT_TRUE(link.BindReceiver(1, [&](const Notification& note) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(TagOf(note));
  }).ok());
  const uint64_t sender = link.RegisterSender();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(link.Publish(sender, MakeNote(1, i)).ok());
  }
  ASSERT_TRUE(link.WaitSettled(30'000'000));
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[i], i);
  EXPECT_GE(link.stats().dedup_suppressed, 10);
}

TEST(ReliableLinkTest, GarbageFramesCountDecodeErrors) {
  InProcessTransport transport;
  ReliableLink link(&transport);
  std::atomic<int> received{0};
  ASSERT_TRUE(
      link.BindReceiver(1, [&](const Notification&) { ++received; }).ok());
  // Inject raw garbage below the link, straight into the LMR endpoint.
  ASSERT_TRUE(transport.Send(1, "this is not a frame").ok());
  ASSERT_TRUE(transport.WaitIdle(5'000'000));
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(link.stats().decode_errors, 1);
}

}  // namespace
}  // namespace mdv::net
