// Tests for the annotated mutex wrappers and the lock-rank runtime
// deadlock detector (DESIGN.md, Concurrency model). The death tests are
// the executable contract of the rank hierarchy: every ctest run
// executes with MDV_LOCK_RANK_CHECK=1, and these prove the detector
// actually fires on an inverted acquisition order. The static half of
// the contract — clang's -Wthread-safety rejecting an unguarded
// access — lives in the negative-compile check registered next to this
// test (tests/negcompile_thread_safety.cc).

#include "common/mutex.h"

#include <atomic>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"

namespace mdv {
namespace {

// Not a fixture test: runs before any SetLockRankCheckEnabled override
// can mask the probe. Every ctest invocation must set
// MDV_LOCK_RANK_CHECK=1 (tests/CMakeLists.txt wires it through
// ENVIRONMENT_MODIFICATION), so under ctest the detector is live in
// every test binary of the suite, not just this one.
TEST(LockRankEnvironment, CtestEnablesTheChecker) {
  if (std::getenv("MDV_LOCK_RANK_CHECK") == nullptr) {
    GTEST_SKIP() << "not running under ctest (MDV_LOCK_RANK_CHECK unset)";
  }
  EXPECT_TRUE(LockRankCheckEnabled());
}

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLockRankCheckEnabled(true); }
};

using LockRankDeathTest = LockRankTest;

TEST_F(LockRankTest, RanksAreStrictlyOrderedOutermostFirst) {
  // The hierarchy table of DESIGN.md, outermost (acquired first) to
  // innermost. A new rank slots between existing ones; this test pins
  // the relative order the rest of the codebase relies on.
  const LockRank order[] = {
      LockRank::kMdpApi,     LockRank::kNetworkBus, LockRank::kRuleStore,
      LockRank::kNetLink,    LockRank::kNetTransport,
      LockRank::kNetEndpoint, LockRank::kNetIdle,   LockRank::kNetFault,
      LockRank::kFilterPool, LockRank::kFilterQueue,
      LockRank::kObsRegistry, LockRank::kObsTracer, LockRank::kObsFlight,
      LockRank::kLogging,
  };
  for (size_t i = 1; i < std::size(order); ++i) {
    EXPECT_LT(static_cast<int>(order[i - 1]), static_cast<int>(order[i]))
        << LockRankName(order[i - 1]) << " must rank outside "
        << LockRankName(order[i]);
  }
}

TEST_F(LockRankTest, LockRankNameCoversEveryRank) {
  for (LockRank rank :
       {LockRank::kMdpApi, LockRank::kNetworkBus, LockRank::kRuleStore,
        LockRank::kNetLink, LockRank::kNetTransport, LockRank::kNetEndpoint,
        LockRank::kNetIdle, LockRank::kNetFault, LockRank::kFilterPool,
        LockRank::kFilterQueue, LockRank::kObsRegistry, LockRank::kObsTracer,
        LockRank::kObsFlight, LockRank::kLogging}) {
    EXPECT_STRNE(LockRankName(rank), "");
  }
}

TEST_F(LockRankTest, InOrderAcquisitionSucceeds) {
  Mutex outer(LockRank::kNetworkBus, "test.outer");
  Mutex inner(LockRank::kObsTracer, "test.inner");
  MutexLock outer_lock(outer);
  MutexLock inner_lock(inner);
  outer.AssertHeld();
  inner.AssertHeld();
}

TEST_F(LockRankTest, ReacquireAfterReleaseSucceeds) {
  Mutex mu(LockRank::kFilterPool, "test.pool");
  for (int i = 0; i < 3; ++i) {
    MutexLock lock(mu);
  }
}

TEST_F(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  Mutex inner(LockRank::kLogging, "test.log");
  Mutex outer(LockRank::kMdpApi, "test.api");
  EXPECT_DEATH(
      {
        MutexLock inner_lock(inner);
        MutexLock outer_lock(outer);  // kMdpApi while holding kLogging.
      },
      "lock-rank violation: acquiring 'test.api'.*while holding 'test.log'");
}

TEST_F(LockRankDeathTest, SameRankNestingAborts) {
  // Equal rank counts as a violation too: it catches self-deadlock and
  // ABBA between two same-rank mutexes.
  Mutex a(LockRank::kObsRegistry, "test.reg.a");
  Mutex b(LockRank::kObsRegistry, "test.reg.b");
  EXPECT_DEATH(
      {
        MutexLock lock_a(a);
        MutexLock lock_b(b);
      },
      "lock-rank violation: acquiring 'test.reg.b'.*"
      "while holding 'test.reg.a'");
}

TEST_F(LockRankDeathTest, ViolationNamesFullHeldStack) {
  Mutex top(LockRank::kNetworkBus, "test.bus");
  Mutex mid(LockRank::kNetTransport, "test.transport");
  Mutex bad(LockRank::kRuleStore, "test.rules");
  EXPECT_DEATH(
      {
        MutexLock top_lock(top);
        MutexLock mid_lock(mid);
        MutexLock bad_lock(bad);  // Rank 30 under rank 50: inverted.
      },
      "held locks \\(outermost first\\): test.bus.*test.transport");
}

TEST_F(LockRankDeathTest, TryLockSuccessIsRankChecked) {
  // TryLock cannot deadlock by blocking, but a successful TryLock taken
  // out of order still establishes the inverted ordering for a later
  // blocking acquire elsewhere — so it is checked all the same.
  Mutex inner(LockRank::kObsFlight, "test.flight");
  Mutex outer(LockRank::kNetLink, "test.link");
  EXPECT_DEATH(
      {
        MutexLock inner_lock(inner);
        (void)outer.TryLock();
      },
      "lock-rank violation: acquiring 'test.link'");
}

TEST_F(LockRankDeathTest, AssertHeldAbortsWhenNotHeld) {
  Mutex mu(LockRank::kObsRegistry, "test.unheld");
  EXPECT_DEATH(mu.AssertHeld(),
               "lock-rank violation: AssertHeld\\('test.unheld'\\)");
}

TEST_F(LockRankTest, DisabledCheckerAllowsInvertedOrder) {
  // The detector is a debugging aid, not a correctness dependency:
  // release builds may run with it off, and inverted acquisition must
  // then behave like plain mutexes (no tracking side effects).
  SetLockRankCheckEnabled(false);
  Mutex inner(LockRank::kLogging, "test.off.log");
  Mutex outer(LockRank::kMdpApi, "test.off.api");
  {
    MutexLock inner_lock(inner);
    MutexLock outer_lock(outer);
  }
  SetLockRankCheckEnabled(true);
}

TEST_F(LockRankTest, RanksAreIndependentAcrossThreads) {
  // The held-lock stack is per thread: a worker may take an outer-rank
  // mutex while this thread holds an inner-rank one.
  Mutex inner(LockRank::kLogging, "test.main.log");
  Mutex outer(LockRank::kMdpApi, "test.worker.api");
  MutexLock inner_lock(inner);
  std::thread worker([&] { MutexLock outer_lock(outer); });
  worker.join();
}

TEST_F(LockRankTest, CondVarWaitReacquiresWithCorrectBookkeeping) {
  Mutex mu(LockRank::kFilterPool, "test.cv");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    // Wait released and reacquired mu through the rank bookkeeping:
    // a subsequent inner acquisition must still pass the check...
    Mutex deeper(LockRank::kObsFlight, "test.cv.inner");
    MutexLock inner(deeper);
    mu.AssertHeld();
  }
  producer.join();
}

TEST_F(LockRankTest, CondVarWaitForTimesOut) {
  Mutex mu(LockRank::kFilterPool, "test.cv.timeout");
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(mu, 1000));  // Nobody notifies: must time out.
  mu.AssertHeld();
}

TEST_F(LockRankTest, ViolationHookReceivesBothLocksAndStack) {
  // The production hook (installed by obs) snapshots the violation into
  // the flight recorder. Death tests cannot observe the hook, so this
  // exercises the struct contents via a scoped replacement hook that
  // records and then lets the abort proceed in a child process.
  Mutex inner(LockRank::kObsTracer, "test.hook.inner");
  Mutex outer(LockRank::kNetworkBus, "test.hook.outer");
  EXPECT_DEATH(
      {
        SetLockRankViolationHook([](const LockRankViolation& violation) {
          // Runs in the dying child: stderr is what EXPECT_DEATH sees.
          fprintf(stderr, "hook: %s under %s stack=[%s]\n",
                  violation.acquiring_name, violation.holding_name,
                  violation.held_stack.c_str());
        });
        MutexLock inner_lock(inner);
        MutexLock outer_lock(outer);
      },
      "hook: test.hook.outer under test.hook.inner "
      "stack=\\[test.hook.inner\\(84\\)\\]");
}

TEST_F(LockRankTest, StressNestedWorkersStayOrdered) {
  // Parallel smoke: many threads nest pool -> queue (the work-stealing
  // pool's sanctioned order) while the detector is on; none may trip it.
  Mutex pool(LockRank::kFilterPool, "test.stress.pool");
  std::vector<std::unique_ptr<Mutex>> queues;
  for (int i = 0; i < 4; ++i) {
    queues.push_back(std::make_unique<Mutex>(LockRank::kFilterQueue,
                                             "test.stress.queue"));
  }
  std::atomic<int> iterations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        MutexLock pool_lock(pool);
        MutexLock queue_lock(*queues[(t + i) % queues.size()]);
        iterations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(iterations.load(), 4 * 200);
}

}  // namespace
}  // namespace mdv
