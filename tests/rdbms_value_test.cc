#include "rdbms/value.h"

#include <gtest/gtest.h>

#include "rdbms/predicate.h"

namespace mdv::rdbms {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(Value::Null().Compare(Value()), 0);
}

TEST(ValueTest, IntAndDoubleCompareNumerically) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_LT(Value(int64_t{3}), Value(3.5));
  EXPECT_GT(Value(4.5), Value(int64_t{4}));
}

TEST(ValueTest, LargeIntsCompareExactly) {
  // Values beyond double's 53-bit mantissa must not collapse.
  Value a(int64_t{9007199254740993});  // 2^53 + 1
  Value b(int64_t{9007199254740992});  // 2^53
  EXPECT_GT(a, b);
  EXPECT_NE(a, b);
}

TEST(ValueTest, CanonicalOrderNullNumericString) {
  EXPECT_LT(Value(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1000000}), Value("a"));
  EXPECT_LT(Value(""), Value("a"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
}

TEST(ValueTest, TryNumericParsesStrings) {
  EXPECT_EQ(Value("64").TryNumeric(), 64.0);
  EXPECT_EQ(Value("-2.5").TryNumeric(), -2.5);
  EXPECT_FALSE(Value("64MB").TryNumeric().has_value());
  EXPECT_FALSE(Value("").TryNumeric().has_value());
  EXPECT_FALSE(Value().TryNumeric().has_value());
  EXPECT_EQ(Value(int64_t{7}).TryNumeric(), 7.0);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "x");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(CompareTest, NullNeverMatches) {
  EXPECT_FALSE(EvaluateCompare(Value(), CompareOp::kEq, Value()));
  EXPECT_FALSE(EvaluateCompare(Value(int64_t{1}), CompareOp::kNe, Value()));
}

TEST(CompareTest, NumericStringCoercionForOrderedOps) {
  // "92" stored as string compared against numeric 64 (paper §3.3.4).
  EXPECT_TRUE(EvaluateCompare(Value("92"), CompareOp::kGt, Value(int64_t{64})));
  EXPECT_FALSE(
      EvaluateCompare(Value("32"), CompareOp::kGt, Value(int64_t{64})));
  EXPECT_FALSE(
      EvaluateCompare(Value("abc"), CompareOp::kGt, Value(int64_t{64})));
}

TEST(CompareTest, Contains) {
  EXPECT_TRUE(EvaluateCompare(Value("pirates.uni-passau.de"),
                              CompareOp::kContains, Value("uni-passau.de")));
  EXPECT_FALSE(EvaluateCompare(Value("tum.de"), CompareOp::kContains,
                               Value("uni-passau.de")));
  EXPECT_FALSE(EvaluateCompare(Value(int64_t{5}), CompareOp::kContains,
                               Value("5")));
}

TEST(CompareTest, FlipAndNegate) {
  EXPECT_EQ(FlipCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipCompareOp(CompareOp::kGe), CompareOp::kLe);
  EXPECT_EQ(FlipCompareOp(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(NegateCompareOp(CompareOp::kEq), CompareOp::kNe);
  EXPECT_EQ(NegateCompareOp(CompareOp::kLe), CompareOp::kGt);
}

class CompareOpParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompareOpParamTest, OrderedOpsAgreeWithInts) {
  auto [a, b] = GetParam();
  Value va(static_cast<int64_t>(a));
  Value vb(static_cast<int64_t>(b));
  EXPECT_EQ(EvaluateCompare(va, CompareOp::kLt, vb), a < b);
  EXPECT_EQ(EvaluateCompare(va, CompareOp::kLe, vb), a <= b);
  EXPECT_EQ(EvaluateCompare(va, CompareOp::kGt, vb), a > b);
  EXPECT_EQ(EvaluateCompare(va, CompareOp::kGe, vb), a >= b);
  EXPECT_EQ(EvaluateCompare(va, CompareOp::kEq, vb), a == b);
  EXPECT_EQ(EvaluateCompare(va, CompareOp::kNe, vb), a != b);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CompareOpParamTest,
    ::testing::Combine(::testing::Values(-2, 0, 1, 64, 92),
                       ::testing::Values(-2, 0, 1, 64, 92)));

// ---- TryNumeric boundaries (from_chars semantics, no locale). -------------
//
// The filter reconverts stored rule/data text to numbers on every probe
// (§3.3.4), so the text→number conversion must be locale-independent
// and strict: no partial parses, no silent clamping.

TEST(ValueTryNumericTest, Int64BoundariesRoundTrip) {
  EXPECT_DOUBLE_EQ(*Value("9223372036854775807").TryNumeric(),
                   9223372036854775807.0);
  EXPECT_DOUBLE_EQ(*Value("-9223372036854775808").TryNumeric(),
                   -9223372036854775808.0);
}

TEST(ValueTryNumericTest, LeadingZerosAndNegativeDecimals) {
  EXPECT_DOUBLE_EQ(*Value("007").TryNumeric(), 7.0);
  EXPECT_DOUBLE_EQ(*Value("-0.5").TryNumeric(), -0.5);
  EXPECT_DOUBLE_EQ(*Value("0.0625").TryNumeric(), 0.0625);
}

TEST(ValueTryNumericTest, StrictAboutSurroundingText) {
  // Partial parses and surrounding whitespace are not numbers: rule
  // constants like '64MB' must compare as strings, never as 64.
  EXPECT_FALSE(Value("64MB").TryNumeric().has_value());
  EXPECT_FALSE(Value(" 64").TryNumeric().has_value());
  EXPECT_FALSE(Value("64 ").TryNumeric().has_value());
  EXPECT_FALSE(Value("").TryNumeric().has_value());
  EXPECT_FALSE(Value("+64").TryNumeric().has_value());  // No '+' sign.
  EXPECT_FALSE(Value("0x10").TryNumeric().has_value());
  EXPECT_FALSE(Value("1,5").TryNumeric().has_value());  // Never locale ','.
}

TEST(ValueTryNumericTest, OverflowIsRejectedNotClamped) {
  EXPECT_FALSE(Value(std::string(400, '9')).TryNumeric().has_value());
  EXPECT_FALSE(Value("-" + std::string(400, '9')).TryNumeric().has_value());
}

TEST(ValueTryNumericTest, ScientificNotationParsesExactly) {
  EXPECT_DOUBLE_EQ(*Value("1e3").TryNumeric(), 1000.0);
  EXPECT_DOUBLE_EQ(*Value("2.5E-2").TryNumeric(), 0.025);
  EXPECT_FALSE(Value("1e").TryNumeric().has_value());
}

}  // namespace
}  // namespace mdv::rdbms
