#include "pubsub/publisher.h"

#include <gtest/gtest.h>

#include "pubsub/subscription.h"
#include "rdf/schema.h"

namespace mdv::pubsub {
namespace {

class PublisherTest : public ::testing::Test {
 protected:
  PublisherTest() : schema_(rdf::MakeObjectGlobeSchema()) {
    // A CycleProvider strongly referencing a ServerInformation, which is
    // the shape of Figure 1.
    rdf::Resource host("host", "CycleProvider");
    host.AddProperty("serverHost",
                     rdf::PropertyValue::Literal("pirates.uni-passau.de"));
    host.AddProperty("serverInformation",
                     rdf::PropertyValue::ResourceRef("doc.rdf#info"));
    resources_["doc.rdf#host"] = host;
    rdf::Resource info("info", "ServerInformation");
    info.AddProperty("memory", rdf::PropertyValue::Literal("92"));
    resources_["doc.rdf#info"] = info;

    publisher_ = std::make_unique<Publisher>(
        &schema_, &registry_, [this](const std::string& uri) {
          auto it = resources_.find(uri);
          return it == resources_.end() ? nullptr : &it->second;
        });
  }

  rdf::RdfSchema schema_;
  SubscriptionRegistry registry_;
  std::map<std::string, rdf::Resource> resources_;
  std::unique_ptr<Publisher> publisher_;
};

TEST_F(PublisherTest, StrongClosureFollowsStrongReferences) {
  Result<std::vector<TransmittedResource>> shipped =
      publisher_->WithStrongClosure("doc.rdf#host");
  ASSERT_TRUE(shipped.ok()) << shipped.status();
  ASSERT_EQ(shipped->size(), 2u);
  EXPECT_EQ((*shipped)[0].uri_reference, "doc.rdf#host");
  EXPECT_FALSE((*shipped)[0].via_strong_reference);
  EXPECT_EQ((*shipped)[1].uri_reference, "doc.rdf#info");
  EXPECT_TRUE((*shipped)[1].via_strong_reference);
}

TEST_F(PublisherTest, ClosureStopsAtWeakReferences) {
  rdf::RdfSchema schema;
  ASSERT_TRUE(schema
                  .AddClass(rdf::ClassBuilder("A")
                                .WeakRef("next", "B")
                                .Build())
                  .ok());
  ASSERT_TRUE(schema.AddClass(rdf::ClassBuilder("B").Build()).ok());
  std::map<std::string, rdf::Resource> resources;
  rdf::Resource a("a", "A");
  a.AddProperty("next", rdf::PropertyValue::ResourceRef("d#b"));
  resources["d#a"] = a;
  resources["d#b"] = rdf::Resource("b", "B");
  SubscriptionRegistry registry;
  Publisher publisher(&schema, &registry, [&](const std::string& uri) {
    auto it = resources.find(uri);
    return it == resources.end() ? nullptr : &it->second;
  });
  Result<std::vector<TransmittedResource>> shipped =
      publisher.WithStrongClosure("d#a");
  ASSERT_TRUE(shipped.ok());
  EXPECT_EQ(shipped->size(), 1u);  // Weak reference not followed.
}

TEST_F(PublisherTest, ClosureHandlesCyclesAndDanglingRefs) {
  rdf::RdfSchema schema;
  ASSERT_TRUE(schema
                  .AddClass(rdf::ClassBuilder("N")
                                .StrongRef("next", "N")
                                .Build())
                  .ok());
  std::map<std::string, rdf::Resource> resources;
  rdf::Resource a("a", "N");
  a.AddProperty("next", rdf::PropertyValue::ResourceRef("d#b"));
  rdf::Resource b("b", "N");
  b.AddProperty("next", rdf::PropertyValue::ResourceRef("d#a"));  // Cycle.
  b.AddProperty("next", rdf::PropertyValue::ResourceRef("d#gone"));
  resources["d#a"] = a;
  resources["d#b"] = b;
  SubscriptionRegistry registry;
  Publisher publisher(&schema, &registry, [&](const std::string& uri) {
    auto it = resources.find(uri);
    return it == resources.end() ? nullptr : &it->second;
  });
  Result<std::vector<TransmittedResource>> shipped =
      publisher.WithStrongClosure("d#a");
  ASSERT_TRUE(shipped.ok()) << shipped.status();
  EXPECT_EQ(shipped->size(), 2u);  // a, b once each; dangling skipped.
}

TEST_F(PublisherTest, ClosureOfUnknownResourceFails) {
  EXPECT_EQ(publisher_->WithStrongClosure("nope#x").status().code(),
            StatusCode::kNotFound);
}

TEST_F(PublisherTest, PublishNewMatchesRoutesPerSubscription) {
  SubscriptionId sub1 = registry_.Add(1, "rule", "", 7, "CycleProvider");
  SubscriptionId sub2 = registry_.Add(2, "rule", "", 7, "CycleProvider");

  filter::FilterRunResult result;
  result.matches[7] = {"doc.rdf#host"};
  result.matches[99] = {"doc.rdf#info"};  // Not an end rule: ignored.

  Result<std::vector<Notification>> notes =
      publisher_->PublishNewMatches(result);
  ASSERT_TRUE(notes.ok()) << notes.status();
  ASSERT_EQ(notes->size(), 2u);
  for (const Notification& note : *notes) {
    EXPECT_EQ(note.kind, NotificationKind::kInsert);
    EXPECT_TRUE(note.subscription == sub1 || note.subscription == sub2);
    ASSERT_EQ(note.resources.size(), 2u);  // host + strong closure info.
    EXPECT_EQ(note.resources[0].uri_reference, "doc.rdf#host");
  }
}

TEST(SubscriptionRegistryTest, Lifecycle) {
  SubscriptionRegistry registry;
  SubscriptionId id = registry.Add(5, "text", "MyRules", 11, "T");
  EXPECT_EQ(registry.size(), 1u);
  ASSERT_NE(registry.Find(id), nullptr);
  EXPECT_EQ(registry.Find(id)->lmr, 5);
  EXPECT_EQ(registry.FindByName("MyRules")->id, id);
  EXPECT_EQ(registry.FindByName(""), nullptr);
  EXPECT_EQ(registry.ByEndRule(11).size(), 1u);
  EXPECT_EQ(registry.ByLmr(5).size(), 1u);
  EXPECT_EQ(registry.EndRuleIds(), std::vector<int64_t>{11});

  Result<Subscription> removed = registry.Remove(id);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->end_rule_id, 11);
  EXPECT_EQ(registry.Remove(id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 0u);
}

}  // namespace
}  // namespace mdv::pubsub
