// Robustness: arbitrary byte soup fed to every parser in the system must
// produce error statuses, never crashes, hangs, or accepted garbage that
// later breaks invariants.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "rdbms/sql.h"
#include "rdf/parser.h"
#include "rdf/xml_import.h"
#include "rules/compiler.h"
#include "rules/parser.h"

namespace mdv {
namespace {

std::string RandomText(std::mt19937* rng, size_t max_len) {
  static const char kAlphabet[] =
      "abcdefgXYZ0123456789 <>/=\"'.#?!_-,()*&;\n\t\\";
  std::uniform_int_distribution<size_t> len_dist(0, max_len);
  std::uniform_int_distribution<size_t> char_dist(0, sizeof(kAlphabet) - 2);
  std::string out;
  size_t len = len_dist(*rng);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[char_dist(*rng)];
  }
  return out;
}

/// Mutates a valid input by splicing random bytes into it, which reaches
/// deeper parser states than pure noise.
std::string Mutate(const std::string& valid, std::mt19937* rng) {
  std::string out = valid;
  std::uniform_int_distribution<int> op_dist(0, 2);
  for (int i = 0; i < 4; ++i) {
    std::uniform_int_distribution<size_t> pos_dist(0, out.size());
    size_t pos = pos_dist(*rng);
    switch (op_dist(*rng)) {
      case 0:
        out.insert(pos, RandomText(rng, 5));
        break;
      case 1:
        if (pos < out.size()) out.erase(pos, 1);
        break;
      default:
        if (pos < out.size()) out[pos] = '<';
        break;
    }
  }
  return out;
}

class RobustnessTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RobustnessTest, RuleParserNeverCrashes) {
  std::mt19937 rng(GetParam());
  const std::string valid =
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de' "
      "and c.serverInformation.memory > 64";
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  for (int i = 0; i < 200; ++i) {
    std::string input = i % 2 == 0 ? RandomText(&rng, 120)
                                   : Mutate(valid, &rng);
    Result<rules::CompiledRule> result = rules::CompileRule(input, schema);
    if (result.ok()) {
      // If garbage happens to compile, it must be a well-formed rule.
      EXPECT_FALSE(result->decomposed.atoms.empty());
    }
  }
}

TEST_P(RobustnessTest, RdfXmlParserNeverCrashes) {
  std::mt19937 rng(GetParam() ^ 0x1111u);
  const std::string valid =
      "<rdf:RDF><og:CycleProvider rdf:ID=\"host\">"
      "<og:serverHost>pirates.uni-passau.de</og:serverHost>"
      "</og:CycleProvider></rdf:RDF>";
  for (int i = 0; i < 200; ++i) {
    std::string input =
        i % 2 == 0 ? RandomText(&rng, 160) : Mutate(valid, &rng);
    Result<rdf::RdfDocument> result = rdf::ParseRdfXml(input, "fuzz.rdf");
    if (result.ok()) {
      // Accepted inputs must produce structurally sound documents.
      for (const rdf::Resource* res : result->resources()) {
        EXPECT_FALSE(res->local_id().empty());
      }
    }
  }
}

TEST_P(RobustnessTest, GenericXmlImporterNeverCrashes) {
  std::mt19937 rng(GetParam() ^ 0x2222u);
  const std::string valid =
      "<service id=\"s\" category=\"payment\"><price>5</price>"
      "<endpoint id=\"e\"><url>https://x</url></endpoint></service>";
  for (int i = 0; i < 200; ++i) {
    std::string input =
        i % 2 == 0 ? RandomText(&rng, 160) : Mutate(valid, &rng);
    Result<rdf::RdfDocument> result =
        rdf::ImportGenericXml(input, "fuzz.xml");
    if (result.ok()) {
      rdf::RdfSchema schema;
      // Whatever imported must be schema-inferable and then valid.
      Status st = rdf::ExtendSchemaForDocument(*result, &schema);
      if (st.ok()) {
        EXPECT_TRUE(schema.ValidateDocument(*result).ok());
      }
    }
  }
}

TEST_P(RobustnessTest, SqlParserNeverCrashes) {
  std::mt19937 rng(GetParam() ^ 0x3333u);
  const std::string valid =
      "SELECT p.host FROM providers p, locations l "
      "WHERE p.host = l.host AND p.memory > 64 ORDER BY p.host LIMIT 5";
  rdbms::Database db;
  Result<rdbms::SqlResult> seeded = rdbms::ExecuteSql(
      &db, "CREATE TABLE providers (host STRING, memory INT)");
  ASSERT_TRUE(seeded.ok());
  seeded = rdbms::ExecuteSql(&db, "CREATE TABLE locations (host STRING)");
  ASSERT_TRUE(seeded.ok());
  for (int i = 0; i < 200; ++i) {
    std::string input =
        i % 2 == 0 ? RandomText(&rng, 120) : Mutate(valid, &rng);
    Result<rdbms::SqlResult> result = rdbms::ExecuteSql(&db, input);
    (void)result;  // Error or success — just must not crash.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest,
                         ::testing::Values(17u, 29u, 31u, 47u));

}  // namespace
}  // namespace mdv
