// Property-based tests: the incremental filter algorithm must agree
// with the direct (nested-loop) rule evaluator on randomized workloads,
// regardless of batch sizes and of whether rules arrive before or after
// the documents.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "bench_support/workload.h"
#include "filter/update_protocol.h"
#include "rules/compiler.h"
#include "rules/evaluator.h"

namespace mdv::filter {
namespace {

using bench_support::FilterFixture;

struct RandomWorkload {
  explicit RandomWorkload(uint32_t seed) : rng(seed) {}

  std::mt19937 rng;
  std::vector<rdf::RdfDocument> documents;
  std::vector<std::string> rule_texts;

  int RandInt(int lo, int hi) {  // Inclusive bounds.
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  }

  std::string RandomHost() {
    static const char* kHosts[] = {
        "pirates.uni-passau.de", "db.uni-passau.de", "in.tum.de",
        "big.example",           "node7.example",    "edge.tum.de"};
    return kHosts[RandInt(0, 5)];
  }

  rdf::RdfDocument MakeDocument(size_t index) {
    std::string uri = "rand" + std::to_string(index) + ".rdf";
    rdf::RdfDocument doc(uri);
    rdf::Resource info("info", "ServerInformation");
    info.AddProperty("memory", rdf::PropertyValue::Literal(
                                   std::to_string(RandInt(0, 200))));
    info.AddProperty("cpu", rdf::PropertyValue::Literal(
                                std::to_string(RandInt(1, 4) * 500)));
    rdf::Resource host("host", "CycleProvider");
    host.AddProperty("serverHost", rdf::PropertyValue::Literal(RandomHost()));
    host.AddProperty("serverPort", rdf::PropertyValue::Literal(
                                       std::to_string(RandInt(1, 9999))));
    host.AddProperty("synthValue", rdf::PropertyValue::Literal(
                                       std::to_string(RandInt(0, 100))));
    host.AddProperty("serverInformation",
                     rdf::PropertyValue::ResourceRef(uri + "#info"));
    Status st = doc.AddResource(std::move(info));
    st = doc.AddResource(std::move(host));
    (void)st;
    return doc;
  }

  std::string MakeRule() {
    static const char* kFragments[] = {"uni-passau", "tum", "example",
                                       ".de", "big"};
    switch (RandInt(0, 7)) {
      case 0:
        return "search CycleProvider c register c";
      case 1:
        return "search ServerInformation s register s where s.memory > " +
               std::to_string(RandInt(0, 200));
      case 2:
        return "search CycleProvider c register c where c = 'rand" +
               std::to_string(RandInt(0, 19)) + ".rdf#host'";
      case 3:
        return "search CycleProvider c register c where c.synthValue > " +
               std::to_string(RandInt(0, 100));
      case 4:
        return std::string(
                   "search CycleProvider c register c "
                   "where c.serverHost contains '") +
               kFragments[RandInt(0, 4)] + "'";
      case 5:
        return "search CycleProvider c register c "
               "where c.serverInformation.memory " +
               std::string(RandInt(0, 1) ? ">" : "<") + " " +
               std::to_string(RandInt(0, 200));
      case 6:
        return std::string(
                   "search CycleProvider c register c "
                   "where c.serverHost contains '") +
               kFragments[RandInt(0, 4)] +
               "' and c.serverInformation.cpu >= " +
               std::to_string(RandInt(1, 4) * 500) +
               " and c.serverInformation.memory > " +
               std::to_string(RandInt(0, 200));
      default:
        return "search CycleProvider c, ServerInformation s register s "
               "where c.serverInformation = s and c.synthValue <= " +
               std::to_string(RandInt(0, 100));
    }
  }
};

rules::ResourceMap AllResources(const std::vector<rdf::RdfDocument>& docs) {
  rules::ResourceMap out;
  for (const rdf::RdfDocument& doc : docs) {
    for (const rdf::Resource* res : doc.resources()) {
      out.emplace(doc.UriReferenceOf(res->local_id()), res);
    }
  }
  return out;
}

class FilterPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FilterPropertyTest, FilterAgreesWithOracleOnRandomWorkload) {
  RandomWorkload workload(GetParam());
  FilterFixture fixture;

  // 20 documents, 25 random rules registered up front.
  for (size_t i = 0; i < 20; ++i) {
    workload.documents.push_back(workload.MakeDocument(i));
  }
  std::map<std::string, int64_t> end_rule_of_text;
  for (int i = 0; i < 25; ++i) {
    std::string text = workload.MakeRule();
    Result<int64_t> end = fixture.RegisterRule(text);
    ASSERT_TRUE(end.ok()) << text << " -> " << end.status();
    end_rule_of_text[text] = *end;
  }

  // Register the documents in random batches, accumulating matches.
  std::map<int64_t, std::set<std::string>> accumulated;
  size_t next = 0;
  while (next < workload.documents.size()) {
    size_t batch = static_cast<size_t>(workload.RandInt(1, 5));
    batch = std::min(batch, workload.documents.size() - next);
    std::vector<rdf::RdfDocument> docs(
        workload.documents.begin() + static_cast<long>(next),
        workload.documents.begin() + static_cast<long>(next + batch));
    next += batch;
    Result<FilterRunResult> result = fixture.RegisterDocumentBatch(docs);
    ASSERT_TRUE(result.ok()) << result.status();
    for (const auto& [rule, uris] : result->matches) {
      accumulated[rule].insert(uris.begin(), uris.end());
    }
  }

  // Compare against the oracle, rule by rule.
  rules::ResourceMap resources = AllResources(workload.documents);
  for (const auto& [text, end_rule] : end_rule_of_text) {
    Result<std::vector<std::string>> oracle =
        rules::EvaluateRuleText(text, fixture.schema(), resources);
    ASSERT_TRUE(oracle.ok()) << text << " -> " << oracle.status();
    std::set<std::string> expected(oracle->begin(), oracle->end());
    EXPECT_EQ(accumulated[end_rule], expected) << "rule: " << text;
  }
}

TEST_P(FilterPropertyTest, SubscriptionAfterDataSeesSameMatches) {
  RandomWorkload workload(GetParam() ^ 0xabcd1234u);
  FilterFixture fixture;

  for (size_t i = 0; i < 15; ++i) {
    workload.documents.push_back(workload.MakeDocument(i));
  }
  Result<FilterRunResult> registered =
      fixture.RegisterDocumentBatch(workload.documents);
  ASSERT_TRUE(registered.ok()) << registered.status();

  rules::ResourceMap resources = AllResources(workload.documents);
  for (int i = 0; i < 15; ++i) {
    std::string text = workload.MakeRule();
    Result<rules::CompiledRule> compiled =
        rules::CompileRule(text, fixture.schema());
    ASSERT_TRUE(compiled.ok()) << text;
    std::vector<int64_t> created;
    Result<int64_t> end =
        fixture.store().RegisterTree(compiled->decomposed, &created);
    ASSERT_TRUE(end.ok());
    std::vector<int64_t> to_eval = created;
    if (std::find(to_eval.begin(), to_eval.end(), *end) == to_eval.end()) {
      to_eval.push_back(*end);
    }
    Result<FilterRunResult> seeded = fixture.engine().EvaluateNewRules(to_eval);
    ASSERT_TRUE(seeded.ok()) << seeded.status();

    Result<std::vector<std::string>> oracle =
        rules::EvaluateRuleText(text, fixture.schema(), resources);
    ASSERT_TRUE(oracle.ok());
    const std::vector<std::string>* matches = seeded->MatchesFor(*end);
    std::vector<std::string> actual =
        matches == nullptr ? std::vector<std::string>{} : *matches;
    EXPECT_EQ(actual, *oracle) << "rule: " << text;
  }
}

TEST_P(FilterPropertyTest, UpdatesConvergeToOracle) {
  RandomWorkload workload(GetParam() ^ 0x5eed5eedu);
  FilterFixture fixture;

  std::map<std::string, int64_t> end_rule_of_text;
  for (int i = 0; i < 15; ++i) {
    std::string text = workload.MakeRule();
    Result<int64_t> end = fixture.RegisterRule(text);
    ASSERT_TRUE(end.ok()) << text;
    end_rule_of_text[text] = *end;
  }

  for (size_t i = 0; i < 10; ++i) {
    workload.documents.push_back(workload.MakeDocument(i));
  }
  ASSERT_TRUE(fixture.RegisterDocumentBatch(workload.documents).ok());

  // Random updates: re-roll a document's contents a few times. Matches
  // per rule are tracked through the three-pass protocol.
  std::map<int64_t, std::set<std::string>> live;
  auto apply_run = [&](const FilterRunResult& run, bool add) {
    for (const auto& [rule, uris] : run.matches) {
      for (const std::string& uri : uris) {
        if (add) {
          live[rule].insert(uri);
        } else {
          live[rule].erase(uri);
        }
      }
    }
  };
  // Seed `live` from the initial registration by re-deriving via oracle
  // on the initial documents (equivalently we could have captured the
  // first run's matches).
  {
    rules::ResourceMap resources = AllResources(workload.documents);
    for (const auto& [text, rule] : end_rule_of_text) {
      Result<std::vector<std::string>> oracle =
          rules::EvaluateRuleText(text, fixture.schema(), resources);
      ASSERT_TRUE(oracle.ok());
      live[rule] = std::set<std::string>(oracle->begin(), oracle->end());
    }
  }

  for (int round = 0; round < 12; ++round) {
    size_t target = static_cast<size_t>(
        workload.RandInt(0, static_cast<int>(workload.documents.size()) - 1));
    rdf::RdfDocument before = workload.documents[target];
    rdf::RdfDocument after = workload.MakeDocument(target);  // Same URI.
    Result<UpdateOutcome> outcome = ApplyDocumentUpdate(
        &fixture.db(), &fixture.engine(), before, after);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    workload.documents[target] = after;

    // Removals: candidates that no longer match; insertions: new matches.
    for (const auto& [rule, uris] : outcome->candidates.matches) {
      std::set<std::string> still;
      const std::vector<std::string>* now =
          outcome->still_matching.MatchesFor(rule);
      if (now != nullptr) still.insert(now->begin(), now->end());
      for (const std::string& uri : uris) {
        if (still.count(uri) == 0) live[rule].erase(uri);
      }
    }
    apply_run(outcome->new_matches, /*add=*/true);
  }

  rules::ResourceMap resources = AllResources(workload.documents);
  for (const auto& [text, rule] : end_rule_of_text) {
    Result<std::vector<std::string>> oracle =
        rules::EvaluateRuleText(text, fixture.schema(), resources);
    ASSERT_TRUE(oracle.ok());
    std::set<std::string> expected(oracle->begin(), oracle->end());
    EXPECT_EQ(live[rule], expected) << "rule: " << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace mdv::filter
