#include "rules/parser.h"

#include <gtest/gtest.h>

namespace mdv::rules {
namespace {

TEST(RuleParserTest, ParsesExample1) {
  // Example 1 of the paper.
  Result<RuleAst> rule = ParseRule(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de' "
      "and c.serverInformation.memory > 64");
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_EQ(rule->search.size(), 1u);
  EXPECT_EQ(rule->search[0].extension, "CycleProvider");
  EXPECT_EQ(rule->search[0].variable, "c");
  EXPECT_EQ(rule->register_variable, "c");
  ASSERT_EQ(rule->where.size(), 2u);

  EXPECT_EQ(rule->where[0].op, rdbms::CompareOp::kContains);
  EXPECT_EQ(rule->where[0].lhs.path.variable, "c");
  ASSERT_EQ(rule->where[0].lhs.path.steps.size(), 1u);
  EXPECT_EQ(rule->where[0].lhs.path.steps[0].property, "serverHost");
  EXPECT_EQ(rule->where[0].rhs.kind, Operand::Kind::kString);
  EXPECT_EQ(rule->where[0].rhs.text, "uni-passau.de");

  EXPECT_EQ(rule->where[1].op, rdbms::CompareOp::kGt);
  ASSERT_EQ(rule->where[1].lhs.path.steps.size(), 2u);
  EXPECT_EQ(rule->where[1].rhs.kind, Operand::Kind::kNumber);
  EXPECT_EQ(rule->where[1].rhs.number, 64.0);
}

TEST(RuleParserTest, MultipleSearchEntries) {
  Result<RuleAst> rule = ParseRule(
      "search CycleProvider c, ServerInformation s register c "
      "where c.serverInformation = s and s.memory > 64");
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_EQ(rule->search.size(), 2u);
  EXPECT_EQ(rule->search[1].extension, "ServerInformation");
  EXPECT_EQ(rule->search[1].variable, "s");
  // Join predicate: path = bare variable.
  EXPECT_TRUE(rule->where[0].rhs.path.IsBareVariable());
}

TEST(RuleParserTest, RuleWithoutWhere) {
  Result<RuleAst> rule = ParseRule("search CycleProvider c register c");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->where.empty());
}

TEST(RuleParserTest, AnyOperator) {
  Result<RuleAst> rule =
      ParseRule("search C c register c where c.tags? = 'x'");
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_TRUE(rule->where[0].lhs.path.steps[0].any);
}

TEST(RuleParserTest, ConstantOnLeft) {
  Result<RuleAst> rule =
      ParseRule("search C c register c where 64 < c.memory");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->where[0].lhs.kind, Operand::Kind::kNumber);
  EXPECT_EQ(rule->where[0].op, rdbms::CompareOp::kLt);
}

TEST(RuleParserTest, ToStringRoundTrips) {
  const std::string text =
      "search CycleProvider c, ServerInformation s register c "
      "where c.serverInformation = s and s.memory > 64";
  Result<RuleAst> rule = ParseRule(text);
  ASSERT_TRUE(rule.ok());
  Result<RuleAst> reparsed = ParseRule(rule->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->ToString(), rule->ToString());
}

TEST(RuleParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseRule("").ok());
  EXPECT_FALSE(ParseRule("search register c").ok());
  EXPECT_FALSE(ParseRule("search C c").ok());  // Missing register.
  EXPECT_FALSE(ParseRule("search C c register").ok());
  EXPECT_FALSE(ParseRule("search C c register c where").ok());
  EXPECT_FALSE(ParseRule("search C c register c where c =").ok());
  EXPECT_FALSE(ParseRule("search C c register c where c ~ 1").ok());
  EXPECT_FALSE(ParseRule("search C c register c extra").ok());
  EXPECT_FALSE(ParseRule("search C c register c where c. = 1").ok());
  EXPECT_FALSE(ParseRule("search C c, register c").ok());
}

TEST(RuleParserTest, WhereChainOfAnds) {
  Result<RuleAst> rule = ParseRule(
      "search C c register c where c.a = 1 and c.b = 2 and c.d = 3");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->where.size(), 3u);
}

}  // namespace
}  // namespace mdv::rules
