// TraceAggregator tests: synthetic span trees with known timings must
// produce exact per-stage attribution that tiles the end-to-end window;
// structurally broken traces are flagged incomplete instead of skewing
// the latency figures; and a live system run aggregates cleanly.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "mdv/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_aggregate.h"
#include "rdf/parser.h"
#include "rdf/schema.h"

namespace mdv::obs {
namespace {

constexpr int64_t kMs = 1'000'000;  // ns per millisecond.

SpanRecord MakeSpan(uint64_t trace, uint64_t id, uint64_t parent,
                    const std::string& name, int64_t start_ns, int64_t end_ns,
                    const std::string& lmr = "") {
  SpanRecord span;
  span.trace_id = trace;
  span.span_id = id;
  span.parent_id = parent;
  span.name = name;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  if (!lmr.empty()) span.attributes.emplace_back("lmr", lmr);
  return span;
}

TEST(TraceAggregatorTest, AsyncTraceTilesAllSevenStages) {
  // publish(0..10ms) ── filter(1..3) ── enqueue(3.5..4) ──
  //   deliver(6..7) ── apply(8..10), all for lmr 7.
  std::vector<SpanRecord> spans = {
      MakeSpan(1, 1, 0, "mdp.publish", 0, 10 * kMs),
      MakeSpan(1, 2, 1, "filter.run", 1 * kMs, 3 * kMs),
      MakeSpan(1, 3, 1, "net.enqueue", 3 * kMs + kMs / 2, 4 * kMs, "7"),
      MakeSpan(1, 4, 1, "net.deliver", 6 * kMs, 7 * kMs, "7"),
      MakeSpan(1, 5, 1, "lmr.apply_notification", 8 * kMs, 10 * kMs, "7"),
  };
  MetricsRegistry registry;
  TraceAggregator agg(&registry);
  agg.Ingest(spans);

  EXPECT_EQ(agg.traces(), 1);
  EXPECT_EQ(agg.samples(), 1);
  EXPECT_EQ(agg.incomplete_traces(), 0);
  EXPECT_EQ(agg.EndToEnd().count, 1);
  EXPECT_EQ(agg.EndToEnd().sum, 10000);  // 10ms in us.

  // Exact tiling: root→filter 1ms, filter 2ms, filter-end→enqueue-end
  // 1ms, enqueue-end→deliver-start 2ms, deliver 1ms, deliver-end→apply
  // 1ms, apply 2ms.
  const std::vector<std::string> expected = {
      "ingest", "filter", "publish", "transport", "deliver", "holdback",
      "apply"};
  EXPECT_EQ(agg.StageNames(), expected);
  EXPECT_EQ(agg.StageSnapshot("ingest").sum, 1000);
  EXPECT_EQ(agg.StageSnapshot("filter").sum, 2000);
  EXPECT_EQ(agg.StageSnapshot("publish").sum, 1000);
  EXPECT_EQ(agg.StageSnapshot("transport").sum, 2000);
  EXPECT_EQ(agg.StageSnapshot("deliver").sum, 1000);
  EXPECT_EQ(agg.StageSnapshot("holdback").sum, 1000);
  EXPECT_EQ(agg.StageSnapshot("apply").sum, 2000);
  EXPECT_DOUBLE_EQ(agg.StageCoverage(), 1.0);

  // Critical path: transport ties with filter and apply at 2ms; the
  // top entry must be one of them with fraction 0.2.
  std::vector<CriticalPathEntry> path = agg.CriticalPath();
  ASSERT_EQ(path.size(), 7u);
  EXPECT_EQ(path[0].total_us, 2000);
  EXPECT_DOUBLE_EQ(path[0].fraction, 0.2);

  // The samples also landed in the registry histograms.
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.histograms.at("mdv.slo.end_to_end_us").count, 1);
  EXPECT_EQ(snap.histograms.at("mdv.slo.stage.transport_us").sum, 2000);
}

TEST(TraceAggregatorTest, SyncDeliverContainingApplySkipsTransport) {
  // Sync mode: network.deliver(2.5..4.5ms) contains apply(3..4ms); the
  // deliver stage is deliver-start→apply-start, no transport/holdback.
  std::vector<SpanRecord> spans = {
      MakeSpan(2, 1, 0, "mdp.publish", 0, 5 * kMs),
      MakeSpan(2, 2, 1, "filter.run", 1 * kMs, 2 * kMs),
      MakeSpan(2, 3, 1, "network.deliver", 2 * kMs + kMs / 2, 4 * kMs + kMs / 2,
               "1"),
      MakeSpan(2, 4, 3, "lmr.apply_notification", 3 * kMs, 4 * kMs, "1"),
  };
  MetricsRegistry registry;
  TraceAggregator agg(&registry);
  agg.Ingest(spans);

  ASSERT_EQ(agg.samples(), 1);
  EXPECT_EQ(agg.EndToEnd().sum, 4000);  // root.start → apply.end.
  const std::vector<std::string> expected = {"ingest", "filter", "publish",
                                             "deliver", "apply"};
  EXPECT_EQ(agg.StageNames(), expected);
  EXPECT_EQ(agg.StageSnapshot("ingest").sum, 1000);
  EXPECT_EQ(agg.StageSnapshot("filter").sum, 1000);
  EXPECT_EQ(agg.StageSnapshot("publish").sum, 500);
  EXPECT_EQ(agg.StageSnapshot("deliver").sum, 500);
  EXPECT_EQ(agg.StageSnapshot("apply").sum, 1000);
  EXPECT_DOUBLE_EQ(agg.StageCoverage(), 1.0);
}

TEST(TraceAggregatorTest, MultipleAppliesPairWithTheirEnqueues) {
  // Two LMRs on one publish; lmr 9 receives two notifications (update
  // protocol). The k-th apply of lmr 9 pairs with its k-th enqueue.
  std::vector<SpanRecord> spans = {
      MakeSpan(3, 1, 0, "mdp.publish", 0, 20 * kMs),
      MakeSpan(3, 2, 1, "filter.run", 1 * kMs, 2 * kMs),
      MakeSpan(3, 3, 1, "net.enqueue", 2 * kMs, 3 * kMs, "8"),
      MakeSpan(3, 4, 1, "net.enqueue", 3 * kMs, 4 * kMs, "9"),
      MakeSpan(3, 5, 1, "net.enqueue", 4 * kMs, 5 * kMs, "9"),
      MakeSpan(3, 6, 1, "net.deliver", 6 * kMs, 7 * kMs, "8"),
      MakeSpan(3, 7, 1, "net.deliver", 7 * kMs, 8 * kMs, "9"),
      MakeSpan(3, 8, 1, "net.deliver", 8 * kMs, 9 * kMs, "9"),
      MakeSpan(3, 9, 1, "lmr.apply_notification", 7 * kMs, 8 * kMs, "8"),
      MakeSpan(3, 10, 1, "lmr.apply_notification", 9 * kMs, 10 * kMs, "9"),
      MakeSpan(3, 11, 1, "lmr.apply_notification", 11 * kMs, 12 * kMs, "9"),
  };
  MetricsRegistry registry;
  TraceAggregator agg(&registry);
  agg.Ingest(spans);
  EXPECT_EQ(agg.samples(), 3);  // One per apply.
  EXPECT_EQ(agg.EndToEnd().count, 3);
  EXPECT_DOUBLE_EQ(agg.StageCoverage(), 1.0);
}

TEST(TraceAggregatorTest, BrokenTracesAreFlaggedNotAggregated) {
  // Trace 5 lost its root to ring eviction; trace 6 has a dangling
  // parent link. Neither may contribute samples.
  std::vector<SpanRecord> spans = {
      MakeSpan(5, 2, 1, "filter.run", 0, kMs),
      MakeSpan(5, 3, 1, "lmr.apply_notification", 2 * kMs, 3 * kMs, "1"),
      MakeSpan(6, 1, 0, "mdp.publish", 0, 3 * kMs),
      MakeSpan(6, 3, 99, "lmr.apply_notification", 1 * kMs, 2 * kMs, "1"),
      MakeSpan(7, 1, 0, "mdp.publish", 0, 2 * kMs),
      MakeSpan(7, 2, 1, "lmr.apply_notification", 1 * kMs, 2 * kMs, "1"),
  };
  MetricsRegistry registry;
  TraceAggregator agg(&registry);
  agg.Ingest(spans, /*dropped_spans=*/4);
  EXPECT_EQ(agg.traces(), 3);
  EXPECT_EQ(agg.incomplete_traces(), 2);
  EXPECT_EQ(agg.samples(), 1);  // Only trace 7.
  EXPECT_EQ(agg.dropped_spans(), 4);
  std::string json = agg.SummaryJson();
  EXPECT_NE(json.find("\"incomplete_traces\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\": 4"), std::string::npos);
}

TEST(TraceAggregatorTest, SummaryJsonHasTheScenarioKeys) {
  std::vector<SpanRecord> spans = {
      MakeSpan(1, 1, 0, "mdp.publish", 0, 10 * kMs),
      MakeSpan(1, 2, 1, "filter.run", 1 * kMs, 3 * kMs),
      MakeSpan(1, 3, 1, "net.enqueue", 4 * kMs, 5 * kMs, "7"),
      MakeSpan(1, 4, 1, "net.deliver", 6 * kMs, 7 * kMs, "7"),
      MakeSpan(1, 5, 1, "lmr.apply_notification", 8 * kMs, 10 * kMs, "7"),
  };
  MetricsRegistry registry;
  TraceAggregator agg(&registry);
  agg.Ingest(spans);
  std::string json = agg.SummaryJson();
  for (const char* key :
       {"\"end_to_end_samples\": 1", "\"attributed_stages\": 7",
        "\"stage_coverage\": 1.0000", "\"end_to_end_us\"", "\"p50\"",
        "\"p99\"", "\"stages\"", "\"critical_path\"", "\"transport\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

rdf::RdfDocument MakeProviderDoc(const std::string& uri) {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory", rdf::PropertyValue::Literal("92"));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost",
                   rdf::PropertyValue::Literal("pirates.uni-passau.de"));
  host.AddProperty("serverPort", rdf::PropertyValue::Literal("5874"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

TEST(TraceAggregatorTest, LiveSystemRunAggregatesCleanly) {
  MdvSystem system(rdf::MakeObjectGlobeSchema());
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* lmr = system.AddRepository(provider);
  ASSERT_TRUE(lmr->Subscribe("search CycleProvider c register c "
                             "where c.serverInformation.memory > 64")
                  .ok());
  DefaultTracer().Clear();
  ASSERT_TRUE(provider->RegisterDocument(MakeProviderDoc("d.rdf")).ok());

  MetricsRegistry registry;
  TraceAggregator agg(&registry);
  agg.IngestTracer(DefaultTracer());

  EXPECT_EQ(agg.incomplete_traces(), 0);
  ASSERT_GE(agg.samples(), 1);
  EXPECT_GE(agg.EndToEnd().count, 1);
  // Real sub-millisecond runs can truncate tiny stages to zero, but the
  // filter and apply work must be visible and the tiling near-complete.
  std::vector<std::string> stages = agg.StageNames();
  EXPECT_FALSE(stages.empty());
  EXPECT_NE(std::find(stages.begin(), stages.end(), "filter"), stages.end());
  EXPECT_GT(agg.StageCoverage(), 0.5);
  EXPECT_LE(agg.StageCoverage(), 1.0);
}

}  // namespace
}  // namespace mdv::obs
