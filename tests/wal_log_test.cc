// WAL framing and journal behavior: record round trips, torn-tail
// truncation at every byte offset, bit-flip detection, segment
// rotation, manifest round trips, checkpoint pruning and read-only
// (fsck) opens.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "wal/log.h"
#include "wal/record.h"

namespace mdv::wal {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the test temp root, unique per test.
std::string TestDir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("wal_log_test_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

TEST(WalRecordTest, EncodeScanRoundTrip) {
  std::string buffer;
  buffer += EncodeWalRecord(2, "alpha");
  buffer += EncodeWalRecord(3, "");
  buffer += EncodeWalRecord(7, std::string(1000, 'x'));
  const WalScan scan = ScanWalBuffer(buffer);
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.valid_bytes, buffer.size());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].type, 2);
  EXPECT_EQ(scan.records[0].payload, "alpha");
  EXPECT_EQ(scan.records[1].type, 3);
  EXPECT_EQ(scan.records[1].payload, "");
  EXPECT_EQ(scan.records[2].payload.size(), 1000u);
}

TEST(WalRecordTest, TruncationAtEveryByteEndsTheValidPrefix) {
  std::string buffer;
  buffer += EncodeWalRecord(1, "first");
  const size_t first_end = buffer.size();
  buffer += EncodeWalRecord(2, "second record payload");
  // Cutting anywhere inside the second record must keep exactly the
  // first and flag the tail as torn.
  for (size_t cut = first_end + 1; cut < buffer.size(); ++cut) {
    const WalScan scan = ScanWalBuffer(buffer.substr(0, cut));
    EXPECT_EQ(scan.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, first_end) << "cut at " << cut;
    EXPECT_TRUE(scan.torn) << "cut at " << cut;
    EXPECT_FALSE(scan.tail_error.empty()) << "cut at " << cut;
  }
}

TEST(WalRecordTest, BitFlipAnywhereInvalidatesTheRecord) {
  std::string buffer;
  buffer += EncodeWalRecord(1, "first");
  const size_t first_end = buffer.size();
  buffer += EncodeWalRecord(2, "payload under test");
  // Flip one bit at a few offsets across header and payload of the
  // second record; the first record must always survive, the second
  // must never decode. (Reserved-byte flips and checksum flips are
  // covered by the spread of offsets.)
  for (size_t offset = first_end; offset < buffer.size(); offset += 3) {
    std::string mangled = buffer;
    mangled[offset] = static_cast<char>(mangled[offset] ^ 0x40);
    const WalScan scan = ScanWalBuffer(mangled);
    ASSERT_GE(scan.records.size(), 1u) << "flip at " << offset;
    EXPECT_EQ(scan.records[0].payload, "first") << "flip at " << offset;
    EXPECT_LE(scan.records.size(), 1u) << "flip at " << offset;
    EXPECT_TRUE(scan.torn) << "flip at " << offset;
  }
}

TEST(WalRecordTest, PayloadReaderBoundsAndStickiness) {
  std::string payload;
  PutU32(payload, 7);
  PutString(payload, "abc");
  PutI64(payload, -5);
  PayloadReader reader(payload);
  EXPECT_EQ(reader.ReadU32().value_or(0), 7u);
  EXPECT_EQ(reader.ReadString().value_or(""), "abc");
  EXPECT_EQ(reader.ReadI64().value_or(0), -5);
  EXPECT_TRUE(reader.Done());
  // Reading past the end fails and stays failed.
  EXPECT_FALSE(reader.ReadU8().has_value());
  EXPECT_TRUE(reader.failed());
  EXPECT_FALSE(reader.Done());

  // A string length pointing past the buffer must not read out of
  // bounds.
  std::string truncated;
  PutU32(truncated, 1000);
  truncated += "short";
  PayloadReader bad(truncated);
  EXPECT_FALSE(bad.ReadString().has_value());
  EXPECT_TRUE(bad.failed());
}

TEST(WalJournalTest, FreshOpenAppendReopenReplays) {
  const std::string dir = TestDir("fresh");
  WalOptions options;
  options.dir = dir;
  Manifest meta;
  meta.kind = "test";
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(options, meta);
    ASSERT_TRUE(journal.ok()) << journal.status();
    EXPECT_TRUE((*journal)->recovery().fresh);
    ASSERT_TRUE((*journal)->Append(5, "one").ok());
    ASSERT_TRUE((*journal)->Append(6, "two").ok());
  }
  Result<std::unique_ptr<Journal>> reopened = Journal::Open(options, meta);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const RecoveryInfo& rec = (*reopened)->recovery();
  EXPECT_FALSE(rec.fresh);
  EXPECT_EQ(rec.manifest.kind, "test");
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[0].payload, "one");
  EXPECT_EQ(rec.records[1].payload, "two");
  EXPECT_TRUE(rec.snapshot.empty());
}

TEST(WalJournalTest, KindMismatchIsRejected) {
  const std::string dir = TestDir("kind");
  WalOptions options;
  options.dir = dir;
  Manifest meta;
  meta.kind = "mdp";
  { ASSERT_TRUE(Journal::Open(options, meta).ok()); }
  meta.kind = "lmr";
  EXPECT_FALSE(Journal::Open(options, meta).ok());
}

TEST(WalJournalTest, TornTailIsTruncatedOnWriteOpen) {
  const std::string dir = TestDir("torn");
  WalOptions options;
  options.dir = dir;
  Manifest meta;
  meta.kind = "test";
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(options, meta);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(1, "kept").ok());
    ASSERT_TRUE((*journal)->Append(2, "torn away").ok());
  }
  // Chop the last record mid-payload, as a crash during write would.
  const std::string seg = dir + "/" + SegmentFileName(1);
  std::string bytes = ReadFile(seg);
  ASSERT_GT(bytes.size(), 5u);
  WriteFile(seg, bytes.substr(0, bytes.size() - 5));

  Result<std::unique_ptr<Journal>> reopened = Journal::Open(options, meta);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const RecoveryInfo& rec = (*reopened)->recovery();
  ASSERT_EQ(rec.records.size(), 1u);
  EXPECT_EQ(rec.records[0].payload, "kept");
  EXPECT_GT(rec.truncated_tail_bytes, 0u);
  EXPECT_FALSE(rec.tail_error.empty());
  // The file itself was repaired: appending after the truncation point
  // and re-scanning yields exactly [kept, after].
  ASSERT_TRUE((*reopened)->Append(3, "after").ok());
  const WalScan scan = ScanWalBuffer(ReadFile(seg));
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1].payload, "after");
}

TEST(WalJournalTest, ReadOnlyOpenReportsButNeverRepairs) {
  const std::string dir = TestDir("readonly");
  WalOptions options;
  options.dir = dir;
  Manifest meta;
  meta.kind = "test";
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(options, meta);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(1, "kept").ok());
    ASSERT_TRUE((*journal)->Append(2, "torn away").ok());
  }
  const std::string seg = dir + "/" + SegmentFileName(1);
  const std::string original = ReadFile(seg);
  WriteFile(seg, original.substr(0, original.size() - 5));
  const std::string mangled = ReadFile(seg);

  WalOptions ro = options;
  ro.read_only = true;
  Result<std::unique_ptr<Journal>> journal = Journal::Open(ro, meta);
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_EQ((*journal)->recovery().records.size(), 1u);
  EXPECT_GT((*journal)->recovery().truncated_tail_bytes, 0u);
  // The torn bytes are still on disk, and mutation is refused.
  EXPECT_EQ(ReadFile(seg), mangled);
  EXPECT_FALSE((*journal)->Append(3, "nope").ok());
  EXPECT_FALSE((*journal)->Checkpoint("snap").ok());
}

TEST(WalJournalTest, RotationSplitsSegmentsAndReplaysInOrder) {
  const std::string dir = TestDir("rotate");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 64;  // Force a rotation every couple records.
  options.fsync = FsyncPolicy::kNone;
  Manifest meta;
  meta.kind = "test";
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(options, meta);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          (*journal)->Append(1, "record-" + std::to_string(i)).ok());
    }
  }
  size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("seg-", 0) == 0) ++segments;
  }
  EXPECT_GT(segments, 1u);
  Result<std::unique_ptr<Journal>> reopened = Journal::Open(options, meta);
  ASSERT_TRUE(reopened.ok());
  const RecoveryInfo& rec = (*reopened)->recovery();
  ASSERT_EQ(rec.records.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rec.records[i].payload, "record-" + std::to_string(i));
  }
}

TEST(WalJournalTest, CheckpointInstallsSnapshotAndPrunes) {
  const std::string dir = TestDir("checkpoint");
  WalOptions options;
  options.dir = dir;
  Manifest meta;
  meta.kind = "test";
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(options, meta);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(1, "pre-checkpoint").ok());
    EXPECT_EQ((*journal)->appended_since_checkpoint(), 1);
    ASSERT_TRUE((*journal)->Checkpoint("STATE-AT-CHECKPOINT").ok());
    EXPECT_EQ((*journal)->appended_since_checkpoint(), 0);
    EXPECT_EQ((*journal)->epoch(), 1u);
    ASSERT_TRUE((*journal)->Append(2, "post-checkpoint").ok());
  }
  Result<std::unique_ptr<Journal>> reopened = Journal::Open(options, meta);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const RecoveryInfo& rec = (*reopened)->recovery();
  EXPECT_EQ(rec.snapshot, "STATE-AT-CHECKPOINT");
  ASSERT_EQ(rec.records.size(), 1u);
  EXPECT_EQ(rec.records[0].payload, "post-checkpoint");
  // The pre-checkpoint segment is gone.
  EXPECT_FALSE(fs::exists(dir + "/" + SegmentFileName(1)));
}

TEST(WalJournalTest, CrashMidCheckpointLeavesOldEpochIntact) {
  const std::string dir = TestDir("mid_checkpoint");
  WalOptions options;
  options.dir = dir;
  Manifest meta;
  meta.kind = "test";
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(options, meta);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(1, "epoch1-record").ok());
    ASSERT_TRUE((*journal)->Checkpoint("EPOCH-1").ok());
    ASSERT_TRUE((*journal)->Append(2, "after-checkpoint").ok());
  }
  // Simulate a crash during the *next* checkpoint, at each point before
  // the manifest commit: a half-written temp snapshot, and a completed
  // snap-2 that the manifest never started referencing. Both must be
  // ignored — recovery stays on epoch 1 + its log suffix.
  WriteFile(dir + "/" + SnapshotFileName(2) + ".tmp", "GARBAGE-HALF-WRIT");
  WriteFile(dir + "/" + SnapshotFileName(2), "EPOCH-2-UNCOMMITTED");
  Result<std::unique_ptr<Journal>> reopened = Journal::Open(options, meta);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->epoch(), 1u);
  EXPECT_EQ((*reopened)->recovery().snapshot, "EPOCH-1");
  ASSERT_EQ((*reopened)->recovery().records.size(), 1u);
  EXPECT_EQ((*reopened)->recovery().records[0].payload, "after-checkpoint");
  // And the journal keeps working: the orphaned epoch-2 name is
  // reclaimed by the next real checkpoint.
  ASSERT_TRUE((*reopened)->Checkpoint("EPOCH-2-REAL").ok());
  EXPECT_EQ((*reopened)->epoch(), 2u);
  reopened->reset();
  Result<std::unique_ptr<Journal>> final_open = Journal::Open(options, meta);
  ASSERT_TRUE(final_open.ok()) << final_open.status();
  EXPECT_EQ((*final_open)->recovery().snapshot, "EPOCH-2-REAL");
}

TEST(WalJournalTest, ManifestRoundTripsIdentity) {
  const std::string dir = TestDir("manifest");
  WalOptions options;
  options.dir = dir;
  Manifest meta;
  meta.kind = "mdp";
  meta.num_shards = 4;
  meta.schema_text = "MDVSCHEMA1\nclass A\n";
  { ASSERT_TRUE(Journal::Open(options, meta).ok()); }
  Result<Manifest> loaded = LoadManifest(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->kind, "mdp");
  EXPECT_EQ(loaded->num_shards, 4u);
  EXPECT_EQ(loaded->schema_text, meta.schema_text);
  EXPECT_EQ(loaded->epoch, 0u);
  EXPECT_FALSE(LoadManifest(dir + "-nonexistent").ok());
}

TEST(WalJournalTest, MidChainCorruptionFailsWriteOpenButNotReadOnly) {
  const std::string dir = TestDir("midchain");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 64;
  Manifest meta;
  meta.kind = "test";
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(options, meta);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          (*journal)->Append(1, "record-" + std::to_string(i)).ok());
    }
  }
  // Corrupt the FIRST segment — not the tail. A write-mode open cannot
  // safely truncate history out of the middle of the chain.
  const std::string seg = dir + "/" + SegmentFileName(1);
  std::string bytes = ReadFile(seg);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  WriteFile(seg, bytes);

  EXPECT_FALSE(Journal::Open(options, meta).ok());

  WalOptions ro = options;
  ro.read_only = true;
  Result<std::unique_ptr<Journal>> fsck = Journal::Open(ro, meta);
  ASSERT_TRUE(fsck.ok()) << fsck.status();
  EXPECT_FALSE((*fsck)->recovery().segment_errors.empty());
}

TEST(WalJournalTest, BatchFsyncPolicyStillReplaysEverything) {
  const std::string dir = TestDir("batch");
  WalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kBatch;
  options.fsync_batch_records = 4;
  Manifest meta;
  meta.kind = "test";
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(options, meta);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*journal)->Append(1, std::to_string(i)).ok());
    }
    ASSERT_TRUE((*journal)->Sync().ok());
  }
  Result<std::unique_ptr<Journal>> reopened = Journal::Open(options, meta);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->recovery().records.size(), 10u);
}

}  // namespace
}  // namespace mdv::wal
