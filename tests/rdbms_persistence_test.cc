#include "rdbms/persistence.h"

#include <gtest/gtest.h>

#include <sstream>

#include "bench_support/workload.h"
#include "filter/data_store.h"
#include "filter/engine.h"
#include "filter/rule_store.h"
#include "rdbms/sql.h"
#include "rdbms/table.h"

namespace mdv::rdbms {
namespace {

TEST(PersistenceTest, RoundTripsSchemasIndexesAndRows) {
  Database db;
  Table* t = *db.CreateTable(TableSchema(
      "people", {ColumnDef{"name", ColumnType::kString},
                 ColumnDef{"age", ColumnType::kInt64},
                 ColumnDef{"score", ColumnType::kDouble}}));
  ASSERT_TRUE(t->CreateIndex("age", IndexKind::kBTree).ok());
  ASSERT_TRUE(
      t->Insert(Row{Value("ada"), Value(int64_t{36}), Value(0.25)}).ok());
  ASSERT_TRUE(t->Insert(Row{Value("bob line\nwith\ttabs and spaces"),
                            Value(int64_t{-7}), Value()})
                  .ok());
  ASSERT_TRUE(db.CreateTable(TableSchema("empty", {ColumnDef{"x"}})).ok());

  std::stringstream stream;
  ASSERT_TRUE(SaveDatabase(db, stream).ok());
  Result<std::unique_ptr<Database>> loaded = LoadDatabase(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  Table* reloaded = (*loaded)->GetTable("people");
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->NumRows(), 2u);
  EXPECT_TRUE((*loaded)->HasTable("empty"));

  // The index survived and is used.
  std::vector<RowId> hits = reloaded->SelectRowIds(
      {ScanCondition{1, CompareOp::kEq, Value(int64_t{36})}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ((*reloaded->Get(hits[0]))[0].as_string(), "ada");
  EXPECT_EQ(reloaded->stats().index_lookups, 1);

  // Strings with escapes and NULLs round-trip.
  hits = reloaded->SelectRowIds(
      {ScanCondition{1, CompareOp::kEq, Value(int64_t{-7})}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ((*reloaded->Get(hits[0]))[0].as_string(),
            "bob line\nwith\ttabs and spaces");
  EXPECT_TRUE((*reloaded->Get(hits[0]))[2].is_null());
}

TEST(PersistenceTest, FileRoundTrip) {
  Database db;
  Table* t = *db.CreateTable(
      TableSchema("t", {ColumnDef{"v", ColumnType::kInt64}}));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->Insert(Row{Value(i)}).ok());
  }
  const std::string path = ::testing::TempDir() + "/mdv_persistence_test.db";
  ASSERT_TRUE(SaveDatabaseToFile(db, path).ok());
  Result<std::unique_ptr<Database>> loaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->GetTable("t")->NumRows(), 100u);
}

TEST(PersistenceTest, LoadErrors) {
  std::stringstream empty;
  EXPECT_EQ(LoadDatabase(empty).status().code(), StatusCode::kParseError);
  std::stringstream bad_header("NOPE\nEND\n");
  EXPECT_EQ(LoadDatabase(bad_header).status().code(),
            StatusCode::kParseError);
  std::stringstream truncated("MDVDB1\nTABLE t 1 2\nCOL x STRING 1\nV S a\n");
  EXPECT_EQ(LoadDatabase(truncated).status().code(),
            StatusCode::kParseError);
  std::stringstream garbage("MDVDB1\nWHAT\nEND\n");
  EXPECT_EQ(LoadDatabase(garbage).status().code(), StatusCode::kParseError);
  EXPECT_EQ(LoadDatabaseFromFile("/nonexistent/x.db").status().code(),
            StatusCode::kNotFound);
}

// Mangled-snapshot corpus: every prefix truncation and a set of token
// corruptions of a valid image must come back as a Status — never a
// crash, never an unchecked huge allocation.
TEST(PersistenceTest, MangledSnapshotCorpusNeverCrashes) {
  Database db;
  Table* t = *db.CreateTable(TableSchema(
      "people", {ColumnDef{"name", ColumnType::kString},
                 ColumnDef{"age", ColumnType::kInt64},
                 ColumnDef{"score", ColumnType::kDouble}}));
  ASSERT_TRUE(t->CreateIndex("age", IndexKind::kBTree).ok());
  ASSERT_TRUE(
      t->Insert(Row{Value("ada"), Value(int64_t{36}), Value(0.25)}).ok());
  ASSERT_TRUE(
      t->Insert(Row{Value("esc\n\t chars"), Value(int64_t{-7}), Value()})
          .ok());
  std::stringstream saved;
  ASSERT_TRUE(SaveDatabase(db, saved).ok());
  const std::string image = saved.str();

  // Torn writes: cut the image at every byte boundary.
  for (size_t cut = 0; cut < image.size(); ++cut) {
    std::stringstream mangled(image.substr(0, cut));
    Result<std::unique_ptr<Database>> loaded = LoadDatabase(mangled);
    if (loaded.ok()) {
      // A cut exactly after a complete END line may still parse; it
      // must then be a coherent database, not a half-read one.
      EXPECT_TRUE((*loaded)->CheckInvariants().ok()) << "cut at " << cut;
    }
  }

  // Token corruptions. Each entry mangles one structural element.
  const struct {
    const char* name;
    std::string from;
    std::string to;
  } kCorruptions[] = {
      {"negative column count", "TABLE people 3 2", "TABLE people -3 2"},
      {"negative row count", "TABLE people 3 2", "TABLE people 3 -2"},
      {"huge row count", "TABLE people 3 2", "TABLE people 3 99999999999"},
      {"huge column count", "TABLE people 3 2",
       "TABLE people 4294967295 2"},
      {"missing END", "END\n", ""},
      {"unknown value tag", "V I 36", "V Q 36"},
      {"non-numeric int", "V I 36", "V I thirtysix"},
      {"row arity break", "V I 36\n", ""},
      {"column type garbage", "INT64", "INT63"},
      {"index on unknown column", "INDEX age BTREE", "INDEX ghost BTREE"},
  };
  for (const auto& corruption : kCorruptions) {
    const size_t at = image.find(corruption.from);
    ASSERT_NE(at, std::string::npos) << corruption.name;
    std::string mangled_text = image;
    mangled_text.replace(at, corruption.from.size(), corruption.to);
    std::stringstream mangled(mangled_text);
    Result<std::unique_ptr<Database>> loaded = LoadDatabase(mangled);
    EXPECT_FALSE(loaded.ok()) << corruption.name;
  }

  // Bit flips in the header magic.
  for (size_t i = 0; i < 6; ++i) {
    std::string mangled_text = image;
    mangled_text[i] ^= 0x20;
    std::stringstream mangled(mangled_text);
    EXPECT_FALSE(LoadDatabase(mangled).ok()) << "magic flip at " << i;
  }

  // The pristine image still loads — the corpus harness itself is sane.
  std::stringstream pristine(image);
  ASSERT_TRUE(LoadDatabase(pristine).ok());
}

// An MDP's filter state survives a save/load cycle: the reloaded
// database answers the same filter runs (checkpoint/restart scenario).
TEST(PersistenceTest, FilterStateSurvivesReload) {
  bench_support::WorkloadGenerator generator(
      {bench_support::BenchRuleType::kPath, 50, 0.1});
  bench_support::FilterFixture fixture;
  std::vector<int64_t> ends;
  for (size_t i = 0; i < 50; ++i) {
    ends.push_back(*fixture.RegisterRule(generator.RuleText(i)));
  }
  ASSERT_TRUE(
      fixture.RegisterDocumentBatch(generator.MakeDocumentBatch(0, 25)).ok());

  std::stringstream stream;
  ASSERT_TRUE(SaveDatabase(fixture.db(), stream).ok());
  Result<std::unique_ptr<Database>> loaded = LoadDatabase(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Continue filtering on the reloaded database.
  filter::RuleStore store(loaded->get());
  filter::FilterEngine engine(loaded->get(), &store);
  std::vector<rdf::RdfDocument> more = generator.MakeDocumentBatch(25, 25);
  rdf::Statements delta;
  for (const rdf::RdfDocument& doc : more) {
    rdf::Statements atoms = doc.ToStatements();
    delta.insert(delta.end(), atoms.begin(), atoms.end());
  }
  ASSERT_TRUE(filter::InsertAtoms(loaded->get(), delta).ok());
  Result<filter::FilterRunResult> result = engine.Run(delta);
  ASSERT_TRUE(result.ok()) << result.status();
  for (size_t i = 25; i < 50; ++i) {
    const std::vector<std::string>* matches = result->MatchesFor(ends[i]);
    ASSERT_NE(matches, nullptr) << "rule " << i;
    EXPECT_EQ(*matches,
              std::vector<std::string>{
                  bench_support::WorkloadGenerator::DocumentUri(i) + "#host"});
  }
}

}  // namespace
}  // namespace mdv::rdbms
