#include "filter/engine.h"

#include <gtest/gtest.h>

#include "bench_support/workload.h"
#include "filter/data_store.h"
#include "rdf/parser.h"
#include "rules/compiler.h"

namespace mdv::filter {
namespace {

using bench_support::FilterFixture;

constexpr char kFigure1[] = R"(<rdf:RDF>
  <og:CycleProvider rdf:ID="host">
    <og:serverHost>pirates.uni-passau.de</og:serverHost>
    <og:serverPort>5874</og:serverPort>
    <og:serverInformation>
      <og:ServerInformation rdf:ID="info">
        <og:memory>92</og:memory>
        <og:cpu>600</og:cpu>
      </og:ServerInformation>
    </og:serverInformation>
  </og:CycleProvider>
</rdf:RDF>)";

rdf::RdfDocument Figure1Document() {
  Result<rdf::RdfDocument> doc = rdf::ParseRdfXml(kFigure1, "doc.rdf");
  EXPECT_TRUE(doc.ok()) << doc.status();
  return *doc;
}

class FilterEngineTest : public ::testing::Test {
 protected:
  Result<FilterRunResult> RegisterDoc(const rdf::RdfDocument& doc) {
    return fixture_.RegisterDocumentBatch({doc});
  }

  FilterFixture fixture_;
};

TEST_F(FilterEngineTest, TriggeringRuleMatchesFigure1) {
  Result<int64_t> rule = fixture_.RegisterRule(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de'");
  ASSERT_TRUE(rule.ok()) << rule.status();
  Result<FilterRunResult> result = RegisterDoc(Figure1Document());
  ASSERT_TRUE(result.ok()) << result.status();
  const std::vector<std::string>* matches = result->MatchesFor(*rule);
  ASSERT_NE(matches, nullptr);
  EXPECT_EQ(*matches, std::vector<std::string>{"doc.rdf#host"});
  EXPECT_EQ(result->iterations, 0);  // No join rules involved.
}

TEST_F(FilterEngineTest, OidRuleMatchesByUriReference) {
  Result<int64_t> rule = fixture_.RegisterRule(
      "search CycleProvider c register c where c = 'doc.rdf#host'");
  ASSERT_TRUE(rule.ok());
  Result<FilterRunResult> result = RegisterDoc(Figure1Document());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->MatchesFor(*rule), nullptr);
  EXPECT_EQ(*result->MatchesFor(*rule),
            std::vector<std::string>{"doc.rdf#host"});
}

TEST_F(FilterEngineTest, NonMatchingRuleStaysSilent) {
  Result<int64_t> rule = fixture_.RegisterRule(
      "search CycleProvider c register c "
      "where c.serverHost contains 'tum.de'");
  ASSERT_TRUE(rule.ok());
  Result<FilterRunResult> result = RegisterDoc(Figure1Document());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->MatchesFor(*rule), nullptr);
}

TEST_F(FilterEngineTest, PaperFigure9Run) {
  // The full §3.3.1 rule: the filter needs the initial iteration plus two
  // join iterations and ends with doc.rdf#host (Figure 9).
  Result<int64_t> rule = fixture_.RegisterRule(
      "search CycleProvider c, ServerInformation s register c "
      "where c.serverHost contains 'uni-passau.de' "
      "and c.serverInformation = s "
      "and s.memory > 64 and s.cpu > 500");
  ASSERT_TRUE(rule.ok()) << rule.status();
  Result<FilterRunResult> result = RegisterDoc(Figure1Document());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->MatchesFor(*rule), nullptr);
  EXPECT_EQ(*result->MatchesFor(*rule),
            std::vector<std::string>{"doc.rdf#host"});
  EXPECT_EQ(result->iterations, 2);
}

TEST_F(FilterEngineTest, PathRuleViaReferencedResource) {
  Result<int64_t> rule = fixture_.RegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(rule.ok());
  Result<FilterRunResult> result = RegisterDoc(Figure1Document());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->MatchesFor(*rule), nullptr);
  EXPECT_EQ(*result->MatchesFor(*rule),
            std::vector<std::string>{"doc.rdf#host"});
  EXPECT_EQ(result->iterations, 1);
}

TEST_F(FilterEngineTest, PathRuleBelowThresholdDoesNotMatch) {
  Result<int64_t> rule = fixture_.RegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 100");
  ASSERT_TRUE(rule.ok());
  Result<FilterRunResult> result = RegisterDoc(Figure1Document());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->MatchesFor(*rule), nullptr);
}

TEST_F(FilterEngineTest, SecondRegistrationIsNotRepublished) {
  Result<int64_t> rule = fixture_.RegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(rule.ok());
  ASSERT_TRUE(RegisterDoc(Figure1Document()).ok());

  // A second, unrelated document registration must not re-derive the
  // first document's matches (they are materialized).
  rdf::RdfDocument other("other.rdf");
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory", rdf::PropertyValue::Literal("16"));
  ASSERT_TRUE(other.AddResource(std::move(info)).ok());
  Result<FilterRunResult> result = RegisterDoc(other);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->MatchesFor(*rule), nullptr);
}

TEST_F(FilterEngineTest, CrossDocumentReferenceJoins) {
  // The referenced ServerInformation lives in a different document and
  // is registered *later*; the join must still fire incrementally.
  Result<int64_t> rule = fixture_.RegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(rule.ok());

  rdf::RdfDocument provider("cp.rdf");
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", rdf::PropertyValue::Literal("x.example"));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef("si.rdf#info"));
  ASSERT_TRUE(provider.AddResource(std::move(host)).ok());
  Result<FilterRunResult> first = RegisterDoc(provider);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->MatchesFor(*rule), nullptr);  // Reference dangling yet.

  rdf::RdfDocument si("si.rdf");
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory", rdf::PropertyValue::Literal("128"));
  ASSERT_TRUE(si.AddResource(std::move(info)).ok());
  Result<FilterRunResult> second = RegisterDoc(si);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_NE(second->MatchesFor(*rule), nullptr);
  EXPECT_EQ(*second->MatchesFor(*rule),
            std::vector<std::string>{"cp.rdf#host"});
}

TEST_F(FilterEngineTest, BatchRegistrationMatchesAll) {
  bench_support::WorkloadGenerator generator(
      {bench_support::BenchRuleType::kPath, 20, 0.1});
  std::vector<int64_t> end_rules;
  for (size_t i = 0; i < 20; ++i) {
    Result<int64_t> rule = fixture_.RegisterRule(generator.RuleText(i));
    ASSERT_TRUE(rule.ok()) << rule.status();
    end_rules.push_back(*rule);
  }
  Result<FilterRunResult> result =
      fixture_.RegisterDocumentBatch(generator.MakeDocumentBatch(0, 20));
  ASSERT_TRUE(result.ok()) << result.status();
  for (size_t i = 0; i < 20; ++i) {
    const std::vector<std::string>* matches =
        result->MatchesFor(end_rules[i]);
    ASSERT_NE(matches, nullptr) << "rule " << i;
    EXPECT_EQ(*matches,
              std::vector<std::string>{
                  bench_support::WorkloadGenerator::DocumentUri(i) + "#host"})
        << "rule " << i;
  }
}

TEST_F(FilterEngineTest, EvaluateNewRulesSeedsFromExistingData) {
  // Register data first, the subscription afterwards — the new atomic
  // rules must be evaluated against the whole database.
  ASSERT_TRUE(RegisterDoc(Figure1Document()).ok());
  Result<rules::CompiledRule> compiled = rules::CompileRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64",
      fixture_.schema());
  ASSERT_TRUE(compiled.ok());
  std::vector<int64_t> created;
  Result<int64_t> end =
      fixture_.store().RegisterTree(compiled->decomposed, &created);
  ASSERT_TRUE(end.ok());
  Result<FilterRunResult> seeded =
      fixture_.engine().EvaluateNewRules(created);
  ASSERT_TRUE(seeded.ok()) << seeded.status();
  ASSERT_NE(seeded->MatchesFor(*end), nullptr);
  EXPECT_EQ(*seeded->MatchesFor(*end),
            std::vector<std::string>{"doc.rdf#host"});
}

TEST_F(FilterEngineTest, SetValuedPropertiesMatchExistentially) {
  rdf::RdfSchema schema;
  ASSERT_TRUE(
      schema.AddClass(rdf::ClassBuilder("C").Literal("tags", true).Build())
          .ok());
  rdbms::Database db;
  ASSERT_TRUE(CreateFilterTables(&db).ok());
  RuleStore store(&db);
  FilterEngine engine(&db, &store);

  Result<rules::CompiledRule> compiled = rules::CompileRule(
      "search C c register c where c.tags? = 'blue'", schema);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  Result<int64_t> end = store.RegisterTree(compiled->decomposed);
  ASSERT_TRUE(end.ok());

  rdf::RdfDocument doc("d.rdf");
  rdf::Resource r("x", "C");
  r.AddProperty("tags", rdf::PropertyValue::Literal("red"));
  r.AddProperty("tags", rdf::PropertyValue::Literal("blue"));
  ASSERT_TRUE(doc.AddResource(std::move(r)).ok());
  rdf::Statements delta = doc.ToStatements();
  ASSERT_TRUE(InsertAtoms(&db, delta).ok());
  Result<FilterRunResult> result = engine.Run(delta);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->MatchesFor(*end), nullptr);
  EXPECT_EQ(*result->MatchesFor(*end), std::vector<std::string>{"d.rdf#x"});
}

TEST_F(FilterEngineTest, AblationOptionsProduceSameMatches) {
  // Rule groups and graph merging are performance features; results must
  // be identical with them disabled.
  bench_support::WorkloadGenerator generator(
      {bench_support::BenchRuleType::kJoin, 10, 0.1});

  auto run = [&](RuleStoreOptions options) {
    FilterFixture fixture(options);
    std::vector<int64_t> end_rules;
    for (size_t i = 0; i < 10; ++i) {
      Result<int64_t> rule = fixture.RegisterRule(generator.RuleText(i));
      EXPECT_TRUE(rule.ok()) << rule.status();
      end_rules.push_back(*rule);
    }
    Result<FilterRunResult> result =
        fixture.RegisterDocumentBatch(generator.MakeDocumentBatch(0, 10));
    EXPECT_TRUE(result.ok()) << result.status();
    std::vector<std::vector<std::string>> matches;
    for (int64_t rule : end_rules) {
      const std::vector<std::string>* m = result->MatchesFor(rule);
      matches.push_back(m == nullptr ? std::vector<std::string>{} : *m);
    }
    return matches;
  };

  RuleStoreOptions defaults;
  RuleStoreOptions no_groups;
  no_groups.use_rule_groups = false;
  RuleStoreOptions no_merge;
  no_merge.merge_shared_atoms = false;
  no_merge.use_rule_groups = false;

  auto expected = run(defaults);
  EXPECT_EQ(run(no_groups), expected);
  EXPECT_EQ(run(no_merge), expected);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].size(), 1u) << "rule " << i;
  }
}

}  // namespace
}  // namespace mdv::filter
