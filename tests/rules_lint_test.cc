#include "rules/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rdf/schema.h"
#include "rules/analyzer.h"
#include "rules/parser.h"

namespace mdv::rules {
namespace {

/// ObjectGlobe plus a class with a set-valued literal, to test the
/// conjunctive-safety exclusion.
rdf::RdfSchema TestSchema() {
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Status st = schema.AddClass(rdf::ClassBuilder("TaggedThing")
                                  .Literal("tag", /*set_valued=*/true)
                                  .Literal("size")
                                  .Build());
  EXPECT_TRUE(st.ok()) << st.ToString();
  return schema;
}

AnalyzedRule Analyze(const std::string& text, const rdf::RdfSchema& schema,
                     const ExtensionResolver& resolver = nullptr) {
  Result<RuleAst> ast = ParseRule(text);
  EXPECT_TRUE(ast.ok()) << ast.status();
  Result<AnalyzedRule> analyzed = AnalyzeRule(*ast, schema, resolver);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status();
  return *analyzed;
}

bool HasCode(const std::vector<LintDiagnostic>& diagnostics, LintCode code) {
  for (const LintDiagnostic& d : diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

std::string JoinDetails(const std::vector<LintDiagnostic>& diagnostics) {
  std::string out;
  for (const LintDiagnostic& d : diagnostics) {
    out += FormatLintDiagnostic(d);
    out += '\n';
  }
  return out;
}

class RulesLintTest : public ::testing::Test {
 protected:
  RulesLintTest() : schema_(TestSchema()) {}

  RuleLint Lint(const std::string& where) {
    return LintRule(Analyze("search CycleProvider c register c where " + where,
                            schema_),
                    schema_);
  }

  rdf::RdfSchema schema_;
};

// ---- Unsatisfiability. ----------------------------------------------------

TEST_F(RulesLintTest, EmptyIntervalIsUnsatisfiable) {
  RuleLint lint = Lint(
      "c.serverInformation.memory > 100 and c.serverInformation.memory < 50");
  EXPECT_TRUE(lint.unsatisfiable);
  ASSERT_TRUE(HasCode(lint.diagnostics, LintCode::kUnsatisfiable));
  // The diagnostic names the path and both conflicting bounds.
  const std::string details = JoinDetails(lint.diagnostics);
  EXPECT_NE(details.find("c.serverInformation.memory"), std::string::npos)
      << details;
  EXPECT_NE(details.find("100"), std::string::npos) << details;
  EXPECT_NE(details.find("50"), std::string::npos) << details;
}

TEST_F(RulesLintTest, OpenIntervalAtSamePointIsUnsatisfiable) {
  EXPECT_TRUE(
      Lint("c.serverInformation.memory > 100 and c.serverInformation.memory <= 100")
          .unsatisfiable);
  // The closed version is satisfiable (exactly 100).
  EXPECT_FALSE(
      Lint("c.serverInformation.memory >= 100 and c.serverInformation.memory <= 100")
          .unsatisfiable);
}

TEST_F(RulesLintTest, ContradictoryEqualitiesAreUnsatisfiable) {
  EXPECT_TRUE(
      Lint("c.serverInformation.memory = 64 and c.serverInformation.memory = 128")
          .unsatisfiable);
  EXPECT_TRUE(Lint("c.serverHost = 'a' and c.serverHost = 'b'").unsatisfiable);
  EXPECT_TRUE(Lint("c.serverHost = 'a' and c.serverHost != 'a'").unsatisfiable);
  EXPECT_TRUE(
      Lint("c.serverInformation.memory = 64 and c.serverInformation.memory != 64")
          .unsatisfiable);
}

TEST_F(RulesLintTest, EqualityOutsideBoundsIsUnsatisfiable) {
  EXPECT_TRUE(
      Lint("c.serverInformation.memory = 10 and c.serverInformation.memory > 64")
          .unsatisfiable);
  EXPECT_FALSE(
      Lint("c.serverInformation.memory = 100 and c.serverInformation.memory > 64")
          .unsatisfiable);
}

TEST_F(RulesLintTest, NonNumericEqualityWithOrderedBoundIsUnsatisfiable) {
  // Ordered operators only match numeric text (§3.3.4), so pinning the
  // value to a non-numeric string contradicts any bound.
  EXPECT_TRUE(
      Lint("c.serverHost = 'pirates' and c.serverHost > 5").unsatisfiable);
  // A numeric string is fine: '64' compares as the number 64.
  EXPECT_FALSE(Lint("c.serverHost = '64' and c.serverHost > 5").unsatisfiable);
}

TEST_F(RulesLintTest, StringEqualityIncompatibleWithContains) {
  EXPECT_TRUE(
      Lint("c.serverHost = 'abc' and c.serverHost contains 'xyz'")
          .unsatisfiable);
  EXPECT_FALSE(
      Lint("c.serverHost = 'abcxyz' and c.serverHost contains 'xyz'")
          .unsatisfiable);
}

TEST_F(RulesLintTest, PinnedIntervalWithExclusionIsUnsatisfiable) {
  EXPECT_TRUE(Lint("c.serverInformation.memory >= 64 and "
                   "c.serverInformation.memory <= 64 and "
                   "c.serverInformation.memory != 64")
                  .unsatisfiable);
}

TEST_F(RulesLintTest, SelfComparisonCanNeverHold) {
  EXPECT_TRUE(Lint("c.serverPort < c.serverPort").unsatisfiable);
  EXPECT_TRUE(Lint("c.serverPort != c.serverPort").unsatisfiable);
  // `=` against itself is vacuous, not contradictory.
  RuleLint equal = Lint("c.serverPort = c.serverPort");
  EXPECT_FALSE(equal.unsatisfiable);
  EXPECT_TRUE(HasCode(equal.diagnostics, LintCode::kRedundantPredicate));
}

TEST_F(RulesLintTest, SatisfiableConjunctionsStayClean) {
  RuleLint lint = Lint(
      "c.serverInformation.memory > 64 and c.serverInformation.memory < 256 "
      "and c.serverHost contains 'uni' and c.serverPort != 80");
  EXPECT_FALSE(lint.unsatisfiable);
  EXPECT_TRUE(lint.diagnostics.empty()) << JoinDetails(lint.diagnostics);
}

TEST_F(RulesLintTest, SetValuedPathsAreExemptFromConjunctionReasoning) {
  // Each predicate over a set-valued property may be satisfied by a
  // *different* element, so `tag = 'a' and tag = 'b'` is satisfiable.
  RuleLint lint = LintRule(
      Analyze("search TaggedThing t register t "
              "where t.tag = 'a' and t.tag = 'b'",
              schema_),
      schema_);
  EXPECT_FALSE(lint.unsatisfiable) << JoinDetails(lint.diagnostics);
  // The single-valued sibling property still gets full reasoning.
  EXPECT_TRUE(LintRule(Analyze("search TaggedThing t register t "
                               "where t.size = 1 and t.size = 2",
                               schema_),
                       schema_)
                  .unsatisfiable);
}

TEST_F(RulesLintTest, DuplicatePredicateIsAWarningNotAnError) {
  RuleLint lint = Lint(
      "c.serverInformation.memory > 64 and c.serverInformation.memory > 64");
  EXPECT_FALSE(lint.unsatisfiable);
  EXPECT_TRUE(HasCode(lint.diagnostics, LintCode::kRedundantPredicate));
}

// ---- Subsumption. ---------------------------------------------------------

TEST_F(RulesLintTest, TighterBoundSubsumes) {
  AnalyzedRule strong = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 128",
      schema_);
  AnalyzedRule weak = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64",
      schema_);
  EXPECT_TRUE(RuleSubsumes(strong, weak, schema_));
  EXPECT_FALSE(RuleSubsumes(weak, strong, schema_));
}

TEST_F(RulesLintTest, EqualityInsideRangeSubsumes) {
  AnalyzedRule strong = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.memory = 100",
      schema_);
  AnalyzedRule weak = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.memory >= 64 and "
      "c.serverInformation.memory <= 128",
      schema_);
  EXPECT_TRUE(RuleSubsumes(strong, weak, schema_));
  EXPECT_FALSE(RuleSubsumes(weak, strong, schema_));
}

TEST_F(RulesLintTest, SuperstringContainsSubsumes) {
  AnalyzedRule strong = Analyze(
      "search CycleProvider c register c "
      "where c.serverHost contains 'pirates.uni-passau.de'",
      schema_);
  AnalyzedRule weak = Analyze(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau'",
      schema_);
  EXPECT_TRUE(RuleSubsumes(strong, weak, schema_));
  EXPECT_FALSE(RuleSubsumes(weak, strong, schema_));
}

TEST_F(RulesLintTest, ExactDuplicateSubsumesBothWays) {
  AnalyzedRule a = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.cpu >= 600",
      schema_);
  AnalyzedRule b = Analyze(
      "search CycleProvider d register d "
      "where d.serverInformation.cpu >= 600",
      schema_);
  EXPECT_TRUE(RuleSubsumes(a, b, schema_));
  EXPECT_TRUE(RuleSubsumes(b, a, schema_));
}

TEST_F(RulesLintTest, NearMissesAreNotSubsumed) {
  AnalyzedRule memory = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 128",
      schema_);
  // Overlapping but incomparable intervals.
  AnalyzedRule overlapping = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.memory < 256",
      schema_);
  EXPECT_FALSE(RuleSubsumes(memory, overlapping, schema_));
  EXPECT_FALSE(RuleSubsumes(overlapping, memory, schema_));
  // Same shape, different path.
  AnalyzedRule cpu = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.cpu > 64",
      schema_);
  EXPECT_FALSE(RuleSubsumes(memory, cpu, schema_));
  // Different register class.
  AnalyzedRule other_class = Analyze(
      "search ServerInformation s register s where s.memory > 128", schema_);
  EXPECT_FALSE(RuleSubsumes(other_class, memory, schema_));
  // Substring in the wrong direction.
  AnalyzedRule sub = Analyze(
      "search CycleProvider c register c where c.serverHost contains 'uni'",
      schema_);
  AnalyzedRule super = Analyze(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau'",
      schema_);
  EXPECT_FALSE(RuleSubsumes(sub, super, schema_));
}

TEST_F(RulesLintTest, SetValuedPathsAreNotCompared) {
  AnalyzedRule strong = Analyze(
      "search TaggedThing t register t where t.tag = 'a'", schema_);
  AnalyzedRule weak = Analyze(
      "search TaggedThing t register t where t.tag = 'a'", schema_);
  // Even identical texts: set-valued constraints are excluded, and the
  // non-trivial weaker key cannot be proven.
  EXPECT_FALSE(RuleSubsumes(strong, weak, schema_));
}

// ---- Rule-base lint. ------------------------------------------------------

TEST_F(RulesLintTest, RuleBaseReportsDuplicatesAndSubsumption) {
  AnalyzedRule wide = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.cpu > 100",
      schema_);
  AnalyzedRule narrow = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.cpu > 200",
      schema_);
  AnalyzedRule narrow_again = Analyze(
      "search CycleProvider x register x "
      "where x.serverInformation.cpu > 200",
      schema_);
  std::vector<LintDiagnostic> diagnostics = LintRuleBase(
      {{"wide", &wide}, {"narrow", &narrow}, {"narrow2", &narrow_again}},
      schema_);
  EXPECT_TRUE(HasCode(diagnostics, LintCode::kDuplicateRule))
      << JoinDetails(diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, LintCode::kSubsumedRule))
      << JoinDetails(diagnostics);
  // The *stronger* rule is the subsumed one; warnings, not errors.
  for (const LintDiagnostic& d : diagnostics) {
    if (d.code == LintCode::kSubsumedRule) {
      EXPECT_NE(d.rule.find("narrow"), std::string::npos);
      EXPECT_EQ(d.related, "wide");
      EXPECT_EQ(d.severity, LintSeverity::kWarning);
    }
  }
  EXPECT_FALSE(HasLintErrors(diagnostics));
}

TEST_F(RulesLintTest, DeadExtensionChainsPropagate) {
  AnalyzedRule dead_root = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 100 and "
      "c.serverInformation.memory < 50",
      schema_);
  auto resolver = [](const std::string& name) -> std::optional<std::string> {
    if (name == "root" || name == "mid") return "CycleProvider";
    return std::nullopt;
  };
  AnalyzedRule mid = Analyze(
      "search root c register c where c.serverPort = 80", schema_, resolver);
  AnalyzedRule leaf = Analyze(
      "search mid c register c where c.serverPort = 80", schema_, resolver);
  std::vector<LintDiagnostic> diagnostics = LintRuleBase(
      {{"root", &dead_root}, {"mid", &mid}, {"leaf", &leaf}}, schema_);
  // root unsat (error) + mid dead (error) + leaf dead transitively.
  int dead = 0;
  for (const LintDiagnostic& d : diagnostics) {
    if (d.code == LintCode::kDeadExtension) {
      ++dead;
      EXPECT_EQ(d.severity, LintSeverity::kError);
    }
  }
  EXPECT_EQ(dead, 2) << JoinDetails(diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, LintCode::kUnsatisfiable));
}

TEST_F(RulesLintTest, CleanRuleBaseHasNoDiagnostics) {
  AnalyzedRule a = Analyze(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 128",
      schema_);
  AnalyzedRule b = Analyze(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de'",
      schema_);
  std::vector<LintDiagnostic> diagnostics =
      LintRuleBase({{"a", &a}, {"b", &b}}, schema_);
  EXPECT_TRUE(diagnostics.empty()) << JoinDetails(diagnostics);
}

}  // namespace
}  // namespace mdv::rules
