#include "filter/update_protocol.h"

#include <gtest/gtest.h>

#include "bench_support/workload.h"
#include "filter/data_store.h"
#include "rdf/parser.h"

namespace mdv::filter {
namespace {

using bench_support::FilterFixture;

rdf::RdfDocument MakeDoc(const std::string& uri, int memory,
                         const std::string& host_name = "x.uni-passau.de") {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(memory)));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", rdf::PropertyValue::Literal(host_name));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;
  return doc;
}

class UpdateProtocolTest : public ::testing::Test {
 protected:
  int64_t MustRegisterRule(const std::string& text) {
    Result<int64_t> rule = fixture_.RegisterRule(text);
    EXPECT_TRUE(rule.ok()) << rule.status();
    return *rule;
  }

  void MustRegisterDoc(const rdf::RdfDocument& doc) {
    Result<FilterRunResult> result = fixture_.RegisterDocumentBatch({doc});
    ASSERT_TRUE(result.ok()) << result.status();
  }

  Result<UpdateOutcome> Update(const rdf::RdfDocument& original,
                               const rdf::RdfDocument& updated) {
    return ApplyDocumentUpdate(&fixture_.db(), &fixture_.engine(), original,
                               updated);
  }

  FilterFixture fixture_;
};

TEST_F(UpdateProtocolTest, UpdateGainsMatch) {
  // §3.1's motivating case: memory 32 → 128 makes the provider match.
  int64_t rule = MustRegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  rdf::RdfDocument before = MakeDoc("d.rdf", 32);
  MustRegisterDoc(before);

  rdf::RdfDocument after = MakeDoc("d.rdf", 128);
  Result<UpdateOutcome> outcome = Update(before, after);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->updated_uris, std::vector<std::string>{"d.rdf#info"});

  // Pass 1 found no candidates (nothing matched before) ...
  EXPECT_EQ(outcome->candidates.MatchesFor(rule), nullptr);
  // ... and pass 3 reports the new match.
  ASSERT_NE(outcome->new_matches.MatchesFor(rule), nullptr);
  EXPECT_EQ(*outcome->new_matches.MatchesFor(rule),
            std::vector<std::string>{"d.rdf#host"});
}

TEST_F(UpdateProtocolTest, UpdateLosesMatch) {
  // memory 128 → 32: the provider is a true candidate and must drop out.
  int64_t rule = MustRegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  rdf::RdfDocument before = MakeDoc("d.rdf", 128);
  MustRegisterDoc(before);

  Result<UpdateOutcome> outcome = Update(before, MakeDoc("d.rdf", 32));
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_NE(outcome->candidates.MatchesFor(rule), nullptr);
  EXPECT_EQ(*outcome->candidates.MatchesFor(rule),
            std::vector<std::string>{"d.rdf#host"});
  // Pass 2: the candidate no longer matches the rule.
  const std::vector<std::string>* still =
      outcome->still_matching.MatchesFor(rule);
  if (still != nullptr) {
    EXPECT_TRUE(std::find(still->begin(), still->end(), "d.rdf#host") ==
                still->end());
  }
  // Pass 3: nothing new.
  EXPECT_EQ(outcome->new_matches.MatchesFor(rule), nullptr);
}

TEST_F(UpdateProtocolTest, WrongCandidateSurvivesViaOtherRule) {
  // The resource stops matching the memory rule but still matches the
  // host rule — it is a "wrong candidate" and must not be dropped.
  int64_t memory_rule = MustRegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  int64_t host_rule = MustRegisterRule(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de'");
  rdf::RdfDocument before = MakeDoc("d.rdf", 128);
  MustRegisterDoc(before);

  Result<UpdateOutcome> outcome = Update(before, MakeDoc("d.rdf", 32));
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_NE(outcome->candidates.MatchesFor(memory_rule), nullptr);
  // Pass 2 re-derives the host-rule match for the candidate.
  ASSERT_NE(outcome->still_matching.MatchesFor(host_rule), nullptr);
  EXPECT_EQ(*outcome->still_matching.MatchesFor(host_rule),
            std::vector<std::string>{"d.rdf#host"});
}

TEST_F(UpdateProtocolTest, UpdateKeepingMatchIsNotReinserted) {
  // memory 128 → 256: still matches; pass 3 must not republish (the LMR
  // is refreshed through the update broadcast instead).
  int64_t rule = MustRegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  rdf::RdfDocument before = MakeDoc("d.rdf", 128);
  MustRegisterDoc(before);

  Result<UpdateOutcome> outcome = Update(before, MakeDoc("d.rdf", 256));
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->new_matches.MatchesFor(rule), nullptr);
  // Pass 2 confirms the candidate still matches.
  ASSERT_NE(outcome->still_matching.MatchesFor(rule), nullptr);
  EXPECT_EQ(*outcome->still_matching.MatchesFor(rule),
            std::vector<std::string>{"d.rdf#host"});
}

TEST_F(UpdateProtocolTest, RegainedMatchAfterLossIsRepublished) {
  // Lose the match, then regain it: materialized state must have been
  // purged so the regained match is published again.
  int64_t rule = MustRegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  rdf::RdfDocument v1 = MakeDoc("d.rdf", 128);
  MustRegisterDoc(v1);
  rdf::RdfDocument v2 = MakeDoc("d.rdf", 32);
  ASSERT_TRUE(Update(v1, v2).ok());
  Result<UpdateOutcome> outcome = Update(v2, MakeDoc("d.rdf", 200));
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_NE(outcome->new_matches.MatchesFor(rule), nullptr);
  EXPECT_EQ(*outcome->new_matches.MatchesFor(rule),
            std::vector<std::string>{"d.rdf#host"});
}

TEST_F(UpdateProtocolTest, DocumentDeletionProducesCandidatesOnly) {
  int64_t rule = MustRegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  rdf::RdfDocument doc = MakeDoc("d.rdf", 128);
  MustRegisterDoc(doc);

  Result<UpdateOutcome> outcome =
      ApplyDocumentDeletion(&fixture_.db(), &fixture_.engine(), doc);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->deleted_uris.size(), 2u);
  ASSERT_NE(outcome->candidates.MatchesFor(rule), nullptr);
  EXPECT_EQ(outcome->still_matching.MatchesFor(rule), nullptr);
  EXPECT_EQ(outcome->new_matches.MatchesFor(rule), nullptr);
  // All atoms of the document are gone.
  EXPECT_EQ(AtomsOfResources(fixture_.db(),
                             {"d.rdf#host", "d.rdf#info"})
                .size(),
            0u);
}

TEST_F(UpdateProtocolTest, ResourceInsertionViaUpdate) {
  int64_t rule = MustRegisterRule(
      "search ServerInformation s register s where s.memory > 64");
  rdf::RdfDocument before("d.rdf");
  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost", rdf::PropertyValue::Literal("a"));
  ASSERT_TRUE(before.AddResource(std::move(host)).ok());
  MustRegisterDoc(before);

  rdf::RdfDocument after = before;
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory", rdf::PropertyValue::Literal("100"));
  ASSERT_TRUE(after.AddResource(std::move(info)).ok());

  Result<UpdateOutcome> outcome = Update(before, after);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->inserted_uris, std::vector<std::string>{"d.rdf#info"});
  ASSERT_NE(outcome->new_matches.MatchesFor(rule), nullptr);
  EXPECT_EQ(*outcome->new_matches.MatchesFor(rule),
            std::vector<std::string>{"d.rdf#info"});
}

TEST_F(UpdateProtocolTest, MismatchedUriRejected) {
  rdf::RdfDocument a("a.rdf");
  rdf::RdfDocument b("b.rdf");
  EXPECT_EQ(Update(a, b).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(UpdateProtocolTest, ReferencedResourceUpdateAffectsReferrer) {
  // §3.5: updating the ServerInformation can add/remove CycleProvider
  // matches even though the CycleProvider itself is untouched.
  int64_t rule = MustRegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  rdf::RdfDocument before = MakeDoc("d.rdf", 32);
  MustRegisterDoc(before);

  // Only the info resource changes.
  rdf::RdfDocument after = before;
  after.FindMutableResource("info")->SetProperty(
      "memory", rdf::PropertyValue::Literal("128"));
  Result<UpdateOutcome> outcome = Update(before, after);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->updated_uris, std::vector<std::string>{"d.rdf#info"});
  ASSERT_NE(outcome->new_matches.MatchesFor(rule), nullptr);
  EXPECT_EQ(*outcome->new_matches.MatchesFor(rule),
            std::vector<std::string>{"d.rdf#host"});
}

}  // namespace
}  // namespace mdv::filter
