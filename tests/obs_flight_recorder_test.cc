// Flight recorder tests: ring semantics (record / snapshot / wrap),
// dump serialization, and the auto-dump hooks — a forced invariant-audit
// failure must leave a post-mortem dump behind without any test
// cooperation beyond corrupting the database.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/workload.h"
#include "filter/engine.h"
#include "filter/tables.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "rdbms/table.h"

namespace mdv::obs {
namespace {

using bench_support::FilterFixture;
using bench_support::WorkloadGenerator;

TEST(FlightRecorderTest, RecordsEventsInOrder) {
  FlightRecorder recorder(16);
  recorder.Record(FlightEventType::kPublish, 1, 2, 3, "first");
  recorder.Record(FlightEventType::kApply, 4, 5, 6);
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].type, FlightEventType::kPublish);
  EXPECT_EQ(events[0].a, 1);
  EXPECT_EQ(events[0].b, 2);
  EXPECT_EQ(events[0].c, 3);
  EXPECT_STREQ(events[0].detail, "first");
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].type, FlightEventType::kApply);
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns);
  EXPECT_EQ(recorder.recorded(), 2u);
}

TEST(FlightRecorderTest, RingWrapKeepsTheNewestEvents) {
  FlightRecorder recorder(8);
  for (int64_t i = 1; i <= 20; ++i) {
    recorder.Record(FlightEventType::kDeliver, i);
  }
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, and only the last `capacity` survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 13 + i);
    EXPECT_EQ(events[i].a, static_cast<int64_t>(13 + i));
  }
  EXPECT_EQ(recorder.recorded(), 20u);
}

TEST(FlightRecorderTest, LongDetailIsTruncatedNotOverrun) {
  FlightRecorder recorder(4);
  recorder.Record(FlightEventType::kAuditFail, 0, 0, 0,
                  std::string(200, 'x'));
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  const std::string detail = events[0].detail;
  EXPECT_LT(detail.size(), sizeof(FlightEvent{}.detail));
  EXPECT_EQ(detail, std::string(detail.size(), 'x'));
}

TEST(FlightRecorderTest, DumpJsonCarriesEventsAndLifetimeCount) {
  FlightRecorder recorder(4);
  for (int64_t i = 0; i < 6; ++i) {
    recorder.Record(FlightEventType::kEnqueue, 7, i, 100 + i, "q");
  }
  std::string json = recorder.DumpJson();
  EXPECT_NE(json.find("\"recorded\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"enqueue\""), std::string::npos);
  EXPECT_NE(json.find("\"a\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"detail\": \"q\""), std::string::npos);
}

TEST(FlightRecorderTest, ConcurrentRecordersNeverProduceTornSnapshots) {
  FlightRecorder recorder(64);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int64_t i = 0; i < 500; ++i) {
        // Self-consistent payload: b and c are derived from a, so a
        // torn slot (fields from two different writes) is detectable.
        const int64_t a = t * 1000 + i;
        recorder.Record(FlightEventType::kDeliver, a, a * 2, a + 1);
      }
    });
  }
  for (int r = 0; r < 50; ++r) {
    for (const FlightEvent& e : recorder.Snapshot()) {
      ASSERT_EQ(e.b, e.a * 2) << "torn slot at seq " << e.seq;
      ASSERT_EQ(e.c, e.a + 1) << "torn slot at seq " << e.seq;
    }
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(recorder.recorded(), 2000u);
  for (const FlightEvent& e : recorder.Snapshot()) {
    EXPECT_EQ(e.b, e.a * 2);
    EXPECT_EQ(e.c, e.a + 1);
  }
}

TEST(FlightRecorderTest, AutoDumpWritesFileAndKeepsInMemoryCopy) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("MDV_FLIGHT_DIR", dir.c_str(), 1), 0);
  FlightRecorder recorder(8);
  recorder.Record(FlightEventType::kDeadLetter, 1, 2, 3);
  const int64_t dumps_before = recorder.dump_count();
  std::string path = recorder.AutoDump("unit_test");
  unsetenv("MDV_FLIGHT_DIR");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("flight_unit_test.json"), std::string::npos);
  EXPECT_EQ(recorder.dump_count(), dumps_before + 1);
  EXPECT_EQ(recorder.last_dump_reason(), "unit_test");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_EQ(file.str(), recorder.last_dump_json() + "\n");
  EXPECT_NE(file.str().find("\"dead_letter\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- Auto-dump on a real invariant-audit failure -----------------------

TEST(FlightRecorderAutoDumpTest, InvariantAuditFailureDumpsTheRecorder) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("MDV_FLIGHT_DIR", dir.c_str(), 1), 0);

  FilterFixture fixture;
  ASSERT_TRUE(fixture
                  .RegisterRule("search CycleProvider c register c "
                                "where c.serverInformation.memory > 64")
                  .ok());
  // Corrupt the rule base behind the predicate index's back: the GT
  // predicate row vanishes while its index entry stays. The post-run
  // audit must notice and trip the flight recorder.
  rdbms::Table* gt = fixture.db().GetTable(filter::kFilterRulesGT);
  ASSERT_NE(gt, nullptr);
  std::vector<rdbms::RowId> ids = gt->SelectRowIds({});
  ASSERT_EQ(ids.size(), 1u);
  ASSERT_TRUE(gt->Delete(ids[0]).ok());

  FlightRecorder& recorder = FlightRecorder::Default();
  const int64_t dumps_before = recorder.dump_count();
  const int64_t counter_before =
      DefaultMetrics().GetCounter("mdv.obs.flight.dumps_total").value();

  WorkloadGenerator workload({bench_support::BenchRuleType::kPath, 4});
  filter::FilterOptions options;
  options.audit_invariants = true;
  Result<filter::FilterRunResult> run =
      fixture.RegisterDocumentBatch({workload.MakeDocument(0)}, options);
  unsetenv("MDV_FLIGHT_DIR");

  // The run surfaced the corruption...
  ASSERT_FALSE(run.ok());
  // ...and the recorder auto-dumped with the audit reason.
  EXPECT_EQ(recorder.dump_count(), dumps_before + 1);
  EXPECT_EQ(recorder.last_dump_reason(), "invariant_audit");
  EXPECT_EQ(
      DefaultMetrics().GetCounter("mdv.obs.flight.dumps_total").value(),
      counter_before + 1);
  const std::string dump = recorder.last_dump_json();
  EXPECT_NE(dump.find("\"audit_fail\""), std::string::npos);
  // The dump file landed in MDV_FLIGHT_DIR.
  std::ifstream in(dir + "/flight_invariant_audit.json");
  EXPECT_TRUE(in.good());
}

}  // namespace
}  // namespace mdv::obs
