// Tests of the TTL-based cache consistency alternative (§3.5 mentions
// "periodical cache invalidation, based on a time-to-live approach") and
// of Refresh() as a repair mechanism.

#include <gtest/gtest.h>

#include "mdv/system.h"

namespace mdv {
namespace {

rdf::RdfDocument MakeDoc(const std::string& uri, const std::string& host,
                         int memory) {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(memory)));
  rdf::Resource provider("host", "CycleProvider");
  provider.AddProperty("serverHost", rdf::PropertyValue::Literal(host));
  provider.AddProperty("serverInformation",
                       rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(provider));
  (void)st;
  return doc;
}

class TtlModeTest : public ::testing::Test {
 protected:
  TtlModeTest() : system_(rdf::MakeObjectGlobeSchema()) {
    provider_ = system_.AddProvider();
    lmr_ = system_.AddRepository(provider_);
  }

  MdvSystem system_;
  MetadataProvider* provider_;
  LocalMetadataRepository* lmr_;
};

TEST_F(TtlModeTest, PushesIgnoredUntilRefresh) {
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  lmr_->set_consistency_mode(ConsistencyMode::kTimeToLive);

  ASSERT_TRUE(provider_->RegisterDocument(MakeDoc("d.rdf", "x", 92)).ok());
  // Push suppressed.
  EXPECT_EQ(lmr_->CacheSize(), 0u);

  ASSERT_TRUE(lmr_->Refresh().ok());
  EXPECT_EQ(lmr_->CacheSize(), 2u);
  EXPECT_NE(lmr_->Find("d.rdf#host"), nullptr);
}

TEST_F(TtlModeTest, StaleEntriesSurviveUntilRefresh) {
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(provider_->RegisterDocument(MakeDoc("d.rdf", "x", 92)).ok());
  ASSERT_EQ(lmr_->CacheSize(), 2u);

  lmr_->set_consistency_mode(ConsistencyMode::kTimeToLive);
  // The resource stops matching, but the push is ignored: stale copy.
  ASSERT_TRUE(provider_->UpdateDocument(MakeDoc("d.rdf", "x", 16)).ok());
  EXPECT_EQ(lmr_->CacheSize(), 2u);
  EXPECT_EQ(lmr_->Find("d.rdf#info")->resource.FindProperty("memory")->text(),
            "92");

  ASSERT_TRUE(lmr_->Refresh().ok());
  EXPECT_EQ(lmr_->CacheSize(), 0u);
}

TEST_F(TtlModeTest, RefreshPullsCurrentVersions) {
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c "
                              "where c.serverInformation.memory > 64")
                  .ok());
  lmr_->set_consistency_mode(ConsistencyMode::kTimeToLive);
  ASSERT_TRUE(provider_->RegisterDocument(MakeDoc("d.rdf", "x", 92)).ok());
  ASSERT_TRUE(lmr_->Refresh().ok());
  ASSERT_TRUE(provider_->UpdateDocument(MakeDoc("d.rdf", "x", 128)).ok());
  // Stale between refreshes.
  EXPECT_EQ(lmr_->Find("d.rdf#info")->resource.FindProperty("memory")->text(),
            "92");
  ASSERT_TRUE(lmr_->Refresh().ok());
  EXPECT_EQ(lmr_->Find("d.rdf#info")->resource.FindProperty("memory")->text(),
            "128");
}

TEST_F(TtlModeTest, RefreshInNotificationModeIsIdempotent) {
  Result<pubsub::SubscriptionId> sub =
      lmr_->Subscribe("search CycleProvider c register c "
                      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(provider_->RegisterDocument(MakeDoc("d.rdf", "x", 92)).ok());
  ASSERT_EQ(lmr_->CacheSize(), 2u);
  ASSERT_TRUE(lmr_->Refresh().ok());
  EXPECT_EQ(lmr_->CacheSize(), 2u);
  const CacheEntry* host = lmr_->Find("d.rdf#host");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->matched_subscriptions.count(*sub), 1u);
}

TEST_F(TtlModeTest, RefreshPreservesLocalMetadata) {
  ASSERT_TRUE(lmr_->Subscribe("search CycleProvider c register c").ok());
  ASSERT_TRUE(
      lmr_->RegisterLocalDocument(MakeDoc("local.rdf", "lan", 1)).ok());
  lmr_->set_consistency_mode(ConsistencyMode::kTimeToLive);
  ASSERT_TRUE(lmr_->Refresh().ok());
  EXPECT_NE(lmr_->Find("local.rdf#host"), nullptr);
  EXPECT_NE(lmr_->Find("local.rdf#info"), nullptr);
}

TEST_F(TtlModeTest, SnapshotOfUnknownSubscriptionFails) {
  EXPECT_EQ(provider_->SnapshotSubscription(999).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mdv
