// The §4 workload generator must satisfy the paper's construction: for
// OID/PATH/JOIN, document j is matched by exactly rule j and no other;
// for COMP, every document is matched by the configured fraction of the
// rule base. Verified against the direct rule evaluator.

#include "bench_support/workload.h"

#include <gtest/gtest.h>

#include "rules/compiler.h"
#include "rules/evaluator.h"

namespace mdv::bench_support {
namespace {

class WorkloadTest : public ::testing::TestWithParam<BenchRuleType> {
 protected:
  static constexpr size_t kRules = 40;

  rules::ResourceMap ResourcesOf(const std::vector<rdf::RdfDocument>& docs) {
    rules::ResourceMap out;
    for (const rdf::RdfDocument& doc : docs) {
      for (const rdf::Resource* res : doc.resources()) {
        out.emplace(doc.UriReferenceOf(res->local_id()), res);
      }
    }
    return out;
  }
};

TEST_P(WorkloadTest, DocumentsValidateAgainstSchema) {
  WorkloadGenerator generator({GetParam(), kRules, 0.1});
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  for (size_t j = 0; j < 10; ++j) {
    EXPECT_TRUE(schema.ValidateDocument(generator.MakeDocument(j)).ok())
        << "doc " << j;
  }
}

TEST_P(WorkloadTest, RulesCompile) {
  WorkloadGenerator generator({GetParam(), kRules, 0.1});
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  for (size_t i = 0; i < kRules; ++i) {
    Result<rules::CompiledRule> compiled =
        rules::CompileRule(generator.RuleText(i), schema);
    EXPECT_TRUE(compiled.ok()) << generator.RuleText(i) << " -> "
                               << compiled.status();
  }
}

TEST_P(WorkloadTest, OneToOneMatchingForNonCompTypes) {
  if (GetParam() == BenchRuleType::kComp) {
    GTEST_SKIP() << "COMP uses fraction-based matching";
  }
  WorkloadGenerator generator({GetParam(), kRules, 0.1});
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  std::vector<rdf::RdfDocument> docs = generator.MakeDocumentBatch(0, kRules);
  rules::ResourceMap resources = ResourcesOf(docs);
  for (size_t i = 0; i < kRules; ++i) {
    Result<std::vector<std::string>> matches = rules::EvaluateRuleText(
        generator.RuleText(i), schema, resources);
    ASSERT_TRUE(matches.ok()) << generator.RuleText(i);
    EXPECT_EQ(*matches,
              std::vector<std::string>{WorkloadGenerator::DocumentUri(i) +
                                       "#host"})
        << "rule " << i;
  }
}

TEST_P(WorkloadTest, CompMatchesConfiguredFraction) {
  if (GetParam() != BenchRuleType::kComp) {
    GTEST_SKIP() << "fraction matching is COMP-specific";
  }
  for (double fraction : {0.05, 0.10, 0.50}) {
    WorkloadGenerator generator({BenchRuleType::kComp, kRules, fraction});
    rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
    std::vector<rdf::RdfDocument> docs = generator.MakeDocumentBatch(0, 1);
    rules::ResourceMap resources = ResourcesOf(docs);
    size_t matched = 0;
    for (size_t i = 0; i < kRules; ++i) {
      Result<std::vector<std::string>> matches = rules::EvaluateRuleText(
          generator.RuleText(i), schema, resources);
      ASSERT_TRUE(matches.ok());
      matched += matches->size();
    }
    EXPECT_EQ(matched, static_cast<size_t>(fraction * kRules))
        << "fraction " << fraction;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRuleTypes, WorkloadTest,
                         ::testing::Values(BenchRuleType::kOid,
                                           BenchRuleType::kComp,
                                           BenchRuleType::kPath,
                                           BenchRuleType::kJoin),
                         [](const auto& info) {
                           return BenchRuleTypeToString(info.param);
                         });

}  // namespace
}  // namespace mdv::bench_support
