// Schema text round trips: WriteSchemaText output is deterministic,
// ParseSchemaText rebuilds an identical schema (including strong/weak
// and set-valued markers), and malformed input fails cleanly.

#include <gtest/gtest.h>

#include "rdf/schema.h"
#include "rdf/schema_io.h"

namespace mdv::rdf {
namespace {

TEST(SchemaIoTest, ObjectGlobeSchemaRoundTrips) {
  const RdfSchema schema = MakeObjectGlobeSchema();
  const std::string text = WriteSchemaText(schema);
  Result<RdfSchema> parsed = ParseSchemaText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // Byte-identical re-serialization is the round-trip proof: the writer
  // is deterministic (name-ordered), so equal text means equal schema.
  EXPECT_EQ(WriteSchemaText(*parsed), text);
}

TEST(SchemaIoTest, PreservesStrengthAndCardinality) {
  RdfSchema schema;
  ASSERT_TRUE(schema
                  .AddClass(ClassBuilder("Node")
                                .Literal("name")
                                .Literal("tags", /*set_valued=*/true)
                                .WeakRef("weakRef", "Node")
                                .StrongRef("strongRef", "Node")
                                .StrongRef("strongSet", "Node",
                                           /*set_valued=*/true)
                                .Build())
                  .ok());

  const std::string text = WriteSchemaText(schema);
  Result<RdfSchema> parsed = ParseSchemaText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ClassDef* cls = parsed->FindClass("Node");
  ASSERT_NE(cls, nullptr);
  const PropertyDef* strong = parsed->FindProperty("Node", "strongRef");
  ASSERT_NE(strong, nullptr);
  EXPECT_EQ(strong->strength, RefStrength::kStrong);
  EXPECT_FALSE(strong->set_valued);
  const PropertyDef* strong_set = parsed->FindProperty("Node", "strongSet");
  ASSERT_NE(strong_set, nullptr);
  EXPECT_EQ(strong_set->strength, RefStrength::kStrong);
  EXPECT_TRUE(strong_set->set_valued);
  const PropertyDef* weak = parsed->FindProperty("Node", "weakRef");
  ASSERT_NE(weak, nullptr);
  EXPECT_EQ(weak->strength, RefStrength::kWeak);
  const PropertyDef* tags = parsed->FindProperty("Node", "tags");
  ASSERT_NE(tags, nullptr);
  EXPECT_TRUE(tags->set_valued);
}

TEST(SchemaIoTest, MalformedInputFails) {
  EXPECT_FALSE(ParseSchemaText("").ok());
  EXPECT_FALSE(ParseSchemaText("BOGUSHEADER\nclass A\n").ok());
  // Property before any class.
  EXPECT_FALSE(ParseSchemaText("MDVSCHEMA1\nliteral name\n").ok());
  // ref without a target class token.
  EXPECT_FALSE(ParseSchemaText("MDVSCHEMA1\nclass A\nref broken\n").ok());
  // Unknown directive.
  EXPECT_FALSE(ParseSchemaText("MDVSCHEMA1\nclass A\nwhatever x\n").ok());
}

}  // namespace
}  // namespace mdv::rdf
