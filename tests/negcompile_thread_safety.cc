// Negative-compile check for the clang thread-safety gate (DESIGN.md,
// Concurrency model). Compiled twice with
// `clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror`:
//
//  - without extra defines: a positive control that must COMPILE —
//    proves the annotations themselves are well-formed and the gate is
//    not trivially rejecting everything;
//  - with -DMDV_NEGCOMPILE_UNGUARDED: must FAIL to compile — proves the
//    analysis actually rejects an unguarded access to a GUARDED_BY
//    member, i.e. the gate has teeth.
//
// Registered from tests/CMakeLists.txt only when the tree is built with
// clang; gcc compiles the annotations to nothing and would pass both
// variants vacuously.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    mdv::MutexLock lock(mu_);
    ++value_;
  }

  int value() const EXCLUDES(mu_) {
    mdv::MutexLock lock(mu_);
    return value_;
  }

#if defined(MDV_NEGCOMPILE_UNGUARDED)
  // -Wthread-safety must reject this: value_ is GUARDED_BY(mu_) and no
  // lock is held. If this compiles, the CI gate is not working.
  int UnguardedRead() const { return value_; }
#endif

 private:
  mutable mdv::Mutex mu_{mdv::LockRank::kObsRegistry, "negcompile.counter"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.value() == 1 ? 0 : 1;
}
