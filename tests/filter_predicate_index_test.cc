// Tests of the in-memory predicate index (the initial iteration's access
// path): differential/property tests holding the indexed path equal to
// the seed table-scan path on randomized rule bases and deltas, index
// maintenance across RegisterTree/Unregister, and the §3.3.4
// numeric-reconversion edge cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "bench_support/workload.h"
#include "filter/predicate_index.h"
#include "filter/tables.h"
#include "rdbms/predicate.h"
#include "rdbms/table.h"
#include "rdbms/value.h"

namespace mdv::filter {
namespace {

using bench_support::FilterFixture;
using rdbms::CompareOp;

FilterOptions IndexedProbe() {
  FilterOptions options;
  options.update_materialized = false;
  options.use_predicate_index = true;
  return options;
}

FilterOptions ScanProbe() {
  FilterOptions options;
  options.update_materialized = false;
  options.use_predicate_index = false;
  return options;
}

// ---- Randomized workload (same shape as filter_property_test). --------

struct RandomWorkload {
  explicit RandomWorkload(uint32_t seed) : rng(seed) {}

  std::mt19937 rng;

  int RandInt(int lo, int hi) {  // Inclusive bounds.
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  }

  std::string RandomHost() {
    static const char* kHosts[] = {
        "pirates.uni-passau.de", "db.uni-passau.de", "in.tum.de",
        "big.example",           "node7.example",    "edge.tum.de"};
    return kHosts[RandInt(0, 5)];
  }

  rdf::RdfDocument MakeDocument(size_t index) {
    std::string uri = "rand" + std::to_string(index) + ".rdf";
    rdf::RdfDocument doc(uri);
    rdf::Resource info("info", "ServerInformation");
    info.AddProperty("memory", rdf::PropertyValue::Literal(
                                   std::to_string(RandInt(0, 60))));
    info.AddProperty("cpu", rdf::PropertyValue::Literal(
                                std::to_string(RandInt(1, 4) * 500)));
    rdf::Resource host("host", "CycleProvider");
    host.AddProperty("serverHost", rdf::PropertyValue::Literal(RandomHost()));
    host.AddProperty("serverPort", rdf::PropertyValue::Literal(
                                       std::to_string(RandInt(1, 99))));
    host.AddProperty("synthValue", rdf::PropertyValue::Literal(
                                       std::to_string(RandInt(0, 40))));
    host.AddProperty("serverInformation",
                     rdf::PropertyValue::ResourceRef(uri + "#info"));
    Status st = doc.AddResource(std::move(info));
    st = doc.AddResource(std::move(host));
    (void)st;
    return doc;
  }

  // Rules spread over every operator table: CLS, EQS (OID), EQN, NE,
  // LT/LE/GT/GE and CON, all on a small value domain so collisions and
  // boundary hits are common.
  std::string MakeRule() {
    static const char* kFragments[] = {"uni-passau", "tum", "example",
                                       ".de", "big"};
    static const char* kOrderedOps[] = {"<", "<=", ">", ">="};
    switch (RandInt(0, 8)) {
      case 0:
        return "search CycleProvider c register c";
      case 1:
        return "search ServerInformation s register s where s.memory " +
               std::string(kOrderedOps[RandInt(0, 3)]) + " " +
               std::to_string(RandInt(0, 60));
      case 2:
        return "search CycleProvider c register c where c = 'rand" +
               std::to_string(RandInt(0, 19)) + ".rdf#host'";
      case 3:
        return "search CycleProvider c register c where c.synthValue " +
               std::string(kOrderedOps[RandInt(0, 3)]) + " " +
               std::to_string(RandInt(0, 40));
      case 4:
        return std::string(
                   "search CycleProvider c register c "
                   "where c.serverHost contains '") +
               kFragments[RandInt(0, 4)] + "'";
      case 5:
        return "search CycleProvider c register c where c.synthValue = " +
               std::to_string(RandInt(0, 40));
      case 6:
        return "search CycleProvider c register c where c.synthValue != " +
               std::to_string(RandInt(0, 40));
      case 7:
        return "search ServerInformation s register s where s.cpu = " +
               std::to_string(RandInt(1, 4) * 500);
      default:
        return "search CycleProvider c register c where c.serverHost != '" +
               RandomHost() + "'";
    }
  }
};

// ---- Differential property tests. -------------------------------------

class PredicateIndexPropertyTest : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(PredicateIndexPropertyTest, IndexedMatchesEqualScanMatches) {
  RandomWorkload workload(GetParam());
  FilterFixture fixture;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(fixture.RegisterRule(workload.MakeRule()).ok());
  }

  std::vector<rdf::RdfDocument> docs;
  for (size_t j = 0; j < 15; ++j) docs.push_back(workload.MakeDocument(j));

  // Probe runs over the same data must agree exactly, batch by batch.
  size_t next = 0;
  for (size_t batch : {size_t{1}, size_t{4}, size_t{10}}) {
    std::vector<rdf::RdfDocument> slice(docs.begin() + next,
                                        docs.begin() + next + batch);
    next += batch;
    Result<FilterRunResult> indexed =
        fixture.RegisterDocumentBatch(slice, IndexedProbe());
    ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
    // Atoms are now inserted; replay the same delta through the seed
    // scan path and compare the run outputs field by field.
    rdf::Statements delta;
    for (const rdf::RdfDocument& doc : slice) {
      rdf::Statements atoms = doc.ToStatements();
      delta.insert(delta.end(), atoms.begin(), atoms.end());
    }
    Result<FilterRunResult> scan_batch =
        fixture.engine().Run(delta, ScanProbe());
    ASSERT_TRUE(scan_batch.ok());
    EXPECT_EQ(indexed->matches, scan_batch->matches)
        << "divergence at batch " << batch << ", seed " << GetParam();
    EXPECT_GT(indexed->stats.index_probes, 0);
    EXPECT_EQ(indexed->stats.scan_fallbacks, 0);
    EXPECT_EQ(scan_batch->stats.index_probes, 0);
    EXPECT_GT(scan_batch->stats.scan_fallbacks, 0);
  }
}

TEST_P(PredicateIndexPropertyTest, IndexStaysConsistentAcrossUnregister) {
  RandomWorkload workload(GetParam());
  FilterFixture fixture;
  std::vector<int64_t> end_rules;
  for (int i = 0; i < 25; ++i) {
    Result<int64_t> id = fixture.RegisterRule(workload.MakeRule());
    ASSERT_TRUE(id.ok());
    end_rules.push_back(*id);
  }

  // Unregister a random half (shared atoms mean some unregistrations
  // only drop refcounts, exercising both removal outcomes).
  for (size_t i = 0; i < end_rules.size(); ++i) {
    if (workload.RandInt(0, 1) == 0) {
      ASSERT_TRUE(fixture.store().Unregister(end_rules[i]).ok());
    }
  }

  std::vector<rdf::RdfDocument> docs;
  for (size_t j = 0; j < 10; ++j) docs.push_back(workload.MakeDocument(j));
  Result<FilterRunResult> indexed =
      fixture.RegisterDocumentBatch(docs, IndexedProbe());
  ASSERT_TRUE(indexed.ok());
  rdf::Statements delta;
  for (const rdf::RdfDocument& doc : docs) {
    rdf::Statements atoms = doc.ToStatements();
    delta.insert(delta.end(), atoms.begin(), atoms.end());
  }
  Result<FilterRunResult> scan = fixture.engine().Run(delta, ScanProbe());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(indexed->matches, scan->matches) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateIndexPropertyTest,
                         ::testing::Range(1u, 13u));

// ---- Index maintenance. -----------------------------------------------

TEST(PredicateIndexMaintenanceTest, UnregisterAllEmptiesIndex) {
  FilterFixture fixture;
  EXPECT_EQ(fixture.store().predicate_index().NumEntries(), 0u);
  std::vector<int64_t> end_rules;
  for (const char* text :
       {"search CycleProvider c register c where c.synthValue > 5",
        "search CycleProvider c register c where c.synthValue < 9",
        "search CycleProvider c register c where c.serverHost contains 'x'",
        "search CycleProvider c register c",
        "search CycleProvider c register c where c = 'a.rdf#host'"}) {
    Result<int64_t> id = fixture.RegisterRule(text);
    ASSERT_TRUE(id.ok());
    end_rules.push_back(*id);
  }
  EXPECT_EQ(fixture.store().predicate_index().NumEntries(), 5u);
  for (int64_t id : end_rules) {
    ASSERT_TRUE(fixture.store().Unregister(id).ok());
  }
  EXPECT_EQ(fixture.store().predicate_index().NumEntries(), 0u);
  EXPECT_EQ(fixture.store().NumAtomicRules(), 0u);
}

TEST(PredicateIndexMaintenanceTest, SharedAtomSurvivesOneUnregister) {
  FilterFixture fixture;
  const char* text =
      "search CycleProvider c register c where c.synthValue > 7";
  Result<int64_t> first = fixture.RegisterRule(text);
  Result<int64_t> second = fixture.RegisterRule(text);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // Merged (§3.3.2).
  EXPECT_EQ(fixture.store().predicate_index().NumEntries(), 1u);

  ASSERT_TRUE(fixture.store().Unregister(*first).ok());
  // Still referenced by the second subscription.
  EXPECT_EQ(fixture.store().predicate_index().NumEntries(), 1u);
  ASSERT_TRUE(fixture.store().Unregister(*second).ok());
  EXPECT_EQ(fixture.store().predicate_index().NumEntries(), 0u);
}

TEST(PredicateIndexMaintenanceTest, RebuildFromExistingTables) {
  // A second RuleStore over the same database (the reopened-database
  // path) must rebuild an identical index.
  FilterFixture fixture;
  ASSERT_TRUE(fixture
                  .RegisterRule(
                      "search CycleProvider c register c "
                      "where c.synthValue >= 3")
                  .ok());
  ASSERT_TRUE(
      fixture.RegisterRule("search CycleProvider c register c").ok());
  RuleStore reopened(&fixture.db());
  EXPECT_EQ(reopened.predicate_index().NumEntries(),
            fixture.store().predicate_index().NumEntries());
}

// ---- §3.3.4 reconversion semantics at the index level. ----------------

TEST(PredicateIndexSemanticsTest, NumericReconversionEdgeCases) {
  PredicateIndex index;
  index.AddPredicateRule(1, "C", "p", CompareOp::kEq, "5", true);     // EQN
  index.AddPredicateRule(2, "C", "p", CompareOp::kEq, "5.0", true);   // EQN
  index.AddPredicateRule(3, "C", "p", CompareOp::kEq, "5", false);    // EQS
  index.AddPredicateRule(4, "C", "p", CompareOp::kLt, "10", false);
  index.AddPredicateRule(5, "C", "p", CompareOp::kGe, "5", false);
  index.AddPredicateRule(6, "C", "p", CompareOp::kNe, "5", false);
  index.AddPredicateRule(7, "C", "p", CompareOp::kNe, "abc", false);
  index.AddPredicateRule(8, "C", "p", CompareOp::kContains, "bc", false);

  const PredicateIndex::Bucket* bucket = index.FindBucket("C", "p");
  ASSERT_NE(bucket, nullptr);
  auto match = [&](const std::string& text) {
    std::vector<int64_t> out;
    index.Match(*bucket, text, rdbms::Value{text}.TryNumeric(), &out);
    std::sort(out.begin(), out.end());
    return out;
  };

  // "05" reconverts to 5: hits both EQN constants (5 and 5.0), the
  // ordered rules containing 5, not the string-equality rule, and is
  // excluded from `!= 5` but not `!= abc`.
  EXPECT_EQ(match("05"), (std::vector<int64_t>{1, 2, 4, 5, 7}));
  // Exact "5" additionally hits EQS.
  EXPECT_EQ(match("5"), (std::vector<int64_t>{1, 2, 3, 4, 5, 7}));
  // Non-numeric text: ordered and EQN rules never match; NE compares
  // lexicographically ("abcd" differs from both "5" and "abc");
  // contains matches substrings ("bc").
  EXPECT_EQ(match("abcd"), (std::vector<int64_t>{6, 7, 8}));
  // "abc" string-equals the `!= abc` constant, so rule 7 drops out.
  EXPECT_EQ(match("abc"), (std::vector<int64_t>{6, 8}));
  // Out of range below: only >=/!= logic applies.
  EXPECT_EQ(match("4"), (std::vector<int64_t>{4, 6, 7}));
  // Boundary: 10 is not < 10.
  EXPECT_EQ(match("10"), (std::vector<int64_t>{5, 6, 7}));
}

TEST(PredicateIndexSemanticsTest, NonNumericConstantOnOrderedOpNeverMatches) {
  PredicateIndex index;
  index.AddPredicateRule(1, "C", "p", CompareOp::kLt, "zzz", false);
  index.AddPredicateRule(2, "C", "p", CompareOp::kEq, "zzz", true);  // EQN
  const PredicateIndex::Bucket* bucket = index.FindBucket("C", "p");
  ASSERT_NE(bucket, nullptr);
  std::vector<int64_t> out;
  index.Match(*bucket, "zzz", std::nullopt, &out);
  EXPECT_TRUE(out.empty());
  // Removal of never-matching entries must still work.
  index.RemoveRule(1);
  index.RemoveRule(2);
  EXPECT_EQ(index.NumEntries(), 0u);
}

TEST(PredicateIndexSemanticsTest, ClassRulesMatchByClassOnly) {
  PredicateIndex index;
  index.AddClassRule(1, "CycleProvider");
  index.AddClassRule(2, "ServerInformation");
  std::vector<int64_t> out;
  index.MatchClass("CycleProvider", &out);
  EXPECT_EQ(out, std::vector<int64_t>{1});
  index.RemoveRule(1);
  out.clear();
  index.MatchClass("CycleProvider", &out);
  EXPECT_TRUE(out.empty());
}

// ---- Consistency auditor (predicate index vs FilterRules* tables). --------

TEST(PredicateIndexConsistencyTest, ConsistentAfterRegisterAndUnregister) {
  FilterFixture fixture;
  EXPECT_TRUE(fixture.store().CheckConsistency().ok());
  Result<int64_t> memory = fixture.RegisterRule(
      "search CycleProvider c register c "
      "where c.serverInformation.memory > 64");
  ASSERT_TRUE(memory.ok());
  Result<int64_t> host = fixture.RegisterRule(
      "search CycleProvider c register c "
      "where c.serverHost contains 'uni-passau.de' and c.serverPort != 80");
  ASSERT_TRUE(host.ok());
  Status st = fixture.store().CheckConsistency();
  EXPECT_TRUE(st.ok()) << st.ToString();

  ASSERT_TRUE(fixture.store().Unregister(*memory).ok());
  st = fixture.store().CheckConsistency();
  EXPECT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(fixture.store().Unregister(*host).ok());
  EXPECT_TRUE(fixture.store().CheckConsistency().ok());
}

TEST(PredicateIndexConsistencyTest, DetectsIndexTableDivergence) {
  FilterFixture fixture;
  ASSERT_TRUE(fixture
                  .RegisterRule("search CycleProvider c register c "
                                "where c.serverInformation.memory > 64")
                  .ok());
  ASSERT_TRUE(fixture.store().CheckConsistency().ok());
  // Corrupt the persistent side behind the index's back: drop the GT
  // row. The auditor must notice the index entry with no table backing.
  rdbms::Table* gt = fixture.db().GetTable(kFilterRulesGT);
  ASSERT_NE(gt, nullptr);
  ASSERT_EQ(gt->NumRows(), 1u);
  std::vector<rdbms::RowId> ids = gt->SelectRowIds({});
  ASSERT_EQ(ids.size(), 1u);
  ASSERT_TRUE(gt->Delete(ids[0]).ok());
  Status st = fixture.store().CheckConsistency();
  EXPECT_FALSE(st.ok());
}

TEST(PredicateIndexConsistencyTest, AuditedFilterRunsStayConsistent) {
  // The engine's MDV_AUDIT_INVARIANTS hook runs these same checks after
  // every run; here the flag is exercised explicitly via FilterOptions
  // so the test is independent of the environment.
  FilterFixture fixture;
  ASSERT_TRUE(fixture
                  .RegisterRule("search CycleProvider c register c "
                                "where c.serverInformation.memory > 64")
                  .ok());
  RandomWorkload workload(7);
  std::vector<rdf::RdfDocument> documents;
  for (size_t i = 0; i < 20; ++i) {
    documents.push_back(workload.MakeDocument(i));
  }
  FilterOptions options;
  options.audit_invariants = true;
  Result<FilterRunResult> run =
      fixture.RegisterDocumentBatch(documents, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(fixture.db().CheckInvariants().ok());
  EXPECT_TRUE(fixture.store().CheckConsistency().ok());
}

}  // namespace
}  // namespace mdv::filter
