// End-to-end property test: after an arbitrary sequence of document
// registrations, updates and deletions, every LMR cache must contain
// exactly the resources its subscription rules select from the final
// state of the metadata (plus strong-reference closures), with current
// contents — the cache-consistency guarantee of the publish & subscribe
// architecture (§2.2, §3.5).

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "mdv/system.h"
#include "rules/evaluator.h"

namespace mdv {
namespace {

struct Scenario {
  explicit Scenario(uint32_t seed) : rng(seed) {}

  std::mt19937 rng;
  std::map<std::string, rdf::RdfDocument> live_docs;  // uri → current.

  int RandInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  }

  std::string RandomHost() {
    static const char* kHosts[] = {"pirates.uni-passau.de", "db.tum.de",
                                   "big.example", "edge.uni-passau.de"};
    return kHosts[RandInt(0, 3)];
  }

  rdf::RdfDocument MakeDocument(const std::string& uri) {
    rdf::RdfDocument doc(uri);
    rdf::Resource info("info", "ServerInformation");
    info.AddProperty("memory", rdf::PropertyValue::Literal(
                                   std::to_string(RandInt(0, 200))));
    info.AddProperty("cpu", rdf::PropertyValue::Literal(
                                std::to_string(RandInt(1, 4) * 500)));
    rdf::Resource host("host", "CycleProvider");
    host.AddProperty("serverHost", rdf::PropertyValue::Literal(RandomHost()));
    host.AddProperty("synthValue", rdf::PropertyValue::Literal(
                                       std::to_string(RandInt(0, 100))));
    host.AddProperty("serverInformation",
                     rdf::PropertyValue::ResourceRef(uri + "#info"));
    Status st = doc.AddResource(std::move(info));
    st = doc.AddResource(std::move(host));
    (void)st;
    return doc;
  }
};

class MdvPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MdvPropertyTest, CachesConvergeToSubscriptionSemantics) {
  Scenario scenario(GetParam());
  MdvSystem system(rdf::MakeObjectGlobeSchema());
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* lmr_a = system.AddRepository(provider);
  LocalMetadataRepository* lmr_b = system.AddRepository(provider);

  // Subscriptions: A follows strong providers, B follows a domain plus a
  // plain ServerInformation slice (no strong closure of its own).
  struct Sub {
    LocalMetadataRepository* lmr;
    std::string text;
    pubsub::SubscriptionId id;
  };
  std::vector<Sub> subs = {
      {lmr_a,
       "search CycleProvider c register c "
       "where c.serverInformation.memory > 100",
       -1},
      {lmr_a,
       "search CycleProvider c register c where c.synthValue <= 30", -1},
      {lmr_b,
       "search CycleProvider c register c "
       "where c.serverHost contains 'uni-passau.de'",
       -1},
      {lmr_b,
       "search ServerInformation s register s where s.cpu >= 1500", -1},
  };
  for (Sub& sub : subs) {
    Result<pubsub::SubscriptionId> id = sub.lmr->Subscribe(sub.text);
    ASSERT_TRUE(id.ok()) << sub.text << " -> " << id.status();
    sub.id = *id;
  }

  // Random operation sequence.
  for (int step = 0; step < 40; ++step) {
    int op = scenario.RandInt(0, 9);
    if (op <= 4 || scenario.live_docs.empty()) {
      // Register a new document (or re-register after deletion).
      std::string uri = "doc" + std::to_string(scenario.RandInt(0, 11)) +
                        ".rdf";
      if (scenario.live_docs.count(uri) != 0) {
        rdf::RdfDocument doc = scenario.MakeDocument(uri);
        ASSERT_TRUE(provider->UpdateDocument(doc).ok());
        scenario.live_docs.insert_or_assign(uri, std::move(doc));
      } else {
        rdf::RdfDocument doc = scenario.MakeDocument(uri);
        ASSERT_TRUE(provider->RegisterDocument(doc).ok());
        scenario.live_docs.emplace(uri, std::move(doc));
      }
    } else if (op <= 7) {
      // Update an existing document.
      auto it = scenario.live_docs.begin();
      std::advance(it, scenario.RandInt(
                           0, static_cast<int>(scenario.live_docs.size()) - 1));
      rdf::RdfDocument doc = scenario.MakeDocument(it->first);
      ASSERT_TRUE(provider->UpdateDocument(doc).ok());
      it->second = std::move(doc);
    } else {
      // Delete a document.
      auto it = scenario.live_docs.begin();
      std::advance(it, scenario.RandInt(
                           0, static_cast<int>(scenario.live_docs.size()) - 1));
      ASSERT_TRUE(provider->DeleteDocument(it->first).ok());
      scenario.live_docs.erase(it);
    }
  }

  // Oracle: evaluate every subscription over the final metadata.
  rules::ResourceMap resources;
  for (const auto& [uri, doc] : scenario.live_docs) {
    for (const rdf::Resource* res : doc.resources()) {
      resources.emplace(doc.UriReferenceOf(res->local_id()), res);
    }
  }
  const rdf::RdfSchema& schema = system.schema();

  auto strong_closure = [&](const std::string& uri,
                            std::set<std::string>* out) {
    std::vector<std::string> stack{uri};
    while (!stack.empty()) {
      std::string current = stack.back();
      stack.pop_back();
      if (!out->insert(current).second) continue;
      auto it = resources.find(current);
      if (it == resources.end()) continue;
      for (const rdf::Property& prop : it->second->properties()) {
        if (!prop.value.is_resource_ref()) continue;
        const rdf::PropertyDef* def =
            schema.FindProperty(it->second->class_name(), prop.name);
        if (def != nullptr && def->strength == rdf::RefStrength::kStrong) {
          stack.push_back(prop.value.text());
        }
      }
    }
  };

  for (LocalMetadataRepository* lmr : {lmr_a, lmr_b}) {
    std::set<std::string> expected_cache;
    std::map<std::string, std::set<pubsub::SubscriptionId>> expected_matches;
    for (const Sub& sub : subs) {
      if (sub.lmr != lmr) continue;
      Result<std::vector<std::string>> oracle =
          rules::EvaluateRuleText(sub.text, schema, resources);
      ASSERT_TRUE(oracle.ok()) << sub.text;
      for (const std::string& uri : *oracle) {
        expected_matches[uri].insert(sub.id);
        strong_closure(uri, &expected_cache);
      }
    }

    std::set<std::string> actual_cache;
    for (const std::string& uri : lmr->CachedUris()) {
      actual_cache.insert(uri);
    }
    EXPECT_EQ(actual_cache, expected_cache)
        << "LMR " << lmr->id() << " cache diverged (seed " << GetParam()
        << ")";

    for (const std::string& uri : expected_cache) {
      const CacheEntry* entry = lmr->Find(uri);
      ASSERT_NE(entry, nullptr) << uri;
      // Content must be the *current* version.
      auto res = resources.find(uri);
      ASSERT_NE(res, resources.end());
      EXPECT_TRUE(entry->resource.ContentEquals(*res->second))
          << uri << " stale in LMR " << lmr->id();
      // Match bookkeeping must equal the oracle's per-subscription view.
      EXPECT_EQ(entry->matched_subscriptions, expected_matches[uri])
          << uri << " in LMR " << lmr->id();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MdvPropertyTest,
                         ::testing::Values(7u, 11u, 23u, 42u, 77u, 101u));

}  // namespace
}  // namespace mdv
