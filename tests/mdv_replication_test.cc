// Convergence tests of the versioned replica lifecycle: an LMR that
// (re)joins mid-storm over a faulty asynchronous transport — via the
// Clone-pattern snapshot protocol (JoinReplica) — must end up
// byte-identical (content, versions, match flags, referrer counts) to a
// replica that was attached and healthy the whole time. Covers the live
// join, the TTL-mode resync, the durable replay-then-delta-catchup
// reboot, and the LWW version semantics the whole thing rests on.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mdv/lmr.h"
#include "mdv/metadata_provider.h"
#include "mdv/network.h"
#include "mdv/system.h"
#include "net/transport.h"
#include "rdf/parser.h"
#include "wal/log.h"

namespace mdv {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("mdv_replication_" + name);
  fs::remove_all(dir);
  return dir.string();
}

rdf::RdfDocument MakeDoc(const std::string& uri, const std::string& host,
                         int memory) {
  rdf::RdfDocument doc(uri);
  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(memory)));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  rdf::Resource provider("host", "CycleProvider");
  provider.AddProperty("serverHost", rdf::PropertyValue::Literal(host));
  provider.AddProperty("serverInformation",
                       rdf::PropertyValue::ResourceRef(uri + "#info"));
  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(provider));
  (void)st;
  return doc;
}

constexpr const char* kRule =
    "search CycleProvider c register c "
    "where c.serverInformation.memory > 64";

/// Canonical dump including the per-entry version stamps but not the
/// subscription ids, so replicas fed by different subscriptions to the
/// same rule compare equal — and a replica that silently kept stale
/// content under a fresh version (or vice versa) does not.
std::string DumpCache(const LocalMetadataRepository& lmr) {
  std::ostringstream out;
  for (const std::string& uri : lmr.CachedUris()) {
    const CacheEntry* entry = lmr.Find(uri);
    out << uri << "|" << entry->resource.class_name() << "|v"
        << entry->version.origin << "." << entry->version.seq;
    std::vector<std::string> props;
    for (const rdf::Property& prop : entry->resource.properties()) {
      props.push_back(prop.name + "=" +
                      (prop.value.is_literal() ? "lit:" : "ref:") +
                      prop.value.text());
    }
    std::sort(props.begin(), props.end());
    for (const std::string& prop : props) out << "|" << prop;
    out << "|nsubs=" << entry->matched_subscriptions.size()
        << "|sr=" << entry->strong_referrers << "|local=" << entry->local
        << "\n";
  }
  return out.str();
}

NetworkOptions FaultyAsyncOptions() {
  NetworkOptions options;
  options.asynchronous = true;
  options.transport.latency_us = 100;
  options.transport.jitter_us = 200;
  options.transport.faults.drop_probability = 0.10;
  options.transport.faults.duplicate_probability = 0.05;
  options.transport.faults.reorder_probability = 0.10;
  options.transport.faults.seed = 20020611;  // Fixed: reproducible faults.
  options.reliability.retransmit_timeout_us = 2000;
  return options;
}

JoinOptions StormJoinOptions() {
  JoinOptions options;
  // The request frame itself is fire-and-forget and can be dropped;
  // keep the per-attempt timeout short so the retry loop, not the
  // test timeout, absorbs it.
  options.attempt_timeout_us = 2'000'000;
  options.max_attempts = 10;
  return options;
}

TEST(MdvReplicationTest, JoinDuringStormKeepsReplicaByteIdentical) {
  MdvSystem system(rdf::MakeObjectGlobeSchema(), {}, FaultyAsyncOptions());
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* reference = system.AddRepository(provider);
  LocalMetadataRepository* joiner = system.AddRepository(provider);
  ASSERT_TRUE(reference->Subscribe(kRule).ok());
  ASSERT_TRUE(joiner->Subscribe(kRule).ok());
  ASSERT_TRUE(system.network().WaitQuiescent());

  // A publish storm with joins fired while frames are still in flight
  // (dropped, duplicated and reordered by the fault injector): the
  // joiner buffers the concurrent live stream and replays it over the
  // merged snapshot, so nothing is lost or applied out of order.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      const int doc = round * 8 + i;
      ASSERT_TRUE(provider
                      ->RegisterDocument(MakeDoc(
                          "d" + std::to_string(doc) + ".rdf", "x.example",
                          24 + 16 * doc))
                      .ok());
    }
    ASSERT_TRUE(provider
                    ->UpdateDocument(MakeDoc(
                        "d" + std::to_string(round * 8) + ".rdf", "x.example",
                        512))
                    .ok());
    ASSERT_TRUE(
        provider->DeleteDocument("d" + std::to_string(round * 8 + 3) + ".rdf")
            .ok());
    ASSERT_TRUE(joiner->JoinReplica(StormJoinOptions()).ok());
  }
  EXPECT_EQ(joiner->joins_completed(), 3);
  ASSERT_TRUE(system.network().WaitQuiescent());

  EXPECT_FALSE(DumpCache(*reference).empty());
  EXPECT_EQ(DumpCache(*reference), DumpCache(*joiner));
  EXPECT_TRUE(reference->AuditCacheInvariants().ok());
  EXPECT_TRUE(joiner->AuditCacheInvariants().ok());

  // The storm actually stormed.
  EXPECT_GT(system.network().transport_stats().dropped_faults, 0);
}

TEST(MdvReplicationTest, TtlReplicaResyncsViaJoin) {
  MdvSystem system(rdf::MakeObjectGlobeSchema(), {}, FaultyAsyncOptions());
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* reference = system.AddRepository(provider);
  LocalMetadataRepository* ttl = system.AddRepository(provider);
  ASSERT_TRUE(reference->Subscribe(kRule).ok());
  ASSERT_TRUE(ttl->Subscribe(kRule).ok());
  ASSERT_TRUE(system.network().WaitQuiescent());
  ttl->set_consistency_mode(ConsistencyMode::kTimeToLive);

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(provider
                    ->RegisterDocument(MakeDoc("d" + std::to_string(i) +
                                                   ".rdf",
                                               "x.example", 24 + 16 * i))
                    .ok());
  }
  ASSERT_TRUE(provider->UpdateDocument(MakeDoc("d2.rdf", "x.example", 8)).ok());
  ASSERT_TRUE(provider->DeleteDocument("d9.rdf").ok());
  ASSERT_TRUE(system.network().WaitQuiescent());

  // Pushes were suppressed; a Refresh (= full join) resynchronizes.
  EXPECT_EQ(ttl->CacheSize(), 0u);
  ASSERT_TRUE(ttl->Refresh().ok());
  EXPECT_EQ(DumpCache(*reference), DumpCache(*ttl));
  EXPECT_TRUE(ttl->AuditCacheInvariants().ok());
}

TEST(MdvReplicationTest, DurableReplicaReplaysThenDeltaCatchesUp) {
  const std::string dir = TestDir("durable_rejoin");
  rdf::RdfSchema schema = rdf::MakeObjectGlobeSchema();
  Network network(FaultyAsyncOptions());
  MetadataProvider provider(&schema, &network);
  wal::WalOptions options;
  options.dir = dir;

  // A never-restarted reference replica alongside the one we crash.
  LocalMetadataRepository reference(2, &schema, &provider, &network);
  ASSERT_TRUE(reference.Subscribe(kRule).ok());

  {
    Result<std::unique_ptr<LocalMetadataRepository>> durable =
        LocalMetadataRepository::OpenDurable(1, &schema, &provider, &network,
                                             options);
    ASSERT_TRUE(durable.ok()) << durable.status();
    ASSERT_TRUE((*durable)->Subscribe(kRule).ok());
    for (int i = 0; i < 24; ++i) {
      ASSERT_TRUE(provider
                      .RegisterDocument(MakeDoc("d" + std::to_string(i) +
                                                    ".rdf",
                                                "x.example", 24 + 16 * i))
                      .ok());
    }
    ASSERT_TRUE(network.WaitQuiescent());
    EXPECT_GT((*durable)->CacheSize(), 0u);
  }  // "kill -9": destroyed mid-deployment, journal survives.

  // Missed while down: a few updates and one delete.
  ASSERT_TRUE(provider.UpdateDocument(MakeDoc("d4.rdf", "x.example", 999))
                  .ok());
  ASSERT_TRUE(provider.UpdateDocument(MakeDoc("d6.rdf", "x.example", 998))
                  .ok());
  ASSERT_TRUE(provider.DeleteDocument("d8.rdf").ok());
  ASSERT_TRUE(network.WaitQuiescent());

  // Reboot: local replay restores the pre-crash cache without touching
  // the network, then a delta join ships only what was missed.
  Result<std::unique_ptr<LocalMetadataRepository>> revived =
      LocalMetadataRepository::OpenDurable(1, &schema, &provider, &network,
                                           options);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_GT((*revived)->CacheSize(), 0u);
  EXPECT_FALSE((*revived)->version_vector().empty());

  const int64_t before_delta = network.transport_stats().bytes_sent;
  ASSERT_TRUE((*revived)->JoinReplica(StormJoinOptions()).ok());
  ASSERT_TRUE(network.WaitQuiescent());
  const int64_t delta_bytes =
      network.transport_stats().bytes_sent - before_delta;

  EXPECT_EQ(DumpCache(reference), DumpCache(**revived));
  EXPECT_TRUE((*revived)->AuditCacheInvariants().ok());

  // Acceptance: the delta catchup must move strictly fewer bytes than a
  // full snapshot of the same subscription set (measured on the same
  // replica, same transport).
  JoinOptions full = StormJoinOptions();
  full.delta = false;
  const int64_t before_full = network.transport_stats().bytes_sent;
  ASSERT_TRUE((*revived)->JoinReplica(full).ok());
  ASSERT_TRUE(network.WaitQuiescent());
  const int64_t full_bytes =
      network.transport_stats().bytes_sent - before_full;
  EXPECT_LT(delta_bytes, full_bytes)
      << "delta catchup shipped " << delta_bytes << "B, full snapshot "
      << full_bytes << "B";
  EXPECT_EQ(DumpCache(reference), DumpCache(**revived));
}

TEST(MdvReplicationTest, VersionVectorAdvancesAndLastWriterWins) {
  MdvSystem system(rdf::MakeObjectGlobeSchema());
  MetadataProvider* provider = system.AddProvider();
  LocalMetadataRepository* lmr = system.AddRepository(provider);
  ASSERT_TRUE(lmr->Subscribe(kRule).ok());
  ASSERT_TRUE(provider->RegisterDocument(MakeDoc("d.rdf", "x", 92)).ok());
  ASSERT_TRUE(provider->UpdateDocument(MakeDoc("d.rdf", "x", 128)).ok());

  // Every delivered entry carries the publisher's stamp, and the
  // replica's vector tracks the high water per origin.
  const CacheEntry* info = lmr->Find("d.rdf#info");
  ASSERT_NE(info, nullptr);
  const uint64_t origin = info->version.origin;
  EXPECT_NE(origin, 0u);
  EXPECT_GE(info->version.seq, 1u);
  std::map<uint64_t, uint64_t> vector = lmr->version_vector();
  ASSERT_EQ(vector.count(origin), 1u);
  EXPECT_GE(vector[origin], info->version.seq);
  EXPECT_EQ(info->resource.FindProperty("memory")->text(), "128");

  // A stale write (an old version reordered past a newer one) loses.
  pubsub::Notification stale;
  stale.kind = pubsub::NotificationKind::kUpdate;
  stale.lmr = 1;
  rdf::Resource old_info("info", "ServerInformation");
  old_info.AddProperty("memory", rdf::PropertyValue::Literal("1"));
  old_info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));
  stale.resources.push_back(
      {"d.rdf#info", old_info, false,
       pubsub::EntryVersion{origin, info->version.seq - 1}});
  lmr->ApplyNotification(stale);
  EXPECT_EQ(lmr->Find("d.rdf#info")->resource.FindProperty("memory")->text(),
            "128");

  // A genuinely newer one wins.
  pubsub::Notification newer = stale;
  newer.resources[0].version = pubsub::EntryVersion{origin, vector[origin] + 7};
  lmr->ApplyNotification(newer);
  EXPECT_EQ(lmr->Find("d.rdf#info")->resource.FindProperty("memory")->text(),
            "1");
  EXPECT_EQ(lmr->version_vector()[origin], vector[origin] + 7);
  EXPECT_TRUE(lmr->AuditCacheInvariants().ok());
}

}  // namespace
}  // namespace mdv
