#include "net/transport.h"

#include <random>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace mdv::net {

namespace {

/// Process-wide mdv.net.* handles for the transport layer, resolved
/// once. These aggregate across transport instances; TransportStats
/// stays the per-instance view.
struct TransportMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& sent = r.GetCounter("mdv.net.frames_sent_total");
  obs::Counter& delivered = r.GetCounter("mdv.net.frames_delivered_total");
  obs::Counter& dropped = r.GetCounter("mdv.net.dropped_total");
  obs::Gauge& queue_depth = r.GetGauge("mdv.net.queue_depth");

  static TransportMetrics& Get() {
    static TransportMetrics& metrics = *new TransportMetrics();
    return metrics;
  }
};

int64_t NowUs() { return obs::NowNs() / 1000; }

}  // namespace

InProcessTransport::InProcessTransport(TransportOptions options)
    : options_(options), injector_(options.faults) {}

InProcessTransport::~InProcessTransport() {
  std::vector<EndpointId> bound;
  {
    MutexLock lock(mu_);
    for (const auto& [id, endpoint] : endpoints_) bound.push_back(id);
  }
  for (EndpointId id : bound) Unbind(id);
}

Status InProcessTransport::Bind(EndpointId endpoint, FrameHandler handler) {
  MutexLock lock(mu_);
  if (endpoints_.count(endpoint) != 0) {
    return Status::AlreadyExists("transport endpoint " +
                                 std::to_string(endpoint) + " already bound");
  }
  auto state = std::make_shared<Endpoint>();
  {
    // The worker is not running yet, but the analysis (and the rank
    // checker) see handler as endpoint-lock state: initialize it as
    // such.
    MutexLock ep_lock(state->mu);
    state->handler = std::move(handler);
  }
  state->worker = std::thread([this, state] { WorkerLoop(state); });
  endpoints_.emplace(endpoint, std::move(state));
  return Status::OK();
}

void InProcessTransport::Unbind(EndpointId endpoint) {
  std::shared_ptr<Endpoint> state;
  {
    MutexLock lock(mu_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) return;
    state = std::move(it->second);
    endpoints_.erase(it);
  }
  {
    MutexLock lock(state->mu);
    state->stop = true;
    state->handler = nullptr;
    state->cv.NotifyAll();
  }
  if (state->worker.get_id() == std::this_thread::get_id()) {
    // Re-entrant Unbind from inside the endpoint's own handler: the
    // worker cannot join itself; it exits right after the handler
    // returns (the shared_ptr it holds keeps the state alive).
    state->worker.detach();
  } else {
    state->worker.join();
  }
}

bool InProcessTransport::IsBound(EndpointId endpoint) const {
  MutexLock lock(mu_);
  return endpoints_.count(endpoint) != 0;
}

Status InProcessTransport::Send(EndpointId to, std::string frame) {
  TransportMetrics& metrics = TransportMetrics::Get();
  const FaultDecision decision = injector_.Decide();
  std::shared_ptr<Endpoint> state;
  int64_t jitter = 0;
  {
    MutexLock lock(mu_);
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      ++stats_.dropped_unbound;
      metrics.dropped.Increment();
      return Status::NotFound("transport endpoint " + std::to_string(to) +
                              " not bound");
    }
    state = it->second;
    if (options_.jitter_us > 0) {
      jitter = std::uniform_int_distribution<int64_t>(
          0, options_.jitter_us)(jitter_rng_);
    }
  }
  if (decision.drop) {
    MutexLock lock(mu_);
    ++stats_.dropped_faults;
    metrics.dropped.Increment();
    return Status::OK();  // The sender cannot observe network loss.
  }

  const int64_t frame_bytes = static_cast<int64_t>(frame.size());
  int enqueued = 0;
  bool overflowed = false;
  {
    MutexLock lock(state->mu);
    if (!state->stop) {
      for (int copy = 0; copy < decision.copies; ++copy) {
        if (state->queue.size() >= options_.queue_capacity) {
          overflowed = true;
          break;
        }
        const int64_t deliver_at =
            NowUs() + options_.latency_us + jitter + decision.extra_delay_us;
        state->queue.emplace(deliver_at, frame);
        ++enqueued;
      }
      if (enqueued > 0) {
        // Count the frames *before* the worker can see them: once the
        // notify lands the worker may dequeue, deliver and decrement
        // immediately, and an increment issued after this critical
        // section would let active_ dip to zero with work still queued
        // or running — WaitIdle would report idle mid-delivery.
        active_.fetch_add(enqueued, std::memory_order_relaxed);
        state->cv.NotifyAll();
      }
    } else {
      overflowed = false;  // Raced an Unbind: count as unbound below.
    }
  }
  if (enqueued > 0) {
    metrics.sent.Add(enqueued);
    metrics.queue_depth.Add(enqueued);
  }
  MutexLock lock(mu_);
  stats_.sent += enqueued;
  stats_.bytes_sent += frame_bytes * enqueued;
  if (overflowed) {
    ++stats_.dropped_overflow;
    metrics.dropped.Increment();
    if (enqueued == 0) {
      return Status::ResourceExhausted("transport queue for endpoint " +
                                       std::to_string(to) + " is full");
    }
  }
  if (enqueued == 0 && !overflowed) {
    ++stats_.dropped_unbound;
    metrics.dropped.Increment();
    return Status::NotFound("transport endpoint " + std::to_string(to) +
                            " unbound during send");
  }
  return Status::OK();
}

void InProcessTransport::WorkerLoop(const std::shared_ptr<Endpoint>& state) {
  TransportMetrics& metrics = TransportMetrics::Get();
  state->mu.Lock();
  for (;;) {
    while (!state->stop && state->queue.empty()) state->cv.Wait(state->mu);
    if (state->stop) break;
    auto it = state->queue.begin();
    const int64_t now = NowUs();
    if (it->first > now) {
      // Sleep until the earliest frame matures; a new earlier frame or
      // stop request re-wakes us via the cv (a wake just reloops, so a
      // spurious one costs a recheck, nothing more).
      state->cv.WaitFor(state->mu, it->first - now);
      continue;
    }
    std::string frame = std::move(it->second);
    state->queue.erase(it);
    metrics.queue_depth.Add(-1);
    FrameHandler handler = state->handler;
    const int64_t frame_bytes = static_cast<int64_t>(frame.size());
    state->mu.Unlock();
    if (handler) handler(std::move(frame));
    {
      MutexLock stats_lock(mu_);
      ++stats_.delivered;
      stats_.bytes_delivered += frame_bytes;
    }
    metrics.delivered.Increment();
    FinishActive(1);
    state->mu.Lock();
  }
  // Discard whatever is still queued so WaitIdle does not wait for
  // frames that can never be handled.
  const int64_t discarded = static_cast<int64_t>(state->queue.size());
  state->queue.clear();
  state->mu.Unlock();
  if (discarded > 0) {
    metrics.queue_depth.Add(-discarded);
    FinishActive(discarded);
  }
}

void InProcessTransport::FinishActive(int64_t n) {
  if (active_.fetch_sub(n, std::memory_order_release) == n) {
    // Hitting zero: wake idle waiters (lock ensures no missed wakeup).
    MutexLock lock(idle_mu_);
    idle_cv_.NotifyAll();
  }
}

bool InProcessTransport::WaitIdle(int64_t timeout_us) {
  const int64_t deadline = NowUs() + timeout_us;
  MutexLock lock(idle_mu_);
  while (active_.load(std::memory_order_acquire) != 0) {
    const int64_t remaining = deadline - NowUs();
    if (remaining <= 0) return false;
    idle_cv_.WaitFor(idle_mu_, remaining);
  }
  return true;
}

TransportStats InProcessTransport::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

int64_t InProcessTransport::QueueDepth() const {
  return active_.load(std::memory_order_relaxed);
}

}  // namespace mdv::net
