#ifndef MDV_NET_RELIABLE_H_
#define MDV_NET_RELIABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <tuple>

#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "pubsub/notification.h"

namespace mdv::net {

/// One (sender → receiver) flow's dedup/reorder state, exportable for
/// persistence and re-importable on restart. A receiver seeded with
/// the state it held at crash time neither re-applies a notification
/// the sender retransmits (sequence <= applied_through) nor loses one
/// that was parked out-of-order in the hold-back queue.
struct FlowRestore {
  uint64_t sender = 0;
  uint64_t applied_through = 0;
  std::map<uint64_t, pubsub::Notification> holdback;
};

/// Durability hook for one receiver: called with the raw notify frame
/// BEFORE the link acks or applies it. A non-OK return aborts
/// processing of the frame entirely — no ack, no dedup insert, no
/// handler call — so the sender's retransmit timer redelivers it and
/// the journal gets another chance. This ordering is what makes the
/// protocol exactly-once across receiver crashes: a frame is acked
/// only once it is journaled, and the journal replay restores the
/// dedup state that absorbs the retransmits of anything acked.
/// `kind` is the decoded notification kind, so hooks can decline to
/// journal snapshot-stream frames (a crashed join is abandoned and
/// restarted, never replayed) by returning OK without writing.
using ReceiverJournal = std::function<Status(
    const std::string& frame, uint64_t sender, uint64_t sequence,
    pubsub::NotificationKind kind)>;

/// Per-receiver durability wiring passed to BindReceiver. Default
/// (empty) means a volatile receiver: no journal, fresh flows.
struct ReceiverDurability {
  ReceiverJournal journal;
  std::vector<FlowRestore> flows;
};

/// Tuning of the at-least-once delivery protocol.
struct ReliableOptions {
  /// First redelivery fires this long after the original send.
  int64_t retransmit_timeout_us = 5000;
  /// Each further attempt multiplies the timeout by this factor...
  double backoff_factor = 2.0;
  /// ...capped here.
  int64_t max_backoff_us = 200000;
  /// Total send attempts (original + redeliveries) before a frame is
  /// dead-lettered. At 10% frame loss in both directions the chance of
  /// exhausting 12 attempts is ~1e-9; a flow that does lose a frame for
  /// good stalls at that sequence number (FIFO cannot skip), which the
  /// dead_lettered counter makes visible.
  int max_attempts = 12;
  /// How often the retransmit scanner wakes when deliveries are
  /// pending.
  int64_t scan_interval_us = 1000;
};

/// Counter snapshot of one link (the process-wide mdv.net.* registry
/// metrics aggregate across links).
struct LinkStats {
  int64_t published = 0;         ///< Notifications accepted from senders.
  int64_t delivered = 0;         ///< Notifications handed to receivers.
  int64_t redelivered = 0;       ///< Retransmitted notify frames.
  int64_t acked = 0;             ///< Pending entries cleared by an ack.
  int64_t dedup_suppressed = 0;  ///< Duplicate frames absorbed by seq dedup.
  int64_t dead_lettered = 0;     ///< Frames abandoned after the retry cap.
  int64_t decode_errors = 0;     ///< Frames the wire codec rejected.
};

/// At-least-once, in-order notification delivery over an unreliable
/// Transport — the R-GMA-style "republish on failure" substrate under
/// the MDV pub/sub layer:
///
///  - every publish is stamped with a monotonic sequence number in its
///    (sender, lmr) flow and encoded into a notify frame,
///  - unacked frames are retransmitted on a timeout with exponential
///    backoff until the retry cap,
///  - the receiver acks every arriving frame, deduplicates by sequence
///    number and releases notifications to the handler strictly in
///    sequence order (a hold-back queue absorbs reordering), so the
///    handler sees each notification exactly once, in publish order,
///    no matter what the transport dropped, duplicated or reordered.
///
/// Receivers bind their LmrId as the transport endpoint; each sender
/// gets a derived ack endpoint (see AckEndpoint). LMR ids must be
/// non-negative for the two id spaces to stay disjoint.
class ReliableLink {
 public:
  using NotificationHandler =
      std::function<void(const pubsub::Notification&)>;

  ReliableLink(Transport* transport, ReliableOptions options = {});
  ~ReliableLink();

  ReliableLink(const ReliableLink&) = delete;
  ReliableLink& operator=(const ReliableLink&) = delete;

  /// Allocates a sender id (one per MDP) and binds its ack endpoint.
  uint64_t RegisterSender() EXCLUDES(mu_);

  /// Binds the notification handler of an LMR. The handler runs on the
  /// transport's endpoint thread, serially per LMR. `durability`
  /// optionally journals every new frame pre-ack and seeds the flow
  /// state a previous incarnation persisted (see ReceiverDurability).
  Status BindReceiver(pubsub::LmrId lmr, NotificationHandler handler,
                      ReceiverDurability durability = {}) EXCLUDES(mu_);

  /// Unbinds an LMR; linearizes against in-flight handler runs (see
  /// Transport::Unbind) and forgets its flow state.
  void UnbindReceiver(pubsub::LmrId lmr) EXCLUDES(mu_);

  /// Stamps, encodes and sends `note` to `note.lmr`, tracking it for
  /// redelivery until acked. NotFound if no receiver is bound. Senders
  /// unknown to RegisterSender are registered implicitly.
  Status Publish(uint64_t sender, const pubsub::Notification& note)
      EXCLUDES(mu_);

  /// Blocks until every published frame is acked or dead-lettered and
  /// the transport is idle (all queues drained, no handler running), or
  /// the timeout elapses. After a true return the receivers' state is
  /// safe to read from this thread.
  bool WaitSettled(int64_t timeout_us) EXCLUDES(mu_);

  /// The stats/depth accessors copy under mu_, so a caller already
  /// holding it (i.e. code inside this class) must read the fields
  /// directly instead — same pattern as Transport::WaitIdle, enforced
  /// at compile time by EXCLUDES and at runtime by the rank checker.
  LinkStats stats() const EXCLUDES(mu_);

  /// Unacked frames currently awaiting ack or retransmission.
  size_t PendingCount() const EXCLUDES(mu_);

  /// Notifications parked in receiver hold-back queues across all
  /// flows, waiting for a sequence gap to fill.
  size_t HoldbackDepth() const EXCLUDES(mu_);

  /// Copies `lmr`'s current flow state for checkpointing. Only
  /// meaningful when no frame for `lmr` is in flight (the caller
  /// quiesces first, e.g. via WaitSettled); empty if unbound.
  std::vector<FlowRestore> ReceiverFlowState(pubsub::LmrId lmr) const
      EXCLUDES(mu_);

  /// The transport endpoint that carries acks back to `sender`.
  static EndpointId AckEndpoint(uint64_t sender) {
    return -static_cast<EndpointId>(sender) - 1;
  }

 private:
  struct FlowKey {
    uint64_t sender = 0;
    pubsub::LmrId lmr = -1;
    bool operator<(const FlowKey& other) const {
      return std::tie(sender, lmr) < std::tie(other.sender, other.lmr);
    }
  };

  struct Pending {
    std::string frame;
    pubsub::LmrId lmr = -1;
    int attempts = 1;
    int64_t next_retry_us = 0;
    int64_t backoff_us = 0;
    obs::SpanContext trace;
  };

  /// Per-(sender → this receiver) dedup and reordering state.
  struct Flow {
    uint64_t applied_through = 0;  ///< Highest contiguously applied seq.
    std::map<uint64_t, pubsub::Notification> holdback;  ///< Out-of-order.
  };

  struct Receiver {
    NotificationHandler handler;
    ReceiverJournal journal;
    std::map<uint64_t, Flow> flows;  // Keyed by sender.
  };

  void EnsureSenderLocked(uint64_t sender) REQUIRES(mu_);
  void OnReceiverFrame(pubsub::LmrId lmr, std::string frame) EXCLUDES(mu_);
  void OnAckFrame(std::string frame) EXCLUDES(mu_);
  void RetransmitLoop() EXCLUDES(mu_);

  Transport* transport_;
  const ReliableOptions options_;
  /// kNetLink ranks outside the transport locks: Publish checks
  /// IsBound and EnsureSenderLocked binds the ack endpoint while
  /// holding mu_, so link → transport nesting is the sanctioned order.
  mutable Mutex mu_{LockRank::kNetLink, "net.link"};
  CondVar settled_cv_;
  CondVar scan_cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  uint64_t next_sender_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, bool> senders_ GUARDED_BY(mu_);
  std::map<FlowKey, uint64_t> next_seq_ GUARDED_BY(mu_);
  std::map<FlowKey, std::map<uint64_t, Pending>> pending_ GUARDED_BY(mu_);
  size_t pending_count_ GUARDED_BY(mu_) = 0;
  std::map<pubsub::LmrId, Receiver> receivers_ GUARDED_BY(mu_);
  LinkStats stats_ GUARDED_BY(mu_);
  std::thread retransmitter_;
};

}  // namespace mdv::net

#endif  // MDV_NET_RELIABLE_H_
