#ifndef MDV_NET_TRANSPORT_H_
#define MDV_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/fault.h"

namespace mdv::net {

/// Address of one receiving endpoint. LMR delivery endpoints use their
/// (non-negative) LmrId; the reliability layer derives negative ids for
/// sender-side ack endpoints (see reliable.h).
using EndpointId = int64_t;

/// Control endpoint on which a sender (MDP) receives snapshot requests
/// from joining replicas. Offset far below the ack-endpoint range
/// (-sender - 1, see reliable.h) so the two families never collide.
inline EndpointId SnapshotControlEndpoint(uint64_t sender) {
  return -static_cast<EndpointId>(sender) - (int64_t{1} << 40);
}

/// Counters of one transport instance (the process-wide mdv.net.*
/// registry metrics aggregate across instances).
struct TransportStats {
  int64_t sent = 0;            ///< Frames accepted for delivery (copies count).
  int64_t delivered = 0;       ///< Handler invocations completed.
  int64_t dropped_faults = 0;  ///< Frames eaten by the fault injector.
  int64_t dropped_overflow = 0;  ///< Frames rejected by a full queue.
  int64_t dropped_unbound = 0;   ///< Frames to endpoints nobody bound.
  /// Payload bytes of frames accepted for delivery (duplicated copies
  /// count, dropped/unbound ones do not). The replication tests assert
  /// delta catchup < full snapshot from deltas of this counter.
  int64_t bytes_sent = 0;
  int64_t bytes_delivered = 0;  ///< Bytes of frames handed to handlers.
};

/// Abstraction of the wire between MDPs and LMRs. Implementations move
/// opaque frames (produced by the wire codec) from Send() calls to the
/// handler bound at the destination endpoint. Delivery is asynchronous
/// and unreliable unless documented otherwise: frames may be dropped,
/// duplicated, reordered or delayed. Reliability is layered on top (see
/// reliable.h), mirroring how MDV's paper deployment would sit on UDP-
/// or TCP-connected hosts "over the Internet".
class Transport {
 public:
  /// Receives one raw frame. Runs on a transport-owned thread; handlers
  /// for one endpoint are invoked serially (actor-style), handlers of
  /// different endpoints concurrently.
  using FrameHandler = std::function<void(std::string frame)>;

  virtual ~Transport() = default;

  /// Binds the handler of an endpoint; AlreadyExists if bound.
  virtual Status Bind(EndpointId endpoint, FrameHandler handler) = 0;

  /// Unbinds an endpoint and discards its queued frames. Linearizes
  /// against in-flight delivery: once Unbind returns, the handler is not
  /// running and will never run again. Calling it from inside the
  /// endpoint's own handler is allowed (the guarantee then holds as of
  /// the handler's return). Unknown endpoints are a no-op.
  virtual void Unbind(EndpointId endpoint) = 0;

  virtual bool IsBound(EndpointId endpoint) const = 0;

  /// Queues one frame for asynchronous delivery. NotFound if the
  /// endpoint is unbound, ResourceExhausted if its queue is full; OK
  /// even when the fault injector decided to lose the frame (the sender
  /// cannot tell — that is the point).
  virtual Status Send(EndpointId to, std::string frame) = 0;

  /// Blocks until no frame is queued or being handled anywhere, or the
  /// timeout elapses. Establishes a happens-before edge with every
  /// completed handler, so a caller observing true may read handler-
  /// written state without further synchronization.
  virtual bool WaitIdle(int64_t timeout_us) = 0;
};

/// Tuning of the in-process transport.
struct TransportOptions {
  /// Bounded per-endpoint FIFO capacity; Send to a full queue fails.
  size_t queue_capacity = 1024;
  /// Synthetic one-way latency added to every frame.
  int64_t latency_us = 0;
  /// Uniform extra delay in [0, jitter_us] per frame (jitter > 0 makes
  /// near-simultaneous frames overtake each other, like real packets).
  int64_t jitter_us = 0;
  FaultOptions faults;
};

/// The asynchronous in-process implementation: one bounded queue and
/// one drainer thread per endpoint. Frames become visible to the
/// endpoint's handler after their synthetic delivery time; the queue is
/// ordered by delivery time, so jitter and injected reorder delays
/// produce genuine out-of-order delivery.
class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(TransportOptions options = {});
  ~InProcessTransport() override;

  InProcessTransport(const InProcessTransport&) = delete;
  InProcessTransport& operator=(const InProcessTransport&) = delete;

  Status Bind(EndpointId endpoint, FrameHandler handler) override
      EXCLUDES(mu_);
  void Unbind(EndpointId endpoint) override EXCLUDES(mu_);
  bool IsBound(EndpointId endpoint) const override EXCLUDES(mu_);
  Status Send(EndpointId to, std::string frame) override EXCLUDES(mu_);
  bool WaitIdle(int64_t timeout_us) override EXCLUDES(mu_, idle_mu_);

  /// Copies the per-instance counters under the registry lock; callers
  /// must not hold it (a handler reading stats() of its own transport
  /// runs lock-free and is fine — workers drop every lock before
  /// invoking handlers).
  TransportStats stats() const EXCLUDES(mu_);
  FaultStats fault_stats() const { return injector_.stats(); }

  /// Deterministic per-frame fault schedule (see FaultInjector).
  void set_fault_schedule(FaultInjector::Schedule schedule) {
    injector_.set_schedule(std::move(schedule));
  }

  /// Frames currently queued across all endpoints (the queue_depth
  /// gauge's source).
  int64_t QueueDepth() const;

 private:
  struct Endpoint {
    /// Never nests with the registry lock or another endpoint's: Send
    /// and Unbind release mu_ before taking it, and workers hold
    /// nothing while delivering.
    Mutex mu{LockRank::kNetEndpoint, "net.transport.endpoint"};
    CondVar cv;
    /// Delivery-time-ordered queue (multimap key = steady-clock
    /// microseconds at which the frame becomes deliverable).
    std::multimap<int64_t, std::string> queue GUARDED_BY(mu);
    FrameHandler handler GUARDED_BY(mu);
    bool stop GUARDED_BY(mu) = false;
    std::thread worker;
  };

  void WorkerLoop(const std::shared_ptr<Endpoint>& endpoint)
      EXCLUDES(mu_, idle_mu_);
  /// Release-decrements active_ by `n`, waking idle waiters at zero.
  void FinishActive(int64_t n) EXCLUDES(idle_mu_);

  const TransportOptions options_;
  FaultInjector injector_;
  /// Endpoint registry + per-instance counters. Held only for map
  /// lookups and counter bumps — never across a handler or a queue
  /// operation.
  mutable Mutex mu_{LockRank::kNetTransport, "net.transport"};
  std::map<EndpointId, std::shared_ptr<Endpoint>> endpoints_ GUARDED_BY(mu_);
  TransportStats stats_ GUARDED_BY(mu_);
  std::mt19937_64 jitter_rng_ GUARDED_BY(mu_){0x6A09E667F3BCC909ull};
  /// Queued frames + running handlers. The final release-decrement by a
  /// worker pairs with WaitIdle's acquire-load: observing 0 after it
  /// means every handler effect is visible.
  std::atomic<int64_t> active_{0};
  /// Idle-waiter handshake only; active_ itself is an atomic read
  /// outside any lock.
  Mutex idle_mu_{LockRank::kNetIdle, "net.idle"};
  CondVar idle_cv_;
};

}  // namespace mdv::net

#endif  // MDV_NET_TRANSPORT_H_
