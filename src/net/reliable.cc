#include "net/reliable.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace mdv::net {

namespace {

/// Process-wide mdv.net.* handles for the delivery protocol, resolved
/// once. These aggregate across links; LinkStats is the per-instance
/// view.
struct LinkMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& enqueued = r.GetCounter("mdv.net.enqueued_total");
  obs::Counter& delivered = r.GetCounter("mdv.net.delivered_total");
  obs::Counter& redelivered = r.GetCounter("mdv.net.redelivered_total");
  obs::Counter& acked = r.GetCounter("mdv.net.acked_total");
  obs::Counter& dedup = r.GetCounter("mdv.net.dedup_suppressed_total");
  obs::Counter& dead = r.GetCounter("mdv.net.dead_lettered_total");
  obs::Counter& decode_errors = r.GetCounter("mdv.net.decode_errors_total");
  /// Frames a receiver's durability journal refused (left un-acked for
  /// redelivery). Nonzero and climbing means the WAL cannot write.
  obs::Counter& journal_rejects = r.GetCounter("mdv.net.journal_rejects_total");
  /// Depth gauges (summed across links): frames awaiting ack on the
  /// sender side, and notifications parked in receiver hold-back queues
  /// waiting for a sequence gap to fill. Either one climbing without
  /// draining means the pipeline is backing up.
  obs::Gauge& unacked_depth = r.GetGauge("mdv.net.unacked_depth");
  obs::Gauge& holdback_depth = r.GetGauge("mdv.net.holdback_depth");

  static LinkMetrics& Get() {
    static LinkMetrics& metrics = *new LinkMetrics();
    return metrics;
  }
};

int64_t NowUs() { return obs::NowNs() / 1000; }

}  // namespace

ReliableLink::ReliableLink(Transport* transport, ReliableOptions options)
    : transport_(transport), options_(options) {
  retransmitter_ = std::thread([this] { RetransmitLoop(); });
}

ReliableLink::~ReliableLink() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    scan_cv_.NotifyAll();
    settled_cv_.NotifyAll();
  }
  if (retransmitter_.joinable()) retransmitter_.join();
  // Unbind every endpoint we own so transport workers stop calling
  // back into this (about to vanish) object.
  std::vector<EndpointId> endpoints;
  {
    MutexLock lock(mu_);
    for (const auto& [lmr, receiver] : receivers_) endpoints.push_back(lmr);
    for (const auto& [sender, bound] : senders_) {
      endpoints.push_back(AckEndpoint(sender));
    }
  }
  for (EndpointId endpoint : endpoints) transport_->Unbind(endpoint);
}

void ReliableLink::EnsureSenderLocked(uint64_t sender) {
  auto [it, inserted] = senders_.emplace(sender, true);
  if (!inserted) return;
  next_sender_ = std::max(next_sender_, sender + 1);
  // Bind may fail only if the ack endpoint id collides with a bound
  // LMR, which the disjoint id spaces rule out.
  (void)transport_->Bind(AckEndpoint(sender),
                         [this](std::string frame) {
                           OnAckFrame(std::move(frame));
                         });
}

uint64_t ReliableLink::RegisterSender() {
  MutexLock lock(mu_);
  const uint64_t sender = next_sender_++;
  EnsureSenderLocked(sender);
  return sender;
}

Status ReliableLink::BindReceiver(pubsub::LmrId lmr,
                                  NotificationHandler handler,
                                  ReceiverDurability durability) {
  if (lmr < 0) {
    return Status::InvalidArgument(
        "asynchronous delivery requires non-negative LMR ids, got " +
        std::to_string(lmr));
  }
  // Install the receiver state — handler, journal, restored flows —
  // before the endpoint binds: the first frame may arrive the moment
  // Bind returns, and it must see the crash-time dedup state, not an
  // empty flow map that would let an already-applied retransmit
  // through.
  int64_t seeded_holdback = 0;
  {
    MutexLock lock(mu_);
    Receiver& receiver = receivers_[lmr];
    receiver.handler = std::move(handler);
    receiver.journal = std::move(durability.journal);
    receiver.flows.clear();
    for (FlowRestore& restore : durability.flows) {
      Flow& flow = receiver.flows[restore.sender];
      flow.applied_through = restore.applied_through;
      flow.holdback = std::move(restore.holdback);
      seeded_holdback += static_cast<int64_t>(flow.holdback.size());
      // If the sender side of this flow restarted too (whole-process
      // crash: its in-memory counter reset to zero), resume numbering
      // above the receiver's watermark — otherwise every post-restart
      // publish would dedup away as a stale sequence.
      uint64_t watermark = flow.applied_through;
      if (!flow.holdback.empty()) {
        watermark = std::max(watermark, flow.holdback.rbegin()->first);
      }
      uint64_t& next = next_seq_[FlowKey{restore.sender, lmr}];
      next = std::max(next, watermark);
    }
  }
  if (seeded_holdback != 0) {
    LinkMetrics::Get().holdback_depth.Add(seeded_holdback);
  }
  Status bound = transport_->Bind(lmr, [this, lmr](std::string frame) {
    OnReceiverFrame(lmr, std::move(frame));
  });
  if (!bound.ok()) {
    MutexLock lock(mu_);
    receivers_.erase(lmr);
    if (seeded_holdback != 0) {
      LinkMetrics::Get().holdback_depth.Add(-seeded_holdback);
    }
    return bound;
  }
  return Status::OK();
}

void ReliableLink::UnbindReceiver(pubsub::LmrId lmr) {
  // Unbind first: it joins the endpoint worker, so after this no
  // OnReceiverFrame for `lmr` is running or will run — then the flow
  // state can go.
  transport_->Unbind(lmr);
  int64_t forgotten = 0;
  {
    MutexLock lock(mu_);
    auto it = receivers_.find(lmr);
    if (it == receivers_.end()) return;
    for (const auto& [sender, flow] : it->second.flows) {
      forgotten += static_cast<int64_t>(flow.holdback.size());
    }
    receivers_.erase(it);
  }
  LinkMetrics::Get().holdback_depth.Add(-forgotten);
}

Status ReliableLink::Publish(uint64_t sender, const pubsub::Notification& note) {
  LinkMetrics& metrics = LinkMetrics::Get();
  const FlowKey key{sender, note.lmr};
  std::string frame;
  uint64_t sequence = 0;
  {
    MutexLock lock(mu_);
    if (stop_) return Status::Internal("link is shutting down");
    EnsureSenderLocked(sender);
    if (!transport_->IsBound(note.lmr)) {
      return Status::NotFound("no receiver bound for LMR " +
                              std::to_string(note.lmr));
    }
    sequence = ++next_seq_[key];
    NotifyFrame notify;
    notify.sender = sender;
    notify.sequence = sequence;
    notify.notification = note;
    frame = EncodeNotifyFrame(notify);
    Pending pending;
    pending.frame = frame;
    pending.lmr = note.lmr;
    pending.attempts = 1;
    pending.backoff_us = options_.retransmit_timeout_us;
    pending.next_retry_us = NowUs() + options_.retransmit_timeout_us;
    pending.trace = note.trace;
    pending_[key].emplace(sequence, std::move(pending));
    ++pending_count_;
    ++stats_.published;
    scan_cv_.NotifyAll();
  }
  metrics.enqueued.Increment();
  metrics.unacked_depth.Add(1);
  obs::FlightRecorder::Default().Record(
      obs::FlightEventType::kEnqueue, static_cast<int64_t>(sender),
      static_cast<int64_t>(note.lmr), static_cast<int64_t>(sequence));
  {
    obs::ScopedSpan span("net.enqueue", note.trace);
    span.AddAttribute("sender", static_cast<int64_t>(sender));
    span.AddAttribute("seq", static_cast<int64_t>(sequence));
    span.AddAttribute("lmr", static_cast<int64_t>(note.lmr));
    span.AddAttribute("bytes", static_cast<int64_t>(frame.size()));
  }
  // A failed send (queue overflow, fault drop is invisible anyway) is
  // not an error up here: the frame stays pending and the retransmit
  // timer redelivers it.
  (void)transport_->Send(note.lmr, std::move(frame));
  return Status::OK();
}

void ReliableLink::OnReceiverFrame(pubsub::LmrId lmr, std::string frame) {
  LinkMetrics& metrics = LinkMetrics::Get();
  Result<DecodedFrame> decoded = DecodeFrame(frame);
  if (!decoded.ok() || decoded.value().type != FrameType::kNotify) {
    MutexLock lock(mu_);
    ++stats_.decode_errors;
    metrics.decode_errors.Increment();
    return;
  }
  NotifyFrame notify = std::move(decoded.value().notify);
  const uint64_t sequence = notify.sequence;
  const uint64_t sender = notify.sender;
  const obs::SpanContext trace = notify.notification.trace;

  // First pass under the lock: classify the frame and pick up the
  // journal. New frames are NOT inserted yet — the journal write must
  // come first, and it does file I/O we refuse to do under mu_.
  bool duplicate = false;
  ReceiverJournal journal;
  {
    MutexLock lock(mu_);
    auto it = receivers_.find(lmr);
    if (it == receivers_.end()) return;  // Raced an UnbindReceiver.
    Flow& flow = it->second.flows[sender];
    duplicate = sequence <= flow.applied_through ||
                flow.holdback.count(sequence) != 0;
    if (!duplicate) journal = it->second.journal;
  }
  // Journal before ack: once the ack leaves, the sender forgets the
  // frame, so the only durable copy is ours. A journal failure drops
  // the frame un-acked — the retransmit timer redelivers it and the
  // journal gets another chance. Safe outside mu_ because the
  // transport runs this receiver's frames serially.
  if (!duplicate && journal) {
    Status journaled =
        journal(frame, sender, sequence, notify.notification.kind);
    if (!journaled.ok()) {
      metrics.journal_rejects.Increment();
      return;
    }
  }

  std::vector<pubsub::Notification> ready;
  NotificationHandler handler;
  int64_t holdback_delta = 0;
  {
    MutexLock lock(mu_);
    auto it = receivers_.find(lmr);
    if (it == receivers_.end()) return;  // Raced an UnbindReceiver.
    Flow& flow = it->second.flows[sender];
    if (duplicate) {
      ++stats_.dedup_suppressed;
    } else {
      flow.holdback.emplace(sequence, std::move(notify.notification));
    }
    // Release the contiguous prefix: reordering is absorbed here, and
    // the handler only ever sees publish order.
    while (!flow.holdback.empty() &&
           flow.holdback.begin()->first == flow.applied_through + 1) {
      ready.push_back(std::move(flow.holdback.begin()->second));
      flow.holdback.erase(flow.holdback.begin());
      ++flow.applied_through;
    }
    stats_.delivered += static_cast<int64_t>(ready.size());
    handler = it->second.handler;
    // One insert (unless duplicate) minus the released prefix: the net
    // change of this receiver's hold-back population.
    holdback_delta =
        (duplicate ? 0 : 1) - static_cast<int64_t>(ready.size());
  }
  if (duplicate) metrics.dedup.Increment();
  metrics.delivered.Add(static_cast<int64_t>(ready.size()));
  metrics.holdback_depth.Add(holdback_delta);
  obs::FlightRecorder::Default().Record(
      obs::FlightEventType::kDeliver, static_cast<int64_t>(sender),
      static_cast<int64_t>(lmr), static_cast<int64_t>(sequence));
  {
    obs::ScopedSpan span("net.deliver", trace);
    span.AddAttribute("sender", static_cast<int64_t>(sender));
    span.AddAttribute("seq", static_cast<int64_t>(sequence));
    span.AddAttribute("lmr", static_cast<int64_t>(lmr));
    if (duplicate) span.AddAttribute("duplicate", "true");
    span.AddAttribute("released", static_cast<int64_t>(ready.size()));
  }
  // Ack every arrival, duplicates included — the original ack may be
  // the frame the network lost. The ack itself crosses the same faulty
  // transport; a lost ack simply means one more redelivery.
  (void)transport_->Send(AckEndpoint(sender),
                         EncodeAckFrame(AckFrame{sender, sequence, lmr}));
  if (handler) {
    for (const pubsub::Notification& note : ready) handler(note);
  }
}

void ReliableLink::OnAckFrame(std::string frame) {
  LinkMetrics& metrics = LinkMetrics::Get();
  Result<DecodedFrame> decoded = DecodeFrame(frame);
  if (!decoded.ok() || decoded.value().type != FrameType::kAck) {
    MutexLock lock(mu_);
    ++stats_.decode_errors;
    metrics.decode_errors.Increment();
    return;
  }
  const AckFrame& ack = decoded.value().ack;
  bool cleared = false;
  obs::SpanContext trace;
  {
    MutexLock lock(mu_);
    auto flow = pending_.find(FlowKey{ack.sender, ack.lmr});
    if (flow != pending_.end()) {
      auto it = flow->second.find(ack.sequence);
      if (it != flow->second.end()) {
        trace = it->second.trace;
        flow->second.erase(it);
        --pending_count_;
        ++stats_.acked;
        cleared = true;
        if (pending_count_ == 0) settled_cv_.NotifyAll();
      }
    }
  }
  if (!cleared) return;  // Duplicate ack for an already-cleared frame.
  metrics.acked.Increment();
  metrics.unacked_depth.Add(-1);
  obs::ScopedSpan span("net.ack", trace);
  span.AddAttribute("sender", static_cast<int64_t>(ack.sender));
  span.AddAttribute("seq", static_cast<int64_t>(ack.sequence));
  span.AddAttribute("lmr", static_cast<int64_t>(ack.lmr));
}

void ReliableLink::RetransmitLoop() {
  LinkMetrics& metrics = LinkMetrics::Get();
  mu_.Lock();
  while (!stop_) {
    if (pending_count_ == 0) {
      while (!stop_ && pending_count_ == 0) scan_cv_.Wait(mu_);
      continue;
    }
    scan_cv_.WaitFor(mu_, options_.scan_interval_us);
    if (stop_) break;
    const int64_t now = NowUs();
    struct Resend {
      uint64_t sender;
      pubsub::LmrId lmr;
      std::string frame;
      obs::SpanContext trace;
      uint64_t sequence;
      int attempt;
    };
    struct DeadLetter {
      uint64_t sender;
      pubsub::LmrId lmr;
      uint64_t sequence;
      int attempts;
    };
    std::vector<Resend> resends;
    std::vector<DeadLetter> dead_letters;
    for (auto& [key, seqs] : pending_) {
      for (auto it = seqs.begin(); it != seqs.end();) {
        Pending& pending = it->second;
        if (pending.next_retry_us > now) {
          ++it;
          continue;
        }
        if (pending.attempts >= options_.max_attempts) {
          ++stats_.dead_lettered;
          dead_letters.push_back(
              DeadLetter{key.sender, pending.lmr, it->first,
                         pending.attempts});
          --pending_count_;
          it = seqs.erase(it);
          continue;
        }
        ++pending.attempts;
        ++stats_.redelivered;
        pending.backoff_us = std::min(
            static_cast<int64_t>(static_cast<double>(pending.backoff_us) *
                                 options_.backoff_factor),
            options_.max_backoff_us);
        pending.next_retry_us = now + pending.backoff_us;
        resends.push_back(Resend{key.sender, pending.lmr, pending.frame,
                                 pending.trace, it->first, pending.attempts});
        ++it;
      }
    }
    const bool settled = pending_count_ == 0;
    mu_.Unlock();
    metrics.dead.Add(static_cast<int64_t>(dead_letters.size()));
    metrics.redelivered.Add(static_cast<int64_t>(resends.size()));
    metrics.unacked_depth.Add(-static_cast<int64_t>(dead_letters.size()));
    if (settled) settled_cv_.NotifyAll();
    obs::FlightRecorder& recorder = obs::FlightRecorder::Default();
    for (const DeadLetter& dead : dead_letters) {
      recorder.Record(obs::FlightEventType::kDeadLetter,
                      static_cast<int64_t>(dead.sender),
                      static_cast<int64_t>(dead.lmr),
                      static_cast<int64_t>(dead.sequence));
    }
    if (!dead_letters.empty()) {
      // A dead-lettered frame stalls its FIFO flow for good — dump the
      // recent pipeline history while it is still in the ring.
      recorder.AutoDump("dead_letter");
    }
    for (Resend& resend : resends) {
      recorder.Record(obs::FlightEventType::kRetransmit,
                      static_cast<int64_t>(resend.sender),
                      static_cast<int64_t>(resend.lmr),
                      static_cast<int64_t>(resend.attempt));
      {
        obs::ScopedSpan span("net.redeliver", resend.trace);
        span.AddAttribute("lmr", static_cast<int64_t>(resend.lmr));
        span.AddAttribute("seq", static_cast<int64_t>(resend.sequence));
        span.AddAttribute("attempt", static_cast<int64_t>(resend.attempt));
      }
      (void)transport_->Send(resend.lmr, std::move(resend.frame));
    }
    mu_.Lock();
  }
  mu_.Unlock();
}

bool ReliableLink::WaitSettled(int64_t timeout_us) {
  const int64_t deadline = NowUs() + timeout_us;
  {
    MutexLock lock(mu_);
    while (pending_count_ != 0) {
      const int64_t wait_us = deadline - NowUs();
      if (wait_us <= 0) return false;
      settled_cv_.WaitFor(mu_, wait_us);
    }
  }
  // Pending empty means no further *first* deliveries; the transport may
  // still be draining duplicates and acks — wait those out too so the
  // caller can safely read receiver-side state.
  const int64_t remaining = std::max<int64_t>(0, deadline - NowUs());
  return transport_->WaitIdle(remaining);
}

LinkStats ReliableLink::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t ReliableLink::PendingCount() const {
  MutexLock lock(mu_);
  return pending_count_;
}

std::vector<FlowRestore> ReliableLink::ReceiverFlowState(
    pubsub::LmrId lmr) const {
  std::vector<FlowRestore> flows;
  MutexLock lock(mu_);
  auto it = receivers_.find(lmr);
  if (it == receivers_.end()) return flows;
  for (const auto& [sender, flow] : it->second.flows) {
    FlowRestore restore;
    restore.sender = sender;
    restore.applied_through = flow.applied_through;
    restore.holdback = flow.holdback;
    flows.push_back(std::move(restore));
  }
  return flows;
}

size_t ReliableLink::HoldbackDepth() const {
  MutexLock lock(mu_);
  size_t depth = 0;
  for (const auto& [lmr, receiver] : receivers_) {
    for (const auto& [sender, flow] : receiver.flows) {
      depth += flow.holdback.size();
    }
  }
  return depth;
}

}  // namespace mdv::net
