#ifndef MDV_NET_WIRE_H_
#define MDV_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "pubsub/notification.h"

namespace mdv::net {

/// Versioned binary wire format for the asynchronous notification
/// transport. Every message travels as one self-contained frame:
///
///   offset  size  field
///   ------  ----  -----------------------------------------------
///        0     4  magic 0x4D44564E ("MDVN", little-endian u32)
///        4     1  version (currently 2)
///        5     1  frame type (1 = notify, 2 = ack, 3 = snapshot request)
///        6     2  reserved, must be zero
///        8     4  payload length in bytes (u32, little-endian)
///       12     8  FNV-1a 64 checksum of the payload bytes
///       20     n  payload
///
/// Integers are fixed-width little-endian; strings are a u32 byte
/// length followed by raw bytes (UTF-8 passes through untouched).
/// Decoding verifies the magic, version, type, reserved bits, exact
/// frame length and checksum before parsing, so truncated, oversized
/// and bit-flipped frames are rejected without touching the payload
/// parser. The payload parser itself bounds-checks every read, so a
/// checksum-colliding corruption still cannot read out of bounds.
///
/// Version history: v1 carried unversioned notify payloads; v2 adds
/// per-resource LWW entry versions, the snapshot-stream notification
/// kinds (chunk/done + manifest trailer), and the snapshot-request
/// frame type for the replica join protocol.
inline constexpr uint32_t kWireMagic = 0x4D44564E;  // "NVDM" on the wire.
inline constexpr uint8_t kWireVersion = 2;
inline constexpr size_t kWireHeaderBytes = 20;
/// Upper bound on the payload of a single frame. Frames claiming more
/// are rejected before any allocation happens.
inline constexpr size_t kMaxPayloadBytes = 64u << 20;

enum class FrameType : uint8_t {
  kNotify = 1,  ///< A publish notification plus its delivery header.
  kAck = 2,     ///< Receiver acknowledgement of one notify frame.
  /// A joining LMR asking its provider for a versioned snapshot. The
  /// chunks and the manifest travel back as ordinary notify frames
  /// (kinds kSnapshotChunk/kSnapshotDone) on the provider's dedicated
  /// snapshot sender flow, inheriting ack/retransmit reliability.
  kSnapshotRequest = 3,
};

/// A notification in flight: the at-least-once delivery header (which
/// sender flow it belongs to and its per-(sender, lmr) sequence number)
/// plus the full notification payload, including every transmitted
/// resource's RDF content and the publish's trace context.
struct NotifyFrame {
  uint64_t sender = 0;
  uint64_t sequence = 0;
  pubsub::Notification notification;
};

/// Acknowledgement of one notify frame, addressed back to the sender's
/// ack endpoint.
struct AckFrame {
  uint64_t sender = 0;
  uint64_t sequence = 0;
  pubsub::LmrId lmr = -1;
};

/// A joining LMR's snapshot request (Clone pattern). `cursor` is the
/// catchup cursor: the per-entry versions the replica already holds, so
/// the server can skip shipping content the replica provably has (the
/// manifest is always complete — only chunk content is elided).
struct SnapshotRequestFrame {
  /// Live sender id of the MDP being asked to serve.
  uint64_t provider = 0;
  pubsub::LmrId lmr = -1;
  uint64_t request_id = 0;
  /// False for a full snapshot (ignore the cursor).
  bool delta = false;
  /// Per-origin high-water marks of the replica's applied versions
  /// (observability + server-side catchup accounting).
  std::vector<pubsub::EntryVersion> vector;
  struct CursorEntry {
    std::string uri_reference;
    pubsub::EntryVersion version;
  };
  std::vector<CursorEntry> cursor;
};

/// A decoded frame: exactly one of the payloads is meaningful,
/// selected by `type`.
struct DecodedFrame {
  FrameType type = FrameType::kNotify;
  NotifyFrame notify;
  AckFrame ack;
  SnapshotRequestFrame snapshot_request;
};

/// Serializes a notify frame (header + payload + checksum).
std::string EncodeNotifyFrame(const NotifyFrame& frame);

/// Serializes an ack frame.
std::string EncodeAckFrame(const AckFrame& frame);

/// Serializes a snapshot request frame.
std::string EncodeSnapshotRequestFrame(const SnapshotRequestFrame& frame);

/// Decodes one complete frame. The buffer must hold exactly one frame;
/// anything shorter (truncation), longer (trailing bytes), corrupt
/// (checksum/magic/version mismatch) or oversized is an error, never a
/// crash or an out-of-bounds read.
Result<DecodedFrame> DecodeFrame(std::string_view buffer);

/// Reassembles frames from a byte stream (the length-prefixed framing a
/// future socket transport would need): append arbitrary chunks, pull
/// complete frames out in order. Corrupt headers poison the stream and
/// every subsequent Next() reports the error.
class FrameBuffer {
 public:
  /// Appends raw bytes to the stream.
  void Append(std::string_view bytes);

  /// Returns the next complete frame's bytes, std::nullopt when more
  /// input is needed, or an error if the stream is corrupt (bad magic /
  /// version / oversized length — resynchronization is impossible).
  Result<std::optional<std::string>> Next();

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

}  // namespace mdv::net

#endif  // MDV_NET_WIRE_H_
