#include "net/wire.h"

#include <cstring>

#include "common/checksum.h"

namespace mdv::net {

namespace {

// ---- Primitive writers (fixed-width little-endian). ---------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// ---- Primitive readers with explicit bounds checks. ---------------------

/// Cursor over a payload; every read checks the remaining length, so a
/// corrupt (checksum-colliding) payload can at worst produce a clean
/// decode error.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  Status ReadU8(uint8_t* v) {
    if (remaining() < 1) return Truncated("u8");
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(uint32_t* v) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return Status::OK();
  }

  Status ReadU64(uint64_t* v) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return Status::OK();
  }

  Status ReadI64(int64_t* v) {
    uint64_t raw = 0;
    MDV_RETURN_IF_ERROR(ReadU64(&raw));
    *v = static_cast<int64_t>(raw);
    return Status::OK();
  }

  Status ReadString(std::string* s) {
    uint32_t len = 0;
    MDV_RETURN_IF_ERROR(ReadU32(&len));
    if (remaining() < len) return Truncated("string body");
    s->assign(data_.substr(pos_, len));
    pos_ += len;
    return Status::OK();
  }

  /// Guards count-prefixed loops: each of `count` elements needs at
  /// least `min_bytes`, so absurd counts fail before any reserve().
  Status CheckCount(uint64_t count, size_t min_bytes, const char* what) {
    if (min_bytes != 0 && count > remaining() / min_bytes) {
      return Status::InvalidArgument(
          std::string("wire: implausible ") + what + " count " +
          std::to_string(count) + " for " + std::to_string(remaining()) +
          " remaining bytes");
    }
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::InvalidArgument(std::string("wire: truncated payload (") +
                                   what + ")");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// ---- Payload codecs. ----------------------------------------------------

void EncodeResource(std::string* out, const rdf::Resource& resource) {
  PutString(out, resource.local_id());
  PutString(out, resource.class_name());
  PutU32(out, static_cast<uint32_t>(resource.properties().size()));
  for (const rdf::Property& prop : resource.properties()) {
    PutString(out, prop.name);
    PutU8(out, prop.value.is_resource_ref() ? 1 : 0);
    PutString(out, prop.value.text());
  }
}

Status DecodeResource(Reader* r, rdf::Resource* resource) {
  std::string local_id;
  std::string class_name;
  MDV_RETURN_IF_ERROR(r->ReadString(&local_id));
  MDV_RETURN_IF_ERROR(r->ReadString(&class_name));
  *resource = rdf::Resource(std::move(local_id), std::move(class_name));
  uint32_t properties = 0;
  MDV_RETURN_IF_ERROR(r->ReadU32(&properties));
  // A property is at least name-len + kind + text-len = 9 bytes.
  MDV_RETURN_IF_ERROR(r->CheckCount(properties, 9, "property"));
  for (uint32_t i = 0; i < properties; ++i) {
    std::string name;
    uint8_t kind = 0;
    std::string text;
    MDV_RETURN_IF_ERROR(r->ReadString(&name));
    MDV_RETURN_IF_ERROR(r->ReadU8(&kind));
    MDV_RETURN_IF_ERROR(r->ReadString(&text));
    if (kind > 1) {
      return Status::InvalidArgument("wire: unknown property value kind " +
                                     std::to_string(kind));
    }
    resource->AddProperty(std::move(name),
                          kind == 1
                              ? rdf::PropertyValue::ResourceRef(std::move(text))
                              : rdf::PropertyValue::Literal(std::move(text)));
  }
  return Status::OK();
}

void EncodeVersion(std::string* out, const pubsub::EntryVersion& version) {
  PutU64(out, version.origin);
  PutU64(out, version.seq);
}

Status DecodeVersion(Reader* r, pubsub::EntryVersion* version) {
  MDV_RETURN_IF_ERROR(r->ReadU64(&version->origin));
  MDV_RETURN_IF_ERROR(r->ReadU64(&version->seq));
  return Status::OK();
}

void EncodeManifest(std::string* out, const pubsub::SnapshotManifest& m) {
  PutU64(out, m.total_chunks);
  PutU32(out, static_cast<uint32_t>(m.cursor.size()));
  for (const pubsub::EntryVersion& v : m.cursor) EncodeVersion(out, v);
  PutU32(out, static_cast<uint32_t>(m.entries.size()));
  for (const pubsub::SnapshotManifestEntry& entry : m.entries) {
    PutI64(out, entry.subscription);
    PutU32(out, static_cast<uint32_t>(entry.uris.size()));
    for (const std::string& uri : entry.uris) PutString(out, uri);
  }
}

Status DecodeManifest(Reader* r, pubsub::SnapshotManifest* m) {
  MDV_RETURN_IF_ERROR(r->ReadU64(&m->total_chunks));
  uint32_t cursors = 0;
  MDV_RETURN_IF_ERROR(r->ReadU32(&cursors));
  MDV_RETURN_IF_ERROR(r->CheckCount(cursors, 16, "manifest cursor"));
  m->cursor.resize(cursors);
  for (uint32_t i = 0; i < cursors; ++i) {
    MDV_RETURN_IF_ERROR(DecodeVersion(r, &m->cursor[i]));
  }
  uint32_t entries = 0;
  MDV_RETURN_IF_ERROR(r->ReadU32(&entries));
  // An entry is at least subscription + uri-count = 12 bytes.
  MDV_RETURN_IF_ERROR(r->CheckCount(entries, 12, "manifest entry"));
  m->entries.resize(entries);
  for (uint32_t i = 0; i < entries; ++i) {
    pubsub::SnapshotManifestEntry& entry = m->entries[i];
    MDV_RETURN_IF_ERROR(r->ReadI64(&entry.subscription));
    uint32_t uris = 0;
    MDV_RETURN_IF_ERROR(r->ReadU32(&uris));
    MDV_RETURN_IF_ERROR(r->CheckCount(uris, 4, "manifest uri"));
    entry.uris.resize(uris);
    for (uint32_t j = 0; j < uris; ++j) {
      MDV_RETURN_IF_ERROR(r->ReadString(&entry.uris[j]));
    }
  }
  return Status::OK();
}

std::string EncodeNotifyPayload(const NotifyFrame& frame) {
  const pubsub::Notification& note = frame.notification;
  std::string out;
  PutU64(&out, frame.sender);
  PutU64(&out, frame.sequence);
  PutU8(&out, static_cast<uint8_t>(note.kind));
  PutI64(&out, note.lmr);
  PutI64(&out, note.subscription);
  PutU64(&out, note.trace.trace_id);
  PutU64(&out, note.trace.span_id);
  PutU64(&out, note.snapshot_request);
  PutU64(&out, note.chunk_index);
  PutU32(&out, static_cast<uint32_t>(note.resources.size()));
  for (const pubsub::TransmittedResource& shipped : note.resources) {
    PutString(&out, shipped.uri_reference);
    PutU8(&out, shipped.via_strong_reference ? 1 : 0);
    EncodeVersion(&out, shipped.version);
    EncodeResource(&out, shipped.resource);
  }
  if (note.kind == pubsub::NotificationKind::kSnapshotDone) {
    EncodeManifest(&out, note.manifest);
  }
  return out;
}

Status DecodeNotifyPayload(std::string_view payload, NotifyFrame* frame) {
  Reader r(payload);
  MDV_RETURN_IF_ERROR(r.ReadU64(&frame->sender));
  MDV_RETURN_IF_ERROR(r.ReadU64(&frame->sequence));
  pubsub::Notification& note = frame->notification;
  uint8_t kind = 0;
  MDV_RETURN_IF_ERROR(r.ReadU8(&kind));
  if (kind > static_cast<uint8_t>(pubsub::NotificationKind::kSnapshotDone)) {
    return Status::InvalidArgument("wire: unknown notification kind " +
                                   std::to_string(kind));
  }
  note.kind = static_cast<pubsub::NotificationKind>(kind);
  MDV_RETURN_IF_ERROR(r.ReadI64(&note.lmr));
  MDV_RETURN_IF_ERROR(r.ReadI64(&note.subscription));
  MDV_RETURN_IF_ERROR(r.ReadU64(&note.trace.trace_id));
  MDV_RETURN_IF_ERROR(r.ReadU64(&note.trace.span_id));
  MDV_RETURN_IF_ERROR(r.ReadU64(&note.snapshot_request));
  MDV_RETURN_IF_ERROR(r.ReadU64(&note.chunk_index));
  uint32_t resources = 0;
  MDV_RETURN_IF_ERROR(r.ReadU32(&resources));
  // A resource is at least uri-len + flag + version + id-len +
  // class-len + property-count = 33 bytes.
  MDV_RETURN_IF_ERROR(r.CheckCount(resources, 33, "resource"));
  note.resources.reserve(resources);
  for (uint32_t i = 0; i < resources; ++i) {
    pubsub::TransmittedResource shipped;
    MDV_RETURN_IF_ERROR(r.ReadString(&shipped.uri_reference));
    uint8_t strong = 0;
    MDV_RETURN_IF_ERROR(r.ReadU8(&strong));
    if (strong > 1) {
      return Status::InvalidArgument("wire: bad via_strong_reference flag");
    }
    shipped.via_strong_reference = strong == 1;
    MDV_RETURN_IF_ERROR(DecodeVersion(&r, &shipped.version));
    MDV_RETURN_IF_ERROR(DecodeResource(&r, &shipped.resource));
    note.resources.push_back(std::move(shipped));
  }
  if (note.kind == pubsub::NotificationKind::kSnapshotDone) {
    MDV_RETURN_IF_ERROR(DecodeManifest(&r, &note.manifest));
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("wire: trailing bytes in notify payload");
  }
  return Status::OK();
}

std::string EncodeAckPayload(const AckFrame& frame) {
  std::string out;
  PutU64(&out, frame.sender);
  PutU64(&out, frame.sequence);
  PutI64(&out, frame.lmr);
  return out;
}

Status DecodeAckPayload(std::string_view payload, AckFrame* frame) {
  Reader r(payload);
  MDV_RETURN_IF_ERROR(r.ReadU64(&frame->sender));
  MDV_RETURN_IF_ERROR(r.ReadU64(&frame->sequence));
  MDV_RETURN_IF_ERROR(r.ReadI64(&frame->lmr));
  if (!r.exhausted()) {
    return Status::InvalidArgument("wire: trailing bytes in ack payload");
  }
  return Status::OK();
}

std::string EncodeSnapshotRequestPayload(const SnapshotRequestFrame& frame) {
  std::string out;
  PutU64(&out, frame.provider);
  PutI64(&out, frame.lmr);
  PutU64(&out, frame.request_id);
  PutU8(&out, frame.delta ? 1 : 0);
  PutU32(&out, static_cast<uint32_t>(frame.vector.size()));
  for (const pubsub::EntryVersion& v : frame.vector) EncodeVersion(&out, v);
  PutU32(&out, static_cast<uint32_t>(frame.cursor.size()));
  for (const SnapshotRequestFrame::CursorEntry& entry : frame.cursor) {
    PutString(&out, entry.uri_reference);
    EncodeVersion(&out, entry.version);
  }
  return out;
}

Status DecodeSnapshotRequestPayload(std::string_view payload,
                                    SnapshotRequestFrame* frame) {
  Reader r(payload);
  MDV_RETURN_IF_ERROR(r.ReadU64(&frame->provider));
  MDV_RETURN_IF_ERROR(r.ReadI64(&frame->lmr));
  MDV_RETURN_IF_ERROR(r.ReadU64(&frame->request_id));
  uint8_t delta = 0;
  MDV_RETURN_IF_ERROR(r.ReadU8(&delta));
  if (delta > 1) {
    return Status::InvalidArgument("wire: bad snapshot delta flag");
  }
  frame->delta = delta == 1;
  uint32_t vectors = 0;
  MDV_RETURN_IF_ERROR(r.ReadU32(&vectors));
  MDV_RETURN_IF_ERROR(r.CheckCount(vectors, 16, "version vector"));
  frame->vector.resize(vectors);
  for (uint32_t i = 0; i < vectors; ++i) {
    MDV_RETURN_IF_ERROR(DecodeVersion(&r, &frame->vector[i]));
  }
  uint32_t cursors = 0;
  MDV_RETURN_IF_ERROR(r.ReadU32(&cursors));
  // A cursor entry is at least uri-len + version = 20 bytes.
  MDV_RETURN_IF_ERROR(r.CheckCount(cursors, 20, "catchup cursor"));
  frame->cursor.resize(cursors);
  for (uint32_t i = 0; i < cursors; ++i) {
    MDV_RETURN_IF_ERROR(r.ReadString(&frame->cursor[i].uri_reference));
    MDV_RETURN_IF_ERROR(DecodeVersion(&r, &frame->cursor[i].version));
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument(
        "wire: trailing bytes in snapshot request payload");
  }
  return Status::OK();
}

std::string Frame(FrameType type, std::string payload) {
  std::string out;
  out.reserve(kWireHeaderBytes + payload.size());
  PutU32(&out, kWireMagic);
  PutU8(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU16(&out, 0);  // Reserved.
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU64(&out, Fnv1a(payload));
  out.append(payload);
  return out;
}

/// Parses and validates the fixed header. On success `*payload_len` and
/// `*checksum` are filled and `*type` holds the raw (unvalidated
/// against the enum) type byte.
Status DecodeHeader(std::string_view buffer, uint8_t* type,
                    uint32_t* payload_len, uint64_t* checksum) {
  if (buffer.size() < kWireHeaderBytes) {
    return Status::InvalidArgument("wire: frame shorter than header (" +
                                   std::to_string(buffer.size()) + " bytes)");
  }
  Reader r(buffer.substr(0, kWireHeaderBytes));
  uint32_t magic = 0;
  uint8_t version = 0;
  uint16_t reserved_lo = 0;
  MDV_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kWireMagic) {
    return Status::InvalidArgument("wire: bad magic");
  }
  MDV_RETURN_IF_ERROR(r.ReadU8(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported version " +
                                   std::to_string(version));
  }
  MDV_RETURN_IF_ERROR(r.ReadU8(type));
  uint8_t reserved[2] = {0, 0};
  MDV_RETURN_IF_ERROR(r.ReadU8(&reserved[0]));
  MDV_RETURN_IF_ERROR(r.ReadU8(&reserved[1]));
  reserved_lo = static_cast<uint16_t>(reserved[0] | (reserved[1] << 8));
  if (reserved_lo != 0) {
    return Status::InvalidArgument("wire: reserved header bits set");
  }
  MDV_RETURN_IF_ERROR(r.ReadU32(payload_len));
  if (*payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument("wire: payload length " +
                                   std::to_string(*payload_len) +
                                   " exceeds limit");
  }
  MDV_RETURN_IF_ERROR(r.ReadU64(checksum));
  return Status::OK();
}

}  // namespace

std::string EncodeNotifyFrame(const NotifyFrame& frame) {
  return Frame(FrameType::kNotify, EncodeNotifyPayload(frame));
}

std::string EncodeAckFrame(const AckFrame& frame) {
  return Frame(FrameType::kAck, EncodeAckPayload(frame));
}

std::string EncodeSnapshotRequestFrame(const SnapshotRequestFrame& frame) {
  return Frame(FrameType::kSnapshotRequest,
               EncodeSnapshotRequestPayload(frame));
}

Result<DecodedFrame> DecodeFrame(std::string_view buffer) {
  uint8_t type = 0;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
  MDV_RETURN_IF_ERROR(DecodeHeader(buffer, &type, &payload_len, &checksum));
  if (buffer.size() != kWireHeaderBytes + payload_len) {
    return Status::InvalidArgument(
        "wire: frame length mismatch (header says " +
        std::to_string(payload_len) + " payload bytes, buffer has " +
        std::to_string(buffer.size() - kWireHeaderBytes) + ")");
  }
  std::string_view payload = buffer.substr(kWireHeaderBytes);
  if (Fnv1a(payload) != checksum) {
    return Status::InvalidArgument("wire: checksum mismatch");
  }
  DecodedFrame out;
  switch (type) {
    case static_cast<uint8_t>(FrameType::kNotify):
      out.type = FrameType::kNotify;
      MDV_RETURN_IF_ERROR(DecodeNotifyPayload(payload, &out.notify));
      return out;
    case static_cast<uint8_t>(FrameType::kAck):
      out.type = FrameType::kAck;
      MDV_RETURN_IF_ERROR(DecodeAckPayload(payload, &out.ack));
      return out;
    case static_cast<uint8_t>(FrameType::kSnapshotRequest):
      out.type = FrameType::kSnapshotRequest;
      MDV_RETURN_IF_ERROR(
          DecodeSnapshotRequestPayload(payload, &out.snapshot_request));
      return out;
    default:
      return Status::InvalidArgument("wire: unknown frame type " +
                                     std::to_string(type));
  }
}

void FrameBuffer::Append(std::string_view bytes) { buffer_.append(bytes); }

Result<std::optional<std::string>> FrameBuffer::Next() {
  if (buffer_.size() < kWireHeaderBytes) return std::optional<std::string>();
  uint8_t type = 0;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
  // Header validation up front: a corrupt length field would otherwise
  // make the stream wait forever for bytes that never come.
  MDV_RETURN_IF_ERROR(
      DecodeHeader(std::string_view(buffer_).substr(0, kWireHeaderBytes),
                   &type, &payload_len, &checksum));
  const size_t total = kWireHeaderBytes + payload_len;
  if (buffer_.size() < total) return std::optional<std::string>();
  std::string frame = buffer_.substr(0, total);
  buffer_.erase(0, total);
  return std::optional<std::string>(std::move(frame));
}

}  // namespace mdv::net
