#include "net/fault.h"

namespace mdv::net {

FaultDecision FaultInjector::Decide() {
  MutexLock lock(mutex_);
  const uint64_t index = next_index_++;
  ++stats_.decisions;
  FaultDecision decision;
  if (schedule_) {
    std::optional<FaultDecision> scheduled = schedule_(index);
    if (scheduled.has_value()) {
      decision = *scheduled;
      if (decision.drop) ++stats_.dropped;
      if (decision.copies > 1) ++stats_.duplicated;
      if (decision.extra_delay_us > 0) ++stats_.reordered;
      return decision;
    }
  }
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  if (options_.drop_probability > 0.0 &&
      uniform(rng_) < options_.drop_probability) {
    decision.drop = true;
    ++stats_.dropped;
    return decision;
  }
  if (options_.duplicate_probability > 0.0 &&
      uniform(rng_) < options_.duplicate_probability) {
    decision.copies = 2;
    ++stats_.duplicated;
  }
  if (options_.reorder_probability > 0.0 &&
      uniform(rng_) < options_.reorder_probability) {
    decision.extra_delay_us = options_.reorder_delay_us;
    ++stats_.reordered;
  }
  return decision;
}

}  // namespace mdv::net
