#ifndef MDV_NET_FAULT_H_
#define MDV_NET_FAULT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mdv::net {

/// Probabilistic fault model of the simulated internet. All
/// probabilities are per Send() call and independent; the generator is
/// seeded, so a fixed seed yields a reproducible fault sequence.
struct FaultOptions {
  double drop_probability = 0.0;       ///< Frame vanishes entirely.
  double duplicate_probability = 0.0;  ///< Frame is enqueued twice.
  double reorder_probability = 0.0;    ///< Frame is delayed past successors.
  /// Extra delay applied to a reordered frame, so frames sent after it
  /// overtake it in the (delivery-time-ordered) queue.
  int64_t reorder_delay_us = 2000;
  uint64_t seed = 0x5DEECE66Dull;
};

/// What the injector decided for one frame.
struct FaultDecision {
  bool drop = false;
  int copies = 1;            ///< Total enqueued copies (2 = duplicated).
  int64_t extra_delay_us = 0;  ///< On top of the transport's latency/jitter.
};

/// Counters of what the injector actually did.
struct FaultStats {
  int64_t decisions = 0;
  int64_t dropped = 0;
  int64_t duplicated = 0;
  int64_t reordered = 0;
};

/// Decides the fate of each frame entering the transport. Thread-safe.
/// Beyond the probabilistic model, a deterministic schedule can pin the
/// decision for specific frame indexes (0-based across all Sends), which
/// regression tests use to hit exact loss patterns.
class FaultInjector {
 public:
  using Schedule = std::function<std::optional<FaultDecision>(uint64_t index)>;

  explicit FaultInjector(FaultOptions options)
      : options_(options), rng_(options.seed) {}

  /// Overrides the probabilistic model: when the schedule returns a
  /// decision for a frame index, that decision is used verbatim.
  void set_schedule(Schedule schedule) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    schedule_ = std::move(schedule);
  }

  /// Decision for the next frame (frame indexes increase per call).
  FaultDecision Decide() EXCLUDES(mutex_);

  FaultStats stats() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  const FaultOptions options_;
  /// The transport calls Decide() before taking any of its own locks,
  /// but kNetFault still ranks inside them (acquirable while a
  /// transport lock is held) defensively. A schedule callback runs
  /// under this lock and must stay lock-free.
  mutable Mutex mutex_{LockRank::kNetFault, "net.fault"};
  std::mt19937_64 rng_ GUARDED_BY(mutex_);
  Schedule schedule_ GUARDED_BY(mutex_);
  uint64_t next_index_ GUARDED_BY(mutex_) = 0;
  FaultStats stats_ GUARDED_BY(mutex_);
};

}  // namespace mdv::net

#endif  // MDV_NET_FAULT_H_
