#ifndef MDV_OBS_FLIGHT_RECORDER_H_
#define MDV_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mdv::obs {

/// What happened. The recorder stores events as fixed-size slots, so
/// the taxonomy is a closed enum; `a`/`b`/`c` carry type-specific
/// integer arguments (documented per enumerator) and `detail` a short
/// free-form tag.
enum class FlightEventType : uint8_t {
  kPublish = 0,         ///< a=sender id, b=document count, c=trace id.
  kShardPassBegin = 1,  ///< a=shard, b=delta atoms.
  kShardPassEnd = 2,    ///< a=shard, b=matched rules, c=iterations.
  kEnqueue = 3,         ///< a=sender id, b=lmr id, c=sequence number.
  kDeliver = 4,         ///< a=sender id, b=lmr id, c=sequence number.
  kRetransmit = 5,      ///< a=sender id, b=lmr id, c=attempt number.
  kDeadLetter = 6,      ///< a=sender id, b=lmr id, c=attempts.
  kAuditPass = 7,       ///< detail=audit site ("filter.run", ...).
  kAuditFail = 8,       ///< detail=violation summary (truncated).
  kApply = 9,           ///< a=lmr id, b=resource count, c=trace id.
  kDump = 10,           ///< detail=dump reason.
  kWalAppend = 11,      ///< a=record type, b=payload bytes, c=segment.
  kWalCheckpoint = 12,  ///< a=new epoch, b=snapshot bytes, c=pruned segments.
  kWalRecover = 13,     ///< a=replayed records, b=truncated tail bytes.
  kReplJoin = 14,       ///< a=lmr id, b=chunks applied, c=entries staged.
  kReplCatchup = 15,    ///< a=lmr id, b=resources shipped, c=cursor-skipped.
};

const char* FlightEventTypeName(FlightEventType type);

/// One recorded event. `seq` is the global record order (1-based);
/// `ts_ns` the steady-clock timestamp (obs::NowNs() base).
struct FlightEvent {
  uint64_t seq = 0;
  int64_t ts_ns = 0;
  FlightEventType type = FlightEventType::kPublish;
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  char detail[48] = {};
};

/// Always-on ring of the last N structured pipeline events, cheap
/// enough to leave enabled in benches and production-shaped runs:
/// Record() is one atomic fetch_add to claim a slot plus plain stores
/// (a per-slot seqlock tag lets readers skip slots mid-write, so there
/// is no lock on the hot path). The ring exists for post-mortems — when
/// an invariant audit fails or a ReliableLink dead-letters, the owner
/// calls AutoDump() and the recent event history lands in a JSON file
/// without anyone having to reproduce the run.
///
/// Two writers racing for the same slot (lapped by a full ring of
/// events mid-write) can tear; the seqlock tag makes such slots read as
/// skipped or stale rather than interleaved garbage — acceptable for a
/// diagnostic ring.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(FlightEventType type, int64_t a = 0, int64_t b = 0,
              int64_t c = 0, std::string_view detail = {});

  /// Consistent slots, oldest first (by seq). Slots being written
  /// concurrently are skipped.
  std::vector<FlightEvent> Snapshot() const;

  /// {"events": [...], "recorded": N} — `recorded` is the lifetime
  /// event count, so `recorded - events.length` is the evicted count.
  std::string DumpJson() const;

  /// Writes DumpJson() to `<dir>/flight_<reason>.json` where dir is
  /// $MDV_FLIGHT_DIR or the working directory, keeps the dump in memory
  /// (last_dump_json()), and bumps `mdv.obs.flight.dumps_total`.
  /// Returns the file path ("" when the write failed; the in-memory
  /// dump still happens).
  std::string AutoDump(const std::string& reason) EXCLUDES(dump_mu_);

  /// Lifetime Record() calls.
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  int64_t dump_count() const {
    return dumps_.load(std::memory_order_relaxed);
  }
  std::string last_dump_reason() const EXCLUDES(dump_mu_);
  std::string last_dump_json() const EXCLUDES(dump_mu_);

  size_t capacity() const { return capacity_; }

  /// The process-wide recorder every MDV component records into.
  static FlightRecorder& Default();

  static constexpr size_t kDefaultCapacity = 8192;

 private:
  /// Payload fields are relaxed atomics so a reader racing a lapping
  /// writer is defined behaviour (and ThreadSanitizer-clean); the
  /// seqlock tag recheck discards any mixed read.
  struct Slot {
    /// 0 = never written; kWriting = write in progress; else the
    /// event's 1-based seq, release-stored after the payload.
    std::atomic<uint64_t> tag{0};
    std::atomic<uint64_t> seq{0};
    std::atomic<int64_t> ts_ns{0};
    std::atomic<uint8_t> type{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<int64_t> c{0};
    std::atomic<char> detail[sizeof(FlightEvent{}.detail)] = {};
  };
  static constexpr uint64_t kWriting = ~uint64_t{0};

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};

  std::atomic<int64_t> dumps_{0};
  /// Guards only the remembered last dump; AutoDump bumps the dump
  /// counter and writes the file after releasing it.
  mutable Mutex dump_mu_{LockRank::kObsFlight, "obs.flight.dump"};
  std::string last_dump_reason_ GUARDED_BY(dump_mu_);
  std::string last_dump_json_ GUARDED_BY(dump_mu_);
};

}  // namespace mdv::obs

#endif  // MDV_OBS_FLIGHT_RECORDER_H_
