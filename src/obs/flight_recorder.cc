#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/mutex.h"
#include "obs/metrics.h"

namespace mdv::obs {

namespace {

/// Wires the lock-rank checker's violation hook to the default flight
/// recorder at static-init time: an out-of-order acquisition lands in
/// the event ring (kDump, detail = "acquiring<holding") and triggers an
/// AutoDump, so the post-mortem file names both locks and carries the
/// pipeline history leading up to the near-deadlock. The checker
/// suspends rank validation on the violating thread while this hook
/// runs, so taking the recorder's and registry's (leaf) locks is safe.
struct LockRankHookRegistrar {
  LockRankHookRegistrar() {
    SetLockRankViolationHook([](const LockRankViolation& violation) {
      FlightRecorder& recorder = FlightRecorder::Default();
      const std::string pair = std::string(violation.acquiring_name) + "<" +
                               violation.holding_name;
      recorder.Record(FlightEventType::kDump,
                      static_cast<int64_t>(violation.acquiring_rank),
                      static_cast<int64_t>(violation.holding_rank), 0, pair);
      recorder.AutoDump("lock_rank_violation");
    });
  }
};
const LockRankHookRegistrar g_lock_rank_hook_registrar;

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Reasons become file names: keep [a-zA-Z0-9_-], map the rest to '_'.
std::string SanitizeReason(const std::string& reason) {
  std::string out;
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "dump";
  return out;
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kPublish: return "publish";
    case FlightEventType::kShardPassBegin: return "shard_pass_begin";
    case FlightEventType::kShardPassEnd: return "shard_pass_end";
    case FlightEventType::kEnqueue: return "enqueue";
    case FlightEventType::kDeliver: return "deliver";
    case FlightEventType::kRetransmit: return "retransmit";
    case FlightEventType::kDeadLetter: return "dead_letter";
    case FlightEventType::kAuditPass: return "audit_pass";
    case FlightEventType::kAuditFail: return "audit_fail";
    case FlightEventType::kApply: return "apply";
    case FlightEventType::kDump: return "dump";
    case FlightEventType::kWalAppend: return "wal_append";
    case FlightEventType::kWalCheckpoint: return "wal_checkpoint";
    case FlightEventType::kWalRecover: return "wal_recover";
    case FlightEventType::kReplJoin: return "repl_join";
    case FlightEventType::kReplCatchup: return "repl_catchup";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(capacity == 0 ? 1 : capacity)) {}

void FlightRecorder::Record(FlightEventType type, int64_t a, int64_t b,
                            int64_t c, std::string_view detail) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) % capacity_];
  slot.tag.store(kWriting, std::memory_order_release);
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.ts_ns.store(NowNs(), std::memory_order_relaxed);
  slot.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  const size_t n = std::min(detail.size(), sizeof(FlightEvent{}.detail) - 1);
  for (size_t i = 0; i < n; ++i) {
    slot.detail[i].store(detail[i], std::memory_order_relaxed);
  }
  slot.detail[n].store('\0', std::memory_order_relaxed);
  slot.tag.store(seq, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t before = slot.tag.load(std::memory_order_acquire);
    if (before == 0 || before == kWriting) continue;
    FlightEvent copy;
    copy.seq = slot.seq.load(std::memory_order_relaxed);
    copy.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    copy.type =
        static_cast<FlightEventType>(slot.type.load(std::memory_order_relaxed));
    copy.a = slot.a.load(std::memory_order_relaxed);
    copy.b = slot.b.load(std::memory_order_relaxed);
    copy.c = slot.c.load(std::memory_order_relaxed);
    for (size_t j = 0; j < sizeof(copy.detail); ++j) {
      copy.detail[j] = slot.detail[j].load(std::memory_order_relaxed);
    }
    copy.detail[sizeof(copy.detail) - 1] = '\0';
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t after = slot.tag.load(std::memory_order_relaxed);
    if (after != before || copy.seq != before) continue;  // Torn.
    out.push_back(copy);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

std::string FlightRecorder::DumpJson() const {
  std::ostringstream out;
  out << "{\"recorded\": " << recorded() << ", \"events\": [";
  bool first = true;
  for (const FlightEvent& e : Snapshot()) {
    out << (first ? "\n" : ",\n") << "  {\"seq\": " << e.seq
        << ", \"ts_us\": " << e.ts_ns / 1000 << ", \"type\": \""
        << FlightEventTypeName(e.type) << "\", \"a\": " << e.a
        << ", \"b\": " << e.b << ", \"c\": " << e.c << ", \"detail\": \""
        << JsonEscape(e.detail) << "\"}";
    first = false;
  }
  out << (first ? "]}" : "\n]}");
  return out.str();
}

std::string FlightRecorder::AutoDump(const std::string& reason) {
  Record(FlightEventType::kDump, 0, 0, 0, reason);
  std::string json = DumpJson();
  {
    MutexLock lock(dump_mu_);
    last_dump_reason_ = reason;
    last_dump_json_ = json;
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  DefaultMetrics().GetCounter("mdv.obs.flight.dumps_total").Increment();

  // Read-only env access; nothing in the process calls setenv.
  const char* dir = std::getenv("MDV_FLIGHT_DIR");  // NOLINT(concurrency-mt-unsafe)
  std::string path = std::string(dir != nullptr ? dir : ".") + "/flight_" +
                     SanitizeReason(reason) + ".json";
  std::ofstream file(path, std::ios::trunc);
  if (!file) return "";
  file << json << "\n";
  return file ? path : "";
}

std::string FlightRecorder::last_dump_reason() const {
  MutexLock lock(dump_mu_);
  return last_dump_reason_;
}

std::string FlightRecorder::last_dump_json() const {
  MutexLock lock(dump_mu_);
  return last_dump_json_;
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder& recorder = *new FlightRecorder();
  return recorder;
}

}  // namespace mdv::obs
