#ifndef MDV_OBS_TRACE_AGGREGATE_H_
#define MDV_OBS_TRACE_AGGREGATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdv::obs {

/// One stage of the critical-path breakdown, ordered by attributed time.
struct CriticalPathEntry {
  std::string stage;
  int64_t total_us = 0;
  double fraction = 0.0;  ///< Of the summed end-to-end time.
};

/// Assembles retained SpanRecords into per-trace trees and derives SLO
/// latencies from them: one *sample* per `lmr.apply_notification` span,
/// measuring end-to-end publish→apply time from the trace root and
/// attributing it to pipeline stages by tiling the timeline between
/// anchor spans of the same trace (matched to the apply by their `lmr`
/// attribute):
///
///   ingest     trace root start → first filter span start
///   filter     filter span window (filter.run / evaluate_new_rules)
///   publish    filter end → net.enqueue end (async) or
///              network.deliver start (sync): fan-out + encode
///   transport  enqueue end → net.deliver start (async queueing + wire)
///   deliver    the net.deliver / network.deliver span itself
///   holdback   deliver end → apply start (reliable-link reordering)
///   apply      the lmr.apply_notification span
///
/// Anchors are clamped monotone, so the stages tile the end-to-end
/// interval exactly and CriticalPath() fractions are trustworthy.
/// Traces with a missing root or dangling parent links (ring-buffer
/// eviction) are flagged incomplete and excluded from every latency
/// figure rather than reported skewed.
///
/// Samples land in histograms of the given registry —
/// `mdv.slo.end_to_end_us` and `mdv.slo.stage.<stage>_us`, log-scale
/// 1us..10s buckets — so the results export through the normal metrics
/// surface (JSON / Prometheus) as well as through SummaryJson().
///
/// Feed each span batch exactly once (spans are not deduplicated across
/// Ingest calls). Not thread-safe; aggregate after the run quiesces.
class TraceAggregator {
 public:
  explicit TraceAggregator(MetricsRegistry* registry = &DefaultMetrics());

  /// Groups `spans` by trace id and records every derivable sample.
  /// `dropped_spans` is the producing tracer's eviction count; it only
  /// annotates the result (incompleteness is detected structurally).
  void Ingest(const std::vector<SpanRecord>& spans, int64_t dropped_spans = 0);

  void IngestTracer(const Tracer& tracer) {
    Ingest(tracer.Snapshot(), tracer.dropped());
  }

  int64_t traces() const { return traces_; }
  int64_t samples() const { return samples_; }
  int64_t incomplete_traces() const { return incomplete_traces_; }
  int64_t dropped_spans() const { return dropped_spans_; }

  HistogramSnapshot EndToEnd() const;

  /// Stages that received at least one sample, attribution order.
  std::vector<std::string> StageNames() const;
  HistogramSnapshot StageSnapshot(const std::string& stage) const;

  /// Stages sorted by total attributed time, largest first.
  std::vector<CriticalPathEntry> CriticalPath() const;

  /// Fraction of the summed end-to-end time attributed to stages
  /// (1.0 when every sample tiles cleanly; <1 only on clock anomalies).
  double StageCoverage() const;

  /// The whole aggregate as one JSON object: sample counts, end-to-end
  /// and per-stage percentiles, critical path, coverage.
  std::string SummaryJson() const;

 private:
  struct StageAgg {
    int64_t count = 0;
    int64_t total_us = 0;
    Histogram* histogram = nullptr;  // Owned by registry_.
  };

  /// Derives and records the samples of one complete trace.
  void AggregateTrace(const std::vector<const SpanRecord*>& spans);

  void RecordStage(const std::string& stage, int64_t value_us);

  MetricsRegistry* registry_;
  Histogram* end_to_end_;  // mdv.slo.end_to_end_us, owned by registry_.
  std::map<std::string, StageAgg> stages_;
  int64_t traces_ = 0;
  int64_t samples_ = 0;
  int64_t incomplete_traces_ = 0;
  int64_t dropped_spans_ = 0;
  int64_t end_to_end_total_us_ = 0;
};

}  // namespace mdv::obs

#endif  // MDV_OBS_TRACE_AGGREGATE_H_
