#include "obs/trace.h"

#include <sstream>

namespace mdv::obs {

namespace {

/// Open spans of this thread, innermost last. Shared by all tracers on
/// the thread; interleaving spans of different Tracer instances on one
/// thread is not supported (the process uses DefaultTracer()).
std::vector<SpanContext>& ThreadSpanStack() {
  thread_local std::vector<SpanContext> stack;
  return stack;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

void Tracer::Retain(SpanRecord record) {
  bool evicted = false;
  {
    MutexLock lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
    } else {
      ring_[next_slot_] = std::move(record);
      next_slot_ = (next_slot_ + 1) % capacity_;
      evicted = true;
    }
  }
  if (evicted) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    static Counter& dropped_total =
        DefaultMetrics().GetCounter("mdv.obs.trace.dropped_spans_total");
    dropped_total.Increment();
  }
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest first: once the ring wrapped, next_slot_ is the oldest entry.
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_slot_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<long>(next_slot_));
  }
  return out;
}

std::vector<SpanRecord> Tracer::TraceSpans(uint64_t trace_id) const {
  std::vector<SpanRecord> all = Snapshot();
  std::vector<SpanRecord> out;
  for (SpanRecord& span : all) {
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  }
  return out;
}

std::string Tracer::ExportJson() const {
  std::ostringstream out;
  out << "{\"dropped\": " << dropped() << ", \"spans\": [";
  bool first = true;
  for (const SpanRecord& span : Snapshot()) {
    out << (first ? "\n" : ",\n") << "  {\"trace_id\": " << span.trace_id
        << ", \"span_id\": " << span.span_id
        << ", \"parent_id\": " << span.parent_id << ", \"name\": \""
        << JsonEscape(span.name) << "\", \"start_us\": " << span.start_ns / 1000
        << ", \"duration_us\": " << span.duration_us()
        << ", \"attributes\": {";
    bool first_attr = true;
    for (const auto& [key, value] : span.attributes) {
      out << (first_attr ? "" : ", ") << "\"" << JsonEscape(key) << "\": \""
          << JsonEscape(value) << "\"";
      first_attr = false;
    }
    out << "}}";
    first = false;
  }
  out << (first ? "]}" : "\n]}");
  return out.str();
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::SetCapacity(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
  next_slot_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

Tracer& DefaultTracer() {
  static Tracer& tracer = *new Tracer();
  return tracer;
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name, SpanContext parent,
                       bool use_parent, Histogram* latency)
    : latency_(latency) {
  if (tracer == nullptr || !tracer->enabled()) {
    // Not recording; still honour the latency histogram if given.
    if (latency_ != nullptr) record_.start_ns = NowNs();
    return;
  }
  tracer_ = tracer;
  record_.name = std::move(name);
  record_.span_id = tracer_->NextId();

  SpanContext effective_parent;
  if (use_parent && parent.valid()) {
    effective_parent = parent;
  } else if (!ThreadSpanStack().empty()) {
    effective_parent = ThreadSpanStack().back();
  }
  if (effective_parent.valid()) {
    record_.trace_id = effective_parent.trace_id;
    record_.parent_id = effective_parent.span_id;
  } else {
    record_.trace_id = record_.span_id;  // New trace rooted here.
  }
  ThreadSpanStack().push_back(context());
  record_.start_ns = NowNs();
}

ScopedSpan::~ScopedSpan() {
  record_.end_ns = NowNs();
  if (latency_ != nullptr && record_.start_ns != 0) {
    latency_->Record(record_.duration_us());
  }
  if (tracer_ == nullptr) return;
  // Pop this span. Destruction order of nested ScopedSpans guarantees it
  // is the innermost open span of this thread.
  std::vector<SpanContext>& stack = ThreadSpanStack();
  if (!stack.empty() && stack.back().span_id == record_.span_id) {
    stack.pop_back();
  }
  tracer_->Retain(std::move(record_));
}

void ScopedSpan::AddAttribute(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  record_.attributes.emplace_back(std::move(key), std::move(value));
}

void ScopedSpan::AddAttribute(std::string key, int64_t value) {
  AddAttribute(std::move(key), std::to_string(value));
}

}  // namespace mdv::obs
