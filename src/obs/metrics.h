#ifndef MDV_OBS_METRICS_H_
#define MDV_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mdv::obs {

/// A monotonically increasing named value. Increments are relaxed
/// atomics, so counters are usable from hot paths and (future) threads
/// without a lock.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A named value that can go up and down (cache sizes, queue depths).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of one histogram, with percentile extraction.
/// `bounds[i]` is the inclusive upper bound of bucket i; the last bucket
/// (bucket_counts.size() == bounds.size() + 1) is the overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> bucket_counts;
  int64_t count = 0;
  int64_t sum = 0;

  /// Estimated value at percentile `p` in [0, 100], linearly
  /// interpolated inside the bucket holding the target rank. Values in
  /// the overflow bucket report the largest finite bound.
  double Percentile(double p) const;
};

/// A fixed-bucket latency/size histogram. Recording is a binary search
/// over the (immutable) bounds plus two relaxed atomic adds — no lock,
/// safe for concurrent recorders.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Log-scale bucket bounds: `lower`, then successive multiplications
  /// by `growth` (> 1) up to and including the first bound >= `upper`.
  /// ExponentialBuckets(1, 1e7) spans 1us .. 10s in factor-2 steps —
  /// microsecond-scale stage latencies and multi-second scenario tails
  /// resolve in the same histogram.
  static std::vector<double> ExponentialBuckets(double lower, double upper,
                                                double growth = 2.0);

  void Record(int64_t value);
  HistogramSnapshot GetSnapshot() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1.
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// The default bucket layout for latency histograms, in microseconds:
/// ExponentialBuckets(1, 1e7) — 1us .. 10s in factor-2 steps, covering
/// sub-millisecond filter stages and multi-second bench runs alike.
const std::vector<double>& DefaultLatencyBoundsUs();

/// Full registry state at one point in time.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// The snapshot as a JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p95, p99, buckets}}}.
  std::string ToJson() const;

  /// Prometheus text exposition format (counters/gauges as plain
  /// samples, histograms as cumulative `_bucket{le=...}` series).
  std::string ToPrometheusText() const;
};

/// Process-wide registry of named metrics. Registration (name lookup)
/// takes a mutex; the returned handles are stable for the registry's
/// lifetime, so call sites resolve them once and then operate lock-free.
/// Reset() zeroes values in place — cached handles stay valid.
///
/// Naming convention (see DESIGN.md, Observability): dot-separated
/// `mdv.<layer>.<metric>`, `_total` suffix for counters, `_us` suffix
/// for microsecond latency histograms.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) EXCLUDES(mu_);
  /// `bounds` is honoured only by the call that creates the histogram;
  /// later lookups of the same name return the existing instance.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {}) EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const EXCLUDES(mu_);
  void Reset() EXCLUDES(mu_);

 private:
  /// Guards only the name → handle maps; the handles themselves are
  /// lock-free atomics. An obs leaf rank: components record metrics
  /// while holding their own locks, never the other way around.
  mutable Mutex mu_{LockRank::kObsRegistry, "obs.metrics"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

/// The process-wide default registry every MDV component records into.
MetricsRegistry& DefaultMetrics();

/// Convenience: DefaultMetrics().Snapshot() serialized as JSON.
std::string SnapshotJson();

/// Convenience: DefaultMetrics().Snapshot() in Prometheus text format.
std::string PrometheusText();

/// Steady-clock nanoseconds (the time base of all obs timings).
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Records the elapsed microseconds of its scope into a histogram on
/// destruction. A null histogram disables the measurement.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram)
      : histogram_(histogram), start_ns_(histogram ? NowNs() : 0) {}
  ~ScopedLatency() {
    if (histogram_ != nullptr) {
      histogram_->Record((NowNs() - start_ns_) / 1000);
    }
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  int64_t start_ns_;
};

}  // namespace mdv::obs

#endif  // MDV_OBS_METRICS_H_
