#ifndef MDV_OBS_TRACE_H_
#define MDV_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace mdv::obs {

/// Identifies a span within a trace. Travels on bus messages (e.g.
/// pubsub::Notification) so one published document's journey through
/// MDP → network → LMR is a single connected trace even when delivery
/// crosses a component boundary.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// One finished span as retained by the tracer's ring buffer.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 for trace roots.
  std::string name;
  int64_t start_ns = 0;  ///< Steady-clock, same base as obs::NowNs().
  int64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> attributes;

  int64_t duration_us() const { return (end_ns - start_ns) / 1000; }
};

/// Retains the most recent finished spans in a fixed-capacity ring
/// buffer and assigns trace/span ids. Span begin/end is driven by
/// ScopedSpan; parent links come from a thread-local stack of open
/// spans, so synchronous call chains (MDP publish → filter → publisher →
/// network → LMR) nest without explicit context plumbing. For hops that
/// are not synchronous calls, carry a SpanContext on the message and
/// pass it to ScopedSpan explicitly.
class Tracer {
 public:
  explicit Tracer(size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// When disabled, ScopedSpan becomes a no-op (no clock reads, no
  /// retention). Enabled by default.
  void set_enabled(bool enabled) { enabled_.store(enabled); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// All retained spans, oldest first (completion order).
  std::vector<SpanRecord> Snapshot() const EXCLUDES(mu_);

  /// The retained spans of one trace, completion order.
  std::vector<SpanRecord> TraceSpans(uint64_t trace_id) const EXCLUDES(mu_);

  /// Retained spans as a JSON object {"dropped": N, "spans": [...]},
  /// each span {trace_id, span_id, parent_id, name, start_us,
  /// duration_us, attributes}. `dropped` counts spans evicted by ring
  /// overflow since construction (or the last Clear), so a consumer can
  /// tell a complete export from a truncated one.
  std::string ExportJson() const EXCLUDES(mu_);

  /// Drops all retained spans (ids keep increasing) and zeroes the
  /// dropped-span count.
  void Clear() EXCLUDES(mu_);

  /// Spans evicted by ring overflow (also mirrored into the
  /// `mdv.obs.trace.dropped_spans_total` counter of DefaultMetrics()).
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  size_t capacity() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return capacity_;
  }

  /// Resizes the ring. Retained spans and the dropped count are
  /// discarded — call before a run that needs deeper retention (e.g.
  /// scenario benches), not during one.
  void SetCapacity(size_t capacity) EXCLUDES(mu_);

  static constexpr size_t kDefaultCapacity = 4096;

  // ---- Used by ScopedSpan. ---------------------------------------------
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void Retain(SpanRecord record) EXCLUDES(mu_);

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> dropped_{0};
  /// Guards the retention ring only. Retain() bumps the dropped-spans
  /// counter after releasing it, so the tracer never holds its lock
  /// into the metrics registry.
  mutable Mutex mu_{LockRank::kObsTracer, "obs.tracer"};
  size_t capacity_ GUARDED_BY(mu_);
  std::vector<SpanRecord> ring_ GUARDED_BY(mu_);  // Ring buffer once full.
  size_t next_slot_ GUARDED_BY(mu_) = 0;  // Insert position once full.
};

/// The process-wide tracer every MDV component records into.
Tracer& DefaultTracer();

/// RAII span: opens on construction, becomes the current span of this
/// thread, and is retained by the tracer on destruction. The parent is
/// the thread's current span unless an explicit SpanContext (e.g. from a
/// received message) is given. An optional histogram receives the span's
/// duration in microseconds, so stage latency percentiles and trace
/// spans come from the same clock reads.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, Histogram* latency = nullptr)
      : ScopedSpan(&DefaultTracer(), std::move(name), SpanContext{}, false,
                   latency) {}

  /// Parents the span to `parent` (a context carried on a message).
  /// Falls back to the thread's current span when `parent` is invalid.
  ScopedSpan(std::string name, SpanContext parent,
             Histogram* latency = nullptr)
      : ScopedSpan(&DefaultTracer(), std::move(name), parent, true, latency) {}

  /// Explicit-tracer variant (unit tests with private tracers).
  ScopedSpan(Tracer* tracer, std::string name,
             SpanContext parent = SpanContext{}, bool use_parent = false,
             Histogram* latency = nullptr);

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddAttribute(std::string key, std::string value);
  void AddAttribute(std::string key, int64_t value);

  /// This span's context — attach it to outgoing messages.
  SpanContext context() const {
    return SpanContext{record_.trace_id, record_.span_id};
  }

  /// False when tracing is disabled (attributes are dropped).
  bool recording() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;  // Null when not recording.
  Histogram* latency_ = nullptr;
  SpanRecord record_;
};

}  // namespace mdv::obs

#endif  // MDV_OBS_TRACE_H_
