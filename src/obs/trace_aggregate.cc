#include "obs/trace_aggregate.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace mdv::obs {

namespace {

/// The canonical pipeline order; also the display order of StageNames().
const char* const kStageOrder[] = {"ingest",    "filter",  "publish",
                                   "transport", "deliver", "holdback",
                                   "apply"};

const std::string* Attr(const SpanRecord& span, const std::string& key) {
  for (const auto& [k, v] : span.attributes) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string LmrOf(const SpanRecord& span) {
  const std::string* v = Attr(span, "lmr");
  return v != nullptr ? *v : std::string();
}

bool IsFilterSpan(const SpanRecord& span) {
  return span.name == "filter.run" || span.name == "filter.evaluate_new_rules";
}

bool IsDeliverSpan(const SpanRecord& span) {
  return span.name == "net.deliver" || span.name == "network.deliver";
}

std::string FormatFraction(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

std::string FormatUs(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

TraceAggregator::TraceAggregator(MetricsRegistry* registry)
    : registry_(registry),
      end_to_end_(&registry->GetHistogram(
          "mdv.slo.end_to_end_us", Histogram::ExponentialBuckets(1, 1e7))) {}

void TraceAggregator::Ingest(const std::vector<SpanRecord>& spans,
                             int64_t dropped_spans) {
  dropped_spans_ += dropped_spans;
  std::map<uint64_t, std::vector<const SpanRecord*>> traces;
  for (const SpanRecord& span : spans) {
    traces[span.trace_id].push_back(&span);
  }
  for (const auto& [trace_id, trace_spans] : traces) {
    ++traces_;
    // Structural completeness: exactly the root has parent 0, and every
    // parent link resolves within the trace. Ring eviction breaks one
    // of the two, and a broken trace would yield skewed latencies.
    std::unordered_set<uint64_t> ids;
    const SpanRecord* root = nullptr;
    for (const SpanRecord* span : trace_spans) ids.insert(span->span_id);
    bool complete = true;
    for (const SpanRecord* span : trace_spans) {
      if (span->parent_id == 0) {
        if (root != nullptr) complete = false;  // Two roots: id collision.
        root = span;
      } else if (ids.count(span->parent_id) == 0) {
        complete = false;
      }
    }
    if (root == nullptr || !complete) {
      ++incomplete_traces_;
      continue;
    }
    AggregateTrace(trace_spans);
  }
}

void TraceAggregator::AggregateTrace(
    const std::vector<const SpanRecord*>& spans) {
  const SpanRecord* root = nullptr;
  std::vector<const SpanRecord*> applies;
  std::vector<const SpanRecord*> filters;
  std::unordered_map<std::string, std::vector<const SpanRecord*>> enqueues;
  std::unordered_map<std::string, std::vector<const SpanRecord*>> delivers;
  for (const SpanRecord* span : spans) {
    if (span->parent_id == 0) root = span;
    if (span->name == "lmr.apply_notification") applies.push_back(span);
    if (IsFilterSpan(*span)) filters.push_back(span);
    if (span->name == "net.enqueue") enqueues[LmrOf(*span)].push_back(span);
    if (IsDeliverSpan(*span)) delivers[LmrOf(*span)].push_back(span);
  }
  const auto by_start = [](const SpanRecord* a, const SpanRecord* b) {
    return a->start_ns < b->start_ns;
  };
  std::sort(applies.begin(), applies.end(), by_start);
  std::sort(filters.begin(), filters.end(), by_start);
  for (auto& [lmr, list] : enqueues) std::sort(list.begin(), list.end(), by_start);
  for (auto& [lmr, list] : delivers) std::sort(list.begin(), list.end(), by_start);

  std::unordered_map<std::string, size_t> apply_index;  // Per-lmr ordinal.
  for (const SpanRecord* apply : applies) {
    const std::string lmr = LmrOf(*apply);
    const size_t k = apply_index[lmr]++;

    // The k-th apply of an LMR pairs with its k-th enqueue; the update
    // protocol can send several notifications per publish to one LMR.
    const SpanRecord* enqueue = nullptr;
    auto eq = enqueues.find(lmr);
    if (eq != enqueues.end() && !eq->second.empty()) {
      enqueue = eq->second[std::min(k, eq->second.size() - 1)];
    }

    // The deliver that handed this apply over: in sync mode the
    // network.deliver span *contains* the apply; in async mode the
    // frame's own net.deliver span ended before the apply started
    // (later than that only if the link held the frame back).
    const SpanRecord* deliver = nullptr;
    bool contains = false;
    auto dq = delivers.find(lmr);
    if (dq != delivers.end()) {
      for (const SpanRecord* d : dq->second) {
        if (d->start_ns <= apply->start_ns && d->end_ns >= apply->end_ns) {
          deliver = d;
          contains = true;
        }
      }
      if (deliver == nullptr) {
        for (const SpanRecord* d : dq->second) {
          if (d->end_ns <= apply->start_ns) deliver = d;  // Latest such.
        }
      }
      if (deliver == nullptr && !dq->second.empty()) deliver = dq->second[0];
    }

    // Anchor points tiling root.start .. apply.end. The filter window
    // only counts runs that ended before this apply's send anchor, so
    // a replicating peer's later filter run doesn't absorb the client
    // MDP's publish time.
    const int64_t send_ns = enqueue != nullptr  ? enqueue->start_ns
                            : deliver != nullptr ? deliver->start_ns
                                                 : apply->start_ns;
    int64_t t1 = root->start_ns;
    int64_t t2 = root->start_ns;
    bool have_filter = false;
    for (const SpanRecord* f : filters) {
      if (f->end_ns > send_ns) continue;
      if (!have_filter) {
        t1 = f->start_ns;
        t2 = f->end_ns;
        have_filter = true;
      } else {
        t1 = std::min(t1, f->start_ns);
        t2 = std::max(t2, f->end_ns);
      }
    }

    int64_t t3;  // End of the publish stage.
    int64_t t4;  // Transport done, deliver begins.
    int64_t t4e;  // Deliver span done, holdback begins.
    if (enqueue != nullptr) {
      t3 = enqueue->end_ns;
      t4 = deliver != nullptr ? deliver->start_ns : apply->start_ns;
      t4e = deliver != nullptr && !contains ? deliver->end_ns
                                            : apply->start_ns;
    } else if (deliver != nullptr && contains) {
      t3 = deliver->start_ns;  // Sync: handler runs inside the deliver.
      t4 = deliver->start_ns;
      t4e = apply->start_ns;
    } else if (deliver != nullptr) {
      t3 = deliver->start_ns;
      t4 = deliver->start_ns;
      t4e = deliver->end_ns;
    } else {
      t3 = t4 = t4e = apply->start_ns;
    }

    int64_t anchors[] = {root->start_ns, t1, t2,  t3,
                         t4,             t4e, apply->start_ns, apply->end_ns};
    constexpr size_t kAnchors = sizeof(anchors) / sizeof(anchors[0]);
    for (size_t i = 1; i < kAnchors; ++i) {
      anchors[i] = std::max(anchors[i], anchors[i - 1]);  // Monotone tiling.
    }

    const int64_t end_to_end_us = (anchors[kAnchors - 1] - anchors[0]) / 1000;
    end_to_end_->Record(end_to_end_us);
    end_to_end_total_us_ += end_to_end_us;
    ++samples_;
    for (size_t i = 1; i < kAnchors; ++i) {
      const int64_t value_us = (anchors[i] - anchors[i - 1]) / 1000;
      if (value_us > 0) RecordStage(kStageOrder[i - 1], value_us);
    }
  }
}

void TraceAggregator::RecordStage(const std::string& stage, int64_t value_us) {
  auto it = stages_.find(stage);
  if (it == stages_.end()) {
    StageAgg agg;
    agg.histogram = &registry_->GetHistogram(
        "mdv.slo.stage." + stage + "_us", Histogram::ExponentialBuckets(1, 1e7));
    it = stages_.emplace(stage, agg).first;
  }
  it->second.count += 1;
  it->second.total_us += value_us;
  it->second.histogram->Record(value_us);
}

HistogramSnapshot TraceAggregator::EndToEnd() const {
  return end_to_end_->GetSnapshot();
}

std::vector<std::string> TraceAggregator::StageNames() const {
  std::vector<std::string> out;
  for (const char* stage : kStageOrder) {
    auto it = stages_.find(stage);
    if (it != stages_.end() && it->second.count > 0) out.push_back(stage);
  }
  return out;
}

HistogramSnapshot TraceAggregator::StageSnapshot(
    const std::string& stage) const {
  auto it = stages_.find(stage);
  return it == stages_.end() ? HistogramSnapshot{}
                             : it->second.histogram->GetSnapshot();
}

std::vector<CriticalPathEntry> TraceAggregator::CriticalPath() const {
  std::vector<CriticalPathEntry> out;
  for (const auto& [stage, agg] : stages_) {
    if (agg.count == 0) continue;
    CriticalPathEntry entry;
    entry.stage = stage;
    entry.total_us = agg.total_us;
    entry.fraction = end_to_end_total_us_ > 0
                         ? static_cast<double>(agg.total_us) /
                               static_cast<double>(end_to_end_total_us_)
                         : 0.0;
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const CriticalPathEntry& a, const CriticalPathEntry& b) {
              return a.total_us > b.total_us;
            });
  return out;
}

double TraceAggregator::StageCoverage() const {
  if (end_to_end_total_us_ <= 0) return 0.0;
  int64_t attributed = 0;
  for (const auto& [stage, agg] : stages_) attributed += agg.total_us;
  return static_cast<double>(attributed) /
         static_cast<double>(end_to_end_total_us_);
}

std::string TraceAggregator::SummaryJson() const {
  std::ostringstream out;
  const HistogramSnapshot e2e = EndToEnd();
  out << "{\n  \"traces\": " << traces_
      << ",\n  \"end_to_end_samples\": " << samples_
      << ",\n  \"incomplete_traces\": " << incomplete_traces_
      << ",\n  \"dropped_spans\": " << dropped_spans_
      << ",\n  \"attributed_stages\": " << StageNames().size()
      << ",\n  \"stage_coverage\": " << FormatFraction(StageCoverage())
      << ",\n  \"end_to_end_us\": {\"count\": " << e2e.count
      << ", \"sum\": " << e2e.sum << ", \"p50\": " << FormatUs(e2e.Percentile(50))
      << ", \"p95\": " << FormatUs(e2e.Percentile(95))
      << ", \"p99\": " << FormatUs(e2e.Percentile(99))
      << "},\n  \"stages\": {";
  bool first = true;
  for (const std::string& stage : StageNames()) {
    const StageAgg& agg = stages_.at(stage);
    const HistogramSnapshot snap = agg.histogram->GetSnapshot();
    out << (first ? "\n" : ",\n") << "    \"" << stage
        << "\": {\"count\": " << agg.count << ", \"total_us\": " << agg.total_us
        << ", \"fraction\": "
        << FormatFraction(end_to_end_total_us_ > 0
                              ? static_cast<double>(agg.total_us) /
                                    static_cast<double>(end_to_end_total_us_)
                              : 0.0)
        << ", \"p50\": " << FormatUs(snap.Percentile(50))
        << ", \"p99\": " << FormatUs(snap.Percentile(99)) << "}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"critical_path\": [";
  first = true;
  for (const CriticalPathEntry& entry : CriticalPath()) {
    out << (first ? "\n" : ",\n") << "    {\"stage\": \"" << entry.stage
        << "\", \"total_us\": " << entry.total_us
        << ", \"fraction\": " << FormatFraction(entry.fraction) << "}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << "\n}";
  return out.str();
}

}  // namespace mdv::obs
