#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mdv::obs {

namespace {

/// Formats a double without trailing zeros ("2.5", "100", "1e+06"-free).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string s(buf);
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (last == dot) last = dot - 1;  // "100." -> "100"
    s.erase(last + 1);
  }
  return s;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// MDV metric names are dotted (`mdv.filter.runs_total`); Prometheus
/// names must match [a-zA-Z_:][a-zA-Z0-9_:]*. Dots and any other
/// invalid character map to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    out += (alpha || (digit && i > 0)) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

/// Label *values* escape backslash, double quote and newline
/// (Prometheus text exposition rules).
std::string PrometheusLabelValue(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    cumulative += bucket_counts[i];
    if (static_cast<double>(cumulative) >= target) {
      if (i >= bounds.size()) {
        // Overflow bucket: no finite upper bound to interpolate to.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double in_bucket = static_cast<double>(bucket_counts[i]);
      const double before = static_cast<double>(cumulative) - in_bucket;
      const double fraction =
          in_bucket <= 0.0 ? 1.0 : (target - before) / in_bucket;
      return lower + fraction * (upper - lower);
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBoundsUs();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Record(int64_t value) {
  // First bucket whose upper bound is >= value ("le" semantics, like
  // Prometheus); values above every bound land in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(),
                                   static_cast<double>(value));
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::GetSnapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.bucket_counts.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.bucket_counts.push_back(buckets_[i].load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::ExponentialBuckets(double lower, double upper,
                                                  double growth) {
  std::vector<double> bounds;
  if (lower <= 0 || growth <= 1.0) return bounds;
  double bound = lower;
  while (bound < upper) {
    bounds.push_back(bound);
    bound *= growth;
  }
  bounds.push_back(bound);  // First bound >= upper caps the range.
  return bounds;
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  // 1us .. 10s: the last bound is the first power of two >= 1e7us.
  static const std::vector<double>& bounds =
      *new std::vector<double>(Histogram::ExponentialBuckets(1, 1e7, 2.0));
  return bounds;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {"
        << "\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"p50\": " << FormatDouble(h.Percentile(50))
        << ", \"p95\": " << FormatDouble(h.Percentile(95))
        << ", \"p99\": " << FormatDouble(h.Percentile(99)) << ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (h.bucket_counts[i] == 0) continue;  // Sparse: zeros add no info.
      out << (first_bucket ? "" : ", ") << "{\"le\": "
          << (i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "\"inf\"")
          << ", \"count\": " << h.bucket_counts[i] << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}";
  return out.str();
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    const std::string n = PrometheusName(name);
    out << "# TYPE " << n << " counter\n" << n << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string n = PrometheusName(name);
    out << "# TYPE " << n << " gauge\n" << n << " " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string n = PrometheusName(name);
    out << "# TYPE " << n << " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      out << n << "_bucket{le=\""
          << PrometheusLabelValue(
                 i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "+Inf")
          << "\"} " << cumulative << "\n";
    }
    out << n << "_sum " << h.sum << "\n";
    out << n << "_count " << h.count << "\n";
  }
  return out.str();
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->GetSnapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  // Values are zeroed in place: handles cached by call sites stay valid.
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& DefaultMetrics() {
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

std::string SnapshotJson() { return DefaultMetrics().Snapshot().ToJson(); }

std::string PrometheusText() {
  return DefaultMetrics().Snapshot().ToPrometheusText();
}

}  // namespace mdv::obs
