#ifndef MDV_MDV_DOCUMENT_STORE_H_
#define MDV_MDV_DOCUMENT_STORE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/document.h"

namespace mdv {

/// The registered RDF documents of one Metadata Provider, addressable by
/// document URI, with resource resolution by URI reference. Documents are
/// the unit of registration/update/deletion (§2.2).
class DocumentStore {
 public:
  DocumentStore() = default;

  /// Stores a new document; AlreadyExists if the URI is registered.
  Status Add(rdf::RdfDocument document);

  /// Replaces an existing document; NotFound if the URI is unknown.
  Status Replace(rdf::RdfDocument document);

  /// Removes a document; NotFound if absent.
  Status Remove(const std::string& uri);

  const rdf::RdfDocument* Find(const std::string& uri) const;

  /// Resolves a resource by URI reference (document URI + '#' + local
  /// id); nullptr if the document or resource is unknown.
  const rdf::Resource* FindResource(const std::string& uri_reference) const;

  std::vector<std::string> DocumentUris() const;
  size_t size() const { return documents_.size(); }

 private:
  std::map<std::string, rdf::RdfDocument> documents_;
};

}  // namespace mdv

#endif  // MDV_MDV_DOCUMENT_STORE_H_
