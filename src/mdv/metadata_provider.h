#ifndef MDV_MDV_METADATA_PROVIDER_H_
#define MDV_MDV_METADATA_PROVIDER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "filter/engine.h"
#include "filter/rule_store.h"
#include "filter/tables.h"
#include "filter/update_protocol.h"
#include "mdv/document_store.h"
#include "mdv/network.h"
#include "net/wire.h"
#include "pubsub/publisher.h"
#include "pubsub/subscription.h"
#include "rdbms/database.h"
#include "rdf/schema.h"
#include "wal/log.h"

namespace mdv {

/// A Metadata Provider (MDP) of the MDV backbone (§2.2): accepts
/// document registrations, updates and deletions; holds the decomposed
/// subscription rule base in its relational database; runs the filter
/// algorithm on every change; and publishes the outcome to subscribed
/// LMRs over the (simulated) network. MDPs replicate registrations to
/// their backbone peers (flat hierarchy, full replication).
///
/// The public entry points are thread-safe: one internal mutex
/// serializes all local work (parallelism lives *inside* a filter run,
/// across rule-base shards — see EngineOptions::num_workers). Backbone
/// replication to peers runs outside the mutex, so mutually-peered MDPs
/// cannot deadlock; peers serialize on their own mutex.
class MetadataProvider {
 public:
  /// `schema` and `network` must outlive the provider.
  /// `rule_options.num_shards` selects the sharded filter-table layout;
  /// `engine_options.num_workers` sizes the work-stealing pool that fans
  /// filter runs across those shards.
  MetadataProvider(const rdf::RdfSchema* schema, Network* network,
                   filter::RuleStoreOptions rule_options = {},
                   filter::EngineOptions engine_options = {});
  ~MetadataProvider();

  MetadataProvider(const MetadataProvider&) = delete;
  MetadataProvider& operator=(const MetadataProvider&) = delete;

  // ---- Metadata administration (§2.2). --------------------------------

  /// Parses and registers a new RDF document. Validates it against the
  /// schema, stores it, feeds its atoms to the filter and publishes the
  /// resulting matches.
  Status RegisterDocumentXml(std::string_view xml, const std::string& uri)
      EXCLUDES(api_mu_);

  /// Registers an already parsed document.
  Status RegisterDocument(rdf::RdfDocument document) EXCLUDES(api_mu_);

  /// Registers a batch of documents with a single filter run (the
  /// batching knob of the §4 experiments).
  Status RegisterDocumentBatch(std::vector<rdf::RdfDocument> documents)
      EXCLUDES(api_mu_);

  /// Re-registers a modified version of an existing document, running
  /// the three-pass update protocol (§3.5) and publishing inserts,
  /// updates and removals.
  Status UpdateDocument(rdf::RdfDocument document) EXCLUDES(api_mu_);

  /// Deletes a registered document with all its resources.
  Status DeleteDocument(const std::string& uri) EXCLUDES(api_mu_);

  // ---- Publish & subscribe. --------------------------------------------

  /// Registers a subscription rule for `lmr`. Compiles the rule, merges
  /// its dependency tree into the global graph, evaluates the new atomic
  /// rules against the existing metadata, and publishes the initial
  /// matches to the LMR. `name` (optional) makes the rule usable as an
  /// extension in later rules (§2.3).
  Result<pubsub::SubscriptionId> Subscribe(pubsub::LmrId lmr,
                                           std::string_view rule_text,
                                           const std::string& name = "")
      EXCLUDES(api_mu_);

  /// Removes a subscription and releases its atomic rules.
  Status Unsubscribe(pubsub::SubscriptionId subscription) EXCLUDES(api_mu_);

  /// Builds a full snapshot of a subscription's current matches (with
  /// strong closures) as an insert notification. This is the pull
  /// counterpart of publish notifications, used by the TTL-based cache
  /// consistency alternative the paper mentions in §3.5.
  Result<pubsub::Notification> SnapshotSubscription(
      pubsub::SubscriptionId subscription) EXCLUDES(api_mu_);

  // ---- Browsing (§2.2: real users can browse metadata at an MDP). -----

  /// Evaluates `rule_text` once against the current metadata and returns
  /// the matching URI references, without creating a subscription.
  Result<std::vector<std::string>> Browse(std::string_view rule_text)
      EXCLUDES(api_mu_);

  // ---- Backbone replication. -------------------------------------------

  /// Adds a backbone peer; registrations/updates/deletes are forwarded.
  /// Durable providers journal the peer's name (kWalMdpAddPeer) so a
  /// recovered incarnation knows which mesh edges to re-wire.
  void AddPeer(MetadataProvider* peer) EXCLUDES(api_mu_);

  /// Stable mesh name for peer journaling ("mdp-<n>" when wired by
  /// MdvSystem). Set once during deployment, before AddPeer.
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  /// Peer names collected from kWalMdpAddPeer records during the
  /// EnableDurability replay (deduplicated, in first-seen order).
  /// Deployment code re-wires the mesh from these after recovery.
  std::vector<std::string> recovered_peer_names() const EXCLUDES(api_mu_) {
    MutexLock lock(api_mu_);
    return recovered_peer_names_;
  }

  // ---- Replica lifecycle (Clone-pattern joins). ------------------------

  /// This MDP's publish flow id; joining LMRs address snapshot requests
  /// to it (Network::RequestSnapshot).
  uint64_t sender_id() const { return sender_id_; }

  /// Serves one replica-join snapshot request: re-evaluates the end
  /// rules of every subscription the requesting LMR holds here, ships
  /// the matching resources (with strong closures and LWW stamps) as a
  /// sequence of kSnapshotChunk notifications on the dedicated snapshot
  /// sender flow, and finishes with a kSnapshotDone carrying the match
  /// manifest and version-vector cursor. Delta requests skip resources
  /// the supplied per-entry cursor already covers — the manifest still
  /// lists every match, so the joiner can repair flags either way.
  /// Takes api_mu_ in short sections per chunk; publishes outside it,
  /// so concurrent client traffic interleaves rather than stalling.
  Status ServeSnapshot(const net::SnapshotRequestFrame& request)
      EXCLUDES(api_mu_);

  /// Resources per snapshot chunk (default 64). Tests lower it to force
  /// multi-chunk serves; must be >= 1.
  void set_snapshot_chunk_resources(size_t n) {
    snapshot_chunk_resources_ = n == 0 ? 1 : n;
  }

  // ---- Persistence. --------------------------------------------------------

  /// Serializes the provider's durable state — the filter database (rule
  /// base, FilterData, materialized results), the registered documents,
  /// and the subscription registry — into a text snapshot. LMR caches
  /// are not part of the snapshot; after a restore, LMRs reattach to the
  /// network and call Refresh() to resynchronize.
  Status SaveSnapshot(std::ostream& out) const EXCLUDES(api_mu_);

  /// Restores a provider from SaveSnapshot output, replacing all current
  /// state. The provider keeps its schema, network and peers.
  Status LoadSnapshot(std::istream& in) EXCLUDES(api_mu_);

  // ---- Durability (write-ahead log + compacted snapshots). -----------

  /// Opens (or recovers) a WAL in `options.dir` and switches the
  /// provider to durable operation: every successful registration,
  /// update, deletion, subscribe and unsubscribe is journaled before
  /// its notifications leave, and Checkpoint() compacts the log
  /// through SaveSnapshot. If the directory holds a previous
  /// incarnation's log, its snapshot and record suffix are replayed
  /// first, restoring an identical provider state.
  ///
  /// Call once, right after construction — before AddPeer and before
  /// any traffic (replay forwards to no one and delivers nothing; the
  /// LMRs recover or resync on their own). The manifest pins the
  /// schema and shard count; reopening with different ones fails.
  Status EnableDurability(const wal::WalOptions& options) EXCLUDES(api_mu_);

  /// Writes a compacted snapshot and prunes the replayed log prefix.
  /// InvalidArgument when durability is not enabled. Also triggered
  /// automatically every WalOptions::checkpoint_every appends.
  Status Checkpoint() EXCLUDES(api_mu_);

  /// Whether EnableDurability succeeded on this provider.
  bool durable() const EXCLUDES(api_mu_) {
    MutexLock lock(api_mu_);
    return journal_ != nullptr;
  }

  /// Replayed-recovery details of the EnableDurability open (empty
  /// RecoveryInfo if durability is off). For tests and mdv_fsck.
  wal::RecoveryInfo recovery_info() const EXCLUDES(api_mu_) {
    MutexLock lock(api_mu_);
    return journal_ != nullptr ? journal_->recovery() : wal::RecoveryInfo{};
  }

  // ---- Introspection. ----------------------------------------------------
  // The reference accessors hand out state that entry points mutate
  // under api_mu_: they exist for single-threaded setup/teardown and
  // quiesced inspection (tests, benches after WaitQuiescent). Readers
  // racing a live publisher are on their own — take no new dependency
  // on them from concurrent contexts.

  const DocumentStore& documents() const { return documents_; }
  const rdbms::Database& database() const { return *db_; }
  rdbms::Database* mutable_database() { return db_.get(); }
  const filter::RuleStore& rule_store() const { return *rule_store_; }
  const pubsub::SubscriptionRegistry& subscriptions() const {
    return registry_;
  }
  const rdf::RdfSchema& schema() const { return *schema_; }

  /// Statistics of the most recent filter run.
  int last_filter_iterations() const EXCLUDES(api_mu_) {
    MutexLock lock(api_mu_);
    return last_iterations_;
  }

  /// Publish/update/delete operations currently executing in this MDP
  /// (client calls plus peer replication). The aggregate across MDPs is
  /// the `mdv.mdp.inflight_publishes` gauge.
  int inflight_publishes() const {
    return inflight_publishes_.load(std::memory_order_relaxed);
  }

 private:
  enum class Origin { kClient, kPeer };

  /// `stamps` carries the originating MDP's LWW versions during peer
  /// replication (one per document, in order); empty means "originating
  /// mutation here" — allocate fresh stamps from this MDP's counter.
  /// Every MDP in the mesh thus publishes identical versions for the
  /// same logical revision.
  Status RegisterDocumentBatchInternal(
      std::vector<rdf::RdfDocument> docs, Origin origin,
      std::vector<pubsub::EntryVersion> stamps = {}) EXCLUDES(api_mu_);
  Status UpdateDocumentInternal(rdf::RdfDocument document, Origin origin,
                                pubsub::EntryVersion stamp = {})
      EXCLUDES(api_mu_);
  Status DeleteDocumentInternal(const std::string& uri, Origin origin)
      EXCLUDES(api_mu_);
  Result<pubsub::SubscriptionId> SubscribeLocked(pubsub::LmrId lmr,
                                                 std::string_view rule_text,
                                                 const std::string& name,
                                                 const obs::SpanContext& trace)
      REQUIRES(api_mu_);
  Status SaveSnapshotLocked(std::ostream& out) const REQUIRES(api_mu_);
  Status LoadSnapshotLocked(std::istream& in) REQUIRES(api_mu_);
  /// Appends one record when durable (no-op otherwise or during
  /// replay), auto-checkpointing per WalOptions::checkpoint_every.
  Status JournalAppendLocked(uint8_t type, std::string payload)
      REQUIRES(api_mu_);
  Status CheckpointLocked() REQUIRES(api_mu_);
  /// Re-applies one journaled operation during EnableDurability.
  Status ReplayRecord(const wal::WalRecord& record) EXCLUDES(api_mu_);
  /// LWW stamp of the document owning `uri_reference` ({0,0} unknown).
  pubsub::EntryVersion VersionForReferenceLocked(
      const std::string& uri_reference) const REQUIRES(api_mu_);

  const rdf::RdfSchema* schema_;
  Network* network_;
  filter::RuleStoreOptions rule_options_;
  filter::EngineOptions engine_options_;
  /// Serializes the local work of every public entry point — the
  /// outermost rank of the whole hierarchy: it is held across filter
  /// runs and across network_->DeliverAll (which takes the bus or
  /// link/transport locks underneath). Released before peer forwarding
  /// (peers lock their own api_mu_; two mutually-peered MDPs holding
  /// theirs while forwarding would deadlock).
  mutable Mutex api_mu_{LockRank::kMdpApi, "mdv.mdp.api"};
  uint64_t sender_id_ = 0;  // This MDP's flow id on the network.
  std::string name_;  // Mesh name for peer journaling; set pre-AddPeer.
  std::unique_ptr<rdbms::Database> db_;
  std::unique_ptr<filter::RuleStore> rule_store_;
  std::unique_ptr<filter::FilterEngine> engine_;
  DocumentStore documents_;
  pubsub::SubscriptionRegistry registry_;
  std::unique_ptr<pubsub::Publisher> publisher_;
  /// Replication fan-out targets. Mutated by AddPeer under api_mu_ and
  /// therefore also read under it — the replication loops copy the list
  /// inside their critical section before forwarding unlocked.
  std::vector<MetadataProvider*> peers_ GUARDED_BY(api_mu_);
  int last_iterations_ GUARDED_BY(api_mu_) = 0;
  std::atomic<int> inflight_publishes_{0};
  /// Null until EnableDurability; the journal itself is thread-safe
  /// but the pointer and the replay flag follow api_mu_.
  std::unique_ptr<wal::Journal> journal_ GUARDED_BY(api_mu_);
  /// True while EnableDurability re-applies the recovered log: entry
  /// points then skip journaling (the records already exist) and skip
  /// network delivery (receivers recover or Refresh on their own).
  bool replaying_ GUARDED_BY(api_mu_) = false;
  /// Peer names recovered from kWalMdpAddPeer records (see accessor).
  std::vector<std::string> recovered_peer_names_ GUARDED_BY(api_mu_);
  /// LWW versioning state (persisted in the VERSIONS snapshot section).
  /// origin_id_ identifies this MDP in version stamps; next_version_seq_
  /// is the monotonic half of every stamp it allocates.
  /// resource_versions_ maps URI reference -> the stamp of the last
  /// mutation that changed that resource's CONTENT. One document
  /// mutation stamps only the resources it touched, so a replica fed by
  /// the live stream and one fed by a snapshot serve agree stamp-for-
  /// stamp. Deletes (and update-removed resources) erase.
  uint64_t origin_id_ GUARDED_BY(api_mu_) = 0;
  uint64_t next_version_seq_ GUARDED_BY(api_mu_) = 0;
  std::map<std::string, pubsub::EntryVersion> resource_versions_
      GUARDED_BY(api_mu_);
  size_t snapshot_chunk_resources_ = 64;
};

}  // namespace mdv

#endif  // MDV_MDV_METADATA_PROVIDER_H_
