#include "mdv/metadata_provider.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "mdv/wal_records.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdbms/persistence.h"
#include "rdf/parser.h"
#include "rdf/schema_io.h"
#include "rdf/writer.h"
#include "rules/compiler.h"
#include "wal/record.h"

namespace mdv {

namespace {

/// Registry handles of the MDP entry points, resolved once.
struct MdpMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& registered = r.GetCounter("mdv.mdp.documents_registered_total");
  obs::Counter& updated = r.GetCounter("mdv.mdp.documents_updated_total");
  obs::Counter& deleted = r.GetCounter("mdv.mdp.documents_deleted_total");
  obs::Counter& subscriptions = r.GetCounter("mdv.mdp.subscriptions_total");
  /// Publish/update/delete operations currently inside an MDP entry
  /// point, summed across providers (per-MDP depth via
  /// MetadataProvider::inflight_publishes()).
  obs::Gauge& inflight = r.GetGauge("mdv.mdp.inflight_publishes");
  obs::Histogram& publish_us = r.GetHistogram("mdv.mdp.publish_us");
  obs::Histogram& update_us = r.GetHistogram("mdv.mdp.update_us");
  obs::Histogram& delete_us = r.GetHistogram("mdv.mdp.delete_us");
  obs::Histogram& subscribe_us = r.GetHistogram("mdv.mdp.subscribe_us");

  static MdpMetrics& Get() {
    static MdpMetrics& metrics = *new MdpMetrics();
    return metrics;
  }
};

/// Stamps the originating operation's span context on every outgoing
/// notification so delivery and application correlate to one trace.
void StampTrace(std::vector<pubsub::Notification>* notes,
                const obs::SpanContext& trace) {
  for (pubsub::Notification& note : *notes) note.trace = trace;
}

/// Tracks one publish-path operation in the aggregate gauge and the
/// owning MDP's own depth for the duration of the entry point.
class ScopedInflight {
 public:
  ScopedInflight(obs::Gauge* gauge, std::atomic<int>* per_mdp)
      : gauge_(gauge), per_mdp_(per_mdp) {
    gauge_->Add(1);
    per_mdp_->fetch_add(1, std::memory_order_relaxed);
  }
  ~ScopedInflight() {
    gauge_->Add(-1);
    per_mdp_->fetch_sub(1, std::memory_order_relaxed);
  }

  ScopedInflight(const ScopedInflight&) = delete;
  ScopedInflight& operator=(const ScopedInflight&) = delete;

 private:
  obs::Gauge* gauge_;
  std::atomic<int>* per_mdp_;
};

}  // namespace

MetadataProvider::MetadataProvider(const rdf::RdfSchema* schema,
                                   Network* network,
                                   filter::RuleStoreOptions rule_options,
                                   filter::EngineOptions engine_options)
    : schema_(schema), network_(network), rule_options_(rule_options),
      engine_options_(engine_options),
      sender_id_(network->RegisterSender()),
      db_(std::make_unique<rdbms::Database>()) {
  filter::TableOptions table_options;
  table_options.num_shards = rule_options.num_shards;
  Status st = filter::CreateFilterTables(db_.get(), table_options);
  (void)st;  // Fresh database; cannot fail.
  rule_store_ = std::make_unique<filter::RuleStore>(db_.get(), rule_options);
  engine_ = std::make_unique<filter::FilterEngine>(db_.get(),
                                                   rule_store_.get(),
                                                   engine_options_);
  publisher_ = std::make_unique<pubsub::Publisher>(
      schema_, &registry_,
      [this](const std::string& uri_reference) {
        return documents_.FindResource(uri_reference);
      },
      [this](const std::string& uri_reference) {
        // The publisher only runs from entry points holding api_mu_.
        api_mu_.AssertHeld();
        return VersionForReferenceLocked(uri_reference);
      });
  // Version stamps must stay stable across restarts even though the
  // network may hand a recovered incarnation different sender ids, so
  // the stamp origin is snapshotted state seeded (not aliased) here.
  origin_id_ = sender_id_;
  (void)network_->BindSnapshotServer(
      sender_id_, [this](const net::SnapshotRequestFrame& request) {
        (void)ServeSnapshot(request);
      });
}

MetadataProvider::~MetadataProvider() {
  network_->UnbindSnapshotServer(sender_id_);
}

Status MetadataProvider::RegisterDocumentXml(std::string_view xml,
                                             const std::string& uri) {
  MDV_ASSIGN_OR_RETURN(rdf::RdfDocument document, rdf::ParseRdfXml(xml, uri));
  return RegisterDocument(std::move(document));
}

Status MetadataProvider::RegisterDocument(rdf::RdfDocument document) {
  std::vector<rdf::RdfDocument> batch;
  batch.push_back(std::move(document));
  return RegisterDocumentBatchInternal(std::move(batch), Origin::kClient);
}

Status MetadataProvider::RegisterDocumentBatch(
    std::vector<rdf::RdfDocument> documents) {
  return RegisterDocumentBatchInternal(std::move(documents), Origin::kClient);
}

Status MetadataProvider::RegisterDocumentBatchInternal(
    std::vector<rdf::RdfDocument> docs, Origin origin,
    std::vector<pubsub::EntryVersion> stamps) {
  MdpMetrics& metrics = MdpMetrics::Get();
  obs::ScopedSpan span("mdp.publish", &metrics.publish_us);
  ScopedInflight inflight(&metrics.inflight, &inflight_publishes_);
  span.AddAttribute("documents", static_cast<int64_t>(docs.size()));
  span.AddAttribute("origin", origin == Origin::kClient ? "client" : "peer");
  obs::FlightRecorder::Default().Record(
      obs::FlightEventType::kPublish, static_cast<int64_t>(sender_id_),
      static_cast<int64_t>(docs.size()),
      static_cast<int64_t>(span.context().trace_id));
  // Keep copies for backbone replication before moving into the store.
  std::vector<rdf::RdfDocument> replicas;
  std::vector<MetadataProvider*> peers;
  {
    MutexLock lock(api_mu_);
    peers = peers_;
    for (const rdf::RdfDocument& doc : docs) {
      MDV_RETURN_IF_ERROR(schema_->ValidateDocument(doc));
      if (documents_.Find(doc.uri()) != nullptr) {
        return Status::AlreadyExists("document " + doc.uri() +
                                     "; use UpdateDocument to re-register");
      }
    }
    if (origin == Origin::kClient && !peers.empty()) {
      replicas = docs;
    }
    // Stamp every document before publishing so the publisher's version
    // resolver sees the new revisions. An empty `stamps` means the
    // mutation originates here: allocate from this MDP's counter (the
    // counter is snapshot state, so WAL replay re-allocates the exact
    // stamps the original run published).
    if (stamps.empty()) {
      stamps.reserve(docs.size());
      for (size_t i = 0; i < docs.size(); ++i) {
        stamps.push_back(pubsub::EntryVersion{origin_id_,
                                              ++next_version_seq_});
      }
    } else if (stamps.size() != docs.size()) {
      return Status::InvalidArgument("version stamp count mismatch");
    }
    std::vector<std::string> uris;
    uris.reserve(docs.size());
    for (size_t i = 0; i < docs.size(); ++i) {
      // Versions are tracked per RESOURCE (the unit replicas cache),
      // so a later partial update leaves untouched resources on their
      // old stamp — and a snapshot serve agrees byte-for-byte with
      // what the live stream shipped.
      for (const rdf::Resource* res : docs[i].resources()) {
        resource_versions_[docs[i].UriReferenceOf(res->local_id())] =
            stamps[i];
      }
      if (stamps[i].origin == origin_id_) {
        next_version_seq_ = std::max(next_version_seq_, stamps[i].seq);
      }
      uris.push_back(docs[i].uri());
      MDV_RETURN_IF_ERROR(documents_.Add(std::move(docs[i])));
    }
    std::vector<const rdf::RdfDocument*> doc_ptrs;
    doc_ptrs.reserve(uris.size());
    for (const std::string& uri : uris) {
      doc_ptrs.push_back(documents_.Find(uri));
    }

    MDV_ASSIGN_OR_RETURN(filter::FilterRunResult result,
                         filter::RegisterDocuments(db_.get(), engine_.get(),
                                                   doc_ptrs));
    last_iterations_ = result.iterations;

    MDV_ASSIGN_OR_RETURN(std::vector<pubsub::Notification> notes,
                         publisher_->PublishNewMatches(result));
    StampTrace(&notes, span.context());
    span.AddAttribute("notifications", static_cast<int64_t>(notes.size()));
    if (journal_ != nullptr && !replaying_) {
      std::string payload;
      wal::PutU32(payload, static_cast<uint32_t>(uris.size()));
      for (size_t i = 0; i < uris.size(); ++i) {
        wal::PutString(payload, uris[i]);
        wal::PutString(payload, rdf::WriteRdfXml(*documents_.Find(uris[i])));
        wal::PutU64(payload, stamps[i].origin);
        wal::PutU64(payload, stamps[i].seq);
      }
      MDV_RETURN_IF_ERROR(
          JournalAppendLocked(kWalMdpRegisterDocuments, std::move(payload)));
    }
    if (!replaying_) network_->DeliverAll(notes, sender_id_);
    metrics.registered.Add(static_cast<int64_t>(docs.size()));
  }

  // Replicate outside the mutex: peers serialize on their own, and two
  // mutually-peered MDPs holding their locks while forwarding would
  // deadlock.
  if (origin == Origin::kClient) {
    for (MetadataProvider* peer : peers) {
      MDV_RETURN_IF_ERROR(
          peer->RegisterDocumentBatchInternal(replicas, Origin::kPeer,
                                              stamps));
    }
  }
  return Status::OK();
}

Status MetadataProvider::UpdateDocument(rdf::RdfDocument document) {
  return UpdateDocumentInternal(std::move(document), Origin::kClient);
}

Status MetadataProvider::DeleteDocument(const std::string& uri) {
  return DeleteDocumentInternal(uri, Origin::kClient);
}

Status MetadataProvider::UpdateDocumentInternal(rdf::RdfDocument document,
                                                Origin origin,
                                                pubsub::EntryVersion stamp) {
  MdpMetrics& metrics = MdpMetrics::Get();
  obs::ScopedSpan span("mdp.update", &metrics.update_us);
  ScopedInflight inflight(&metrics.inflight, &inflight_publishes_);
  span.AddAttribute("uri", document.uri());
  rdf::RdfDocument updated_copy = document;
  std::vector<MetadataProvider*> peers;
  {
    MutexLock lock(api_mu_);
    peers = peers_;
    MDV_RETURN_IF_ERROR(schema_->ValidateDocument(document));
    const rdf::RdfDocument* original = documents_.Find(document.uri());
    if (original == nullptr) {
      return Status::NotFound("document " + document.uri() +
                              "; register it first");
    }
    rdf::RdfDocument original_copy = *original;

    // Replace the stored document before publishing so the publisher's
    // resource resolver sees the new versions.
    MDV_RETURN_IF_ERROR(documents_.Replace(std::move(document)));

    // The three filter passes mutate FilterData and MaterializedResults;
    // run them transactionally so a mid-protocol failure leaves the
    // filter state (and the document store) untouched.
    MDV_RETURN_IF_ERROR(db_->BeginTransaction());
    Result<filter::UpdateOutcome> protocol = filter::ApplyDocumentUpdate(
        db_.get(), engine_.get(), original_copy, updated_copy);
    if (!protocol.ok()) {
      Status rollback = db_->RollbackTransaction();
      (void)rollback;
      Status restore = documents_.Replace(original_copy);
      (void)restore;
      return protocol.status();
    }
    MDV_RETURN_IF_ERROR(db_->CommitTransaction());
    filter::UpdateOutcome outcome = std::move(protocol).value();
    last_iterations_ = outcome.new_matches.iterations;

    // Stamp the new revision before publishing — the kUpdate (and any
    // update-induced kRemove) notifications carry this version, and LWW
    // replicas use it to discard stale reorderings.
    if (stamp == pubsub::EntryVersion{}) {
      stamp = pubsub::EntryVersion{origin_id_, ++next_version_seq_};
    } else if (stamp.origin == origin_id_) {
      next_version_seq_ = std::max(next_version_seq_, stamp.seq);
    }
    // Only resources whose content actually changed (or are new) move
    // to the update's stamp; untouched ones keep the version replicas
    // already hold for them. Removed resources lose their stamp.
    for (const rdf::Resource* res : updated_copy.resources()) {
      const rdf::Resource* before = original_copy.FindResource(
          res->local_id());
      if (before == nullptr || !before->ContentEquals(*res)) {
        resource_versions_[updated_copy.UriReferenceOf(res->local_id())] =
            stamp;
      }
    }
    for (const rdf::Resource* res : original_copy.resources()) {
      if (updated_copy.FindResource(res->local_id()) == nullptr) {
        resource_versions_.erase(
            original_copy.UriReferenceOf(res->local_id()));
      }
    }

    MDV_ASSIGN_OR_RETURN(std::vector<pubsub::Notification> notes,
                         publisher_->PublishUpdateOutcome(outcome));
    StampTrace(&notes, span.context());
    span.AddAttribute("notifications", static_cast<int64_t>(notes.size()));
    if (journal_ != nullptr && !replaying_) {
      std::string payload;
      wal::PutString(payload, updated_copy.uri());
      wal::PutString(payload, rdf::WriteRdfXml(updated_copy));
      wal::PutU64(payload, stamp.origin);
      wal::PutU64(payload, stamp.seq);
      MDV_RETURN_IF_ERROR(
          JournalAppendLocked(kWalMdpUpdateDocument, std::move(payload)));
    }
    if (!replaying_) network_->DeliverAll(notes, sender_id_);
    metrics.updated.Increment();
  }

  if (origin == Origin::kClient) {
    for (MetadataProvider* peer : peers) {
      MDV_RETURN_IF_ERROR(
          peer->UpdateDocumentInternal(updated_copy, Origin::kPeer, stamp));
    }
  }
  return Status::OK();
}

Status MetadataProvider::DeleteDocumentInternal(const std::string& uri,
                                                Origin origin) {
  MdpMetrics& metrics = MdpMetrics::Get();
  obs::ScopedSpan span("mdp.delete", &metrics.delete_us);
  ScopedInflight inflight(&metrics.inflight, &inflight_publishes_);
  span.AddAttribute("uri", uri);
  std::vector<MetadataProvider*> peers;
  {
    MutexLock lock(api_mu_);
    peers = peers_;
    const rdf::RdfDocument* original = documents_.Find(uri);
    if (original == nullptr) {
      return Status::NotFound("document " + uri);
    }
    rdf::RdfDocument original_copy = *original;
    MDV_RETURN_IF_ERROR(documents_.Remove(uri));

    MDV_RETURN_IF_ERROR(db_->BeginTransaction());
    Result<filter::UpdateOutcome> protocol =
        filter::ApplyDocumentDeletion(db_.get(), engine_.get(),
                                      original_copy);
    if (!protocol.ok()) {
      Status rollback = db_->RollbackTransaction();
      (void)rollback;
      Status restore = documents_.Add(original_copy);
      (void)restore;
      return protocol.status();
    }
    MDV_RETURN_IF_ERROR(db_->CommitTransaction());
    filter::UpdateOutcome outcome = std::move(protocol).value();
    last_iterations_ = outcome.new_matches.iterations;
    // Deletions allocate no stamp: the kRemove notifications clear match
    // flags (order-faithful on each flow), they do not carry content.
    for (const rdf::Resource* res : original_copy.resources()) {
      resource_versions_.erase(original_copy.UriReferenceOf(res->local_id()));
    }

    MDV_ASSIGN_OR_RETURN(std::vector<pubsub::Notification> notes,
                         publisher_->PublishUpdateOutcome(outcome));
    StampTrace(&notes, span.context());
    span.AddAttribute("notifications", static_cast<int64_t>(notes.size()));
    if (journal_ != nullptr && !replaying_) {
      std::string payload;
      wal::PutString(payload, uri);
      MDV_RETURN_IF_ERROR(
          JournalAppendLocked(kWalMdpDeleteDocument, std::move(payload)));
    }
    if (!replaying_) network_->DeliverAll(notes, sender_id_);
    metrics.deleted.Increment();
  }

  if (origin == Origin::kClient) {
    for (MetadataProvider* peer : peers) {
      MDV_RETURN_IF_ERROR(peer->DeleteDocumentInternal(uri, Origin::kPeer));
    }
  }
  return Status::OK();
}

Result<pubsub::SubscriptionId> MetadataProvider::Subscribe(
    pubsub::LmrId lmr, std::string_view rule_text, const std::string& name) {
  MdpMetrics& metrics = MdpMetrics::Get();
  obs::ScopedSpan span("mdp.subscribe", &metrics.subscribe_us);
  span.AddAttribute("lmr", static_cast<int64_t>(lmr));
  MutexLock lock(api_mu_);
  return SubscribeLocked(lmr, rule_text, name, span.context());
}

Result<pubsub::SubscriptionId> MetadataProvider::SubscribeLocked(
    pubsub::LmrId lmr, std::string_view rule_text, const std::string& name,
    const obs::SpanContext& trace) {
  MdpMetrics& metrics = MdpMetrics::Get();
  // Extensions may name other subscriptions registered here (§2.3).
  auto extension_resolver =
      [this](const std::string& ext) -> std::optional<std::string> {
    const pubsub::Subscription* sub = registry_.FindByName(ext);
    if (sub == nullptr) return std::nullopt;
    return sub->type;
  };
  auto rule_resolver =
      [this](const std::string& ext) -> std::optional<rules::ExternalExtension> {
    const pubsub::Subscription* sub = registry_.FindByName(ext);
    if (sub == nullptr) return std::nullopt;
    return rules::ExternalExtension{sub->type, sub->end_rule_id};
  };
  MDV_ASSIGN_OR_RETURN(
      rules::CompiledRule compiled,
      rules::CompileRule(rule_text, *schema_, extension_resolver,
                         rule_resolver));

  // The linted registration path: unsatisfiable rules are rejected here
  // (they could never notify), subsumption against the MDP's live rule
  // base is reported as warnings and counted under mdv.lint.*.
  MDV_ASSIGN_OR_RETURN(filter::RuleStore::AddRuleOutcome added,
                       rule_store_->AddRule(compiled, *schema_, name));
  const int64_t end_rule = added.end_rule_id;

  // Seed the subscription with matches from the already-registered
  // metadata: evaluate the new atomic rules (and the end rule, if it
  // already existed) against the full database.
  std::vector<int64_t> to_evaluate = added.created;
  if (std::find(to_evaluate.begin(), to_evaluate.end(), end_rule) ==
      to_evaluate.end()) {
    to_evaluate.push_back(end_rule);
  }
  MDV_ASSIGN_OR_RETURN(filter::FilterRunResult seeded,
                       engine_->EvaluateNewRules(to_evaluate));

  pubsub::SubscriptionId id =
      registry_.Add(lmr, std::string(rule_text), name, end_rule,
                    compiled.type());

  if (journal_ != nullptr && !replaying_) {
    std::string payload;
    wal::PutI64(payload, static_cast<int64_t>(lmr));
    wal::PutI64(payload, static_cast<int64_t>(id));
    wal::PutString(payload, rule_text);
    wal::PutString(payload, name);
    MDV_RETURN_IF_ERROR(
        JournalAppendLocked(kWalMdpSubscribe, std::move(payload)));
  }

  const std::vector<std::string>* matches = seeded.MatchesFor(end_rule);
  if (matches != nullptr && !matches->empty() && !replaying_) {
    pubsub::Notification note;
    note.kind = pubsub::NotificationKind::kInsert;
    note.lmr = lmr;
    note.subscription = id;
    note.trace = trace;
    for (const std::string& uri : *matches) {
      MDV_ASSIGN_OR_RETURN(std::vector<pubsub::TransmittedResource> shipped,
                           publisher_->WithStrongClosure(uri));
      note.resources.insert(note.resources.end(), shipped.begin(),
                            shipped.end());
    }
    network_->Deliver(note, sender_id_);
  }
  metrics.subscriptions.Increment();
  return id;
}

Result<pubsub::Notification> MetadataProvider::SnapshotSubscription(
    pubsub::SubscriptionId subscription) {
  MutexLock lock(api_mu_);
  const pubsub::Subscription* sub = registry_.Find(subscription);
  if (sub == nullptr) {
    return Status::NotFound("subscription " + std::to_string(subscription));
  }
  obs::ScopedSpan span("mdp.snapshot_subscription");
  span.AddAttribute("subscription", static_cast<int64_t>(subscription));
  // Re-evaluate the end rule from scratch against the current metadata.
  MDV_ASSIGN_OR_RETURN(filter::FilterRunResult snapshot,
                       engine_->EvaluateNewRules({sub->end_rule_id}));
  pubsub::Notification note;
  note.kind = pubsub::NotificationKind::kInsert;
  note.lmr = sub->lmr;
  note.subscription = subscription;
  note.trace = span.context();
  const std::vector<std::string>* matches =
      snapshot.MatchesFor(sub->end_rule_id);
  if (matches != nullptr) {
    for (const std::string& uri : *matches) {
      MDV_ASSIGN_OR_RETURN(std::vector<pubsub::TransmittedResource> shipped,
                           publisher_->WithStrongClosure(uri));
      note.resources.insert(note.resources.end(), shipped.begin(),
                            shipped.end());
    }
  }
  return note;
}

Status MetadataProvider::Unsubscribe(pubsub::SubscriptionId subscription) {
  MutexLock lock(api_mu_);
  MDV_ASSIGN_OR_RETURN(pubsub::Subscription removed,
                       registry_.Remove(subscription));
  MDV_RETURN_IF_ERROR(rule_store_->Unregister(removed.end_rule_id));
  if (journal_ != nullptr && !replaying_) {
    std::string payload;
    wal::PutI64(payload, static_cast<int64_t>(subscription));
    MDV_RETURN_IF_ERROR(
        JournalAppendLocked(kWalMdpUnsubscribe, std::move(payload)));
  }
  return Status::OK();
}

Result<std::vector<std::string>> MetadataProvider::Browse(
    std::string_view rule_text) {
  MutexLock lock(api_mu_);
  MDV_ASSIGN_OR_RETURN(rules::CompiledRule compiled,
                       rules::CompileRule(rule_text, *schema_));
  std::vector<int64_t> created;
  MDV_ASSIGN_OR_RETURN(int64_t end_rule,
                       rule_store_->RegisterTree(compiled.decomposed,
                                                 &created));
  std::vector<int64_t> to_evaluate = created;
  if (std::find(to_evaluate.begin(), to_evaluate.end(), end_rule) ==
      to_evaluate.end()) {
    to_evaluate.push_back(end_rule);
  }
  Result<filter::FilterRunResult> seeded =
      engine_->EvaluateNewRules(to_evaluate);
  // Always release the transient registration, even on failure.
  Status release = rule_store_->Unregister(end_rule);
  if (!seeded.ok()) return seeded.status();
  MDV_RETURN_IF_ERROR(release);
  const std::vector<std::string>* matches = seeded->MatchesFor(end_rule);
  if (matches == nullptr) return std::vector<std::string>{};
  return *matches;
}


Status MetadataProvider::SaveSnapshot(std::ostream& out) const {
  MutexLock lock(api_mu_);
  return SaveSnapshotLocked(out);
}

Status MetadataProvider::SaveSnapshotLocked(std::ostream& out) const {
  out << "MDVSNAP1\n";
  out << "DATABASE\n";
  MDV_RETURN_IF_ERROR(rdbms::SaveDatabase(*db_, out));
  std::vector<std::string> uris = documents_.DocumentUris();
  out << "DOCUMENTS " << uris.size() << "\n";
  for (const std::string& uri : uris) {
    std::string xml = rdf::WriteRdfXml(*documents_.Find(uri));
    out << "DOC " << uri << " " << xml.size() << "\n" << xml;
  }
  std::vector<const pubsub::Subscription*> subs = registry_.All();
  out << "SUBSCRIPTIONS " << subs.size() << "\n";
  for (const pubsub::Subscription* sub : subs) {
    out << "SUB " << sub->id << " " << sub->lmr << " " << sub->end_rule_id
        << " " << sub->type << " " << (sub->name.empty() ? "-" : sub->name)
        << "\n";
    out << sub->rule_text << "\n";
  }
  // LWW versioning state. Older images lack the section; the loader
  // tolerates its absence (the header stays MDVSNAP1).
  out << "VERSIONS " << resource_versions_.size() << " " << origin_id_ << " "
      << next_version_seq_ << "\n";
  for (const auto& [uri, version] : resource_versions_) {
    out << "V " << uri << " " << version.origin << " " << version.seq << "\n";
  }
  out << "ENDSNAP\n";
  if (!out.good()) return Status::Internal("write failure");
  return Status::OK();
}

Status MetadataProvider::LoadSnapshot(std::istream& in) {
  MutexLock lock(api_mu_);
  return LoadSnapshotLocked(in);
}

Status MetadataProvider::LoadSnapshotLocked(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "MDVSNAP1") {
    return Status::ParseError("missing snapshot header");
  }
  if (!std::getline(in, line) || line != "DATABASE") {
    return Status::ParseError("missing DATABASE section");
  }
  MDV_ASSIGN_OR_RETURN(std::unique_ptr<rdbms::Database> db,
                       rdbms::LoadDatabase(in));

  DocumentStore documents;
  if (!std::getline(in, line) || line.rfind("DOCUMENTS ", 0) != 0) {
    return Status::ParseError("missing DOCUMENTS section");
  }
  size_t doc_count = 0;
  {
    std::istringstream ss(line.substr(10));
    if (!(ss >> doc_count)) {
      return Status::ParseError("malformed DOCUMENTS line: " + line);
    }
  }
  for (size_t i = 0; i < doc_count; ++i) {
    if (!std::getline(in, line) || line.rfind("DOC ", 0) != 0) {
      return Status::ParseError("missing DOC header");
    }
    std::istringstream ss(line.substr(4));
    std::string uri;
    size_t bytes = 0;
    if (!(ss >> uri >> bytes)) {
      return Status::ParseError("malformed DOC line: " + line);
    }
    std::string xml(bytes, '\0');
    in.read(xml.data(), static_cast<std::streamsize>(bytes));
    if (in.gcount() != static_cast<std::streamsize>(bytes)) {
      return Status::ParseError("truncated document " + uri);
    }
    MDV_ASSIGN_OR_RETURN(rdf::RdfDocument doc, rdf::ParseRdfXml(xml, uri));
    MDV_RETURN_IF_ERROR(documents.Add(std::move(doc)));
  }

  pubsub::SubscriptionRegistry registry;
  if (!std::getline(in, line) || line.rfind("SUBSCRIPTIONS ", 0) != 0) {
    return Status::ParseError("missing SUBSCRIPTIONS section");
  }
  size_t sub_count = 0;
  {
    std::istringstream ss(line.substr(14));
    if (!(ss >> sub_count)) {
      return Status::ParseError("malformed SUBSCRIPTIONS line: " + line);
    }
  }
  for (size_t i = 0; i < sub_count; ++i) {
    if (!std::getline(in, line) || line.rfind("SUB ", 0) != 0) {
      return Status::ParseError("missing SUB header");
    }
    std::istringstream ss(line.substr(4));
    pubsub::Subscription sub;
    std::string name;
    if (!(ss >> sub.id >> sub.lmr >> sub.end_rule_id >> sub.type >> name)) {
      return Status::ParseError("malformed SUB line: " + line);
    }
    if (name != "-") sub.name = name;
    if (!std::getline(in, sub.rule_text)) {
      return Status::ParseError("missing rule text for subscription " +
                                std::to_string(sub.id));
    }
    MDV_RETURN_IF_ERROR(registry.Restore(std::move(sub)));
  }
  bool have_versions = false;
  uint64_t snap_origin = 0;
  uint64_t snap_next_seq = 0;
  std::map<std::string, pubsub::EntryVersion> versions;
  if (!std::getline(in, line)) {
    return Status::ParseError("missing ENDSNAP marker");
  }
  if (line.rfind("VERSIONS ", 0) == 0) {
    std::istringstream ss(line.substr(9));
    size_t version_count = 0;
    if (!(ss >> version_count >> snap_origin >> snap_next_seq)) {
      return Status::ParseError("malformed VERSIONS line: " + line);
    }
    have_versions = true;
    for (size_t i = 0; i < version_count; ++i) {
      if (!std::getline(in, line) || line.rfind("V ", 0) != 0) {
        return Status::ParseError("missing V line");
      }
      std::istringstream vs(line.substr(2));
      std::string uri;
      pubsub::EntryVersion version;
      if (!(vs >> uri >> version.origin >> version.seq)) {
        return Status::ParseError("malformed V line: " + line);
      }
      versions[uri] = version;
    }
    if (!std::getline(in, line)) {
      return Status::ParseError("missing ENDSNAP marker");
    }
  }
  if (line != "ENDSNAP") {
    return Status::ParseError("missing ENDSNAP marker");
  }

  // Swap in the restored state and rebuild the components bound to it.
  db_ = std::move(db);
  documents_ = std::move(documents);
  registry_ = std::move(registry);
  if (have_versions) {
    // Restoring the stamp origin and counter keeps the versions this
    // MDP allocates stable across incarnations (the network may assign
    // a recovered provider different sender ids).
    origin_id_ = snap_origin;
    next_version_seq_ = snap_next_seq;
    resource_versions_ = std::move(versions);
  }
  rule_store_ = std::make_unique<filter::RuleStore>(db_.get(), rule_options_);
  engine_ = std::make_unique<filter::FilterEngine>(db_.get(),
                                                   rule_store_.get(),
                                                   engine_options_);
  return Status::OK();
}

void MetadataProvider::AddPeer(MetadataProvider* peer) {
  MutexLock lock(api_mu_);
  peers_.push_back(peer);
  if (journal_ != nullptr && !replaying_) {
    // Journal the mesh edge by name so a recovered incarnation can be
    // re-wired to the same peers (recovered_peer_names()). Best-effort:
    // a failed append degrades recovery hints, not live replication.
    std::string payload;
    wal::PutString(payload, peer->name());
    Status journaled = JournalAppendLocked(kWalMdpAddPeer, std::move(payload));
    (void)journaled;
  }
}

Status MetadataProvider::EnableDurability(const wal::WalOptions& options) {
  wal::Manifest meta;
  meta.kind = "mdp";
  meta.num_shards = static_cast<uint32_t>(rule_options_.num_shards);
  meta.schema_text = rdf::WriteSchemaText(*schema_);
  MDV_ASSIGN_OR_RETURN(std::unique_ptr<wal::Journal> journal,
                       wal::Journal::Open(options, meta));
  const wal::RecoveryInfo& rec = journal->recovery();
  if (!rec.fresh) {
    // The manifest pins the configuration the log was written under.
    // Replaying it into a provider sharded or typed differently would
    // rebuild a silently different rule base.
    if (rec.manifest.num_shards != meta.num_shards) {
      return Status::InvalidArgument(
          "WAL was written with num_shards=" +
          std::to_string(rec.manifest.num_shards) + ", provider has " +
          std::to_string(meta.num_shards));
    }
    if (rec.manifest.schema_text != meta.schema_text) {
      return Status::InvalidArgument(
          "WAL was written under a different RDF schema");
    }
  }
  {
    MutexLock lock(api_mu_);
    if (journal_ != nullptr) {
      return Status::InvalidArgument("durability already enabled");
    }
    if (!peers_.empty()) {
      return Status::InvalidArgument(
          "EnableDurability must run before AddPeer");
    }
    replaying_ = true;
  }
  // Replay outside api_mu_: the snapshot loader and each replayed entry
  // point take the lock themselves.
  Status replay = Status::OK();
  if (!rec.snapshot.empty()) {
    std::istringstream snap(rec.snapshot);
    replay = LoadSnapshot(snap);
  }
  if (replay.ok()) {
    for (const wal::WalRecord& record : rec.records) {
      replay = ReplayRecord(record);
      if (!replay.ok()) break;
    }
  }
  MutexLock lock(api_mu_);
  replaying_ = false;
  if (!replay.ok()) return replay;
  journal_ = std::move(journal);
  return Status::OK();
}

Status MetadataProvider::Checkpoint() {
  MutexLock lock(api_mu_);
  return CheckpointLocked();
}

Status MetadataProvider::CheckpointLocked() {
  if (journal_ == nullptr) {
    return Status::InvalidArgument("durability not enabled");
  }
  std::ostringstream out;
  MDV_RETURN_IF_ERROR(SaveSnapshotLocked(out));
  return journal_->Checkpoint(out.str());
}

Status MetadataProvider::JournalAppendLocked(uint8_t type,
                                             std::string payload) {
  if (journal_ == nullptr || replaying_ || journal_->options().read_only) {
    return Status::OK();
  }
  MDV_RETURN_IF_ERROR(journal_->Append(type, std::move(payload)));
  const wal::WalOptions& opts = journal_->options();
  if (opts.checkpoint_every > 0 &&
      journal_->appended_since_checkpoint() >= opts.checkpoint_every) {
    return CheckpointLocked();
  }
  return Status::OK();
}

Status MetadataProvider::ReplayRecord(const wal::WalRecord& record) {
  wal::PayloadReader reader(record.payload);
  switch (record.type) {
    case kWalMdpRegisterDocuments: {
      const uint32_t count = reader.ReadU32().value_or(0);
      std::vector<rdf::RdfDocument> docs;
      std::vector<pubsub::EntryVersion> stamps;
      docs.reserve(count);
      stamps.reserve(count);
      for (uint32_t i = 0; i < count && !reader.failed(); ++i) {
        const std::string uri = reader.ReadString().value_or("");
        const std::string xml = reader.ReadString().value_or("");
        pubsub::EntryVersion stamp;
        stamp.origin = reader.ReadU64().value_or(0);
        stamp.seq = reader.ReadU64().value_or(0);
        if (reader.failed()) break;
        MDV_ASSIGN_OR_RETURN(rdf::RdfDocument doc, rdf::ParseRdfXml(xml, uri));
        docs.push_back(std::move(doc));
        stamps.push_back(stamp);
      }
      if (!reader.Done()) {
        return Status::Internal("malformed journaled register record");
      }
      // The journaled stamps replay through the peer path so the
      // recovered MDP republishes the exact versions the original run
      // allocated.
      return RegisterDocumentBatchInternal(std::move(docs), Origin::kPeer,
                                           std::move(stamps));
    }
    case kWalMdpUpdateDocument: {
      const std::string uri = reader.ReadString().value_or("");
      const std::string xml = reader.ReadString().value_or("");
      pubsub::EntryVersion stamp;
      stamp.origin = reader.ReadU64().value_or(0);
      stamp.seq = reader.ReadU64().value_or(0);
      if (!reader.Done()) {
        return Status::Internal("malformed journaled update record");
      }
      MDV_ASSIGN_OR_RETURN(rdf::RdfDocument doc, rdf::ParseRdfXml(xml, uri));
      return UpdateDocumentInternal(std::move(doc), Origin::kPeer, stamp);
    }
    case kWalMdpDeleteDocument: {
      const std::string uri = reader.ReadString().value_or("");
      if (!reader.Done()) {
        return Status::Internal("malformed journaled delete record");
      }
      return DeleteDocumentInternal(uri, Origin::kPeer);
    }
    case kWalMdpSubscribe: {
      const int64_t lmr = reader.ReadI64().value_or(0);
      const int64_t id = reader.ReadI64().value_or(0);
      const std::string rule_text = reader.ReadString().value_or("");
      const std::string name = reader.ReadString().value_or("");
      if (!reader.Done()) {
        return Status::Internal("malformed journaled subscribe record");
      }
      MutexLock lock(api_mu_);
      MDV_ASSIGN_OR_RETURN(
          pubsub::SubscriptionId assigned,
          SubscribeLocked(lmr, rule_text, name, obs::SpanContext{}));
      // Id assignment is deterministic (a counter restored from the
      // snapshot), so replay must land on the journaled id — anything
      // else means the snapshot and log suffix disagree.
      if (assigned != id) {
        return Status::Internal("replayed subscription id diverged: journal " +
                                std::to_string(id) + ", replay " +
                                std::to_string(assigned));
      }
      return Status::OK();
    }
    case kWalMdpUnsubscribe: {
      const int64_t id = reader.ReadI64().value_or(0);
      if (!reader.Done()) {
        return Status::Internal("malformed journaled unsubscribe record");
      }
      return Unsubscribe(id);
    }
    case kWalMdpAddPeer: {
      const std::string peer_name = reader.ReadString().value_or("");
      if (!reader.Done()) {
        return Status::Internal("malformed journaled add-peer record");
      }
      MutexLock lock(api_mu_);
      if (std::find(recovered_peer_names_.begin(),
                    recovered_peer_names_.end(),
                    peer_name) == recovered_peer_names_.end()) {
        recovered_peer_names_.push_back(peer_name);
      }
      return Status::OK();
    }
    default:
      return Status::Internal("unknown MDP journal record type " +
                              std::to_string(static_cast<int>(record.type)));
  }
}

pubsub::EntryVersion MetadataProvider::VersionForReferenceLocked(
    const std::string& uri_reference) const {
  auto it = resource_versions_.find(uri_reference);
  return it == resource_versions_.end() ? pubsub::EntryVersion{} : it->second;
}

Status MetadataProvider::ServeSnapshot(
    const net::SnapshotRequestFrame& request) {
  obs::ScopedSpan span("mdp.serve_snapshot");
  span.AddAttribute("lmr", static_cast<int64_t>(request.lmr));
  span.AddAttribute("delta", request.delta ? "true" : "false");

  // What the joiner already holds, per URI reference. The per-entry
  // cursor (not the coarse per-origin vector) decides skips: peer
  // forwarding can reorder per-origin arrival across flows, so only an
  // entry-level comparison is sound.
  std::map<std::string, pubsub::EntryVersion> cursor;
  for (const net::SnapshotRequestFrame::CursorEntry& entry : request.cursor) {
    cursor[entry.uri_reference] = entry.version;
  }

  // Evaluate the LMR's subscriptions in one locked section — a
  // consistent-enough cut: anything that changes while chunks ship is
  // also in the joiner's live buffer (it attaches before requesting)
  // and gets replayed over the snapshot under LWW.
  pubsub::SnapshotManifest manifest;
  std::vector<std::string> to_ship;  // Unique root URIs, manifest order.
  {
    MutexLock lock(api_mu_);
    std::set<std::string> seen;
    for (const pubsub::Subscription* sub : registry_.ByLmr(request.lmr)) {
      MDV_ASSIGN_OR_RETURN(filter::FilterRunResult snap,
                           engine_->EvaluateNewRules({sub->end_rule_id}));
      pubsub::SnapshotManifestEntry entry;
      entry.subscription = sub->id;
      const std::vector<std::string>* matches =
          snap.MatchesFor(sub->end_rule_id);
      if (matches != nullptr) entry.uris = *matches;
      std::sort(entry.uris.begin(), entry.uris.end());
      for (const std::string& uri : entry.uris) {
        if (seen.insert(uri).second) to_ship.push_back(uri);
      }
      manifest.entries.push_back(std::move(entry));
    }
    // The per-origin high water of the served state; the joiner merges
    // it into its version vector (observability + fsck invariant).
    std::map<uint64_t, uint64_t> high;
    for (const auto& [uri, version] : resource_versions_) {
      uint64_t& seq = high[version.origin];
      seq = std::max(seq, version.seq);
    }
    for (const auto& [origin, seq] : high) {
      manifest.cursor.push_back(pubsub::EntryVersion{origin, seq});
    }
  }

  // Every serve gets its own ephemeral sender flow: chunk/done frames
  // ride the reliable link (FIFO, exactly-once) without perturbing live
  // publish flows, and a rebooted durable joiner never sees a sequence
  // gap — snapshot frames are not journaled, so reusing a long-lived
  // flow across a crash would strand its recovered dedup state.
  const uint64_t snapshot_sender = network_->RegisterSender();

  // Ship in chunks, relocking per batch so live publishes interleave
  // with the serve instead of stalling behind it.
  int64_t resources_shipped = 0;
  int64_t cursor_skipped = 0;
  uint64_t chunk_index = 0;
  size_t next = 0;
  while (next < to_ship.size()) {
    pubsub::Notification chunk;
    chunk.kind = pubsub::NotificationKind::kSnapshotChunk;
    chunk.lmr = request.lmr;
    chunk.snapshot_request = request.request_id;
    chunk.trace = span.context();
    {
      MutexLock lock(api_mu_);
      for (size_t batched = 0;
           next < to_ship.size() && batched < snapshot_chunk_resources_;
           ++next, ++batched) {
        const std::string& uri = to_ship[next];
        Result<std::vector<pubsub::TransmittedResource>> closure =
            publisher_->WithStrongClosure(uri);
        if (!closure.ok()) {
          // Deleted since the cut; the joiner's buffered kRemove (or the
          // manifest flag repair) settles it.
          continue;
        }
        for (pubsub::TransmittedResource& shipped : closure.value()) {
          if (request.delta) {
            // Per RESOURCE, not per matched root: a root can be on the
            // joiner's cursor while a closure member changed underneath
            // it (partial document update).
            const auto have = cursor.find(shipped.uri_reference);
            if (have != cursor.end() && shipped.version.seq != 0 &&
                !(have->second < shipped.version)) {
              ++cursor_skipped;  // Joiner already holds this revision.
              continue;
            }
          }
          ++resources_shipped;
          chunk.resources.push_back(std::move(shipped));
        }
      }
    }
    if (chunk.resources.empty()) continue;  // Whole batch skipped.
    chunk.chunk_index = chunk_index++;
    network_->Deliver(chunk, snapshot_sender);
  }

  manifest.total_chunks = chunk_index;
  pubsub::Notification done;
  done.kind = pubsub::NotificationKind::kSnapshotDone;
  done.lmr = request.lmr;
  done.snapshot_request = request.request_id;
  done.chunk_index = chunk_index;
  done.manifest = std::move(manifest);
  done.trace = span.context();
  network_->Deliver(done, snapshot_sender);

  span.AddAttribute("resources", resources_shipped);
  span.AddAttribute("skipped", cursor_skipped);
  obs::FlightRecorder::Default().Record(
      obs::FlightEventType::kReplCatchup, static_cast<int64_t>(request.lmr),
      resources_shipped, cursor_skipped);
  return Status::OK();
}

}  // namespace mdv
