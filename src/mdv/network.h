#ifndef MDV_MDV_NETWORK_H_
#define MDV_MDV_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>

#include "common/status.h"
#include "pubsub/notification.h"

namespace mdv {

/// Traffic counters of the simulated network.
struct NetworkStats {
  int64_t messages = 0;
  int64_t resources_shipped = 0;
  int64_t undeliverable = 0;
};

/// In-process stand-in for the Internet between MDPs and LMRs. Paper
/// deployments ship notifications over the network; here delivery is a
/// synchronous callback per LMR, which exercises the identical
/// publish/notify code paths deterministically (see DESIGN.md,
/// substitutions).
class Network {
 public:
  using Handler = std::function<void(const pubsub::Notification&)>;

  Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the delivery endpoint of an LMR.
  void Attach(pubsub::LmrId lmr, Handler handler);
  void Detach(pubsub::LmrId lmr);

  /// Delivers one notification to its LMR; counts it as undeliverable if
  /// no endpoint is attached.
  void Deliver(const pubsub::Notification& notification);

  /// Delivers a batch.
  void DeliverAll(const std::vector<pubsub::Notification>& notifications);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

 private:
  std::map<pubsub::LmrId, Handler> handlers_;
  NetworkStats stats_;
};

}  // namespace mdv

#endif  // MDV_MDV_NETWORK_H_
