#ifndef MDV_MDV_NETWORK_H_
#define MDV_MDV_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

#include "common/status.h"
#include "pubsub/notification.h"

namespace mdv {

/// Traffic counters of the simulated network.
struct NetworkStats {
  int64_t messages = 0;
  int64_t resources_shipped = 0;
  int64_t undeliverable = 0;
};

/// In-process stand-in for the Internet between MDPs and LMRs. Paper
/// deployments ship notifications over the network; here delivery is a
/// synchronous callback per LMR, which exercises the identical
/// publish/notify code paths deterministically (see DESIGN.md,
/// substitutions).
///
/// Thread-safe: Attach/Detach/Deliver/stats may be called concurrently
/// (multiple MDPs publishing from different threads share one network).
/// Handlers are invoked outside the lock, so a handler may re-enter the
/// network (e.g. attach another LMR); a handler racing its own Detach
/// may still receive one in-flight notification.
class Network {
 public:
  using Handler = std::function<void(const pubsub::Notification&)>;

  Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the delivery endpoint of an LMR.
  void Attach(pubsub::LmrId lmr, Handler handler);
  void Detach(pubsub::LmrId lmr);

  /// Delivers one notification to its LMR; counts it as undeliverable if
  /// no endpoint is attached.
  void Deliver(const pubsub::Notification& notification);

  /// Delivers a batch.
  void DeliverAll(const std::vector<pubsub::Notification>& notifications);

  /// Snapshot of the counters (by value — the live struct is guarded).
  NetworkStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = NetworkStats{};
  }

 private:
  mutable std::mutex mutex_;
  std::map<pubsub::LmrId, Handler> handlers_;  // Guarded by mutex_.
  NetworkStats stats_;                         // Guarded by mutex_.
};

}  // namespace mdv

#endif  // MDV_MDV_NETWORK_H_
