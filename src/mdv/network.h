#ifndef MDV_MDV_NETWORK_H_
#define MDV_MDV_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/reliable.h"
#include "net/transport.h"
#include "pubsub/notification.h"

namespace mdv {

/// Traffic counters of the simulated network.
struct NetworkStats {
  int64_t messages = 0;
  int64_t resources_shipped = 0;
  int64_t undeliverable = 0;
};

/// How the network moves notifications.
struct NetworkOptions {
  /// false (default): synchronous in-process delivery, deterministic —
  /// Deliver() invokes the LMR handler before returning. true: frames
  /// cross the asynchronous src/net transport (wire codec, bounded
  /// queues, at-least-once redelivery); call WaitQuiescent() before
  /// reading LMR state.
  bool asynchronous = false;
  net::TransportOptions transport;
  net::ReliableOptions reliability;
};

/// In-process stand-in for the Internet between MDPs and LMRs. Paper
/// deployments ship notifications over the network; this adapter offers
/// both fidelity levels (see DESIGN.md, Transport):
///
///  - synchronous mode (default): delivery is a direct callback per
///    LMR, exercising the identical publish/notify code paths
///    deterministically;
///  - asynchronous mode: every notification is encoded by the net wire
///    codec and shipped through bounded per-endpoint queues on worker
///    threads with at-least-once redelivery and sequence-number dedup,
///    optionally under injected loss/duplication/reordering/latency.
///
/// Thread-safe: Attach/Detach/Deliver/stats may be called concurrently
/// (multiple MDPs publishing from different threads share one network).
/// Handlers are invoked outside the lock, so a handler may re-enter the
/// network (e.g. attach another LMR). Detach linearizes against
/// in-flight delivery: once it returns, the detached handler is not
/// running and will never run again — except when a handler detaches
/// itself, where the guarantee holds from the handler's return.
class Network {
 public:
  using Handler = std::function<void(const pubsub::Notification&)>;

  explicit Network(NetworkOptions options = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  bool asynchronous() const { return async_ != nullptr; }

  /// Allocates a sender identity for one publishing MDP. Sequence
  /// numbers of the at-least-once protocol are per (sender, LMR) flow,
  /// so every MDP sharing a network must register itself. Synchronous
  /// networks hand out ids with no further effect.
  uint64_t RegisterSender() EXCLUDES(mutex_);

  /// Registers the delivery endpoint of an LMR. `durability` journals
  /// frames pre-ack and seeds crash-time flow state in asynchronous
  /// mode (see net::ReceiverDurability); synchronous delivery has no
  /// acks or retransmits, so it is ignored there (the LMR journals its
  /// applies itself).
  void Attach(pubsub::LmrId lmr, Handler handler,
              net::ReceiverDurability durability = {}) EXCLUDES(mutex_);
  void Detach(pubsub::LmrId lmr) EXCLUDES(mutex_);

  /// The at-least-once flow state of `lmr` for checkpointing — quiesce
  /// first (WaitQuiescent). Empty in synchronous mode, which has no
  /// flow state to persist.
  std::vector<net::FlowRestore> ReceiverFlowState(pubsub::LmrId lmr) const;

  /// Delivers one notification to its LMR; counts it as undeliverable
  /// if no endpoint is attached. `sender` identifies the publishing MDP
  /// flow (see RegisterSender); the default flow 0 is fine for tests
  /// and single-publisher setups.
  void Deliver(const pubsub::Notification& notification, uint64_t sender = 0)
      EXCLUDES(mutex_);

  /// Delivers a batch.
  void DeliverAll(const std::vector<pubsub::Notification>& notifications,
                  uint64_t sender = 0) EXCLUDES(mutex_);

  /// Blocks until every asynchronous delivery settled (acked or
  /// dead-lettered, queues drained, no handler running). Synchronous
  /// networks are always quiescent. After a true return, LMR caches
  /// fed by this network are safe to read from the calling thread.
  bool WaitQuiescent(int64_t timeout_us = 30'000'000);

  /// Snapshot of the counters (by value — the live struct is guarded).
  NetworkStats stats() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }
  void ResetStats() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    stats_ = NetworkStats{};
  }

  /// Delivery-protocol counters (asynchronous mode; zeros otherwise).
  net::LinkStats link_stats() const;
  /// Transport counters (asynchronous mode; zeros otherwise).
  net::TransportStats transport_stats() const;

  /// Deterministic per-frame fault schedule for tests (asynchronous
  /// mode only; no-op otherwise). See net::FaultInjector.
  void set_fault_schedule(net::FaultInjector::Schedule schedule);

  /// Handler for snapshot requests addressed to one sender (MDP). Runs
  /// on a transport worker in asynchronous mode, inline inside
  /// RequestSnapshot in synchronous mode; either way no network lock is
  /// held, so the server may publish chunks back through Deliver.
  using SnapshotServer = std::function<void(const net::SnapshotRequestFrame&)>;

  /// Binds `sender`'s snapshot control endpoint (replica join protocol).
  Status BindSnapshotServer(uint64_t sender, SnapshotServer server)
      EXCLUDES(mutex_);
  void UnbindSnapshotServer(uint64_t sender) EXCLUDES(mutex_);

  /// Sends one snapshot request to the control endpoint of
  /// `provider_sender`. Asynchronous mode ships it as a wire frame with
  /// no delivery guarantee — the joining LMR retries on timeout;
  /// synchronous mode serves inline before returning.
  Status RequestSnapshot(uint64_t provider_sender,
                         const net::SnapshotRequestFrame& request)
      EXCLUDES(mutex_);

 private:
  /// One synchronous endpoint: its handler plus the threads currently
  /// delivering to it, so Detach can wait out in-flight deliveries.
  struct Endpoint {
    Handler handler;
    /// Guarded by the owning Network's mutex_ (inexpressible as a
    /// GUARDED_BY, which cannot name another object's capability from
    /// a nested struct): threads currently inside this handler, so
    /// Detach can wait out in-flight deliveries.
    std::vector<std::thread::id> delivering;
  };

  struct Async {
    explicit Async(const NetworkOptions& options)
        : transport(options.transport), link(&transport, options.reliability) {}
    net::InProcessTransport transport;
    net::ReliableLink link;
  };

  void DeliverSync(const pubsub::Notification& notification)
      EXCLUDES(mutex_);
  void DeliverAsync(const pubsub::Notification& notification, uint64_t sender)
      EXCLUDES(mutex_);

  /// Held only around registry/counter updates — every handler runs
  /// outside it. MDP entry points (kMdpApi) deliver while holding their
  /// api lock, so the bus ranks just inside it.
  mutable Mutex mutex_{LockRank::kNetworkBus, "mdv.network"};
  CondVar detach_cv_;
  std::map<pubsub::LmrId, std::shared_ptr<Endpoint>> handlers_
      GUARDED_BY(mutex_);
  NetworkStats stats_ GUARDED_BY(mutex_);
  uint64_t next_sync_sender_ GUARDED_BY(mutex_) = 1;
  /// Synchronous-mode registry of snapshot servers (async mode binds
  /// them as transport control endpoints instead). shared_ptr so
  /// RequestSnapshot can invoke outside the lock.
  std::map<uint64_t, std::shared_ptr<SnapshotServer>> snapshot_servers_
      GUARDED_BY(mutex_);
  std::unique_ptr<Async> async_;  // Null in synchronous mode.
};

}  // namespace mdv

#endif  // MDV_MDV_NETWORK_H_
