#include "mdv/system.h"

namespace mdv {

MdvSystem::MdvSystem(rdf::RdfSchema schema,
                     filter::RuleStoreOptions rule_options,
                     NetworkOptions network_options,
                     filter::EngineOptions engine_options)
    : schema_(std::move(schema)), rule_options_(rule_options),
      engine_options_(engine_options), network_(std::move(network_options)) {}

MetadataProvider* MdvSystem::AddProvider() {
  auto provider = std::make_unique<MetadataProvider>(
      &schema_, &network_, rule_options_, engine_options_);
  MetadataProvider* raw = provider.get();
  // Deterministic name by backbone position, so journaled peer-mesh
  // records (kWalMdpAddPeer) mean the same thing across restarts.
  raw->set_name("mdp-" + std::to_string(providers_.size()));
  // Full mesh: every MDP replicates to every other (flat hierarchy with
  // full replication, §2.2).
  for (const auto& existing : providers_) {
    existing->AddPeer(raw);
    raw->AddPeer(existing.get());
  }
  providers_.push_back(std::move(provider));
  return raw;
}

LocalMetadataRepository* MdvSystem::AddRepository(
    MetadataProvider* provider) {
  if (provider == nullptr) {
    if (providers_.empty()) AddProvider();
    provider = providers_.front().get();
  }
  auto lmr = std::make_unique<LocalMetadataRepository>(
      next_lmr_id_++, &schema_, provider, &network_);
  LocalMetadataRepository* raw = lmr.get();
  repositories_.push_back(std::move(lmr));
  return raw;
}

Result<MetadataProvider*> MdvSystem::AddDurableProvider(
    const wal::WalOptions& options) {
  auto provider = std::make_unique<MetadataProvider>(
      &schema_, &network_, rule_options_, engine_options_);
  provider->set_name("mdp-" + std::to_string(providers_.size()));
  // Recover before meshing: EnableDurability refuses peered providers
  // because replay must not re-forward journaled registrations.
  MDV_RETURN_IF_ERROR(provider->EnableDurability(options));
  MetadataProvider* raw = provider.get();
  for (const auto& existing : providers_) {
    existing->AddPeer(raw);
    raw->AddPeer(existing.get());
  }
  providers_.push_back(std::move(provider));
  return raw;
}

Result<LocalMetadataRepository*> MdvSystem::AddDurableRepository(
    const wal::WalOptions& options, MetadataProvider* provider) {
  if (provider == nullptr) {
    if (providers_.empty()) AddProvider();
    provider = providers_.front().get();
  }
  // Ids are handed out in Add* call order; a restarted deployment must
  // re-add components in the same order so each durable LMR reattaches
  // under the id its journaled flow state was keyed by.
  MDV_ASSIGN_OR_RETURN(
      std::unique_ptr<LocalMetadataRepository> lmr,
      LocalMetadataRepository::OpenDurable(next_lmr_id_, &schema_, provider,
                                           &network_, options));
  ++next_lmr_id_;
  LocalMetadataRepository* raw = lmr.get();
  repositories_.push_back(std::move(lmr));
  return raw;
}

}  // namespace mdv
