#ifndef MDV_MDV_WAL_RECORDS_H_
#define MDV_MDV_WAL_RECORDS_H_

#include <cstdint>

namespace mdv {

/// Record-type bytes of the MDV durability journals (wal::Journal
/// segments). Type 0 is reserved for the journal's own MANIFEST
/// record; everything below is payload-level and owned by the MDP and
/// LMR recovery code in metadata_provider.cc / lmr.cc. mdv_fsck shares
/// these to walk images offline. Payload layouts use the wal little-
/// endian helpers (wal/record.h) and are documented at the append
/// sites.

// ---- MDP journal (manifest kind "mdp") ------------------------------
/// u32 count, then per document: uri string, RDF/XML string.
inline constexpr uint8_t kWalMdpRegisterDocuments = 2;
/// uri string, RDF/XML string (the new version).
inline constexpr uint8_t kWalMdpUpdateDocument = 3;
/// uri string.
inline constexpr uint8_t kWalMdpDeleteDocument = 4;
/// i64 lmr, i64 assigned subscription id, rule text string, name
/// string. Replay re-runs Subscribe and verifies it re-assigns the
/// journaled id (the registry's id counter is deterministic).
inline constexpr uint8_t kWalMdpSubscribe = 5;
/// i64 subscription id.
inline constexpr uint8_t kWalMdpUnsubscribe = 6;
/// Peer name string — one AddPeer edge of the replication mesh.
/// Replay collects the names (recovered_peer_names()) so deployment
/// code can re-wire the mesh deterministically instead of relying on
/// wiring order.
inline constexpr uint8_t kWalMdpAddPeer = 11;

// ---- LMR journal (manifest kind "lmr") ------------------------------
/// Raw net wire notify-frame bytes, exactly as received (async mode)
/// or self-framed with sender 0 and a local sequence (sync mode).
inline constexpr uint8_t kWalLmrApply = 7;
/// i64 subscription id (obtained from the MDP).
inline constexpr uint8_t kWalLmrSubscribe = 8;
/// i64 subscription id.
inline constexpr uint8_t kWalLmrUnsubscribe = 9;
/// uri string, RDF/XML string — a RegisterLocalDocument call.
inline constexpr uint8_t kWalLmrLocalDocument = 10;

// ---- LMR snapshot-internal records ----------------------------------
// An LMR snapshot is itself a concatenation of wal records (scanned
// with ScanWalBuffer), holding the cache image at checkpoint time.
/// u32 count, then i64 subscription ids.
inline constexpr uint8_t kWalLmrSnapSubscriptions = 20;
/// One cache entry: uri string, u8 local, u32 nsubs + i64 sub ids,
/// u64 version origin, u64 version seq, then the resource: local-id
/// string, class string, u32 nprops, per property: name string,
/// u8 is_reference, text string. Strong-ref target lists and counts
/// are re-derived from content on load.
inline constexpr uint8_t kWalLmrSnapCacheEntry = 21;
/// One at-least-once flow: u64 sender, u64 applied_through,
/// u32 n_holdback, per entry: u64 sequence, notify-frame string.
inline constexpr uint8_t kWalLmrSnapFlow = 22;
/// u64 next local (sync-mode self-journaling) sequence number.
inline constexpr uint8_t kWalLmrSnapLocalSeq = 23;
/// The replica's version vector: u32 count, per origin u64 origin id,
/// u64 high-water sequence. Invariant (checked by mdv_fsck): for every
/// persisted cache entry with a nonzero version, the vector's entry
/// for its origin must be >= the entry's sequence — a vector that
/// regresses against the cache would make delta catchup skip content
/// the replica does not actually have.
inline constexpr uint8_t kWalLmrSnapVersionVector = 24;

}  // namespace mdv

#endif  // MDV_MDV_WAL_RECORDS_H_
