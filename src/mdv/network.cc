#include "mdv/network.h"

namespace mdv {

void Network::Attach(pubsub::LmrId lmr, Handler handler) {
  handlers_[lmr] = std::move(handler);
}

void Network::Detach(pubsub::LmrId lmr) { handlers_.erase(lmr); }

void Network::Deliver(const pubsub::Notification& notification) {
  ++stats_.messages;
  stats_.resources_shipped +=
      static_cast<int64_t>(notification.resources.size());
  auto it = handlers_.find(notification.lmr);
  if (it == handlers_.end()) {
    ++stats_.undeliverable;
    return;
  }
  it->second(notification);
}

void Network::DeliverAll(
    const std::vector<pubsub::Notification>& notifications) {
  for (const pubsub::Notification& note : notifications) Deliver(note);
}

}  // namespace mdv
