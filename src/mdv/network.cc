#include "mdv/network.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdv {

namespace {

/// Registry handles of the (simulated) network, resolved once. These
/// aggregate across Network instances; Network::stats() remains the
/// per-instance view.
struct NetworkMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& messages = r.GetCounter("mdv.network.messages_total");
  obs::Counter& resources = r.GetCounter("mdv.network.resources_shipped_total");
  obs::Counter& undeliverable = r.GetCounter("mdv.network.undeliverable_total");
  obs::Histogram& deliver_us = r.GetHistogram("mdv.network.deliver_us");

  static NetworkMetrics& Get() {
    static NetworkMetrics& metrics = *new NetworkMetrics();
    return metrics;
  }
};

const char* KindName(pubsub::NotificationKind kind) {
  switch (kind) {
    case pubsub::NotificationKind::kInsert:
      return "insert";
    case pubsub::NotificationKind::kUpdate:
      return "update";
    case pubsub::NotificationKind::kRemove:
      return "remove";
    case pubsub::NotificationKind::kSnapshotChunk:
      return "snapshot_chunk";
    case pubsub::NotificationKind::kSnapshotDone:
      return "snapshot_done";
  }
  return "?";
}

}  // namespace

Network::Network(NetworkOptions options) {
  if (options.asynchronous) async_ = std::make_unique<Async>(options);
}

Network::~Network() = default;

uint64_t Network::RegisterSender() {
  if (async_ != nullptr) return async_->link.RegisterSender();
  MutexLock lock(mutex_);
  return next_sync_sender_++;
}

void Network::Attach(pubsub::LmrId lmr, Handler handler,
                     net::ReceiverDurability durability) {
  if (async_ != nullptr) {
    // In async mode the LMR handler runs on the endpoint's transport
    // thread, serially per LMR; the reliable link has already decoded,
    // deduplicated and ordered the notification stream.
    (void)async_->link.BindReceiver(lmr, std::move(handler),
                                    std::move(durability));
    return;
  }
  MutexLock lock(mutex_);
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->handler = std::move(handler);
  handlers_[lmr] = std::move(endpoint);
}

void Network::Detach(pubsub::LmrId lmr) {
  if (async_ != nullptr) {
    async_->link.UnbindReceiver(lmr);
    return;
  }
  MutexLock lock(mutex_);
  auto it = handlers_.find(lmr);
  if (it == handlers_.end()) return;
  std::shared_ptr<Endpoint> endpoint = std::move(it->second);
  handlers_.erase(it);
  // Linearize against in-flight delivery: wait until no *other* thread
  // is inside the handler. Deliveries by this thread are necessarily
  // re-entrant (the handler detaching itself) — waiting for those would
  // deadlock, and the guarantee then holds from the handler's return.
  const std::thread::id self = std::this_thread::get_id();
  while (std::any_of(
      endpoint->delivering.begin(), endpoint->delivering.end(),
      [&](const std::thread::id& id) { return id != self; })) {
    detach_cv_.Wait(mutex_);
  }
}

void Network::Deliver(const pubsub::Notification& notification,
                      uint64_t sender) {
  if (async_ != nullptr) {
    DeliverAsync(notification, sender);
    return;
  }
  DeliverSync(notification);
}

void Network::DeliverSync(const pubsub::Notification& notification) {
  NetworkMetrics& metrics = NetworkMetrics::Get();
  // Parent the delivery span to the correlation context carried on the
  // message (the originating MDP operation), falling back to this
  // thread's current span, so the whole publish → deliver → apply chain
  // is one trace.
  obs::ScopedSpan span("network.deliver", notification.trace,
                       &metrics.deliver_us);
  span.AddAttribute("lmr", static_cast<int64_t>(notification.lmr));
  span.AddAttribute("kind", KindName(notification.kind));
  span.AddAttribute("resources",
                    static_cast<int64_t>(notification.resources.size()));

  // Copy the handler out so it runs unlocked (it may re-enter the
  // network, and holding the lock across an arbitrary LMR callback
  // would serialize all deliveries). The endpoint's delivering list
  // keeps Detach honest about the in-flight call.
  Handler handler;
  std::shared_ptr<Endpoint> endpoint;
  {
    MutexLock lock(mutex_);
    ++stats_.messages;
    stats_.resources_shipped +=
        static_cast<int64_t>(notification.resources.size());
    auto it = handlers_.find(notification.lmr);
    if (it == handlers_.end()) {
      ++stats_.undeliverable;
    } else {
      endpoint = it->second;
      handler = endpoint->handler;
      endpoint->delivering.push_back(std::this_thread::get_id());
    }
  }
  metrics.messages.Increment();
  metrics.resources.Add(static_cast<int64_t>(notification.resources.size()));
  if (!handler) {
    metrics.undeliverable.Increment();
    span.AddAttribute("undeliverable", "true");
    return;
  }
  handler(notification);
  {
    MutexLock lock(mutex_);
    auto entry = std::find(endpoint->delivering.begin(),
                           endpoint->delivering.end(),
                           std::this_thread::get_id());
    if (entry != endpoint->delivering.end()) endpoint->delivering.erase(entry);
  }
  detach_cv_.NotifyAll();
}

void Network::DeliverAsync(const pubsub::Notification& notification,
                           uint64_t sender) {
  NetworkMetrics& metrics = NetworkMetrics::Get();
  {
    MutexLock lock(mutex_);
    ++stats_.messages;
    stats_.resources_shipped +=
        static_cast<int64_t>(notification.resources.size());
  }
  metrics.messages.Increment();
  metrics.resources.Add(static_cast<int64_t>(notification.resources.size()));
  const Status sent = async_->link.Publish(sender, notification);
  if (!sent.ok()) {
    MutexLock lock(mutex_);
    ++stats_.undeliverable;
    metrics.undeliverable.Increment();
  }
}

void Network::DeliverAll(
    const std::vector<pubsub::Notification>& notifications, uint64_t sender) {
  for (const pubsub::Notification& note : notifications) {
    Deliver(note, sender);
  }
}

std::vector<net::FlowRestore> Network::ReceiverFlowState(
    pubsub::LmrId lmr) const {
  if (async_ == nullptr) return {};
  return async_->link.ReceiverFlowState(lmr);
}

bool Network::WaitQuiescent(int64_t timeout_us) {
  if (async_ == nullptr) return true;
  return async_->link.WaitSettled(timeout_us);
}

net::LinkStats Network::link_stats() const {
  if (async_ == nullptr) return net::LinkStats{};
  return async_->link.stats();
}

net::TransportStats Network::transport_stats() const {
  if (async_ == nullptr) return net::TransportStats{};
  return async_->transport.stats();
}

void Network::set_fault_schedule(net::FaultInjector::Schedule schedule) {
  if (async_ == nullptr) return;
  async_->transport.set_fault_schedule(std::move(schedule));
}

Status Network::BindSnapshotServer(uint64_t sender, SnapshotServer server) {
  if (async_ != nullptr) {
    // The control endpoint is a plain transport endpoint: requests are
    // decoded on its worker thread and handed to the server, which
    // publishes chunks back through the reliable link (its dedicated
    // snapshot sender flow gives them ack/retransmit reliability).
    auto shared = std::make_shared<SnapshotServer>(std::move(server));
    return async_->transport.Bind(
        net::SnapshotControlEndpoint(sender), [shared](std::string frame) {
          Result<net::DecodedFrame> decoded = net::DecodeFrame(frame);
          if (!decoded.ok() ||
              decoded.value().type != net::FrameType::kSnapshotRequest) {
            return;  // Corrupt or misrouted; the joiner retries.
          }
          (*shared)(decoded.value().snapshot_request);
        });
  }
  MutexLock lock(mutex_);
  auto [it, inserted] = snapshot_servers_.emplace(
      sender, std::make_shared<SnapshotServer>(std::move(server)));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("snapshot server for sender " +
                                 std::to_string(sender) + " already bound");
  }
  return Status::OK();
}

void Network::UnbindSnapshotServer(uint64_t sender) {
  if (async_ != nullptr) {
    async_->transport.Unbind(net::SnapshotControlEndpoint(sender));
    return;
  }
  MutexLock lock(mutex_);
  snapshot_servers_.erase(sender);
}

Status Network::RequestSnapshot(uint64_t provider_sender,
                                const net::SnapshotRequestFrame& request) {
  if (async_ != nullptr) {
    // Fire-and-forget: the request frame itself is not retransmitted —
    // the joining LMR owns the retry loop (a lost request just times
    // the join attempt out).
    return async_->transport.Send(
        net::SnapshotControlEndpoint(provider_sender),
        net::EncodeSnapshotRequestFrame(request));
  }
  std::shared_ptr<SnapshotServer> server;
  {
    MutexLock lock(mutex_);
    auto it = snapshot_servers_.find(provider_sender);
    if (it != snapshot_servers_.end()) server = it->second;
  }
  if (server == nullptr) {
    return Status::NotFound("no snapshot server for sender " +
                            std::to_string(provider_sender));
  }
  // Serve inline, outside the bus lock: the server takes the provider
  // API lock in short sections and delivers chunks back through this
  // network.
  (*server)(request);
  return Status::OK();
}

}  // namespace mdv
