#include "mdv/network.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdv {

namespace {

/// Registry handles of the (simulated) network, resolved once. These
/// aggregate across Network instances; Network::stats() remains the
/// per-instance view.
struct NetworkMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& messages = r.GetCounter("mdv.network.messages_total");
  obs::Counter& resources = r.GetCounter("mdv.network.resources_shipped_total");
  obs::Counter& undeliverable = r.GetCounter("mdv.network.undeliverable_total");
  obs::Histogram& deliver_us = r.GetHistogram("mdv.network.deliver_us");

  static NetworkMetrics& Get() {
    static NetworkMetrics& metrics = *new NetworkMetrics();
    return metrics;
  }
};

const char* KindName(pubsub::NotificationKind kind) {
  switch (kind) {
    case pubsub::NotificationKind::kInsert:
      return "insert";
    case pubsub::NotificationKind::kUpdate:
      return "update";
    case pubsub::NotificationKind::kRemove:
      return "remove";
  }
  return "?";
}

}  // namespace

void Network::Attach(pubsub::LmrId lmr, Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_[lmr] = std::move(handler);
}

void Network::Detach(pubsub::LmrId lmr) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_.erase(lmr);
}

void Network::Deliver(const pubsub::Notification& notification) {
  NetworkMetrics& metrics = NetworkMetrics::Get();
  // Parent the delivery span to the correlation context carried on the
  // message (the originating MDP operation), falling back to this
  // thread's current span, so the whole publish → deliver → apply chain
  // is one trace.
  obs::ScopedSpan span("network.deliver", notification.trace,
                       &metrics.deliver_us);
  span.AddAttribute("lmr", static_cast<int64_t>(notification.lmr));
  span.AddAttribute("kind", KindName(notification.kind));
  span.AddAttribute("resources",
                    static_cast<int64_t>(notification.resources.size()));

  // Copy the handler out so it runs unlocked (it may re-enter the
  // network, and holding the lock across an arbitrary LMR callback
  // would serialize all deliveries).
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.messages;
    stats_.resources_shipped +=
        static_cast<int64_t>(notification.resources.size());
    auto it = handlers_.find(notification.lmr);
    if (it == handlers_.end()) {
      ++stats_.undeliverable;
    } else {
      handler = it->second;
    }
  }
  metrics.messages.Increment();
  metrics.resources.Add(static_cast<int64_t>(notification.resources.size()));
  if (!handler) {
    metrics.undeliverable.Increment();
    span.AddAttribute("undeliverable", "true");
    return;
  }
  handler(notification);
}

void Network::DeliverAll(
    const std::vector<pubsub::Notification>& notifications) {
  for (const pubsub::Notification& note : notifications) Deliver(note);
}

}  // namespace mdv
