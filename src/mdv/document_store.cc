#include "mdv/document_store.h"

namespace mdv {

Status DocumentStore::Add(rdf::RdfDocument document) {
  const std::string& uri = document.uri();
  if (uri.empty()) {
    return Status::InvalidArgument("document without URI");
  }
  if (documents_.count(uri) != 0) {
    return Status::AlreadyExists("document " + uri);
  }
  documents_.emplace(uri, std::move(document));
  return Status::OK();
}

Status DocumentStore::Replace(rdf::RdfDocument document) {
  auto it = documents_.find(document.uri());
  if (it == documents_.end()) {
    return Status::NotFound("document " + document.uri());
  }
  it->second = std::move(document);
  return Status::OK();
}

Status DocumentStore::Remove(const std::string& uri) {
  if (documents_.erase(uri) == 0) {
    return Status::NotFound("document " + uri);
  }
  return Status::OK();
}

const rdf::RdfDocument* DocumentStore::Find(const std::string& uri) const {
  auto it = documents_.find(uri);
  return it == documents_.end() ? nullptr : &it->second;
}

const rdf::Resource* DocumentStore::FindResource(
    const std::string& uri_reference) const {
  auto [doc_uri, local_id] = rdf::SplitUriReference(uri_reference);
  const rdf::RdfDocument* doc = Find(doc_uri);
  if (doc == nullptr) return nullptr;
  return doc->FindResource(local_id);
}

std::vector<std::string> DocumentStore::DocumentUris() const {
  std::vector<std::string> uris;
  uris.reserve(documents_.size());
  for (const auto& [uri, doc] : documents_) uris.push_back(uri);
  return uris;
}

}  // namespace mdv
