#ifndef MDV_MDV_SYSTEM_H_
#define MDV_MDV_SYSTEM_H_

#include <memory>
#include <vector>

#include "mdv/lmr.h"
#include "mdv/metadata_provider.h"
#include "mdv/network.h"
#include "rdf/schema.h"

namespace mdv {

/// Convenience wiring of a whole MDV deployment (Figure 2): a backbone
/// of fully replicating Metadata Providers, any number of Local Metadata
/// Repositories attached to them, and the simulated network in between.
/// Owns all components; the schema is shared by every tier.
class MdvSystem {
 public:
  /// `engine_options` applies to every AddProvider() (workers > 1 with
  /// a sharded rule store gives each MDP a parallel filter engine).
  explicit MdvSystem(rdf::RdfSchema schema,
                     filter::RuleStoreOptions rule_options = {},
                     NetworkOptions network_options = {},
                     filter::EngineOptions engine_options = {});

  MdvSystem(const MdvSystem&) = delete;
  MdvSystem& operator=(const MdvSystem&) = delete;

  /// Adds a backbone MDP; it is fully meshed with the existing ones so
  /// every registration replicates everywhere.
  MetadataProvider* AddProvider();

  /// Adds an LMR attached to `provider` (defaults to the first MDP).
  LocalMetadataRepository* AddRepository(MetadataProvider* provider = nullptr);

  /// Adds a backbone MDP whose state is journaled (and, on an existing
  /// directory, recovered) through a WAL — see
  /// MetadataProvider::EnableDurability. Recovery runs before the MDP
  /// is meshed with its peers, so replay forwards nothing.
  Result<MetadataProvider*> AddDurableProvider(const wal::WalOptions& options);

  /// Adds a durable LMR (see LocalMetadataRepository::OpenDurable),
  /// attached to `provider` (defaults to the first MDP).
  Result<LocalMetadataRepository*> AddDurableRepository(
      const wal::WalOptions& options, MetadataProvider* provider = nullptr);

  const rdf::RdfSchema& schema() const { return schema_; }
  Network& network() { return network_; }
  const std::vector<std::unique_ptr<MetadataProvider>>& providers() const {
    return providers_;
  }
  const std::vector<std::unique_ptr<LocalMetadataRepository>>& repositories()
      const {
    return repositories_;
  }

 private:
  rdf::RdfSchema schema_;
  filter::RuleStoreOptions rule_options_;
  filter::EngineOptions engine_options_;
  Network network_;
  std::vector<std::unique_ptr<MetadataProvider>> providers_;
  std::vector<std::unique_ptr<LocalMetadataRepository>> repositories_;
  pubsub::LmrId next_lmr_id_ = 1;
};

}  // namespace mdv

#endif  // MDV_MDV_SYSTEM_H_
