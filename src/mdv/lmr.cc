#include "mdv/lmr.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/logging.h"
#include "mdv/wal_records.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/parser.h"
#include "rdf/schema_io.h"
#include "rdf/writer.h"
#include "rules/evaluator.h"
#include "wal/record.h"

namespace mdv {

namespace {

/// Registry handles of the LMR cache layer, resolved once. Aggregated
/// across all LMRs of the process; per-instance counts stay on the
/// instance (gc_evictions()).
struct LmrMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& applied = r.GetCounter("mdv.lmr.notifications_applied_total");
  obs::Counter& evictions = r.GetCounter("mdv.lmr.gc_evictions_total");
  obs::Histogram& apply_us = r.GetHistogram("mdv.lmr.apply_us");
  /// Entries the most recent replica join had to stage — how far behind
  /// the joiner was when it (re)attached.
  obs::Gauge& lag_entries = r.GetGauge("mdv.repl.lag_entries");
  obs::Histogram& join_us = r.GetHistogram("mdv.repl.join_us");

  static LmrMetrics& Get() {
    static LmrMetrics& metrics = *new LmrMetrics();
    return metrics;
  }
};

}  // namespace

LocalMetadataRepository::LocalMetadataRepository(pubsub::LmrId id,
                                                 const rdf::RdfSchema* schema,
                                                 MetadataProvider* provider,
                                                 Network* network)
    : LocalMetadataRepository(DeferAttach{}, id, schema, provider, network) {
  AttachToNetwork({});
}

LocalMetadataRepository::LocalMetadataRepository(DeferAttach, pubsub::LmrId id,
                                                 const rdf::RdfSchema* schema,
                                                 MetadataProvider* provider,
                                                 Network* network)
    : id_(id), schema_(schema), provider_(provider), network_(network) {}

LocalMetadataRepository::~LocalMetadataRepository() {
  network_->Detach(id_);
}

void LocalMetadataRepository::AttachToNetwork(
    std::vector<net::FlowRestore> flows) {
  net::ReceiverDurability durability;
  if (journal_ != nullptr && network_->asynchronous() &&
      !journal_->options().read_only) {
    // The link journals every new frame BEFORE acking it and seeds the
    // recovered dedup state, which together make delivery exactly-once
    // across receiver crashes (see net::ReceiverJournal). Snapshot-
    // stream frames are the exception: they ride ephemeral per-serve
    // flows and a crashed join is abandoned and re-run, never replayed,
    // so journaling them would only bloat the log.
    wal::Journal* journal = journal_.get();
    durability.journal = [journal](const std::string& frame, uint64_t,
                                   uint64_t, pubsub::NotificationKind kind) {
      if (pubsub::IsSnapshotKind(kind)) return Status::OK();
      return journal->Append(kWalLmrApply, frame);
    };
    durability.flows = std::move(flows);
  }
  network_->Attach(
      id_,
      [this](const pubsub::Notification& note) { ApplyNotification(note); },
      std::move(durability));
}

Result<std::unique_ptr<LocalMetadataRepository>>
LocalMetadataRepository::OpenDurable(pubsub::LmrId id,
                                     const rdf::RdfSchema* schema,
                                     MetadataProvider* provider,
                                     Network* network,
                                     const wal::WalOptions& options) {
  wal::Manifest meta;
  meta.kind = "lmr";
  meta.schema_text = rdf::WriteSchemaText(*schema);
  MDV_ASSIGN_OR_RETURN(std::unique_ptr<wal::Journal> journal,
                       wal::Journal::Open(options, meta));
  const wal::RecoveryInfo& rec = journal->recovery();
  if (!rec.fresh && rec.manifest.schema_text != meta.schema_text) {
    return Status::InvalidArgument(
        "LMR WAL was written under a different RDF schema");
  }
  std::unique_ptr<LocalMetadataRepository> lmr(new LocalMetadataRepository(
      DeferAttach{}, id, schema, provider, network));
  lmr->journal_ = std::move(journal);
  std::map<uint64_t, net::FlowRestore> flows;
  Status recovered = Status::OK();
  {
    MutexLock lock(lmr->mu_);
    lmr->replaying_ = true;
    recovered = lmr->RecoverFromJournal(lmr->journal_->recovery(), &flows);
    lmr->replaying_ = false;
  }
  MDV_RETURN_IF_ERROR(recovered);
  std::vector<net::FlowRestore> flow_list;
  flow_list.reserve(flows.size());
  for (auto& [sender, flow] : flows) {
    flow.sender = sender;
    flow_list.push_back(std::move(flow));
  }
  lmr->AttachToNetwork(std::move(flow_list));
  return lmr;
}

Status LocalMetadataRepository::RecoverFromJournal(
    const wal::RecoveryInfo& rec, std::map<uint64_t, net::FlowRestore>* flows) {
  if (!rec.snapshot.empty()) {
    MDV_RETURN_IF_ERROR(LoadSnapshotRecords(rec.snapshot, flows));
  }
  for (const wal::WalRecord& record : rec.records) {
    wal::PayloadReader reader(record.payload);
    switch (record.type) {
      case kWalLmrApply:
        MDV_RETURN_IF_ERROR(ReplayApplyFrame(record.payload, flows));
        break;
      case kWalLmrSubscribe: {
        const int64_t id = reader.ReadI64().value_or(0);
        if (!reader.Done()) {
          return Status::Internal("malformed LMR subscribe record");
        }
        // The MDP side of the subscription recovers through the MDP's
        // own journal (or never crashed); only membership is ours.
        subscriptions_.insert(id);
        break;
      }
      case kWalLmrUnsubscribe: {
        const int64_t id = reader.ReadI64().value_or(0);
        if (!reader.Done()) {
          return Status::Internal("malformed LMR unsubscribe record");
        }
        subscriptions_.erase(id);
        for (auto& [uri, entry] : cache_) {
          entry.matched_subscriptions.erase(id);
        }
        CollectGarbage();
        break;
      }
      case kWalLmrLocalDocument: {
        const std::string uri = reader.ReadString().value_or("");
        const std::string xml = reader.ReadString().value_or("");
        if (!reader.Done()) {
          return Status::Internal("malformed LMR local-document record");
        }
        MDV_ASSIGN_OR_RETURN(rdf::RdfDocument doc, rdf::ParseRdfXml(xml, uri));
        MDV_RETURN_IF_ERROR(schema_->ValidateDocument(doc));
        for (const rdf::Resource* res : doc.resources()) {
          CacheEntry& entry = UpsertContent(
              doc.UriReferenceOf(res->local_id()), *res,
              pubsub::EntryVersion{});
          entry.local = true;
        }
        break;
      }
      default:
        return Status::Internal("unknown LMR journal record type " +
                                std::to_string(static_cast<int>(record.type)));
    }
  }
  RecountStrongReferrers();
  return Status::OK();
}

Status LocalMetadataRepository::ReplayApplyFrame(
    const std::string& frame_bytes,
    std::map<uint64_t, net::FlowRestore>* flows) {
  MDV_ASSIGN_OR_RETURN(net::DecodedFrame decoded,
                       net::DecodeFrame(frame_bytes));
  if (decoded.type != net::FrameType::kNotify) {
    return Status::Internal("journaled frame is not a notify frame");
  }
  const net::NotifyFrame& frame = decoded.notify;
  if (frame.sender == 0) {
    // Sync-mode self-journaled apply: sequence stamps are this LMR's
    // own monotonic counter, already in order and duplicate-free.
    next_local_seq_ = std::max(next_local_seq_, frame.sequence);
    ApplyNotificationLocked(frame.notification);
    return Status::OK();
  }
  // Async frame: re-run the link's dedup/hold-back decision so replay
  // applies exactly what the handler saw — journaled duplicates are
  // absorbed, out-of-order frames wait for their gap.
  net::FlowRestore& flow = (*flows)[frame.sender];
  if (frame.sequence <= flow.applied_through ||
      flow.holdback.count(frame.sequence) != 0) {
    return Status::OK();
  }
  flow.holdback.emplace(frame.sequence, frame.notification);
  auto next = flow.holdback.find(flow.applied_through + 1);
  while (next != flow.holdback.end()) {
    ApplyNotificationLocked(next->second);
    flow.applied_through = next->first;
    flow.holdback.erase(next);
    next = flow.holdback.find(flow.applied_through + 1);
  }
  return Status::OK();
}

Status LocalMetadataRepository::LoadSnapshotRecords(
    const std::string& snapshot, std::map<uint64_t, net::FlowRestore>* flows) {
  const wal::WalScan scan = wal::ScanWalBuffer(snapshot);
  if (scan.torn) {
    // Snapshots are installed atomically; a torn one means corruption,
    // not a crash artifact.
    return Status::Internal("corrupt LMR snapshot: " + scan.tail_error);
  }
  for (const wal::WalRecord& record : scan.records) {
    wal::PayloadReader reader(record.payload);
    switch (record.type) {
      case kWalLmrSnapSubscriptions: {
        const uint32_t count = reader.ReadU32().value_or(0);
        for (uint32_t i = 0; i < count && !reader.failed(); ++i) {
          subscriptions_.insert(reader.ReadI64().value_or(0));
        }
        break;
      }
      case kWalLmrSnapCacheEntry: {
        const std::string uri = reader.ReadString().value_or("");
        const bool local = reader.ReadU8().value_or(0) != 0;
        std::set<pubsub::SubscriptionId> matched;
        const uint32_t nsubs = reader.ReadU32().value_or(0);
        for (uint32_t i = 0; i < nsubs && !reader.failed(); ++i) {
          matched.insert(reader.ReadI64().value_or(0));
        }
        pubsub::EntryVersion version;
        version.origin = reader.ReadU64().value_or(0);
        version.seq = reader.ReadU64().value_or(0);
        const std::string local_id = reader.ReadString().value_or("");
        const std::string class_name = reader.ReadString().value_or("");
        rdf::Resource resource(local_id, class_name);
        const uint32_t nprops = reader.ReadU32().value_or(0);
        for (uint32_t i = 0; i < nprops && !reader.failed(); ++i) {
          const std::string name = reader.ReadString().value_or("");
          const bool is_ref = reader.ReadU8().value_or(0) != 0;
          const std::string text = reader.ReadString().value_or("");
          resource.AddProperty(name,
                               is_ref ? rdf::PropertyValue::ResourceRef(text)
                                      : rdf::PropertyValue::Literal(text));
        }
        if (reader.failed()) {
          return Status::Internal("malformed snapshot cache entry");
        }
        CacheEntry& entry = UpsertContent(uri, resource, version);
        entry.local = local;
        entry.matched_subscriptions = std::move(matched);
        break;
      }
      case kWalLmrSnapFlow: {
        const uint64_t sender = reader.ReadU64().value_or(0);
        net::FlowRestore& flow = (*flows)[sender];
        flow.sender = sender;
        flow.applied_through = reader.ReadU64().value_or(0);
        const uint32_t held = reader.ReadU32().value_or(0);
        for (uint32_t i = 0; i < held && !reader.failed(); ++i) {
          const uint64_t sequence = reader.ReadU64().value_or(0);
          const std::string frame = reader.ReadString().value_or("");
          if (reader.failed()) break;
          MDV_ASSIGN_OR_RETURN(net::DecodedFrame decoded,
                               net::DecodeFrame(frame));
          flow.holdback.emplace(sequence, decoded.notify.notification);
        }
        break;
      }
      case kWalLmrSnapLocalSeq:
        next_local_seq_ = reader.ReadU64().value_or(0);
        break;
      case kWalLmrSnapVersionVector: {
        const uint32_t count = reader.ReadU32().value_or(0);
        for (uint32_t i = 0; i < count && !reader.failed(); ++i) {
          const uint64_t origin = reader.ReadU64().value_or(0);
          const uint64_t seq = reader.ReadU64().value_or(0);
          uint64_t& high = version_vector_[origin];
          high = std::max(high, seq);
        }
        break;
      }
      default:
        return Status::Internal("unknown LMR snapshot record type " +
                                std::to_string(static_cast<int>(record.type)));
    }
    if (reader.failed()) {
      return Status::Internal("malformed LMR snapshot record type " +
                              std::to_string(static_cast<int>(record.type)));
    }
  }
  RecountStrongReferrers();
  return Status::OK();
}

std::string LocalMetadataRepository::BuildSnapshotLocked(
    const std::vector<net::FlowRestore>& flows) const {
  std::string snapshot;
  {
    std::string payload;
    wal::PutU32(payload, static_cast<uint32_t>(subscriptions_.size()));
    for (pubsub::SubscriptionId sub : subscriptions_) {
      wal::PutI64(payload, sub);
    }
    snapshot += wal::EncodeWalRecord(kWalLmrSnapSubscriptions, payload);
  }
  for (const auto& [uri, entry] : cache_) {
    std::string payload;
    wal::PutString(payload, uri);
    wal::PutU8(payload, entry.local ? 1 : 0);
    wal::PutU32(payload,
                static_cast<uint32_t>(entry.matched_subscriptions.size()));
    for (pubsub::SubscriptionId sub : entry.matched_subscriptions) {
      wal::PutI64(payload, sub);
    }
    wal::PutU64(payload, entry.version.origin);
    wal::PutU64(payload, entry.version.seq);
    wal::PutString(payload, entry.resource.local_id());
    wal::PutString(payload, entry.resource.class_name());
    wal::PutU32(payload,
                static_cast<uint32_t>(entry.resource.properties().size()));
    for (const rdf::Property& prop : entry.resource.properties()) {
      wal::PutString(payload, prop.name);
      wal::PutU8(payload, prop.value.is_resource_ref() ? 1 : 0);
      wal::PutString(payload, prop.value.text());
    }
    snapshot += wal::EncodeWalRecord(kWalLmrSnapCacheEntry, payload);
  }
  for (const net::FlowRestore& flow : flows) {
    // Snapshot-stream frames never persist: their per-serve flows are
    // ephemeral and an interrupted join restarts from scratch.
    std::vector<std::pair<uint64_t, const pubsub::Notification*>> held;
    for (const auto& [sequence, note] : flow.holdback) {
      if (pubsub::IsSnapshotKind(note.kind)) continue;
      held.emplace_back(sequence, &note);
    }
    std::string payload;
    wal::PutU64(payload, flow.sender);
    wal::PutU64(payload, flow.applied_through);
    wal::PutU32(payload, static_cast<uint32_t>(held.size()));
    for (const auto& [sequence, note] : held) {
      wal::PutU64(payload, sequence);
      net::NotifyFrame frame;
      frame.sender = flow.sender;
      frame.sequence = sequence;
      frame.notification = *note;
      wal::PutString(payload, net::EncodeNotifyFrame(frame));
    }
    snapshot += wal::EncodeWalRecord(kWalLmrSnapFlow, payload);
  }
  {
    std::string payload;
    wal::PutU64(payload, next_local_seq_);
    snapshot += wal::EncodeWalRecord(kWalLmrSnapLocalSeq, payload);
  }
  {
    std::string payload;
    wal::PutU32(payload, static_cast<uint32_t>(version_vector_.size()));
    for (const auto& [origin, seq] : version_vector_) {
      wal::PutU64(payload, origin);
      wal::PutU64(payload, seq);
    }
    snapshot += wal::EncodeWalRecord(kWalLmrSnapVersionVector, payload);
  }
  return snapshot;
}

Status LocalMetadataRepository::Checkpoint() {
  MutexLock lock(mu_);
  return CheckpointLocked();
}

Status LocalMetadataRepository::CheckpointLocked() {
  if (journal_ == nullptr) {
    return Status::InvalidArgument("durability not enabled");
  }
  // Copy the link's dedup state first; with the network quiesced this
  // is the exact complement of the cache image built next.
  const std::vector<net::FlowRestore> flows = network_->ReceiverFlowState(id_);
  return journal_->Checkpoint(BuildSnapshotLocked(flows));
}

Status LocalMetadataRepository::JournalAppendLocked(uint8_t type,
                                                    std::string payload) {
  if (journal_ == nullptr || replaying_ || journal_->options().read_only) {
    return Status::OK();
  }
  MDV_RETURN_IF_ERROR(journal_->Append(type, std::move(payload)));
  const wal::WalOptions& opts = journal_->options();
  if (opts.checkpoint_every > 0 &&
      journal_->appended_since_checkpoint() >= opts.checkpoint_every) {
    return CheckpointLocked();
  }
  return Status::OK();
}

Status LocalMetadataRepository::AuditCacheInvariants() const {
  MutexLock lock(mu_);
  for (const auto& [uri, entry] : cache_) {
    for (pubsub::SubscriptionId sub : entry.matched_subscriptions) {
      if (subscriptions_.count(sub) == 0) {
        return Status::Internal("cache entry " + uri +
                                " matched by unknown subscription " +
                                std::to_string(sub));
      }
    }
    if (schema_->FindClass(entry.resource.class_name()) == nullptr) {
      return Status::Internal("cache entry " + uri + " has unknown class " +
                              entry.resource.class_name());
    }
    std::vector<std::string> expected = StrongTargetsOf(entry.resource);
    std::vector<std::string> actual = entry.strong_targets;
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    if (expected != actual) {
      return Status::Internal("cache entry " + uri +
                              " strong-target list does not re-derive from "
                              "its content");
    }
    if (!entry.local && entry.matched_subscriptions.empty() &&
        entry.strong_referrers <= 0) {
      return Status::Internal("cache entry " + uri +
                              " is GC-dead but still resident");
    }
    // The version vector must cover every cached stamp — a vector that
    // regressed against the cache would make delta catchup skip content
    // the replica does not actually have.
    if (!(entry.version == pubsub::EntryVersion{})) {
      const auto it = version_vector_.find(entry.version.origin);
      if (it == version_vector_.end() || it->second < entry.version.seq) {
        return Status::Internal(
            "cache entry " + uri + " version (" +
            std::to_string(entry.version.origin) + "," +
            std::to_string(entry.version.seq) +
            ") not covered by the version vector");
      }
    }
  }
  // Re-derive every strong_referrers count from the target lists.
  std::map<std::string, int> counts;
  for (const auto& [uri, entry] : cache_) {
    for (const std::string& target : entry.strong_targets) {
      if (cache_.count(target) != 0) ++counts[target];
    }
  }
  for (const auto& [uri, entry] : cache_) {
    const auto it = counts.find(uri);
    const int expected = it == counts.end() ? 0 : it->second;
    if (entry.strong_referrers != expected) {
      return Status::Internal(
          "cache entry " + uri + " strong_referrers=" +
          std::to_string(entry.strong_referrers) + ", re-derived " +
          std::to_string(expected));
    }
  }
  return Status::OK();
}

Result<pubsub::SubscriptionId> LocalMetadataRepository::Subscribe(
    std::string_view rule_text, const std::string& name) {
  // The provider is called outside mu_ (its api lock ranks outside the
  // cache lock; synchronous seeding notifications re-enter our handler).
  MDV_ASSIGN_OR_RETURN(pubsub::SubscriptionId id,
                       provider_->Subscribe(id_, rule_text, name));
  MutexLock lock(mu_);
  subscriptions_.insert(id);
  std::string payload;
  wal::PutI64(payload, id);
  MDV_RETURN_IF_ERROR(JournalAppendLocked(kWalLmrSubscribe,
                                          std::move(payload)));
  return id;
}

Status LocalMetadataRepository::Unsubscribe(
    pubsub::SubscriptionId subscription) {
  MDV_RETURN_IF_ERROR(provider_->Unsubscribe(subscription));
  MutexLock lock(mu_);
  subscriptions_.erase(subscription);
  // Retract the subscription's matches locally and let the GC clean up.
  for (auto& [uri, entry] : cache_) {
    entry.matched_subscriptions.erase(subscription);
  }
  CollectGarbage();
  std::string payload;
  wal::PutI64(payload, subscription);
  return JournalAppendLocked(kWalLmrUnsubscribe, std::move(payload));
}

Status LocalMetadataRepository::JoinReplica(const JoinOptions& options) {
  if (provider_ == nullptr) {
    return Status::InvalidArgument(
        "LMR opened without a provider; joins are off-limits");
  }
  LmrMetrics& metrics = LmrMetrics::Get();
  obs::ScopedSpan span("lmr.join", &metrics.join_us);
  span.AddAttribute("lmr", static_cast<int64_t>(id_));
  span.AddAttribute("delta", options.delta ? "true" : "false");
  const int attempts = std::max(1, options.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    // Set up the join BEFORE the request leaves: every live
    // notification from here on is buffered, so anything the serve's
    // consistent cut misses is replayed over the snapshot at finalize.
    net::SnapshotRequestFrame request;
    request.provider = provider_->sender_id();
    request.lmr = id_;
    request.delta = options.delta;
    {
      MutexLock lock(mu_);
      if (join_ != nullptr) AbandonJoinLocked();
      request.request_id =
          ((static_cast<uint64_t>(id_) & 0xffffffff) << 32) |
          (++join_counter_ & 0xffffffff);
      for (const auto& [origin, seq] : version_vector_) {
        request.vector.push_back(pubsub::EntryVersion{origin, seq});
      }
      if (options.delta) {
        for (const auto& [uri, entry] : cache_) {
          if (entry.version == pubsub::EntryVersion{}) continue;
          net::SnapshotRequestFrame::CursorEntry cursor;
          cursor.uri_reference = uri;
          cursor.version = entry.version;
          request.cursor.push_back(std::move(cursor));
        }
      }
      auto state = std::make_unique<JoinState>();
      state->request_id = request.request_id;
      state->options = options;
      state->started_ns = obs::NowNs();
      join_ = std::move(state);
    }
    // Sent without holding mu_: synchronous networks serve inline, and
    // the chunk deliveries re-enter our handler.
    const Status sent =
        network_->RequestSnapshot(provider_->sender_id(), request);
    bool completed = false;
    {
      MutexLock lock(mu_);
      if (!sent.ok()) {
        AbandonJoinLocked();
        return sent;
      }
      const int64_t deadline_ns =
          obs::NowNs() + options.attempt_timeout_us * 1000;
      while (last_completed_request_id_ != request.request_id) {
        const int64_t remaining_us = (deadline_ns - obs::NowNs()) / 1000;
        if (remaining_us <= 0) break;
        join_cv_.WaitFor(mu_, remaining_us);
      }
      if (last_completed_request_id_ == request.request_id) {
        completed = true;
      } else {
        // Request or serve lost (fire-and-forget control channel):
        // abandon, replay what was buffered, retry with a fresh id.
        AbandonJoinLocked();
      }
    }
    if (completed) {
      if (journal_ != nullptr && !journal_->options().read_only) {
        // Fold the joined state into a compact snapshot so recovery
        // does not depend on re-running the join. Only safe quiesced —
        // the flow state copied by Checkpoint must not race in-flight
        // frames — so skip the fold (not the join) if the network
        // stays busy.
        if (network_->WaitQuiescent()) {
          MDV_RETURN_IF_ERROR(Checkpoint());
        }
      }
      return Status::OK();
    }
  }
  return Status::ResourceExhausted("replica join timed out after " +
                                   std::to_string(attempts) + " attempts");
}

Status LocalMetadataRepository::Refresh() {
  // Since the versioned-replica refactor a refresh IS a full join: pull
  // a complete snapshot, repair flags from its manifest, GC the rest.
  JoinOptions options;
  options.delta = false;
  return JoinReplica(options);
}

Status LocalMetadataRepository::RegisterLocalDocument(
    const rdf::RdfDocument& document) {
  MDV_RETURN_IF_ERROR(schema_->ValidateDocument(document));
  MutexLock lock(mu_);
  for (const rdf::Resource* res : document.resources()) {
    CacheEntry& entry =
        UpsertContent(document.UriReferenceOf(res->local_id()), *res,
                      pubsub::EntryVersion{});
    entry.local = true;
  }
  RecountStrongReferrers();
  std::string payload;
  wal::PutString(payload, document.uri());
  wal::PutString(payload, rdf::WriteRdfXml(document));
  return JournalAppendLocked(kWalLmrLocalDocument, std::move(payload));
}

std::vector<std::string> LocalMetadataRepository::StrongTargetsOf(
    const rdf::Resource& resource) const {
  std::vector<std::string> targets;
  for (const rdf::Property& prop : resource.properties()) {
    if (!prop.value.is_resource_ref()) continue;
    const rdf::PropertyDef* def =
        schema_->FindProperty(resource.class_name(), prop.name);
    if (def != nullptr && def->strength == rdf::RefStrength::kStrong) {
      targets.push_back(prop.value.text());
    }
  }
  return targets;
}

CacheEntry& LocalMetadataRepository::UpsertContent(
    const std::string& uri, const rdf::Resource& resource,
    pubsub::EntryVersion version) {
  // Counts are settled by RecountStrongReferrers() after every batch of
  // content changes; this only lands content and target lists.
  const bool versioned = !(version == pubsub::EntryVersion{});
  if (versioned) {
    uint64_t& high = version_vector_[version.origin];
    high = std::max(high, version.seq);
  }
  auto it = cache_.find(uri);
  if (it == cache_.end()) {
    CacheEntry entry;
    entry.resource = resource;
    entry.version = version;
    entry.strong_targets = StrongTargetsOf(resource);
    return cache_.emplace(uri, std::move(entry)).first->second;
  }
  CacheEntry& entry = it->second;
  if (versioned && version < entry.version) {
    // Stale write (reordered retransmit, snapshot older than a live
    // update already applied): last writer wins, content stays.
    return entry;
  }
  entry.resource = resource;
  if (versioned) entry.version = version;
  entry.strong_targets = StrongTargetsOf(resource);
  return entry;
}

void LocalMetadataRepository::ApplyNotification(
    const pubsub::Notification& note) {
  MutexLock lock(mu_);
  // In TTL mode pushed notifications are ignored; Refresh() is the only
  // consistency mechanism (§3.5's alternative). Snapshot-stream frames
  // pass — Refresh() itself is a join and needs them.
  if (mode_ == ConsistencyMode::kTimeToLive &&
      !pubsub::IsSnapshotKind(note.kind)) {
    return;
  }
  ApplyNotificationLocked(note);
}

void LocalMetadataRepository::ApplyNotificationLocked(
    const pubsub::Notification& note) {
  if (pubsub::IsSnapshotKind(note.kind)) {
    HandleSnapshotNotificationLocked(note);
    return;
  }
  if (journal_ != nullptr && !replaying_ && !suppress_apply_journal_ &&
      !network_->asynchronous() && !journal_->options().read_only) {
    // Synchronous delivery has no link-side journal hook, so the LMR
    // journals each apply itself, self-framed on the reserved sender 0
    // flow with its own sequence stamps. Journal-before-mutate: a crash
    // right after the append replays this very apply. Notifications
    // buffered during a join are journaled here, at arrival — the
    // deferred replay suppresses re-journaling.
    net::NotifyFrame frame;
    frame.sender = 0;
    frame.sequence = ++next_local_seq_;
    frame.notification = note;
    const Status journaled =
        journal_->Append(kWalLmrApply, net::EncodeNotifyFrame(frame));
    if (!journaled.ok()) {
      // The void apply path cannot refuse delivery; surface the gap
      // loudly — a Refresh()+Checkpoint() repairs it.
      MDV_LOG(Warning) << "lmr " << id_
                       << ": journal append failed, apply not persisted: "
                       << journaled.ToString();
    }
  }
  if (join_ != nullptr) {
    // Mid-join: hold the live stream back; it replays (in order) over
    // the merged snapshot at finalize, where the LWW guards absorb
    // anything the snapshot already covered.
    join_->buffered.push_back(note);
    return;
  }
  LmrMetrics& metrics = LmrMetrics::Get();
  // Parent to the message's correlation context (the originating MDP
  // operation) so the apply lands in the publisher's trace even when it
  // runs outside a delivery call chain — join replay applies buffered
  // notifications after the delivery span has closed.
  obs::ScopedSpan span("lmr.apply_notification", note.trace,
                       &metrics.apply_us);
  span.AddAttribute("lmr", static_cast<int64_t>(id_));
  span.AddAttribute("resources", static_cast<int64_t>(note.resources.size()));
  obs::FlightRecorder::Default().Record(
      obs::FlightEventType::kApply, static_cast<int64_t>(id_),
      static_cast<int64_t>(note.resources.size()),
      static_cast<int64_t>(note.trace.trace_id));
  metrics.applied.Increment();
  const int64_t evictions_before = gc_evictions_;
  switch (note.kind) {
    case pubsub::NotificationKind::kInsert: {
      // First land all contents (closure members may be referenced
      // before they appear in the list), then settle match flags.
      for (const pubsub::TransmittedResource& shipped : note.resources) {
        UpsertContent(shipped.uri_reference, shipped.resource,
                      shipped.version);
      }
      RecountStrongReferrers();
      for (const pubsub::TransmittedResource& shipped : note.resources) {
        if (shipped.via_strong_reference) continue;
        auto it = cache_.find(shipped.uri_reference);
        if (it != cache_.end() && note.subscription >= 0) {
          it->second.matched_subscriptions.insert(note.subscription);
        }
      }
      break;
    }
    case pubsub::NotificationKind::kUpdate: {
      // Apply only to resources this LMR actually caches.
      for (const pubsub::TransmittedResource& shipped : note.resources) {
        if (cache_.count(shipped.uri_reference) != 0) {
          UpsertContent(shipped.uri_reference, shipped.resource,
                        shipped.version);
        }
      }
      RecountStrongReferrers();
      CollectGarbage();
      break;
    }
    case pubsub::NotificationKind::kRemove: {
      for (const pubsub::TransmittedResource& shipped : note.resources) {
        auto it = cache_.find(shipped.uri_reference);
        if (it != cache_.end() && note.subscription >= 0) {
          it->second.matched_subscriptions.erase(note.subscription);
        }
      }
      CollectGarbage();
      break;
    }
    case pubsub::NotificationKind::kSnapshotChunk:
    case pubsub::NotificationKind::kSnapshotDone:
      break;  // Handled above.
  }
  metrics.evictions.Add(gc_evictions_ - evictions_before);
  span.AddAttribute("evictions", gc_evictions_ - evictions_before);
}

void LocalMetadataRepository::HandleSnapshotNotificationLocked(
    const pubsub::Notification& note) {
  if (join_ == nullptr || note.snapshot_request != join_->request_id) {
    // No join in flight, or a stale serve from an abandoned attempt
    // (its chunks keep arriving on the old ephemeral flow): drop.
    return;
  }
  if (note.kind == pubsub::NotificationKind::kSnapshotChunk) {
    for (const pubsub::TransmittedResource& shipped : note.resources) {
      auto it = join_->staged.find(shipped.uri_reference);
      if (it == join_->staged.end() ||
          !(shipped.version < it->second.second)) {
        join_->staged[shipped.uri_reference] = {shipped.resource,
                                                shipped.version};
      }
    }
    ++join_->chunks_received;
  } else {
    join_->done_received = true;
    join_->manifest = note.manifest;
    join_->manifest_trace = note.trace;
  }
  // The serve's flow is FIFO, so Done normally arrives last; the guard
  // also covers pathological reorderings across codec boundaries.
  if (join_->done_received &&
      join_->chunks_received >= join_->manifest.total_chunks) {
    FinalizeJoinLocked();
  }
}

void LocalMetadataRepository::FinalizeJoinLocked() {
  JoinState& join = *join_;
  const int64_t staged_entries = static_cast<int64_t>(join.staged.size());
  const int64_t chunks = static_cast<int64_t>(join.chunks_received);
  // The merge/repair work joins the MDP serve's trace (carried on the
  // Done note) so snapshot application correlates with the serve that
  // produced it, mirroring lmr.apply_notification for live pushes.
  obs::ScopedSpan span("lmr.finalize_join", join.manifest_trace);
  span.AddAttribute("staged", staged_entries);
  span.AddAttribute("chunks", chunks);
  // 1. Merge the staged snapshot under LWW: entries the live stream
  // already advanced past keep their newer content.
  for (const auto& [uri, staged] : join.staged) {
    UpsertContent(uri, staged.first, staged.second);
  }
  // 2. Repair match flags exactly per the manifest — only for the
  // subscriptions it lists (and that we still hold); local metadata and
  // foreign subscriptions are untouched.
  for (const pubsub::SnapshotManifestEntry& entry : join.manifest.entries) {
    if (subscriptions_.count(entry.subscription) == 0) continue;
    const std::set<std::string> matches(entry.uris.begin(),
                                        entry.uris.end());
    for (auto& [uri, cached] : cache_) {
      if (matches.count(uri) != 0) {
        cached.matched_subscriptions.insert(entry.subscription);
      } else {
        cached.matched_subscriptions.erase(entry.subscription);
      }
    }
  }
  // 3. Adopt the served state's per-origin high water.
  for (const pubsub::EntryVersion& v : join.manifest.cursor) {
    uint64_t& high = version_vector_[v.origin];
    high = std::max(high, v.seq);
  }
  RecountStrongReferrers();
  CollectGarbage();
  LmrMetrics& metrics = LmrMetrics::Get();
  metrics.lag_entries.Set(staged_entries);
  metrics.join_us.Record((obs::NowNs() - join.started_ns) / 1000);
  obs::FlightRecorder::Default().Record(
      obs::FlightEventType::kReplJoin, static_cast<int64_t>(id_), chunks,
      staged_entries);
  // 4. Replay the buffered live suffix in arrival order; LWW absorbs
  // whatever the snapshot already covered, flag operations re-apply
  // idempotently.
  std::vector<pubsub::Notification> buffered = std::move(join.buffered);
  const uint64_t request_id = join.request_id;
  join_.reset();
  ReplayBufferedLocked(std::move(buffered));
  last_completed_request_id_ = request_id;
  ++joins_completed_;
  join_cv_.NotifyAll();
}

void LocalMetadataRepository::AbandonJoinLocked() {
  if (join_ == nullptr) return;
  std::vector<pubsub::Notification> buffered = std::move(join_->buffered);
  join_.reset();
  // Nothing staged is lost — it was never applied — but the buffered
  // live stream must land or the replica silently drops updates.
  ReplayBufferedLocked(std::move(buffered));
}

void LocalMetadataRepository::ReplayBufferedLocked(
    std::vector<pubsub::Notification> notes) {
  const bool previous = suppress_apply_journal_;
  suppress_apply_journal_ = true;  // Journaled when they arrived.
  for (const pubsub::Notification& note : notes) {
    ApplyNotificationLocked(note);
  }
  suppress_apply_journal_ = previous;
}

void LocalMetadataRepository::RecountStrongReferrers() {
  for (auto& [uri, entry] : cache_) entry.strong_referrers = 0;
  for (auto& [uri, entry] : cache_) {
    for (const std::string& target : entry.strong_targets) {
      auto it = cache_.find(target);
      if (it != cache_.end()) ++it->second.strong_referrers;
    }
  }
}

void LocalMetadataRepository::CollectGarbage() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = cache_.begin(); it != cache_.end();) {
      CacheEntry& entry = it->second;
      if (!entry.local && entry.matched_subscriptions.empty() &&
          entry.strong_referrers <= 0) {
        // Retract this entry's outgoing strong references, then evict.
        for (const std::string& target : entry.strong_targets) {
          auto tit = cache_.find(target);
          if (tit != cache_.end()) --tit->second.strong_referrers;
        }
        it = cache_.erase(it);
        ++gc_evictions_;
        changed = true;
      } else {
        ++it;
      }
    }
  }
}

const CacheEntry* LocalMetadataRepository::Find(
    const std::string& uri_reference) const {
  MutexLock lock(mu_);
  auto it = cache_.find(uri_reference);
  return it == cache_.end() ? nullptr : &it->second;
}

std::vector<std::string> LocalMetadataRepository::CachedUris() const {
  MutexLock lock(mu_);
  std::vector<std::string> uris;
  uris.reserve(cache_.size());
  for (const auto& [uri, entry] : cache_) uris.push_back(uri);
  return uris;
}

Result<std::vector<QueryMatch>> LocalMetadataRepository::Query(
    std::string_view query_text) const {
  MutexLock lock(mu_);
  // The query language shares the rule language's syntax and semantics
  // (§2.2); evaluation runs against locally available metadata only.
  rules::ResourceMap resources;
  for (const auto& [uri, entry] : cache_) {
    resources.emplace(uri, &entry.resource);
  }
  MDV_ASSIGN_OR_RETURN(
      std::vector<std::string> uris,
      rules::EvaluateRuleText(query_text, *schema_, resources));
  std::vector<QueryMatch> out;
  out.reserve(uris.size());
  for (const std::string& uri : uris) {
    out.push_back(QueryMatch{uri, resources.at(uri)});
  }
  return out;
}

}  // namespace mdv
