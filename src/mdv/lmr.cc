#include "mdv/lmr.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rules/evaluator.h"

namespace mdv {

namespace {

/// Registry handles of the LMR cache layer, resolved once. Aggregated
/// across all LMRs of the process; per-instance counts stay on the
/// instance (gc_evictions()).
struct LmrMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& applied = r.GetCounter("mdv.lmr.notifications_applied_total");
  obs::Counter& evictions = r.GetCounter("mdv.lmr.gc_evictions_total");
  obs::Histogram& apply_us = r.GetHistogram("mdv.lmr.apply_us");

  static LmrMetrics& Get() {
    static LmrMetrics& metrics = *new LmrMetrics();
    return metrics;
  }
};

}  // namespace

LocalMetadataRepository::LocalMetadataRepository(pubsub::LmrId id,
                                                 const rdf::RdfSchema* schema,
                                                 MetadataProvider* provider,
                                                 Network* network)
    : id_(id), schema_(schema), provider_(provider), network_(network) {
  network_->Attach(id_, [this](const pubsub::Notification& note) {
    ApplyNotification(note);
  });
}

LocalMetadataRepository::~LocalMetadataRepository() {
  network_->Detach(id_);
}

Result<pubsub::SubscriptionId> LocalMetadataRepository::Subscribe(
    std::string_view rule_text, const std::string& name) {
  MDV_ASSIGN_OR_RETURN(pubsub::SubscriptionId id,
                       provider_->Subscribe(id_, rule_text, name));
  subscriptions_.insert(id);
  return id;
}

Status LocalMetadataRepository::Unsubscribe(
    pubsub::SubscriptionId subscription) {
  MDV_RETURN_IF_ERROR(provider_->Unsubscribe(subscription));
  subscriptions_.erase(subscription);
  // Retract the subscription's matches locally and let the GC clean up.
  for (auto& [uri, entry] : cache_) {
    entry.matched_subscriptions.erase(subscription);
  }
  CollectGarbage();
  return Status::OK();
}

Status LocalMetadataRepository::Refresh() {
  // Pull snapshots first so a failing subscription leaves the cache
  // untouched.
  std::vector<pubsub::Notification> snapshots;
  for (pubsub::SubscriptionId sub : subscriptions_) {
    MDV_ASSIGN_OR_RETURN(pubsub::Notification snapshot,
                         provider_->SnapshotSubscription(sub));
    snapshots.push_back(std::move(snapshot));
  }
  // Drop all match bookkeeping; snapshot application rebuilds it and the
  // GC evicts whatever stopped matching.
  for (auto& [uri, entry] : cache_) {
    entry.matched_subscriptions.clear();
  }
  for (const pubsub::Notification& snapshot : snapshots) {
    // Apply directly (bypasses the TTL push gate).
    ApplyNotificationInternal(snapshot);
  }
  CollectGarbage();
  return Status::OK();
}

Status LocalMetadataRepository::RegisterLocalDocument(
    const rdf::RdfDocument& document) {
  MDV_RETURN_IF_ERROR(schema_->ValidateDocument(document));
  for (const rdf::Resource* res : document.resources()) {
    CacheEntry& entry =
        UpsertContent(document.UriReferenceOf(res->local_id()), *res);
    entry.local = true;
  }
  RecountStrongReferrers();
  return Status::OK();
}

std::vector<std::string> LocalMetadataRepository::StrongTargetsOf(
    const rdf::Resource& resource) const {
  std::vector<std::string> targets;
  for (const rdf::Property& prop : resource.properties()) {
    if (!prop.value.is_resource_ref()) continue;
    const rdf::PropertyDef* def =
        schema_->FindProperty(resource.class_name(), prop.name);
    if (def != nullptr && def->strength == rdf::RefStrength::kStrong) {
      targets.push_back(prop.value.text());
    }
  }
  return targets;
}

CacheEntry& LocalMetadataRepository::UpsertContent(
    const std::string& uri, const rdf::Resource& resource) {
  // Counts are settled by RecountStrongReferrers() after every batch of
  // content changes; this only lands content and target lists.
  auto it = cache_.find(uri);
  if (it == cache_.end()) {
    CacheEntry entry;
    entry.resource = resource;
    entry.strong_targets = StrongTargetsOf(resource);
    return cache_.emplace(uri, std::move(entry)).first->second;
  }
  it->second.resource = resource;
  it->second.strong_targets = StrongTargetsOf(resource);
  return it->second;
}

void LocalMetadataRepository::ApplyNotification(
    const pubsub::Notification& note) {
  // In TTL mode pushed notifications are ignored; Refresh() is the only
  // consistency mechanism (§3.5's alternative).
  if (mode_ == ConsistencyMode::kTimeToLive) return;
  ApplyNotificationInternal(note);
}

void LocalMetadataRepository::ApplyNotificationInternal(
    const pubsub::Notification& note) {
  LmrMetrics& metrics = LmrMetrics::Get();
  // Parent to the message's correlation context (the originating MDP
  // operation) so the apply lands in the publisher's trace even when it
  // runs outside a delivery call chain — Refresh() applies snapshot
  // notifications directly, after the snapshot span has closed.
  obs::ScopedSpan span("lmr.apply_notification", note.trace,
                       &metrics.apply_us);
  span.AddAttribute("lmr", static_cast<int64_t>(id_));
  span.AddAttribute("resources", static_cast<int64_t>(note.resources.size()));
  obs::FlightRecorder::Default().Record(
      obs::FlightEventType::kApply, static_cast<int64_t>(id_),
      static_cast<int64_t>(note.resources.size()),
      static_cast<int64_t>(note.trace.trace_id));
  metrics.applied.Increment();
  const int64_t evictions_before = gc_evictions_;
  switch (note.kind) {
    case pubsub::NotificationKind::kInsert: {
      // First land all contents (closure members may be referenced
      // before they appear in the list), then settle match flags.
      for (const pubsub::TransmittedResource& shipped : note.resources) {
        UpsertContent(shipped.uri_reference, shipped.resource);
      }
      RecountStrongReferrers();
      for (const pubsub::TransmittedResource& shipped : note.resources) {
        if (shipped.via_strong_reference) continue;
        auto it = cache_.find(shipped.uri_reference);
        if (it != cache_.end() && note.subscription >= 0) {
          it->second.matched_subscriptions.insert(note.subscription);
        }
      }
      break;
    }
    case pubsub::NotificationKind::kUpdate: {
      // Apply only to resources this LMR actually caches.
      for (const pubsub::TransmittedResource& shipped : note.resources) {
        if (shipped.via_strong_reference) {
          // Closure members of an update: refresh if cached.
          if (cache_.count(shipped.uri_reference) != 0) {
            UpsertContent(shipped.uri_reference, shipped.resource);
          }
        } else if (cache_.count(shipped.uri_reference) != 0) {
          UpsertContent(shipped.uri_reference, shipped.resource);
        }
      }
      RecountStrongReferrers();
      CollectGarbage();
      break;
    }
    case pubsub::NotificationKind::kRemove: {
      for (const pubsub::TransmittedResource& shipped : note.resources) {
        auto it = cache_.find(shipped.uri_reference);
        if (it != cache_.end() && note.subscription >= 0) {
          it->second.matched_subscriptions.erase(note.subscription);
        }
      }
      CollectGarbage();
      break;
    }
  }
  metrics.evictions.Add(gc_evictions_ - evictions_before);
  span.AddAttribute("evictions", gc_evictions_ - evictions_before);
}

void LocalMetadataRepository::RecountStrongReferrers() {
  for (auto& [uri, entry] : cache_) entry.strong_referrers = 0;
  for (auto& [uri, entry] : cache_) {
    for (const std::string& target : entry.strong_targets) {
      auto it = cache_.find(target);
      if (it != cache_.end()) ++it->second.strong_referrers;
    }
  }
}

void LocalMetadataRepository::CollectGarbage() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = cache_.begin(); it != cache_.end();) {
      CacheEntry& entry = it->second;
      if (!entry.local && entry.matched_subscriptions.empty() &&
          entry.strong_referrers <= 0) {
        // Retract this entry's outgoing strong references, then evict.
        for (const std::string& target : entry.strong_targets) {
          auto tit = cache_.find(target);
          if (tit != cache_.end()) --tit->second.strong_referrers;
        }
        it = cache_.erase(it);
        ++gc_evictions_;
        changed = true;
      } else {
        ++it;
      }
    }
  }
}

const CacheEntry* LocalMetadataRepository::Find(
    const std::string& uri_reference) const {
  auto it = cache_.find(uri_reference);
  return it == cache_.end() ? nullptr : &it->second;
}

std::vector<std::string> LocalMetadataRepository::CachedUris() const {
  std::vector<std::string> uris;
  uris.reserve(cache_.size());
  for (const auto& [uri, entry] : cache_) uris.push_back(uri);
  return uris;
}

Result<std::vector<QueryMatch>> LocalMetadataRepository::Query(
    std::string_view query_text) const {
  // The query language shares the rule language's syntax and semantics
  // (§2.2); evaluation runs against locally available metadata only.
  rules::ResourceMap resources;
  for (const auto& [uri, entry] : cache_) {
    resources.emplace(uri, &entry.resource);
  }
  MDV_ASSIGN_OR_RETURN(
      std::vector<std::string> uris,
      rules::EvaluateRuleText(query_text, *schema_, resources));
  std::vector<QueryMatch> out;
  out.reserve(uris.size());
  for (const std::string& uri : uris) {
    out.push_back(QueryMatch{uri, resources.at(uri)});
  }
  return out;
}

}  // namespace mdv
