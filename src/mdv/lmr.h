#ifndef MDV_MDV_LMR_H_
#define MDV_MDV_LMR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "mdv/metadata_provider.h"
#include "net/reliable.h"
#include "pubsub/notification.h"
#include "rdf/schema.h"
#include "wal/log.h"

namespace mdv {

/// One entry of an LMR's cache: the resource content plus the two
/// reference counts driving the garbage collector (§2.4): the set of
/// subscriptions whose rules match the resource, and the number of
/// cached resources strongly referencing it.
struct CacheEntry {
  rdf::Resource resource;
  std::set<pubsub::SubscriptionId> matched_subscriptions;
  int strong_referrers = 0;
  /// Local metadata is never forwarded to the backbone and never
  /// garbage-collected (§2.2).
  bool local = false;
  /// Outgoing strong-reference targets (uri references), tracked so
  /// updates and evictions can adjust the targets' counts.
  std::vector<std::string> strong_targets;
};

/// Result row of an LMR query: a cached resource with its uri.
struct QueryMatch {
  std::string uri_reference;
  const rdf::Resource* resource = nullptr;
};

/// How an LMR keeps its cache consistent with the backbone.
enum class ConsistencyMode {
  /// Publish & subscribe: the MDP pushes inserts/updates/removals (the
  /// paper's main mechanism).
  kNotifications,
  /// Time-to-live: pushes are ignored; the cache is refreshed wholesale
  /// by periodic Refresh() calls (the alternative §3.5 mentions —
  /// "periodical cache invalidation, based on a time-to-live approach").
  kTimeToLive,
};

/// A Local Metadata Repository (§2.2): caches the subset of the global
/// metadata selected by its subscription rules, keeps the cache
/// consistent by applying publish notifications, stores private local
/// metadata, and answers declarative queries from locally available
/// metadata only (no communication across the Internet).
class LocalMetadataRepository {
 public:
  /// Attaches to `provider` via `network`. Ids must be unique per
  /// network. All pointers must outlive the LMR.
  LocalMetadataRepository(pubsub::LmrId id, const rdf::RdfSchema* schema,
                          MetadataProvider* provider, Network* network);
  ~LocalMetadataRepository();

  /// Opens (or recovers) a durable LMR: the cache, the subscription id
  /// set and the delivery dedup state (net::FlowRestore per sender)
  /// live in a WAL under `options.dir` and survive kill -9. On an
  /// existing directory the snapshot and log suffix are replayed before
  /// the LMR attaches to the network, and the recovered flow state is
  /// handed to the reliable link so retransmits of already-applied
  /// notifications are absorbed instead of re-applied (exactly-once
  /// across the crash). In asynchronous mode every arriving frame is
  /// journaled pre-ack by the link; in synchronous mode the LMR
  /// self-journals each apply. `provider` may be null for offline
  /// inspection (mdv_fsck) — subscription calls and Refresh() are then
  /// off-limits.
  static Result<std::unique_ptr<LocalMetadataRepository>> OpenDurable(
      pubsub::LmrId id, const rdf::RdfSchema* schema,
      MetadataProvider* provider, Network* network,
      const wal::WalOptions& options);

  LocalMetadataRepository(const LocalMetadataRepository&) = delete;
  LocalMetadataRepository& operator=(const LocalMetadataRepository&) = delete;

  pubsub::LmrId id() const { return id_; }

  // ---- Subscription management. ----------------------------------------

  /// Registers a subscription rule at the MDP; matching metadata is
  /// replicated into the cache immediately and kept consistent by the
  /// publish & subscribe mechanism.
  Result<pubsub::SubscriptionId> Subscribe(std::string_view rule_text,
                                           const std::string& name = "");

  /// Drops a subscription; resources matched only by it are removed from
  /// the cache by the garbage collector.
  Status Unsubscribe(pubsub::SubscriptionId subscription);

  // ---- Local metadata (§2.2). -------------------------------------------

  /// Stores a document as local metadata: queryable here, invisible to
  /// the backbone.
  Status RegisterLocalDocument(const rdf::RdfDocument& document);

  // ---- Cache consistency (§3.5). ----------------------------------------

  ConsistencyMode consistency_mode() const { return mode_; }
  /// Switches between push-based consistency and the TTL alternative.
  /// Switching to kTimeToLive does not clear the cache; call Refresh()
  /// to resynchronize.
  void set_consistency_mode(ConsistencyMode mode) { mode_ = mode; }

  /// Pulls a full snapshot of every subscription from the MDP, replacing
  /// all match bookkeeping; resources that no longer match anything are
  /// garbage-collected. This is the TTL mode's periodic resync (also
  /// usable in notification mode as a repair step).
  Status Refresh();

  // ---- Queries. ----------------------------------------------------------

  /// Evaluates a query (same `search ... register ... where ...` syntax
  /// as the rule language, §2.2) against the cached metadata only.
  /// Returns the matching resources sorted by uri.
  Result<std::vector<QueryMatch>> Query(std::string_view query_text) const;

  // ---- Cache introspection. ----------------------------------------------

  const CacheEntry* Find(const std::string& uri_reference) const;
  size_t CacheSize() const { return cache_.size(); }
  std::vector<std::string> CachedUris() const;

  /// Applies one publish notification (normally invoked via the
  /// network; exposed for tests).
  void ApplyNotification(const pubsub::Notification& notification);

  /// Number of GC evictions so far.
  int64_t gc_evictions() const { return gc_evictions_; }

  // ---- Durability. -------------------------------------------------------

  bool durable() const { return journal_ != nullptr; }

  /// What OpenDurable recovered (empty when the LMR is volatile).
  wal::RecoveryInfo recovery_info() const {
    return journal_ != nullptr ? journal_->recovery() : wal::RecoveryInfo{};
  }

  /// Compacts the journal: serializes the cache, subscriptions and the
  /// link's flow state into a snapshot and prunes the replayed log.
  /// Quiesce first in asynchronous mode (Network::WaitQuiescent) — the
  /// flow state copied here must not race in-flight frames.
  Status Checkpoint();

  /// Structural self-check of the cache, for mdv_fsck and tests:
  /// matched subscriptions exist, strong-reference counts re-derive
  /// from contents, target lists match the schema, and no entry is
  /// GC-dead yet resident. Returns the first violation found.
  Status AuditCacheInvariants() const;

 private:
  struct DeferAttach {};
  LocalMetadataRepository(DeferAttach, pubsub::LmrId id,
                          const rdf::RdfSchema* schema,
                          MetadataProvider* provider, Network* network);

  /// Binds the notification handler, wiring the journal hook and the
  /// recovered flow state when durable.
  void AttachToNetwork(std::vector<net::FlowRestore> flows);

  /// Rebuilds state from Open()'s RecoveryInfo: snapshot records, then
  /// the log suffix. Fills `flows` with the dedup state to seed the
  /// link with.
  Status RecoverFromJournal(const wal::RecoveryInfo& rec,
                            std::map<uint64_t, net::FlowRestore>* flows);
  Status LoadSnapshotRecords(const std::string& snapshot,
                             std::map<uint64_t, net::FlowRestore>* flows);
  /// Re-applies one journaled notify frame, simulating the link's
  /// per-flow dedup/hold-back so replay converges to what the handler
  /// actually saw.
  Status ReplayApplyFrame(const std::string& frame_bytes,
                          std::map<uint64_t, net::FlowRestore>* flows);
  std::string BuildSnapshot(const std::vector<net::FlowRestore>& flows) const;
  /// Appends when durable and not replaying (no-op otherwise).
  Status JournalAppend(uint8_t type, std::string payload);
  /// Replaces/creates the content of a cache entry, maintaining
  /// outgoing strong-reference counts of its targets.
  CacheEntry& UpsertContent(const std::string& uri,
                            const rdf::Resource& resource);

  /// Computes the strong-reference targets of `resource` per the schema.
  std::vector<std::string> StrongTargetsOf(const rdf::Resource& resource)
      const;

  /// Recomputes every entry's strong_referrers count from the
  /// strong_targets lists (run after content changes).
  void RecountStrongReferrers();

  /// Applies a notification regardless of the consistency mode (used by
  /// both the push path and Refresh()).
  void ApplyNotificationInternal(const pubsub::Notification& notification);

  /// Removes entries with no matches, no strong referrers and no local
  /// flag, cascading reference-count decrements (the reference-counting
  /// garbage collector of §2.4).
  void CollectGarbage();

  pubsub::LmrId id_;
  const rdf::RdfSchema* schema_;
  MetadataProvider* provider_;
  Network* network_;
  std::map<std::string, CacheEntry> cache_;
  std::set<pubsub::SubscriptionId> subscriptions_;
  ConsistencyMode mode_ = ConsistencyMode::kNotifications;
  int64_t gc_evictions_ = 0;
  /// Null for a volatile LMR. The journal is internally thread-safe;
  /// the async journal hook touches nothing else of this object.
  std::unique_ptr<wal::Journal> journal_;
  /// True while OpenDurable re-applies the recovered log: applies and
  /// subscription changes then skip journaling.
  bool replaying_ = false;
  /// True while Refresh() re-applies pulled snapshots: those are not
  /// journaled — Refresh checkpoints the refreshed state instead.
  bool suppress_apply_journal_ = false;
  /// Sequence stamp for sync-mode self-journaled applies (sender 0).
  uint64_t next_local_seq_ = 0;
};

}  // namespace mdv

#endif  // MDV_MDV_LMR_H_
