#ifndef MDV_MDV_LMR_H_
#define MDV_MDV_LMR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "mdv/metadata_provider.h"
#include "net/reliable.h"
#include "obs/trace.h"
#include "pubsub/notification.h"
#include "rdf/schema.h"
#include "wal/log.h"

namespace mdv {

/// One entry of an LMR's cache: the resource content plus the two
/// reference counts driving the garbage collector (§2.4): the set of
/// subscriptions whose rules match the resource, and the number of
/// cached resources strongly referencing it.
struct CacheEntry {
  rdf::Resource resource;
  /// LWW stamp of the cached revision ({0,0} for unversioned content,
  /// e.g. local metadata). Versioned applies replace content only when
  /// their stamp is not older — stale retransmits and reorderings
  /// across snapshot joins are absorbed idempotently.
  pubsub::EntryVersion version;
  std::set<pubsub::SubscriptionId> matched_subscriptions;
  int strong_referrers = 0;
  /// Local metadata is never forwarded to the backbone and never
  /// garbage-collected (§2.2).
  bool local = false;
  /// Outgoing strong-reference targets (uri references), tracked so
  /// updates and evictions can adjust the targets' counts.
  std::vector<std::string> strong_targets;
};

/// Result row of an LMR query: a cached resource with its uri.
struct QueryMatch {
  std::string uri_reference;
  const rdf::Resource* resource = nullptr;
};

/// How an LMR keeps its cache consistent with the backbone.
enum class ConsistencyMode {
  /// Publish & subscribe: the MDP pushes inserts/updates/removals (the
  /// paper's main mechanism).
  kNotifications,
  /// Time-to-live: pushes are ignored; the cache is refreshed wholesale
  /// by periodic Refresh() calls (the alternative §3.5 mentions —
  /// "periodical cache invalidation, based on a time-to-live approach").
  kTimeToLive,
};

/// Knobs of a replica join (JoinReplica).
struct JoinOptions {
  /// Send the cache's per-entry version cursor so the MDP skips content
  /// the replica already holds (delta catchup). A full join (false)
  /// ships everything; the result is identical either way.
  bool delta = true;
  /// Asynchronous networks: how often a lost request or serve is
  /// abandoned and retried, and how long each attempt may take.
  int max_attempts = 5;
  int64_t attempt_timeout_us = 10'000'000;
};

/// A Local Metadata Repository (§2.2): caches the subset of the global
/// metadata selected by its subscription rules, keeps the cache
/// consistent by applying publish notifications, stores private local
/// metadata, and answers declarative queries from locally available
/// metadata only (no communication across the Internet).
///
/// Thread-safe: one internal mutex (rank kLmrCache, inside the MDP API
/// lock — synchronous networks deliver while holding it — and outside
/// the network bus/link locks and the WAL journal) serializes the cache
/// against concurrent notification delivery, joins and queries. The
/// mutex is never held across calls back into the provider or the
/// snapshot request path.
class LocalMetadataRepository {
 public:
  /// Attaches to `provider` via `network`. Ids must be unique per
  /// network. All pointers must outlive the LMR.
  LocalMetadataRepository(pubsub::LmrId id, const rdf::RdfSchema* schema,
                          MetadataProvider* provider, Network* network);
  ~LocalMetadataRepository();

  /// Opens (or recovers) a durable LMR: the cache, the subscription id
  /// set and the delivery dedup state (net::FlowRestore per sender)
  /// live in a WAL under `options.dir` and survive kill -9. On an
  /// existing directory the snapshot and log suffix are replayed before
  /// the LMR attaches to the network, and the recovered flow state is
  /// handed to the reliable link so retransmits of already-applied
  /// notifications are absorbed instead of re-applied (exactly-once
  /// across the crash). In asynchronous mode every arriving frame is
  /// journaled pre-ack by the link; in synchronous mode the LMR
  /// self-journals each apply. Snapshot-stream frames (replica joins)
  /// are never journaled — a join interrupted by a crash is abandoned
  /// and re-run, not replayed. `provider` may be null for offline
  /// inspection (mdv_fsck) — subscription calls, JoinReplica() and
  /// Refresh() are then off-limits.
  static Result<std::unique_ptr<LocalMetadataRepository>> OpenDurable(
      pubsub::LmrId id, const rdf::RdfSchema* schema,
      MetadataProvider* provider, Network* network,
      const wal::WalOptions& options);

  LocalMetadataRepository(const LocalMetadataRepository&) = delete;
  LocalMetadataRepository& operator=(const LocalMetadataRepository&) = delete;

  pubsub::LmrId id() const { return id_; }

  // ---- Subscription management. ----------------------------------------

  /// Registers a subscription rule at the MDP; matching metadata is
  /// replicated into the cache immediately and kept consistent by the
  /// publish & subscribe mechanism.
  Result<pubsub::SubscriptionId> Subscribe(std::string_view rule_text,
                                           const std::string& name = "")
      EXCLUDES(mu_);

  /// Drops a subscription; resources matched only by it are removed from
  /// the cache by the garbage collector.
  Status Unsubscribe(pubsub::SubscriptionId subscription) EXCLUDES(mu_);

  // ---- Local metadata (§2.2). -------------------------------------------

  /// Stores a document as local metadata: queryable here, invisible to
  /// the backbone.
  Status RegisterLocalDocument(const rdf::RdfDocument& document)
      EXCLUDES(mu_);

  // ---- Cache consistency (§3.5) & replica lifecycle. --------------------

  ConsistencyMode consistency_mode() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return mode_;
  }
  /// Switches between push-based consistency and the TTL alternative.
  /// Switching to kTimeToLive does not clear the cache; call Refresh()
  /// to resynchronize.
  void set_consistency_mode(ConsistencyMode mode) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    mode_ = mode;
  }

  /// Synchronizes the replica with the MDP via the Clone-pattern join
  /// protocol: request a versioned snapshot, buffer live notifications
  /// that arrive while it streams in, merge the staged snapshot under
  /// last-writer-wins, repair match flags from the manifest, then
  /// replay the buffered suffix. The result is byte-identical to a
  /// replica that observed every notification live. Delta joins
  /// (options.delta) ship only entries the cache does not already hold
  /// at the current version. Blocks until the join completes; on
  /// asynchronous networks lost requests/serves are retried
  /// (options.max_attempts) and ResourceExhausted is returned when all
  /// attempts time out.
  Status JoinReplica(const JoinOptions& options = {}) EXCLUDES(mu_);

  /// Pulls the MDP state wholesale, replacing all match bookkeeping;
  /// resources that no longer match anything are garbage-collected.
  /// This is the TTL mode's periodic resync (also usable in
  /// notification mode as a repair step) — since the versioned-replica
  /// refactor it is simply a full (non-delta) JoinReplica.
  Status Refresh() EXCLUDES(mu_);

  /// Per-origin high water of versions this replica has applied or been
  /// served ({origin -> seq}). Observability + the mdv_fsck invariant:
  /// the vector never regresses against the cache.
  std::map<uint64_t, uint64_t> version_vector() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return version_vector_;
  }

  /// Completed JoinReplica/Refresh calls (for tests).
  int64_t joins_completed() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return joins_completed_;
  }

  // ---- Queries. ----------------------------------------------------------

  /// Evaluates a query (same `search ... register ... where ...` syntax
  /// as the rule language, §2.2) against the cached metadata only.
  /// Returns the matching resources sorted by uri.
  Result<std::vector<QueryMatch>> Query(std::string_view query_text) const
      EXCLUDES(mu_);

  // ---- Cache introspection. ----------------------------------------------
  // Find() hands out a pointer into the cache; use it only from
  // quiesced, single-threaded contexts (tests after WaitQuiescent).

  const CacheEntry* Find(const std::string& uri_reference) const
      EXCLUDES(mu_);
  size_t CacheSize() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return cache_.size();
  }
  std::vector<std::string> CachedUris() const EXCLUDES(mu_);

  /// Applies one publish notification (normally invoked via the
  /// network; exposed for tests).
  void ApplyNotification(const pubsub::Notification& notification)
      EXCLUDES(mu_);

  /// Number of GC evictions so far.
  int64_t gc_evictions() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return gc_evictions_;
  }

  // ---- Durability. -------------------------------------------------------

  bool durable() const { return journal_ != nullptr; }

  /// What OpenDurable recovered (empty when the LMR is volatile).
  wal::RecoveryInfo recovery_info() const {
    return journal_ != nullptr ? journal_->recovery() : wal::RecoveryInfo{};
  }

  /// Compacts the journal: serializes the cache, subscriptions, version
  /// vector and the link's flow state into a snapshot and prunes the
  /// replayed log. Quiesce first in asynchronous mode
  /// (Network::WaitQuiescent) — the flow state copied here must not
  /// race in-flight frames.
  Status Checkpoint() EXCLUDES(mu_);

  /// Structural self-check of the cache, for mdv_fsck and tests:
  /// matched subscriptions exist, strong-reference counts re-derive
  /// from contents, target lists match the schema, no entry is GC-dead
  /// yet resident, and the version vector covers every entry's stamp.
  /// Returns the first violation found.
  Status AuditCacheInvariants() const EXCLUDES(mu_);

 private:
  struct DeferAttach {};
  LocalMetadataRepository(DeferAttach, pubsub::LmrId id,
                          const rdf::RdfSchema* schema,
                          MetadataProvider* provider, Network* network);

  /// In-flight join: the staged snapshot plus the live notifications
  /// buffered while it streams in.
  struct JoinState {
    uint64_t request_id = 0;
    JoinOptions options;
    /// Staged content, applied to the cache only at finalize so a crash
    /// or mid-join checkpoint never persists a half-applied snapshot.
    std::map<std::string, std::pair<rdf::Resource, pubsub::EntryVersion>>
        staged;
    uint64_t chunks_received = 0;
    bool done_received = false;
    pubsub::SnapshotManifest manifest;
    /// Trace context carried on the SnapshotDone note, so the finalize
    /// span joins the MDP serve's trace.
    obs::SpanContext manifest_trace;
    /// Live (non-snapshot) notifications held back during the join,
    /// replayed in order after the snapshot merges.
    std::vector<pubsub::Notification> buffered;
    int64_t started_ns = 0;
  };

  /// Binds the notification handler, wiring the journal hook and the
  /// recovered flow state when durable.
  void AttachToNetwork(std::vector<net::FlowRestore> flows);

  /// Rebuilds state from Open()'s RecoveryInfo: snapshot records, then
  /// the log suffix. Fills `flows` with the dedup state to seed the
  /// link with.
  Status RecoverFromJournal(const wal::RecoveryInfo& rec,
                            std::map<uint64_t, net::FlowRestore>* flows)
      REQUIRES(mu_);
  Status LoadSnapshotRecords(const std::string& snapshot,
                             std::map<uint64_t, net::FlowRestore>* flows)
      REQUIRES(mu_);
  /// Re-applies one journaled notify frame, simulating the link's
  /// per-flow dedup/hold-back so replay converges to what the handler
  /// actually saw.
  Status ReplayApplyFrame(const std::string& frame_bytes,
                          std::map<uint64_t, net::FlowRestore>* flows)
      REQUIRES(mu_);
  std::string BuildSnapshotLocked(const std::vector<net::FlowRestore>& flows)
      const REQUIRES(mu_);
  Status CheckpointLocked() REQUIRES(mu_);
  /// Appends when durable and not replaying (no-op otherwise).
  Status JournalAppendLocked(uint8_t type, std::string payload)
      REQUIRES(mu_);
  /// Replaces/creates the content of a cache entry under LWW,
  /// maintaining outgoing strong-reference counts of its targets and
  /// the version vector. A versioned `version` older than the cached
  /// stamp leaves the content untouched (the entry is still returned
  /// for flag bookkeeping); {0,0} bypasses the guard (unversioned
  /// writers, e.g. local metadata).
  CacheEntry& UpsertContent(const std::string& uri,
                            const rdf::Resource& resource,
                            pubsub::EntryVersion version) REQUIRES(mu_);

  /// Computes the strong-reference targets of `resource` per the schema.
  std::vector<std::string> StrongTargetsOf(const rdf::Resource& resource)
      const;

  /// Recomputes every entry's strong_referrers count from the
  /// strong_targets lists (run after content changes).
  void RecountStrongReferrers() REQUIRES(mu_);

  /// Applies a notification regardless of the consistency mode (used by
  /// the push path, join buffering/replay and recovery).
  void ApplyNotificationLocked(const pubsub::Notification& notification)
      REQUIRES(mu_);
  /// Routes one snapshot-stream notification into the active join
  /// (ignored when no join matches its request id — stale serves).
  void HandleSnapshotNotificationLocked(
      const pubsub::Notification& notification) REQUIRES(mu_);
  /// Merges the completed join into the cache and replays the buffered
  /// suffix.
  void FinalizeJoinLocked() REQUIRES(mu_);
  /// Drops the in-flight join (timeout), replaying buffered live
  /// notifications so nothing is lost.
  void AbandonJoinLocked() REQUIRES(mu_);
  /// Applies buffered notifications without re-journaling them (they
  /// were journaled when they arrived).
  void ReplayBufferedLocked(std::vector<pubsub::Notification> notes)
      REQUIRES(mu_);

  /// Removes entries with no matches, no strong referrers and no local
  /// flag, cascading reference-count decrements (the reference-counting
  /// garbage collector of §2.4).
  void CollectGarbage() REQUIRES(mu_);

  pubsub::LmrId id_;
  const rdf::RdfSchema* schema_;
  MetadataProvider* provider_;
  Network* network_;
  /// Serializes cache state against concurrent delivery and joins.
  /// Rank: inside kMdpApi (synchronous delivery happens under the MDP
  /// lock), outside the network bus/link locks and the WAL journal
  /// (Checkpoint copies flow state and appends while holding it).
  /// Never held across calls into the provider or RequestSnapshot.
  mutable Mutex mu_{LockRank::kLmrCache, "mdv.lmr.cache"};
  CondVar join_cv_;
  std::map<std::string, CacheEntry> cache_ GUARDED_BY(mu_);
  std::set<pubsub::SubscriptionId> subscriptions_ GUARDED_BY(mu_);
  ConsistencyMode mode_ GUARDED_BY(mu_) = ConsistencyMode::kNotifications;
  int64_t gc_evictions_ GUARDED_BY(mu_) = 0;
  /// Per-origin high water of every version stamp applied or served.
  std::map<uint64_t, uint64_t> version_vector_ GUARDED_BY(mu_);
  /// Non-null while a join is in flight.
  std::unique_ptr<JoinState> join_ GUARDED_BY(mu_);
  uint64_t join_counter_ GUARDED_BY(mu_) = 0;
  /// Request id of the most recently finalized join; JoinReplica waits
  /// on it via join_cv_.
  uint64_t last_completed_request_id_ GUARDED_BY(mu_) = 0;
  int64_t joins_completed_ GUARDED_BY(mu_) = 0;
  /// Null for a volatile LMR. The journal is internally thread-safe;
  /// the pointer is set before the LMR attaches and stable afterwards.
  std::unique_ptr<wal::Journal> journal_;
  /// True while OpenDurable re-applies the recovered log: applies and
  /// subscription changes then skip journaling.
  bool replaying_ GUARDED_BY(mu_) = false;
  /// True while join finalize/abandon replays buffered notifications:
  /// those were journaled on arrival and must not be journaled twice.
  bool suppress_apply_journal_ GUARDED_BY(mu_) = false;
  /// Sequence stamp for sync-mode self-journaled applies (sender 0).
  uint64_t next_local_seq_ GUARDED_BY(mu_) = 0;
};

}  // namespace mdv

#endif  // MDV_MDV_LMR_H_
