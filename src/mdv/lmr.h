#ifndef MDV_MDV_LMR_H_
#define MDV_MDV_LMR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "mdv/metadata_provider.h"
#include "pubsub/notification.h"
#include "rdf/schema.h"

namespace mdv {

/// One entry of an LMR's cache: the resource content plus the two
/// reference counts driving the garbage collector (§2.4): the set of
/// subscriptions whose rules match the resource, and the number of
/// cached resources strongly referencing it.
struct CacheEntry {
  rdf::Resource resource;
  std::set<pubsub::SubscriptionId> matched_subscriptions;
  int strong_referrers = 0;
  /// Local metadata is never forwarded to the backbone and never
  /// garbage-collected (§2.2).
  bool local = false;
  /// Outgoing strong-reference targets (uri references), tracked so
  /// updates and evictions can adjust the targets' counts.
  std::vector<std::string> strong_targets;
};

/// Result row of an LMR query: a cached resource with its uri.
struct QueryMatch {
  std::string uri_reference;
  const rdf::Resource* resource = nullptr;
};

/// How an LMR keeps its cache consistent with the backbone.
enum class ConsistencyMode {
  /// Publish & subscribe: the MDP pushes inserts/updates/removals (the
  /// paper's main mechanism).
  kNotifications,
  /// Time-to-live: pushes are ignored; the cache is refreshed wholesale
  /// by periodic Refresh() calls (the alternative §3.5 mentions —
  /// "periodical cache invalidation, based on a time-to-live approach").
  kTimeToLive,
};

/// A Local Metadata Repository (§2.2): caches the subset of the global
/// metadata selected by its subscription rules, keeps the cache
/// consistent by applying publish notifications, stores private local
/// metadata, and answers declarative queries from locally available
/// metadata only (no communication across the Internet).
class LocalMetadataRepository {
 public:
  /// Attaches to `provider` via `network`. Ids must be unique per
  /// network. All pointers must outlive the LMR.
  LocalMetadataRepository(pubsub::LmrId id, const rdf::RdfSchema* schema,
                          MetadataProvider* provider, Network* network);
  ~LocalMetadataRepository();

  LocalMetadataRepository(const LocalMetadataRepository&) = delete;
  LocalMetadataRepository& operator=(const LocalMetadataRepository&) = delete;

  pubsub::LmrId id() const { return id_; }

  // ---- Subscription management. ----------------------------------------

  /// Registers a subscription rule at the MDP; matching metadata is
  /// replicated into the cache immediately and kept consistent by the
  /// publish & subscribe mechanism.
  Result<pubsub::SubscriptionId> Subscribe(std::string_view rule_text,
                                           const std::string& name = "");

  /// Drops a subscription; resources matched only by it are removed from
  /// the cache by the garbage collector.
  Status Unsubscribe(pubsub::SubscriptionId subscription);

  // ---- Local metadata (§2.2). -------------------------------------------

  /// Stores a document as local metadata: queryable here, invisible to
  /// the backbone.
  Status RegisterLocalDocument(const rdf::RdfDocument& document);

  // ---- Cache consistency (§3.5). ----------------------------------------

  ConsistencyMode consistency_mode() const { return mode_; }
  /// Switches between push-based consistency and the TTL alternative.
  /// Switching to kTimeToLive does not clear the cache; call Refresh()
  /// to resynchronize.
  void set_consistency_mode(ConsistencyMode mode) { mode_ = mode; }

  /// Pulls a full snapshot of every subscription from the MDP, replacing
  /// all match bookkeeping; resources that no longer match anything are
  /// garbage-collected. This is the TTL mode's periodic resync (also
  /// usable in notification mode as a repair step).
  Status Refresh();

  // ---- Queries. ----------------------------------------------------------

  /// Evaluates a query (same `search ... register ... where ...` syntax
  /// as the rule language, §2.2) against the cached metadata only.
  /// Returns the matching resources sorted by uri.
  Result<std::vector<QueryMatch>> Query(std::string_view query_text) const;

  // ---- Cache introspection. ----------------------------------------------

  const CacheEntry* Find(const std::string& uri_reference) const;
  size_t CacheSize() const { return cache_.size(); }
  std::vector<std::string> CachedUris() const;

  /// Applies one publish notification (normally invoked via the
  /// network; exposed for tests).
  void ApplyNotification(const pubsub::Notification& notification);

  /// Number of GC evictions so far.
  int64_t gc_evictions() const { return gc_evictions_; }

 private:
  /// Replaces/creates the content of a cache entry, maintaining
  /// outgoing strong-reference counts of its targets.
  CacheEntry& UpsertContent(const std::string& uri,
                            const rdf::Resource& resource);

  /// Computes the strong-reference targets of `resource` per the schema.
  std::vector<std::string> StrongTargetsOf(const rdf::Resource& resource)
      const;

  /// Recomputes every entry's strong_referrers count from the
  /// strong_targets lists (run after content changes).
  void RecountStrongReferrers();

  /// Applies a notification regardless of the consistency mode (used by
  /// both the push path and Refresh()).
  void ApplyNotificationInternal(const pubsub::Notification& notification);

  /// Removes entries with no matches, no strong referrers and no local
  /// flag, cascading reference-count decrements (the reference-counting
  /// garbage collector of §2.4).
  void CollectGarbage();

  pubsub::LmrId id_;
  const rdf::RdfSchema* schema_;
  MetadataProvider* provider_;
  Network* network_;
  std::map<std::string, CacheEntry> cache_;
  std::set<pubsub::SubscriptionId> subscriptions_;
  ConsistencyMode mode_ = ConsistencyMode::kNotifications;
  int64_t gc_evictions_ = 0;
};

}  // namespace mdv

#endif  // MDV_MDV_LMR_H_
