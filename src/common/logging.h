#ifndef MDV_COMMON_LOGGING_H_
#define MDV_COMMON_LOGGING_H_

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace mdv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted. Default: kWarning, so library
/// users are not spammed unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives every emitted log line (level + fully formatted message,
/// including the "[LEVEL file:line]" prefix but no trailing newline).
using LogSink = std::function<void(LogLevel, const std::string& message)>;

/// Replaces the destination of emitted log lines. Passing an empty
/// function restores the default stderr sink. The sink runs on the
/// logging thread; keep it cheap and reentrancy-free (it must not log).
void SetLogSink(LogSink sink);

/// Test helper: captures every log line emitted during its lifetime
/// (instead of writing to stderr) and restores the previous sink on
/// destruction. Also remembers and restores the log level, so tests can
/// lower it to capture Info/Debug lines without leaking the setting.
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(LogLevel capture_level = LogLevel::kDebug);
  ~ScopedLogCapture();

  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  const std::vector<std::pair<LogLevel, std::string>>& messages() const {
    return messages_;
  }

  /// True when any captured message contains `substring`.
  bool Contains(const std::string& substring) const;

 private:
  std::vector<std::pair<LogLevel, std::string>> messages_;
  LogLevel previous_level_;
  std::shared_ptr<LogSink> previous_sink_;
};

namespace internal_logging {

/// Collects one log line and emits it (with level prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below the threshold.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define MDV_LOG(level)                                                \
  (::mdv::LogLevel::k##level < ::mdv::GetLogLevel())                  \
      ? (void)0                                                       \
      : ::mdv::internal_logging::LogMessageVoidify() &                \
            ::mdv::internal_logging::LogMessage(                      \
                ::mdv::LogLevel::k##level, __FILE__, __LINE__)        \
                .stream()

}  // namespace mdv

#endif  // MDV_COMMON_LOGGING_H_
