#ifndef MDV_COMMON_LOGGING_H_
#define MDV_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mdv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr. Default: kWarning,
/// so library users are not spammed unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Collects one log line and emits it (with level prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below the threshold.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define MDV_LOG(level)                                                \
  (::mdv::LogLevel::k##level < ::mdv::GetLogLevel())                  \
      ? (void)0                                                       \
      : ::mdv::internal_logging::LogMessageVoidify() &                \
            ::mdv::internal_logging::LogMessage(                      \
                ::mdv::LogLevel::k##level, __FILE__, __LINE__)        \
                .stream()

}  // namespace mdv

#endif  // MDV_COMMON_LOGGING_H_
