#ifndef MDV_COMMON_STATUS_H_
#define MDV_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mdv {

/// Error categories used across the MDV code base.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< Caller passed malformed input (bad rule text, ...).
  kNotFound,         ///< A named entity (table, class, document) is missing.
  kAlreadyExists,    ///< Attempt to create an entity that already exists.
  kParseError,       ///< Lexical or syntactic error in a document or rule.
  kSchemaViolation,  ///< Input does not conform to the registered RDF schema.
  kInternal,         ///< Invariant violation inside MDV itself.
  kUnsupported,      ///< Feature intentionally not implemented.
  kResourceExhausted,  ///< A bounded resource (delivery queue, buffer) is full.
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail; cheap to copy in the OK case.
///
/// MDV does not throw exceptions across public API boundaries. Every
/// fallible operation returns a Status (or a Result<T>, see result.h).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SchemaViolation(std::string msg) {
    return Status(StatusCode::kSchemaViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller of the enclosing function.
#define MDV_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::mdv::Status _st = (expr);               \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace mdv

#endif  // MDV_COMMON_STATUS_H_
