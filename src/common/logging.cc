#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <memory>

#include "common/mutex.h"

namespace mdv {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

/// The sink is shared, not copied, per emission: emissions take the
/// mutex briefly to grab a reference-counted handle, so a sink swap
/// (SetLogSink, ScopedLogCapture teardown) never races an in-flight
/// emission using the old sink. kLogging is the innermost rank: any
/// component may log while holding its own locks, but a sink must not
/// lock anything (in particular, it must not log).
Mutex& SinkMutex() {
  static Mutex& mu = *new Mutex(LockRank::kLogging, "log.sink");
  return mu;
}

std::shared_ptr<LogSink>& SinkSlot() {
  static std::shared_ptr<LogSink>& sink = *new std::shared_ptr<LogSink>();
  return sink;
}

std::shared_ptr<LogSink> CurrentSink() {
  MutexLock lock(SinkMutex());
  return SinkSlot();
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

void SetLogSink(LogSink sink) {
  MutexLock lock(SinkMutex());
  if (sink) {
    SinkSlot() = std::make_shared<LogSink>(std::move(sink));
  } else {
    SinkSlot().reset();  // Back to the default stderr sink.
  }
}

ScopedLogCapture::ScopedLogCapture(LogLevel capture_level)
    : previous_level_(GetLogLevel()), previous_sink_(CurrentSink()) {
  SetLogLevel(capture_level);
  SetLogSink([this](LogLevel level, const std::string& message) {
    messages_.emplace_back(level, message);
  });
}

ScopedLogCapture::~ScopedLogCapture() {
  {
    MutexLock lock(SinkMutex());
    SinkSlot() = previous_sink_;  // Supports nested captures.
  }
  SetLogLevel(previous_level_);
}

bool ScopedLogCapture::Contains(const std::string& substring) const {
  for (const auto& [level, message] : messages_) {
    if (message.find(substring) != std::string::npos) return true;
  }
  return false;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::shared_ptr<LogSink> sink = CurrentSink();
  if (sink != nullptr) {
    (*sink)(level_, stream_.str());
    return;
  }
  stream_ << "\n";
  std::cerr << stream_.str();
}

}  // namespace internal_logging

}  // namespace mdv
