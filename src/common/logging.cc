#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace mdv {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

}  // namespace internal_logging

}  // namespace mdv
