#ifndef MDV_COMMON_CHECKSUM_H_
#define MDV_COMMON_CHECKSUM_H_

#include <cstdint>
#include <string_view>

namespace mdv {

/// FNV-1a 64 offset basis: the digest of the empty string.
inline constexpr uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
/// FNV-1a 64 prime. Odd, so multiplication is a bijection mod 2^64 and
/// any single corrupted byte always changes the digest.
inline constexpr uint64_t kFnv1aPrime = 0x100000001b3ull;

/// Extends a running FNV-1a 64 digest with `data`. Chaining calls over
/// consecutive chunks yields the digest of their concatenation.
constexpr uint64_t Fnv1aExtend(uint64_t digest, std::string_view data) {
  for (char c : data) {
    digest ^= static_cast<uint8_t>(c);
    digest *= kFnv1aPrime;
  }
  return digest;
}

/// FNV-1a 64 of `data` — the one checksum of the codebase, shared by
/// the net wire codec (frame headers), the WAL record framing, and the
/// filter's shard-placement fingerprint.
constexpr uint64_t Fnv1a(std::string_view data) {
  return Fnv1aExtend(kFnv1aOffsetBasis, data);
}

}  // namespace mdv

#endif  // MDV_COMMON_CHECKSUM_H_
