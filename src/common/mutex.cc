#include "common/mutex.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace mdv {

namespace {

/// One thread's held locks, outermost first. Fixed capacity: the real
/// hierarchy is ~4 deep; 32 leaves room without heap allocation on the
/// lock path (a thread_local vector would malloc under a lock and
/// deadlock a malloc-instrumented build).
constexpr int kMaxHeldLocks = 32;
thread_local const Mutex* t_held[kMaxHeldLocks];
thread_local int t_held_count = 0;

/// Set while the violation hook + report run on the violating thread,
/// so the dump path (which takes obs locks below the violating pair)
/// does not recurse into the checker.
thread_local bool t_in_violation = false;

/// Hook storage uses a raw std::mutex: mutex.cc is the one place
/// allowed to, and the hook mutex must not itself participate in rank
/// checking (it is taken during violation handling).
std::mutex& HookMutex() {
  static std::mutex mu;
  return mu;
}

std::function<void(const LockRankViolation&)>& HookSlot() {
  static std::function<void(const LockRankViolation&)> hook;
  return hook;
}

/// Tri-state so SetLockRankCheckEnabled can override the environment
/// probe in either direction: 0 = probe env/build, 1 = off, 2 = on.
std::atomic<int> g_check_override{0};

bool ProbeEnabled() {
  // Read-only env access; nothing in the process calls setenv.
  const char* env = std::getenv("MDV_LOCK_RANK_CHECK");  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr) return std::strcmp(env, "0") != 0;
#if defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return true;
#endif
#endif
#if !defined(NDEBUG)
  return true;
#else
  return false;
#endif
}

std::string FormatHeldStack() {
  std::string out;
  for (int i = 0; i < t_held_count; ++i) {
    if (!out.empty()) out += " -> ";
    out += t_held[i]->name();
    out += '(';
    out += std::to_string(static_cast<int>(t_held[i]->rank()));
    out += ')';
  }
  return out;
}

[[noreturn]] void ReportViolation(const Mutex& acquiring,
                                  const Mutex& holding) {
  t_in_violation = true;

  LockRankViolation violation;
  violation.acquiring_name = acquiring.name();
  violation.acquiring_rank = acquiring.rank();
  violation.holding_name = holding.name();
  violation.holding_rank = holding.rank();
  violation.held_stack = FormatHeldStack();

  std::fprintf(
      stderr,
      "lock-rank violation: acquiring '%s' (rank %d) while holding '%s' "
      "(rank %d)\n  held locks (outermost first): %s\n  rule: a thread may "
      "only acquire a mutex of strictly greater rank than any it holds; "
      "see DESIGN.md \"Concurrency model\"\n",
      violation.acquiring_name, static_cast<int>(violation.acquiring_rank),
      violation.holding_name, static_cast<int>(violation.holding_rank),
      violation.held_stack.c_str());

#if defined(__GLIBC__)
  void* frames[32];
  const int depth = backtrace(frames, 32);
  std::fprintf(stderr, "  acquisition stack:\n");
  backtrace_symbols_fd(frames, depth, 2);
#endif

  std::function<void(const LockRankViolation&)> hook;
  {
    std::lock_guard<std::mutex> lock(HookMutex());
    hook = HookSlot();
  }
  if (hook) hook(violation);

  std::abort();
}

void CheckAcquire(const Mutex& mu) {
  if (t_in_violation || !LockRankCheckEnabled()) return;
  if (t_held_count > 0) {
    const Mutex& top = *t_held[t_held_count - 1];
    if (mu.rank() <= top.rank()) ReportViolation(mu, top);
  }
}

void PushHeld(const Mutex& mu) {
  if (t_in_violation || !LockRankCheckEnabled()) return;
  if (t_held_count < kMaxHeldLocks) t_held[t_held_count] = &mu;
  ++t_held_count;  // Past capacity: count-only, so release stays paired.
}

/// Releases need not be LIFO (manual Lock/Unlock loops interleave), so
/// removal searches from the innermost end.
void PopHeld(const Mutex& mu) {
  if (t_in_violation || !LockRankCheckEnabled()) return;
  const int tracked = t_held_count < kMaxHeldLocks ? t_held_count
                                                   : kMaxHeldLocks;
  for (int i = tracked - 1; i >= 0; --i) {
    if (t_held[i] == &mu) {
      for (int j = i; j < tracked - 1; ++j) t_held[j] = t_held[j + 1];
      --t_held_count;
      return;
    }
  }
  if (t_held_count > kMaxHeldLocks) --t_held_count;  // Untracked overflow.
}

bool HeldByThisThread(const Mutex& mu) {
  const int tracked = t_held_count < kMaxHeldLocks ? t_held_count
                                                   : kMaxHeldLocks;
  for (int i = 0; i < tracked; ++i) {
    if (t_held[i] == &mu) return true;
  }
  return false;
}

}  // namespace

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kMdpApi: return "mdv.mdp.api";
    case LockRank::kLmrCache: return "mdv.lmr.cache";
    case LockRank::kNetworkBus: return "mdv.network";
    case LockRank::kRuleStore: return "mdv.rule_store";
    case LockRank::kNetLink: return "net.link";
    case LockRank::kNetTransport: return "net.transport";
    case LockRank::kNetEndpoint: return "net.transport.endpoint";
    case LockRank::kNetIdle: return "net.idle";
    case LockRank::kNetFault: return "net.fault";
    case LockRank::kFilterPool: return "filter.pool";
    case LockRank::kFilterQueue: return "filter.pool.queue";
    case LockRank::kWalJournal: return "wal.journal";
    case LockRank::kObsRegistry: return "obs.metrics";
    case LockRank::kObsTracer: return "obs.tracer";
    case LockRank::kObsFlight: return "obs.flight.dump";
    case LockRank::kLogging: return "log.sink";
  }
  return "unknown";
}

bool LockRankCheckEnabled() {
  const int override_state = g_check_override.load(std::memory_order_relaxed);
  if (override_state != 0) return override_state == 2;
  static const bool enabled = ProbeEnabled();
  return enabled;
}

void SetLockRankCheckEnabled(bool enabled) {
  g_check_override.store(enabled ? 2 : 1, std::memory_order_relaxed);
}

void SetLockRankViolationHook(
    std::function<void(const LockRankViolation&)> hook) {
  std::lock_guard<std::mutex> lock(HookMutex());
  HookSlot() = std::move(hook);
}

void Mutex::Lock() {
  CheckAcquire(*this);
  mu_.lock();
  PushHeld(*this);
}

void Mutex::Unlock() {
  PopHeld(*this);
  mu_.unlock();
}

bool Mutex::TryLock() {
  CheckAcquire(*this);
  if (!mu_.try_lock()) return false;
  PushHeld(*this);
  return true;
}

void Mutex::AssertHeld() const {
  if (t_in_violation || !LockRankCheckEnabled()) return;
  if (!HeldByThisThread(*this)) {
    t_in_violation = true;
    std::fprintf(stderr,
                 "lock-rank violation: AssertHeld('%s') on a thread that "
                 "does not hold it\n  held locks (outermost first): %s\n",
                 name(), FormatHeldStack().c_str());
    std::abort();
  }
}

bool CondVar::WaitFor(Mutex& mu, int64_t timeout_us) {
  return cv_.wait_for(mu, std::chrono::microseconds(timeout_us)) ==
         std::cv_status::no_timeout;
}

}  // namespace mdv
