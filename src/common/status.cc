#include "common/status.h"

namespace mdv {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kSchemaViolation:
      return "SchemaViolation";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mdv
