#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace mdv {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Directory entries (the name → inode link a rename creates) live in
/// the directory's own data; fsyncing the file alone does not persist
/// them across a machine crash.
Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open dir " + dir);
  Status status =
      ::fsync(fd) == 0 ? Status::OK() : Errno("fsync dir " + dir);
  ::close(fd);
  return status;
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("read failed: " + path);
  return contents;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open " + tmp);
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Errno("write " + tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = Errno("fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) return Errno("close " + tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Errno("rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return status;
  }
  const size_t slash = path.find_last_of('/');
  return FsyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

}  // namespace mdv
