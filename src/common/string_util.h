#ifndef MDV_COMMON_STRING_UTIL_H_
#define MDV_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mdv {

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` on every occurrence of `sep`; empty pieces are kept.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `haystack` contains `needle` (the rule language's `contains`).
bool Contains(std::string_view haystack, std::string_view needle);

/// Lower-cases ASCII characters.
std::string ToLowerAscii(std::string_view s);

/// Joins `parts` with `sep` between elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

}  // namespace mdv

#endif  // MDV_COMMON_STRING_UTIL_H_
