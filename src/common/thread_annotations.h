#ifndef MDV_COMMON_THREAD_ANNOTATIONS_H_
#define MDV_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations (-Wthread-safety), no-ops elsewhere.
///
/// These macros attach the locking discipline to the code itself so the
/// compiler — not a test run's particular interleavings — proves it:
/// which mutex guards which member (GUARDED_BY), which methods must be
/// called with a lock held (REQUIRES, the `*Locked()` helpers), which
/// must NOT be called with it held (EXCLUDES, the stats accessors that
/// copy under the lock), and which acquire/release it (ACQUIRE/RELEASE,
/// the mdv::Mutex primitives themselves). CI compiles the tree with
/// clang and `-Wthread-safety -Wthread-safety-beta -Werror`, so an
/// unannotated lock or an unguarded access cannot land. The runtime
/// complement — lock-rank deadlock detection — lives in
/// common/mutex.h; see DESIGN.md, "Concurrency model".
///
/// The attribute set mirrors the documented Clang capability model
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the macro
/// names follow the de-facto standard spelling so the idiom is
/// recognizable, and each is #ifndef-guarded against prior definitions.

#if defined(__clang__)
#define MDV_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define MDV_THREAD_ANNOTATION_ATTRIBUTE__(x)  // GCC/MSVC: no-op.
#endif

/// Declares a class to be a capability ("mutex" for lockable types).
#ifndef CAPABILITY
#define CAPABILITY(x) MDV_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#endif

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY MDV_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)
#endif

/// Declares that a data member is protected by the given capability:
/// reads require the capability held (shared or exclusive), writes
/// require it held exclusively.
#ifndef GUARDED_BY
#define GUARDED_BY(x) MDV_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
#endif

/// Like GUARDED_BY, for pointer members: the pointed-to data (not the
/// pointer itself) is protected by the capability.
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) MDV_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))
#endif

/// Declares that the calling thread must hold the given capabilities on
/// entry, and still holds them on exit (the `*Locked()` helper idiom).
#ifndef REQUIRES
#define REQUIRES(...) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#endif

/// Declares that a function acquires the capability (held on exit, must
/// not be held on entry).
#ifndef ACQUIRE
#define ACQUIRE(...) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#endif

/// Declares that a function releases the capability (held on entry, not
/// on exit).
#ifndef RELEASE
#define RELEASE(...) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#endif

/// Declares that a function tries to acquire the capability and returns
/// `success` (true/false) when it did.
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#endif

/// Declares that the caller must NOT hold the given capabilities — the
/// annotation for public accessors that take the lock themselves (e.g.
/// the stats() copies), turning a self-deadlocking call into a compile
/// error under clang (and a lock-rank abort at runtime).
#ifndef EXCLUDES
#define EXCLUDES(...) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#endif

/// Asserts at runtime that the capability is held (tells the analysis
/// so, without acquiring).
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#endif

/// Declares that a function returns a reference to the given capability
/// (for mutex accessors).
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))
#endif

/// Documents acquisition order between capabilities declared on the
/// same thread (the static cousin of the runtime lock-rank check).
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#endif

/// Escape hatch: disables analysis for one function. Use only where the
/// locking pattern is beyond the analysis (never to silence a genuine
/// finding), and say why at the use site.
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  MDV_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
#endif

#endif  // MDV_COMMON_THREAD_ANNOTATIONS_H_
