#ifndef MDV_COMMON_FILE_UTIL_H_
#define MDV_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace mdv {

/// Whole-file read. NotFound when the file cannot be opened, Internal
/// on a mid-read error.
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-safe whole-file replace: writes `path`.tmp, fsyncs it, renames
/// over `path`, fsyncs the parent directory. A reader (or a post-crash
/// recovery) sees the old bytes or the new bytes in full, never a
/// prefix — the invariant every snapshot/manifest writer relies on.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace mdv

#endif  // MDV_COMMON_FILE_UTIL_H_
