#ifndef MDV_COMMON_MUTEX_H_
#define MDV_COMMON_MUTEX_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/thread_annotations.h"

namespace mdv {

/// The process-wide lock hierarchy. Every mdv::Mutex carries one rank;
/// a thread may only acquire a mutex of STRICTLY GREATER rank than the
/// highest it already holds. Acquiring equal rank is also a violation —
/// two same-rank locks taken in opposite orders by two threads is the
/// classic deadlock, and same-instance re-acquisition is an immediate
/// self-deadlock — so ranks double as a "no two of these nest" rule.
///
/// Ranks increase from the outermost lock (taken first, held longest)
/// to the innermost leaves (observability, logging), matching the real
/// call chains: an MDP entry point (kMdpApi) delivers into the network
/// bus (kNetworkBus) or the reliable link (kNetLink), which consults
/// the transport registry (kNetTransport); everything may touch the
/// obs registries and the log sink at the bottom. The full table —
/// rank, what it guards, who acquires it, and how to pick a rank for a
/// new mutex — lives in DESIGN.md, "Concurrency model".
///
/// The numeric gaps are deliberate: new locks slot in without renaming
/// neighbours.
enum class LockRank : int {
  /// MetadataProvider::api_mu_ — serializes one MDP's entry points.
  /// Outermost: held across filter runs, publishing and sync delivery.
  kMdpApi = 10,
  /// LocalMetadataRepository cache + join state. Acquired inside the
  /// MDP API lock (sync-mode delivery runs the LMR handler under
  /// kMdpApi) and from transport endpoint threads holding nothing; it
  /// nests around the network bus / link locks (Checkpoint copies flow
  /// state) and the WAL journal, but must never be held while calling
  /// back into the provider (Subscribe, snapshot requests).
  kLmrCache = 15,
  /// mdv::Network bus state (sync handler registry + stats).
  kNetworkBus = 20,
  /// Reserved for RuleStore-internal caches if they ever grow their own
  /// lock (today they are guarded by kMdpApi).
  kRuleStore = 30,
  /// net::ReliableLink flow/pending/receiver state. Held while asking
  /// the transport registry about endpoints, hence below it.
  kNetLink = 40,
  /// net::InProcessTransport endpoint registry + instance stats.
  kNetTransport = 50,
  /// One transport endpoint's delivery queue (never nests with the
  /// registry lock or another endpoint's).
  kNetEndpoint = 54,
  /// InProcessTransport idle-waiter handshake.
  kNetIdle = 57,
  /// net::FaultInjector decision state.
  kNetFault = 60,
  /// filter::WorkStealingPool batch state.
  kFilterPool = 70,
  /// One pool worker's task deque (never nests with the batch lock or
  /// another deque).
  kFilterQueue = 74,
  /// wal::Journal segment/manifest state. Acquired under kMdpApi (the
  /// MDP journals inside its entry points) and from transport endpoint
  /// threads holding nothing (the LMR's pre-ack journal hook runs after
  /// the link released kNetLink); only file I/O happens inside, so it
  /// ranks as a leaf above the obs registries.
  kWalJournal = 76,
  /// obs::MetricsRegistry name → handle map.
  kObsRegistry = 80,
  /// obs::Tracer span retention ring.
  kObsTracer = 84,
  /// obs::FlightRecorder last-dump state.
  kObsFlight = 86,
  /// Logging sink slot — innermost leaf; a sink must not lock anything.
  kLogging = 90,
};

const char* LockRankName(LockRank rank);

/// Whether the per-thread held-rank stack is checked on every
/// acquisition. Enabled when any of the following holds, probed once:
///  - MDV_LOCK_RANK_CHECK is set to anything but "0" (every ctest run
///    sets it, next to MDV_AUDIT_INVARIANTS),
///  - the build is a debug build (NDEBUG undefined),
///  - the build runs under ThreadSanitizer.
/// MDV_LOCK_RANK_CHECK=0 force-disables in all three cases.
bool LockRankCheckEnabled();

/// Test override (death tests flip it on regardless of environment).
void SetLockRankCheckEnabled(bool enabled);

/// What the checker saw when it fired: the lock being acquired, the
/// highest-ranked lock already held, and the thread's full held-lock
/// stack, formatted outermost-first as "name(rank) -> name(rank)".
struct LockRankViolation {
  const char* acquiring_name = "";
  LockRank acquiring_rank = LockRank::kMdpApi;
  const char* holding_name = "";
  LockRank holding_rank = LockRank::kMdpApi;
  std::string held_stack;
};

/// Installs the hook run (once, on the violating thread) before the
/// process aborts. obs/flight_recorder.cc installs the default hook at
/// static-init time: it records the violation into the flight ring and
/// AutoDumps the recent pipeline history next to the stderr report.
/// Rank checking is suspended on the violating thread while the hook
/// runs, so the hook may take (correctly ranked) locks of its own.
void SetLockRankViolationHook(std::function<void(const LockRankViolation&)> hook);

/// The annotated mutex every MDV component locks with. Wraps
/// std::mutex, carries its LockRank and a diagnostic name, and — when
/// LockRankCheckEnabled() — validates every acquisition against the
/// calling thread's held-rank stack, aborting on the *potential*
/// deadlock (out-of-order acquisition), not the deadlock itself.
///
/// The lower-case lock()/unlock() aliases satisfy BasicLockable so
/// CondVar (std::condition_variable_any) can wait on the Mutex
/// directly; rank bookkeeping stays correct across the wait's
/// release/reacquire cycle because it lives inside these methods.
class CAPABILITY("mutex") Mutex {
 public:
  /// `name` must outlive the mutex (string literals in practice); it
  /// names the lock in rank-violation reports and flight dumps.
  explicit Mutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE();
  void Unlock() RELEASE();
  /// Never blocks; a successful out-of-order try-acquisition is still
  /// reported (it puts the thread in a state where the ordering rule
  /// can no longer hold).
  bool TryLock() TRY_ACQUIRE(true);

  /// Aborts when the checker is enabled and this thread does not hold
  /// the mutex; tells the static analysis the capability is held.
  void AssertHeld() const ASSERT_CAPABILITY(this);

  // BasicLockable, for std::condition_variable_any (CondVar).
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// RAII lock for one Mutex — the lock_guard of this codebase.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to mdv::Mutex. Waits release and reacquire
/// the Mutex through its rank-tracked lock()/unlock(), so a wake-up
/// re-validates the acquisition order against whatever the thread still
/// holds. There are deliberately no predicate overloads: callers write
/// the `while (!condition) cv.Wait(mu);` loop themselves, which keeps
/// the guarded condition read inside the annotated caller (the analysis
/// cannot see through predicate lambdas) and makes spurious-wakeup
/// handling explicit.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, reacquires `mu` before returning.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Like Wait with a relative timeout. Returns false on timeout. A
  /// true return does NOT imply the condition: recheck in a loop
  /// against a deadline.
  bool WaitFor(Mutex& mu, int64_t timeout_us) REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mdv

#endif  // MDV_COMMON_MUTEX_H_
