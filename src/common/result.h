#ifndef MDV_COMMON_RESULT_H_
#define MDV_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mdv {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced (Arrow's Result / abseil's StatusOr idiom).
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so `return Status::...;` works. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_{StatusCode::kInternal, "uninitialized Result"};
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>); on error returns its Status, otherwise
/// moves its value into `lhs`.
#define MDV_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto MDV_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!MDV_CONCAT_(_res_, __LINE__).ok())                \
    return MDV_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(MDV_CONCAT_(_res_, __LINE__)).value()

#define MDV_CONCAT_(a, b) MDV_CONCAT_IMPL_(a, b)
#define MDV_CONCAT_IMPL_(a, b) a##b

}  // namespace mdv

#endif  // MDV_COMMON_RESULT_H_
