#include "bench_support/workload.h"

#include <cmath>

#include "filter/data_store.h"
#include "rules/compiler.h"

namespace mdv::bench_support {

namespace {
// Memory values start high so they never collide with cpu values or
// ports within the synthetic corpus.
constexpr int64_t kMemoryBase = 1000000;
}  // namespace

const char* BenchRuleTypeToString(BenchRuleType type) {
  switch (type) {
    case BenchRuleType::kOid:
      return "OID";
    case BenchRuleType::kComp:
      return "COMP";
    case BenchRuleType::kPath:
      return "PATH";
    case BenchRuleType::kJoin:
      return "JOIN";
  }
  return "?";
}

std::string WorkloadGenerator::DocumentUri(size_t j) {
  return "doc" + std::to_string(j) + ".rdf";
}

std::string WorkloadGenerator::RuleText(size_t i) const {
  switch (options_.rule_type) {
    case BenchRuleType::kOid:
      return "search CycleProvider c register c where c = '" +
             DocumentUri(i) + "#host'";
    case BenchRuleType::kComp:
      return "search CycleProvider c register c where c.synthValue > " +
             std::to_string(i);
    case BenchRuleType::kPath:
      return "search CycleProvider c register c "
             "where c.serverInformation.memory = " +
             std::to_string(kMemoryBase + static_cast<int64_t>(i));
    case BenchRuleType::kJoin:
      return "search CycleProvider c register c "
             "where c.serverHost contains 'uni-passau.de' "
             "and c.serverInformation.cpu = 600 "
             "and c.serverInformation.memory = " +
             std::to_string(kMemoryBase + static_cast<int64_t>(i));
  }
  return "";
}

rdf::RdfDocument WorkloadGenerator::MakeDocument(size_t j) const {
  rdf::RdfDocument doc(DocumentUri(j));

  rdf::Resource info("info", "ServerInformation");
  info.AddProperty("memory",
                   rdf::PropertyValue::Literal(std::to_string(
                       kMemoryBase + static_cast<int64_t>(j))));
  info.AddProperty("cpu", rdf::PropertyValue::Literal("600"));

  rdf::Resource host("host", "CycleProvider");
  host.AddProperty("serverHost",
                   rdf::PropertyValue::Literal(
                       "pirates" + std::to_string(j) + ".uni-passau.de"));
  host.AddProperty("serverPort", rdf::PropertyValue::Literal(
                                     std::to_string(5000 + j % 1000)));
  // COMP: synthValue chosen so that `synthValue > INT_i` holds for the
  // configured fraction of the rule base (rules use INT_i = i).
  int64_t synth = static_cast<int64_t>(
      std::llround(options_.comp_match_fraction *
                   static_cast<double>(options_.rule_base_size)));
  host.AddProperty("synthValue",
                   rdf::PropertyValue::Literal(std::to_string(synth)));
  host.AddProperty("serverInformation",
                   rdf::PropertyValue::ResourceRef(doc.uri() + "#info"));

  Status st = doc.AddResource(std::move(info));
  st = doc.AddResource(std::move(host));
  (void)st;  // Fresh ids; cannot collide.
  return doc;
}

std::vector<rdf::RdfDocument> WorkloadGenerator::MakeDocumentBatch(
    size_t first, size_t count) const {
  std::vector<rdf::RdfDocument> out;
  out.reserve(count);
  for (size_t j = first; j < first + count; ++j) {
    out.push_back(MakeDocument(j));
  }
  return out;
}

FilterFixture::FilterFixture(filter::RuleStoreOptions rule_options,
                             filter::TableOptions table_options,
                             filter::EngineOptions engine_options)
    : schema_(rdf::MakeObjectGlobeSchema()) {
  // The physical layout must match the store's routing; deriving it here
  // keeps callers from having to set the shard count twice.
  table_options.num_shards = rule_options.num_shards;
  Status st = filter::CreateFilterTables(&db_, table_options);
  (void)st;  // Fresh database; cannot fail.
  store_ = std::make_unique<filter::RuleStore>(&db_, rule_options);
  engine_ = std::make_unique<filter::FilterEngine>(&db_, store_.get(),
                                                   engine_options);
}

Result<int64_t> FilterFixture::RegisterRule(const std::string& rule_text) {
  MDV_ASSIGN_OR_RETURN(rules::CompiledRule compiled,
                       rules::CompileRule(rule_text, schema_));
  return store_->RegisterTree(compiled.decomposed);
}

Result<filter::FilterRunResult> FilterFixture::RegisterDocumentBatch(
    const std::vector<rdf::RdfDocument>& documents,
    const filter::FilterOptions& options) {
  rdf::Statements delta;
  for (const rdf::RdfDocument& doc : documents) {
    rdf::Statements atoms = doc.ToStatements();
    delta.insert(delta.end(), atoms.begin(), atoms.end());
  }
  MDV_RETURN_IF_ERROR(filter::InsertAtoms(&db_, delta));
  return engine_->Run(delta, options);
}

}  // namespace mdv::bench_support
