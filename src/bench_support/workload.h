#ifndef MDV_BENCH_SUPPORT_WORKLOAD_H_
#define MDV_BENCH_SUPPORT_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "filter/engine.h"
#include "filter/rule_store.h"
#include "filter/tables.h"
#include "rdf/document.h"
#include "rdf/schema.h"

namespace mdv::bench_support {

/// The four rule types of the §4 experiments (Figure 10).
enum class BenchRuleType {
  kOid,   ///< search CycleProvider c register c where c = 'URI'
  kComp,  ///< ... where c.synthValue > INT
  kPath,  ///< ... where c.serverInformation.memory = INT
  kJoin,  ///< ... where c.serverHost contains 'uni-passau.de'
          ///      and c.serverInformation.cpu = 600
          ///      and c.serverInformation.memory = INT
};

const char* BenchRuleTypeToString(BenchRuleType type);

/// Generates the §4 workload: a rule base of one type plus Figure-1-like
/// documents (one CycleProvider + one ServerInformation each), arranged
/// so that — for OID, PATH and JOIN — document j is matched by exactly
/// rule j and no other, and — for COMP — every document is matched by
/// `comp_match_fraction` of the rule base.
class WorkloadGenerator {
 public:
  struct Options {
    BenchRuleType rule_type = BenchRuleType::kOid;
    size_t rule_base_size = 1000;
    double comp_match_fraction = 0.10;
  };

  explicit WorkloadGenerator(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// Text of rule `i` of the rule base (i < rule_base_size).
  std::string RuleText(size_t i) const;

  /// Document `j`; its CycleProvider matches rule `j` (OID/PATH/JOIN) or
  /// the configured fraction of the rule base (COMP).
  rdf::RdfDocument MakeDocument(size_t j) const;

  /// Documents [first, first + count).
  std::vector<rdf::RdfDocument> MakeDocumentBatch(size_t first,
                                                  size_t count) const;

  /// URI of document `j`.
  static std::string DocumentUri(size_t j);

 private:
  Options options_;
};

/// A self-contained filter stack for benchmarks and tests: database with
/// filter tables, rule store and engine, sharing the ObjectGlobe schema.
class FilterFixture {
 public:
  explicit FilterFixture(
      filter::RuleStoreOptions rule_options = filter::RuleStoreOptions{},
      filter::TableOptions table_options = filter::TableOptions{},
      filter::EngineOptions engine_options = filter::EngineOptions{});

  FilterFixture(const FilterFixture&) = delete;
  FilterFixture& operator=(const FilterFixture&) = delete;

  /// Compiles `rule_text` and merges it into the rule store. Returns the
  /// end rule id.
  Result<int64_t> RegisterRule(const std::string& rule_text);

  /// Inserts the documents' atoms and runs the filter once over the
  /// whole batch, as the §4 harness does. `options` selects the access
  /// path (predicate index vs table scan) for differential runs.
  Result<filter::FilterRunResult> RegisterDocumentBatch(
      const std::vector<rdf::RdfDocument>& documents,
      const filter::FilterOptions& options = filter::FilterOptions{});

  rdbms::Database& db() { return db_; }
  filter::RuleStore& store() { return *store_; }
  filter::FilterEngine& engine() { return *engine_; }
  const rdf::RdfSchema& schema() const { return schema_; }

 private:
  rdf::RdfSchema schema_;
  rdbms::Database db_;
  std::unique_ptr<filter::RuleStore> store_;
  std::unique_ptr<filter::FilterEngine> engine_;
};

}  // namespace mdv::bench_support

#endif  // MDV_BENCH_SUPPORT_WORKLOAD_H_
