#ifndef MDV_PUBSUB_SUBSCRIPTION_H_
#define MDV_PUBSUB_SUBSCRIPTION_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace mdv::pubsub {

using LmrId = int64_t;
using SubscriptionId = int64_t;

/// One registered subscription: an LMR's interest in the resources
/// matched by one subscription rule, whose decomposed end rule is
/// `end_rule_id` in the MDP's rule store.
struct Subscription {
  SubscriptionId id = -1;
  LmrId lmr = -1;
  std::string rule_text;
  /// Optional name under which other rules may use this subscription as
  /// an extension (§2.3); empty = anonymous.
  std::string name;
  int64_t end_rule_id = -1;
  /// Type (class) of the resources the rule registers.
  std::string type;
};

/// Bookkeeping of which LMR subscribed which rules and which atomic end
/// rules serve them. The MDP consults it after every filter run to route
/// matches to subscribers.
class SubscriptionRegistry {
 public:
  SubscriptionRegistry() = default;

  /// Records a subscription and returns its id.
  SubscriptionId Add(LmrId lmr, std::string rule_text, std::string name,
                     int64_t end_rule_id, std::string type);

  /// Removes a subscription; NotFound if absent. Returns the removed
  /// record so the caller can release the end rule in the rule store.
  Result<Subscription> Remove(SubscriptionId id);

  const Subscription* Find(SubscriptionId id) const;

  /// Subscriptions whose end rule is `end_rule_id` (several LMRs may
  /// share one end rule thanks to dependency-graph merging).
  std::vector<const Subscription*> ByEndRule(int64_t end_rule_id) const;

  /// All subscriptions of one LMR.
  std::vector<const Subscription*> ByLmr(LmrId lmr) const;

  /// Resolves a named subscription (rule-valued extensions, §2.3).
  const Subscription* FindByName(const std::string& name) const;

  /// Every end rule referenced by at least one subscription.
  std::vector<int64_t> EndRuleIds() const;

  /// All subscriptions (for snapshots/diagnostics).
  std::vector<const Subscription*> All() const;

  /// Re-inserts a subscription under its original id (snapshot restore);
  /// AlreadyExists if the id is taken. Keeps the id counter ahead.
  Status Restore(Subscription subscription);

  /// Drops every subscription (snapshot restore).
  void Clear();

  size_t size() const { return subscriptions_.size(); }

 private:
  std::map<SubscriptionId, Subscription> subscriptions_;
  SubscriptionId next_id_ = 1;
};

}  // namespace mdv::pubsub

#endif  // MDV_PUBSUB_SUBSCRIPTION_H_
