#ifndef MDV_PUBSUB_NOTIFICATION_H_
#define MDV_PUBSUB_NOTIFICATION_H_

#include <string>
#include <vector>

#include "obs/trace.h"
#include "pubsub/subscription.h"
#include "rdf/document.h"

namespace mdv::pubsub {

/// A resource shipped inside a notification: its URI reference plus the
/// full content an LMR needs to cache it.
struct TransmittedResource {
  std::string uri_reference;
  rdf::Resource resource;
  /// True when the resource travels only because it is in the strong
  /// reference closure of a matched resource (§2.4) — it takes a
  /// reference count at the LMR instead of a subscription match.
  bool via_strong_reference = false;
};

/// What a published change means for one LMR.
enum class NotificationKind {
  kInsert,  ///< Resources newly matching one of the LMR's rules.
  kUpdate,  ///< New versions of resources the LMR caches.
  kRemove,  ///< Resources that stopped matching all of the LMR's rules.
};

/// One publish message from an MDP to an LMR.
struct Notification {
  NotificationKind kind = NotificationKind::kInsert;
  LmrId lmr = -1;
  /// Subscription this notification belongs to. kInsert adds a match for
  /// that subscription; kRemove retracts one. -1 for kUpdate messages,
  /// which refresh any cached copy regardless of subscription.
  SubscriptionId subscription = -1;
  std::vector<TransmittedResource> resources;
  /// Correlation context of the publish that produced this message: the
  /// span of the originating MDP operation. Network delivery and the
  /// LMR's application parent their spans here, so one document's
  /// journey from registration to cache update is a single trace even
  /// across (future asynchronous) delivery boundaries.
  obs::SpanContext trace;
};

}  // namespace mdv::pubsub

#endif  // MDV_PUBSUB_NOTIFICATION_H_
