#ifndef MDV_PUBSUB_NOTIFICATION_H_
#define MDV_PUBSUB_NOTIFICATION_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "obs/trace.h"
#include "pubsub/subscription.h"
#include "rdf/document.h"

namespace mdv::pubsub {

/// Last-writer-wins version stamp of one document revision. The
/// originating MDP allocates `(origin, ++seq)` under its API lock, so
/// stamps from one origin are totally ordered in execution order; stamps
/// from different origins tie-break deterministically on the origin id.
/// The join of two stamps is their maximum, which makes replica cache
/// entries a semilattice: applying the same set of versioned writes in
/// any order (and any number of times) converges to the same content.
struct EntryVersion {
  uint64_t origin = 0;  ///< Replication id of the originating MDP.
  uint64_t seq = 0;     ///< Monotonic per origin.

  friend bool operator==(const EntryVersion& a, const EntryVersion& b) {
    return a.origin == b.origin && a.seq == b.seq;
  }
  friend bool operator!=(const EntryVersion& a, const EntryVersion& b) {
    return !(a == b);
  }
  /// Total order: by sequence first, origin id as the deterministic
  /// tie-break. `seq` dominates so that a restarted origin which resumes
  /// its counter keeps winning over stale peers.
  friend bool operator<(const EntryVersion& a, const EntryVersion& b) {
    return std::tie(a.seq, a.origin) < std::tie(b.seq, b.origin);
  }
  friend bool operator<=(const EntryVersion& a, const EntryVersion& b) {
    return !(b < a);
  }
};

/// A resource shipped inside a notification: its URI reference plus the
/// full content an LMR needs to cache it.
struct TransmittedResource {
  std::string uri_reference;
  rdf::Resource resource;
  /// True when the resource travels only because it is in the strong
  /// reference closure of a matched resource (§2.4) — it takes a
  /// reference count at the LMR instead of a subscription match.
  bool via_strong_reference = false;
  /// LWW stamp of the document revision this resource belongs to.
  /// `{0, 0}` for unversioned payloads (removals, local documents).
  EntryVersion version;
};

/// What a published change means for one LMR.
enum class NotificationKind {
  kInsert,  ///< Resources newly matching one of the LMR's rules.
  kUpdate,  ///< New versions of resources the LMR caches.
  kRemove,  ///< Resources that stopped matching all of the LMR's rules.
  /// One batch of versioned cache entries streamed during a replica
  /// join (Clone pattern). Content only — match flags arrive with the
  /// manifest in kSnapshotDone.
  kSnapshotChunk,
  /// End of a snapshot stream: carries the manifest (per-subscription
  /// match lists at the cut) and the catchup cursor.
  kSnapshotDone,
};

/// Per-subscription match list at the snapshot cut.
struct SnapshotManifestEntry {
  SubscriptionId subscription = -1;
  std::vector<std::string> uris;  ///< Sorted matched URI references.
};

/// Trailer of a snapshot stream (kSnapshotDone). The joining LMR uses
/// `entries` to rebuild its match flags and `cursor` to advance its
/// version vector to the cut.
struct SnapshotManifest {
  uint64_t total_chunks = 0;
  /// Per-origin high-water mark of the serving MDP's document versions
  /// at the cut (one EntryVersion per origin).
  std::vector<EntryVersion> cursor;
  std::vector<SnapshotManifestEntry> entries;
};

/// One publish message from an MDP to an LMR.
struct Notification {
  NotificationKind kind = NotificationKind::kInsert;
  LmrId lmr = -1;
  /// Subscription this notification belongs to. kInsert adds a match for
  /// that subscription; kRemove retracts one. -1 for kUpdate messages,
  /// which refresh any cached copy regardless of subscription.
  SubscriptionId subscription = -1;
  std::vector<TransmittedResource> resources;
  /// Join request this snapshot frame answers (kSnapshotChunk/Done);
  /// 0 for live notifications. The LMR drops frames whose request id
  /// does not match its active join attempt.
  uint64_t snapshot_request = 0;
  /// Position of this chunk within its snapshot stream.
  uint64_t chunk_index = 0;
  /// Populated only for kSnapshotDone.
  SnapshotManifest manifest;
  /// Correlation context of the publish that produced this message: the
  /// span of the originating MDP operation. Network delivery and the
  /// LMR's application parent their spans here, so one document's
  /// journey from registration to cache update is a single trace even
  /// across (future asynchronous) delivery boundaries.
  obs::SpanContext trace;
};

/// True for the snapshot-stream kinds that participate in the replica
/// join protocol rather than the live publish stream.
inline bool IsSnapshotKind(NotificationKind kind) {
  return kind == NotificationKind::kSnapshotChunk ||
         kind == NotificationKind::kSnapshotDone;
}

}  // namespace mdv::pubsub

#endif  // MDV_PUBSUB_NOTIFICATION_H_
