#ifndef MDV_PUBSUB_PUBLISHER_H_
#define MDV_PUBSUB_PUBLISHER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "filter/update_protocol.h"
#include "pubsub/notification.h"
#include "pubsub/subscription.h"
#include "rdf/schema.h"

namespace mdv::pubsub {

/// Turns filter results into publish notifications for the subscribed
/// LMRs. The publisher owns the strong/weak reference policy of §2.4:
/// every transmitted resource travels together with its strong-reference
/// closure, never with weakly referenced resources.
class Publisher {
 public:
  /// Resolves a URI reference to the live resource at the MDP; returns
  /// nullptr for unknown (e.g. dangling) references.
  using ResourceResolver =
      std::function<const rdf::Resource*(const std::string& uri_reference)>;

  /// Resolves a URI reference to the LWW stamp of the document revision
  /// it belongs to; `{0, 0}` when unknown. Optional: an absent resolver
  /// ships unversioned resources (stand-alone publisher tests).
  using VersionResolver =
      std::function<EntryVersion(const std::string& uri_reference)>;

  Publisher(const rdf::RdfSchema* schema,
            const SubscriptionRegistry* registry, ResourceResolver resolver,
            VersionResolver versions = nullptr)
      : schema_(schema),
        registry_(registry),
        resolver_(std::move(resolver)),
        versions_(std::move(versions)) {}

  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  /// Notifications for a plain registration (or subscription seeding):
  /// one kInsert per subscription whose end rule matched, carrying the
  /// matched resources and their strong closures.
  Result<std::vector<Notification>> PublishNewMatches(
      const filter::FilterRunResult& result) const;

  /// Notifications for a document re-registration processed by the
  /// three-pass update protocol (§3.5):
  ///  - kInsert for genuinely new matches (pass 3),
  ///  - kUpdate broadcasting the new versions of updated resources to
  ///    every subscribed LMR (which applies them only to cached copies),
  ///  - kRemove per subscription for candidates (pass 1) that no rule of
  ///    that subscription still matches (pass 2).
  Result<std::vector<Notification>> PublishUpdateOutcome(
      const filter::UpdateOutcome& outcome) const;

  /// The resource at `uri_reference` followed by its strong-reference
  /// closure (§2.4). NotFound if the root resource does not resolve;
  /// dangling strong references inside the closure are skipped.
  Result<std::vector<TransmittedResource>> WithStrongClosure(
      const std::string& uri_reference) const;

 private:
  EntryVersion StampFor(const std::string& uri_reference) const {
    return versions_ ? versions_(uri_reference) : EntryVersion{};
  }

  const rdf::RdfSchema* schema_;
  const SubscriptionRegistry* registry_;
  ResourceResolver resolver_;
  VersionResolver versions_;
};

}  // namespace mdv::pubsub

#endif  // MDV_PUBSUB_PUBLISHER_H_
