#include "pubsub/subscription.h"

#include <set>

namespace mdv::pubsub {

SubscriptionId SubscriptionRegistry::Add(LmrId lmr, std::string rule_text,
                                         std::string name,
                                         int64_t end_rule_id,
                                         std::string type) {
  SubscriptionId id = next_id_++;
  Subscription sub;
  sub.id = id;
  sub.lmr = lmr;
  sub.rule_text = std::move(rule_text);
  sub.name = std::move(name);
  sub.end_rule_id = end_rule_id;
  sub.type = std::move(type);
  subscriptions_.emplace(id, std::move(sub));
  return id;
}

Result<Subscription> SubscriptionRegistry::Remove(SubscriptionId id) {
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) {
    return Status::NotFound("subscription " + std::to_string(id));
  }
  Subscription removed = std::move(it->second);
  subscriptions_.erase(it);
  return removed;
}

const Subscription* SubscriptionRegistry::Find(SubscriptionId id) const {
  auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? nullptr : &it->second;
}

std::vector<const Subscription*> SubscriptionRegistry::ByEndRule(
    int64_t end_rule_id) const {
  std::vector<const Subscription*> out;
  for (const auto& [id, sub] : subscriptions_) {
    if (sub.end_rule_id == end_rule_id) out.push_back(&sub);
  }
  return out;
}

std::vector<const Subscription*> SubscriptionRegistry::ByLmr(
    LmrId lmr) const {
  std::vector<const Subscription*> out;
  for (const auto& [id, sub] : subscriptions_) {
    if (sub.lmr == lmr) out.push_back(&sub);
  }
  return out;
}

const Subscription* SubscriptionRegistry::FindByName(
    const std::string& name) const {
  if (name.empty()) return nullptr;
  for (const auto& [id, sub] : subscriptions_) {
    if (sub.name == name) return &sub;
  }
  return nullptr;
}

std::vector<const Subscription*> SubscriptionRegistry::All() const {
  std::vector<const Subscription*> out;
  out.reserve(subscriptions_.size());
  for (const auto& [id, sub] : subscriptions_) out.push_back(&sub);
  return out;
}

Status SubscriptionRegistry::Restore(Subscription subscription) {
  if (subscriptions_.count(subscription.id) != 0) {
    return Status::AlreadyExists("subscription " +
                                 std::to_string(subscription.id));
  }
  next_id_ = std::max(next_id_, subscription.id + 1);
  subscriptions_.emplace(subscription.id, std::move(subscription));
  return Status::OK();
}

void SubscriptionRegistry::Clear() { subscriptions_.clear(); }

std::vector<int64_t> SubscriptionRegistry::EndRuleIds() const {
  std::set<int64_t> unique;
  for (const auto& [id, sub] : subscriptions_) {
    unique.insert(sub.end_rule_id);
  }
  return {unique.begin(), unique.end()};
}

}  // namespace mdv::pubsub
