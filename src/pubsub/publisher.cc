#include "pubsub/publisher.h"

#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdv::pubsub {

namespace {

/// Registry handles of the publish stage, resolved once.
struct PublishMetrics {
  obs::MetricsRegistry& r = obs::DefaultMetrics();
  obs::Counter& notifications = r.GetCounter("mdv.publish.notifications_total");
  obs::Counter& inserts = r.GetCounter("mdv.publish.insert_notifications_total");
  obs::Counter& updates = r.GetCounter("mdv.publish.update_notifications_total");
  obs::Counter& removes = r.GetCounter("mdv.publish.remove_notifications_total");
  obs::Counter& resources = r.GetCounter("mdv.publish.resources_shipped_total");
  obs::Histogram& emit_us = r.GetHistogram("mdv.publish.emit_us");

  static PublishMetrics& Get() {
    static PublishMetrics& metrics = *new PublishMetrics();
    return metrics;
  }
};

void CountNotifications(const std::vector<Notification>& notifications,
                        size_t from = 0) {
  PublishMetrics& metrics = PublishMetrics::Get();
  metrics.notifications.Add(static_cast<int64_t>(notifications.size() - from));
  for (size_t i = from; i < notifications.size(); ++i) {
    const Notification& note = notifications[i];
    metrics.resources.Add(static_cast<int64_t>(note.resources.size()));
    switch (note.kind) {
      case NotificationKind::kInsert:
        metrics.inserts.Increment();
        break;
      case NotificationKind::kUpdate:
        metrics.updates.Increment();
        break;
      case NotificationKind::kRemove:
        metrics.removes.Increment();
        break;
      case NotificationKind::kSnapshotChunk:
      case NotificationKind::kSnapshotDone:
        break;  // Snapshot streams are counted by the replication stage.
    }
  }
}

}  // namespace

Result<std::vector<TransmittedResource>> Publisher::WithStrongClosure(
    const std::string& uri_reference) const {
  const rdf::Resource* root = resolver_(uri_reference);
  if (root == nullptr) {
    return Status::NotFound("resource " + uri_reference);
  }
  std::vector<TransmittedResource> out;
  std::unordered_set<std::string> visited{uri_reference};
  out.push_back(TransmittedResource{uri_reference, *root, false,
                                    StampFor(uri_reference)});

  // Breadth-first walk over strong references only (§2.4: strongly
  // referenced resources are always transmitted, weakly referenced never).
  for (size_t i = 0; i < out.size(); ++i) {
    const rdf::Resource& res = out[i].resource;
    for (const rdf::Property& prop : res.properties()) {
      if (!prop.value.is_resource_ref()) continue;
      const rdf::PropertyDef* def =
          schema_->FindProperty(res.class_name(), prop.name);
      if (def == nullptr || def->strength != rdf::RefStrength::kStrong) {
        continue;
      }
      const std::string& target = prop.value.text();
      if (!visited.insert(target).second) continue;
      const rdf::Resource* target_res = resolver_(target);
      if (target_res == nullptr) {
        MDV_LOG(Warning) << "dangling strong reference " << res.class_name()
                         << "." << prop.name << " -> " << target;
        continue;
      }
      out.push_back(
          TransmittedResource{target, *target_res, true, StampFor(target)});
    }
  }
  return out;
}

Result<std::vector<Notification>> Publisher::PublishNewMatches(
    const filter::FilterRunResult& result) const {
  obs::ScopedSpan span("publish.new_matches",
                       &PublishMetrics::Get().emit_us);
  std::vector<Notification> notifications;
  for (int64_t end_rule : registry_->EndRuleIds()) {
    const std::vector<std::string>* matches = result.MatchesFor(end_rule);
    if (matches == nullptr || matches->empty()) continue;
    for (const Subscription* sub : registry_->ByEndRule(end_rule)) {
      Notification note;
      note.kind = NotificationKind::kInsert;
      note.lmr = sub->lmr;
      note.subscription = sub->id;
      for (const std::string& uri : *matches) {
        MDV_ASSIGN_OR_RETURN(std::vector<TransmittedResource> shipped,
                             WithStrongClosure(uri));
        note.resources.insert(note.resources.end(), shipped.begin(),
                              shipped.end());
      }
      if (!note.resources.empty()) {
        notifications.push_back(std::move(note));
      }
    }
  }
  span.AddAttribute("notifications",
                    static_cast<int64_t>(notifications.size()));
  CountNotifications(notifications);
  return notifications;
}

Result<std::vector<Notification>> Publisher::PublishUpdateOutcome(
    const filter::UpdateOutcome& outcome) const {
  obs::ScopedSpan span("publish.update_outcome",
                       &PublishMetrics::Get().emit_us);
  std::vector<Notification> notifications;

  // New matches (pass 3) → inserts. (Already counted into the registry
  // by the nested PublishNewMatches call.)
  MDV_ASSIGN_OR_RETURN(std::vector<Notification> inserts,
                       PublishNewMatches(outcome.new_matches));
  notifications.insert(notifications.end(), inserts.begin(), inserts.end());
  const size_t counted_prefix = notifications.size();

  // Updated resources → broadcast their new versions; LMRs apply them
  // only to copies they actually cache. (The paper notes the alternative
  // of tracking per-resource LMR lists and rejects it for scalability.)
  if (!outcome.updated_uris.empty()) {
    std::set<LmrId> lmrs;
    for (int64_t end_rule : registry_->EndRuleIds()) {
      for (const Subscription* sub : registry_->ByEndRule(end_rule)) {
        lmrs.insert(sub->lmr);
      }
    }
    for (LmrId lmr : lmrs) {
      Notification note;
      note.kind = NotificationKind::kUpdate;
      note.lmr = lmr;
      for (const std::string& uri : outcome.updated_uris) {
        MDV_ASSIGN_OR_RETURN(std::vector<TransmittedResource> shipped,
                             WithStrongClosure(uri));
        note.resources.insert(note.resources.end(), shipped.begin(),
                              shipped.end());
      }
      if (!note.resources.empty()) {
        notifications.push_back(std::move(note));
      }
    }
  }

  // True candidates (pass 1 minus pass 2) → removals, per subscription.
  for (int64_t end_rule : registry_->EndRuleIds()) {
    const std::vector<std::string>* was =
        outcome.candidates.MatchesFor(end_rule);
    if (was == nullptr || was->empty()) continue;
    const std::vector<std::string>* still =
        outcome.still_matching.MatchesFor(end_rule);
    std::set<std::string> still_set;
    if (still != nullptr) still_set.insert(still->begin(), still->end());

    std::vector<std::string> removed;
    for (const std::string& uri : *was) {
      if (still_set.count(uri) == 0) removed.push_back(uri);
    }
    if (removed.empty()) continue;

    for (const Subscription* sub : registry_->ByEndRule(end_rule)) {
      Notification note;
      note.kind = NotificationKind::kRemove;
      note.lmr = sub->lmr;
      note.subscription = sub->id;
      for (const std::string& uri : removed) {
        // Removals carry no content; the uri suffices. The stamp is the
        // revision that caused the unmatch, for version-vector upkeep.
        note.resources.push_back(
            TransmittedResource{uri, {}, false, StampFor(uri)});
      }
      notifications.push_back(std::move(note));
    }
  }
  span.AddAttribute("notifications",
                    static_cast<int64_t>(notifications.size()));
  CountNotifications(notifications, counted_prefix);
  return notifications;
}

}  // namespace mdv::pubsub
