#include "rdf/diff.h"

namespace mdv::rdf {

DocumentDiff DiffDocuments(const RdfDocument& original,
                           const RdfDocument& updated) {
  DocumentDiff diff;
  for (const Resource* res : original.resources()) {
    const Resource* counterpart = updated.FindResource(res->local_id());
    if (counterpart == nullptr) {
      diff.deleted.push_back(res->local_id());
    } else if (res->ContentEquals(*counterpart)) {
      diff.unchanged.push_back(res->local_id());
    } else {
      diff.updated.push_back(res->local_id());
    }
  }
  for (const Resource* res : updated.resources()) {
    if (original.FindResource(res->local_id()) == nullptr) {
      diff.inserted.push_back(res->local_id());
    }
  }
  return diff;
}

}  // namespace mdv::rdf
