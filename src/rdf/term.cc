#include "rdf/term.h"

#include <charconv>

namespace mdv::rdf {

std::optional<double> PropertyValue::AsNumber() const {
  if (!is_literal() || text_.empty()) return std::nullopt;
  double out = 0.0;
  const char* begin = text_.data();
  const char* end = text_.data() + text_.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return out;
}

std::string MakeUriReference(const std::string& document_uri,
                             const std::string& local_id) {
  return document_uri + "#" + local_id;
}

std::pair<std::string, std::string> SplitUriReference(
    const std::string& uri_reference) {
  size_t pos = uri_reference.rfind('#');
  if (pos == std::string::npos) return {uri_reference, ""};
  return {uri_reference.substr(0, pos), uri_reference.substr(pos + 1)};
}

}  // namespace mdv::rdf
