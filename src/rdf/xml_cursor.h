#ifndef MDV_RDF_XML_CURSOR_H_
#define MDV_RDF_XML_CURSOR_H_

// Internal shared XML machinery for the RDF/XML parser (rdf/parser.cc)
// and the generic XML importer (rdf/xml_import.cc). Not part of the
// public API.

#include <cctype>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mdv::rdf::internal_xml {

/// Strips an optional namespace prefix: "og:CycleProvider" →
/// "CycleProvider". "rdf:ID" keeps its prefix meaning via special-casing
/// at the call sites (we compare against the local name "ID"/"resource"
/// with prefix "rdf").
inline std::string_view LocalName(std::string_view qname) {
  size_t pos = qname.find(':');
  return pos == std::string_view::npos ? qname : qname.substr(pos + 1);
}

inline std::string_view Prefix(std::string_view qname) {
  size_t pos = qname.find(':');
  return pos == std::string_view::npos ? std::string_view()
                                       : qname.substr(0, pos);
}

inline std::string DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    if (s[i] != '&') {
      out += s[i++];
      continue;
    }
    auto match = [&](std::string_view entity, char decoded) {
      if (s.substr(i, entity.size()) == entity) {
        out += decoded;
        i += entity.size();
        return true;
      }
      return false;
    };
    if (match("&lt;", '<') || match("&gt;", '>') || match("&amp;", '&') ||
        match("&quot;", '"') || match("&apos;", '\'')) {
      continue;
    }
    out += s[i++];  // Unknown entity: keep verbatim.
  }
  return out;
}

/// Minimal pull-style XML reader over the subset MDV needs: elements,
/// attributes, character data, comments, the <?xml?> prolog. No CDATA,
/// DTDs, or processing instructions beyond the prolog.
class XmlCursor {
 public:
  explicit XmlCursor(std::string_view input) : input_(input) {}

  Status SkipPrologAndMisc() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated <?...?> at offset " +
                                    std::to_string(pos_));
        }
        pos_ = end + 2;
      } else if (LookingAt("<!--")) {
        MDV_RETURN_IF_ERROR(SkipComment());
      } else {
        return Status::OK();
      }
    }
  }

  bool AtEnd() {
    SkipWhitespace();
    return pos_ >= input_.size();
  }

  /// True if the next construct is a start tag (after skipping comments).
  bool AtStartTag() {
    SkipCommentsAndWhitespace();
    return pos_ < input_.size() && input_[pos_] == '<' &&
           pos_ + 1 < input_.size() && input_[pos_ + 1] != '/';
  }

  bool AtEndTag() {
    SkipCommentsAndWhitespace();
    return LookingAt("</");
  }

  /// Reads `<name attr="v" ...>` or `<name .../>`. Sets `self_closing`.
  Status ReadStartTag(std::string* name,
                      std::map<std::string, std::string>* attributes,
                      bool* self_closing) {
    SkipCommentsAndWhitespace();
    if (!LookingAt("<")) {
      return Status::ParseError("expected start tag at offset " +
                                std::to_string(pos_));
    }
    ++pos_;
    *name = ReadName();
    if (name->empty()) {
      return Status::ParseError("empty element name at offset " +
                                std::to_string(pos_));
    }
    attributes->clear();
    while (true) {
      SkipWhitespace();
      if (LookingAt("/>")) {
        pos_ += 2;
        *self_closing = true;
        return Status::OK();
      }
      if (LookingAt(">")) {
        ++pos_;
        *self_closing = false;
        return Status::OK();
      }
      if (pos_ >= input_.size()) {
        return Status::ParseError("unterminated start tag <" + *name);
      }
      std::string attr_name = ReadName();
      if (attr_name.empty()) {
        return Status::ParseError("malformed attribute in <" + *name +
                                  "> at offset " + std::to_string(pos_));
      }
      SkipWhitespace();
      if (!LookingAt("=")) {
        return Status::ParseError("attribute " + attr_name +
                                  " missing '=' in <" + *name + ">");
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= input_.size() ||
          (input_[pos_] != '"' && input_[pos_] != '\'')) {
        return Status::ParseError("attribute " + attr_name +
                                  " value must be quoted in <" + *name + ">");
      }
      char quote = input_[pos_++];
      size_t end = input_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated attribute value in <" +
                                  *name + ">");
      }
      (*attributes)[attr_name] =
          DecodeEntities(input_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
  }

  /// Reads `</name>` and verifies the name matches.
  Status ReadEndTag(const std::string& expected_name) {
    SkipCommentsAndWhitespace();
    if (!LookingAt("</")) {
      return Status::ParseError("expected </" + expected_name +
                                "> at offset " + std::to_string(pos_));
    }
    pos_ += 2;
    std::string name = ReadName();
    SkipWhitespace();
    if (!LookingAt(">")) {
      return Status::ParseError("malformed end tag </" + name);
    }
    ++pos_;
    if (name != expected_name) {
      return Status::ParseError("mismatched end tag: expected </" +
                                expected_name + ">, found </" + name + ">");
    }
    return Status::OK();
  }

  /// Reads character data up to the next '<' (entities decoded).
  std::string ReadText() {
    size_t end = input_.find('<', pos_);
    if (end == std::string_view::npos) end = input_.size();
    std::string text = DecodeEntities(input_.substr(pos_, end - pos_));
    pos_ = end;
    return text;
  }

  size_t offset() const { return pos_; }

 private:
  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Status SkipComment() {
    size_t end = input_.find("-->", pos_);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated comment at offset " +
                                std::to_string(pos_));
    }
    pos_ = end + 3;
    return Status::OK();
  }

  void SkipCommentsAndWhitespace() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<!--")) {
        if (!SkipComment().ok()) return;
      } else {
        return;
      }
    }
  }

  std::string ReadName() {
    size_t start = pos_;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == ':' ||
          c == '_' || c == '-' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  std::string_view input_;
  size_t pos_ = 0;
};


}  // namespace mdv::rdf::internal_xml

#endif  // MDV_RDF_XML_CURSOR_H_
