#ifndef MDV_RDF_SCHEMA_IO_H_
#define MDV_RDF_SCHEMA_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "rdf/schema.h"

namespace mdv::rdf {

/// Serializes a schema to a line-oriented text form that round-trips
/// through ParseSchemaText. Unlike the rule DSL's schema syntax, this
/// form carries the strong/weak annotation, so a WAL manifest embedding
/// it fully describes the federation schema and an offline reader
/// (mdv_fsck) can validate recovered documents without the original
/// process's configuration.
///
///   MDVSCHEMA1
///   class CycleProvider
///   literal serverHost
///   literal* tags                            <- * marks set-valued
///   ref! serverInformation ServerInformation <- ! marks strong
///   ref*! mirrors ServerInformation
///   ref backup CycleProvider                 <- plain ref is weak
///
/// Classes are emitted in name order, properties in name order, so
/// equal schemas serialize to byte-equal text.
std::string WriteSchemaText(const RdfSchema& schema);

/// Parses WriteSchemaText output. ParseError names the offending line.
Result<RdfSchema> ParseSchemaText(std::string_view text);

}  // namespace mdv::rdf

#endif  // MDV_RDF_SCHEMA_IO_H_
