#ifndef MDV_RDF_WRITER_H_
#define MDV_RDF_WRITER_H_

#include <string>

#include "rdf/document.h"

namespace mdv::rdf {

/// Serializes `document` into the RDF/XML subset ParseRdfXml accepts.
/// All resources are written top-level; resource-valued properties use
/// the <prop rdf:resource="..."/> form (equivalent to nesting, §2.1).
/// References into the same document are written relative ("#id").
std::string WriteRdfXml(const RdfDocument& document);

}  // namespace mdv::rdf

#endif  // MDV_RDF_WRITER_H_
