#include "rdf/parser.h"

#include <cctype>
#include <map>

#include "common/string_util.h"
#include "rdf/xml_cursor.h"

namespace mdv::rdf {

namespace {

using internal_xml::LocalName;
using internal_xml::Prefix;
using internal_xml::XmlCursor;

/// Recursive-descent RDF reader on top of XmlCursor.
class RdfReader {
 public:
  RdfReader(XmlCursor* cursor, RdfDocument* document)
      : cursor_(*cursor), document_(*document) {}

  /// Parses one resource element and hoists it (and any nested resources)
  /// into the document. On success returns the resource's URI reference.
  Result<std::string> ParseResource() {
    std::string tag;
    std::map<std::string, std::string> attrs;
    bool self_closing = false;
    MDV_RETURN_IF_ERROR(cursor_.ReadStartTag(&tag, &attrs, &self_closing));

    std::string class_name(LocalName(tag));
    std::string local_id;
    for (const auto& [attr, value] : attrs) {
      if (Prefix(attr) == "rdf" && LocalName(attr) == "ID") local_id = value;
    }
    if (local_id.empty()) {
      return Status::ParseError("resource element <" + tag +
                                "> without rdf:ID");
    }

    Resource resource(local_id, class_name);
    if (!self_closing) {
      // Body: a sequence of property elements.
      while (!cursor_.AtEndTag()) {
        if (!cursor_.AtStartTag()) {
          return Status::ParseError(
              "unexpected content in resource " + local_id + " at offset " +
              std::to_string(cursor_.offset()));
        }
        MDV_RETURN_IF_ERROR(ParseProperty(&resource));
      }
      MDV_RETURN_IF_ERROR(cursor_.ReadEndTag(tag));
    }

    MDV_RETURN_IF_ERROR(document_.AddResource(std::move(resource)));
    return document_.UriReferenceOf(local_id);
  }

 private:
  Status ParseProperty(Resource* resource) {
    std::string tag;
    std::map<std::string, std::string> attrs;
    bool self_closing = false;
    MDV_RETURN_IF_ERROR(cursor_.ReadStartTag(&tag, &attrs, &self_closing));
    std::string property_name(LocalName(tag));

    // Reference form: <prop rdf:resource="#info"/>.
    for (const auto& [attr, value] : attrs) {
      if (Prefix(attr) == "rdf" && LocalName(attr) == "resource") {
        std::string target = value;
        if (!target.empty() && target[0] == '#') {
          target = document_.uri() + target;  // Relative → this document.
        }
        resource->AddProperty(property_name,
                              PropertyValue::ResourceRef(target));
        if (!self_closing) {
          MDV_RETURN_IF_ERROR(cursor_.ReadEndTag(tag));
        }
        return Status::OK();
      }
    }

    if (self_closing) {
      // Empty property: empty literal.
      resource->AddProperty(property_name, PropertyValue::Literal(""));
      return Status::OK();
    }

    // Nested resource form vs. literal text form.
    if (cursor_.AtStartTag()) {
      RdfReader nested(&cursor_, &document_);
      MDV_ASSIGN_OR_RETURN(std::string target_uri, nested.ParseResource());
      resource->AddProperty(property_name,
                            PropertyValue::ResourceRef(target_uri));
      MDV_RETURN_IF_ERROR(cursor_.ReadEndTag(tag));
      return Status::OK();
    }

    std::string text = cursor_.ReadText();
    resource->AddProperty(
        property_name,
        PropertyValue::Literal(std::string(mdv::TrimWhitespace(text))));
    MDV_RETURN_IF_ERROR(cursor_.ReadEndTag(tag));
    return Status::OK();
  }

  XmlCursor& cursor_;
  RdfDocument& document_;
};

}  // namespace

Result<RdfDocument> ParseRdfXml(std::string_view xml,
                                const std::string& document_uri) {
  if (document_uri.empty()) {
    return Status::InvalidArgument("document URI must not be empty");
  }
  RdfDocument document(document_uri);
  XmlCursor cursor(xml);
  MDV_RETURN_IF_ERROR(cursor.SkipPrologAndMisc());

  std::string root;
  std::map<std::string, std::string> attrs;
  bool self_closing = false;
  MDV_RETURN_IF_ERROR(cursor.ReadStartTag(&root, &attrs, &self_closing));
  if (LocalName(root) != "RDF") {
    return Status::ParseError("root element must be rdf:RDF, found <" + root +
                              ">");
  }
  if (!self_closing) {
    while (!cursor.AtEndTag()) {
      if (!cursor.AtStartTag()) {
        return Status::ParseError("unexpected content at offset " +
                                  std::to_string(cursor.offset()));
      }
      RdfReader reader(&cursor, &document);
      MDV_ASSIGN_OR_RETURN(std::string ignored, reader.ParseResource());
      (void)ignored;
    }
    MDV_RETURN_IF_ERROR(cursor.ReadEndTag(root));
  }
  if (!cursor.AtEnd()) {
    return Status::ParseError("trailing content after </" + root + ">");
  }
  return document;
}

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace mdv::rdf
