#include "rdf/schema_io.h"

#include <string>
#include <vector>

#include "common/string_util.h"

namespace mdv::rdf {

namespace {

constexpr std::string_view kHeader = "MDVSCHEMA1";

bool IsBareToken(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

}  // namespace

std::string WriteSchemaText(const RdfSchema& schema) {
  std::string out(kHeader);
  out += '\n';
  for (const std::string& class_name : schema.ClassNames()) {
    const ClassDef* class_def = schema.FindClass(class_name);
    out += "class " + class_name + "\n";
    for (const auto& [name, property] : class_def->properties) {
      if (property.kind == PropertyKind::kLiteral) {
        out += "literal";
        if (property.set_valued) out += '*';
        out += ' ' + name + '\n';
      } else {
        out += "ref";
        if (property.set_valued) out += '*';
        if (property.strength == RefStrength::kStrong) out += '!';
        out += ' ' + name + ' ' + property.referenced_class + '\n';
      }
    }
  }
  return out;
}

Result<RdfSchema> ParseSchemaText(std::string_view text) {
  RdfSchema schema;
  bool saw_header = false;
  bool have_class = false;
  ClassDef current;
  auto flush = [&]() -> Status {
    if (!have_class) return Status::OK();
    have_class = false;
    return schema.AddClass(std::move(current));
  };

  int line_no = 0;
  for (const std::string& raw : SplitString(text, '\n')) {
    ++line_no;
    const std::string line(TrimWhitespace(raw));
    if (line.empty()) continue;
    const std::string at = " at line " + std::to_string(line_no);
    if (!saw_header) {
      if (line != kHeader) {
        return Status::ParseError("expected MDVSCHEMA1 header" + at);
      }
      saw_header = true;
      continue;
    }
    std::vector<std::string> tokens;
    for (const std::string& token : SplitString(line, ' ')) {
      if (!token.empty()) tokens.push_back(token);
    }
    std::string keyword = tokens[0];
    bool set_valued = false;
    bool strong = false;
    if (EndsWith(keyword, "!")) {
      strong = true;
      keyword.pop_back();
    }
    if (EndsWith(keyword, "*")) {
      set_valued = true;
      keyword.pop_back();
    }
    if (keyword == "class") {
      if (strong || set_valued || tokens.size() != 2 ||
          !IsBareToken(tokens[1])) {
        return Status::ParseError("malformed class line" + at);
      }
      MDV_RETURN_IF_ERROR(flush());
      current = ClassDef{};
      current.name = tokens[1];
      have_class = true;
      continue;
    }
    if (!have_class) {
      return Status::ParseError("property before any class" + at);
    }
    PropertyDef property;
    property.set_valued = set_valued;
    if (keyword == "literal") {
      if (strong || tokens.size() != 2) {
        return Status::ParseError("malformed literal line" + at);
      }
      property.name = tokens[1];
      property.kind = PropertyKind::kLiteral;
    } else if (keyword == "ref") {
      if (tokens.size() != 3) {
        return Status::ParseError("malformed ref line" + at);
      }
      property.name = tokens[1];
      property.kind = PropertyKind::kReference;
      property.referenced_class = tokens[2];
      property.strength = strong ? RefStrength::kStrong : RefStrength::kWeak;
    } else {
      return Status::ParseError("unknown keyword '" + tokens[0] + "'" + at);
    }
    if (current.properties.count(property.name) > 0) {
      return Status::ParseError("duplicate property '" + property.name + "'" +
                                at);
    }
    current.properties[property.name] = std::move(property);
  }
  if (!saw_header) return Status::ParseError("empty schema text");
  MDV_RETURN_IF_ERROR(flush());
  return schema;
}

}  // namespace mdv::rdf
