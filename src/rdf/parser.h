#ifndef MDV_RDF_PARSER_H_
#define MDV_RDF_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "rdf/document.h"

namespace mdv::rdf {

/// Parses the RDF/XML subset MDV documents use (paper Figure 1):
///
///   <rdf:RDF ...namespace declarations...>
///     <og:CycleProvider rdf:ID="host">
///       <og:serverHost>pirates.uni-passau.de</og:serverHost>
///       <og:serverInformation>
///         <og:ServerInformation rdf:ID="info"> ... </og:ServerInformation>
///       </og:serverInformation>
///       <!-- or: <og:serverInformation rdf:resource="#info"/> -->
///     </og:CycleProvider>
///   </rdf:RDF>
///
/// Namespace prefixes are stripped; element and attribute names are used
/// by their local part. Nested resources are hoisted into the document
/// and the enclosing property becomes a reference to them — RDF does not
/// distinguish nested from referenced resources (§2.1). `rdf:resource`
/// values starting with '#' resolve against `document_uri`.
Result<RdfDocument> ParseRdfXml(std::string_view xml,
                                const std::string& document_uri);

/// XML-escapes `text` (&, <, >, ", ').
std::string XmlEscape(std::string_view text);

}  // namespace mdv::rdf

#endif  // MDV_RDF_PARSER_H_
