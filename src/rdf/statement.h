#ifndef MDV_RDF_STATEMENT_H_
#define MDV_RDF_STATEMENT_H_

#include <string>
#include <vector>

#include "rdf/term.h"

namespace mdv::rdf {

/// An RDF statement (triple): subject resource, predicate (property
/// name), object value. These are the "document atoms" the filter
/// algorithm joins against rule atoms (paper §3.1, §3.2). `subject_class`
/// carries the class of the subject resource, which the filter tables
/// need alongside each triple (Figure 4).
struct Statement {
  std::string subject;        ///< URI reference of the subject resource.
  std::string subject_class;  ///< RDF class of the subject resource.
  std::string predicate;      ///< Property name.
  PropertyValue object;

  bool operator==(const Statement& other) const {
    return subject == other.subject && subject_class == other.subject_class &&
           predicate == other.predicate && object == other.object;
  }
};

using Statements = std::vector<Statement>;

}  // namespace mdv::rdf

#endif  // MDV_RDF_STATEMENT_H_
