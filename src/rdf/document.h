#ifndef MDV_RDF_DOCUMENT_H_
#define MDV_RDF_DOCUMENT_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/statement.h"
#include "rdf/term.h"

namespace mdv::rdf {

/// One resource within an RDF document: a local identifier (rdf:ID), an
/// RDF class, and a list of properties (repeated names = set-valued).
class Resource {
 public:
  Resource() = default;
  Resource(std::string local_id, std::string class_name)
      : local_id_(std::move(local_id)), class_name_(std::move(class_name)) {}

  const std::string& local_id() const { return local_id_; }
  const std::string& class_name() const { return class_name_; }
  const std::vector<Property>& properties() const { return properties_; }

  void AddProperty(std::string name, PropertyValue value) {
    properties_.push_back({std::move(name), std::move(value)});
  }

  /// Removes every property named `name`; returns the count removed.
  size_t RemoveProperties(const std::string& name);

  /// First value of property `name`, or nullptr.
  const PropertyValue* FindProperty(const std::string& name) const;

  /// All values of property `name` (set-valued access).
  std::vector<PropertyValue> FindProperties(const std::string& name) const;

  /// Replaces the first occurrence of `name` (adds it if absent).
  void SetProperty(const std::string& name, PropertyValue value);

  /// True if both resources have the same class and the same property
  /// multiset (order-insensitive). Used by document diffing (§3.5).
  bool ContentEquals(const Resource& other) const;

 private:
  std::string local_id_;
  std::string class_name_;
  std::vector<Property> properties_;
};

/// An RDF document: a globally unique URI plus its resources. Documents
/// are the unit of registration, update and deletion at an MDP (§2.2).
class RdfDocument {
 public:
  RdfDocument() = default;
  explicit RdfDocument(std::string uri) : uri_(std::move(uri)) {}

  const std::string& uri() const { return uri_; }
  void set_uri(std::string uri) { uri_ = std::move(uri); }

  /// Adds a resource; AlreadyExists if the local id is taken.
  Status AddResource(Resource resource);

  /// Removes a resource; NotFound if absent.
  Status RemoveResource(const std::string& local_id);

  /// Returns the resource or nullptr.
  const Resource* FindResource(const std::string& local_id) const;
  Resource* FindMutableResource(const std::string& local_id);

  /// Resources in local-id order (deterministic iteration).
  std::vector<const Resource*> resources() const;
  size_t NumResources() const { return resources_.size(); }

  /// URI reference of the resource with `local_id` within this document.
  std::string UriReferenceOf(const std::string& local_id) const {
    return MakeUriReference(uri_, local_id);
  }

  /// Expands the document into RDF statements (the document atoms of
  /// §3.2). Each property yields one statement; additionally each
  /// resource yields an (rdf#subject, own-URI) statement so OID rules can
  /// match resources by URI reference (Figure 4).
  Statements ToStatements() const;

 private:
  std::string uri_;
  std::map<std::string, Resource> resources_;  // Keyed by local id.
};

/// Property name of the synthetic per-resource statement (Figure 4).
inline constexpr char kRdfSubjectProperty[] = "rdf#subject";

}  // namespace mdv::rdf

#endif  // MDV_RDF_DOCUMENT_H_
