#ifndef MDV_RDF_SCHEMA_H_
#define MDV_RDF_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/document.h"

namespace mdv::rdf {

/// Whether a reference property transmits its target together with the
/// referencing resource (paper §2.4). Strong references are always
/// transmitted; weak references never are. The schema designer decides.
enum class RefStrength { kStrong, kWeak };

/// What kind of values a property holds.
enum class PropertyKind {
  kLiteral,    ///< Text/number content.
  kReference,  ///< URI reference to a resource of `referenced_class`.
};

/// Schema definition of one property of a class.
struct PropertyDef {
  std::string name;
  PropertyKind kind = PropertyKind::kLiteral;
  /// Class of referenced resources; only for kReference.
  std::string referenced_class;
  /// Strong/weak transmission semantics; only for kReference.
  RefStrength strength = RefStrength::kWeak;
  /// Set-valued properties may occur multiple times on a resource; the
  /// rule language's `?` (any) operator applies to them (§2.3).
  bool set_valued = false;
};

/// Schema definition of one RDF class.
struct ClassDef {
  std::string name;
  std::map<std::string, PropertyDef> properties;
};

/// Result of resolving a path expression like
/// `CycleProvider.serverInformation.memory` against the schema: the
/// classes traversed and the final property.
struct ResolvedPath {
  /// Class at each step; steps[i] owns property path[i].
  std::vector<std::string> classes;
  /// The property definitions along the path; all but possibly the last
  /// are references.
  std::vector<PropertyDef> properties;

  const PropertyDef& final_property() const { return properties.back(); }
};

/// The RDF schema all metadata in an MDV federation conforms to (paper
/// §2: "MDPs share the same schema"). MDV augments RDF Schema with
/// strong/weak reference annotations (§2.4); here they are fields of
/// PropertyDef.
class RdfSchema {
 public:
  RdfSchema() = default;

  /// Adds a class; AlreadyExists if the name is taken.
  Status AddClass(ClassDef class_def);

  /// Adds or replaces a class definition (used by schema inference when
  /// importing generic XML, see rdf/xml_import.h).
  Status ReplaceClass(ClassDef class_def);

  bool HasClass(const std::string& name) const;
  const ClassDef* FindClass(const std::string& name) const;

  /// The property `name` of `class_name`, or nullptr.
  const PropertyDef* FindProperty(const std::string& class_name,
                                  const std::string& property_name) const;

  std::vector<std::string> ClassNames() const;

  /// Resolves a property path starting at `class_name`. Every step but
  /// the last must be a reference property; InvalidArgument/NotFound on
  /// violations.
  Result<ResolvedPath> ResolvePath(
      const std::string& class_name,
      const std::vector<std::string>& path) const;

  /// Checks `document` against this schema: every resource's class must
  /// exist; every property must be declared; non-set-valued properties
  /// must not repeat; reference properties must hold resource refs and
  /// literal properties literals. Returns SchemaViolation describing the
  /// first problem.
  Status ValidateDocument(const RdfDocument& document) const;

 private:
  std::map<std::string, ClassDef> classes_;
};

/// Convenience builder for declaring classes fluently in tests/examples.
class ClassBuilder {
 public:
  explicit ClassBuilder(std::string name) { def_.name = std::move(name); }

  ClassBuilder& Literal(const std::string& property, bool set_valued = false);
  ClassBuilder& StrongRef(const std::string& property,
                          const std::string& target_class,
                          bool set_valued = false);
  ClassBuilder& WeakRef(const std::string& property,
                        const std::string& target_class,
                        bool set_valued = false);

  ClassDef Build() { return def_; }

 private:
  ClassDef def_;
};

/// The schema used by the paper's running example and the benchmarks:
/// CycleProvider {serverHost, serverPort, synthValue,
/// serverInformation → ServerInformation (strong)} and
/// ServerInformation {memory, cpu}.
RdfSchema MakeObjectGlobeSchema();

}  // namespace mdv::rdf

#endif  // MDV_RDF_SCHEMA_H_
