#ifndef MDV_RDF_TERM_H_
#define MDV_RDF_TERM_H_

#include <optional>
#include <ostream>
#include <string>

namespace mdv::rdf {

/// What a property value denotes.
enum class ValueKind {
  kLiteral,      ///< Plain text content (numbers are literals too).
  kResourceRef,  ///< A URI reference to another resource.
};

/// The value of one RDF property: either a literal string or a URI
/// reference. RDF does not distinguish nested from referenced resources
/// (paper §2.1), so after parsing all resource-valued properties are
/// kResourceRef holding the target's URI reference.
class PropertyValue {
 public:
  PropertyValue() : kind_(ValueKind::kLiteral) {}

  static PropertyValue Literal(std::string text) {
    PropertyValue v;
    v.kind_ = ValueKind::kLiteral;
    v.text_ = std::move(text);
    return v;
  }
  static PropertyValue ResourceRef(std::string uri_reference) {
    PropertyValue v;
    v.kind_ = ValueKind::kResourceRef;
    v.text_ = std::move(uri_reference);
    return v;
  }

  ValueKind kind() const { return kind_; }
  bool is_literal() const { return kind_ == ValueKind::kLiteral; }
  bool is_resource_ref() const { return kind_ == ValueKind::kResourceRef; }

  /// The literal text or the referenced URI, depending on kind.
  const std::string& text() const { return text_; }

  /// Numeric interpretation of a literal, if it parses as a number.
  std::optional<double> AsNumber() const;

  bool operator==(const PropertyValue& other) const {
    return kind_ == other.kind_ && text_ == other.text_;
  }
  bool operator!=(const PropertyValue& other) const {
    return !(*this == other);
  }

 private:
  ValueKind kind_;
  std::string text_;
};

/// One named property of a resource. Multi-valued (set-valued) properties
/// appear as repeated Property entries with the same name.
struct Property {
  std::string name;
  PropertyValue value;

  bool operator==(const Property& other) const {
    return name == other.name && value == other.value;
  }
};

/// Builds the globally unique URI reference of a resource: the document
/// URI combined with the resource's local identifier (paper §2.1).
std::string MakeUriReference(const std::string& document_uri,
                             const std::string& local_id);

/// Splits a URI reference back into (document URI, local id); the local id
/// is everything after the last '#'.
std::pair<std::string, std::string> SplitUriReference(
    const std::string& uri_reference);

inline std::ostream& operator<<(std::ostream& os, const PropertyValue& v) {
  return os << (v.is_literal() ? "lit:" : "ref:") << v.text();
}

}  // namespace mdv::rdf

#endif  // MDV_RDF_TERM_H_
