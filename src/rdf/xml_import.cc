#include "rdf/xml_import.h"

#include <map>
#include <set>

#include "common/string_util.h"
#include "rdf/xml_cursor.h"

namespace mdv::rdf {

namespace {

using internal_xml::LocalName;
using internal_xml::XmlCursor;

/// Imports one element as a resource, recursing into child resources.
/// Returns the new resource's URI reference.
class GenericXmlImporter {
 public:
  GenericXmlImporter(XmlCursor* cursor, RdfDocument* document)
      : cursor_(*cursor), document_(*document) {}

  Result<std::string> ImportElement() {
    std::string tag;
    std::map<std::string, std::string> attrs;
    bool self_closing = false;
    MDV_RETURN_IF_ERROR(cursor_.ReadStartTag(&tag, &attrs, &self_closing));
    std::string class_name(LocalName(tag));

    std::string local_id;
    auto id_attr = attrs.find("id");
    if (id_attr != attrs.end()) {
      local_id = id_attr->second;
    } else {
      local_id = class_name + "_" + std::to_string(++counter_[class_name]);
    }

    Resource resource(local_id, class_name);
    for (const auto& [attr, value] : attrs) {
      if (attr == "id") continue;
      resource.AddProperty(std::string(LocalName(attr)),
                           PropertyValue::Literal(value));
    }

    if (!self_closing) {
      while (!cursor_.AtEndTag()) {
        if (cursor_.AtStartTag()) {
          MDV_RETURN_IF_ERROR(ImportChild(&resource));
        } else {
          // Mixed content: fold free text into a `text` property.
          std::string text(TrimWhitespace(cursor_.ReadText()));
          if (!text.empty()) {
            resource.AddProperty("text", PropertyValue::Literal(text));
          }
        }
      }
      MDV_RETURN_IF_ERROR(cursor_.ReadEndTag(tag));
    }

    MDV_RETURN_IF_ERROR(document_.AddResource(std::move(resource)));
    return document_.UriReferenceOf(local_id);
  }

 private:
  /// A child element is a literal property when it has neither
  /// attributes nor element children; otherwise it is a nested resource.
  Status ImportChild(Resource* parent) {
    // Peek the child: we must read its start tag to decide, so we parse
    // it fully and then decide by what we found.
    std::string tag;
    std::map<std::string, std::string> attrs;
    bool self_closing = false;
    MDV_RETURN_IF_ERROR(cursor_.ReadStartTag(&tag, &attrs, &self_closing));
    std::string name(LocalName(tag));

    if (self_closing && attrs.empty()) {
      parent->AddProperty(name, PropertyValue::Literal(""));
      return Status::OK();
    }
    if (!self_closing && attrs.empty() && !cursor_.AtStartTag()) {
      // Text-only child → literal property.
      std::string text(TrimWhitespace(cursor_.ReadText()));
      MDV_RETURN_IF_ERROR(cursor_.ReadEndTag(tag));
      parent->AddProperty(name, PropertyValue::Literal(text));
      return Status::OK();
    }

    // Nested resource: re-assemble it from the already-consumed start
    // tag by importing body and children under a fresh resource.
    std::string class_name = name;
    std::string local_id;
    auto id_attr = attrs.find("id");
    if (id_attr != attrs.end()) {
      local_id = id_attr->second;
    } else {
      local_id = class_name + "_" + std::to_string(++counter_[class_name]);
    }
    Resource resource(local_id, class_name);
    for (const auto& [attr, value] : attrs) {
      if (attr == "id") continue;
      resource.AddProperty(std::string(LocalName(attr)),
                           PropertyValue::Literal(value));
    }
    if (!self_closing) {
      while (!cursor_.AtEndTag()) {
        if (cursor_.AtStartTag()) {
          MDV_RETURN_IF_ERROR(ImportChild(&resource));
        } else {
          std::string text(TrimWhitespace(cursor_.ReadText()));
          if (!text.empty()) {
            resource.AddProperty("text", PropertyValue::Literal(text));
          }
        }
      }
      MDV_RETURN_IF_ERROR(cursor_.ReadEndTag(tag));
    }
    MDV_RETURN_IF_ERROR(document_.AddResource(std::move(resource)));
    parent->AddProperty(
        name, PropertyValue::ResourceRef(document_.UriReferenceOf(local_id)));
    return Status::OK();
  }

  XmlCursor& cursor_;
  RdfDocument& document_;
  std::map<std::string, int> counter_;
};

}  // namespace

Result<RdfDocument> ImportGenericXml(std::string_view xml,
                                     const std::string& document_uri) {
  if (document_uri.empty()) {
    return Status::InvalidArgument("document URI must not be empty");
  }
  RdfDocument document(document_uri);
  XmlCursor cursor(xml);
  MDV_RETURN_IF_ERROR(cursor.SkipPrologAndMisc());
  if (!cursor.AtStartTag()) {
    return Status::ParseError("expected a root element");
  }
  GenericXmlImporter importer(&cursor, &document);
  MDV_ASSIGN_OR_RETURN(std::string root_uri, importer.ImportElement());
  (void)root_uri;
  if (!cursor.AtEnd()) {
    return Status::ParseError("trailing content after the root element");
  }
  return document;
}

Status ExtendSchemaForDocument(const RdfDocument& document,
                               RdfSchema* schema) {
  // First make sure every class exists (references may point forward).
  for (const Resource* res : document.resources()) {
    if (!schema->HasClass(res->class_name())) {
      MDV_RETURN_IF_ERROR(
          schema->AddClass(ClassDef{res->class_name(), {}}));
    }
  }
  // Then declare properties. Because ClassDef instances live inside the
  // schema, rebuild each class definition and re-add.
  std::map<std::string, ClassDef> updated;
  for (const Resource* res : document.resources()) {
    ClassDef& cls = updated
                        .emplace(res->class_name(),
                                 *schema->FindClass(res->class_name()))
                        .first->second;
    std::set<std::string> seen_here;
    for (const Property& prop : res->properties()) {
      bool repeated = !seen_here.insert(prop.name).second;
      auto it = cls.properties.find(prop.name);
      if (it == cls.properties.end()) {
        PropertyDef def;
        def.name = prop.name;
        if (prop.value.is_resource_ref()) {
          def.kind = PropertyKind::kReference;
          // Resolve the referenced class from the target when possible.
          auto [doc_uri, local] = SplitUriReference(prop.value.text());
          const Resource* target = document.FindResource(local);
          def.referenced_class =
              target != nullptr ? target->class_name() : "";
          def.strength = RefStrength::kWeak;
        }
        def.set_valued = repeated;
        cls.properties.emplace(prop.name, std::move(def));
      } else {
        PropertyDef& def = it->second;
        bool is_ref = prop.value.is_resource_ref();
        if ((def.kind == PropertyKind::kReference) != is_ref) {
          return Status::SchemaViolation(
              "property " + res->class_name() + "." + prop.name +
              " holds both literals and references");
        }
        if (repeated) def.set_valued = true;
      }
    }
  }
  // Replace the class definitions with the extended ones.
  for (auto& [name, cls] : updated) {
    MDV_RETURN_IF_ERROR(schema->ReplaceClass(std::move(cls)));
  }
  return Status::OK();
}

}  // namespace mdv::rdf
