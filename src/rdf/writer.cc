#include "rdf/writer.h"

#include "common/string_util.h"
#include "rdf/parser.h"

namespace mdv::rdf {

std::string WriteRdfXml(const RdfDocument& document) {
  std::string out;
  out += "<?xml version=\"1.0\"?>\n";
  out += "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\" "
         "xmlns:og=\"http://mdv/schema#\">\n";
  for (const Resource* res : document.resources()) {
    out += "  <og:" + res->class_name() + " rdf:ID=\"" +
           XmlEscape(res->local_id()) + "\">\n";
    for (const Property& p : res->properties()) {
      if (p.value.is_resource_ref()) {
        std::string target = p.value.text();
        // Relative form for references within this document.
        if (StartsWith(target, document.uri() + "#")) {
          target = target.substr(document.uri().size());
        }
        out += "    <og:" + p.name + " rdf:resource=\"" + XmlEscape(target) +
               "\"/>\n";
      } else {
        out += "    <og:" + p.name + ">" + XmlEscape(p.value.text()) +
               "</og:" + p.name + ">\n";
      }
    }
    out += "  </og:" + res->class_name() + ">\n";
  }
  out += "</rdf:RDF>\n";
  return out;
}

}  // namespace mdv::rdf
