#ifndef MDV_RDF_DIFF_H_
#define MDV_RDF_DIFF_H_

#include <string>
#include <vector>

#include "rdf/document.h"

namespace mdv::rdf {

/// Outcome of comparing an original document with its re-registered
/// version (paper §3.5): a resource is *updated* if present in both but
/// with changed class or properties; *deleted* if only in the original;
/// *inserted* if only in the new version.
struct DocumentDiff {
  std::vector<std::string> inserted;   ///< Local ids new in `updated`.
  std::vector<std::string> updated;    ///< Local ids changed in place.
  std::vector<std::string> deleted;    ///< Local ids gone from `updated`.
  std::vector<std::string> unchanged;  ///< Local ids identical in both.

  bool Empty() const {
    return inserted.empty() && updated.empty() && deleted.empty();
  }
};

/// Computes the per-resource diff between `original` and `updated`
/// (matched by local id; both documents must share a URI — callers
/// re-register a modified version of the same document, §2.2).
DocumentDiff DiffDocuments(const RdfDocument& original,
                           const RdfDocument& updated);

}  // namespace mdv::rdf

#endif  // MDV_RDF_DIFF_H_
